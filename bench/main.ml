(* Benchmark harness.

   Two layers:
   1. The experiment suite (E1-E10, see DESIGN.md Section 5): prints,
      for every table/figure of the paper, the same rows/series the
      paper reports, measured in deterministic simulated device time.
   2. Bechamel wall-clock micro-benchmarks - one Test.make per
      experiment - measuring the cost of running each reproduction on
      the host (useful to track regressions of the simulator itself).

   Usage: main.exe [--full] [--scale tiny|small|medium] [--no-wallclock]
          [--only E1,E5] [--json DIR] [--metrics DIR] [--force] [--list] *)

open Bechamel
open Toolkit
module Experiments = Ghost_bench.Experiments
module Report = Ghost_bench.Report
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Ghost_db = Ghostdb.Ghost_db
module Planner = Ghostdb.Planner
module Baseline = Ghost_baseline.Baseline
module Metrics = Ghost_metrics.Metrics

type options = {
  full : bool;
  scale : Medical.scale;
  wallclock : bool;
  only : string list option;
  json_dir : string option;
  metrics_dir : string option;
  force : bool;
  list : bool;
}

let parse_args () =
  let full = ref false in
  let scale = ref Medical.small in
  let wallclock = ref true in
  let only = ref None in
  let json_dir = ref None in
  let metrics_dir = ref None in
  let force = ref false in
  let list = ref false in
  let set_scale s =
    scale :=
      match s with
      | "tiny" -> Medical.tiny
      | "small" -> Medical.small
      | "medium" -> Medical.medium
      | "paper" -> Medical.paper
      | _ -> invalid_arg "scale must be tiny|small|medium|paper"
  in
  let set_only s = only := Some (String.split_on_char ',' s) in
  let specs = [
    ("--full", Arg.Set full, " include the 1M-prescription point (E10)");
    ("--scale", Arg.String set_scale, "SCALE tiny|small|medium|paper (default small)");
    ("--no-wallclock", Arg.Clear wallclock, " skip the Bechamel wall-clock pass");
    ("--only", Arg.String set_only, "IDS comma-separated experiment ids (e.g. E1,E5)");
    ("--json", Arg.String (fun d -> json_dir := Some d),
     "DIR also write each selected report as DIR/BENCH_<id>.json");
    ("--metrics", Arg.String (fun d -> metrics_dir := Some d),
     "DIR for the instrumented experiments (E16-E23), also write \
      DIR/METRICS_<id>.json, DIR/TRACE_<id>.json (Chrome trace) and \
      DIR/CALIBRATION_<id>.txt");
    ("--force", Arg.Set force, " overwrite existing output files");
    ("--list", Arg.Set list, " print experiment ids with descriptions and exit");
  ] in
  Arg.parse (Arg.align specs) (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "GhostDB benchmark harness";
  { full = !full; scale = !scale; wallclock = !wallclock; only = !only;
    json_dir = !json_dir; metrics_dir = !metrics_dir; force = !force;
    list = !list }

(* Benchmark outputs are results: never clobber a previous run's file
   unless the user asked for it. *)
let refuse_overwrite path =
  Printf.eprintf "main.exe: refusing to overwrite %s (pass --force)\n" path;
  exit 3

let write_json ~force dir report =
  try ignore (Report.write_file ~dir ~force report)
  with Report.Would_overwrite path -> refuse_overwrite path

let write_metrics ~force dir id m =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name contents =
    let path = Filename.concat dir name in
    try Report.write_string ~path ~force contents
    with Report.Would_overwrite p -> refuse_overwrite p
  in
  write (Printf.sprintf "METRICS_%s.json" id) (Metrics.to_json m);
  write (Printf.sprintf "TRACE_%s.json" id) (Metrics.to_chrome_trace m);
  write
    (Printf.sprintf "CALIBRATION_%s.txt" id)
    (Format.asprintf "%a" Metrics.pp_calibration (Metrics.calibration_report m))

let list_experiments opts =
  List.iter
    (fun (id, description, _) -> Printf.printf "%-4s %s\n" id description)
    (Experiments.all ~scale:opts.scale ~full:opts.full ())

let print_experiments opts =
  (* One registry per instrumented experiment, created lazily when the
     experiment asks for it (only E16-E23 do). *)
  let registries : (string, Metrics.t) Hashtbl.t = Hashtbl.create 4 in
  let metrics id =
    match opts.metrics_dir with
    | None -> None
    | Some _ ->
      (match Hashtbl.find_opt registries id with
       | Some m -> Some m
       | None ->
         let m = Metrics.create () in
         Hashtbl.add registries id m;
         Some m)
  in
  let reports = Experiments.all ~scale:opts.scale ~full:opts.full ~metrics () in
  let selected =
    match opts.only with
    | None -> reports
    | Some ids ->
      let known = List.map (fun (id, _, _) -> id) reports in
      (match List.filter (fun id -> not (List.mem id known)) ids with
       | [] -> ()
       | unknown ->
         Printf.eprintf
           "main.exe: unknown experiment id%s %s\nValid ids: %s\nUsage: main.exe \
            [--full] [--scale SCALE] [--no-wallclock] [--only IDS] [--json DIR] \
            [--metrics DIR] [--force] [--list]\n"
           (if List.length unknown > 1 then "s" else "")
           (String.concat ", " unknown)
           (String.concat ", " known);
         exit 2);
      List.filter (fun (id, _, _) -> List.mem id ids) reports
  in
  List.iter
    (fun (id, _, thunk) ->
       let report = thunk () in
       print_string (Report.to_string report);
       Option.iter (fun dir -> write_json ~force:opts.force dir report)
         opts.json_dir;
       Option.iter
         (fun dir ->
            Option.iter
              (fun m -> write_metrics ~force:opts.force dir id m)
              (Hashtbl.find_opt registries id))
         opts.metrics_dir)
    selected

(* ---- Bechamel wall-clock pass ---- *)

(* Shared tiny instance so each staged function measures query
   execution, not loading. *)
let bench_db = lazy (Ghost_db.of_schema (Medical.schema ()) (Medical.generate Medical.tiny))

let run_plan_of strategy () =
  let db = Lazy.force bench_db in
  let cat = Ghost_db.catalog db in
  let q = Ghost_db.bind db Queries.demo in
  ignore (Ghost_db.run_plan db (strategy cat q))

let bechamel_tests () =
  let db = Lazy.force bench_db in
  let cat = Ghost_db.catalog db in
  let public = Ghost_db.public db in
  let demo_q = Ghost_db.bind db Queries.demo in
  [
    Test.make ~name:"e1_fig6_all_pre" (Staged.stage (run_plan_of Planner.all_pre));
    Test.make ~name:"e1_fig6_all_post" (Staged.stage (run_plan_of Planner.all_post));
    Test.make ~name:"e1_fig6_cross" (Staged.stage (run_plan_of Planner.cross));
    Test.make ~name:"e2_crossover_point"
      (Staged.stage (fun () ->
         let sql = Queries.demo_with ~date_selectivity:0.1 () in
         ignore (Ghost_db.query db sql)));
    Test.make ~name:"e3_operator_stats"
      (Staged.stage (fun () -> ignore (Ghost_db.query db Queries.demo)));
    Test.make ~name:"e4_privacy_audit"
      (Staged.stage (fun () ->
         ignore (Ghost_db.query db Queries.demo);
         ignore (Ghost_db.audit db)));
    Test.make ~name:"e5_baseline_grace_hash"
      (Staged.stage (fun () -> ignore (Baseline.run Baseline.Grace_hash cat public demo_q)));
    Test.make ~name:"e5_baseline_sort_merge"
      (Staged.stage (fun () -> ignore (Baseline.run Baseline.Sort_merge cat public demo_q)));
    Test.make ~name:"e6_flash_asymmetry_probe" (Staged.stage (run_plan_of Planner.all_post));
    Test.make ~name:"e7_ram_probe"
      (Staged.stage (fun () ->
         ignore (Ghost_db.run_plan db ~bloom_fpr:0.1 (Planner.all_post cat demo_q))));
    Test.make ~name:"e8_usb_probe" (Staged.stage (run_plan_of Planner.all_pre));
    Test.make ~name:"e9_storage_report"
      (Staged.stage (fun () -> ignore (Ghost_db.storage db)));
    Test.make ~name:"e10_scale_probe"
      (Staged.stage (fun () -> ignore (Ghost_db.query db Queries.demo)));
    Test.make ~name:"e11_insert_probe"
      (Staged.stage (fun () ->
         (* fresh tiny instance per run: inserts are stateful *)
         let db = Ghost_db.of_schema (Medical.schema ()) (Medical.generate Medical.tiny) in
         let next = Ghostdb.Catalog.total_count (Ghost_db.catalog db) "Prescription" + 1 in
         Ghost_db.insert db
           [ [| Ghost_kernel.Value.Int next; Ghost_kernel.Value.Int 5;
                Ghost_kernel.Value.Int 2; Ghost_kernel.Value.Date Medical.date_lo;
                Ghost_kernel.Value.Int 1; Ghost_kernel.Value.Int 1 |] ]));
    Test.make ~name:"a1_approximate_post"
      (Staged.stage (fun () ->
         ignore (Ghost_db.run_plan db ~exact_post:false (Planner.all_post cat demo_q))));
    Test.make ~name:"a2_loose_bloom"
      (Staged.stage (fun () ->
         ignore (Ghost_db.run_plan db ~bloom_fpr:0.3 (Planner.all_post cat demo_q))));
    Test.make ~name:"a3_hidden_fk_check"
      (Staged.stage (fun () ->
         ignore
           (Ghost_db.query db
              "SELECT Pre.PreID FROM Prescription Pre, Visit Vis WHERE Vis.DocID = 3 \
               AND Pre.VisID = Vis.VisID")));
    Test.make ~name:"a4_skew_probe"
      (Staged.stage (fun () -> ignore (Ghost_db.query db Queries.demo)));
    Test.make ~name:"e12_lifecycle_probe"
      (Staged.stage (fun () ->
         let db = Ghost_db.of_schema (Medical.schema ()) (Medical.generate Medical.tiny) in
         Ghost_db.delete db [ 1; 2; 3 ];
         ignore (Ghost_db.reorganize db)));
    Test.make ~name:"a5_deep_cross_probe"
      (Staged.stage (fun () ->
         ignore
           (Ghost_db.query db
              "SELECT Pre.PreID FROM Prescription Pre, Visit Vis, Patient Pat WHERE \
               Vis.Date > '2005-01-01' AND Pat.BodyMassIndex >= 35.0 AND Pre.VisID \
               = Vis.VisID AND Vis.PatID = Pat.PatID")));
    Test.make ~name:"e13_calibration_probe"
      (Staged.stage (fun () ->
         ignore (Ghostdb.Planner.with_estimates cat demo_q)));
    Test.make ~name:"e14_retail_probe"
      (Staged.stage (fun () ->
         let module Retail = Ghost_workload.Retail in
         let rdb = Ghost_db.of_schema (Retail.schema ()) (Retail.generate Retail.tiny) in
         ignore (Ghost_db.query rdb (List.assoc "region_volume" Retail.queries))));
    Test.make ~name:"e18_sched_probe"
      (Staged.stage (fun () ->
         let module Scheduler = Ghost_sched.Scheduler in
         let module Driver = Ghost_sched.Workload_driver in
         ignore
           (Driver.run ~policy:Scheduler.Round_robin ~quantum_us:500. db
              { Driver.default_spec with
                Driver.clients = 2; queries_per_client = 1; theta = 1.0;
                seed = 3 })));
    Test.make ~name:"e19_fleet_probe"
      (Staged.stage (fun () ->
         let module Fleet = Ghost_fleet.Fleet in
         let module Driver = Ghost_fleet.Fleet_driver in
         let fleet =
           Fleet.create
             ~topology:
               { Fleet.shards = 2; replicas = 1; partitioning = Fleet.Range }
             (Medical.schema ()) (Medical.generate Medical.tiny)
         in
         ignore
           (Driver.run fleet
              { Driver.default_spec with
                Driver.clients = 2; queries_per_client = 1; theta = 1.0;
                seed = 3 })));
  ]

let run_bechamel () =
  let tests = Test.make_grouped ~name:"ghostdb" (bechamel_tests ()) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "== Bechamel wall-clock (host time per run) ==\n";
  let entries = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
       let est =
         match Analyze.OLS.estimates ols with
         | Some (e :: _) -> Printf.sprintf "%.0f ns" e
         | Some [] | None -> "n/a"
       in
       Printf.printf "  %-40s %12s\n" name est)
    (List.sort compare entries);
  print_newline ()

let () =
  let opts = parse_args () in
  if opts.list then list_experiments opts
  else begin
    print_experiments opts;
    if opts.wallclock then run_bechamel ()
  end
