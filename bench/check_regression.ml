(* CI perf-regression gate.

   Compares a fresh benchmark run's artifacts against the committed
   baselines in bench/baselines/:

     METRICS_<id>.json   the metrics registry export (counters, gauges,
                         simulated-time histograms) — the gate proper
     BENCH_<id>.json     the experiment table — checked for shape
                         (id/header/row count), since a silent schema
                         change would make the metric diff meaningless

   Everything compared is deterministic simulated device time, never
   host wall-clock, so the gate is stable across runners and compiler
   versions. Counters must match exactly; time-valued metrics (gauge or
   histogram stat named *.us, *_us) get a small relative tolerance and
   fail only in the slow direction — a faster run passes (and is
   reported as an improvement worth re-baselining).

   Usage:
     check_regression.exe --baseline DIR --current DIR
                          [--tolerance FRAC] [--summary FILE]

   --summary appends a markdown delta table (for $GITHUB_STEP_SUMMARY).
   Exit status: 0 all within tolerance, 1 regression, 2 usage/IO. *)

module Json = Ghost_metrics.Json

type options = {
  baseline : string;
  current : string;
  tolerance : float;
  summary : string option;
}

let parse_args () =
  let baseline = ref "" in
  let current = ref "" in
  let tolerance = ref 0.02 in
  let summary = ref None in
  let specs =
    [
      ("--baseline", Arg.Set_string baseline, "DIR committed baseline artifacts");
      ("--current", Arg.Set_string current, "DIR artifacts of the fresh run");
      ("--tolerance", Arg.Set_float tolerance,
       "FRAC relative slack for time-valued metrics (default 0.02)");
      ("--summary", Arg.String (fun f -> summary := Some f),
       "FILE append a markdown delta table (e.g. $GITHUB_STEP_SUMMARY)");
    ]
  in
  Arg.parse (Arg.align specs)
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "GhostDB perf-regression gate";
  if !baseline = "" || !current = "" then begin
    prerr_endline "check_regression: --baseline and --current are required";
    exit 2
  end;
  { baseline = !baseline; current = !current; tolerance = !tolerance;
    summary = !summary }

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    Some (really_input_string ic (in_channel_length ic))
  with Sys_error _ -> None

let load_json path =
  match read_file path with
  | None -> Error (path ^ ": cannot read")
  | Some s ->
    (match Json.parse s with
     | Ok v -> Ok v
     | Error e -> Error (path ^ ": " ^ e))

(* ---- flattening a metrics.json into comparable scalars ---- *)

(* Integrity machinery metrics ("integrity.*", "scrub.*", "repair.*"
   and the E21 cell counters) are registry counters, so they land in
   the exact-match kind below: a changed detection, refresh or repair
   count fails the gate outright, no tolerance. The E22 "oblivious_*"
   counters (pad bytes, USB bytes, modeled millibits, distinct
   fingerprints per mode) are exact-match for the same reason: padding
   and leakage accounting are deterministic functions of schema and
   public bounds, so any drift is a broken guarantee, not noise — only
   the "oblivious.<mode>.device_us" gauges get the time tolerance.
   Likewise the E23 leveled-log counters: the device-published
   "compaction.*" family (spills, merges, pages_written,
   records_dropped), "run.records_installed" and the
   "write_heavy_*.<mode>" depth counters (records, physical, L0 pages,
   runs, run pages) are exact-match — spill and merge points are a
   deterministic function of the append sequence and the configured
   thresholds, so a drifted count means the compaction state machine
   changed; only "write_heavy.<mode>.p95_us" gets the time
   tolerance. *)
type kind = Counter | Time | Gauge

(* A metric whose name carries a microsecond unit is simulated time:
   tolerated within [tolerance], and only the slow direction fails. *)
let is_time_name name =
  let ends_with suffix =
    let ls = String.length suffix and ln = String.length name in
    ln >= ls && String.sub name (ln - ls) ls = suffix
  in
  ends_with ".us" || ends_with "_us"

let obj_fields = function Json.Obj fields -> fields | _ -> []

let flatten_metrics json =
  let scalars = ref [] in
  let add kind name v =
    match Json.to_num v with
    | Some f -> scalars := (name, kind, f) :: !scalars
    | None -> ()
  in
  List.iter
    (fun (name, v) -> add Counter ("counters." ^ name) v)
    (obj_fields (Option.value ~default:Json.Null (Json.member "counters" json)));
  List.iter
    (fun (name, v) ->
       add (if is_time_name name then Time else Gauge) ("gauges." ^ name) v)
    (obj_fields (Option.value ~default:Json.Null (Json.member "gauges" json)));
  List.iter
    (fun (name, stats) ->
       let time = is_time_name name in
       List.iter
         (fun (stat, v) ->
            let kind =
              if stat = "count" then Counter
              else if time then Time
              else Gauge
            in
            add kind (Printf.sprintf "histograms.%s.%s" name stat) v)
         (obj_fields stats))
    (obj_fields
       (Option.value ~default:Json.Null (Json.member "histograms" json)));
  (match Json.member "spans_recorded" json with
   | Some v -> add Counter "spans_recorded" v
   | None -> ());
  List.rev !scalars

(* ---- verdicts ---- *)

type status = Ok_same | Improved | Regressed | Drifted | Missing | New

type delta = {
  file : string;
  metric : string;
  base : float;
  cur : float;
  status : status;
}

let status_name = function
  | Ok_same -> "ok"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Drifted -> "DRIFT"
  | Missing -> "MISSING"
  | New -> "new"

(* A metric (or file) present only in the fresh run cannot regress
   anything: it is reported as a notice, never a failure, so adding an
   experiment doesn't break CI before its baseline lands. *)
let failing = function
  | Regressed | Drifted | Missing -> true
  | Ok_same | Improved | New -> false

let compare_scalar ~tolerance kind ~base ~cur =
  match kind with
  | Counter | Gauge ->
    (* Deterministic simulation: anything but equality is a drift —
       either a workload change (re-baseline) or lost determinism. *)
    if base = cur then Ok_same else Drifted
  | Time ->
    if cur > base *. (1. +. tolerance) then Regressed
    else if cur < base *. (1. -. tolerance) then Improved
    else Ok_same

let diff_metrics ~tolerance ~file base_json cur_json =
  let base = flatten_metrics base_json in
  let cur = flatten_metrics cur_json in
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun (n, _, v) -> Hashtbl.replace cur_tbl n v) cur;
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun (n, _, v) -> Hashtbl.replace base_tbl n v) base;
  List.map
    (fun (metric, kind, b) ->
       match Hashtbl.find_opt cur_tbl metric with
       | None -> { file; metric; base = b; cur = nan; status = Missing }
       | Some c ->
         { file; metric; base = b; cur = c;
           status = compare_scalar ~tolerance kind ~base:b ~cur:c })
    base
  @ List.filter_map
      (fun (metric, _, c) ->
         if Hashtbl.mem base_tbl metric then None
         else Some { file; metric; base = nan; cur = c; status = New })
      cur

(* ---- BENCH table shape ---- *)

let str_list v =
  match v with
  | Json.Arr l -> List.filter_map Json.to_str l
  | _ -> []

let diff_bench ~file base_json cur_json =
  let get name j = Option.value ~default:Json.Null (Json.member name j) in
  let shape j =
    ( Option.bind (Json.member "id" j) Json.to_str,
      str_list (get "header" j),
      match get "rows" j with Json.Arr l -> List.length l | _ -> -1 )
  in
  let bid, bheader, brows = shape base_json in
  let cid, cheader, crows = shape cur_json in
  let mk metric base cur status = { file; metric; base; cur; status } in
  List.concat
    [
      (if bid <> cid then [ mk "table id" 0. 0. Drifted ] else []);
      (if bheader <> cheader then [ mk "table header" 0. 0. Drifted ] else []);
      (if brows <> crows then
         [ mk "row count" (Float.of_int brows) (Float.of_int crows) Drifted ]
       else []);
    ]

(* ---- reporting ---- *)

let pct_delta d =
  if d.base = 0. then (if d.cur = 0. then 0. else infinity)
  else (d.cur -. d.base) /. d.base *. 100.

let fmt_num v =
  if Float.is_nan v then "-"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let fmt_delta d =
  if Float.is_nan d.cur || Float.is_nan d.base then "-"
  else
    let p = pct_delta d in
    if p = infinity then "new" else Printf.sprintf "%+.2f%%" p

let markdown_table deltas =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "## Perf regression gate\n\n";
  let flagged = List.filter (fun d -> d.status <> Ok_same) deltas in
  let checked = List.length deltas in
  let failures = List.filter (fun d -> failing d.status) deltas in
  if failures = [] then
    Buffer.add_string buf
      (Printf.sprintf "**PASS** — %d metrics within tolerance.\n\n" checked)
  else
    Buffer.add_string buf
      (Printf.sprintf "**FAIL** — %d of %d metrics out of tolerance.\n\n"
         (List.length failures) checked);
  if flagged <> [] then begin
    Buffer.add_string buf "| file | metric | baseline | current | delta | status |\n";
    Buffer.add_string buf "|---|---|---:|---:|---:|---|\n";
    List.iter
      (fun d ->
         Buffer.add_string buf
           (Printf.sprintf "| %s | %s | %s | %s | %s | %s |\n" d.file d.metric
              (fmt_num d.base) (fmt_num d.cur) (fmt_delta d)
              (status_name d.status)))
      flagged;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let append_summary path text =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc text

let () =
  let opts = parse_args () in
  let baseline_files =
    Sys.readdir opts.baseline |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if baseline_files = [] then begin
    Printf.eprintf "check_regression: no baselines in %s\n" opts.baseline;
    exit 2
  end;
  let current_files =
    match Sys.readdir opts.current with
    | files ->
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort compare
    | exception Sys_error _ -> []
  in
  let deltas = ref [] in
  let errors = ref [] in
  List.iter
    (fun file ->
       let bpath = Filename.concat opts.baseline file in
       let cpath = Filename.concat opts.current file in
       match load_json bpath, load_json cpath with
       | Error e, _ | Ok _, Error e -> errors := e :: !errors
       | Ok b, Ok c ->
         let is_metrics =
           String.length file >= 8 && String.sub file 0 8 = "METRICS_"
         in
         let d =
           if is_metrics then
             diff_metrics ~tolerance:opts.tolerance ~file b c
           else diff_bench ~file b c
         in
         deltas := !deltas @ d)
    baseline_files;
  (* A fresh run can carry artifacts no baseline gates yet (a new
     experiment landed before its baseline was committed): surface
     them loudly as notices, never as failures. Only the two kinds
     the gate diffs count — Chrome traces and calibration reports are
     upload-only artifacts, not baselines. *)
  let gated f =
    let has_prefix p =
      String.length f >= String.length p && String.sub f 0 (String.length p) = p
    in
    has_prefix "METRICS_" || has_prefix "BENCH_"
  in
  let new_files =
    List.filter
      (fun f -> gated f && not (List.mem f baseline_files))
      current_files
  in
  List.iter
    (fun file ->
       deltas :=
         !deltas
         @ [ { file; metric = "(no baseline file)"; base = nan; cur = nan;
               status = New } ])
    new_files;
  List.iter (fun e -> Printf.eprintf "check_regression: %s\n" e) !errors;
  let deltas = !deltas in
  let failures = List.filter (fun d -> failing d.status) deltas in
  let improved = List.filter (fun d -> d.status = Improved) deltas in
  Printf.printf "checked %d metrics across %d baseline files (tolerance %.0f%%)\n"
    (List.length deltas) (List.length baseline_files)
    (opts.tolerance *. 100.);
  List.iter
    (fun file ->
       Printf.printf
         "  new metric file, no baseline: %s — commit %s to gate it\n" file
         (Filename.concat opts.baseline file))
    new_files;
  List.iter
    (fun d ->
       Printf.printf "  %-10s %s %s: %s -> %s (%s)\n" (status_name d.status)
         d.file d.metric (fmt_num d.base) (fmt_num d.cur) (fmt_delta d))
    (List.filter (fun d -> d.status <> Ok_same) deltas);
  Option.iter
    (fun path -> append_summary path (markdown_table deltas))
    opts.summary;
  if !errors <> [] then exit 2;
  if failures <> [] then begin
    Printf.printf "FAIL: %d metric(s) regressed or drifted\n"
      (List.length failures);
    exit 1
  end;
  let fresh = List.filter (fun d -> d.status = New) deltas in
  Printf.printf "PASS%s%s\n"
    (if improved <> [] then
       Printf.sprintf " (%d improvement(s) — consider re-baselining)"
         (List.length improved)
     else "")
    (if fresh <> [] then
       Printf.sprintf " (%d new metric(s) with no baseline — commit one)"
         (List.length fresh)
     else "")
