(* The multi-session scheduler: bit-identity of the single-session
   infinite-quantum path against Exec.run, the interleaving-equivalence
   property (any policy/quantum/session count returns serial rows, spy
   reports and audits), admission control under a tight arena, and
   deadline / explicit cancellation with clean release. *)

module Rng = Ghost_kernel.Rng
module Ram = Ghost_device.Ram
module Device = Ghost_device.Device
module Trace = Ghost_device.Trace
module Spy = Ghost_public.Spy
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Privacy = Ghostdb.Privacy
module Scheduler = Ghost_sched.Scheduler
module Workload_driver = Ghost_sched.Workload_driver

let tiny_db () =
  Ghost_db.of_schema (Medical.schema ()) (Medical.generate Medical.tiny)

let best_plan db sql =
  match Ghost_db.plans db sql with
  | (plan, _) :: _ -> plan
  | [] -> Alcotest.fail ("no plan for " ^ sql)

let ram_in_use db = Ram.in_use (Device.ram (Ghost_db.device db))

let strip_session (e : Trace.event) = { e with Trace.session = None }

let completed_exn sched id =
  match Scheduler.outcome sched id with
  | Some (Scheduler.Completed r) -> r
  | Some (Scheduler.Cancelled reason) ->
    Alcotest.failf "session %d cancelled (%s)" id reason
  | Some (Scheduler.Failed e) ->
    Alcotest.failf "session %d failed: %s" id (Printexc.to_string e)
  | None -> Alcotest.failf "session %d not finished" id

(* Acceptance bar: one session, infinite quantum, FIFO — every query of
   the demo suite must reproduce Exec.run bit for bit on a second
   identical database: rows, operator stats, usage, device clock, trace
   (modulo the session stamp). *)
let test_serial_bit_identity () =
  let db_serial = tiny_db () in
  let db_sched = tiny_db () in
  let sched =
    Scheduler.create (Ghost_db.catalog db_sched) (Ghost_db.public db_sched)
  in
  List.iter
    (fun (name, sql) ->
       let r_serial = Ghost_db.run_plan db_serial (best_plan db_serial sql) in
       let id = Scheduler.submit sched ~label:name (best_plan db_sched sql) in
       Scheduler.run sched;
       let r = completed_exn sched id in
       Alcotest.(check bool) (name ^ ": rows") true (r.Exec.rows = r_serial.Exec.rows);
       Alcotest.(check bool) (name ^ ": ops") true (r.Exec.ops = r_serial.Exec.ops);
       Alcotest.(check bool) (name ^ ": total usage") true
         (r.Exec.total = r_serial.Exec.total);
       Alcotest.(check (float 0.)) (name ^ ": elapsed")
         r_serial.Exec.elapsed_us r.Exec.elapsed_us;
       Alcotest.(check int) (name ^ ": ram peak") r_serial.Exec.ram_peak r.Exec.ram_peak)
    Queries.all;
  Alcotest.(check (float 0.)) "device clocks agree"
    (Device.elapsed_us (Ghost_db.device db_serial))
    (Device.elapsed_us (Ghost_db.device db_sched));
  let ev_serial = Trace.events (Ghost_db.trace db_serial) in
  let ev_sched =
    List.map strip_session (Trace.events (Ghost_db.trace db_sched))
  in
  Alcotest.(check bool) "traces identical modulo session stamp" true
    (ev_serial = ev_sched);
  Alcotest.(check int) "arena clean" 0 (ram_in_use db_sched)

(* The interleaving-equivalence property (random tree schemas reused
   from the end-to-end suite): whatever the policy, quantum and session
   count, every session returns the rows, spy report and audit verdict
   of the same query run serially on an identical database. *)
module T = Test_random_schema

let policies = [| Scheduler.Fifo; Scheduler.Round_robin; Scheduler.Cost_based |]
let quanta = [| 40.; 250.; 2000.; infinity |]

let run_interleaving_case seed =
  let rng = Rng.create (seed lxor 0x3c6ef3) in
  let tables = T.random_tables rng in
  let schema = T.schema_of_tables tables in
  let rows = T.random_rows rng tables in
  let db_serial = Ghost_db.of_schema schema rows in
  let db_sched = Ghost_db.of_schema schema rows in
  let n_sessions = Rng.int_in rng 2 6 in
  let queries = List.init n_sessions (fun _ -> T.random_query rng schema) in
  let serial =
    List.map
      (fun (sql, ordered) ->
         Ghost_db.clear_trace db_serial;
         let r = Ghost_db.run_plan db_serial (best_plan db_serial sql) in
         (sql, ordered, r.Exec.rows, Ghost_db.spy_report db_serial))
      queries
  in
  let policy = Rng.pick rng policies in
  let quantum_us = Rng.pick rng quanta in
  let sched =
    Scheduler.create ~policy ~quantum_us (Ghost_db.catalog db_sched)
      (Ghost_db.public db_sched)
  in
  let ids =
    List.map (fun (sql, _) -> Scheduler.submit sched (best_plan db_sched sql)) queries
  in
  Scheduler.run sched;
  let ok = ref true in
  let trace = Ghost_db.trace db_sched in
  List.iter2
    (fun id (sql, ordered, want_rows, want_spy) ->
       (match Scheduler.outcome sched id with
        | Some (Scheduler.Completed r) ->
          let same =
            if ordered then r.Exec.rows = want_rows
            else T.rows_equal r.Exec.rows want_rows
          in
          if not same then begin
            Printf.printf "SCHED ROW MISMATCH seed=%d %s sql=%s got=%d want=%d\n"
              seed (Scheduler.policy_name policy) sql (List.length r.Exec.rows)
              (List.length want_rows);
            ok := false
          end;
          if Spy.analyze ~session:id trace <> want_spy then begin
            Printf.printf "SCHED SPY MISMATCH seed=%d %s q=%g sql=%s\n" seed
              (Scheduler.policy_name policy) quantum_us sql;
            ok := false
          end;
          let v = Privacy.audit ~session:id trace in
          if not v.Privacy.ok then begin
            Printf.printf "SCHED SESSION AUDIT FAILED seed=%d sql=%s\n" seed sql;
            ok := false
          end
        | outcome ->
          Printf.printf "SCHED NOT COMPLETED seed=%d sql=%s (%s)\n" seed sql
            (match outcome with
             | Some (Scheduler.Cancelled reason) -> "cancelled: " ^ reason
             | Some (Scheduler.Failed e) -> Printexc.to_string e
             | Some (Scheduler.Completed _) | None -> "pending");
          ok := false))
    ids serial;
  let v = Privacy.audit trace in
  if not v.Privacy.ok then begin
    Printf.printf "SCHED GLOBAL AUDIT FAILED seed=%d\n" seed;
    ok := false
  end;
  if ram_in_use db_sched <> 0 then begin
    Printf.printf "SCHED RAM LEAK seed=%d: %d B\n" seed (ram_in_use db_sched);
    ok := false
  end;
  !ok

let prop_interleaving =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"any policy/quantum/session-count = serial rows, spy, audit"
       ~count:25
       QCheck.(int_range 0 1_000_000)
       run_interleaving_case)

(* Admission control: with working-RAM requests sized so at most one
   fits, sessions queue and the arena never over-commits; everyone
   still completes. *)
let test_admission_queues () =
  let db = tiny_db () in
  let ram = Device.ram (Ghost_db.device db) in
  let budget = Ram.budget ram in
  let sched =
    Scheduler.create ~quantum_us:500.
      (Ghost_db.catalog db) (Ghost_db.public db)
  in
  let working_ram = (budget / 2) + 1024 in
  let ids =
    List.map
      (fun (_, sql) -> Scheduler.submit sched ~working_ram (best_plan db sql))
      [ List.nth Queries.all 0; List.nth Queries.all 1; List.nth Queries.all 2 ]
  in
  Alcotest.(check bool) "first step does work" true (Scheduler.step sched);
  let st = Scheduler.stats sched in
  Alcotest.(check int) "one admitted" 1 st.Scheduler.runnable;
  Alcotest.(check int) "two queued" 2 st.Scheduler.queued;
  Alcotest.(check bool) "over-committed reservations blocked" true
    (Ram.in_use ram <= budget);
  Scheduler.run sched;
  List.iter (fun id -> ignore (completed_exn sched id)) ids;
  let st = Scheduler.stats sched in
  Alcotest.(check int) "all finished" 3 st.Scheduler.finished;
  Alcotest.(check bool) "admission was blocked at least once" true
    (st.Scheduler.admission_blocked > 0);
  Alcotest.(check int) "arena clean" 0 (Ram.in_use ram)

(* A deadline expires mid-execution: the session is cancelled with
   reason "deadline", its RAM and scratch come back, and a sibling
   session still completes. *)
let test_deadline_cancel () =
  let db = tiny_db () in
  let sched =
    Scheduler.create ~quantum_us:200. (Ghost_db.catalog db) (Ghost_db.public db)
  in
  let doomed =
    Scheduler.submit sched ~deadline_us:50. (best_plan db Queries.demo)
  in
  let survivor = Scheduler.submit sched (best_plan db Queries.demo) in
  Scheduler.run sched;
  (match Scheduler.outcome sched doomed with
   | Some (Scheduler.Cancelled "deadline") -> ()
   | _ -> Alcotest.fail "expected a deadline cancellation");
  ignore (completed_exn sched survivor);
  Alcotest.(check int) "arena clean" 0 (ram_in_use db)

(* Explicit cancellation of a suspended session mid-flight. *)
let test_explicit_cancel () =
  let db = tiny_db () in
  let db_ref = tiny_db () in
  let sched =
    Scheduler.create ~quantum_us:200. (Ghost_db.catalog db) (Ghost_db.public db)
  in
  let victim = Scheduler.submit sched (best_plan db Queries.demo) in
  let survivor = Scheduler.submit sched (best_plan db Queries.demo) in
  for _ = 1 to 3 do
    ignore (Scheduler.step sched)
  done;
  Scheduler.cancel sched victim;
  Scheduler.cancel sched victim;  (* idempotent *)
  Scheduler.run sched;
  (match Scheduler.outcome sched victim with
   | Some (Scheduler.Cancelled _) -> ()
   | _ -> Alcotest.fail "expected the victim cancelled");
  let r = completed_exn sched survivor in
  let r_ref = Ghost_db.run_plan db_ref (best_plan db_ref Queries.demo) in
  Alcotest.(check bool) "survivor rows = serial" true
    (T.rows_equal r.Exec.rows r_ref.Exec.rows);
  let v = Privacy.audit ~session:survivor (Ghost_db.trace db) in
  Alcotest.(check bool) "survivor audit ok" true v.Privacy.ok;
  Alcotest.(check int) "arena clean" 0 (ram_in_use db)

(* Round-robin actually interleaves: with a finite quantum and two
   sessions, the first completion must not monopolize the device —
   both sessions accumulate slices before either finishes. *)
let test_round_robin_interleaves () =
  let db = tiny_db () in
  let sched =
    Scheduler.create ~policy:Scheduler.Round_robin ~quantum_us:100.
      (Ghost_db.catalog db) (Ghost_db.public db)
  in
  let a = Scheduler.submit sched (best_plan db Queries.demo) in
  let b = Scheduler.submit sched (best_plan db Queries.demo) in
  Scheduler.run sched;
  let fa = Scheduler.usage sched a and fb = Scheduler.usage sched b in
  Alcotest.(check bool) "both sessions were charged" true
    (fa.Device.total_us > 0. && fb.Device.total_us > 0.);
  ignore (completed_exn sched a);
  ignore (completed_exn sched b)

(* The invalid-argument surface. *)
let test_invalid_args () =
  let db = tiny_db () in
  let expect_invalid label f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "bloom_fpr = 0" (fun () ->
    Ghost_db.query db ~bloom_fpr:0. Queries.demo);
  expect_invalid "bloom_fpr = 1" (fun () ->
    Ghost_db.query db ~bloom_fpr:1. Queries.demo);
  expect_invalid "bloom_fpr < 0" (fun () ->
    Ghost_db.query db ~bloom_fpr:(-0.5) Queries.demo);
  expect_invalid "bloom_fpr nan" (fun () ->
    Ghost_db.query db ~bloom_fpr:Float.nan Queries.demo);
  expect_invalid "run_plan bloom_fpr" (fun () ->
    Ghost_db.run_plan db ~bloom_fpr:2. (best_plan db Queries.demo));
  expect_invalid "scheduler quantum" (fun () ->
    Scheduler.create ~quantum_us:0. (Ghost_db.catalog db) (Ghost_db.public db));
  expect_invalid "scheduler bloom_fpr" (fun () ->
    Scheduler.create ~bloom_fpr:1.5 (Ghost_db.catalog db) (Ghost_db.public db));
  let sched = Scheduler.create (Ghost_db.catalog db) (Ghost_db.public db) in
  expect_invalid "submit deadline" (fun () ->
    Scheduler.submit sched ~deadline_us:0. (best_plan db Queries.demo));
  expect_invalid "submit working_ram" (fun () ->
    Scheduler.submit sched ~working_ram:(-1) (best_plan db Queries.demo))

(* The closed-loop driver at a small scale: everything completes,
   latencies are measured, throughput is positive. *)
let test_driver_smoke () =
  let db = tiny_db () in
  let spec =
    { Workload_driver.default_spec with
      Workload_driver.clients = 3; queries_per_client = 2; theta = 1.0; seed = 7 }
  in
  let s =
    Workload_driver.run ~policy:Scheduler.Round_robin ~quantum_us:500. db spec
  in
  Alcotest.(check int) "all queries completed" 6 s.Workload_driver.completed;
  Alcotest.(check int) "none cancelled" 0 s.Workload_driver.cancelled;
  Alcotest.(check int) "none failed" 0 s.Workload_driver.failed;
  Alcotest.(check bool) "positive throughput" true
    (s.Workload_driver.throughput_qps > 0.);
  Alcotest.(check bool) "p50 <= p95" true
    (s.Workload_driver.latency_p50_us <= s.Workload_driver.latency_p95_us);
  Alcotest.(check int) "arena clean" 0 (ram_in_use db);
  let v = Ghost_db.audit db in
  Alcotest.(check bool) "audit ok after workload" true v.Privacy.ok

let suite =
  [
    Alcotest.test_case "single session, infinite quantum = Exec.run" `Quick
      test_serial_bit_identity;
    prop_interleaving;
    Alcotest.test_case "admission control queues on RAM pressure" `Quick
      test_admission_queues;
    Alcotest.test_case "deadline cancellation releases cleanly" `Quick
      test_deadline_cancel;
    Alcotest.test_case "explicit cancellation mid-flight" `Quick
      test_explicit_cancel;
    Alcotest.test_case "round-robin interleaves two sessions" `Quick
      test_round_robin_interleaves;
    Alcotest.test_case "invalid arguments are rejected" `Quick test_invalid_args;
    Alcotest.test_case "closed-loop driver smoke" `Quick test_driver_smoke;
  ]
