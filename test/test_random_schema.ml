(* Randomized end-to-end property: arbitrary tree schemas, arbitrary
   data, arbitrary conjunctive queries - every plan in the panel must
   return the reference evaluator's rows, nothing may leak, and all
   device RAM must be released. This is the repository's main defense
   against corner cases the medical workload never hits. *)

module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng
module Ram = Ghost_device.Ram
module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan

let vocab = [| "red"; "green"; "blue"; "cyan"; "plum"; "gray"; "pink"; "teal" |]

type gen_column = {
  gc_name : string;
  gc_ty : Value.ty;
  gc_hidden : bool;
  gc_refs : string option;
}

type gen_table = {
  gt_name : string;
  gt_key : string;
  gt_cols : gen_column list;
  gt_rows : int;
}

(* A random tree schema: table 0 is the root; every other table hangs
   off a random earlier table through a foreign key (hidden with
   probability 2/3, as in the demo scenario). *)
let random_tables rng =
  let n_tables = Rng.int_in rng 2 5 in
  let tables =
    Array.init n_tables (fun i ->
      let n_attrs = Rng.int_in rng 1 3 in
      let attrs =
        List.init n_attrs (fun j ->
          let ty =
            match Rng.int rng 4 with
            | 0 -> Value.T_int
            | 1 -> Value.T_char 12
            | 2 -> Value.T_date
            | _ -> Value.T_float
          in
          {
            gc_name = Printf.sprintf "a%d" j;
            gc_ty = ty;
            gc_hidden = Rng.bool rng;
            gc_refs = None;
          })
      in
      {
        gt_name = Printf.sprintf "T%d" i;
        gt_key = Printf.sprintf "T%dID" i;
        gt_cols = attrs;
        gt_rows = Rng.int_in rng 3 120;
      })
  in
  (* parent links: the PARENT holds the fk column to the child *)
  for child = 1 to n_tables - 1 do
    let parent = Rng.int rng child in
    let fk =
      {
        gc_name = Printf.sprintf "fk_T%d" child;
        gc_ty = Value.T_int;
        gc_hidden = Rng.int rng 3 < 2;
        gc_refs = Some tables.(child).gt_name;
      }
    in
    tables.(parent) <- { tables.(parent) with gt_cols = tables.(parent).gt_cols @ [ fk ] }
  done;
  tables

let schema_of_tables tables =
  Schema.create
    (Array.to_list tables
     |> List.map (fun gt ->
       Schema.table ~name:gt.gt_name ~key:gt.gt_key
         (List.map
            (fun gc ->
               Column.make
                 ~visibility:(if gc.gc_hidden then Column.Hidden else Column.Visible)
                 ?refs:gc.gc_refs gc.gc_name gc.gc_ty)
            gt.gt_cols)))

(* Small domains so predicates actually select something. *)
let random_value rng = function
  | Value.T_int -> Value.Int (Rng.int_in rng 0 20)
  | Value.T_char _ -> Value.Str (Rng.pick rng vocab)
  | Value.T_date -> Value.Date (Rng.int_in rng 12000 12030)
  | Value.T_float -> Value.Float (Float.of_int (Rng.int_in rng 0 10) /. 2.)

let random_rows rng (tables : gen_table array) =
  Array.to_list tables
  |> List.map (fun gt ->
    let rows =
      List.init gt.gt_rows (fun i ->
        let attrs =
          List.map
            (fun gc ->
               match gc.gc_refs with
               | Some target ->
                 let n =
                   (Array.to_list tables
                    |> List.find (fun t -> t.gt_name = target))
                     .gt_rows
                 in
                 Value.Int (Rng.int_in rng 1 n)
               | None -> random_value rng gc.gc_ty)
            gt.gt_cols
        in
        Array.of_list (Value.Int (i + 1) :: attrs))
    in
    (gt.gt_name, rows))

(* A random connected FROM set: walk down from a random start table. *)
let random_from rng schema =
  let root = (Schema.root schema).Schema.name in
  let start =
    let all = Array.of_list (List.map (fun t -> t.Schema.name) (Schema.tables schema)) in
    Rng.pick rng all
  in
  ignore root;
  let rec grow set frontier =
    let next =
      List.concat_map
        (fun t -> List.map fst (Schema.children schema t))
        frontier
      |> List.filter (fun t -> not (List.mem t set))
    in
    let keep = List.filter (fun _ -> Rng.int rng 3 < 2) next in
    if keep = [] then set else grow (set @ keep) keep
  in
  grow [ start ] [ start ]

(* SQL surface form of a random literal of the given type. *)
let random_literal rng ty =
  match random_value rng ty with
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.Date d -> Printf.sprintf "'%s'" (Ghost_kernel.Date.to_string d)
  | Value.Str s -> Printf.sprintf "'%s'" s
  | Value.Null -> assert false

let render_cmp rng (tbl : Schema.table) (gc : Column.t) =
  let lit () = random_literal rng gc.Column.ty in
  let is_char = match gc.Column.ty with Value.T_char _ -> true | _ -> false in
  let cmp =
    match Rng.int rng (if is_char then 7 else 6) with
    | 0 -> Printf.sprintf "= %s" (lit ())
    | 1 -> Printf.sprintf "<> %s" (lit ())
    | 2 -> Printf.sprintf "< %s" (lit ())
    | 3 -> Printf.sprintf ">= %s" (lit ())
    | 4 -> Printf.sprintf "BETWEEN %s AND %s" (lit ()) (lit ())
    | 5 -> Printf.sprintf "IN (%s, %s)" (lit ()) (lit ())
    | _ ->
      (* LIKE with a short prefix of a vocabulary word *)
      let word = Rng.pick rng vocab in
      let len = Rng.int_in rng 1 (min 3 (String.length word)) in
      Printf.sprintf "LIKE '%s%%'" (String.sub word 0 len)
  in
  Printf.sprintf "%s.%s %s" tbl.Schema.name gc.Column.name cmp


let random_query rng schema =
  let from = random_from rng schema in
  let joins =
    (* every non-start table joins through its parent edge; parents of
       FROM tables are in FROM by construction of the walk *)
    List.filter_map
      (fun t ->
         match Schema.parent schema t with
         | Some (p, fk) when List.mem p from && List.mem t from ->
           Some (Printf.sprintf "%s.%s = %s.%s" p fk t
                   (Schema.find_table schema t).Schema.key)
         | _ -> None)
      from
  in
  let preds =
    List.concat_map
      (fun t ->
         let tbl = Schema.find_table schema t in
         List.filter_map
           (fun (gc : Column.t) ->
              if gc.Column.refs <> None then None
              else if Rng.int rng 3 = 0 then Some (render_cmp rng tbl gc)
              else None)
           tbl.Schema.columns)
      from
  in
  let projections =
    List.concat_map
      (fun t ->
         let tbl = Schema.find_table schema t in
         (Printf.sprintf "%s.%s" t tbl.Schema.key)
         :: List.filter_map
              (fun (gc : Column.t) ->
                 if Rng.bool rng then Some (Printf.sprintf "%s.%s" t gc.Column.name)
                 else None)
              tbl.Schema.columns)
      from
  in
  let where = joins @ preds in
  let start = List.hd from in
  let start_key = (Schema.find_table schema start).Schema.key in
  (* three surface shapes: plain SPJ, ordered (by the unique top key, so
     the expected output is a deterministic list), or aggregated *)
  let shape = Rng.int rng 4 in
  let select_clause, tail_clause, ordered =
    if shape = 3 then begin
      (* aggregate over the whole result, or grouped on one column *)
      let agg_col = Printf.sprintf "%s.%s" start start_key in
      if Rng.bool rng then
        (Printf.sprintf "COUNT(*), MIN(%s), MAX(%s)" agg_col agg_col, "", false)
      else begin
        let gtbl = Schema.find_table schema (Rng.pick rng (Array.of_list from)) in
        let gcols =
          List.filter (fun (c : Column.t) -> c.Column.refs = None) gtbl.Schema.columns
        in
        match gcols with
        | [] -> (Printf.sprintf "COUNT(*)" , "", false)
        | _ ->
          let gc = Rng.pick rng (Array.of_list gcols) in
          ( Printf.sprintf "%s.%s, COUNT(*)" gtbl.Schema.name gc.Column.name,
            Printf.sprintf " GROUP BY %s.%s" gtbl.Schema.name gc.Column.name,
            false )
      end
    end
    else if shape = 2 then
      ( String.concat ", " projections,
        Printf.sprintf " ORDER BY %s.%s%s%s" start start_key
          (if Rng.bool rng then " DESC" else "")
          (if Rng.bool rng then Printf.sprintf " LIMIT %d" (Rng.int_in rng 0 20) else ""),
        true )
    else (String.concat ", " projections, "", false)
  in
  ( Printf.sprintf "SELECT %s FROM %s%s%s" select_clause (String.concat ", " from)
      (match where with
       | [] -> ""
       | w -> " WHERE " ^ String.concat " AND " w)
      tail_clause,
    ordered )

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

let run_case seed =
  let rng = Rng.create seed in
  let tables = random_tables rng in
  let schema = schema_of_tables tables in
  let rows = random_rows rng tables in
  let db = Ghost_db.of_schema schema rows in
  let refdb = Reference.db_of_rows schema rows in
  let ok = ref true in
  for _ = 1 to 3 do
    let sql, ordered = random_query rng schema in
    let q =
      try Ghost_db.bind db sql
      with e ->
        Printf.printf "BIND FAILURE seed=%d on %s\n" seed sql;
        raise e
    in
    let expected = Reference.run schema refdb q in
    let panel = Ghost_db.plans db sql in
    List.iteri
      (fun i (plan, _) ->
         if i < 8 then begin
           let r = Ghost_db.run_plan db plan in
           let same =
             if ordered then r.Exec.rows = expected
             else rows_equal r.Exec.rows expected
           in
           if not same then begin
             Printf.printf "MISMATCH seed=%d sql=%s plan=[%s] got=%d want=%d\n" seed sql
               plan.Plan.label (List.length r.Exec.rows) (List.length expected);
             ok := false
           end;
           if Ram.in_use (Device.ram (Ghost_db.device db)) <> 0 then begin
             Printf.printf "RAM LEAK seed=%d plan=[%s]\n" seed plan.Plan.label;
             ok := false
           end
         end)
      panel
  done;
  let verdict = Ghost_db.audit db in
  if not verdict.Ghostdb.Privacy.ok then begin
    Printf.printf "PRIVACY VIOLATION seed=%d\n" seed;
    ok := false
  end;
  !ok

(* Second property: journaled reorganization under fault injection.
   With durable logs and a lossy NAND (read flips corrected by ECC,
   occasional program failures remapped by the controller), inserting
   and deleting random root rows then reorganizing must produce a fresh
   image whose answers match the reference on the compacted root ids,
   with the delta folded and at least one checkpoint journaled. *)
let run_reorg_case seed =
  let rng = Rng.create (seed lxor 0x5bd1e9) in
  let tables = random_tables rng in
  let schema = schema_of_tables tables in
  let rows = random_rows rng tables in
  let root = tables.(0) in
  let device_config =
    {
      Device.default_config with
      Device.durable_logs = true;
      flash_fault =
        Some
          {
            Flash.no_faults with
            Flash.fault_seed = seed;
            read_flip_prob = 1e-3;
            program_fail_prob = 1e-3;
          };
    }
  in
  let db = Ghost_db.of_schema ~device_config schema rows in
  let n_base = root.gt_rows in
  let fresh_root_row id =
    let attrs =
      List.map
        (fun gc ->
           match gc.gc_refs with
           | Some target ->
             let n =
               (Array.to_list tables
                |> List.find (fun t -> t.gt_name = target))
                 .gt_rows
             in
             Value.Int (Rng.int_in rng 1 n)
           | None -> random_value rng gc.gc_ty)
        root.gt_cols
    in
    Array.of_list (Value.Int id :: attrs)
  in
  let n_ins = Rng.int_in rng 1 8 in
  let batch = List.init n_ins (fun i -> fresh_root_row (n_base + i + 1)) in
  Ghost_db.insert db batch;
  let doomed =
    List.init (Rng.int_in rng 1 5) (fun _ -> Rng.int_in rng 1 (n_base + n_ins))
    |> List.sort_uniq compare
  in
  Ghost_db.delete db doomed;
  let db2 = Ghost_db.reorganize db in
  let ok = ref true in
  let f = Device.fault_counters (Ghost_db.device db) in
  if f.Device.reorg_checkpoints = 0 then begin
    Printf.printf "NO CHECKPOINTS seed=%d\n" seed;
    ok := false
  end;
  if Ghost_db.delta_count db2 <> 0 then begin
    Printf.printf "DELTA NOT FOLDED seed=%d\n" seed;
    ok := false
  end;
  (* the reference sees the survivors on their compacted ids: remaining
     root rows keep their order and are renumbered 1..k *)
  let survivors =
    List.filteri
      (fun i _ -> not (List.mem (i + 1) doomed))
      (List.assoc root.gt_name rows @ batch)
  in
  let compacted =
    List.mapi
      (fun i r ->
         let r' = Array.copy r in
         r'.(0) <- Value.Int (i + 1);
         r')
      survivors
  in
  let rows' =
    List.map
      (fun (name, rs) ->
         if name = root.gt_name then (name, compacted) else (name, rs))
      rows
  in
  let refdb = Reference.db_of_rows schema rows' in
  for _ = 1 to 3 do
    let sql, ordered = random_query rng schema in
    let q =
      try Ghost_db.bind db2 sql
      with e ->
        Printf.printf "BIND FAILURE seed=%d on %s\n" seed sql;
        raise e
    in
    let expected = Reference.run schema refdb q in
    let r = Ghost_db.query db2 sql in
    let same =
      if ordered then r.Exec.rows = expected else rows_equal r.Exec.rows expected
    in
    if not same then begin
      Printf.printf "REORG MISMATCH seed=%d sql=%s got=%d want=%d\n" seed sql
        (List.length r.Exec.rows) (List.length expected);
      ok := false
    end
  done;
  let verdict = Ghost_db.audit db2 in
  if not verdict.Ghostdb.Privacy.ok then begin
    Printf.printf "PRIVACY VIOLATION after reorg seed=%d\n" seed;
    ok := false
  end;
  !ok

let prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random tree schemas: all plans = reference" ~count:40
       QCheck.(int_range 0 1_000_000)
       run_case)

let prop_reorg =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"random schemas: faulty reorganization = reference on compacted ids"
       ~count:20
       QCheck.(int_range 0 1_000_000)
       run_reorg_case)

let suite = [ prop; prop_reorg ]
