(* Tests for the NAND Flash simulator. *)

module Flash = Ghost_flash.Flash

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let small_geometry = { Flash.page_size = 64; pages_per_block = 4 }

let test_append_read_roundtrip () =
  let f = Flash.create ~geometry:small_geometry () in
  let p0 = Flash.append f (Bytes.of_string "hello") in
  let p1 = Flash.append f (Bytes.of_string "world") in
  check Alcotest.int "page ids" 0 p0;
  check Alcotest.int "page ids" 1 p1;
  check Alcotest.string "read back" "hello"
    (Bytes.to_string (Flash.read f ~page:p0 ~off:0 ~len:5));
  check Alcotest.string "partial" "orl"
    (Bytes.to_string (Flash.read f ~page:p1 ~off:1 ~len:3))

let test_padding_reads_zero () =
  let f = Flash.create ~geometry:small_geometry () in
  let p = Flash.append f (Bytes.of_string "ab") in
  let b = Flash.read f ~page:p ~off:0 ~len:10 in
  check Alcotest.string "padded" "ab\000\000\000\000\000\000\000\000" (Bytes.to_string b)

let test_page_overflow () =
  let f = Flash.create ~geometry:small_geometry () in
  Alcotest.check_raises "overflow"
    (Flash.Program_error "append: 65 bytes exceeds page size 64") (fun () ->
      ignore (Flash.append f (Bytes.make 65 'x')))

let test_erase_and_reuse () =
  let f = Flash.create ~geometry:small_geometry () in
  for _ = 1 to 8 do
    ignore (Flash.append f (Bytes.of_string "data"))
  done;
  check Alcotest.int "8 pages" 8 (Flash.page_count f);
  Flash.erase_block f 0;
  (* pages 0-3 free again; next appends reuse them, no growth *)
  for _ = 1 to 4 do
    ignore (Flash.append f (Bytes.of_string "new"))
  done;
  check Alcotest.int "no growth after erase" 8 (Flash.page_count f);
  let s = Flash.stats f in
  check Alcotest.int "one erase" 1 s.Flash.block_erases

let test_read_erased_page_fails () =
  let f = Flash.create ~geometry:small_geometry () in
  ignore (Flash.append f (Bytes.of_string "x"));
  Flash.erase_block f 0;
  Alcotest.check_raises "read erased" (Invalid_argument "Flash.read: page 0 is erased")
    (fun () -> ignore (Flash.read f ~page:0 ~off:0 ~len:1))

let test_cost_accounting () =
  let cost = {
    Flash.read_seek_us = 10.;
    read_byte_us = 1.;
    program_seek_us = 100.;
    program_byte_us = 2.;
    erase_us = 1000.;
  } in
  let f = Flash.create ~geometry:small_geometry ~cost () in
  ignore (Flash.append f (Bytes.make 10 'a'));
  ignore (Flash.read f ~page:0 ~off:0 ~len:4);
  Flash.erase_block f 0;
  let s = Flash.stats f in
  check (Alcotest.float 1e-6) "write time" (100. +. 20. +. 1000.) s.Flash.write_time_us;
  check (Alcotest.float 1e-6) "read time" (10. +. 4.) s.Flash.read_time_us;
  check Alcotest.int "bytes" 10 s.Flash.bytes_programmed;
  check Alcotest.int "bytes read" 4 s.Flash.bytes_read

let test_write_ratio_calibration () =
  List.iter
    (fun ratio ->
       let cost = Flash.cost_with_write_ratio ratio in
       let g = Flash.default_geometry in
       let read_full =
         cost.Flash.read_seek_us
         +. (Float.of_int g.Flash.page_size *. cost.Flash.read_byte_us)
       in
       let prog_full =
         cost.Flash.program_seek_us
         +. (Float.of_int g.Flash.page_size *. cost.Flash.program_byte_us)
       in
       check (Alcotest.float 1e-6) "ratio" ratio (prog_full /. read_full))
    [ 1.; 3.; 5.; 10. ]

let test_erase_live_blocks () =
  let f = Flash.create ~geometry:small_geometry () in
  for _ = 1 to 6 do
    ignore (Flash.append f (Bytes.of_string "s"))
  done;
  Flash.erase_live_blocks f;
  check Alcotest.int "two blocks erased" 2 (Flash.stats f).Flash.block_erases;
  check Alcotest.int "nothing live" 0 (Flash.live_bytes f);
  Flash.erase_live_blocks f;
  check Alcotest.int "idempotent" 2 (Flash.stats f).Flash.block_erases

let test_stats_diff () =
  let f = Flash.create ~geometry:small_geometry () in
  ignore (Flash.append f (Bytes.of_string "a"));
  let before = Flash.stats f in
  ignore (Flash.append f (Bytes.of_string "b"));
  let d = Flash.diff_stats ~after:(Flash.stats f) ~before in
  check Alcotest.int "one program in window" 1 d.Flash.page_programs

(* Whole blocks are erased, as on real NAND: reclaiming one run's
   pages wipes every other run sharing the block. *)
let test_erase_pages_shared_block () =
  let f = Flash.create ~geometry:small_geometry () in
  (* block 0: pages 0,1 belong to a "live" run, pages 2,3 to a
     "scratch" run *)
  let l0 = Flash.append f (Bytes.of_string "live") in
  let l1 = Flash.append f (Bytes.of_string "live") in
  let s0 = Flash.append f (Bytes.of_string "tmp") in
  let s1 = Flash.append f (Bytes.of_string "tmp") in
  let live = [ l0; l1 ] and scratch = [ s0; s1 ] in
  check Alcotest.(list int) "same block" [ 0; 0; 0; 0 ]
    (List.map (fun p -> p / 4) (live @ scratch));
  Flash.erase_pages f scratch;
  check Alcotest.int "one block erase" 1 (Flash.stats f).Flash.block_erases;
  (* the live run's pages are collateral damage of the block erase *)
  List.iter
    (fun p ->
       Alcotest.check_raises "live page gone"
         (Invalid_argument (Printf.sprintf "Flash.read: page %d is erased" p))
         (fun () -> ignore (Flash.read f ~page:p ~off:0 ~len:1)))
    live;
  check Alcotest.int "all 4 pages reusable" 4 (List.length (List.init 4 (fun _ ->
    Flash.append f (Bytes.of_string "x"))));
  check Alcotest.int "no growth" 4 (Flash.page_count f)

let test_program_non_erased_page () =
  let f = Flash.create ~geometry:small_geometry () in
  let p = Flash.append f (Bytes.of_string "first") in
  Alcotest.check_raises "no in-place writes"
    (Flash.Program_error (Printf.sprintf "page %d is not erased" p)) (fun () ->
      Flash.program f ~page:p (Bytes.of_string "second"));
  (* after a block erase the same page programs fine *)
  Flash.erase_block f 0;
  Flash.program f ~page:p (Bytes.of_string "second");
  check Alcotest.string "reprogrammed" "second"
    (Bytes.to_string (Flash.read f ~page:p ~off:0 ~len:6))

let fault_with ?(seed = 7) ?(flip = 0.) ?(fail = 0.) ?(ecc = true) () =
  { Flash.no_faults with
    Flash.fault_seed = seed; read_flip_prob = flip; program_fail_prob = fail; ecc }

let test_read_flip_ecc_corrects () =
  let f = Flash.create ~geometry:small_geometry ~fault:(fault_with ~flip:1.0 ()) () in
  let p = Flash.append f (Bytes.of_string "payload") in
  let reads_before = (Flash.stats f).Flash.page_reads in
  let b = Flash.read f ~page:p ~off:0 ~len:7 in
  check Alcotest.string "ecc returns true data" "payload" (Bytes.to_string b);
  let fs = Flash.fault_stats f in
  check Alcotest.int "flip injected" 1 fs.Flash.bit_flips;
  check Alcotest.int "flip corrected" 1 fs.Flash.ecc_corrected;
  check Alcotest.int "corrective re-read charged" 2
    ((Flash.stats f).Flash.page_reads - reads_before)

let test_read_flip_no_ecc_corrupts () =
  let f =
    Flash.create ~geometry:small_geometry ~fault:(fault_with ~flip:1.0 ~ecc:false ()) ()
  in
  let p = Flash.append f (Bytes.of_string "payload") in
  let b = Flash.read f ~page:p ~off:0 ~len:7 in
  check Alcotest.bool "corrupted buffer" true (Bytes.to_string b <> "payload");
  check Alcotest.int "flip counted" 1 (Flash.fault_stats f).Flash.bit_flips;
  check Alcotest.int "nothing corrected" 0 (Flash.fault_stats f).Flash.ecc_corrected

let test_program_failure_remaps () =
  (* Seeded so some attempts fail: the write must land on a healthy
     block and the failed blocks must be retired. *)
  let f =
    Flash.create ~geometry:small_geometry ~fault:(fault_with ~seed:3 ~fail:0.2 ()) ()
  in
  let pages = List.init 40 (fun i -> Flash.append f (Bytes.of_string (string_of_int i))) in
  List.iteri
    (fun i p ->
       check Alcotest.string "data on remapped page" (string_of_int i)
         (Bytes.to_string (Flash.read f ~page:p ~off:0 ~len:(String.length (string_of_int i)))))
    pages;
  let fs = Flash.fault_stats f in
  check Alcotest.bool "failures injected" true (fs.Flash.program_failures > 0);
  check Alcotest.bool "remaps recorded" true (fs.Flash.pages_remapped > 0);
  check Alcotest.bool "blocks retired" true (Flash.bad_block_count f > 0)

let test_program_failure_bounded () =
  let f =
    Flash.create ~geometry:small_geometry
      ~fault:{ (fault_with ~fail:1.0 ()) with Flash.max_program_retries = 2 } ()
  in
  (try
     ignore (Flash.append f (Bytes.of_string "x"));
     Alcotest.fail "expected Program_error"
   with Flash.Program_error msg ->
     check Alcotest.bool "reports attempts" true
       (String.length msg > 0 && (Flash.fault_stats f).Flash.program_failures = 3));
  check Alcotest.int "every attempt retired a block" 3 (Flash.bad_block_count f)

let test_power_cut_tears_page () =
  let f = Flash.create ~geometry:small_geometry () in
  let intended = Bytes.of_string "abcdefgh" in
  Flash.arm_power_cut f ~after_programs:2;
  let p0 = Flash.append f intended in
  check Alcotest.string "first program unaffected" "abcdefgh"
    (Bytes.to_string (Flash.read f ~page:p0 ~off:0 ~len:8));
  (try
     ignore (Flash.append f intended);
     Alcotest.fail "expected Power_cut"
   with Flash.Power_cut { page; programmed } -> begin
     check Alcotest.bool "strict prefix" true (programmed < 8);
     (* the torn page reads back as prefix + erased padding, never the
        full intended content *)
     let b = Flash.read f ~page ~off:0 ~len:8 in
     check Alcotest.bool "torn, not completed" true (Bytes.to_string b <> "abcdefgh");
     check Alcotest.string "prefix survives" (String.sub "abcdefgh" 0 programmed)
       (Bytes.sub_string b 0 programmed)
   end);
  check Alcotest.int "power cut counted" 1 (Flash.fault_stats f).Flash.power_cuts;
  (* the cut is one-shot: the flash programs normally again *)
  let p2 = Flash.append f intended in
  check Alcotest.string "next program fine" "abcdefgh"
    (Bytes.to_string (Flash.read f ~page:p2 ~off:0 ~len:8))

let test_no_fault_config_costs_identical () =
  (* The fault machinery must be invisible when disabled: same pages,
     same stats as the seed simulator. *)
  let f = Flash.create ~geometry:small_geometry () in
  for i = 0 to 9 do
    ignore (Flash.append f (Bytes.make (1 + (i mod 5)) 'z'))
  done;
  ignore (Flash.read f ~page:3 ~off:0 ~len:4);
  Flash.erase_block f 1;
  let s = Flash.stats f in
  check Alcotest.int "programs" 10 s.Flash.page_programs;
  check Alcotest.int "reads" 1 s.Flash.page_reads;
  check Alcotest.bool "no fault events" true
    (Flash.fault_stats f = Flash.zero_fault_stats);
  check Alcotest.int "no bad blocks" 0 (Flash.bad_block_count f)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"flash content roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (string_of_size (QCheck.Gen.int_range 0 64)))
    (fun contents ->
       let f = Flash.create ~geometry:small_geometry () in
       let pages = List.map (fun s -> (Flash.append f (Bytes.of_string s), s)) contents in
       List.for_all
         (fun (p, s) ->
            Bytes.to_string (Flash.read f ~page:p ~off:0 ~len:(String.length s)) = s)
         pages)

let suite = [
  Alcotest.test_case "append/read roundtrip" `Quick test_append_read_roundtrip;
  Alcotest.test_case "short pages read back padded" `Quick test_padding_reads_zero;
  Alcotest.test_case "page overflow rejected" `Quick test_page_overflow;
  Alcotest.test_case "erase and reuse" `Quick test_erase_and_reuse;
  Alcotest.test_case "read of erased page fails" `Quick test_read_erased_page_fails;
  Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
  Alcotest.test_case "write-ratio calibration" `Quick test_write_ratio_calibration;
  Alcotest.test_case "erase_live_blocks" `Quick test_erase_live_blocks;
  Alcotest.test_case "stats diff" `Quick test_stats_diff;
  Alcotest.test_case "erase_pages wipes shared block" `Quick test_erase_pages_shared_block;
  Alcotest.test_case "program of non-erased page rejected" `Quick test_program_non_erased_page;
  Alcotest.test_case "read bit-flip corrected by ECC" `Quick test_read_flip_ecc_corrects;
  Alcotest.test_case "read bit-flip without ECC corrupts" `Quick test_read_flip_no_ecc_corrupts;
  Alcotest.test_case "program failure remaps to spare" `Quick test_program_failure_remaps;
  Alcotest.test_case "program retries bounded" `Quick test_program_failure_bounded;
  Alcotest.test_case "power cut tears the in-flight page" `Quick test_power_cut_tears_page;
  Alcotest.test_case "fault machinery invisible when off" `Quick test_no_fault_config_costs_identical;
  qtest prop_roundtrip_random;
]
