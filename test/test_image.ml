(* Device images: save / load roundtrip. *)

module Value = Ghost_kernel.Value
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec

let check = Alcotest.check

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_roundtrip_queries () =
  let rows = Medical.generate Medical.tiny in
  let db = Ghost_db.of_schema (Medical.schema ()) rows in
  let path = tmp "ghostdb_test_image.img" in
  Ghost_db.save_image db path;
  let reopened = Ghost_db.load_image path in
  Sys.remove path;
  List.iter
    (fun (name, sql) ->
       let a = Reference.sort_rows (Ghost_db.query db sql).Exec.rows in
       let b = Reference.sort_rows (Ghost_db.query reopened sql).Exec.rows in
       if a <> b then Alcotest.failf "%s differs after reload" name)
    Queries.all;
  (* storage metadata survived *)
  check Alcotest.bool "same storage" true (Ghost_db.storage db = Ghost_db.storage reopened)

let test_roundtrip_preserves_pending_changes () =
  let rows = Medical.generate Medical.tiny in
  let db = Ghost_db.of_schema (Medical.schema ()) rows in
  let next = Medical.tiny.Medical.prescriptions + 1 in
  Ghost_db.insert db
    [ [| Value.Int next; Value.Int 5; Value.Int 2; Value.Date Medical.date_lo;
         Value.Int 1; Value.Int 1 |] ];
  Ghost_db.delete db [ 3; 4 ];
  let path = tmp "ghostdb_test_image2.img" in
  Ghost_db.save_image db path;
  let reopened = Ghost_db.load_image path in
  Sys.remove path;
  check Alcotest.int "delta survives" 1 (Ghost_db.delta_count reopened);
  check Alcotest.int "tombstones survive" 2 (Ghost_db.tombstone_count reopened);
  let count db =
    match (Ghost_db.query db "SELECT COUNT(*) FROM Prescription Pre").Exec.rows with
    | [ [| Value.Int n |] ] -> n
    | _ -> Alcotest.fail "count shape"
  in
  check Alcotest.int "same live count" (count db) (count reopened);
  (* and the reopened instance stays mutable *)
  Ghost_db.insert reopened
    [ [| Value.Int (next + 1); Value.Int 1; Value.Int 1; Value.Date Medical.date_lo;
         Value.Int 1; Value.Int 1 |] ];
  check Alcotest.int "insert after reload" 2 (Ghost_db.delta_count reopened)

let test_bad_images_rejected () =
  let path = tmp "ghostdb_not_an_image.img" in
  let oc = open_out_bin path in
  output_string oc "definitely not a ghostdb image, just text";
  close_out oc;
  (try
     ignore (Ghost_db.load_image path);
     Alcotest.fail "expected Image_error"
   with Ghost_db.Image_error _ -> ());
  Sys.remove path;
  (try
     ignore (Ghost_db.load_image (tmp "ghostdb_missing_file.img"));
     Alcotest.fail "expected Image_error (missing)"
   with Ghost_db.Image_error _ -> ());
  (* truncated image *)
  let rows = Medical.generate Medical.tiny in
  let db = Ghost_db.of_schema (Medical.schema ()) rows in
  let full = tmp "ghostdb_full.img" in
  Ghost_db.save_image db full;
  let data = In_channel.with_open_bin full In_channel.input_all in
  let cut = tmp "ghostdb_cut.img" in
  Out_channel.with_open_bin cut (fun oc ->
    Out_channel.output_string oc (String.sub data 0 (String.length data / 3)));
  (try
     ignore (Ghost_db.load_image cut);
     Alcotest.fail "expected Image_error (truncated)"
   with Ghost_db.Image_error _ -> ());
  Sys.remove full;
  Sys.remove cut

let contains s sub =
  let n = String.length sub and len = String.length s in
  let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* The loader distinguishes a short file from a checksum failure: the
   first is what a crashed copy looks like, the second real rot. *)
let test_error_messages_distinguish_causes () =
  let rows = Medical.generate Medical.tiny in
  let db = Ghost_db.of_schema (Medical.schema ()) rows in
  let full = tmp "ghostdb_msg_full.img" in
  Ghost_db.save_image db full;
  let data = In_channel.with_open_bin full In_channel.input_all in
  let expect label bytes needle =
    let p = tmp ("ghostdb_msg_" ^ label ^ ".img") in
    Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc bytes);
    (match Ghost_db.load_image p with
     | _ -> Alcotest.failf "%s: load succeeded" label
     | exception Ghost_db.Image_error m ->
       if not (contains m needle) then
         Alcotest.failf "%s: %S does not mention %S" label m needle);
    Sys.remove p
  in
  (* shorter than the payload it promises -> truncated *)
  expect "short" (String.sub data 0 (String.length data - 7)) "truncated";
  (* a flipped payload byte -> corrupted (CRC catches it) *)
  let flipped = Bytes.of_string data in
  let mid = String.length data / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x20));
  expect "flip" (Bytes.to_string flipped) "corrupted";
  (* alien magic -> not an image *)
  expect "magic" ("NOT-A-DB-IMAGE!\n" ^ String.sub data 16 64) "not a GhostDB image";
  Sys.remove full

(* A failed save must leave nothing behind: no partial image at the
   target path, no stranded [.tmp] sibling. *)
let test_failed_save_leaves_no_partial () =
  let rows = Medical.generate Medical.tiny in
  let db = Ghost_db.of_schema (Medical.schema ()) rows in
  let dir = tmp "ghostdb_no_such_dir" in
  if Sys.file_exists dir then Sys.rmdir dir;
  let path = Filename.concat dir "image.img" in
  (try
     Ghost_db.save_image db path;
     Alcotest.fail "save into a missing directory succeeded"
   with Ghost_db.Image_error _ | Sys_error _ -> ());
  check Alcotest.bool "no image file" false (Sys.file_exists path);
  check Alcotest.bool "no tmp file" false (Sys.file_exists (path ^ ".tmp"))

let suite = [
  Alcotest.test_case "roundtrip: all queries agree" `Quick test_roundtrip_queries;
  Alcotest.test_case "pending delta/tombstones survive" `Quick
    test_roundtrip_preserves_pending_changes;
  Alcotest.test_case "bad images rejected" `Quick test_bad_images_rejected;
  Alcotest.test_case "error messages distinguish truncation from rot" `Quick
    test_error_messages_distinguish_causes;
  Alcotest.test_case "failed save leaves no partial file" `Quick
    test_failed_save_leaves_no_partial;
]
