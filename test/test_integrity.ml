(* End-to-end integrity: authenticated structure pages (CRC-32
   trailers, verified on every cache-miss read), the Exec-level
   transient-vs-persistent retry, the background scrubber (refresh of
   ECC-correctable decay, determinism, resume across idle slices) and
   fleet anti-entropy repair. The core property: a corrupted device
   answers correctly or raises Integrity_error — never silently
   wrong. *)

module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device
module Bind = Ghost_sql.Bind
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Catalog = Ghostdb.Catalog
module Exec = Ghostdb.Exec
module Scheduler = Ghost_sched.Scheduler
module Scrub = Ghost_scrub.Scrub
module Fleet = Ghost_fleet.Fleet

let schema () = Medical.schema ()
let rows () = Medical.generate Medical.tiny

let verified_config = { Device.default_config with Device.verify_pages = true }

(* ECC off: a single stored flip reaches the served buffer, so the CRC
   trailer is the only line of defence — the sweep exercises exactly
   the detection layer. *)
let no_ecc_config =
  { verified_config with
    Device.flash_fault = Some { Flash.no_faults with Flash.ecc = false } }

let sweep_queries =
  [
    Queries.demo;
    "SELECT COUNT(*) FROM Prescription Pre WHERE Pre.Quantity BETWEEN 8 AND 10";
    "SELECT Pat.PatID FROM Patient Pat WHERE Pat.BodyMassIndex >= 35.0";
  ]

let structure_flash db =
  ( Device.flash (Ghost_db.device db),
    Catalog.structure_pages (Ghost_db.catalog db) )

(* verify_pages changes the clock (full-page verified reads), never
   the answers, and raises nothing on an undamaged store. *)
let test_verify_equivalence () =
  let plain = Ghost_db.of_schema (schema ()) (rows ()) in
  let verified = Ghost_db.of_schema ~device_config:verified_config (schema ()) (rows ()) in
  List.iter
    (fun sql ->
       let p = Ghost_db.query plain sql in
       let v = Ghost_db.query verified sql in
       Alcotest.(check bool) "rows equal" true (p.Exec.rows = v.Exec.rows);
       Alcotest.(check bool) "verified reads cost at least as much" true
         (v.Exec.elapsed_us >= p.Exec.elapsed_us))
    sweep_queries;
  let f = Device.fault_counters (Ghost_db.device verified) in
  Alcotest.(check int) "no integrity errors on a clean store" 0
    f.Device.integrity_errors

(* The tentpole property: a single bit flip in EVERY structure page,
   one page at a time — each query either answers correctly or raises
   Integrity_error. Corruption is XOR-toggled, so each page is
   restored exactly before the next is damaged. *)
let test_single_flip_sweep () =
  let db = Ghost_db.of_schema ~device_config:no_ecc_config (schema ()) (rows ()) in
  let flash, pages = structure_flash db in
  Alcotest.(check bool) "store has structure pages" true (pages <> []);
  let expected = List.map (fun sql -> (Ghost_db.query db sql).Exec.rows) sweep_queries in
  let detections = ref 0 in
  List.iter
    (fun page ->
       let bit = 8 * (page mod 97) in
       Flash.corrupt_stored flash ~page ~bit;
       List.iter2
         (fun sql want ->
            match Ghost_db.query db sql with
            | r ->
              Alcotest.(check bool)
                (Printf.sprintf "page %d: correct or detected" page)
                true
                (r.Exec.rows = want)
            | exception Flash.Integrity_error { page = p; _ } ->
              Alcotest.(check int) "error names the damaged page" page p;
              incr detections)
         sweep_queries expected;
       (* toggle the same bit back: the page must be pristine again *)
       Flash.corrupt_stored flash ~page ~bit;
       Alcotest.(check int)
         (Printf.sprintf "page %d restored" page)
         0 (Flash.page_errors flash page))
    pages;
  Alcotest.(check bool) "some flips were read and detected" true (!detections > 0);
  let f = Device.fault_counters (Ghost_db.device db) in
  Alcotest.(check bool) "uncorrected ECC errors surfaced" true
    (f.Device.flash_ecc_uncorrected > 0);
  Alcotest.(check int) "every detection was counted" !detections
    f.Device.integrity_errors;
  (* the store is fully restored: everything answers again *)
  List.iter2
    (fun sql want ->
       Alcotest.(check bool) "restored store answers" true
         ((Ghost_db.query db sql).Exec.rows = want))
    sweep_queries expected

(* Injected read faults (not stored damage) corrupt one served buffer:
   the trailer catches it, the cache-bypass re-read comes back clean,
   and the query completes with the right answer. *)
let test_transient_retry () =
  let config =
    { verified_config with
      Device.flash_fault =
        Some { Flash.no_faults with
               Flash.ecc = false;
               fault_seed = 7;
               read_flip_prob = 0.02 } }
  in
  let clean = Ghost_db.of_schema (schema ()) (rows ()) in
  let db = Ghost_db.of_schema ~device_config:config (schema ()) (rows ()) in
  List.iter
    (fun sql ->
       let want = (Ghost_db.query clean sql).Exec.rows in
       Alcotest.(check bool) "retried reads answer correctly" true
         ((Ghost_db.query db sql).Exec.rows = want))
    sweep_queries;
  let f = Device.fault_counters (Ghost_db.device db) in
  Alcotest.(check bool) "some reads were caught and retried" true
    (f.Device.integrity_transients > 0);
  Alcotest.(check int) "all caught errors were transient"
    f.Device.integrity_errors f.Device.integrity_transients

(* The scrubber refreshes ECC-correctable decay in place, records
   uncorrectable pages, and two identical devices scrub to identical
   progress on identical clocks. *)
let test_scrub_refresh_determinism () =
  let make () =
    let db = Ghost_db.of_schema ~device_config:verified_config (schema ()) (rows ()) in
    let flash, pages = structure_flash db in
    let decayed = [ List.nth pages 0; List.nth pages 2; List.nth pages 4 ] in
    let doomed = List.nth pages 1 in
    List.iter (fun page -> Flash.corrupt_stored flash ~page ~bit:3) decayed;
    Flash.corrupt_stored flash ~page:doomed ~bit:3;
    Flash.corrupt_stored flash ~page:doomed ~bit:11;
    (db, flash, pages, decayed, doomed)
  in
  let db1, flash1, pages1, decayed, doomed = make () in
  let db2, _, _, _, _ = make () in
  let scrub db =
    let _, pages = structure_flash db in
    let s = Scrub.create ~batch_pages:3 (Ghost_db.device db) ~pages in
    Scrub.run_pending s;
    s
  in
  let s1 = scrub db1 and s2 = scrub db2 in
  Alcotest.(check bool) "identical progress" true
    (Scrub.progress s1 = Scrub.progress s2);
  Alcotest.(check (float 0.)) "identical clocks"
    (Device.elapsed_us (Ghost_db.device db1))
    (Device.elapsed_us (Ghost_db.device db2));
  let p = Scrub.progress s1 in
  Alcotest.(check int) "one pass" 1 p.Scrub.passes;
  Alcotest.(check int) "every page verified" (List.length pages1)
    p.Scrub.pages_verified;
  Alcotest.(check int) "decayed pages refreshed" (List.length decayed)
    p.Scrub.refreshed;
  Alcotest.(check (list int)) "uncorrectable page recorded" [ doomed ]
    p.Scrub.corrupt;
  List.iter
    (fun page ->
       Alcotest.(check int) "refresh cleared the decay" 0
         (Flash.page_errors flash1 page))
    decayed;
  let f = Device.fault_counters (Ghost_db.device db1) in
  Alcotest.(check int) "scrubbed pages counted" (List.length pages1)
    f.Device.pages_scrubbed;
  Alcotest.(check int) "refreshes counted" (List.length decayed)
    f.Device.scrub_refreshes

(* Scrubbing one batch at a time — paused and resumed — lands on the
   same state as one eager pass, and the scheduler's idle slices drive
   it to completion. *)
let test_scrub_resume_across_slices () =
  let make () =
    let db = Ghost_db.of_schema ~device_config:verified_config (schema ()) (rows ()) in
    let flash, pages = structure_flash db in
    Flash.corrupt_stored flash ~page:(List.hd pages) ~bit:5;
    (db, pages)
  in
  let db1, pages1 = make () in
  let db2, pages2 = make () in
  let eager = Scrub.create ~batch_pages:4 (Ghost_db.device db1) ~pages:pages1 in
  Scrub.run_pending eager;
  let sliced = Scrub.create ~batch_pages:4 (Ghost_db.device db2) ~pages:pages2 in
  (* resume boundary after every single slice *)
  while Scrub.step sliced do
    Alcotest.(check bool) "cursor within walk list" true
      ((Scrub.progress sliced).Scrub.cursor <= Scrub.page_count sliced)
  done;
  Alcotest.(check bool) "sliced = eager" true
    (Scrub.progress sliced = Scrub.progress eager);
  Alcotest.(check bool) "idle after the pass" true (Scrub.idle sliced);
  Alcotest.(check bool) "idle scrubber does nothing" false (Scrub.step sliced);
  (* a second requested pass re-walks the (now clean) list *)
  Scrub.request_pass sliced;
  Scrub.run_pending sliced;
  let p = Scrub.progress sliced in
  Alcotest.(check int) "two passes" 2 p.Scrub.passes;
  Alcotest.(check int) "no new refreshes on the clean pass" 1 p.Scrub.refreshed;
  (* scheduler integration: idle slices drain the pending pass *)
  let db3, pages3 = make () in
  let sched = Scheduler.create (Ghost_db.catalog db3) (Ghost_db.public db3) in
  let s3 = Scrub.create ~batch_pages:4 (Ghost_db.device db3) ~pages:pages3 in
  Scheduler.set_scrubber sched (Some s3);
  Scheduler.run sched;
  Alcotest.(check bool) "scheduler drained the scrub pass" true (Scrub.idle s3);
  Alcotest.(check int) "idle slices completed the pass" 1
    (Scrub.progress s3).Scrub.passes;
  Alcotest.(check bool) "nothing left to dispatch" false (Scheduler.step sched)

let reference_rows sql =
  let schema = schema () in
  let db = Reference.db_of_rows schema (rows ()) in
  Reference.run schema db (Bind.bind schema sql)

let sorted = Reference.sort_rows

(* A replica serving corrupt pages: reads fail over (correct, complete
   answers), the health machine counts integrity failures, and
   anti-entropy rebuilds the replica from its healthy peer. *)
let test_fleet_failover_and_repair () =
  let fleet =
    Fleet.create ~device_config:verified_config
      ~topology:{ Fleet.shards = 2; replicas = 2; partitioning = Fleet.Range }
      (schema ()) (rows ())
  in
  let sql = "SELECT COUNT(*) FROM Prescription Pre WHERE Pre.Quantity >= 1" in
  let want = reference_rows sql in
  (* wound every structure page of shard 0's first replica past ECC *)
  let victim = Fleet.db fleet ~shard:0 ~replica:0 in
  let flash, pages = structure_flash victim in
  List.iter
    (fun page ->
       Flash.corrupt_stored flash ~page ~bit:2;
       Flash.corrupt_stored flash ~page ~bit:19)
    pages;
  let r = Fleet.query fleet sql in
  Alcotest.(check bool) "failover keeps the answer complete" true
    r.Fleet.complete;
  Alcotest.(check bool) "failover keeps the answer correct" true
    (sorted r.Fleet.rows = sorted want);
  let st = Fleet.replica_stats fleet ~shard:0 ~replica:0 in
  Alcotest.(check bool) "integrity failures counted" true
    (st.Fleet.r_integrity_failures > 0);
  (* anti-entropy finds the wounded replica and rebuilds it *)
  (match Fleet.anti_entropy fleet with
   | [ rep ] ->
     Alcotest.(check int) "report names the shard" 0 rep.Fleet.rr_shard;
     Alcotest.(check int) "report names the replica" 0 rep.Fleet.rr_replica;
     Alcotest.(check bool) "bad pages found" true (rep.Fleet.rr_bad_pages > 0);
     Alcotest.(check bool) "repaired from the peer" true rep.Fleet.rr_repaired;
     Alcotest.(check bool) "repair time charged" true (rep.Fleet.rr_repair_us > 0.)
   | reports ->
     Alcotest.failf "expected exactly one repair report, got %d"
       (List.length reports));
  Alcotest.(check bool) "rebuilt replica re-enters as suspect" true
    (Fleet.health fleet ~shard:0 ~replica:0 = Fleet.Suspect);
  let rebuilt = Fleet.db fleet ~shard:0 ~replica:0 in
  Alcotest.(check int) "rebuild counted on the fresh device" 1
    (Device.fault_counters (Ghost_db.device rebuilt)).Device.repair_rebuilds;
  (* the fleet is whole again: a second round finds nothing *)
  Alcotest.(check int) "second anti-entropy round is clean" 0
    (List.length (Fleet.anti_entropy fleet));
  let r2 = Fleet.query fleet sql in
  Alcotest.(check bool) "repaired fleet answers correctly" true
    (r2.Fleet.complete && sorted r2.Fleet.rows = sorted want);
  Alcotest.check_raises "repair from itself rejected"
    (Invalid_argument "Fleet.repair: replica = from") (fun () ->
      ignore (Fleet.repair fleet ~shard:0 ~replica:0 ~from:0))

(* R=1 leaves nothing to fail over to: the damaged shard degrades to a
   tagged partial, and anti-entropy (needing a peer) cannot repair. *)
let test_fleet_degrades_without_replica () =
  let fleet =
    Fleet.create ~device_config:verified_config
      ~topology:{ Fleet.shards = 2; replicas = 1; partitioning = Fleet.Range }
      (schema ()) (rows ())
  in
  let victim = Fleet.db fleet ~shard:0 ~replica:0 in
  let flash, pages = structure_flash victim in
  List.iter
    (fun page ->
       Flash.corrupt_stored flash ~page ~bit:2;
       Flash.corrupt_stored flash ~page ~bit:19)
    pages;
  let sql = "SELECT COUNT(*) FROM Prescription Pre WHERE Pre.Quantity >= 1" in
  let r = Fleet.query fleet sql in
  Alcotest.(check bool) "partial, never wrong" true (not r.Fleet.complete);
  Alcotest.(check (list int)) "damaged shard tagged" [ 0 ] r.Fleet.unreachable;
  Alcotest.(check int) "no peer, no repair" 0
    (List.length (List.filter (fun x -> x.Fleet.rr_repaired) (Fleet.anti_entropy fleet)))

let suite =
  [
    Alcotest.test_case "verify_pages: same answers, clean store" `Quick
      test_verify_equivalence;
    Alcotest.test_case "single-flip sweep: correct or detected, never wrong"
      `Quick test_single_flip_sweep;
    Alcotest.test_case "transient read faults retry past the cache" `Quick
      test_transient_retry;
    Alcotest.test_case "scrubber: refresh, record, deterministic" `Quick
      test_scrub_refresh_determinism;
    Alcotest.test_case "scrubber resumes across idle slices" `Quick
      test_scrub_resume_across_slices;
    Alcotest.test_case "fleet: integrity failover + anti-entropy repair" `Quick
      test_fleet_failover_and_repair;
    Alcotest.test_case "fleet: R=1 degrades to tagged partials" `Quick
      test_fleet_degrades_without_replica;
  ]
