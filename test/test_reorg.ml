(* Crash-safe reorganization: the journaled shadow build must be
   atomic under a power cut at EVERY program index — after recovery the
   database answers either as the intact pre-reorg image (roll-back) or
   as the completed rebuild (roll-forward), never anything in between.
   The sweep arms a cut at index 1, 2, 3, ... until a run completes
   without firing; the shared power line makes the index count journal
   appends and shadow-build programs alike. *)

module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng
module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec

let check = Alcotest.check

let durable_config = { Device.default_config with Device.durable_logs = true }

(* {2 A small two-table schema, kept tiny so the per-index sweep stays
   fast: every index is a full setup + rebuild + recovery.} *)

let mini_schema () =
  Schema.create
    [
      Schema.table ~name:"Visit" ~key:"VisID"
        [
          Column.make ~visibility:Column.Visible "Town" (Value.T_char 8);
          Column.make ~visibility:Column.Hidden ~refs:"Doctor" "DocID" Value.T_int;
          Column.make ~visibility:Column.Hidden "Purpose" (Value.T_char 8);
        ];
      Schema.table ~name:"Doctor" ~key:"DocID"
        [
          Column.make ~visibility:Column.Visible "Name" (Value.T_char 8);
          Column.make ~visibility:Column.Hidden "Spec" (Value.T_char 8);
        ];
    ]

let towns = [| "north"; "south"; "east"; "west" |]
let purposes = [| "flu"; "checkup"; "xray" |]
let specs = [| "gp"; "ent" |]
let doctors = 6
let base_visits = 24

let visit rng id =
  [|
    Value.Int id;
    Value.Str (Rng.pick rng towns);
    Value.Int (Rng.int_in rng 1 doctors);
    Value.Str (Rng.pick rng purposes);
  |]

let mini_rows () =
  let rng = Rng.create 42 in
  [
    ("Visit", List.init base_visits (fun i -> visit rng (i + 1)));
    ( "Doctor",
      List.init doctors (fun i ->
        [|
          Value.Int (i + 1);
          Value.Str (Printf.sprintf "d%d" (i + 1));
          Value.Str (Rng.pick rng specs);
        |]) );
  ]

let inserted_visits = 6
let deleted_visits = [ 2; 5; 9; 17 ]

let mini_inserts () =
  let rng = Rng.create 43 in
  List.init inserted_visits (fun i -> visit rng (base_visits + i + 1))

(* One database carrying pending work, deterministic across the sweep. *)
let setup () =
  let db =
    Ghost_db.of_schema ~device_config:durable_config (mini_schema ())
      (mini_rows ())
  in
  Ghost_db.insert db (mini_inserts ());
  Ghost_db.delete db deleted_visits;
  db

(* The logical content after the pending work (original root ids — the
   verification queries never mention VisID, because reorganization
   compacts root ids). *)
let mini_reference () =
  let visits =
    List.filteri
      (fun i _ -> not (List.mem (i + 1) deleted_visits))
      (List.assoc "Visit" (mini_rows ()) @ mini_inserts ())
  in
  Reference.db_of_rows (mini_schema ())
    [ ("Visit", visits); ("Doctor", List.assoc "Doctor" (mini_rows ())) ]

(* Root-id-agnostic queries: answers identical on the pre-reorg image
   (logs pending) and the post-reorg one (ids compacted, logs folded). *)
let mini_queries =
  [
    "SELECT COUNT(*) FROM Visit";
    "SELECT Visit.Purpose, COUNT(*) FROM Visit GROUP BY Visit.Purpose";
    "SELECT Doctor.Name FROM Visit, Doctor WHERE Visit.DocID = Doctor.DocID \
     AND Visit.Purpose = 'flu'";
    "SELECT Visit.Town, Visit.Purpose FROM Visit WHERE Visit.Town <> 'north'";
  ]

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

let contains s sub =
  let n = String.length sub and len = String.length s in
  let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
  go 0

let verify label db =
  let refdb = mini_reference () in
  List.iter
    (fun sql ->
       let expected = Reference.run (Ghost_db.schema db) refdb (Ghost_db.bind db sql) in
       let got = (Ghost_db.query db sql).Exec.rows in
       if not (rows_equal got expected) then
         Alcotest.failf "%s: %S differs from the reference" label sql)
    mini_queries

let test_crash_point_sweep () =
  let rollbacks = ref 0 and rollforwards = ref 0 and reused_seen = ref 0 in
  let k = ref 1 and finished = ref false in
  while not !finished do
    if !k > 10_000 then Alcotest.fail "sweep did not terminate";
    let db = setup () in
    if !k = 1 then verify "pre-reorg sanity" db;
    let old_flash = Device.flash (Ghost_db.device db) in
    Flash.arm_power_cut old_flash ~after_programs:!k;
    (match Ghost_db.reorganize db with
     | db2 ->
       (* The cut never fired: the whole rebuild takes fewer than [k]
          programs. Disarm the leftover countdown (the new device
          shares the power line) and end the sweep. *)
       Flash.disarm_power_cut (Device.flash (Ghost_db.device db2));
       verify "uninterrupted" db2;
       finished := true
     | exception Flash.Power_cut _ ->
       check Alcotest.bool "needs recovery" true (Ghost_db.needs_recovery db);
       let r = Ghost_db.recover db in
       (match r.Ghost_db.reorg with
        | Some (Ghost_db.Reorg_completed { db = db2; phases_reused; _ }) ->
          incr rollforwards;
          if phases_reused >= 1 then incr reused_seen;
          verify "rolled forward" db2
        | Some (Ghost_db.Reorg_rolled_back _) ->
          incr rollbacks;
          (* the pre-reorg image stays live, pending logs included *)
          verify "rolled back" db
        | None -> Alcotest.fail "recover reported no reorg outcome"));
    incr k
  done;
  check Alcotest.bool "roll-back exercised" true (!rollbacks >= 1);
  check Alcotest.bool "roll-forward exercised" true (!rollforwards >= 1);
  check Alcotest.bool "some resume reused completed phases" true (!reused_seen >= 1);
  check Alcotest.int "every armed index recovered" (!k - 2)
    (!rollbacks + !rollforwards)

let test_rollback_keeps_old_image_live () =
  let db = setup () in
  let flash = Device.flash (Ghost_db.device db) in
  (* tear the journal's Begin record: nothing of the rebuild survives *)
  Flash.arm_power_cut flash ~after_programs:1;
  (try
     ignore (Ghost_db.reorganize db);
     Alcotest.fail "expected Power_cut"
   with Flash.Power_cut _ -> ());
  (* mutations and saves refuse until recovered *)
  (try
     Ghost_db.insert db (mini_inserts ());
     Alcotest.fail "insert must refuse"
   with Failure _ -> ());
  (try
     Ghost_db.save_image db
       (Filename.concat (Filename.get_temp_dir_name ()) "ghostdb_refused.img");
     Alcotest.fail "save_image must refuse"
   with Failure _ -> ());
  let r = Ghost_db.recover db in
  (match r.Ghost_db.reorg with
   | Some (Ghost_db.Reorg_rolled_back _) -> ()
   | _ -> Alcotest.fail "expected a roll-back");
  check Alcotest.bool "recovered" false (Ghost_db.needs_recovery db);
  let f = Device.fault_counters (Ghost_db.device db) in
  check Alcotest.int "roll-back counted" 1 f.Device.reorg_rollbacks;
  check Alcotest.int "no roll-forward" 0 f.Device.reorg_rollforwards;
  verify "after roll-back" db;
  (* the old image is fully live: pending work intact, reorg retries *)
  check Alcotest.int "delta intact" inserted_visits (Ghost_db.delta_count db);
  let db2 = Ghost_db.reorganize db in
  Flash.disarm_power_cut (Device.flash (Ghost_db.device db2));
  verify "after retried reorg" db2;
  check Alcotest.int "delta folded" 0 (Ghost_db.delta_count db2)

let test_rollforward_resumes () =
  let db = setup () in
  let flash = Device.flash (Ghost_db.device db) in
  (* land the cut well inside the shadow build: the Begin record and at
     least the snapshot checkpoint are durable by then *)
  Flash.arm_power_cut flash ~after_programs:10;
  (try
     ignore (Ghost_db.reorganize db);
     Alcotest.fail "expected Power_cut"
   with Flash.Power_cut _ -> ());
  let r = Ghost_db.recover db in
  (match r.Ghost_db.reorg with
   | Some (Ghost_db.Reorg_completed { db = db2; phases_reused; phases_redone }) ->
     check Alcotest.bool "snapshot phase reused" true (phases_reused >= 1);
     check Alcotest.bool "interrupted phase redone" true (phases_redone >= 1);
     let f = Device.fault_counters (Ghost_db.device db) in
     check Alcotest.int "roll-forward counted" 1 f.Device.reorg_rollforwards;
     check Alcotest.bool "checkpoints counted" true (f.Device.reorg_checkpoints >= 4);
     verify "rolled forward" db2;
     check Alcotest.int "delta folded" 0 (Ghost_db.delta_count db2)
   | _ -> Alcotest.fail "expected a roll-forward")

let test_double_crash_then_recover () =
  let db = setup () in
  let flash = Device.flash (Ghost_db.device db) in
  Flash.arm_power_cut flash ~after_programs:10;
  (try ignore (Ghost_db.reorganize db); Alcotest.fail "expected Power_cut"
   with Flash.Power_cut _ -> ());
  (* power fails AGAIN during the roll-forward resume *)
  Flash.arm_power_cut flash ~after_programs:5;
  (try ignore (Ghost_db.recover db); Alcotest.fail "expected second Power_cut"
   with Flash.Power_cut _ -> ());
  check Alcotest.bool "still needs recovery" true (Ghost_db.needs_recovery db);
  let r = Ghost_db.recover db in
  (match r.Ghost_db.reorg with
   | Some (Ghost_db.Reorg_completed { db = db2; _ }) ->
     verify "after double crash" db2
   | Some (Ghost_db.Reorg_rolled_back _) ->
     (* also sound: the second cut may have torn every later checkpoint *)
     verify "after double crash" db
   | None -> Alcotest.fail "recover reported no reorg outcome")

(* Roll-forward on the medical workload: end-to-end against the
   reference evaluator (no deletes, so root ids are stable and every
   demo query stays comparable). *)
let test_rollforward_medical_matches_reference () =
  let scale = Medical.tiny in
  let rows = Medical.generate scale in
  let db =
    Ghost_db.of_schema ~device_config:durable_config (Medical.schema ()) rows
  in
  let rng = Rng.create 7 in
  let batch =
    List.init 10 (fun i ->
      [|
        Value.Int (scale.Medical.prescriptions + i + 1);
        Value.Int (Rng.int_in rng 1 10);
        Value.Int (Rng.int_in rng 1 4);
        Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
        Value.Int (1 + Rng.int rng scale.Medical.medicines);
        Value.Int (1 + Rng.int rng scale.Medical.visits);
      |])
  in
  Ghost_db.insert db batch;
  (* Program 1 is the Begin record and program 2 the snapshot
     checkpoint, so a cut after 3 programs always fires mid-build and
     leaves the snapshot phase reusable. *)
  Flash.arm_power_cut (Device.flash (Ghost_db.device db)) ~after_programs:3;
  (try ignore (Ghost_db.reorganize db); Alcotest.fail "expected Power_cut"
   with Flash.Power_cut _ -> ());
  let r = Ghost_db.recover db in
  match r.Ghost_db.reorg with
  | Some (Ghost_db.Reorg_completed { db = db2; phases_reused; _ }) ->
    check Alcotest.bool "phases reused" true (phases_reused >= 1);
    let full_rows =
      List.map
        (fun (name, rs) ->
           if name = "Prescription" then (name, rs @ batch) else (name, rs))
        rows
    in
    let refdb = Reference.db_of_rows (Ghost_db.schema db2) full_rows in
    List.iter
      (fun (name, sql) ->
         let q = Ghost_db.bind db2 sql in
         let expected = Reference.run (Ghost_db.schema db2) refdb q in
         let got = (Ghost_db.query db2 sql).Exec.rows in
         if not (rows_equal got expected) then
           Alcotest.failf "%s differs after rolled-forward reorg" name)
      Queries.all;
    check Alcotest.int "delta folded" 0 (Ghost_db.delta_count db2)
  | _ -> Alcotest.fail "expected a roll-forward"

(* {2 Image robustness (the save/load side of the same guarantee)} *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_image_crc_corruption_detected () =
  let db = setup () in
  let path = tmp "ghostdb_reorg_image.img" in
  Ghost_db.save_image db path;
  check Alcotest.bool "no tmp file left" false (Sys.file_exists (path ^ ".tmp"));
  (* flip one payload byte: the CRC-32 trailer must catch it *)
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  let off = String.length data / 2 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  (try
     ignore (Ghost_db.load_image path);
     Alcotest.fail "expected Image_error"
   with Ghost_db.Image_error msg ->
     check Alcotest.bool "reported as corrupted" true (contains msg "corrupted"));
  Sys.remove path

(* {2 Recovery idempotence (property)}

   One {!Ghost_db.recover} fully settles the instance after ANY
   injected crash: a second recover on whichever image was kept (the
   rebuilt db on a roll-forward, the original on a roll-back) must be
   a pure no-op — zero counts, no reorg outcome, and the saved-image
   digest and device fault counters exactly as the first recover left
   them. *)

let image_digest db =
  let path = tmp "ghostdb_idem.img" in
  Ghost_db.save_image db path;
  let d = Digest.file path in
  Sys.remove path;
  d

let assert_second_recover_noop label db =
  let d1 = image_digest db in
  let f1 = Device.fault_counters (Ghost_db.device db) in
  let r2 = Ghost_db.recover db in
  check Alcotest.int (label ^ ": delta recovered") 0 r2.Ghost_db.delta_recovered;
  check Alcotest.int (label ^ ": delta lost") 0 r2.Ghost_db.delta_lost;
  check Alcotest.int (label ^ ": tombstones recovered") 0
    r2.Ghost_db.tombstones_recovered;
  check Alcotest.int (label ^ ": tombstones lost") 0 r2.Ghost_db.tombstones_lost;
  check Alcotest.int (label ^ ": delta torn pages") 0 r2.Ghost_db.delta_torn_pages;
  check Alcotest.int (label ^ ": tombstone torn pages") 0
    r2.Ghost_db.tombstone_torn_pages;
  (match r2.Ghost_db.reorg with
   | None -> ()
   | Some _ -> Alcotest.failf "%s: second recover reported a reorg outcome" label);
  check Alcotest.string (label ^ ": image digest unchanged")
    (Digest.to_hex d1)
    (Digest.to_hex (image_digest db));
  check Alcotest.bool (label ^ ": fault counters unchanged") true
    (f1 = Device.fault_counters (Ghost_db.device db))

let test_recover_idempotent_sweep () =
  let exercised = ref 0 in
  let k = ref 1 and finished = ref false in
  while not !finished do
    if !k > 10_000 then Alcotest.fail "sweep did not terminate";
    let db = setup () in
    Flash.arm_power_cut (Device.flash (Ghost_db.device db)) ~after_programs:!k;
    (match Ghost_db.reorganize db with
     | db2 ->
       Flash.disarm_power_cut (Device.flash (Ghost_db.device db2));
       finished := true
     | exception Flash.Power_cut _ ->
       let r = Ghost_db.recover db in
       let kept =
         match r.Ghost_db.reorg with
         | Some (Ghost_db.Reorg_completed { db = db2; _ }) -> db2
         | Some (Ghost_db.Reorg_rolled_back _) -> db
         | None -> Alcotest.fail "recover reported no reorg outcome"
       in
       check Alcotest.bool "settled after one recover" false
         (Ghost_db.needs_recovery kept);
       let label = Printf.sprintf "reorg crash @%d" !k in
       assert_second_recover_noop label kept;
       verify (label ^ " after double recover") kept;
       incr exercised);
    incr k
  done;
  check Alcotest.bool "crash points exercised" true (!exercised >= 2)

let test_recover_idempotent_after_insert_crash () =
  let db = setup () in
  Flash.arm_power_cut (Device.flash (Ghost_db.device db)) ~after_programs:1;
  let extra =
    let rng = Rng.create 44 in
    List.init 3 (fun i ->
      visit rng (base_visits + inserted_visits + i + 1))
  in
  (try
     Ghost_db.insert db extra;
     Alcotest.fail "expected Power_cut"
   with Flash.Power_cut _ -> ());
  check Alcotest.bool "needs recovery" true (Ghost_db.needs_recovery db);
  let r = Ghost_db.recover db in
  (* the torn batch was never acknowledged: recovery drops it whole *)
  (match r.Ghost_db.reorg with
   | None -> ()
   | Some _ -> Alcotest.fail "no reorg was pending");
  check Alcotest.bool "settled after one recover" false
    (Ghost_db.needs_recovery db);
  assert_second_recover_noop "insert crash" db;
  verify "insert crash after double recover" db

let suite =
  [
    Alcotest.test_case "crash-point sweep is atomic" `Quick test_crash_point_sweep;
    Alcotest.test_case "recover is idempotent at every crash point" `Quick
      test_recover_idempotent_sweep;
    Alcotest.test_case "recover is idempotent after an insert crash" `Quick
      test_recover_idempotent_after_insert_crash;
    Alcotest.test_case "roll-back keeps the old image live" `Quick
      test_rollback_keeps_old_image_live;
    Alcotest.test_case "roll-forward resumes from checkpoints" `Quick
      test_rollforward_resumes;
    Alcotest.test_case "double crash still converges" `Quick
      test_double_crash_then_recover;
    Alcotest.test_case "rolled-forward medical db matches reference" `Quick
      test_rollforward_medical_matches_reference;
    Alcotest.test_case "image corruption detected by CRC" `Quick
      test_image_crc_corruption_detected;
  ]
