(* Unit + property tests for ghost_kernel. *)

module Value = Ghost_kernel.Value
module Date = Ghost_kernel.Date
module Codec = Ghost_kernel.Codec
module Rng = Ghost_kernel.Rng
module Zipf = Ghost_kernel.Zipf
module Sorted_ids = Ghost_kernel.Sorted_ids
module Cursor = Ghost_kernel.Cursor
module Heap = Ghost_kernel.Heap
module Resources = Ghost_kernel.Resources

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---- Value ---- *)

let test_value_compare () =
  check Alcotest.bool "int order" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  check Alcotest.bool "str pad-insensitive" true
    (Value.equal (Value.Str "abc") (Value.Str "abc\000\000"));
  check Alcotest.bool "null first" true
    (Value.compare Value.Null (Value.Int min_int) < 0);
  check Alcotest.bool "date order" true
    (Value.compare (Value.Date 10) (Value.Date 11) < 0)

let test_value_encode_roundtrip () =
  let cases = [
    (Value.T_int, Value.Int 42);
    (Value.T_int, Value.Int (-42));
    (Value.T_int, Value.Int 0);
    (Value.T_date, Value.Date 13000);
    (Value.T_float, Value.Float 3.25);
    (Value.T_float, Value.Float (-0.5));
    (Value.T_char 10, Value.Str "hello");
  ] in
  List.iter
    (fun (ty, v) ->
       let b = Value.encode ty v in
       check Alcotest.int "width" (Value.ty_width ty) (Bytes.length b);
       check Alcotest.bool "roundtrip" true (Value.equal v (Value.decode ty b 0)))
    cases

let test_value_encode_rejects () =
  Alcotest.check_raises "null" (Invalid_argument "Value.encode: NULL does not fit INTEGER")
    (fun () -> ignore (Value.encode Value.T_int Value.Null))

let prop_encode_order_int =
  QCheck.Test.make ~name:"int encoding is order-preserving" ~count:500
    QCheck.(pair int int)
    (fun (a, b) ->
       let ea = Value.encode Value.T_int (Value.Int a) in
       let eb = Value.encode Value.T_int (Value.Int b) in
       Int.compare a b = Bytes.compare ea eb
       || (a <> b && Bytes.compare ea eb <> 0 && (Int.compare a b < 0) = (Bytes.compare ea eb < 0)))

let prop_key_prefix_order =
  QCheck.Test.make ~name:"key_prefix order agrees on ints" ~count:500
    QCheck.(pair int int)
    (fun (a, b) ->
       let pa = Value.key_prefix (Value.Int a) and pb = Value.key_prefix (Value.Int b) in
       if a = b then Bytes.equal pa pb
       else (Bytes.compare pa pb < 0) = (a < b))

let prop_float_encode_order =
  QCheck.Test.make ~name:"float encoding is order-preserving" ~count:500
    QCheck.(pair (float_range (-1e12) 1e12) (float_range (-1e12) 1e12))
    (fun (a, b) ->
       let ea = Value.encode Value.T_float (Value.Float a) in
       let eb = Value.encode Value.T_float (Value.Float b) in
       if Float.equal a b then Bytes.equal ea eb
       else (Bytes.compare ea eb < 0) = (a < b))

(* ---- Date ---- *)

let test_date_roundtrip_known () =
  check Alcotest.int "epoch" 0 (Date.of_ymd 1970 1 1);
  check Alcotest.string "epoch str" "1970-01-01" (Date.to_string 0);
  check Alcotest.int "parse" (Date.of_ymd 2006 11 5) (Date.of_string "2006-11-05");
  check Alcotest.bool "leap 2000" true (Date.is_leap_year 2000);
  check Alcotest.bool "not leap 1900" false (Date.is_leap_year 1900)

let prop_date_roundtrip =
  QCheck.Test.make ~name:"date ymd roundtrip" ~count:1000
    QCheck.(int_range (-200000) 200000)
    (fun days ->
       let y, m, d = Date.to_ymd days in
       Date.of_ymd y m d = days)

let test_date_invalid () =
  Alcotest.check_raises "bad month" (Invalid_argument "Date.of_ymd: month") (fun () ->
    ignore (Date.of_ymd 2020 13 1));
  Alcotest.check_raises "feb 30" (Invalid_argument "Date.of_ymd: day") (fun () ->
    ignore (Date.of_ymd 2020 2 30))

(* ---- Codec ---- *)

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:1000
    QCheck.(int_range 0 max_int)
    (fun v ->
       let buf = Buffer.create 10 in
       Codec.put_varint buf v;
       let b = Buffer.to_bytes buf in
       let v', off = Codec.get_varint b 0 in
       v = v' && off = Bytes.length b && off = Codec.varint_size v)

let prop_zigzag_roundtrip =
  QCheck.Test.make ~name:"zigzag roundtrip" ~count:1000 QCheck.int (fun v ->
    let buf = Buffer.create 10 in
    Codec.put_zigzag buf v;
    let v', _ = Codec.get_zigzag (Buffer.to_bytes buf) 0 in
    v = v')

let test_codec_fixed () =
  let b = Bytes.create 12 in
  Codec.put_u32 b 0 0xDEADBEEF;
  check Alcotest.int "u32" 0xDEADBEEF (Codec.get_u32 b 0);
  Codec.put_u64 b 4 123456789012345;
  check Alcotest.int "u64" 123456789012345 (Codec.get_u64 b 4);
  let buf = Buffer.create 8 in
  Codec.put_string16 buf "hello";
  let s, off = Codec.get_string16 (Buffer.to_bytes buf) 0 in
  check Alcotest.string "string16" "hello" s;
  check Alcotest.int "string16 off" 7 off

let test_crc32 () =
  (* IEEE 802.3 check value *)
  let b = Bytes.of_string "123456789" in
  check Alcotest.int "known value" 0xCBF43926 (Codec.crc32 b ~pos:0 ~len:9);
  check Alcotest.int "empty" 0 (Codec.crc32 b ~pos:0 ~len:0);
  (* incremental over a split range equals one pass *)
  let part = Codec.crc32 b ~pos:0 ~len:4 in
  check Alcotest.int "chained" 0xCBF43926 (Codec.crc32 ~crc:part b ~pos:4 ~len:5);
  (* any single-bit corruption is detected *)
  let reference = Codec.crc32 b ~pos:0 ~len:9 in
  Bytes.set b 3 (Char.chr (Char.code (Bytes.get b 3) lxor 0x10));
  check Alcotest.bool "bit flip changes crc" true
    (Codec.crc32 b ~pos:0 ~len:9 <> reference)

(* ---- Rng / Zipf ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    check Alcotest.bool "in bound" true (v >= 0 && v < 10);
    let w = Rng.int_in r 5 8 in
    check Alcotest.bool "in range" true (w >= 5 && w <= 8)
  done

let test_rng_float_range () =
  let r = Rng.create 3 in
  let saw_upper_half = ref false in
  for _ = 1 to 1000 do
    let f = Rng.float r 1.0 in
    check Alcotest.bool "in [0,1)" true (f >= 0. && f < 1.);
    if f > 0.5 then saw_upper_half := true
  done;
  check Alcotest.bool "covers the upper half" true !saw_upper_half

let test_zipf_skew () =
  let z = Zipf.create ~n:100 ~theta:1.0 in
  let r = Rng.create 1 in
  let counts = Array.make 101 0 in
  for _ = 1 to 20000 do
    let rank = Zipf.sample z r in
    counts.(rank) <- counts.(rank) + 1
  done;
  check Alcotest.bool "rank 1 most frequent" true (counts.(1) > counts.(50));
  check Alcotest.bool "rank 2 also sampled" true (counts.(2) > 0);
  check Alcotest.bool "tail sampled" true (counts.(50) > 0);
  check Alcotest.bool "not everything on rank 1" true (counts.(1) < 10000);
  check Alcotest.bool "probabilities sum to 1" true
    (let total = ref 0. in
     for i = 1 to 100 do total := !total +. Zipf.probability z i done;
     Float.abs (!total -. 1.0) < 1e-9)

let test_zipf_uniform () =
  let z = Zipf.create ~n:10 ~theta:0. in
  check Alcotest.bool "uniform prob" true
    (Float.abs (Zipf.probability z 5 -. 0.1) < 1e-9)

(* ---- Sorted_ids ---- *)

let sorted_gen =
  QCheck.Gen.(map (fun l -> Sorted_ids.of_unsorted l) (list_size (0 -- 40) (0 -- 100)))

let arb_sorted =
  QCheck.make ~print:(fun a -> QCheck.Print.(array int) a) sorted_gen

let module_intersect_spec a b =
  Array.to_list a |> List.filter (fun x -> Array.mem x b) |> Array.of_list

let prop_intersect =
  QCheck.Test.make ~name:"intersect = filter spec" ~count:500
    QCheck.(pair arb_sorted arb_sorted)
    (fun (a, b) -> Sorted_ids.intersect a b = module_intersect_spec a b)

let prop_union =
  QCheck.Test.make ~name:"union = sorted dedup of concat" ~count:500
    QCheck.(pair arb_sorted arb_sorted)
    (fun (a, b) ->
       Sorted_ids.union a b
       = Sorted_ids.of_unsorted (Array.to_list a @ Array.to_list b))

let prop_difference =
  QCheck.Test.make ~name:"difference spec" ~count:500
    QCheck.(pair arb_sorted arb_sorted)
    (fun (a, b) ->
       Sorted_ids.difference a b
       = (Array.to_list a |> List.filter (fun x -> not (Array.mem x b)) |> Array.of_list))

let prop_member =
  QCheck.Test.make ~name:"member = mem" ~count:500
    QCheck.(pair arb_sorted (0 -- 100))
    (fun (a, x) -> Sorted_ids.member a x = Array.mem x a)

let test_intersect_many () =
  let l1 = [| 1; 3; 5; 7; 9 |] and l2 = [| 3; 5; 9; 11 |] and l3 = [| 5; 9 |] in
  check Alcotest.(array int) "3-way" [| 5; 9 |] (Sorted_ids.intersect_many [ l1; l2; l3 ]);
  Alcotest.check_raises "empty input" (Invalid_argument "Sorted_ids.intersect_many: no lists")
    (fun () -> ignore (Sorted_ids.intersect_many []))

let test_deltas () =
  let ids = [| 0; 1; 4; 9 |] in
  let got = ref [] in
  Sorted_ids.iter_deltas (fun d -> got := d :: !got) ids;
  check Alcotest.(list int) "gap sequence" [ 0; 0; 2; 4 ] (List.rev !got);
  (* Folding id_{-1} = -1 through acc + delta + 1 must restore the last id. *)
  check Alcotest.int "fold restores last id" 9
    (Sorted_ids.fold_deltas (fun acc d -> acc + d + 1) (-1) ids);
  Sorted_ids.iter_deltas (fun _ -> Alcotest.fail "empty list emits no delta") [||];
  let bad = Invalid_argument "Sorted_ids: not strictly increasing non-negative" in
  Alcotest.check_raises "duplicate rejected" bad (fun () ->
      Sorted_ids.iter_deltas ignore [| 1; 1 |]);
  Alcotest.check_raises "descending rejected" bad (fun () ->
      ignore (Sorted_ids.fold_deltas (fun n _ -> n + 1) 0 [| 3; 2 |]));
  Alcotest.check_raises "negative rejected" bad (fun () ->
      Sorted_ids.iter_deltas ignore [| -1; 2 |])

(* The deltas are the exact payload of Id_list climbing-index entries:
   re-encoding them as varints must reproduce Id_list.encode. *)
let prop_deltas_match_id_list =
  QCheck.Test.make ~name:"iter_deltas matches Id_list.encode" ~count:300
    arb_sorted (fun ids ->
      let buf = Buffer.create 64 in
      Sorted_ids.iter_deltas (fun d -> Codec.put_varint buf d) ids;
      let via_deltas = Buffer.contents buf in
      via_deltas = Ghost_store.Id_list.encode ids
      && String.length via_deltas
         = Sorted_ids.fold_deltas
             (fun total d -> total + Codec.varint_size d)
             0 ids)

(* ---- Cursor ---- *)

let test_cursor_basics () =
  let c = Cursor.of_list [ 1; 2; 3 ] in
  check Alcotest.(list int) "to_list" [ 1; 2; 3 ] (Cursor.to_list c);
  check Alcotest.int "count" 4 (Cursor.count (Cursor.of_array [| 1; 2; 3; 4 |]));
  let doubled = Cursor.map (fun x -> 2 * x) (Cursor.of_list [ 1; 2 ]) in
  check Alcotest.(list int) "map" [ 2; 4 ] (Cursor.to_list doubled);
  let evens = Cursor.filter (fun x -> x mod 2 = 0) (Cursor.of_list [ 1; 2; 3; 4 ]) in
  check Alcotest.(list int) "filter" [ 2; 4 ] (Cursor.to_list evens);
  check Alcotest.(list int) "append" [ 1; 2; 3 ]
    (Cursor.to_list (Cursor.append (Cursor.of_list [ 1 ]) (Cursor.of_list [ 2; 3 ])))

let prop_cursor_intersect =
  QCheck.Test.make ~name:"cursor intersect = array intersect" ~count:300
    QCheck.(pair arb_sorted arb_sorted)
    (fun (a, b) ->
       Cursor.to_list
         (Cursor.intersect_sorted ~cmp:Int.compare (Cursor.of_array a)
            (Cursor.of_array b))
       = Array.to_list (Sorted_ids.intersect a b))

let prop_cursor_union =
  QCheck.Test.make ~name:"cursor union = array union" ~count:300
    QCheck.(pair arb_sorted arb_sorted)
    (fun (a, b) ->
       Cursor.to_list
         (Cursor.union_sorted ~cmp:Int.compare (Cursor.of_array a) (Cursor.of_array b))
       = Array.to_list (Sorted_ids.union a b))

let test_merge_join () =
  let left = Cursor.of_list [ (1, "a"); (2, "b"); (2, "b2"); (4, "d") ] in
  let right = Cursor.of_list [ (2, "X"); (3, "Y"); (4, "Z") ] in
  let joined =
    Cursor.merge_join ~left_key:fst ~right_key:fst left right |> Cursor.to_list
  in
  check Alcotest.int "matches" 3 (List.length joined);
  check Alcotest.bool "pairing" true
    (List.for_all (fun ((k, _), (k', _)) -> k = k') joined)

let test_peekable () =
  let c, peek = Cursor.peekable (Cursor.of_list [ 1; 2 ]) in
  check Alcotest.(option int) "peek" (Some 1) (peek ());
  check Alcotest.(option int) "next after peek" (Some 1) (Cursor.next c);
  check Alcotest.(option int) "next" (Some 2) (Cursor.next c);
  check Alcotest.(option int) "exhausted" None (peek ())

(* ---- Heap ---- *)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck.(list int)
    (fun l ->
       let h = Heap.create ~cmp:Int.compare in
       List.iter (Heap.push h) l;
       let rec drain acc =
         match Heap.pop h with
         | None -> List.rev acc
         | Some x -> drain (x :: acc)
       in
       drain [] = List.sort Int.compare l)

(* ---- Resources ---- *)

let test_resources_order () =
  let log = ref [] in
  let r = Resources.create () in
  Resources.defer r (fun () -> log := 1 :: !log);
  Resources.defer r (fun () -> log := 2 :: !log);
  Resources.release r;
  check Alcotest.(list int) "reverse order" [ 1; 2 ] !log;
  Resources.release r;
  check Alcotest.(list int) "idempotent" [ 1; 2 ] !log

let test_resources_exception () =
  let freed = ref false in
  (try
     Resources.with_resources (fun r ->
       Resources.defer r (fun () -> freed := true);
       failwith "boom")
   with Failure _ -> ());
  check Alcotest.bool "released on exception" true !freed

let suite = [
  Alcotest.test_case "value compare" `Quick test_value_compare;
  Alcotest.test_case "value encode roundtrip" `Quick test_value_encode_roundtrip;
  Alcotest.test_case "value encode rejects null" `Quick test_value_encode_rejects;
  qtest prop_encode_order_int;
  qtest prop_key_prefix_order;
  qtest prop_float_encode_order;
  Alcotest.test_case "date known values" `Quick test_date_roundtrip_known;
  qtest prop_date_roundtrip;
  Alcotest.test_case "date invalid" `Quick test_date_invalid;
  qtest prop_varint_roundtrip;
  qtest prop_zigzag_roundtrip;
  Alcotest.test_case "codec fixed-width" `Quick test_codec_fixed;
  Alcotest.test_case "codec crc32" `Quick test_crc32;
  Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
  Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
  Alcotest.test_case "rng float range" `Quick test_rng_float_range;
  Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
  Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform;
  qtest prop_intersect;
  qtest prop_union;
  qtest prop_difference;
  qtest prop_member;
  Alcotest.test_case "intersect_many" `Quick test_intersect_many;
  Alcotest.test_case "delta iteration" `Quick test_deltas;
  qtest prop_deltas_match_id_list;
  Alcotest.test_case "cursor basics" `Quick test_cursor_basics;
  qtest prop_cursor_intersect;
  qtest prop_cursor_union;
  Alcotest.test_case "merge_join" `Quick test_merge_join;
  Alcotest.test_case "peekable" `Quick test_peekable;
  qtest prop_heap_sorts;
  Alcotest.test_case "resources order" `Quick test_resources_order;
  Alcotest.test_case "resources exception" `Quick test_resources_exception;
]
