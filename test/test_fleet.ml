(* The device fleet: bit-identity of the one-device fleet, partitioned
   scatter-gather correctness against the reference evaluator (both
   partitionings, root-key predicate rewriting, aggregates and ORDER
   BY/LIMIT merged fleet-side), the health state machine, failover at
   R>=2 and tagged partial results at R=1, a chaos sweep killing each
   device at every point of the scatter, the multi-device driver under
   mid-workload kills, and the fleet privacy audit. *)

module Value = Ghost_kernel.Value
module Device = Ghost_device.Device
module Trace = Ghost_device.Trace
module Spy = Ghost_public.Spy
module Bind = Ghost_sql.Bind
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Planner = Ghostdb.Planner
module Privacy = Ghostdb.Privacy
module Scheduler = Ghost_sched.Scheduler
module Fleet = Ghost_fleet.Fleet
module Fleet_driver = Ghost_fleet.Fleet_driver

let schema () = Medical.schema ()
let rows () = Medical.generate Medical.tiny

let fleet ?device_config ?per_device_config ~shards ~replicas
    ?(partitioning = Fleet.Range) ?robustness () =
  Fleet.create ?device_config ?per_device_config ?robustness
    ~topology:{ Fleet.shards; replicas; partitioning }
    (schema ()) (rows ())

let reference_rows sql =
  let schema = schema () in
  let db = Reference.db_of_rows schema (rows ()) in
  Reference.run schema db (Bind.bind schema sql)

let sorted = Reference.sort_rows

let check_rows name want got =
  Alcotest.(check bool)
    (name ^ ": rows (" ^ string_of_int (List.length got) ^ " of "
     ^ string_of_int (List.length want) ^ ")")
    true
    (sorted want = sorted got)

(* One shard, one replica: the fleet is the paper's device, bit for
   bit — rows, clock and trace match a plain instance. *)
let test_single_device_bit_identity () =
  let f = fleet ~shards:1 ~replicas:1 () in
  let db = Ghost_db.of_schema (schema ()) (rows ()) in
  List.iter
    (fun (name, sql) ->
       let r_fleet = Fleet.query f sql in
       let r_plain = Ghost_db.query db sql in
       Alcotest.(check bool) (name ^ ": rows") true
         (r_fleet.Fleet.rows = r_plain.Exec.rows);
       Alcotest.(check bool) (name ^ ": complete") true r_fleet.Fleet.complete;
       Alcotest.(check (float 0.)) (name ^ ": elapsed")
         r_plain.Exec.elapsed_us r_fleet.Fleet.elapsed_us)
    Queries.all;
  Alcotest.(check (float 0.)) "device clocks agree"
    (Device.elapsed_us (Ghost_db.device db))
    (Device.elapsed_us (Ghost_db.device (Fleet.db f ~shard:0 ~replica:0)));
  Alcotest.(check bool) "traces identical" true
    (Trace.events (Ghost_db.trace db)
     = Trace.events (Ghost_db.trace (Fleet.db f ~shard:0 ~replica:0)))

(* Every demo query, both partitionings, several shard counts: the
   merged scatter-gather output equals the trusted reference. *)
let test_partitioned_correctness () =
  List.iter
    (fun partitioning ->
       List.iter
         (fun shards ->
            let f = fleet ~shards ~replicas:1 ~partitioning () in
            List.iter
              (fun (name, sql) ->
                 let r = Fleet.query f sql in
                 Alcotest.(check bool) (name ^ ": complete") true r.Fleet.complete;
                 check_rows
                   (Printf.sprintf "%s N=%d %s" name shards
                      (match partitioning with
                       | Fleet.Hash -> "hash"
                       | Fleet.Range -> "range"))
                   (reference_rows sql) r.Fleet.rows)
              Queries.all)
         [ 2; 3; 5 ])
    [ Fleet.Range; Fleet.Hash ]

(* Aggregates, ORDER BY and LIMIT are stripped from the shard
   sub-queries and re-applied over the merged multiset; the result must
   match the single-device path that folds them on the device. *)
let test_merge_aggregates_order_limit () =
  let db = Ghost_db.of_schema (schema ()) (rows ()) in
  let f = fleet ~shards:3 ~replicas:1 () in
  let unordered =
    [
      "SELECT COUNT(*) FROM Prescription Pre WHERE Pre.Quantity BETWEEN 4 AND 9";
      "SELECT Vis.Purpose, COUNT(*), AVG(Pre.Quantity) FROM Prescription Pre, \
       Visit Vis WHERE Vis.VisID = Pre.VisID GROUP BY Vis.Purpose";
      "SELECT MIN(Pre.PreID), MAX(Pre.PreID) FROM Prescription Pre";
    ]
  in
  List.iter
    (fun sql ->
       let r = Fleet.query f sql in
       check_rows sql (Ghost_db.query db sql).Exec.rows r.Fleet.rows)
    unordered;
  let ordered =
    [
      "SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre WHERE Pre.Quantity \
       BETWEEN 5 AND 12 ORDER BY Pre.PreID DESC LIMIT 10";
      "SELECT Vis.Purpose, COUNT(*) FROM Prescription Pre, Visit Vis WHERE \
       Vis.VisID = Pre.VisID GROUP BY Vis.Purpose ORDER BY Vis.Purpose LIMIT 3";
    ]
  in
  List.iter
    (fun sql ->
       let r = Fleet.query f sql in
       Alcotest.(check bool) (sql ^ ": ordered rows") true
         ((Ghost_db.query db sql).Exec.rows = r.Fleet.rows))
    ordered

(* Root-key predicates cross the order-preserving re-key: every
   comparison shape must select exactly the global rows the
   single-device instance selects. *)
let test_root_key_predicates () =
  let db = Ghost_db.of_schema (schema ()) (rows ()) in
  List.iter
    (fun partitioning ->
       let f = fleet ~shards:4 ~replicas:1 ~partitioning () in
       List.iter
         (fun sql ->
            let r = Fleet.query f sql in
            check_rows sql (Ghost_db.query db sql).Exec.rows r.Fleet.rows)
         [
           "SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre WHERE \
            Pre.PreID = 123";
           "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.PreID = 100000";
           "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.PreID < 17";
           "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.PreID >= 380";
           "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.PreID BETWEEN 90 \
            AND 110";
           "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.PreID IN (1, 7, \
            200, 399, 4000)";
           "SELECT Pre.PreID, Vis.Date FROM Prescription Pre, Visit Vis WHERE \
            Pre.PreID BETWEEN 50 AND 150 AND Vis.Purpose = 'Diabetes' AND \
            Vis.VisID = Pre.VisID";
         ])
    [ Fleet.Range; Fleet.Hash ]

(* The health state machine: kill/revive/probe and the organic
   error-driven transitions healthy -> suspect -> dead. *)
let test_health_machine () =
  let f = fleet ~shards:2 ~replicas:2 () in
  Alcotest.(check bool) "starts healthy" true
    (Fleet.health f ~shard:0 ~replica:0 = Fleet.Healthy);
  Fleet.kill f ~shard:0 ~replica:0;
  Alcotest.(check bool) "killed = dead" true
    (Fleet.health f ~shard:0 ~replica:0 = Fleet.Dead);
  Alcotest.(check bool) "probe on a dead device fails" false
    (Fleet.probe f ~shard:0 ~replica:0);
  Fleet.revive f ~shard:0 ~replica:0;
  Alcotest.(check bool) "revived = suspect" true
    (Fleet.health f ~shard:0 ~replica:0 = Fleet.Suspect);
  Alcotest.(check bool) "probe heals a live suspect" true
    (Fleet.probe f ~shard:0 ~replica:0);
  Alcotest.(check bool) "healthy again" true
    (Fleet.health f ~shard:0 ~replica:0 = Fleet.Healthy);
  (* error/timeout counters drive the transitions *)
  Fleet.note_error f ~shard:1 ~replica:0;
  Alcotest.(check bool) "one error = suspect" true
    (Fleet.health f ~shard:1 ~replica:0 = Fleet.Suspect);
  Fleet.note_timeout f ~shard:1 ~replica:0;
  Fleet.note_error f ~shard:1 ~replica:0;
  Alcotest.(check bool) "three consecutive failures = dead" true
    (Fleet.health f ~shard:1 ~replica:0 = Fleet.Dead);
  let stats = Fleet.replica_stats f ~shard:1 ~replica:0 in
  Alcotest.(check int) "errors counted" 2 stats.Fleet.r_errors;
  Alcotest.(check int) "timeouts counted" 1 stats.Fleet.r_timeouts;
  Alcotest.(check bool) "success heals" true
    (Fleet.note_success f ~shard:1 ~replica:1;
     Fleet.health f ~shard:1 ~replica:1 = Fleet.Healthy);
  (* a shard with every replica dead is unreachable *)
  Fleet.kill f ~shard:1 ~replica:1;
  Alcotest.(check bool) "no replica left" true
    (Fleet.pick_replica f ~shard:1 ~exclude:[] = None)

(* A device whose USB link always corrupts: transport errors surface
   as failovers and push it organically to dead; the sibling replica
   serves every query. *)
let test_organic_failover () =
  let bad ~shard ~replica =
    if shard = 0 && replica = 0 then
      { Device.default_config with
        Device.usb_fault =
          Some { Device.default_usb_fault with
                 Device.usb_seed = 99; corrupt_prob = 1.0; max_retries = 1 } }
    else Device.default_config
  in
  let f = fleet ~per_device_config:bad ~shards:2 ~replicas:2 () in
  let seen_failover = ref false in
  List.iter
    (fun (name, sql) ->
       let r = Fleet.query f sql in
       Alcotest.(check bool) (name ^ ": complete despite bad link") true
         r.Fleet.complete;
       check_rows name (reference_rows sql) r.Fleet.rows;
       List.iter
         (fun (sr : Fleet.shard_report) ->
            if sr.Fleet.sr_failed_over then seen_failover := true)
         r.Fleet.shard_reports)
    Queries.all;
  Alcotest.(check bool) "at least one failover happened" true !seen_failover;
  Alcotest.(check bool) "bad replica degraded" true
    (Fleet.health f ~shard:0 ~replica:0 <> Fleet.Healthy);
  let v = Fleet.audit f in
  Alcotest.(check bool) "fleet audit ok under failover" true v.Privacy.ok

(* Chaos sweep: kill each device at every point of the scatter (the
   hook fires before every execution attempt). At R=2 the fleet must
   fail over to a correct, complete result; at R=1 the affected shard
   must come back as a correctly-tagged partial whose surviving rows
   are exactly the reachable shards' slice. *)
let test_chaos_kill_sweep () =
  let shards = 2 in
  let sql =
    "SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre WHERE Pre.Quantity \
     BETWEEN 4 AND 9"
  in
  let want = reference_rows sql in
  List.iter
    (fun replicas ->
       let f = fleet ~shards ~replicas () in
       let points = shards * replicas + 2 in
       for s = 0 to shards - 1 do
         for r = 0 to replicas - 1 do
           for point = 0 to points - 1 do
             (* heal everything from the previous iteration *)
             for s' = 0 to shards - 1 do
               for r' = 0 to replicas - 1 do
                 Fleet.revive f ~shard:s' ~replica:r'
               done
             done;
             let attempts = ref 0 in
             Fleet.set_chaos_hook f
               (Some
                  (fun ~shard:_ ~replica:_ ->
                     if !attempts = point then
                       Fleet.kill f ~shard:s ~replica:r;
                     incr attempts));
             let res = Fleet.query f sql in
             Fleet.set_chaos_hook f None;
             let label =
               Printf.sprintf "R=%d kill (%d,%d) at attempt %d" replicas s r
                 point
             in
             if replicas >= 2 then begin
               Alcotest.(check bool) (label ^ ": complete") true
                 res.Fleet.complete;
               check_rows label want res.Fleet.rows
             end
             else if res.Fleet.complete then check_rows label want res.Fleet.rows
             else begin
               Alcotest.(check (list int)) (label ^ ": tagged shard") [ s ]
                 res.Fleet.unreachable;
               (* the partial is exactly the reachable shards' slice *)
               let f_of_id id = Fleet.shard_of_global f id in
               let survivors =
                 List.filter
                   (fun row ->
                      match row.(0) with
                      | Value.Int id -> f_of_id id <> s
                      | _ -> false)
                   want
               in
               check_rows (label ^ ": partial slice") survivors res.Fleet.rows
             end
           done
         done
       done;
       Alcotest.(check bool)
         (Printf.sprintf "R=%d fleet audit ok after chaos" replicas)
         true (Fleet.audit f).Privacy.ok)
    [ 1; 2 ]

(* Interleaving equivalence across devices: the demo queries scattered
   through per-device schedulers, sliced and interleaved, must leave
   every (session, device) with the spy report of the same sub-query
   run serially on an identical fleet — and every session and device
   trace must pass the audit. *)
let test_interleaving_equivalence () =
  let shards = 2 in
  let f = fleet ~shards ~replicas:1 () in
  let f_serial = fleet ~shards ~replicas:1 () in
  let queries = Queries.all in
  (* serial ground truth, one clean trace window per sub-query *)
  let serial =
    List.map
      (fun (name, sql) ->
         let q = Fleet.bind f_serial sql in
         ( name,
           List.init shards (fun s ->
             let db = Fleet.db f_serial ~shard:s ~replica:0 in
             Ghost_db.clear_trace db;
             let subq = Fleet.subquery f_serial ~shard:s q in
             let plan, _ = Planner.best (Ghost_db.catalog db) subq in
             let r = Ghost_db.run_plan db plan in
             (r.Exec.rows, Ghost_db.spy_report db)) ))
      queries
  in
  (* interleaved: every query's sub-queries submitted up front, then
     the per-device schedulers stepped round-robin with a small
     quantum *)
  let scheds =
    Array.init shards (fun s ->
      let db = Fleet.db f ~shard:s ~replica:0 in
      Scheduler.create ~policy:Scheduler.Round_robin ~quantum_us:500.
        (Ghost_db.catalog db) (Ghost_db.public db))
  in
  let ids =
    List.map
      (fun (name, sql) ->
         let q = Fleet.bind f sql in
         ( name,
           List.init shards (fun s ->
             let db = Fleet.db f ~shard:s ~replica:0 in
             let subq = Fleet.subquery f ~shard:s q in
             let plan, _ = Planner.best (Ghost_db.catalog db) subq in
             Scheduler.submit scheds.(s) ~label:name plan) ))
      queries
  in
  let rec pump () =
    let progressed = ref false in
    Array.iter (fun sched -> if Scheduler.step sched then progressed := true) scheds;
    if !progressed then pump ()
  in
  pump ();
  List.iter2
    (fun (name, sessions) (name', truth) ->
       Alcotest.(check string) "mix order" name name';
       List.iteri
         (fun s (id, (want_rows, want_spy)) ->
            let db = Fleet.db f ~shard:s ~replica:0 in
            let trace = Ghost_db.trace db in
            (match Scheduler.outcome scheds.(s) id with
             | Some (Scheduler.Completed r) ->
               Alcotest.(check bool)
                 (Printf.sprintf "%s shard %d: rows" name s)
                 true
                 (sorted r.Exec.rows = sorted want_rows)
             | _ -> Alcotest.failf "%s shard %d: not completed" name s);
            Alcotest.(check bool)
              (Printf.sprintf "%s shard %d: session spy report" name s)
              true
              (Spy.analyze ~session:id trace = want_spy);
            Alcotest.(check bool)
              (Printf.sprintf "%s shard %d: session audit" name s)
              true (Privacy.audit ~session:id trace).Privacy.ok)
         (List.combine sessions truth))
    ids serial;
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "device audit" true v.Privacy.ok)
    (Fleet.audits f)

let driver_spec =
  { Fleet_driver.default_spec with Fleet_driver.clients = 6; queries_per_client = 3 }

(* The closed-loop driver on a healthy fleet: every query completes,
   merged rows match the reference, audits pass. *)
let test_driver_healthy () =
  let f = fleet ~shards:2 ~replicas:1 () in
  let want = List.map (fun (name, sql) -> (name, reference_rows sql)) Queries.all in
  let ok = ref true in
  let summary =
    Fleet_driver.run f driver_spec ~on_outcome:(fun o ->
      if not o.Fleet_driver.qo_complete then ok := false;
      let expect = List.assoc o.Fleet_driver.qo_name want in
      if sorted o.Fleet_driver.qo_rows <> sorted expect then ok := false)
  in
  Alcotest.(check bool) "all outcomes complete and correct" true !ok;
  Alcotest.(check int) "all queries done" 18 summary.Fleet_driver.completed;
  Alcotest.(check int) "no partials" 0 summary.Fleet_driver.partial;
  Alcotest.(check (float 0.001)) "availability 1" 1.0
    summary.Fleet_driver.availability;
  Alcotest.(check bool) "fleet audit" true (Fleet.audit f).Privacy.ok

(* Mid-workload device kill at R=2: zero queries lost — every one
   completes with a correct result via failover. *)
let test_driver_kill_replicated () =
  let f = fleet ~shards:2 ~replicas:2 () in
  let want = List.map (fun (name, sql) -> (name, reference_rows sql)) Queries.all in
  let ok = ref true in
  let kills =
    [ { Fleet_driver.kill_at_us = 2_000.; kill_shard = 0; kill_replica = 0 } ]
  in
  let summary =
    Fleet_driver.run f driver_spec ~kills ~on_outcome:(fun o ->
      if not o.Fleet_driver.qo_complete then ok := false;
      let expect = List.assoc o.Fleet_driver.qo_name want in
      if sorted o.Fleet_driver.qo_rows <> sorted expect then ok := false)
  in
  Alcotest.(check bool) "dead replica" true
    (Fleet.health f ~shard:0 ~replica:0 = Fleet.Dead);
  Alcotest.(check bool) "every query complete and correct" true !ok;
  Alcotest.(check int) "zero lost" 18 summary.Fleet_driver.completed;
  Alcotest.(check int) "zero partial" 0 summary.Fleet_driver.partial;
  Alcotest.(check bool) "fleet audit after kill" true (Fleet.audit f).Privacy.ok

(* Mid-workload device kill at R=1: every affected query degrades to a
   partial tagged with exactly the dead shard; the rest complete. *)
let test_driver_kill_unreplicated () =
  let f = fleet ~shards:2 ~replicas:1 () in
  let ok = ref true in
  let kills =
    [ { Fleet_driver.kill_at_us = 2_000.; kill_shard = 1; kill_replica = 0 } ]
  in
  let summary =
    Fleet_driver.run f driver_spec ~kills ~on_outcome:(fun o ->
      if not o.Fleet_driver.qo_complete
         && o.Fleet_driver.qo_unreachable <> [ 1 ]
      then ok := false)
  in
  Alcotest.(check bool) "partials tagged with the dead shard" true !ok;
  Alcotest.(check bool) "some queries degraded" true
    (summary.Fleet_driver.partial > 0);
  Alcotest.(check int) "every query terminated" 18
    (summary.Fleet_driver.completed + summary.Fleet_driver.partial);
  Alcotest.(check bool) "availability < 1" true
    (summary.Fleet_driver.availability < 1.0);
  Alcotest.(check bool) "fleet audit after kill" true (Fleet.audit f).Privacy.ok

let suite =
  [
    Alcotest.test_case "N=1 R=1 is bit-identical to the seed path" `Quick
      test_single_device_bit_identity;
    Alcotest.test_case "scatter-gather equals the reference (N=2,3,5)" `Quick
      test_partitioned_correctness;
    Alcotest.test_case "aggregates / ORDER BY / LIMIT merge fleet-side" `Quick
      test_merge_aggregates_order_limit;
    Alcotest.test_case "root-key predicates cross the re-key" `Quick
      test_root_key_predicates;
    Alcotest.test_case "health machine: kill, revive, probe, transitions" `Quick
      test_health_machine;
    Alcotest.test_case "organic failover on a corrupting link" `Quick
      test_organic_failover;
    Alcotest.test_case "chaos sweep: kill every device at every point" `Quick
      test_chaos_kill_sweep;
    Alcotest.test_case "interleaved scatter = serial spy reports and audits"
      `Quick test_interleaving_equivalence;
    Alcotest.test_case "driver: healthy fleet completes everything" `Quick
      test_driver_healthy;
    Alcotest.test_case "driver: mid-workload kill at R=2 loses nothing" `Quick
      test_driver_kill_replicated;
    Alcotest.test_case "driver: mid-workload kill at R=1 tags partials" `Quick
      test_driver_kill_unreplicated;
  ]
