(* Direct unit tests of the append-only logs (insert delta, deletion
   tombstones): encoding, Flash behaviour, write amplification. *)

module Value = Ghost_kernel.Value
module Flash = Ghost_flash.Flash
module Delta_log = Ghostdb.Delta_log
module Tombstone_log = Ghostdb.Tombstone_log

let check = Alcotest.check

let flash () = Flash.create ~geometry:{ Flash.page_size = 256; pages_per_block = 8 } ()

let make_delta f =
  Delta_log.create f ~table:"R" ~levels:[ "R"; "A"; "B" ]
    ~hidden_cols:[ ("q", Value.T_int); ("s", Value.T_char 8) ]

let test_delta_roundtrip () =
  let f = flash () in
  let log = make_delta f in
  check Alcotest.int "record bytes" (12 + 8 + 8) (Delta_log.record_bytes log);
  for i = 1 to 25 do
    Delta_log.append log
      ~ids:[| 100 + i; i; (2 * i) + 1 |]
      ~hidden:[| Value.Int (i * 3); Value.Str (Printf.sprintf "s%d" i) |]
  done;
  check Alcotest.int "count" 25 (Delta_log.count log);
  let seen = ref 0 in
  Delta_log.scan log (fun r ->
    incr seen;
    let i = !seen in
    check Alcotest.(array int) "ids" [| 100 + i; i; (2 * i) + 1 |] r.Delta_log.ids;
    check Alcotest.bool "hidden value" true
      (Value.equal (Value.Int (i * 3)) (Delta_log.hidden_value log r "q"));
    check Alcotest.bool "hidden assoc" true
      (List.assoc "s" (Delta_log.hidden_assoc log r)
       = Value.Str (Printf.sprintf "s%d" i)));
  check Alcotest.int "scanned all" 25 !seen

let test_delta_validation () =
  let log = make_delta (flash ()) in
  (try
     Delta_log.append log ~ids:[| 1 |] ~hidden:[| Value.Int 1; Value.Str "a" |];
     Alcotest.fail "expected misaligned ids"
   with Invalid_argument _ -> ());
  try
    Delta_log.append log ~ids:[| 1; 2; 3 |] ~hidden:[| Value.Int 1 |];
    Alcotest.fail "expected misaligned hidden"
  with Invalid_argument _ -> ()

let test_delta_write_amplification () =
  let f = flash () in
  let log = make_delta f in
  (* 256-byte pages, 28-byte records: 9 per page. Every append
     re-programs the tail page. *)
  for i = 1 to 9 do
    Delta_log.append log ~ids:[| i; 1; 1 |] ~hidden:[| Value.Int 0; Value.Str "" |]
  done;
  let s = Flash.stats f in
  check Alcotest.int "one program per append" 9 s.Flash.page_programs;
  check Alcotest.bool "dead bytes accumulate" true (Delta_log.dead_bytes log > 0);
  check Alcotest.int "live = 9 records" (9 * 28) (Delta_log.size_bytes log)

let test_tombstones () =
  let f = flash () in
  let log = Tombstone_log.create f ~table:"R" in
  Tombstone_log.append log [ 5; 1; 9 ];
  Tombstone_log.append log [ 2 ];
  check Alcotest.int "count" 4 (Tombstone_log.count log);
  check Alcotest.bool "mem" true (Tombstone_log.mem log 9);
  check Alcotest.bool "not mem" false (Tombstone_log.mem log 3);
  check Alcotest.(array int) "sorted load" [| 1; 2; 5; 9 |]
    (Tombstone_log.load_sorted log);
  (* load is metered *)
  let before = (Flash.stats f).Flash.page_reads in
  ignore (Tombstone_log.load_sorted log);
  check Alcotest.bool "flash read charged" true
    ((Flash.stats f).Flash.page_reads > before)

let test_tombstones_many_pages () =
  let f = flash () in
  let log = Tombstone_log.create f ~table:"R" in
  (* 64 ids per 256-byte page: cross several pages *)
  Tombstone_log.append log (List.init 200 (fun i -> i + 1));
  check Alcotest.int "count" 200 (Tombstone_log.count log);
  check Alcotest.int "all back" 200 (Array.length (Tombstone_log.load_sorted log))

let make_durable_delta f =
  Delta_log.create ~durability:Delta_log.Checksummed f ~table:"R"
    ~levels:[ "R"; "A"; "B" ]
    ~hidden_cols:[ ("q", Value.T_int); ("s", Value.T_char 8) ]

let append_n log n =
  for i = 1 to n do
    Delta_log.append log
      ~ids:[| 100 + i; i; (2 * i) + 1 |]
      ~hidden:[| Value.Int (i * 3); Value.Str (Printf.sprintf "s%d" i) |]
  done

let scanned_ids log =
  let acc = ref [] in
  Delta_log.scan log (fun r -> acc := r.Delta_log.ids.(0) :: !acc);
  List.rev !acc

let test_delta_checksummed_roundtrip () =
  let f = flash () in
  let log = make_durable_delta f in
  (* 256-byte pages minus the 20-byte header: 8 records of 28 bytes *)
  append_n log 25;
  check Alcotest.int "count" 25 (Delta_log.count log);
  check Alcotest.(list int) "all records back, in order"
    (List.init 25 (fun i -> 101 + i)) (scanned_ids log)

let test_delta_dead_bytes_quantified () =
  let f = flash () in
  let log = make_delta f in
  (* rpp = 9 (plain): k tail reprograms strand 0+1+...+(k-1) records *)
  for k = 1 to 8 do
    Delta_log.append log ~ids:[| k; 1; 1 |] ~hidden:[| Value.Int 0; Value.Str "" |];
    check Alcotest.int (Printf.sprintf "dead after %d" k)
      (28 * (k * (k - 1) / 2)) (Delta_log.dead_bytes log)
  done;
  (* the 9th append completes the page: its superseded predecessor
     still counts, and the next append opens a fresh tail with no dead
     space *)
  Delta_log.append log ~ids:[| 9; 1; 1 |] ~hidden:[| Value.Int 0; Value.Str "" |];
  check Alcotest.int "dead after full page" (28 * 36) (Delta_log.dead_bytes log);
  Delta_log.append log ~ids:[| 10; 1; 1 |] ~hidden:[| Value.Int 0; Value.Str "" |];
  check Alcotest.int "fresh tail adds none" (28 * 36) (Delta_log.dead_bytes log)

let test_delta_power_cut_recovery () =
  let f = flash () in
  let log = make_durable_delta f in
  append_n log 11;  (* one full page (8) + tail of 3 *)
  Flash.arm_power_cut f ~after_programs:1;
  (try
     Delta_log.append log ~ids:[| 112; 12; 25 |]
       ~hidden:[| Value.Int 36; Value.Str "s12" |];
     Alcotest.fail "expected Power_cut"
   with Flash.Power_cut _ -> ());
  check Alcotest.bool "needs recovery" true (Delta_log.needs_recovery log);
  (* volatile state still counts the unacknowledged record *)
  check Alcotest.int "volatile count" 12 (Delta_log.count log);
  (try
     append_n log 1;
     Alcotest.fail "append must refuse"
   with Invalid_argument _ -> ());
  let r = Delta_log.recover log in
  check Alcotest.int "recovered acknowledged prefix" 11 r.Delta_log.recovered;
  check Alcotest.int "lost the torn record" 1 r.Delta_log.lost;
  check Alcotest.bool "torn page seen" true (r.Delta_log.torn_pages >= 1);
  check Alcotest.bool "recovered" false (Delta_log.needs_recovery log);
  check Alcotest.(list int) "contents = acknowledged appends"
    (List.init 11 (fun i -> 101 + i)) (scanned_ids log);
  (* the log is usable again *)
  Delta_log.append log ~ids:[| 112; 12; 25 |]
    ~hidden:[| Value.Int 36; Value.Str "s12" |];
  check Alcotest.int "append after recovery" 12 (Delta_log.count log)

let test_delta_power_cut_on_first_append () =
  let f = flash () in
  let log = make_durable_delta f in
  Flash.arm_power_cut f ~after_programs:1;
  (try append_n log 1; Alcotest.fail "expected Power_cut"
   with Flash.Power_cut _ -> ());
  let r = Delta_log.recover log in
  check Alcotest.int "nothing durable" 0 r.Delta_log.recovered;
  check Alcotest.int "one lost" 1 r.Delta_log.lost;
  check Alcotest.int "empty log" 0 (Delta_log.count log);
  append_n log 3;
  check Alcotest.(list int) "restarts cleanly" [ 101; 102; 103 ] (scanned_ids log)

let test_delta_plain_cannot_recover () =
  let log = make_delta (flash ()) in
  try
    ignore (Delta_log.recover log);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_tombstone_power_cut_recovery () =
  let f = flash () in
  let log = Tombstone_log.create ~durability:Tombstone_log.Checksummed f ~table:"R" in
  Tombstone_log.append log [ 5; 1; 9 ];
  (* tear the program of the 2nd id of the next batch: the 1st id is
     durable, the 2nd is not *)
  Flash.arm_power_cut f ~after_programs:2;
  (try Tombstone_log.append log [ 2; 7; 4 ]; Alcotest.fail "expected Power_cut"
   with Flash.Power_cut _ -> ());
  check Alcotest.bool "needs recovery" true (Tombstone_log.needs_recovery log);
  let r = Tombstone_log.recover log in
  check Alcotest.int "durable prefix of the batch" 4 r.Tombstone_log.recovered;
  check Alcotest.int "torn id lost" 1 r.Tombstone_log.lost;
  check Alcotest.(array int) "sorted load" [| 1; 2; 5; 9 |]
    (Tombstone_log.load_sorted log);
  check Alcotest.bool "membership rebuilt" true (Tombstone_log.mem log 2);
  check Alcotest.bool "torn id not a member" false (Tombstone_log.mem log 7);
  Tombstone_log.append log [ 7; 4 ];
  check Alcotest.int "resumes" 6 (Tombstone_log.count log)

let suite = [
  Alcotest.test_case "delta roundtrip" `Quick test_delta_roundtrip;
  Alcotest.test_case "delta checksummed roundtrip" `Quick test_delta_checksummed_roundtrip;
  Alcotest.test_case "delta dead bytes quantified" `Quick test_delta_dead_bytes_quantified;
  Alcotest.test_case "delta power-cut recovery" `Quick test_delta_power_cut_recovery;
  Alcotest.test_case "delta power cut on first append" `Quick test_delta_power_cut_on_first_append;
  Alcotest.test_case "plain log cannot recover" `Quick test_delta_plain_cannot_recover;
  Alcotest.test_case "tombstone power-cut recovery" `Quick test_tombstone_power_cut_recovery;
  Alcotest.test_case "delta validation" `Quick test_delta_validation;
  Alcotest.test_case "delta write amplification" `Quick test_delta_write_amplification;
  Alcotest.test_case "tombstones" `Quick test_tombstones;
  Alcotest.test_case "tombstones across pages" `Quick test_tombstones_many_pages;
]
