(* Tests of the shared page cache (Page_cache): eviction correctness
   under a tiny frame pool, RAM arena accounting, coherence across
   invalidation and reorganization, and determinism of the cached
   query path. *)

module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram
module Device = Ghost_device.Device
module Page_cache = Ghost_device.Page_cache
module Medical = Ghost_workload.Medical
module Ghost_db = Ghostdb.Ghost_db

let check = Alcotest.check

let geometry = { Flash.page_size = 256; pages_per_block = 8 }

(* A flash with [n] programmed pages of distinct, position-dependent
   content, so any mixed-up fill or stale frame shows as a byte
   mismatch. *)
let flash_with_pages n =
  let f = Flash.create ~geometry () in
  for p = 0 to n - 1 do
    let page =
      Bytes.init geometry.Flash.page_size (fun i ->
        Char.chr ((p * 131 + i * 7) land 0xff))
    in
    ignore (Flash.append f page)
  done;
  f

let cache_read c ~page ~off ~len =
  let dst = Bytes.make len '\000' in
  Page_cache.read c ~page ~off ~len dst ~pos:0;
  Bytes.to_string dst

let test_eviction_correctness () =
  let pages = 9 in
  let f = flash_with_pages pages in
  let ram = Ram.create ~budget:(4 * geometry.Flash.page_size) in
  let c = Page_cache.create ~ram f ~frames:2 in
  (* Deterministic access pattern that cycles through more pages than
     frames, with re-touches at short and long distance. *)
  let accesses = ref [] in
  for round = 0 to 5 do
    for p = 0 to pages - 1 do
      let off = (round * 13 + p * 5) mod (geometry.Flash.page_size - 17) in
      accesses := (p, off, 17) :: !accesses;
      accesses := (p, 0, geometry.Flash.page_size) :: !accesses
    done
  done;
  List.iter
    (fun (page, off, len) ->
       check Alcotest.string
         (Printf.sprintf "page %d off %d len %d" page off len)
         (Bytes.to_string (Flash.read f ~page ~off ~len))
         (cache_read c ~page ~off ~len))
    (List.rev !accesses);
  let s = Page_cache.stats c in
  check Alcotest.bool "hits happened" true (s.Page_cache.hits > 0);
  check Alcotest.bool "misses happened" true (s.Page_cache.misses > 0);
  check Alcotest.int "resident bounded by pool" 2 (Page_cache.resident c);
  (* Once the pool is full every further fill evicts. *)
  check Alcotest.int "evictions = misses - frames"
    (s.Page_cache.misses - 2) s.Page_cache.evictions;
  Page_cache.close c

let test_ram_accounting () =
  let ram = Ram.create ~budget:(8 * geometry.Flash.page_size) in
  let f = flash_with_pages 2 in
  let before = Ram.in_use ram in
  let c = Page_cache.create ~ram f ~frames:3 in
  check Alcotest.int "pool charged to the arena"
    (before + (3 * geometry.Flash.page_size))
    (Ram.in_use ram);
  check Alcotest.int "frame_bytes reports the charge"
    (3 * geometry.Flash.page_size)
    (Page_cache.frame_bytes c);
  ignore (cache_read c ~page:0 ~off:0 ~len:16);
  Page_cache.close c;
  check Alcotest.int "pool released on close" before (Ram.in_use ram);
  Page_cache.close c (* idempotent *);
  check Alcotest.int "double close releases nothing twice" before
    (Ram.in_use ram);
  (try
     ignore (cache_read c ~page:0 ~off:0 ~len:16);
     Alcotest.fail "expected read after close to raise"
   with Invalid_argument _ -> ());
  (* Over budget: the arena, not the cache, decides. *)
  try
    ignore (Page_cache.create ~ram f ~frames:100);
    Alcotest.fail "expected Ram_exceeded"
  with Ram.Ram_exceeded _ -> ()

let test_invalidate_coherence () =
  let f = flash_with_pages 8 in
  let ram = Ram.create ~budget:(8 * geometry.Flash.page_size) in
  let c = Page_cache.create ~ram f ~frames:4 in
  let before = cache_read c ~page:3 ~off:0 ~len:geometry.Flash.page_size in
  check Alcotest.string "cached copy matches flash"
    (Bytes.to_string (Flash.read f ~page:3 ~off:0 ~len:geometry.Flash.page_size))
    before;
  (* Recycle page 3's block, append fresh content, and invalidate the
     way the log layers do after a program lands. *)
  Flash.erase_block f 0;
  let fresh = Bytes.make geometry.Flash.page_size 'Z' in
  let landed = ref [] in
  for _ = 1 to 8 do
    let page = Flash.append f fresh in
    landed := page :: !landed;
    Page_cache.invalidate c ~page
  done;
  check Alcotest.bool "recycled page 3" true (List.mem 3 !landed);
  check Alcotest.string "invalidation exposes the new bytes"
    (Bytes.to_string fresh)
    (cache_read c ~page:3 ~off:0 ~len:geometry.Flash.page_size);
  let s = Page_cache.stats c in
  check Alcotest.bool "invalidations counted" true
    (s.Page_cache.invalidations > 0);
  (* clear drops everything but keeps the pool. *)
  Page_cache.clear c;
  check Alcotest.int "nothing resident after clear" 0 (Page_cache.resident c);
  check Alcotest.string "reads still correct after clear"
    (Bytes.to_string fresh)
    (cache_read c ~page:3 ~off:0 ~len:geometry.Flash.page_size);
  Page_cache.close c

let cached_config frames =
  let page = Device.default_config.Device.flash_geometry.Flash.page_size in
  { Device.default_config with
    Device.page_cache_frames = frames;
    Device.ram_budget =
      Device.default_config.Device.ram_budget + (frames * page) }

let count_query =
  "SELECT COUNT(*) FROM Prescription Pre WHERE Pre.Quantity BETWEEN 8 AND 10"

let join_query =
  "SELECT COUNT(*) FROM Prescription Pre, Visit Vis WHERE Vis.Purpose = \
   'Sclerosis' AND Vis.VisID = Pre.VisID"

let make_db ?device_config () =
  Ghost_db.of_schema ?device_config (Medical.schema ())
    (Medical.generate Medical.tiny)

let rows sql db = (Ghost_db.query db sql).Ghostdb.Exec.rows

let test_cached_results_match_uncached () =
  let plain = make_db () in
  let cached = make_db ~device_config:(cached_config 16) () in
  check Alcotest.bool "default device has no cache" true
    (Device.page_cache (Ghost_db.device plain) = None);
  check Alcotest.bool "configured device has a cache" true
    (Device.page_cache (Ghost_db.device cached) <> None);
  List.iter
    (fun sql ->
       check
         Alcotest.(list (list string))
         sql
         (List.map
            (fun r -> Array.to_list (Array.map Ghost_kernel.Value.to_string r))
            (rows sql plain))
         (List.map
            (fun r -> Array.to_list (Array.map Ghost_kernel.Value.to_string r))
            (rows sql cached)))
    [ count_query; join_query ];
  let s = Device.cache_stats (Ghost_db.device cached) in
  check Alcotest.bool "query path touched the cache" true
    (s.Page_cache.hits + s.Page_cache.misses > 0);
  check Alcotest.bool "cached device time never worse" true
    (Device.elapsed_us (Ghost_db.device cached)
     <= Device.elapsed_us (Ghost_db.device plain))

let test_reorganize_invalidates () =
  let db = make_db ~device_config:(cached_config 16) () in
  let before = rows count_query db in
  Ghost_db.delete db [ 1; 2; 3 ];
  let with_tombstones = rows count_query db in
  let db = Ghost_db.reorganize db in
  (* The old device's cache was cleared on reorganize and the rebuilt
     device answers from freshly laid-out Flash. *)
  check Alcotest.bool "rebuilt device keeps its cache" true
    (Device.page_cache (Ghost_db.device db) <> None);
  check
    Alcotest.(list (list string))
    "post-reorganize result matches pre-reorganize logical state"
    (List.map
       (fun r -> Array.to_list (Array.map Ghost_kernel.Value.to_string r))
       with_tombstones)
    (List.map
       (fun r -> Array.to_list (Array.map Ghost_kernel.Value.to_string r))
       (rows count_query db));
  (* The deletes were of Prescription ids; the count must not exceed
     the pre-delete one. *)
  let n l = match l with [ [ v ] ] -> int_of_string v | _ -> -1 in
  check Alcotest.bool "deletes visible" true
    (n (List.map
          (fun r -> Array.to_list (Array.map Ghost_kernel.Value.to_string r))
          before)
     >= n (List.map
             (fun r -> Array.to_list (Array.map Ghost_kernel.Value.to_string r))
             with_tombstones))

let test_determinism () =
  let run () =
    let db = make_db ~device_config:(cached_config 8) () in
    let device = Ghost_db.device db in
    List.iter (fun sql -> ignore (rows sql db)) [ count_query; join_query ];
    (Device.cache_stats device, Device.elapsed_us device)
  in
  let s1, t1 = run () in
  let s2, t2 = run () in
  check Alcotest.int "hits deterministic" s1.Page_cache.hits s2.Page_cache.hits;
  check Alcotest.int "misses deterministic" s1.Page_cache.misses
    s2.Page_cache.misses;
  check Alcotest.int "evictions deterministic" s1.Page_cache.evictions
    s2.Page_cache.evictions;
  check (Alcotest.float 0.0) "device time deterministic" t1 t2

let suite =
  [
    Alcotest.test_case "eviction correctness (tiny pool)" `Quick
      test_eviction_correctness;
    Alcotest.test_case "ram accounting" `Quick test_ram_accounting;
    Alcotest.test_case "invalidate + clear coherence" `Quick
      test_invalidate_coherence;
    Alcotest.test_case "cached results match uncached" `Quick
      test_cached_results_match_uncached;
    Alcotest.test_case "reorganize invalidates" `Quick
      test_reorganize_invalidates;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
