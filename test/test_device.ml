(* Tests for the secure-device model: RAM arena, trace, accounting. *)

module Ram = Ghost_device.Ram
module Trace = Ghost_device.Trace
module Device = Ghost_device.Device
module Flash = Ghost_flash.Flash

let check = Alcotest.check

let test_ram_budget_enforced () =
  let r = Ram.create ~budget:100 in
  let c = Ram.alloc r ~label:"a" 60 in
  check Alcotest.int "in use" 60 (Ram.in_use r);
  (try
     ignore (Ram.alloc r ~label:"b" 50);
     Alcotest.fail "expected Ram_exceeded"
   with Ram.Ram_exceeded { requested = 50; in_use = 60; budget = 100; _ } -> ()
      | Ram.Ram_exceeded _ -> Alcotest.fail "wrong payload");
  Ram.free r c;
  check Alcotest.int "freed" 0 (Ram.in_use r);
  let c2 = Ram.alloc r ~label:"b" 100 in
  Ram.free r c2;
  Ram.free r c2;
  check Alcotest.int "double free ignored" 0 (Ram.in_use r)

let test_ram_peak_and_scope () =
  let r = Ram.create ~budget:1000 in
  let s = Ram.open_scope r in
  let a = Ram.alloc r ~label:"a" 300 in
  let b = Ram.alloc r ~label:"b" 200 in
  Ram.free r b;
  Ram.free r a;
  check Alcotest.int "scope peak" 500 (Ram.close_scope r s);
  check Alcotest.int "global peak" 500 (Ram.peak r);
  let s2 = Ram.open_scope r in
  let c = Ram.alloc r ~label:"c" 100 in
  Ram.free r c;
  check Alcotest.int "second scope sees only its window" 100 (Ram.close_scope r s2)

let test_ram_resize () =
  let r = Ram.create ~budget:100 in
  let c = Ram.alloc r ~label:"buf" 10 in
  Ram.resize r c 90;
  check Alcotest.int "resized" 90 (Ram.in_use r);
  (try
     Ram.resize r c 101;
     Alcotest.fail "expected Ram_exceeded"
   with Ram.Ram_exceeded _ -> ());
  Ram.resize r c 5;
  check Alcotest.int "shrunk" 5 (Ram.in_use r);
  Ram.free r c

let test_ram_with_alloc_on_exception () =
  let r = Ram.create ~budget:100 in
  (try Ram.with_alloc r ~label:"x" 50 (fun _ -> failwith "boom") with Failure _ -> ());
  check Alcotest.int "freed after raise" 0 (Ram.in_use r)

let test_trace_spy_visibility () =
  let t = Trace.create () in
  Trace.record t Trace.Pc_to_device (Trace.Id_list { table = "Visit"; count = 3 }) ~bytes:12;
  Trace.record t Trace.Device_to_display (Trace.Result_tuples { count = 1 }) ~bytes:20;
  Trace.record t Trace.Server_to_pc (Trace.Query_text "SELECT ...") ~bytes:10;
  check Alcotest.int "all events" 3 (List.length (Trace.events t));
  check Alcotest.int "spy sees 2" 2 (List.length (Trace.spy_events t));
  check Alcotest.bool "display is not spy-visible" false
    (List.exists
       (fun e -> e.Trace.link = Trace.Device_to_display)
       (Trace.spy_events t))

let test_device_clock () =
  let trace = Trace.create () in
  let d = Device.create ~trace () in
  check (Alcotest.float 1e-9) "starts at 0" 0. (Device.elapsed_us d);
  Device.cpu d 500;
  (* 50 MIPS -> 10 us *)
  check (Alcotest.float 1e-9) "cpu time" 10. (Device.cpu_time_us d);
  Device.receive d (Trace.Id_list { table = "T"; count = 1 }) ~bytes:1500;
  (* 12 Mbit/s -> 1000 us for 1500 B, + 100 us latency *)
  check (Alcotest.float 1e-6) "usb time" 1100. (Device.usb_time_us d);
  ignore (Flash.append (Device.flash d) (Bytes.make 100 'x'));
  check Alcotest.bool "flash time counted" true
    (Device.elapsed_us d > 1110.)

let test_device_scratch_counted () =
  let trace = Trace.create () in
  let d = Device.create ~trace () in
  let before = Device.elapsed_us d in
  ignore (Flash.append (Device.scratch d) (Bytes.make 100 'x'));
  check Alcotest.bool "scratch time counted" true (Device.elapsed_us d > before)

let test_usage_between () =
  let trace = Trace.create () in
  let d = Device.create ~trace () in
  let s0 = Device.snapshot d in
  Device.cpu d 100;
  ignore (Flash.append (Device.flash d) (Bytes.make 10 'y'));
  let u = Device.usage_between d ~before:s0 ~after:(Device.snapshot d) in
  check Alcotest.int "cpu ops" 100 u.Device.used_cpu_ops;
  check Alcotest.int "programs" 1 u.Device.flash_page_programs;
  check (Alcotest.float 1e-6) "total = parts" u.Device.total_us
    (u.Device.flash_us +. u.Device.used_usb_us +. u.Device.cpu_us)

let test_high_speed_usb () =
  let cfg = Device.high_speed_usb Device.default_config in
  let trace = Trace.create () in
  let d = Device.create ~config:cfg ~trace () in
  Device.receive d Trace.Ack ~bytes:1500;
  check Alcotest.bool "faster than full speed" true (Device.usb_time_us d < 200.)

let test_default_has_zero_faults () =
  let trace = Trace.create () in
  let d = Device.create ~trace () in
  Device.receive d Trace.Ack ~bytes:500;
  ignore (Flash.append (Device.flash d) (Bytes.make 64 'x'));
  check Alcotest.bool "no fault counters move" true
    (Device.no_faults (Device.snapshot d).Device.faults)

let lossy cfg =
  { cfg with
    Device.usb_fault =
      Some { Device.default_usb_fault with
             Device.usb_seed = 99; corrupt_prob = 0.5; max_retries = 16 } }

let test_usb_retry_metered_and_traced () =
  let trace = Trace.create () in
  let d = Device.create ~config:(lossy Device.default_config) ~trace () in
  let sends = 20 in
  for i = 1 to sends do
    Device.receive d (Trace.Id_list { table = "T"; count = i }) ~bytes:100
  done;
  let f = (Device.snapshot d).Device.faults in
  check Alcotest.bool "some transfers corrupted" true (f.Device.usb_corruptions > 0);
  check Alcotest.int "every corruption retried (all succeeded)"
    f.Device.usb_corruptions f.Device.usb_retries;
  (* every attempt is charged and spy-visible *)
  check Alcotest.int "bytes counted per attempt"
    ((sends + f.Device.usb_retries) * 100) (Device.snapshot d).Device.usb_bytes_in;
  check Alcotest.int "retransmissions in the trace"
    (sends + f.Device.usb_retries) (List.length (Trace.events trace));
  (* backoff makes the lossy link slower than the clean one *)
  let clean = Device.create ~trace:(Trace.create ()) () in
  for i = 1 to sends do
    Device.receive clean (Trace.Id_list { table = "T"; count = i }) ~bytes:100
  done;
  check Alcotest.bool "backoff charged" true
    (Device.usb_time_us d > Device.usb_time_us clean)

let test_usb_retry_budget_bounded () =
  let trace = Trace.create () in
  let cfg =
    { Device.default_config with
      Device.usb_fault =
        Some { Device.default_usb_fault with
               Device.usb_seed = 1; corrupt_prob = 1.0; max_retries = 3 } }
  in
  let d = Device.create ~config:cfg ~trace () in
  (try
     Device.receive d Trace.Ack ~bytes:40;
     Alcotest.fail "expected Usb_error"
   with Device.Usb_error _ -> ());
  let f = (Device.snapshot d).Device.faults in
  check Alcotest.int "initial attempt + 3 retries all corrupted" 4
    f.Device.usb_corruptions;
  check Alcotest.int "retry budget spent" 3 f.Device.usb_retries;
  check Alcotest.int "all 4 attempts on the wire" (4 * 40)
    (Device.snapshot d).Device.usb_bytes_in

(* Seeded backoff jitter: off by default (and bit-identical to the
   seed path when off, because the rng draw happens only when
   enabled); on, it perturbs only the backoff time — same retries,
   same corruptions, same bytes — and stays deterministic per seed. *)
let test_usb_backoff_jitter () =
  let run jitter seed =
    let cfg =
      { Device.default_config with
        Device.usb_fault =
          Some { Device.default_usb_fault with
                 Device.usb_seed = seed; corrupt_prob = 0.5;
                 max_retries = 16; backoff_jitter = jitter } }
    in
    let d = Device.create ~config:cfg ~trace:(Trace.create ()) () in
    for i = 1 to 20 do
      Device.receive d (Trace.Id_list { table = "T"; count = i }) ~bytes:100
    done;
    d
  in
  let base = run 0.0 99 and base' = run 0.0 99 in
  check (Alcotest.float 0.) "no jitter is deterministic"
    (Device.usb_time_us base) (Device.usb_time_us base');
  let jit = run 0.5 99 and jit' = run 0.5 99 in
  check (Alcotest.float 0.) "jitter is deterministic per seed"
    (Device.usb_time_us jit) (Device.usb_time_us jit');
  (* the jitter draw rides the same seeded stream AFTER each corruption
     draw, so the fault schedule itself is untouched *)
  let fb = (Device.snapshot base).Device.faults in
  let fj = (Device.snapshot jit).Device.faults in
  check Alcotest.int "same corruptions" fb.Device.usb_corruptions
    fj.Device.usb_corruptions;
  check Alcotest.int "same retries" fb.Device.usb_retries fj.Device.usb_retries;
  check Alcotest.int "same bytes on the wire"
    (Device.snapshot base).Device.usb_bytes_in
    (Device.snapshot jit).Device.usb_bytes_in;
  check Alcotest.bool "jitter moved the backoff clock" true
    (Device.usb_time_us jit <> Device.usb_time_us base);
  check Alcotest.bool "different seeds decorrelate" true
    (Device.usb_time_us (run 0.5 7) <> Device.usb_time_us jit)

let test_note_recovery_counted () =
  let trace = Trace.create () in
  let d = Device.create ~trace () in
  Device.note_recovery d ~recovered:11 ~lost:2;
  let f = Device.fault_counters d in
  check Alcotest.int "recovered" 11 f.Device.records_recovered;
  check Alcotest.int "lost" 2 f.Device.records_lost

let suite = [
  Alcotest.test_case "ram budget enforced" `Quick test_ram_budget_enforced;
  Alcotest.test_case "ram peak and scopes" `Quick test_ram_peak_and_scope;
  Alcotest.test_case "ram resize" `Quick test_ram_resize;
  Alcotest.test_case "with_alloc frees on exception" `Quick test_ram_with_alloc_on_exception;
  Alcotest.test_case "trace spy visibility" `Quick test_trace_spy_visibility;
  Alcotest.test_case "device clock" `Quick test_device_clock;
  Alcotest.test_case "scratch region counted" `Quick test_device_scratch_counted;
  Alcotest.test_case "usage between snapshots" `Quick test_usage_between;
  Alcotest.test_case "high-speed usb variant" `Quick test_high_speed_usb;
  Alcotest.test_case "default config has zero fault counters" `Quick test_default_has_zero_faults;
  Alcotest.test_case "usb retries metered and traced" `Quick test_usb_retry_metered_and_traced;
  Alcotest.test_case "usb retry budget bounded" `Quick test_usb_retry_budget_bounded;
  Alcotest.test_case "usb backoff jitter seeded and bounded" `Quick test_usb_backoff_jitter;
  Alcotest.test_case "recovery outcome counted" `Quick test_note_recovery_counted;
]
