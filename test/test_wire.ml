(* Wire-codec tests: compact round-trips (with label interning across
   frames), compact/verbose decode equivalence, frame fuzzing (every
   strict prefix and every single-bit flip must be rejected cleanly),
   dictionary hygiene on rejected frames, coalesced batching, the
   usb_fault retransmission path over whole frames, trace byte
   accounting against the device counters, the compact byte cut on the
   demo workload, spy/privacy invariance across encodings, cost-model
   calibration in both formats, and a compact-fleet smoke test. *)

module Value = Ghost_kernel.Value
module Sorted_ids = Ghost_kernel.Sorted_ids
module Wire = Ghost_wire.Wire
module Device = Ghost_device.Device
module Trace = Ghost_device.Trace
module Spy = Ghost_public.Spy
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Planner = Ghostdb.Planner
module Plan = Ghostdb.Plan
module Exec = Ghostdb.Exec
module Cost = Ghostdb.Cost
module Privacy = Ghostdb.Privacy
module Fleet = Ghost_fleet.Fleet

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let compact_config = { Device.default_config with Device.wire_format = Wire.Compact }

let config_of = function
  | Wire.Verbose -> Device.default_config
  | Wire.Compact -> compact_config

(* ---- message equality ---- *)

let message_equal a b =
  match (a, b) with
  | Wire.Query x, Wire.Query y -> x = y
  | Wire.Id_list { table = ta; ids = ia }, Wire.Id_list { table = tb; ids = ib } ->
    ta = tb && ia = ib
  | ( Wire.Value_stream { table = ta; column = ca; ty = tya; pairs = pa },
      Wire.Value_stream { table = tb; column = cb; ty = tyb; pairs = pb } ) ->
    ta = tb && ca = cb
    && Value.ty_equal tya tyb
    && Array.length pa = Array.length pb
    && List.for_all2
         (fun (i, u) (j, v) -> i = j && Value.equal u v)
         (Array.to_list pa) (Array.to_list pb)
  | _ -> false

let message_summary = function
  | Wire.Query s -> Printf.sprintf "Query %S" s
  | Wire.Id_list { table; ids } ->
    Printf.sprintf "Id_list %s %s" table (QCheck.Print.(array int) ids)
  | Wire.Value_stream { table; column; ty; pairs } ->
    Printf.sprintf "Value_stream %s.%s:%s [%s]" table column (Value.ty_name ty)
      (String.concat "; "
         (Array.to_list
            (Array.map (fun (i, v) -> Printf.sprintf "%d=%s" i (Value.to_string v)) pairs)))

(* ---- generators ---- *)

let gen_ids =
  QCheck.Gen.(map (fun l -> Sorted_ids.of_unsorted l) (list_size (0 -- 30) (0 -- 400)))

let gen_ty =
  QCheck.Gen.(
    frequency
      [
        (2, return Value.T_int);
        (1, return Value.T_float);
        (1, return Value.T_date);
        (2, map (fun n -> Value.T_char n) (1 -- 12));
      ])

let gen_value ty =
  QCheck.Gen.(
    match ty with
    | Value.T_int -> map (fun i -> Value.Int i) (int_range (-1000) 1000)
    | Value.T_float -> map (fun i -> Value.Float (Float.of_int i /. 16.)) (int_range (-1000) 1000)
    | Value.T_date -> map (fun d -> Value.Date d) (int_range 0 20000)
    | Value.T_char n ->
      map (fun s -> Value.Str s)
        (string_size (int_bound (n - 1)) ~gen:(map (fun i -> Char.chr (97 + i)) (int_bound 25))))

let gen_value_or_null ~allow_null ty =
  if allow_null then
    QCheck.Gen.(frequency [ (1, return Value.Null); (4, gen_value ty) ])
  else gen_value ty

let gen_pairs ~allow_null ty =
  QCheck.Gen.(
    gen_ids >>= fun ids ->
    map
      (fun vs -> Array.of_list (List.map2 (fun id v -> (id, v)) (Array.to_list ids) vs))
      (flatten_l (List.map (fun _ -> gen_value_or_null ~allow_null ty) (Array.to_list ids))))

let gen_table = QCheck.Gen.oneofl [ "Doctor"; "Patient"; "Visit"; "Prescription"; "Med" ]
let gen_column = QCheck.Gen.oneofl [ "Date"; "Name"; "Quantity"; "Speciality" ]

let gen_message ~allow_null =
  QCheck.Gen.(
    frequency
      [
        (1, map (fun s -> Wire.Query s) (string_size (int_bound 60) ~gen:printable));
        (2, gen_table >>= fun table -> map (fun ids -> Wire.Id_list { table; ids }) gen_ids);
        ( 2,
          gen_table >>= fun table ->
          gen_column >>= fun column ->
          gen_ty >>= fun ty ->
          map
            (fun pairs -> Wire.Value_stream { table; column; ty; pairs })
            (gen_pairs ~allow_null ty) );
      ])

let arb_bursts =
  QCheck.make
    ~print:(fun bursts ->
      String.concat "\n---\n"
        (List.map (fun msgs -> String.concat "\n" (List.map message_summary msgs)) bursts))
    QCheck.Gen.(list_size (1 -- 5) (list_size (1 -- 4) (gen_message ~allow_null:true)))

let arb_message =
  QCheck.make ~print:message_summary (QCheck.Gen.map List.hd
    (QCheck.Gen.list_size (QCheck.Gen.return 1) (gen_message ~allow_null:false)))

(* ---- codec round trips ---- *)

let encode_burst e msgs =
  Wire.begin_frame e;
  List.iter (fun m -> ignore (Wire.add_message e m : int)) msgs;
  Wire.end_frame e

(* One encoder/decoder pair across a whole run of frames, so the label
   dictionaries advance in lockstep and back-references from later
   frames resolve against commitments from earlier ones. *)
let prop_compact_roundtrip =
  QCheck.Test.make ~name:"compact frames round-trip (interning across frames)" ~count:200
    arb_bursts (fun bursts ->
      let e = Wire.encoder () and d = Wire.decoder () in
      List.for_all
        (fun msgs ->
           let total = encode_burst e msgs in
           let f = Wire.frame e in
           Bytes.length f = total
           && (match Wire.decode_frame d f ~pos:0 ~len:total with
               | Ok got ->
                 List.length got = List.length msgs && List.for_all2 message_equal msgs got
               | Error _ -> false))
        bursts)

(* For every message, decoding its compact frame and decoding its
   verbose image must yield the same message — the two framings carry
   identical information. (Verbose zero-fills nulls, so null-free
   streams are the domain where verbose decode is exact.) *)
let prop_verbose_equivalence =
  QCheck.Test.make ~name:"compact decode = verbose decode" ~count:300 arb_message
    (fun m ->
       let e = Wire.encoder () and d = Wire.decoder () in
       let total = encode_burst e [ m ] in
       let cf = Wire.frame e in
       let compact =
         match Wire.decode_frame d cf ~pos:0 ~len:total with
         | Ok [ x ] -> x
         | Ok _ -> QCheck.Test.fail_report "compact frame decoded to wrong arity"
         | Error e -> QCheck.Test.fail_reportf "compact frame rejected: %s" e
       in
       let n = Wire.encode_verbose e m in
       let vb = Wire.frame e in
       let expected_verbose_size =
         match m with
         | Wire.Query text -> String.length text
         | Wire.Id_list { ids; _ } -> 4 * Array.length ids
         | Wire.Value_stream { ty; pairs; _ } -> (4 + Value.ty_width ty) * Array.length pairs
       in
       if n <> expected_verbose_size then
         QCheck.Test.fail_reportf "verbose size %d, seed charged %d" n expected_verbose_size;
       let verbose =
         match m with
         | Wire.Query _ -> Wire.Query (Wire.decode_verbose_query vb ~pos:0 ~len:n)
         | Wire.Id_list { table; _ } ->
           (match Wire.decode_verbose_ids vb ~pos:0 ~len:n with
            | Ok ids -> Wire.Id_list { table; ids }
            | Error e -> QCheck.Test.fail_reportf "verbose ids rejected: %s" e)
         | Wire.Value_stream { table; column; ty; _ } ->
           (match Wire.decode_verbose_values ~ty vb ~pos:0 ~len:n with
            | Ok pairs -> Wire.Value_stream { table; column; ty; pairs }
            | Error e -> QCheck.Test.fail_reportf "verbose values rejected: %s" e)
       in
       message_equal compact verbose && message_equal compact m)

(* ---- fuzzing: rejection must be clean, never a crash ---- *)

let fuzz_messages =
  [
    Wire.Query "SELECT Name FROM Doctor WHERE Speciality = 'Cardiology'";
    Wire.Id_list { table = "Visit"; ids = Array.init 40 (fun i -> (7 * i) + (i mod 3)) };
    Wire.Value_stream
      {
        table = "Prescription";
        column = "Quantity";
        ty = Value.T_int;
        pairs = Array.init 25 (fun i -> ((5 * i) + 1, if i mod 6 = 0 then Value.Null else Value.Int (i * i)));
      };
  ]

let test_fuzz_rejection () =
  let e = Wire.encoder () in
  let total = encode_burst e fuzz_messages in
  let f = Wire.frame e in
  let d = Wire.decoder () in
  let expect_error what k =
    match k () with
    | Ok _ -> Alcotest.failf "%s: accepted a damaged frame" what
    | Error _ -> ()
    | exception e -> Alcotest.failf "%s: decoder raised %s" what (Printexc.to_string e)
  in
  (* every strict prefix is a truncation *)
  for len = 0 to total - 1 do
    expect_error
      (Printf.sprintf "prefix %d" len)
      (fun () -> Wire.decode_frame d f ~pos:0 ~len)
  done;
  (* out-of-bounds length and position *)
  expect_error "len past buffer" (fun () -> Wire.decode_frame d f ~pos:0 ~len:(total + 1));
  expect_error "negative pos" (fun () -> Wire.decode_frame d f ~pos:(-1) ~len:total);
  (* every single-bit flip: CRC-32 detects them all, including flips in
     the CRC trailer itself *)
  for byte = 0 to total - 1 do
    for bit = 0 to 7 do
      let g = Bytes.copy f in
      Bytes.set_uint8 g byte (Bytes.get_uint8 g byte lxor (1 lsl bit));
      expect_error
        (Printf.sprintf "bit flip %d.%d" byte bit)
        (fun () -> Wire.decode_frame d g ~pos:0 ~len:total)
    done
  done;
  (* after all those rejections the decoder is pristine: the original
     frame (whose labels are inline definitions) still decodes *)
  match Wire.decode_frame d f ~pos:0 ~len:total with
  | Ok got ->
    check Alcotest.bool "pristine frame decodes after fuzzing" true
      (List.for_all2 message_equal fuzz_messages got)
  | Error e -> Alcotest.failf "pristine frame rejected after fuzzing: %s" e

(* A rejected frame must not commit its label definitions: the decoder
   dictionary advances only on accepted frames, mirroring the sender's
   advance only on acknowledged (eventually delivered) frames. *)
let test_rejected_frame_commits_nothing () =
  let e = Wire.encoder () in
  let ids = [| 2; 3; 5; 8 |] in
  let t1 = encode_burst e [ Wire.Id_list { table = "Visit"; ids } ] in
  let f1 = Wire.frame e in
  let t2 = encode_burst e [ Wire.Id_list { table = "Visit"; ids } ] in
  let f2 = Wire.frame e in
  check Alcotest.bool "second frame back-references the label" true (t2 < t1);
  let d = Wire.decoder () in
  let corrupt = Bytes.copy f1 in
  Bytes.set_uint8 corrupt (t1 / 2) (Bytes.get_uint8 corrupt (t1 / 2) lxor 0x10);
  (match Wire.decode_frame d corrupt ~pos:0 ~len:t1 with
   | Ok _ -> Alcotest.fail "corrupt frame accepted"
   | Error _ -> ());
  (* the back-reference in frame 2 must now dangle... *)
  (match Wire.decode_frame d f2 ~pos:0 ~len:t2 with
   | Ok _ -> Alcotest.fail "back-reference resolved against an uncommitted definition"
   | Error _ -> ());
  (* ...until the retransmitted frame 1 is accepted *)
  (match Wire.decode_frame d f1 ~pos:0 ~len:t1 with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "clean frame rejected: %s" e);
  match Wire.decode_frame d f2 ~pos:0 ~len:t2 with
  | Ok [ Wire.Id_list { table; ids = got } ] ->
    check Alcotest.string "table" "Visit" table;
    check Alcotest.bool "ids" true (got = ids)
  | Ok _ | Error _ -> Alcotest.fail "frame 2 did not decode after commit"

(* ---- device integration ---- *)

let trace_sums trace =
  List.fold_left
    (fun (inb, outb) (e : Trace.event) ->
       match e.Trace.link with
       | Trace.Pc_to_device -> (inb + e.Trace.bytes, outb)
       | Trace.Device_to_pc | Trace.Device_to_display -> (inb, outb + e.Trace.bytes)
       | Trace.Pc_to_server | Trace.Server_to_pc -> (inb, outb))
    (0, 0) (Trace.events trace)

(* Coalescing: a burst under [with_usb_batch] pays one frame envelope
   and one per-transfer latency; the per-event byte attribution still
   sums to the device counters. *)
let test_batch_coalesces () =
  let mk () =
    let trace = Trace.create () in
    (Device.create ~config:compact_config ~trace (), trace)
  in
  let ids = Array.init 20 (fun i -> 3 * i) in
  let send3 d =
    Device.receive_id_list d ~table:"Visit" ids;
    Device.receive_id_list d ~table:"Visit" ids;
    Device.receive_id_list d ~table:"Visit" ids
  in
  let batched, bt = mk () in
  Device.with_usb_batch batched (fun () -> send3 batched);
  let unbatched, ut = mk () in
  send3 unbatched;
  let sb = Device.snapshot batched and su = Device.snapshot unbatched in
  (* same messages, two envelopes saved *)
  check Alcotest.int "coalescing saves two envelopes"
    (su.Device.usb_bytes_in - (2 * Wire.envelope_bytes))
    sb.Device.usb_bytes_in;
  check Alcotest.bool "one per-transfer latency instead of three" true
    (sb.Device.usb_us < su.Device.usb_us);
  (* one trace event per message either way, and byte attribution sums
     to the device counters *)
  check Alcotest.int "batched events" 3 (List.length (Trace.events bt));
  check Alcotest.int "unbatched events" 3 (List.length (Trace.events ut));
  check Alcotest.int "batched trace sum" sb.Device.usb_bytes_in (fst (trace_sums bt));
  check Alcotest.int "unbatched trace sum" su.Device.usb_bytes_in (fst (trace_sums ut))

let tiny_rows = lazy (Medical.generate Medical.tiny)

let make_db fmt =
  Ghost_db.of_schema ~device_config:(config_of fmt) (Medical.schema ()) (Lazy.force tiny_rows)

let reference_rows db sql =
  let schema = Ghost_db.schema db in
  let refdb = Reference.db_of_rows schema (Lazy.force tiny_rows) in
  Reference.run schema refdb (Ghost_db.bind db sql)

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

(* Satellite: per-event trace bytes are the actual encoded sizes, so
   their per-link sums must equal the device byte counters — in both
   formats, across loading and every canonical plan. *)
let test_trace_totals_match_counters () =
  List.iter
    (fun fmt ->
       let db = make_db fmt in
       let cat = Ghost_db.catalog db in
       let q = Ghost_db.bind db (Queries.demo_with ~date_selectivity:0.3 ()) in
       List.iter
         (fun plan -> ignore (Ghost_db.run_plan db plan : Exec.result))
         [ Planner.all_pre cat q; Planner.all_post cat q; Planner.cross cat q ];
       let s = Device.snapshot (Ghost_db.device db) in
       let inb, outb = trace_sums (Ghost_db.trace db) in
       let name tag = Printf.sprintf "%s (%s)" tag (Wire.format_name fmt) in
       check Alcotest.int (name "trace in = usb_bytes_in") s.Device.usb_bytes_in inb;
       check Alcotest.int (name "trace out = usb_bytes_out") s.Device.usb_bytes_out outb)
    [ Wire.Verbose; Wire.Compact ]

let run_measured db plan =
  let before = Device.snapshot (Ghost_db.device db) in
  let r = Ghost_db.run_plan db plan in
  let after = Device.snapshot (Ghost_db.device db) in
  let bytes =
    after.Device.usb_bytes_in - before.Device.usb_bytes_in
    + (after.Device.usb_bytes_out - before.Device.usb_bytes_out)
  in
  (r, bytes)

(* Bytes of the data-bearing messages (id lists and value streams)
   entering the device. The query text rides the same link but is the
   paper's irreducible leak — identical characters in both formats —
   so at unit-test scale it dominates totals; the 2x claim on totals
   is E20's, measured at bench scale where data dwarfs the query. *)
let data_bytes trace =
  List.fold_left
    (fun acc (e : Trace.event) ->
       match (e.Trace.link, e.Trace.payload) with
       | Trace.Pc_to_device, (Trace.Id_list _ | Trace.Value_stream _) ->
         acc + e.Trace.bytes
       | _ -> acc)
    0 (Trace.events trace)

(* The tentpole claim at unit scale: on the demo workload's Pre-filter
   plan at 12 Mbit/s, Compact moves at least 2x fewer data bytes (and
   strictly fewer bytes overall) and finishes faster — for the same
   rows, the same spy-visible findings and a passing privacy audit in
   both encodings. *)
let test_compact_byte_cut_and_invariance () =
  let vdb = make_db Wire.Verbose and cdb = make_db Wire.Compact in
  let sql = Queries.demo_with ~date_selectivity:0.3 () in
  let expected = reference_rows vdb sql in
  Ghost_db.clear_trace vdb;
  Ghost_db.clear_trace cdb;
  let vr, vbytes = run_measured vdb (Planner.all_pre (Ghost_db.catalog vdb) (Ghost_db.bind vdb sql)) in
  let cr, cbytes = run_measured cdb (Planner.all_pre (Ghost_db.catalog cdb) (Ghost_db.bind cdb sql)) in
  check Alcotest.bool "verbose rows correct" true (rows_equal vr.Exec.rows expected);
  check Alcotest.bool "compact rows correct" true (rows_equal cr.Exec.rows expected);
  let vdata = data_bytes (Ghost_db.trace vdb) and cdata = data_bytes (Ghost_db.trace cdb) in
  if cdata * 2 > vdata then
    Alcotest.failf "compact moved %d data bytes, verbose %d: less than the promised 2x cut"
      cdata vdata;
  check Alcotest.bool "fewer bytes overall" true (cbytes < vbytes);
  check Alcotest.bool "compact is faster at 12 Mbit/s" true
    (cr.Exec.elapsed_us < vr.Exec.elapsed_us);
  (* the spy learns exactly the same things from either encoding *)
  let vspy = Spy.analyze (Ghost_db.trace vdb) and cspy = Spy.analyze (Ghost_db.trace cdb) in
  check Alcotest.(list string) "same queries observed" vspy.Spy.queries_observed
    cspy.Spy.queries_observed;
  check Alcotest.bool "same id lists observed" true
    (vspy.Spy.id_lists_observed = cspy.Spy.id_lists_observed);
  check Alcotest.bool "same value streams observed" true
    (vspy.Spy.value_streams_observed = cspy.Spy.value_streams_observed);
  check Alcotest.int "no outbound payload either way" 0
    (vspy.Spy.device_outbound_payload_bytes + cspy.Spy.device_outbound_payload_bytes);
  let vaudit = Privacy.audit (Ghost_db.trace vdb) and caudit = Privacy.audit (Ghost_db.trace cdb) in
  check Alcotest.bool "verbose audit passes" true vaudit.Privacy.ok;
  check Alcotest.bool "compact audit passes" true caudit.Privacy.ok;
  check Alcotest.bool "same query leak" true
    (vaudit.Privacy.queries_leaked = caudit.Privacy.queries_leaked)

(* Satellite: the cost model's per-encoding byte predictions stay
   within the calibration drift threshold (relative error <= 1.0, the
   metrics layer's default) of the measured transfer in both formats. *)
let test_cost_calibrated_both_formats () =
  List.iter
    (fun fmt ->
       let db = make_db fmt in
       let cat = Ghost_db.catalog db in
       let q = Ghost_db.bind db (Queries.demo_with ~date_selectivity:0.3 ()) in
       List.iter
         (fun plan ->
            let est = Cost.estimate cat plan in
            let _, measured = run_measured db plan in
            let rel =
              Float.abs (Float.of_int (est.Cost.est_usb_bytes - measured))
              /. Float.max (Float.of_int measured) 1.0
            in
            if rel > 1.0 then
              Alcotest.failf "%s/%s: est %d bytes vs measured %d (rel %.2f > 1.0)"
                (Wire.format_name fmt) plan.Plan.label est.Cost.est_usb_bytes measured rel)
         [ Planner.all_pre cat q; Planner.all_post cat q; Planner.cross cat q ])
    [ Wire.Verbose; Wire.Compact ]

(* usb_fault now corrupts and retransmits whole compact frames: under
   heavy injected corruption the decoder-facing bytes are eventually
   delivered intact and the answer is unchanged. *)
let test_compact_survives_usb_corruption () =
  let faulty =
    {
      compact_config with
      Device.usb_fault =
        Some
          {
            Device.default_usb_fault with
            Device.usb_seed = 7;
            corrupt_prob = 0.25;
            max_retries = 12;
          };
    }
  in
  let db =
    Ghost_db.of_schema ~device_config:faulty (Medical.schema ()) (Lazy.force tiny_rows)
  in
  let sql = Queries.demo_with ~date_selectivity:0.3 () in
  let expected = reference_rows db sql in
  let r = Ghost_db.query db sql in
  check Alcotest.bool "rows correct through frame retransmissions" true
    (rows_equal r.Exec.rows expected);
  let f = Device.fault_counters (Ghost_db.device db) in
  check Alcotest.bool "corruption actually struck" true (f.Device.usb_corruptions > 0);
  check Alcotest.bool "frames were retransmitted" true (f.Device.usb_retries > 0);
  (* retransmitted attempts stay visible: trace sums still match *)
  let s = Device.snapshot (Ghost_db.device db) in
  let inb, outb = trace_sums (Ghost_db.trace db) in
  check Alcotest.int "trace in under faults" s.Device.usb_bytes_in inb;
  check Alcotest.int "trace out under faults" s.Device.usb_bytes_out outb

(* The fleet propagates the device config, so a compact fleet needs no
   new plumbing: same rows, passing fleet-wide audit. *)
let test_fleet_compact () =
  let fleet =
    Fleet.create ~device_config:compact_config
      ~topology:{ Fleet.shards = 2; replicas = 1; partitioning = Fleet.Range }
      (Medical.schema ()) (Lazy.force tiny_rows)
  in
  let sql = Queries.demo_with ~date_selectivity:0.3 () in
  let schema = Medical.schema () in
  let refdb = Reference.db_of_rows schema (Lazy.force tiny_rows) in
  let expected = Reference.run schema refdb (Ghost_sql.Bind.bind schema sql) in
  let r = Fleet.query fleet sql in
  check Alcotest.bool "fleet complete" true r.Fleet.complete;
  check Alcotest.bool "fleet rows correct" true (rows_equal r.Fleet.rows expected);
  check Alcotest.bool "fleet audit passes" true (Fleet.audit fleet).Privacy.ok

let suite =
  [
    qtest prop_compact_roundtrip;
    qtest prop_verbose_equivalence;
    Alcotest.test_case "fuzz: truncation and bit flips rejected" `Quick test_fuzz_rejection;
    Alcotest.test_case "rejected frames commit no labels" `Quick
      test_rejected_frame_commits_nothing;
    Alcotest.test_case "batching coalesces frames" `Quick test_batch_coalesces;
    Alcotest.test_case "trace totals = device counters" `Quick
      test_trace_totals_match_counters;
    Alcotest.test_case "compact cuts bytes 2x, same spy view" `Quick
      test_compact_byte_cut_and_invariance;
    Alcotest.test_case "cost model calibrated in both formats" `Quick
      test_cost_calibrated_both_formats;
    Alcotest.test_case "compact survives usb corruption" `Quick
      test_compact_survives_usb_corruption;
    Alcotest.test_case "fleet runs compact" `Quick test_fleet_compact;
  ]
