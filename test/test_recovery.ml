(* End-to-end crash recovery: a power cut tears a log program while the
   database is running with durable (checksummed) logs; recovery must
   restore exactly the acknowledged state, and the public store must
   agree with the device afterwards. *)

module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng
module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec

let check = Alcotest.check

let durable_config = { Device.default_config with Device.durable_logs = true }

let make () =
  let rows = Medical.generate Medical.tiny in
  let db = Ghost_db.of_schema ~device_config:durable_config (Medical.schema ()) rows in
  (db, rows)

let scale = Medical.tiny

let new_prescriptions ?(seed = 5) db n =
  let rng = Rng.create seed in
  let next = scale.Medical.prescriptions + Ghost_db.delta_count db + 1 in
  List.init n (fun i ->
    [|
      Value.Int (next + i);
      Value.Int (Rng.int_in rng 1 10);
      Value.Int (Rng.int_in rng 1 4);
      Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
      Value.Int (1 + Rng.int rng scale.Medical.medicines);
      Value.Int (1 + Rng.int rng scale.Medical.visits);
    |])

let count_rows db =
  match (Ghost_db.query db "SELECT COUNT(*) FROM Prescription Pre").Exec.rows with
  | [ [| Value.Int n |] ] -> n
  | _ -> Alcotest.fail "count shape"

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

let test_power_cut_during_insert () =
  let db, _ = make () in
  let flash = Device.flash (Ghost_db.device db) in
  Ghost_db.insert db (new_prescriptions db 10);
  (* the 3rd record of the next batch tears mid-program *)
  Flash.arm_power_cut flash ~after_programs:3;
  let batch = new_prescriptions ~seed:6 db 8 in
  (try
     Ghost_db.insert db batch;
     Alcotest.fail "expected Power_cut"
   with Flash.Power_cut _ -> ());
  check Alcotest.bool "needs recovery" true (Ghost_db.needs_recovery db);
  (* mutations refuse until recovered *)
  (try
     Ghost_db.insert db (new_prescriptions ~seed:7 db 1);
     Alcotest.fail "insert must refuse"
   with Invalid_argument _ -> ());
  (try
     ignore (Ghost_db.reorganize db);
     Alcotest.fail "reorganize must refuse"
   with Failure _ -> ());
  let r = Ghost_db.recover db in
  (* 10 acknowledged + the 2 durable records of the torn batch *)
  check Alcotest.int "delta recovered" 12 r.Ghost_db.delta_recovered;
  check Alcotest.int "torn record lost" 1 r.Ghost_db.delta_lost;
  check Alcotest.bool "torn page reported" true (r.Ghost_db.delta_torn_pages >= 1);
  check Alcotest.int "tombstone log untouched" 0 r.Ghost_db.tombstone_torn_pages;
  check Alcotest.bool "recovered" false (Ghost_db.needs_recovery db);
  check Alcotest.int "delta count" 12 (Ghost_db.delta_count db);
  (* the device's robustness counters saw all of it *)
  let f = Device.fault_counters (Ghost_db.device db) in
  check Alcotest.int "power cut counted" 1 f.Device.flash_power_cuts;
  check Alcotest.int "recovered counted" 12 f.Device.records_recovered;
  check Alcotest.int "lost counted" 1 f.Device.records_lost;
  (* queries see exactly the acknowledged prefix, visible + hidden *)
  check Alcotest.int "row count" (scale.Medical.prescriptions + 12) (count_rows db);
  (* the log accepts appends again, continuing the key sequence *)
  Ghost_db.insert db (new_prescriptions ~seed:8 db 3);
  check Alcotest.int "inserts resume" 15 (Ghost_db.delta_count db);
  (* reorganization folds the recovered state in cleanly *)
  let db2 = Ghost_db.reorganize db in
  check Alcotest.int "reorganized count" (scale.Medical.prescriptions + 15) (count_rows db2);
  check Alcotest.int "delta folded" 0 (Ghost_db.delta_count db2)

let test_power_cut_insert_query_matches_reference () =
  let db, rows = make () in
  let flash = Device.flash (Ghost_db.device db) in
  let batch = new_prescriptions ~seed:11 db 6 in
  Flash.arm_power_cut flash ~after_programs:4;
  (try Ghost_db.insert db batch; Alcotest.fail "expected Power_cut"
   with Flash.Power_cut _ -> ());
  ignore (Ghost_db.recover db);
  let acked = List.filteri (fun i _ -> i < 3) batch in
  let full_rows =
    List.map
      (fun (name, rs) ->
         if name = "Prescription" then (name, rs @ acked) else (name, rs))
      rows
  in
  let refdb = Reference.db_of_rows (Ghost_db.schema db) full_rows in
  let q = Ghost_db.bind db Queries.demo in
  let expected = Reference.run (Ghost_db.schema db) refdb q in
  let r = Ghost_db.query db Queries.demo in
  check Alcotest.bool "query matches acknowledged prefix" true
    (rows_equal r.Exec.rows expected)

let test_power_cut_during_delete () =
  let db, _ = make () in
  let flash = Device.flash (Ghost_db.device db) in
  Ghost_db.delete db [ 1; 2 ];
  check Alcotest.int "two tombstones" 2 (Ghost_db.tombstone_count db);
  (* the 2nd id of the next batch tears *)
  Flash.arm_power_cut flash ~after_programs:2;
  (try
     Ghost_db.delete db [ 3; 4; 5 ];
     Alcotest.fail "expected Power_cut"
   with Flash.Power_cut _ -> ());
  check Alcotest.bool "needs recovery" true (Ghost_db.needs_recovery db);
  let r = Ghost_db.recover db in
  check Alcotest.int "durable tombstones" 3 r.Ghost_db.tombstones_recovered;
  check Alcotest.int "torn tombstone lost" 1 r.Ghost_db.tombstones_lost;
  check Alcotest.int "tombstone count" 3 (Ghost_db.tombstone_count db);
  (* rows 4 and 5 survived the torn delete: public and device agree *)
  check Alcotest.int "row count" (scale.Medical.prescriptions - 3) (count_rows db);
  (* the failed ids can be deleted again *)
  Ghost_db.delete db [ 4; 5 ];
  check Alcotest.int "delete resumes" 5 (Ghost_db.tombstone_count db);
  check Alcotest.int "row count after resume" (scale.Medical.prescriptions - 5)
    (count_rows db)

let test_plain_logs_have_no_recovery () =
  let rows = Medical.generate Medical.tiny in
  let db = Ghost_db.of_schema (Medical.schema ()) rows in
  Ghost_db.insert db (new_prescriptions db 2);
  check Alcotest.bool "plain logs never need recovery" false
    (Ghost_db.needs_recovery db)

let suite = [
  Alcotest.test_case "power cut during insert" `Quick test_power_cut_during_insert;
  Alcotest.test_case "recovered db matches reference" `Quick
    test_power_cut_insert_query_matches_reference;
  Alcotest.test_case "power cut during delete" `Quick test_power_cut_during_delete;
  Alcotest.test_case "plain logs have no recovery" `Quick test_plain_logs_have_no_recovery;
]
