(* The metrics/profiling layer: histogram quantiles against a
   brute-force oracle, JSON round-tripping, registry determinism under
   the scheduler (same workload => same metrics whatever the policy and
   quantum), bit-identity of instrumented vs uninstrumented runs, and
   the bench writers' refuse-to-overwrite contract. *)

module Rng = Ghost_kernel.Rng
module Device = Ghost_device.Device
module Trace = Ghost_device.Trace
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Ghost_db = Ghostdb.Ghost_db
module Scheduler = Ghost_sched.Scheduler
module Workload_driver = Ghost_sched.Workload_driver
module Metrics = Ghost_metrics.Metrics
module Json = Ghost_metrics.Json
module Report = Ghost_bench.Report

let tiny_db ?device_config () =
  Ghost_db.of_schema ?device_config (Medical.schema ())
    (Medical.generate Medical.tiny)

(* ---- histograms ---- *)

(* Log-scale buckets promise a quantile within a factor sqrt(gamma) of
   the value the brute-force nearest-rank oracle returns (clamping to
   the observed min/max can only tighten that). *)
let test_histogram_oracle () =
  let rng = Rng.create 11 in
  let m = Metrics.create () in
  let n = 800 in
  let values =
    (* heavy right tail, like latencies: cube of a uniform draw *)
    List.init n (fun _ ->
      let u = Rng.float rng 1.0 in
      1.0 +. (u *. u *. u *. 9_999.0))
  in
  List.iter (fun v -> Metrics.observe m "h" v) values;
  let sorted = Array.of_list (List.sort compare values) in
  let oracle q =
    let r = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 1 (min n r) - 1)
  in
  let slack = sqrt Metrics.gamma +. 1e-9 in
  List.iter
    (fun q ->
       let est = Option.get (Metrics.quantile m "h" q) in
       let exact = oracle q in
       let ratio = est /. exact in
       if ratio > slack || ratio < 1. /. slack then
         Alcotest.failf "q=%.2f: estimate %.2f vs oracle %.2f (ratio %.3f)" q
           est exact ratio)
    [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ];
  let stats = Option.get (Metrics.histogram m "h") in
  Alcotest.(check int) "count" n stats.Metrics.count;
  Alcotest.(check (float 1e-9)) "min exact" sorted.(0) stats.Metrics.min;
  Alcotest.(check (float 1e-9)) "max exact" sorted.(n - 1) stats.Metrics.max;
  Alcotest.(check (float 1e-6))
    "sum" (List.fold_left ( +. ) 0. values) stats.Metrics.sum;
  (* p100 must clamp to the exact maximum, p0 near the minimum *)
  Alcotest.(check (float 1e-9)) "p1.0 = max" sorted.(n - 1)
    (Option.get (Metrics.quantile m "h" 1.0))

let test_histogram_edges () =
  let m = Metrics.create () in
  Alcotest.(check (option reject)) "unknown histogram" None
    (Metrics.quantile m "nope" 0.5);
  Metrics.observe m "h" 0.0;
  Metrics.observe m "h" 0.5;
  (* values below 1.0 share the first bucket: the estimate is clamped
     into the observed range, so its error is bounded by that bucket *)
  let p0 = Option.get (Metrics.quantile m "h" 0.0) in
  Alcotest.(check bool) "sub-1.0 estimate stays in observed range" true
    (p0 >= 0.0 && p0 <= 0.5);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Metrics.observe: negative or NaN value")
    (fun () -> Metrics.observe m "h" (-1.0));
  Alcotest.check_raises "q outside [0,1]"
    (Invalid_argument "Metrics.quantile: q outside [0, 1]")
    (fun () -> ignore (Metrics.quantile m "h" 1.5))

(* ---- exporters round-trip ---- *)

let test_json_roundtrip () =
  let m = Metrics.create () in
  Metrics.incr m ~by:3 "a.count";
  Metrics.add_gauge m "a.us" 12.5;
  Metrics.observe m "lat.us" 42.0;
  Metrics.calibrate m ~cls:"scan" ~predicted_us:10. ~measured_us:12.;
  Metrics.span m ~name:"op(x)" ~cat:"exec" ~ts:0. ~dur:5. ();
  (match Json.parse (Metrics.to_json m) with
   | Error e -> Alcotest.fail ("metrics.json does not reparse: " ^ e)
   | Ok j ->
     let counters = Option.get (Json.member "counters" j) in
     Alcotest.(check (option (float 0.))) "counter survives" (Some 3.)
       (Option.bind (Json.member "a.count" counters) Json.to_num));
  match Json.parse (Metrics.to_chrome_trace m) with
  | Error e -> Alcotest.fail ("chrome trace does not reparse: " ^ e)
  | Ok j ->
    (match Json.member "traceEvents" j with
     | Some (Json.Arr events) ->
       Alcotest.(check bool) "has events" true (List.length events >= 1)
     | _ -> Alcotest.fail "traceEvents missing")

(* ---- determinism under the scheduler ---- *)

(* Flattens a parsed metrics.json into (path, value) pairs, skipping
   everything scheduler-shaped: slice counts, slice/latency histograms
   and the span tally are all legitimate functions of the interleaving.
   What remains — operator counts and durations (virtual per-session
   clock), trace/link counters, device totals, calibration sums — must
   not depend on policy or quantum. *)
let flatten_without_sched json =
  let skip path =
    let has_sub sub =
      let ls = String.length sub and lp = String.length path in
      let rec probe i = i + ls <= lp && (String.sub path i ls = sub || probe (i + 1)) in
      probe 0
    in
    has_sub "sched." || has_sub "spans_recorded"
  in
  let rec go path v acc =
    match v with
    | Json.Num f -> if skip path then acc else (path, f) :: acc
    | Json.Obj fields ->
      List.fold_left (fun acc (k, v) -> go (path ^ "." ^ k) v acc) acc fields
    | Json.Arr l ->
      snd
        (List.fold_left
           (fun (i, acc) v -> (i + 1, go (Printf.sprintf "%s[%d]" path i) v acc))
           (0, acc) l)
    | Json.Str _ | Json.Bool _ | Json.Null -> acc
  in
  List.sort compare (go "" json [])

let run_workload_metrics ~policy ~quantum_us =
  (* Shared-cache hit patterns depend on the interleaving, so the
     determinism claim is stated for the cache-off configuration. *)
  let config = { Device.default_config with Device.page_cache_frames = 0 } in
  let db = tiny_db ~device_config:config () in
  let m = Metrics.create () in
  Ghost_db.set_metrics db (Some m);
  let spec =
    { Workload_driver.default_spec with
      Workload_driver.clients = 3; queries_per_client = 4; theta = 1.1;
      seed = 7 }
  in
  let summary = Workload_driver.run ~policy ~quantum_us db spec in
  Alcotest.(check int) "all queries completed" 12
    summary.Workload_driver.completed;
  Ghost_db.flush_metrics db;
  match Json.parse (Metrics.to_json m) with
  | Ok j -> flatten_without_sched j
  | Error e -> Alcotest.fail ("metrics.json does not reparse: " ^ e)

let test_scheduler_determinism () =
  let reference = run_workload_metrics ~policy:Scheduler.Fifo ~quantum_us:infinity in
  Alcotest.(check bool) "reference run records metrics" true
    (List.length reference > 20);
  List.iter
    (fun (policy, quantum_us, label) ->
       let got = run_workload_metrics ~policy ~quantum_us in
       Alcotest.(check int) (label ^ ": same metric set")
         (List.length reference) (List.length got);
       List.iter2
         (fun (k1, v1) (k2, v2) ->
            Alcotest.(check string) (label ^ ": metric name") k1 k2;
            let tol = 1e-6 *. Float.max 1.0 (Float.abs v1) in
            if Float.abs (v1 -. v2) > tol then
              Alcotest.failf "%s: %s: %.17g <> %.17g" label k1 v1 v2)
         reference got)
    [
      (Scheduler.Round_robin, 500., "round-robin q=500");
      (Scheduler.Round_robin, 125., "round-robin q=125");
      (Scheduler.Cost_based, 500., "cost-based q=500");
    ]

(* ---- the disabled handle is free ---- *)

let test_disabled_bit_identity () =
  let db_plain = tiny_db () in
  let db_metered = tiny_db () in
  Ghost_db.set_metrics db_metered (Some (Metrics.create ()));
  List.iter
    (fun (name, sql) ->
       let a = Ghost_db.query db_plain sql in
       let b = Ghost_db.query db_metered sql in
       Alcotest.(check bool) (name ^ ": rows") true
         (a.Ghostdb.Exec.rows = b.Ghostdb.Exec.rows);
       Alcotest.(check (float 0.)) (name ^ ": elapsed")
         a.Ghostdb.Exec.elapsed_us b.Ghostdb.Exec.elapsed_us;
       Alcotest.(check bool) (name ^ ": op stats") true
         (a.Ghostdb.Exec.ops = b.Ghostdb.Exec.ops))
    Queries.all;
  Alcotest.(check (float 0.)) "device clocks agree"
    (Device.elapsed_us (Ghost_db.device db_plain))
    (Device.elapsed_us (Ghost_db.device db_metered));
  Alcotest.(check bool) "traces identical" true
    (Trace.events (Ghost_db.trace db_plain)
     = Trace.events (Ghost_db.trace db_metered));
  (* and the registry actually saw the workload *)
  let m = Option.get (Ghost_db.metrics db_metered) in
  Alcotest.(check bool) "operators were recorded" true
    (Metrics.span_count m > 0)

(* ---- bench writers refuse to overwrite ---- *)

let test_write_refuses_overwrite () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "ghostdb_test_bench_out"
  in
  (* a previous crashed run may have left the file behind *)
  let stale = Filename.concat dir "BENCH_T1.json" in
  if Sys.file_exists stale then Sys.remove stale;
  let report = Report.make ~id:"T1" ~title:"writer test" ~header:[ "col" ] [ [ "1" ] ] in
  let path = Report.write_file ~dir report in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
  @@ fun () ->
  Alcotest.(check bool) "first write lands" true (Sys.file_exists path);
  let first = In_channel.with_open_bin path In_channel.input_all in
  (match Report.write_file ~dir report with
   | _ -> Alcotest.fail "second write must refuse without force"
   | exception Report.Would_overwrite p ->
     Alcotest.(check string) "refusal names the file" path p);
  Alcotest.(check string) "refusal left the file untouched" first
    (In_channel.with_open_bin path In_channel.input_all);
  let forced =
    Report.write_file ~dir ~force:true
      (Report.make ~id:"T1" ~title:"forced" ~header:[ "col" ] [ [ "2" ] ])
  in
  Alcotest.(check string) "force writes the same path" path forced;
  Alcotest.(check bool) "force replaced the contents" true
    (first <> In_channel.with_open_bin path In_channel.input_all)

let suite =
  [
    Alcotest.test_case "histogram quantiles vs brute-force oracle" `Quick
      test_histogram_oracle;
    Alcotest.test_case "histogram edge cases" `Quick test_histogram_edges;
    Alcotest.test_case "exports reparse (metrics.json, Chrome trace)" `Quick
      test_json_roundtrip;
    Alcotest.test_case "same workload, same metrics under any policy" `Slow
      test_scheduler_determinism;
    Alcotest.test_case "no registry attached: outputs bit-identical" `Quick
      test_disabled_bit_identity;
    Alcotest.test_case "bench writers refuse to overwrite without force" `Quick
      test_write_refuses_overwrite;
  ]
