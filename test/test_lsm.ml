(* Leveled delta-log runs: spill/merge mechanics, merge-on-read
   equivalence with the flat log, crash safety of every compaction
   program, scheduler coexistence, and a randomized interleaving
   property against the reference evaluator. *)

module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng
module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Delta_log = Ghostdb.Delta_log
module Compaction = Ghostdb.Compaction
module Catalog = Ghostdb.Catalog
module Exec = Ghostdb.Exec
module Scrub = Ghost_scrub.Scrub
module Scheduler = Ghost_sched.Scheduler

let check = Alcotest.check

(* Small pages so a handful of inserts fills L0; aggressive thresholds
   so spills and merges both trigger at test scale. *)
let small_geometry = { Flash.page_size = 256; pages_per_block = 8 }
let policy = { Delta_log.l0_spill_pages = 2; run_fanout = 2 }

let runs_config =
  {
    Device.default_config with
    Device.durable_logs = true;
    flash_geometry = small_geometry;
    log_runs = Some { Device.l0_spill_pages = 2; run_fanout = 2 };
  }

let flat_config =
  {
    Device.default_config with
    Device.durable_logs = true;
    flash_geometry = small_geometry;
  }

(* ---- unit level ---- *)

let flash () = Flash.create ~geometry:small_geometry ()

let make_log ?(runs = policy) f =
  Delta_log.create ~durability:Delta_log.Checksummed ~runs f ~table:"R"
    ~levels:[ "R"; "A"; "B" ]
    ~hidden_cols:[ ("q", Value.T_int); ("s", Value.T_char 8) ]

let append_ids log lo hi =
  for i = lo to hi do
    Delta_log.append log
      ~ids:[| i; i mod 7; i mod 5 |]
      ~hidden:[| Value.Int (i * 3); Value.Str (Printf.sprintf "s%d" i) |]
  done

let drain ?drop log =
  let installs = ref [] in
  let guard = ref 0 in
  while Delta_log.compaction_pending log do
    incr guard;
    if !guard > 10_000 then Alcotest.fail "compaction never drains";
    match Delta_log.compact_step ?drop log ~max_pages:1 with
    | Delta_log.Idle -> Alcotest.fail "pending but idle"
    | Delta_log.Worked -> ()
    | Delta_log.Installed i -> installs := i :: !installs
  done;
  List.rev !installs

let scanned_roots ?lo ?hi log =
  let out = ref [] in
  Delta_log.scan_range ?lo ?hi log (fun r -> out := r.Delta_log.ids.(0) :: !out);
  List.rev !out

let test_spill_and_merge () =
  let log = make_log (flash ()) in
  check Alcotest.bool "runs enabled" true (Delta_log.runs_enabled log);
  append_ids log 1 40;
  check Alcotest.bool "spill pending" true (Delta_log.compaction_pending log);
  let installs = drain log in
  check Alcotest.bool "something installed" true (installs <> []);
  check Alcotest.bool "first install is a spill" true
    (List.hd installs).Delta_log.inst_spill;
  check Alcotest.bool "has runs" true (Delta_log.has_runs log);
  check Alcotest.int "nothing dropped" 0 (Delta_log.dropped_records log);
  check Alcotest.int "count monotonic" 40 (Delta_log.count log);
  check Alcotest.int "physical intact" 40 (Delta_log.physical_records log);
  check Alcotest.(list int) "scan in id order" (List.init 40 (fun i -> i + 1))
    (scanned_roots log);
  (* more appends force further spills, and fanout 2 forces merges *)
  append_ids log 41 120;
  let installs2 = drain log in
  check Alcotest.bool "a merge happened" true
    (List.exists (fun i -> not i.Delta_log.inst_spill) installs2);
  check Alcotest.bool "merge output is deeper" true
    (List.exists (fun i -> i.Delta_log.inst_level >= 2) installs2);
  check Alcotest.(list int) "scan order after merges"
    (List.init 120 (fun i -> i + 1))
    (scanned_roots log);
  check Alcotest.bool "dead bytes from superseded inputs" true
    (Delta_log.dead_bytes log > 0)

let test_fenced_scan () =
  let log = make_log (flash ()) in
  append_ids log 1 120;
  ignore (drain log);
  (* a narrow fence emits a superset of the range, but far fewer pages
     than the whole log *)
  let hits = scanned_roots ~lo:50 ~hi:55 log in
  List.iter
    (fun id ->
       if not (List.mem id hits) then Alcotest.failf "id %d missing from fence" id)
    [ 50; 51; 52; 53; 54; 55 ];
  check Alcotest.bool "fence skips pages" true (List.length hits < 120);
  check Alcotest.bool "superset only from overlapping pages" true
    (List.for_all (fun id -> id >= 1 && id <= 120) hits);
  (* unbounded range is the full scan *)
  check Alcotest.int "unbounded = full" 120 (List.length (scanned_roots log))

let test_tombstone_folding () =
  let log = make_log (flash ()) in
  append_ids log 1 60;
  let dropped id = id mod 2 = 0 in
  let installs = drain ~drop:dropped log in
  let folded = List.fold_left (fun a i -> a + i.Delta_log.inst_dropped) 0 installs in
  check Alcotest.bool "tombstoned records folded" true (folded > 0);
  check Alcotest.int "dropped accounted" folded (Delta_log.dropped_records log);
  check Alcotest.int "count still monotonic" 60 (Delta_log.count log);
  check Alcotest.int "physical shrinks" (60 - folded) (Delta_log.physical_records log);
  List.iter
    (fun id ->
       if dropped id && List.mem id (scanned_roots log) && id <= 60 - 10 then
         (* the L0 tail may retain recent tombstoned records; spilled
            even ids must be gone *)
         Alcotest.failf "folded id %d still scanned" id)
    (List.init 40 (fun i -> i + 1))

let test_flat_mode_untouched () =
  let f = flash () in
  let log =
    Delta_log.create ~durability:Delta_log.Checksummed f ~table:"R"
      ~levels:[ "R"; "A"; "B" ]
      ~hidden_cols:[ ("q", Value.T_int); ("s", Value.T_char 8) ]
  in
  append_ids log 1 50;
  check Alcotest.bool "no policy, nothing pending" false
    (Delta_log.compaction_pending log);
  check Alcotest.bool "flat step is idle" true
    (Delta_log.compact_step log ~max_pages:1 = Delta_log.Idle);
  check Alcotest.int "no runs" 0 (Delta_log.run_count log);
  (* bounds are ignored on a flat log: every record still streams *)
  check Alcotest.int "flat scan_range = scan" 50
    (List.length (scanned_roots ~lo:10 ~hi:12 log))

(* ---- end to end ---- *)

let scale = Medical.tiny

let new_prescriptions ?(seed = 5) db n =
  let rng = Rng.create seed in
  let next = scale.Medical.prescriptions + Ghost_db.delta_count db + 1 in
  List.init n (fun i ->
    [|
      Value.Int (next + i);
      Value.Int (Rng.int_in rng 1 10);
      Value.Int (Rng.int_in rng 1 4);
      Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
      Value.Int (1 + Rng.int rng scale.Medical.medicines);
      Value.Int (1 + Rng.int rng scale.Medical.visits);
    |])

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

let check_all_queries ?(tag = "") db reference =
  List.iter
    (fun (name, sql) ->
       let got = (Ghost_db.query db sql).Exec.rows in
       let want = (Ghost_db.query reference sql).Exec.rows in
       if not (rows_equal got want) then
         Alcotest.failf "%s%s differs from flat reference" tag name)
    Queries.all

(* Identical mutations on a leveled and a flat instance. *)
let make_pair () =
  let rows = Medical.generate scale in
  let db = Ghost_db.of_schema ~device_config:runs_config (Medical.schema ()) rows in
  let flat = Ghost_db.of_schema ~device_config:flat_config (Medical.schema ()) rows in
  let mutate d =
    Ghost_db.insert d (new_prescriptions d 60);
    Ghost_db.delete d [ 2; 5; 9; scale.Medical.prescriptions + 7 ];
    Ghost_db.insert d (new_prescriptions ~seed:9 d 25)
  in
  mutate db;
  mutate flat;
  (db, flat)

let test_merge_on_read_equivalence () =
  let db, flat = make_pair () in
  check Alcotest.bool "compaction pending after inserts" true
    (Ghost_db.compaction_pending db);
  (* answers agree before, during and after compaction *)
  check_all_queries ~tag:"pre-compaction " db flat;
  Ghost_db.compact db;
  check Alcotest.bool "drained" false (Ghost_db.compaction_pending db);
  let f = Device.fault_counters (Ghost_db.device db) in
  check Alcotest.bool "spills counted" true (f.Device.log_spills > 0);
  check_all_queries ~tag:"post-compaction " db flat;
  (* a tombstoned, already-spilled record was folded away *)
  let log =
    match Catalog.delta (Ghost_db.catalog db) "Prescription" with
    | Some l -> l
    | None -> Alcotest.fail "no delta log"
  in
  check Alcotest.bool "fold shrank the physical log" true
    (Delta_log.physical_records log < Delta_log.count log);
  (* reorganization folds the leveled log exactly like the flat one *)
  let db2 = Ghost_db.reorganize db in
  let flat2 = Ghost_db.reorganize flat in
  check Alcotest.int "delta folded" 0 (Ghost_db.delta_count db2);
  check_all_queries ~tag:"post-reorg " db2 flat2

let test_image_roundtrip_mid_compaction () =
  let db, flat = make_pair () in
  (* leave a compaction unit in flight: its state must be plain data *)
  let log =
    match Catalog.delta (Ghost_db.catalog db) "Prescription" with
    | Some l -> l
    | None -> Alcotest.fail "no delta log"
  in
  (match Delta_log.compact_step log ~max_pages:1 with
   | Delta_log.Worked -> ()
   | Delta_log.Idle | Delta_log.Installed _ ->
     Alcotest.fail "expected an in-flight unit");
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "ghostdb_test_lsm.img"
  in
  Ghost_db.save_image db path;
  let reopened = Ghost_db.load_image path in
  Sys.remove path;
  check_all_queries ~tag:"reloaded mid-compaction " reopened flat;
  Ghost_db.compact reopened;
  check Alcotest.bool "resumed to quiescence" false
    (Ghost_db.compaction_pending reopened);
  check_all_queries ~tag:"reloaded compacted " reopened flat

(* Every Flash program compaction issues is a crash point: tear each
   one in turn; recovery must roll the log forward or back to a state
   that answers exactly like the untouched flat twin, and compaction
   must then run to completion. *)
let test_crash_point_sweep () =
  let programs_of_full_compaction () =
    let db, _ = make_pair () in
    let flash = Device.flash (Ghost_db.device db) in
    let before = (Flash.stats flash).Flash.page_programs in
    Ghost_db.compact db;
    (Flash.stats flash).Flash.page_programs - before
  in
  let total = programs_of_full_compaction () in
  check Alcotest.bool "compaction programs pages" true (total > 0);
  for k = 1 to total do
    let db, flat = make_pair () in
    let flash = Device.flash (Ghost_db.device db) in
    Flash.arm_power_cut flash ~after_programs:k;
    (try
       Ghost_db.compact db;
       Alcotest.failf "crash point %d/%d never fired" k total
     with Flash.Power_cut _ -> ());
    if not (Ghost_db.needs_recovery db) then
      Alcotest.failf "crash point %d: recovery not flagged" k;
    ignore (Ghost_db.recover db);
    check_all_queries ~tag:(Printf.sprintf "crash %d recovered " k) db flat;
    Ghost_db.compact db;
    if Ghost_db.compaction_pending db then
      Alcotest.failf "crash point %d: compaction did not drain" k;
    check_all_queries ~tag:(Printf.sprintf "crash %d compacted " k) db flat
  done

let test_scheduler_coexistence () =
  let db, flat = make_pair () in
  let sched =
    Scheduler.create ~quantum_us:500. (Ghost_db.catalog db) (Ghost_db.public db)
  in
  let scrub =
    Scrub.create ~batch_pages:4 (Ghost_db.device db)
      ~pages:(Catalog.structure_pages (Ghost_db.catalog db))
  in
  Scheduler.set_scrubber sched (Some scrub);
  let compactor = Compaction.create (Ghost_db.catalog db) in
  Scheduler.set_compactor sched (Some compactor);
  let sql = "SELECT COUNT(*) FROM Prescription Pre" in
  let ids =
    List.map (fun p -> Scheduler.submit sched p) (List.map fst (Ghost_db.plans db sql))
  in
  (* [run] drains queries, then alternates idle slices between scrub
     and compaction until both are quiet *)
  Scheduler.run sched;
  check Alcotest.bool "compactor drained" true (Compaction.idle compactor);
  check Alcotest.bool "scrub pass done" true (Scrub.idle scrub);
  check Alcotest.bool "compaction progressed" true
    ((Compaction.progress compactor).Compaction.spills > 0);
  let expected = (Ghost_db.query flat sql).Exec.rows in
  List.iter
    (fun id ->
       match Scheduler.outcome sched id with
       | Some (Scheduler.Completed r) ->
         if not (rows_equal r.Exec.rows expected) then
           Alcotest.fail "scheduled query differs from flat reference"
       | _ -> Alcotest.fail "session did not complete")
    ids;
  check_all_queries ~tag:"after scheduler " db flat

(* ---- randomized interleaving property ---- *)

let run_interleaving_case seed =
  let rng = Rng.create (seed lxor 0x1f2e3d) in
  let tables = Test_random_schema.random_tables rng in
  let schema = Test_random_schema.schema_of_tables tables in
  let rows = Test_random_schema.random_rows rng tables in
  let root = tables.(0) in
  let device_config =
    {
      Device.default_config with
      Device.durable_logs = true;
      flash_geometry = small_geometry;
      log_runs = Some { Device.l0_spill_pages = 2; run_fanout = 2 };
    }
  in
  let db = Ghost_db.of_schema ~device_config schema rows in
  let compactor = Compaction.create (Ghost_db.catalog db) in
  let inserted = ref [] in  (* newest first *)
  let deleted = ref [] in
  let n_base = root.Test_random_schema.gt_rows in
  let fresh_root_row id =
    let attrs =
      List.map
        (fun gc ->
           match gc.Test_random_schema.gc_refs with
           | Some target ->
             let n =
               (Array.to_list tables
                |> List.find (fun t -> t.Test_random_schema.gt_name = target))
                 .Test_random_schema.gt_rows
             in
             Value.Int (Rng.int_in rng 1 n)
           | None -> Test_random_schema.random_value rng gc.Test_random_schema.gc_ty)
        root.Test_random_schema.gt_cols
    in
    Array.of_list (Value.Int id :: attrs)
  in
  let ok = ref true in
  let live_reference () =
    let root_rows =
      (List.assoc root.Test_random_schema.gt_name rows @ List.rev !inserted)
      |> List.filter (fun r ->
          match r.(0) with
          | Value.Int id -> not (List.mem id !deleted)
          | _ -> false)
    in
    Reference.db_of_rows schema
      (List.map
         (fun (name, rs) ->
            if name = root.Test_random_schema.gt_name then (name, root_rows)
            else (name, rs))
         rows)
  in
  let run_query () =
    let sql, ordered = Test_random_schema.random_query rng schema in
    let q =
      try Ghost_db.bind db sql
      with e ->
        Printf.printf "BIND FAILURE seed=%d on %s\n" seed sql;
        raise e
    in
    let expected = Reference.run schema (live_reference ()) q in
    let r = Ghost_db.query db sql in
    let same =
      if ordered then r.Exec.rows = expected
      else Test_random_schema.rows_equal r.Exec.rows expected
    in
    if not same then begin
      Printf.printf "LSM MISMATCH seed=%d sql=%s got=%d want=%d\n" seed sql
        (List.length r.Exec.rows) (List.length expected);
      ok := false
    end
  in
  for _ = 1 to 14 do
    match Rng.int rng 4 with
    | 0 ->
      let n = Rng.int_in rng 1 6 in
      let next = n_base + List.length !inserted + 1 in
      let batch = List.init n (fun i -> fresh_root_row (next + i)) in
      Ghost_db.insert db batch;
      inserted := List.rev batch @ !inserted
    | 1 ->
      let top = n_base + List.length !inserted in
      let doomed =
        List.init (Rng.int_in rng 1 3) (fun _ -> Rng.int_in rng 1 top)
        |> List.filter (fun id -> not (List.mem id !deleted))
        |> List.sort_uniq compare
      in
      if doomed <> [] then begin
        Ghost_db.delete db doomed;
        deleted := doomed @ !deleted
      end
    | 2 -> ignore (Compaction.step compactor)
    | _ -> run_query ()
  done;
  (* settle: drain compaction, then every query shape must still match *)
  Compaction.run_pending compactor;
  run_query ();
  run_query ();
  let verdict = Ghost_db.audit db in
  if not verdict.Ghostdb.Privacy.ok then begin
    Printf.printf "PRIVACY VIOLATION seed=%d\n" seed;
    ok := false
  end;
  !ok

let prop_interleaving =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"random schemas: interleaved mutations + compaction = reference"
       ~count:25
       QCheck.(int_range 0 1_000_000)
       run_interleaving_case)

let suite =
  [
    Alcotest.test_case "spill and merge mechanics" `Quick test_spill_and_merge;
    Alcotest.test_case "fenced scan skips pages" `Quick test_fenced_scan;
    Alcotest.test_case "tombstone folding" `Quick test_tombstone_folding;
    Alcotest.test_case "flat mode untouched" `Quick test_flat_mode_untouched;
    Alcotest.test_case "merge-on-read = flat reference" `Quick
      test_merge_on_read_equivalence;
    Alcotest.test_case "image roundtrip mid-compaction" `Quick
      test_image_roundtrip_mid_compaction;
    Alcotest.test_case "crash-point sweep over compaction" `Quick
      test_crash_point_sweep;
    Alcotest.test_case "scheduler: compaction + scrubbing coexist" `Quick
      test_scheduler_coexistence;
    prop_interleaving;
  ]
