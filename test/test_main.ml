let () =
  Alcotest.run "ghostdb"
    [
      ("kernel", Test_kernel.suite);
      ("flash", Test_flash.suite);
      ("device", Test_device.suite);
      ("relation", Test_relation.suite);
      ("sql", Test_sql.suite);
      ("bloom", Test_bloom.suite);
      ("store", Test_store.suite);
      ("workload", Test_workload.suite);
      ("core", Test_core.suite);
      ("baseline", Test_baseline.suite);
      ("aggregate", Test_aggregate.suite);
      ("random-schema", Test_random_schema.suite);
      ("insert", Test_insert.suite);
      ("public", Test_public.suite);
      ("edge", Test_edge.suite);
      ("cost", Test_cost.suite);
      ("bench-kit", Test_bench_kit.suite);
      ("order-limit", Test_order_limit.suite);
      ("delete-reorg", Test_delete_reorg.suite);
      ("like", Test_like.suite);
      ("image", Test_image.suite);
      ("deep-cross", Test_deep_cross.suite);
      ("csv", Test_csv.suite);
      ("spill", Test_spill.suite);
      ("logs", Test_logs.suite);
      ("shapes", Test_shapes.suite);
      ("fuzz", Test_fuzz.suite);
      ("recovery", Test_recovery.suite);
      ("reorg", Test_reorg.suite);
      ("retail", Test_retail.suite);
      ("cache", Test_cache.suite);
      ("sched", Test_sched.suite);
      ("metrics", Test_metrics.suite);
      ("fleet", Test_fleet.suite);
    ]
