(* Oblivious execution mode: padding math, the leakage quantifier, and
   the tentpole guarantee — two queries differing only in a hidden
   constant produce byte-identical spy traces (and identical clock and
   page-touch counts) under [~oblivious:true], while the baseline
   executor audits to a strictly positive leakage. *)

module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng
module Ram = Ghost_device.Ram
module Device = Ghost_device.Device
module Oblivious = Ghost_oblivious.Oblivious
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Catalog = Ghostdb.Catalog
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan
module Privacy = Ghostdb.Privacy

let check = Alcotest.check
let feq = Alcotest.float 1e-9

(* ---- padding math ---------------------------------------------- *)

let test_pad_math () =
  List.iter
    (fun (n, want) -> check Alcotest.int (Printf.sprintf "next_pow2 %d" n) want
        (Oblivious.next_pow2 n))
    [ (0, 1); (1, 1); (2, 2); (3, 4); (4, 4); (5, 8); (1000, 1024) ];
  List.iter
    (fun (bound, n, want) ->
       check Alcotest.int (Printf.sprintf "pad_count ~bound:%d %d" bound n)
         want (Oblivious.pad_count ~bound n))
    [ (100, 0, 1); (100, 1, 1); (100, 5, 8); (100, 64, 64); (100, 70, 100);
      (100, 100, 100); (64, 64, 64); (1, 0, 1); (1, 1, 1); (0, 0, 0) ];
  Alcotest.check_raises "pad_count: n > bound rejected"
    (Invalid_argument "Oblivious.pad_count: count 7 exceeds public bound 5")
    (fun () -> ignore (Oblivious.pad_count ~bound:5 7));
  (* pow2 buckets <= 100 are 1,2,4,8,16,32,64 plus the cap itself *)
  List.iter
    (fun (bound, want) ->
       check Alcotest.int (Printf.sprintf "bucket_values ~bound:%d" bound)
         want (Oblivious.bucket_values ~bound))
    [ (100, 8); (64, 7); (2, 2); (1, 1); (0, 1) ];
  check feq "bits: fully padded observable" 0. (Oblivious.bits_of_values 1);
  check feq "bits: two outcomes" 1. (Oblivious.bits_of_values 2);
  check feq "bits of bucket_values 100" (log (float_of_int 8) /. log 2.)
    (Oblivious.bits_of_values (Oblivious.bucket_values ~bound:100))

(* ---- entropy estimator vs hand-computed distributions ----------- *)

let test_entropy () =
  check feq "uniform over 4" 2.0 (Oblivious.Entropy.of_weights [ 1.; 1.; 1.; 1. ]);
  check feq "single outcome" 0.0 (Oblivious.Entropy.of_weights [ 1. ]);
  check feq "empty" 0.0 (Oblivious.Entropy.of_weights []);
  (* H(3/4, 1/4) = 2 - 0.75 * log2 3 *)
  check feq "3:1 split"
    (2.0 -. (0.75 *. (log 3. /. log 2.)))
    (Oblivious.Entropy.of_weights [ 3.; 1. ]);
  check feq "zero weights dropped" 1.0
    (Oblivious.Entropy.of_weights [ 2.; 0.; 2. ]);
  check feq "observations a,b,a,b" 1.0
    (Oblivious.Entropy.of_observations [ "a"; "b"; "a"; "b" ]);
  check feq "equal observations" 0.0
    (Oblivious.Entropy.of_observations [ "a"; "a"; "a" ])

(* ---- auditing the two executors on the medical workload --------- *)

let fresh () =
  let rows = Medical.generate Medical.tiny in
  let db = Ghost_db.of_schema (Medical.schema ()) rows in
  let refdb = Reference.db_of_rows (Ghost_db.schema db) rows in
  (db, refdb)

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

let reference_rows db refdb sql =
  Reference.run (Ghost_db.schema db) refdb (Ghost_db.bind db sql)

(* The baseline trace must audit to the modeled leak of its result
   cardinality — log2(live + 1) bits for an unlimited single-table
   query — and carry no padding. *)
let test_baseline_leaks_bits () =
  let db, _ = fresh () in
  Ghost_db.clear_trace db;
  let r =
    Ghost_db.query db
      "SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = 'France'"
  in
  check Alcotest.bool "mode echoed" true (r.Exec.oblivious = Oblivious.Off);
  check Alcotest.int "no padding in baseline" 0 r.Exec.padding_bytes;
  let live = Catalog.live_count (Ghost_db.catalog db) "Doctor" in
  let v = Ghost_db.audit db in
  check feq "emission leaks log2(live+1) bits"
    (Oblivious.bits_of_values (live + 1))
    v.Privacy.data_dependent_bits;
  check Alcotest.int "no padding audited" 0 v.Privacy.padding_bytes;
  (* the demo join leaks too *)
  Ghost_db.clear_trace db;
  ignore (Ghost_db.query db Queries.demo);
  let v = Ghost_db.audit db in
  check Alcotest.bool "baseline demo leaks > 0 bits" true
    (v.Privacy.data_dependent_bits > 0.);
  (* without a fixed-shape access profile, the page-walk side channel
     adds log2(page_bound + 1) more bits *)
  let access = Ghost_db.access_profile db ~fixed_shape:false in
  check Alcotest.bool "page bound is positive" true (access.Privacy.page_bound > 0);
  let v' = Ghost_db.audit ~access db in
  check feq "access profile adds the page-walk bits"
    (v.Privacy.data_dependent_bits
     +. Oblivious.bits_of_values (access.Privacy.page_bound + 1))
    v'.Privacy.data_dependent_bits

let test_oblivious_audits_to_zero () =
  let db, refdb = fresh () in
  let expected = reference_rows db refdb Queries.demo in
  Ghost_db.clear_trace db;
  let r = Ghost_db.query db ~oblivious:true Queries.demo in
  check Alcotest.bool "mode echoed" true (r.Exec.oblivious = Oblivious.Full);
  check Alcotest.bool "real rows out" true (rows_equal r.Exec.rows expected);
  check Alcotest.bool "dummies cost bytes" true (r.Exec.padding_bytes > 0);
  check Alcotest.int "ram released" 0 (Ram.in_use (Device.ram (Ghost_db.device db)));
  let v = Ghost_db.audit ~access:(Ghost_db.access_profile db ~fixed_shape:true) db in
  check Alcotest.bool "guarantee still holds" true v.Privacy.ok;
  check feq "0 data-dependent bits" 0. v.Privacy.data_dependent_bits;
  check Alcotest.int "audit accounts every dummy byte" r.Exec.padding_bytes
    v.Privacy.padding_bytes;
  (* the spy sees only the USB share of the padding (the display
     channel's dummies are not spy-visible) *)
  let spy = Ghost_db.spy_report db in
  check Alcotest.bool "spy-visible padding bounded" true
    (spy.Ghost_public.Spy.padding_bytes > 0
     && spy.Ghost_public.Spy.padding_bytes <= r.Exec.padding_bytes);
  check Alcotest.int "nothing leaves the device" 0
    spy.Ghost_public.Spy.device_outbound_payload_bytes

(* Pad-only mode: baseline access pattern, power-of-two framing — the
   leak shrinks to the bucket count but does not vanish. *)
let test_pad_mode_shrinks_leak () =
  let db, refdb = fresh () in
  let expected = reference_rows db refdb Queries.demo in
  Ghost_db.clear_trace db;
  ignore (Ghost_db.query db Queries.demo);
  let base_bits = (Ghost_db.audit db).Privacy.data_dependent_bits in
  let plan, _ = List.hd (Ghost_db.plans db Queries.demo) in
  Ghost_db.clear_trace db;
  let r = Ghost_db.run_plan db (Plan.with_mode plan Oblivious.Pad) in
  check Alcotest.bool "pad mode echoed" true (r.Exec.oblivious = Oblivious.Pad);
  check Alcotest.bool "rows unchanged" true (rows_equal r.Exec.rows expected);
  check Alcotest.bool "padding shipped" true (r.Exec.padding_bytes > 0);
  let pad_bits = (Ghost_db.audit db).Privacy.data_dependent_bits in
  check Alcotest.bool
    (Printf.sprintf "0 < pad bits (%.2f) < baseline bits (%.2f)" pad_bits base_bits)
    true
    (pad_bits > 0. && pad_bits < base_bits)

(* ---- the tentpole: trace equality across hidden constants ------- *)

(* Two demo queries identical except for the hidden Purpose constant
   (same byte length, very different Zipf frequency). Each runs on a
   fresh instance so page-cache warmth cannot tell them apart. *)
let oblivious_probe sql =
  let db, refdb = fresh () in
  let expected = reference_rows db refdb sql in
  Ghost_db.clear_trace db;
  let r = Ghost_db.query db ~oblivious:true sql in
  check Alcotest.bool "probe rows = reference" true (rows_equal r.Exec.rows expected);
  (Oblivious.fingerprint (Ghost_db.trace db), r)

let check_indistinguishable name (fp1, r1) (fp2, r2) =
  check Alcotest.string (name ^ ": byte-identical spy fingerprints") fp1 fp2;
  check Alcotest.int (name ^ ": flash page touches")
    r1.Exec.total.Device.flash_page_reads r2.Exec.total.Device.flash_page_reads;
  check Alcotest.int (name ^ ": usb bytes")
    r1.Exec.total.Device.used_usb_bytes_in r2.Exec.total.Device.used_usb_bytes_in;
  check Alcotest.int (name ^ ": cpu ops")
    r1.Exec.total.Device.used_cpu_ops r2.Exec.total.Device.used_cpu_ops;
  check (Alcotest.float 0.) (name ^ ": device clock") r1.Exec.elapsed_us
    r2.Exec.elapsed_us

let test_trace_equality_hidden_constant () =
  let p1 = oblivious_probe (Queries.demo_with ~purpose:"Sclerosis" ()) in
  let p2 = oblivious_probe (Queries.demo_with ~purpose:"Influenza" ()) in
  check_indistinguishable "purpose constant" p1 p2

(* Same guarantee for a hidden range predicate: the two bounds select
   very different fractions of Prescription.Quantity. *)
let test_trace_equality_hidden_range () =
  let q lo hi =
    Printf.sprintf
      "SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre WHERE Pre.Quantity \
       BETWEEN %d AND %d"
      lo hi
  in
  let p1 = oblivious_probe (q 1 9) in
  let p2 = oblivious_probe (q 8 9) in
  check_indistinguishable "range bounds" p1 p2

(* ---- correctness: every workload query, also after mutations ---- *)

let test_rows_match_reference () =
  let db, refdb = fresh () in
  List.iter
    (fun (name, sql) ->
       let expected = reference_rows db refdb sql in
       let r = Ghost_db.query db ~oblivious:true sql in
       if not (rows_equal r.Exec.rows expected) then
         Alcotest.failf "%s oblivious: got %d rows, want %d" name r.Exec.row_count
           (List.length expected);
       check Alcotest.int (name ^ ": ram released") 0
         (Ram.in_use (Device.ram (Ghost_db.device db))))
    Queries.all;
  (* aggregates and ORDER BY .. LIMIT shapes *)
  List.iter
    (fun sql ->
       let expected = reference_rows db refdb sql in
       let r = Ghost_db.query db ~oblivious:true sql in
       if not (rows_equal r.Exec.rows expected) then
         Alcotest.failf "%s oblivious: got %d rows, want %d" sql r.Exec.row_count
           (List.length expected))
    [
      "SELECT COUNT(*), MIN(Pre.Quantity), MAX(Pre.Quantity) FROM Prescription Pre";
      "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.Quantity >= 3 ORDER BY \
       Pre.PreID DESC LIMIT 5";
    ]

(* Delta-log and tombstone coverage: the fixed-shape scan must see
   fresh inserts and stop seeing deleted roots, like the baseline. *)
let test_rows_after_mutations () =
  let db, _ = fresh () in
  let rng = Rng.create 11 in
  let next = Medical.tiny.Medical.prescriptions + 1 in
  let batch =
    List.init 20 (fun i ->
      [|
        Value.Int (next + i);
        Value.Int (Rng.int_in rng 1 10);
        Value.Int (Rng.int_in rng 1 4);
        Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
        Value.Int (1 + Rng.int rng Medical.tiny.Medical.medicines);
        Value.Int (1 + Rng.int rng Medical.tiny.Medical.visits);
      |])
  in
  Ghost_db.insert db batch;
  Ghost_db.delete db [ 1; 7; 42; next + 3 ];
  List.iter
    (fun (name, sql) ->
       let expected = (Ghost_db.query db sql).Exec.rows in
       let r = Ghost_db.query db ~oblivious:true sql in
       if not (rows_equal r.Exec.rows expected) then
         Alcotest.failf "%s oblivious after mutations: got %d rows, want %d" name
           r.Exec.row_count (List.length expected))
    Queries.all;
  Ghost_db.clear_trace db;
  ignore (Ghost_db.query db ~oblivious:true Queries.demo);
  let v = Ghost_db.audit ~access:(Ghost_db.access_profile db ~fixed_shape:true) db in
  check feq "0 bits with delta and tombstones" 0. v.Privacy.data_dependent_bits

(* ---- property: random tree schemas ------------------------------ *)

(* Build one conjunctive query over the whole schema tree whose only
   non-join predicate is an equality on a hidden column, with the
   constant's surface form held at a fixed byte length; two different
   constants must then be indistinguishable: byte-identical spy
   fingerprints, identical page touches and device clock, and each
   probe's rows must equal the reference evaluator's. Cases without a
   hidden non-fk column pass vacuously. *)
let constant_pairs = function
  | Value.T_int -> ("3", "7")
  | Value.T_float -> ("1.5", "3.5")
  | Value.T_char _ -> ("'blue'", "'pink'")
  | Value.T_date ->
    ( Printf.sprintf "'%s'" (Ghost_kernel.Date.to_string 12005),
      Printf.sprintf "'%s'" (Ghost_kernel.Date.to_string 12025) )

let run_random_case seed =
  let open Test_random_schema in
  let rng = Rng.create seed in
  let tables = random_tables rng in
  let schema = schema_of_tables tables in
  let rows = random_rows rng tables in
  let hidden =
    Array.to_list tables
    |> List.concat_map (fun gt ->
      List.filter_map
        (fun gc ->
           if gc.gc_hidden && gc.gc_refs = None then Some (gt.gt_name, gc)
           else None)
        gt.gt_cols)
  in
  match hidden with
  | [] -> true (* vacuous: nothing hidden to vary *)
  | _ ->
    let t_name, gc = List.nth hidden (Rng.int rng (List.length hidden)) in
    let from = Array.to_list tables |> List.map (fun gt -> gt.gt_name) in
    let joins =
      List.filter_map
        (fun gt ->
           List.filter_map
             (fun c ->
                match c.gc_refs with
                | Some child ->
                  Some
                    (Printf.sprintf "%s.%s = %s.%s" gt.gt_name c.gc_name child
                       (Array.to_list tables
                        |> List.find (fun t -> t.gt_name = child))
                         .gt_key)
                | None -> None)
             gt.gt_cols
           |> function [] -> None | l -> Some l)
        (Array.to_list tables)
      |> List.concat
    in
    let projections =
      List.map (fun gt -> Printf.sprintf "%s.%s" gt.gt_name gt.gt_key)
        (Array.to_list tables)
      @ [ Printf.sprintf "%s.%s" t_name gc.gc_name ]
    in
    let lit1, lit2 = constant_pairs gc.gc_ty in
    let sql_with lit =
      Printf.sprintf "SELECT %s FROM %s WHERE %s"
        (String.concat ", " projections)
        (String.concat ", " from)
        (String.concat " AND "
           (joins @ [ Printf.sprintf "%s.%s = %s" t_name gc.gc_name lit ]))
    in
    let probe lit =
      let sql = sql_with lit in
      let db = Ghost_db.of_schema schema rows in
      let refdb = Reference.db_of_rows schema rows in
      let expected = Reference.run schema refdb (Ghost_db.bind db sql) in
      Ghost_db.clear_trace db;
      let r = Ghost_db.query db ~oblivious:true sql in
      let v =
        Ghost_db.audit ~access:(Ghost_db.access_profile db ~fixed_shape:true) db
      in
      ( Oblivious.fingerprint (Ghost_db.trace db),
        r,
        v,
        rows_equal r.Exec.rows expected )
    in
    let fp1, r1, v1, ok1 = probe lit1 in
    let fp2, r2, v2, ok2 = probe lit2 in
    let ok = ref true in
    if not (ok1 && ok2) then begin
      Printf.printf "OBLIVIOUS ROWS MISMATCH seed=%d on %s\n" seed (sql_with lit1);
      ok := false
    end;
    if fp1 <> fp2 then begin
      Printf.printf "FINGERPRINT MISMATCH seed=%d on %s vs %s\n" seed lit1 lit2;
      ok := false
    end;
    if
      r1.Exec.total.Device.flash_page_reads <> r2.Exec.total.Device.flash_page_reads
      || r1.Exec.elapsed_us <> r2.Exec.elapsed_us
      || r1.Exec.total.Device.used_cpu_ops <> r2.Exec.total.Device.used_cpu_ops
    then begin
      Printf.printf "SHAPE MISMATCH seed=%d (pages %d/%d, clock %.1f/%.1f)\n" seed
        r1.Exec.total.Device.flash_page_reads r2.Exec.total.Device.flash_page_reads
        r1.Exec.elapsed_us r2.Exec.elapsed_us;
      ok := false
    end;
    if v1.Privacy.data_dependent_bits <> 0. || v2.Privacy.data_dependent_bits <> 0.
    then begin
      Printf.printf "NONZERO LEAK seed=%d (%.3f / %.3f bits)\n" seed
        v1.Privacy.data_dependent_bits v2.Privacy.data_dependent_bits;
      ok := false
    end;
    !ok

let prop_trace_equality =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"random schemas: hidden constants are indistinguishable" ~count:20
       QCheck.(int_range 0 1_000_000)
       run_random_case)

let suite =
  [
    Alcotest.test_case "padding math" `Quick test_pad_math;
    Alcotest.test_case "entropy estimator" `Quick test_entropy;
    Alcotest.test_case "baseline leaks bits" `Quick test_baseline_leaks_bits;
    Alcotest.test_case "oblivious audits to zero" `Quick test_oblivious_audits_to_zero;
    Alcotest.test_case "pad mode shrinks the leak" `Quick test_pad_mode_shrinks_leak;
    Alcotest.test_case "trace equality: hidden constant" `Quick
      test_trace_equality_hidden_constant;
    Alcotest.test_case "trace equality: hidden range" `Quick
      test_trace_equality_hidden_range;
    Alcotest.test_case "rows match reference" `Quick test_rows_match_reference;
    Alcotest.test_case "rows after mutations" `Quick test_rows_after_mutations;
    prop_trace_equality;
  ]
