(* Robustness fuzzing: the SQL front end must never crash with anything
   but its own typed errors, whatever bytes arrive; and the durable logs
   must recover exactly the acknowledged prefix from a power cut at
   every page position. *)

module Lexer = Ghost_sql.Lexer
module Parser = Ghost_sql.Parser
module Bind = Ghost_sql.Bind
module Medical = Ghost_workload.Medical
module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng
module Flash = Ghost_flash.Flash
module Delta_log = Ghostdb.Delta_log
module Tombstone_log = Ghostdb.Tombstone_log

let schema = lazy (Medical.schema ())

let survives input =
  match Bind.bind (Lazy.force schema) input with
  | _ -> true
  | exception (Lexer.Lex_error _ | Parser.Parse_error _ | Bind.Bind_error _) -> true
  | exception _ -> false

let printable_gen =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (0 -- 80))

let prop_garbage =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"arbitrary printable garbage" ~count:500
       (QCheck.make ~print:Fun.id printable_gen)
       survives)

let prop_any_bytes =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"arbitrary bytes" ~count:300 QCheck.string survives)

(* Mutate valid queries: truncate, duplicate tokens, splice. *)
let prop_mutated_valid =
  let base = Array.of_list (List.map snd Ghost_workload.Queries.all) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"mutations of valid queries" ~count:400
       QCheck.(triple (int_range 0 1000) small_nat small_nat)
       (fun (pick, cut, splice) ->
          let sql = base.(pick mod Array.length base) in
          let n = String.length sql in
          let truncated = String.sub sql 0 (min n (cut mod (n + 1))) in
          let spliced =
            let at = splice mod (String.length truncated + 1) in
            String.sub truncated 0 at ^ " AND ( % " ^ String.sub truncated at
              (String.length truncated - at)
          in
          survives truncated && survives spliced))

(* Power-loss sweep: cut the power at every program position of a
   randomized insert workload (every page offset and both sides of each
   page boundary) and check the recovery invariant — recovered state =
   exactly the acknowledged appends, no phantom records. One append is
   one tail program, so crash point [k] tears the [k]-th append. *)

let small_flash () =
  (* 256-byte pages, checksummed: 14 delta records (16 B) per page, so
     120 crash points span 8+ pages *)
  Flash.create ~geometry:{ Flash.page_size = 256; pages_per_block = 8 } ()

let delta_power_loss_sweep () =
  for crash_at = 1 to 120 do
    let f = small_flash () in
    let log =
      Delta_log.create ~durability:Delta_log.Checksummed f ~table:"R"
        ~levels:[ "R"; "A" ] ~hidden_cols:[ ("v", Value.T_int) ]
    in
    let rng = Rng.create (1000 + crash_at) in
    let acked = ref [] in
    Flash.arm_power_cut f ~after_programs:crash_at;
    (try
       let i = ref 0 in
       while true do
         incr i;
         let v = Rng.int rng 1_000_000 in
         Delta_log.append log ~ids:[| !i; Rng.int_in rng 1 9 |] ~hidden:[| Value.Int v |];
         acked := (!i, v) :: !acked
       done
     with Flash.Power_cut _ -> ());
    let acked = List.rev !acked in
    let r = Delta_log.recover log in
    if r.Delta_log.recovered <> List.length acked then
      Alcotest.failf "crash@%d: recovered %d records, %d were acknowledged" crash_at
        r.Delta_log.recovered (List.length acked);
    if r.Delta_log.lost <> 1 then
      Alcotest.failf "crash@%d: lost %d, expected only the torn record" crash_at
        r.Delta_log.lost;
    let got = ref [] in
    Delta_log.scan log (fun row ->
        let v =
          match row.Delta_log.hidden.(0) with Value.Int v -> v | _ -> -1
        in
        got := (row.Delta_log.ids.(0), v) :: !got);
    if List.rev !got <> acked then
      Alcotest.failf "crash@%d: recovered content differs from acknowledged" crash_at
  done

let tombstone_power_loss_sweep () =
  for crash_at = 1 to 60 do
    let f = small_flash () in
    let log = Tombstone_log.create ~durability:Tombstone_log.Checksummed f ~table:"R" in
    let rng = Rng.create (9000 + crash_at) in
    let acked = ref [] in
    Flash.arm_power_cut f ~after_programs:crash_at;
    (try
       let i = ref 0 in
       while true do
         let id = (!i * 7919) + 1 + Rng.int rng 3 in
         incr i;
         Tombstone_log.append log [ id ];
         acked := id :: !acked
       done
     with Flash.Power_cut _ -> ());
    let acked = List.sort compare !acked in
    let r = Tombstone_log.recover log in
    if r.Tombstone_log.recovered <> List.length acked then
      Alcotest.failf "crash@%d: recovered %d ids, %d were acknowledged" crash_at
        r.Tombstone_log.recovered (List.length acked);
    let got = Array.to_list (Tombstone_log.load_sorted log) in
    if got <> acked then
      Alcotest.failf "crash@%d: recovered ids differ from acknowledged" crash_at;
    if List.exists (fun id -> not (Tombstone_log.mem log id)) acked then
      Alcotest.failf "crash@%d: membership lost an acknowledged id" crash_at
  done

let suite = [
  prop_garbage;
  prop_any_bytes;
  prop_mutated_valid;
  Alcotest.test_case "delta power-loss sweep (120 crash points)" `Quick
    delta_power_loss_sweep;
  Alcotest.test_case "tombstone power-loss sweep (60 crash points)" `Quick
    tombstone_power_loss_sweep;
]
