(* Crash recovery: the power fails mid-insert, tearing a Flash page.

   With [durable_logs] the delta / tombstone logs use checksummed pages
   (DESIGN.md §9): after the cut, [Ghost_db.recover] scans the log,
   discards the torn program, and restores exactly the acknowledged
   prefix — then life goes on.

   dune exec examples/crash_recovery.exe *)

module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng
module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec

let scale = Medical.tiny

let fresh_prescriptions db rng n =
  let next = scale.Medical.prescriptions + Ghost_db.delta_count db + 1 in
  List.init n (fun i ->
    [|
      Value.Int (next + i);
      Value.Int (Rng.int_in rng 1 10);
      Value.Int (Rng.int_in rng 1 4);
      Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
      Value.Int (1 + Rng.int rng scale.Medical.medicines);
      Value.Int (1 + Rng.int rng scale.Medical.visits);
    |])

let count_prescriptions db =
  match (Ghost_db.query db "SELECT COUNT(*) FROM Prescription Pre").Exec.rows with
  | [ [| Value.Int n |] ] -> n
  | _ -> assert false

let () =
  let rng = Rng.create 1789 in
  let config = { Device.default_config with Device.durable_logs = true } in
  let db =
    Ghost_db.of_schema ~device_config:config (Medical.schema ())
      (Medical.generate scale)
  in
  Printf.printf "loaded %d prescriptions (durable logs on)\n"
    (count_prescriptions db);

  Ghost_db.insert db (fresh_prescriptions db rng 10);
  Printf.printf "inserted 10 new prescriptions; total %d\n"
    (count_prescriptions db);

  (* The power fails three page programs into the next batch. *)
  Flash.arm_power_cut (Device.flash (Ghost_db.device db)) ~after_programs:3;
  (try
     Ghost_db.insert db (fresh_prescriptions db rng 8);
     print_endline "unreachable"
   with Flash.Power_cut { page; programmed } ->
     Printf.printf "\n*** power cut: page %d torn after %d bytes ***\n" page
       programmed);
  Printf.printf "needs recovery: %b\n" (Ghost_db.needs_recovery db);
  (try ignore (Ghost_db.reorganize db)
   with Failure msg -> Printf.printf "reorganize refused: %s\n" msg);

  let r = Ghost_db.recover db in
  Printf.printf
    "\nrecovered: %d delta records durable, %d lost (never acknowledged), %d \
     torn page(s)\n"
    r.Ghost_db.delta_recovered r.Ghost_db.delta_lost
    (r.Ghost_db.delta_torn_pages + r.Ghost_db.tombstone_torn_pages);
  Printf.printf "total prescriptions after recovery: %d\n"
    (count_prescriptions db);

  Ghost_db.insert db (fresh_prescriptions db rng 5);
  Printf.printf "inserts resume: total %d\n" (count_prescriptions db);
  let f = Device.fault_counters (Ghost_db.device db) in
  Printf.printf "device counters: %d power cut(s), %d recovered, %d lost\n"
    f.Device.flash_power_cuts f.Device.records_recovered f.Device.records_lost;

  (* Now the power fails *during* reorganization. With durable logs the
     rebuild runs as a checkpointed shadow build (DESIGN.md §9.4): the
     old image stays live, and recovery rolls the rebuild forward from
     the last journaled checkpoint instead of starting over. *)
  Ghost_db.insert db (fresh_prescriptions db rng 5);
  let before = count_prescriptions db in
  Flash.arm_power_cut (Device.flash (Ghost_db.device db)) ~after_programs:4;
  (try
     ignore (Ghost_db.reorganize db);
     print_endline "unreachable"
   with Flash.Power_cut _ ->
     print_endline "\n*** power cut mid-reorganization ***");
  (try Ghost_db.insert db (fresh_prescriptions db rng 1)
   with Failure msg -> Printf.printf "insert refused: %s\n" msg);
  let r = Ghost_db.recover db in
  let db =
    match r.Ghost_db.reorg with
    | Some (Ghost_db.Reorg_completed { db; phases_reused; phases_redone }) ->
      Printf.printf
        "rolled forward: %d journaled phase(s) reused, %d redone\n"
        phases_reused phases_redone;
      db
    | Some (Ghost_db.Reorg_rolled_back { journal_records }) ->
      Printf.printf "rolled back (%d journal records); old image live\n"
        journal_records;
      Ghost_db.reorganize db
    | None -> db
  in
  Printf.printf "reorganized: %d prescriptions (was %d), %d pending\n"
    (count_prescriptions db) before (Ghost_db.delta_count db)
