(* Hospital privacy audit: the scenario of the paper's introduction.

   Bob carries sensitive diabetes-patient data on his smart USB device;
   an insurance fraudster has compromised his terminal and logs every
   message. This example runs a realistic mixed workload and then shows
   both sides: what Bob learned, and what the fraudster learned.

   dune exec examples/hospital_audit.exe *)

module Trace = Ghost_device.Trace
module Spy = Ghost_public.Spy
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Privacy = Ghostdb.Privacy

let () =
  let scale = Medical.small in
  Printf.printf "loading %d prescriptions (hidden columns -> device, visible -> server)\n%!"
    scale.Medical.prescriptions;
  let db = Ghost_db.of_schema (Medical.schema ()) (Medical.generate scale) in
  Ghost_db.clear_trace db;

  (* Bob's workload: who prescribes what, to whom, for which purpose -
     exactly the linkages the hidden foreign keys protect. *)
  let workload = [
    ("sclerosis antibiotics", Queries.demo);
    ("elderly spanish patients", List.assoc "doctor_patient" Queries.all);
    ("heavy prescriptions", List.assoc "range_hidden" Queries.all);
  ] in
  Printf.printf "\n== what Bob sees (secure display) ==\n";
  List.iter
    (fun (name, sql) ->
       let r = Ghost_db.query db sql in
       Printf.printf "  %-26s %5d rows   %8.1f ms on the device\n" name
         r.Exec.row_count
         (r.Exec.elapsed_us /. 1000.))
    workload;

  Printf.printf "\n== what the fraudster sees ==\n%s\n"
    (Spy.to_string (Ghost_db.spy_report db));

  Printf.printf "\n== auditor ==\n";
  Format.printf "%a@." Privacy.pp (Ghost_db.audit db);

  (* The punchline: the spy knows WHICH queries were posed and which
     visible values were touched - the paper is explicit about that
     residual leak - but no patient name, no diagnosis, no
     doctor-patient linkage ever crossed a public link. *)
  let hidden_words = [ "Sclerosis"; "Pat-"; "BodyMassIndex" ] in
  let events = Trace.spy_events (Ghost_db.trace db) in
  let leaked w =
    List.exists
      (fun e ->
         match e.Trace.payload with
         | Trace.Value_stream { column; _ } -> column = w
         | Trace.Query_text q ->
           (* the query text itself may mention hidden constants - that
              is the paper's accepted leak, report it honestly *)
           ignore q;
           false
         | Trace.Id_list _ | Trace.Result_tuples _ | Trace.Ack
         | Trace.Cache_stats _ | Trace.Reorg_progress _ -> false)
      events
  in
  List.iter
    (fun w ->
       Printf.printf "hidden item %-16s on public links: %s\n" w
         (if leaked w then "FOUND (violation!)" else "absent"))
    hidden_words
