module Rng = Ghost_kernel.Rng
module Zipf = Ghost_kernel.Zipf
module Value = Ghost_kernel.Value
module Ram = Ghost_device.Ram
module Device = Ghost_device.Device
module Queries = Ghost_workload.Queries
module Bind = Ghost_sql.Bind
module Cost = Ghostdb.Cost
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan
module Planner = Ghostdb.Planner
module Ghost_db = Ghostdb.Ghost_db
module Scheduler = Ghost_sched.Scheduler

type spec = {
  clients : int;
  queries_per_client : int;
  theta : float;
  seed : int;
  mix : (string * string) list;
  deadline_factor : float;
}

let default_spec =
  {
    clients = 8;
    queries_per_client = 4;
    theta = 1.1;
    seed = 42;
    mix = Queries.all;
    deadline_factor = 8.0;
  }

type kill = {
  kill_at_us : float;
  kill_shard : int;
  kill_replica : int;
}

type query_outcome = {
  qo_client : int;
  qo_name : string;
  qo_rows : Value.t array list;
  qo_complete : bool;
  qo_unreachable : int list;
  qo_latency_us : float;
}

type summary = {
  shards : int;
  replicas : int;
  clients : int;
  completed : int;
  partial : int;
  failovers : int;
  hedges : int;
  unreachable_subs : int;
  makespan_us : float;
  throughput_qps : float;
  latency_p50_us : float;
  latency_p95_us : float;
  availability : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

(* One device of the fleet with its own scheduler and the offset that
   places its local clock on the shared global timeline. *)
type dev = {
  d_shard : int;
  d_replica : int;
  d_device : Device.t;
  d_sched : Scheduler.t;
  mutable d_offset : float;
}

let global_now d = d.d_offset +. Device.elapsed_us d.d_device

let has_work d =
  let st = Scheduler.stats d.d_sched in
  st.Scheduler.queued + st.Scheduler.runnable > 0

(* Per-query in-flight state. *)
type qstate = {
  qs_client : int;
  qs_name : string;
  qs_mix : int;
  qs_bound : Bind.query;
  qs_submit_g : float;
  mutable qs_open : int;
  mutable qs_rows : Value.t array list list;  (* remapped, per resolved shard *)
  mutable qs_unreachable : int list;
  mutable qs_latest : float;
}

type sub = {
  sb_qs : qstate;
  mutable sb_shards : int list;
      (* candidate shards, current first: a singleton for a scattered
         sub-query, every shard (rotated) for a dimension-only read
         that may roam *)
  mutable sb_tried : int list;  (* replicas tried on the current shard *)
}

let run ?(policy = Scheduler.Fifo) ?(quantum_us = infinity) ?(kills = [])
    ?on_outcome fleet (spec : spec) =
  if spec.clients <= 0 then invalid_arg "Fleet_driver.run: clients <= 0";
  if spec.queries_per_client <= 0 then
    invalid_arg "Fleet_driver.run: queries_per_client <= 0";
  if spec.mix = [] then invalid_arg "Fleet_driver.run: empty mix";
  let n_shards = Fleet.shard_count fleet in
  let n_replicas = Fleet.replica_count fleet in
  let dev_index ~shard ~replica = (shard * n_replicas) + replica in
  let devs =
    Array.init (n_shards * n_replicas) (fun i ->
      let shard = i / n_replicas and r = i mod n_replicas in
      let db = Fleet.db fleet ~shard ~replica:r in
      let device = Ghost_db.device db in
      {
        d_shard = shard;
        d_replica = r;
        d_device = device;
        d_sched =
          Scheduler.create ~policy ~quantum_us (Ghost_db.catalog db)
            (Ghost_db.public db);
        (* The loads charged during construction predate the workload:
           start the shared timeline at zero. *)
        d_offset = -.Device.elapsed_us device;
      })
  in
  (* Per (mix entry, shard): the rewritten sub-query; per replica on
     top: its plan and estimate on that device's catalog. *)
  let mix = Array.of_list spec.mix in
  let bound = Array.map (fun (_, sql) -> Fleet.bind fleet sql) mix in
  let subqs =
    Array.map
      (fun q -> Array.init n_shards (fun s -> Fleet.subquery fleet ~shard:s q))
      bound
  in
  let plans =
    Array.map
      (fun per_shard ->
         Array.mapi
           (fun s subq ->
              Array.init n_replicas (fun r ->
                let db = Fleet.db fleet ~shard:s ~replica:r in
                let plan, est = Planner.best (Ghost_db.catalog db) subq in
                (plan, est.Cost.est_time_us)))
           per_shard)
      subqs
  in
  (* Zipf ranks follow the optimizer's cost order, cheapest first, as
     in the single-device driver: rank the mix by its fleet-wide
     estimate (sum of the replica-0 per-shard estimates). *)
  let order =
    let keyed =
      Array.mapi
        (fun i per_shard ->
           let total =
             Array.fold_left (fun acc reps -> acc +. snd reps.(0)) 0. per_shard
           in
           (total, i))
        plans
    in
    Array.sort compare keyed;
    Array.map snd keyed
  in
  let zipf = Zipf.create ~n:(Array.length mix) ~theta:spec.theta in
  let rng = Rng.create spec.seed in
  let sessions : (int * int, sub) Hashtbl.t = Hashtbl.create 256 in
  let remaining = Array.make spec.clients (spec.queries_per_client - 1) in
  let completed = ref 0 in
  let partial = ref 0 in
  let failovers = ref 0 in
  let hedges = ref 0 in
  let unreachable_subs = ref 0 in
  let latencies = ref [] in
  let last_finish = ref 0. in
  let pending_kills =
    ref (List.sort (fun a b -> compare a.kill_at_us b.kill_at_us) kills)
  in
  let submit_query_ref = ref (fun ~client:_ ~at:_ -> ()) in
  let finalize (qs : qstate) =
    let rows = Fleet.merge fleet qs.qs_bound (List.concat qs.qs_rows) in
    let complete = qs.qs_unreachable = [] in
    if complete then incr completed else incr partial;
    latencies := (qs.qs_latest -. qs.qs_submit_g) :: !latencies;
    last_finish := Float.max !last_finish qs.qs_latest;
    (match on_outcome with
     | Some f ->
       f
         {
           qo_client = qs.qs_client;
           qo_name = qs.qs_name;
           qo_rows = rows;
           qo_complete = complete;
           qo_unreachable = List.sort compare qs.qs_unreachable;
           qo_latency_us = qs.qs_latest -. qs.qs_submit_g;
         }
     | None -> ());
    if remaining.(qs.qs_client) > 0 then begin
      remaining.(qs.qs_client) <- remaining.(qs.qs_client) - 1;
      !submit_query_ref ~client:qs.qs_client ~at:qs.qs_latest
    end
  in
  let rec submit_sub ~at (sub : sub) =
    let qs = sub.sb_qs in
    let shard = List.hd sub.sb_shards in
    match Fleet.pick_replica fleet ~shard ~exclude:sub.sb_tried with
    | None -> (
      match List.tl sub.sb_shards with
      | next :: _ as rest ->
        ignore next;
        sub.sb_shards <- rest;
        sub.sb_tried <- [];
        submit_sub ~at sub
      | [] ->
        incr unreachable_subs;
        qs.qs_unreachable <- shard :: qs.qs_unreachable;
        qs.qs_latest <- Float.max qs.qs_latest at;
        qs.qs_open <- qs.qs_open - 1;
        if qs.qs_open = 0 then finalize qs)
    | Some r ->
      sub.sb_tried <- r :: sub.sb_tried;
      let d = devs.(dev_index ~shard ~replica:r) in
      (* An idle device that lags the submission instant jumps forward:
         nothing happened on it in between. *)
      if (not (has_work d)) && global_now d < at then
        d.d_offset <- at -. Device.elapsed_us d.d_device;
      let plan, est = plans.(qs.qs_mix).(shard).(r) in
      (* The deadline is a straggler detector, not a correctness bound:
         arm it only when a hedge has somewhere to go — an untried
         not-dead replica on this shard, or (for a roaming read) a
         further shard. Same rule as the serial {!Fleet.query} path;
         without it a loaded R = 1 fleet would mark its only replica
         unreachable just for convoying behind an analytical scan. *)
      let alternative =
        List.exists
          (fun r' ->
             r' <> r
             && (not (List.mem r' sub.sb_tried))
             && Fleet.health fleet ~shard ~replica:r' <> Fleet.Dead)
          (List.init n_replicas Fun.id)
        || List.tl sub.sb_shards <> []
      in
      let deadline_us =
        if alternative then
          Some
            (spec.deadline_factor *. Float.max est 1000.
             *. float_of_int spec.clients)
        else None
      in
      (* Reserve a fair share of the device arena, but never slice it
         more than eight ways: a fleet client count can far exceed
         what one 64 KiB device can co-host, and a reservation smaller
         than a session's true sort/spill peak would let admission
         over-commit the arena and surface as spurious Ram_exceeded
         failures. Eight resident sessions at budget/8 is the regime
         the single-device driver (E18) runs at this scale. *)
      let working_ram =
        Ram.budget (Device.ram d.d_device) / min spec.clients 8
      in
      let sid =
        Scheduler.submit d.d_sched ~label:qs.qs_name ~working_ram ?deadline_us
          plan
      in
      Hashtbl.replace sessions (dev_index ~shard ~replica:r, sid) sub
  and drain d =
    let didx = dev_index ~shard:d.d_shard ~replica:d.d_replica in
    List.iter
      (fun (f : Scheduler.finished) ->
         match Hashtbl.find_opt sessions (didx, f.Scheduler.f_id) with
         | None -> ()
         | Some sub ->
           Hashtbl.remove sessions (didx, f.Scheduler.f_id);
           let qs = sub.sb_qs in
           let at = d.d_offset +. f.Scheduler.f_finished_us in
           (match f.Scheduler.f_outcome with
            | Scheduler.Completed r ->
              Fleet.note_success fleet ~shard:d.d_shard ~replica:d.d_replica;
              qs.qs_rows <-
                Fleet.remap fleet qs.qs_bound ~shard:d.d_shard r.Exec.rows
                :: qs.qs_rows;
              qs.qs_latest <- Float.max qs.qs_latest at;
              qs.qs_open <- qs.qs_open - 1;
              if qs.qs_open = 0 then finalize qs
            | Scheduler.Cancelled reason when reason = "deadline" ->
              Fleet.note_timeout fleet ~shard:d.d_shard ~replica:d.d_replica;
              incr hedges;
              submit_sub ~at sub
            | Scheduler.Cancelled _ ->
              (* "device-down": the kill already marked it dead *)
              incr failovers;
              submit_sub ~at sub
            | Scheduler.Failed _ ->
              Fleet.note_error fleet ~shard:d.d_shard ~replica:d.d_replica;
              incr failovers;
              submit_sub ~at sub))
      (Scheduler.poll_finished d.d_sched)
  in
  let shard_rr = ref 0 in
  let submit_query ~client ~at =
    let rank = Zipf.sample zipf rng in
    let m = order.(rank - 1) in
    let scatter = Fleet.scatters fleet bound.(m) in
    let qs =
      {
        qs_client = client;
        qs_name = fst mix.(m);
        qs_mix = m;
        qs_bound = bound.(m);
        qs_submit_g = at;
        qs_open = (if scatter then n_shards else 1);
        qs_rows = [];
        qs_unreachable = [];
        qs_latest = at;
      }
    in
    if scatter then
      for s = 0 to n_shards - 1 do
        submit_sub ~at { sb_qs = qs; sb_shards = [ s ]; sb_tried = [] }
      done
    else begin
      (* dimension-only read: one shard serves it, rotate for load,
         roam across the rest on failure *)
      let start = !shard_rr mod n_shards in
      incr shard_rr;
      let shards = List.init n_shards (fun i -> (start + i) mod n_shards) in
      submit_sub ~at { sb_qs = qs; sb_shards = shards; sb_tried = [] }
    end
  in
  submit_query_ref := submit_query;
  let apply_kill k =
    Fleet.kill fleet ~shard:k.kill_shard ~replica:k.kill_replica;
    let didx = dev_index ~shard:k.kill_shard ~replica:k.kill_replica in
    let d = devs.(didx) in
    let sids =
      Hashtbl.fold
        (fun (di, sid) _ acc -> if di = didx then sid :: acc else acc)
        sessions []
      |> List.sort compare
    in
    List.iter (fun sid -> Scheduler.cancel d.d_sched ~reason:"device-down" sid) sids;
    drain d
  in
  for client = 0 to spec.clients - 1 do
    submit_query ~client ~at:0.
  done;
  let pick_device () =
    let best = ref None in
    Array.iteri
      (fun i d ->
         if has_work d then
           match !best with
           | Some (_, g) when g <= global_now d -> ()
           | _ -> best := Some (i, global_now d))
      devs;
    !best
  in
  let rec loop () =
    match pick_device () with
    | None -> ()
    | Some (i, g) ->
      (match !pending_kills with
       | k :: rest when k.kill_at_us <= g ->
         pending_kills := rest;
         apply_kill k
       | _ ->
         let d = devs.(i) in
         ignore (Scheduler.step d.d_sched);
         drain d);
      loop ()
  in
  loop ();
  (* Kills scheduled past the end of the workload never fire. *)
  let lat = Array.of_list !latencies in
  Array.sort Float.compare lat;
  let total = !completed + !partial in
  {
    shards = n_shards;
    replicas = n_replicas;
    clients = spec.clients;
    completed = !completed;
    partial = !partial;
    failovers = !failovers;
    hedges = !hedges;
    unreachable_subs = !unreachable_subs;
    makespan_us = !last_finish;
    throughput_qps =
      (if !last_finish > 0. then float_of_int total /. !last_finish *. 1e6
       else 0.);
    latency_p50_us = percentile lat 0.50;
    latency_p95_us = percentile lat 0.95;
    availability =
      (if total = 0 then nan else float_of_int !completed /. float_of_int total);
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "%d shards x %d replicas, %d clients: %d complete %d partial, %d failover \
     %d hedged %d unreachable, makespan %.0f us, %.1f q/s, p50 %.0f us p95 \
     %.0f us, availability %.3f"
    s.shards s.replicas s.clients s.completed s.partial s.failovers s.hedges
    s.unreachable_subs s.makespan_us s.throughput_qps s.latency_p50_us
    s.latency_p95_us s.availability
