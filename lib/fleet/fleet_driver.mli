module Value = Ghost_kernel.Value
module Scheduler = Ghost_sched.Scheduler

(** Closed-loop multi-device workload driver (experiment E19).

    Extends the single-device driver of {!Ghost_sched.Workload_driver}
    to a {!Fleet}: each client owns a think-free loop — draw a query
    from the Zipf-ranked mix, scatter one sub-query to every shard
    through {e per-device schedulers} (PR 4 admission control and
    deadlines apply per device), gather, merge, repeat. The driver
    maintains one global simulated clock across devices by tracking a
    per-device offset and always advancing the device whose global
    time lags furthest behind, so the interleaving is deterministic.

    Robustness is exercised end to end: each sub-query carries a
    deadline derived from its cost estimate; a deadline cancellation
    is treated as a straggler and the read is hedged to the next
    replica ({!Fleet.pick_replica}); failed or killed sessions fail
    over the same way; a shard with no live replica left makes the
    query a tagged partial. [kills] unplug chosen devices at chosen
    global times mid-workload — the chaos sweeps of the acceptance
    tests and E19's availability-under-failure rows. *)

type spec = {
  clients : int;
  queries_per_client : int;
  theta : float;  (** Zipf skew over the cost-ranked mix *)
  seed : int;
  mix : (string * string) list;  (** (name, sql) *)
  deadline_factor : float;
      (** sub-query deadline = factor × max(estimate, 1 ms) × clients
          on the serving device's clock — the straggler detector that
          triggers hedged reads. Armed only when the hedge has
          somewhere to go (an untried live replica, or a further shard
          for a roaming read): a deadline with no alternative would
          turn load into spurious unavailability. *)
}

val default_spec : spec
(** 8 clients, 4 queries each, theta 1.1, seed 42, the demo mix,
    deadline factor 8. *)

type kill = {
  kill_at_us : float;  (** global simulated time of the unplug *)
  kill_shard : int;
  kill_replica : int;
}

type query_outcome = {
  qo_client : int;
  qo_name : string;
  qo_rows : Value.t array list;  (** merged, remapped, post-processed *)
  qo_complete : bool;
  qo_unreachable : int list;
  qo_latency_us : float;
}

type summary = {
  shards : int;
  replicas : int;
  clients : int;
  completed : int;  (** queries with a complete result *)
  partial : int;  (** queries degraded to a tagged partial *)
  failovers : int;  (** sub-queries retried after an error or a dead device *)
  hedges : int;  (** sub-queries hedged after a deadline cancellation *)
  unreachable_subs : int;  (** sub-queries no replica could serve *)
  makespan_us : float;
  throughput_qps : float;
  latency_p50_us : float;
  latency_p95_us : float;
  availability : float;  (** completed / (completed + partial) *)
}

val run :
  ?policy:Scheduler.policy ->
  ?quantum_us:float ->
  ?kills:kill list ->
  ?on_outcome:(query_outcome -> unit) ->
  Fleet.t ->
  spec ->
  summary
(** Every query terminates: completed, or partial once every replica
    of some shard is dead or past its retry budget. Deterministic for
    a given fleet, spec and kill list. *)

val pp_summary : Format.formatter -> summary -> unit
