module Value = Ghost_kernel.Value
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Device = Ghost_device.Device
module Bind = Ghost_sql.Bind
module Spy = Ghost_public.Spy
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Privacy = Ghostdb.Privacy

(** A fault-tolerant fleet of GhostDB devices.

    The paper's single 64 KiB smart-USB stick cannot serve production
    traffic. This module partitions a tree schema's {e root} (fact)
    table across N shards — by hash or by contiguous range of the root
    id — with a configurable replication factor R, and runs every
    query scatter–gather: each shard executes the query over its slice
    of the root rows (dimension tables are replicated everywhere), and
    the untrusted terminal merges the per-shard outputs.

    {b Re-keying.} Each shard's root slice is re-keyed to the dense
    [1..k] ids the loader requires, {e order-preserving}: local id
    order equals global id order, so monotone root-key predicates map
    to local ranges and the terminal can translate local ids back with
    a per-shard sorted array. Root ids are already spy-visible in the
    single-device protocol (Pre-filter id lists cross the USB link in
    the clear), so holding this mapping on the untrusted side reveals
    nothing new — see {!audit}.

    {b Robustness runtime.} Each replica device carries a health state
    machine (healthy → suspect → dead) driven by transport
    error/timeout counters; suspects are probed with a deterministic
    protocol ack (riding the device's seeded USB fault stream) before
    they serve again. A replica that exceeds a deadline-derived
    straggler budget is cancelled and the read is {e hedged} to the
    next replica; transport errors fail over the same way. When every
    replica of a shard is down, {!query} degrades gracefully: it
    returns the merged rows of the reachable shards, tagged with the
    unreachable shard ids.

    {b Merging and aggregates.} Shards execute the query with its
    aggregate / ORDER BY / LIMIT stripped, shipping base rows over the
    secure display channel; the trusted terminal side re-applies them
    over the merged multiset (exactly {!Ghost_sql.Aggregate.apply} and
    {!Ghost_sql.Postproc.apply}, the same functions the device
    executor uses). A partial result therefore aggregates reachable
    shards only — the [complete] flag says so.

    With one shard, one replica and no fault injection, {!query} is a
    pass-through to the single-instance path: rows, trace and clock
    stay bit-identical to the seed. *)

type partitioning =
  | Hash  (** multiplicative hash of the root id *)
  | Range  (** contiguous root-id ranges, near-equal cardinality *)

type topology = {
  shards : int;  (** N, partitions of the root table *)
  replicas : int;  (** R, identical devices per shard *)
  partitioning : partitioning;
}

val default_topology : topology
(** One shard, one replica, {!Range} — the paper's single device. *)

type robustness = {
  suspect_after : int;
      (** consecutive transport failures before healthy → suspect *)
  dead_after : int;
      (** consecutive transport failures before → dead *)
  hedge_factor : float;
      (** straggler budget = factor × the planner's time estimate; a
          replica still running past it is cancelled and the read
          hedged to the next replica (only when one is live) *)
}

val default_robustness : robustness
(** Suspect after 1 failure, dead after 3, hedge at 4× the estimate. *)

type health = Healthy | Suspect | Dead

val health_name : health -> string

type t

val create :
  ?device_config:Device.config ->
  ?per_device_config:(shard:int -> replica:int -> Device.config) ->
  ?index_hidden_fks:bool ->
  ?topology:topology ->
  ?robustness:robustness ->
  Schema.t ->
  (string * Relation.tuple list) list ->
  t
(** Partitions the rows and builds one {!Ghost_db} instance per
    (shard, replica). [per_device_config] gives each device its own
    config — per-device fault profiles for chaos sweeps — and wins
    over [device_config]. Raises [Invalid_argument] on a non-positive
    shard or replica count, or when the root table has fewer rows than
    there are shards. *)

val topology : t -> topology
val schema : t -> Schema.t
val shard_count : t -> int
val replica_count : t -> int

val db : t -> shard:int -> replica:int -> Ghost_db.t
(** The instance backing one replica device. *)

val globals : t -> shard:int -> int array
(** The shard's assigned global root ids, ascending: local id [l]
    (dense, 1-based) stands for global id [(globals t ~shard).(l-1)].
    Held by the untrusted merge layer. *)

val shard_of_global : t -> int -> int
(** Which shard owns a global root id. *)

val bind : t -> string -> Bind.query
(** Parse + resolve a SELECT against the fleet's schema. *)

val scatters : t -> Bind.query -> bool
(** True when the query's FROM list includes the partitioned root
    table, so it must scatter to every shard. A query over dimension
    tables only (fully replicated) routes to a single shard and roams
    to the next shard when no replica there serves. *)

(** {2 Health runtime}

    Shared by {!query} and the multi-device workload driver
    ({!Fleet_driver}): both report transport outcomes here and select
    replicas through {!pick_replica}. *)

val health : t -> shard:int -> replica:int -> health

val kill : t -> shard:int -> replica:int -> unit
(** Chaos switch: the device drops off the bus — probes and attempts
    against it fail without touching its clock, and its state goes
    dead. Queries in flight on a scheduler must be cancelled by the
    caller (the driver does). *)

val revive : t -> shard:int -> replica:int -> unit
(** Plugs the device back in as suspect: it must pass a probe before
    serving again. *)

val note_success : t -> shard:int -> replica:int -> unit
val note_error : t -> shard:int -> replica:int -> unit
val note_timeout : t -> shard:int -> replica:int -> unit

val probe : t -> shard:int -> replica:int -> bool
(** One protocol-ack probe ({!Device.emit_ack}), metered on the
    replica's clock and subject to its seeded USB fault model; updates
    the health machine with the outcome. False when forced down. *)

val pick_replica : t -> shard:int -> exclude:int list -> int option
(** The replica the shard's next read should go to: healthy replicas
    first, then suspects (each probed once before being returned), in
    a deterministically rotated order; dead and excluded replicas are
    skipped. [None] when no replica is reachable. *)

val set_chaos_hook : t -> (shard:int -> replica:int -> unit) option -> unit
(** Test hook, invoked just before every execution attempt of
    {!query} with the target device — a chaos test kills devices at
    exact points of the scatter. *)

type replica_stats = {
  r_state : health;
  r_errors : int;  (** transport errors observed *)
  r_timeouts : int;  (** straggler/deadline timeouts observed *)
  r_integrity_failures : int;
      (** reads that raised a persistent {!Flash.Integrity_error} —
          damaged cells, not a flaky bus; the replica stays wrong
          until repaired *)
  r_probes : int;
  r_probe_failures : int;
}

val replica_stats : t -> shard:int -> replica:int -> replica_stats

(** {2 Scatter–gather plumbing}

    Exposed for the workload driver, which scatters through per-device
    schedulers instead of the serial path of {!query}. *)

val subquery : t -> shard:int -> Bind.query -> Bind.query
(** The query one shard executes: aggregate / ORDER BY / LIMIT
    stripped, root-key predicates rewritten through the shard's
    order-preserving id map (an empty local range becomes a
    never-matching predicate). *)

val remap : t -> Bind.query -> shard:int -> Value.t array list -> Value.t array list
(** Translates root-key projection columns of a shard's output back to
    global ids. *)

val merge : t -> Bind.query -> Value.t array list -> Value.t array list
(** Applies the query's aggregate, ORDER BY and LIMIT to the
    concatenated (already remapped) shard outputs. *)

(** {2 Queries} *)

type shard_report = {
  sr_shard : int;
  sr_served_by : int option;  (** replica that answered; [None] = unreachable *)
  sr_attempts : int;  (** execution attempts, including hedges *)
  sr_hedged : bool;  (** a straggler timeout moved the read to a replica *)
  sr_failed_over : bool;  (** a transport error moved the read to a replica *)
  sr_elapsed_us : float;
      (** sequential device time the shard's read consumed, wasted
          straggler budgets included *)
}

type result = {
  rows : Value.t array list;
  row_count : int;
  complete : bool;  (** false when any shard was unreachable *)
  unreachable : int list;  (** shard ids that no replica could serve *)
  elapsed_us : float;
      (** fleet latency: max over shards (devices work in parallel) *)
  shard_reports : shard_report list;
}

val query : t -> ?exact_post:bool -> ?bloom_fpr:float -> string -> result
(** Scatter–gather with hedging, failover and graceful degradation, as
    described above. Single shard + single replica is a pass-through
    to {!Ghost_db.query} (bit-identical to the seed path). A replica
    whose read raises a persistent {!Flash.Integrity_error} is treated
    like a transport failure — the read fails over and the health
    machine demotes it — but is counted separately
    ([r_integrity_failures]): its damage persists until a repair. *)

(** {2 Anti-entropy and repair}

    Replicas of one shard are loaded from identical rows by the
    deterministic loader, so their structure pages are bit-identical.
    {!anti_entropy} exploits that: each replica's structure pages are
    scanned once (full-page reads on its own clock, data-independent
    order), folded into a CRC-32 region digest and trailer-checked.
    A replica with failing trailers — or a digest diverging from a
    clean peer's — is rebuilt wholesale from that peer's logical
    snapshot through the phased loader, exactly like a reorganize. *)

type repair_report = {
  rr_shard : int;
  rr_replica : int;
  rr_pages : int;  (** structure pages scanned *)
  rr_bad_pages : int;  (** pages whose verification failed *)
  rr_repaired : bool;  (** false when no clean peer was reachable *)
  rr_repair_us : float;
      (** device time of the rebuild: peer snapshot + fresh load *)
}

val anti_entropy : t -> repair_report list
(** One scan-and-repair round over every shard with at least two
    replicas (forced-down replicas are skipped). Returns one report
    per replica found corrupt or divergent, in (shard, replica)
    order. A repaired replica re-enters as suspect — it must pass a
    probe before serving again — and its device's [repair_rebuilds]
    counter is bumped. *)

val repair : t -> shard:int -> replica:int -> from:int -> float
(** Force-rebuild one replica from a named peer, returning the device
    time spent. Raises [Invalid_argument] when [replica = from], an
    index is out of range, or the peer has pending deletes (a
    compacting snapshot would renumber root ids and desynchronize the
    shard's global id map — reorganize the peer first). *)

(** {2 Observability} *)

val audits : t -> ((int * int) * Privacy.verdict) list
(** Per-device audit, keyed by (shard, replica). *)

val audit : t -> Privacy.verdict
(** The fleet-level audit: every device's boundary trace must pass the
    single-device auditor — each device sees the query text and its
    own visible-data accesses, nothing else, and the merge layer only
    handles data the spy model already concedes (visible columns and
    root-id lists). Violations are prefixed with their device. *)

val spy_reports : t -> ((int * int) * Spy.report) list
val clear_traces : t -> unit

val set_metrics : t -> Ghost_metrics.Metrics.t option -> unit
(** Attaches one registry to every device (per-device totals are
    flushed into shared counters; see {!Device.set_metrics}). *)

val flush_metrics : t -> unit
