module Value = Ghost_kernel.Value
module Codec = Ghost_kernel.Codec
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Predicate = Ghost_relation.Predicate
module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device
module Bind = Ghost_sql.Bind
module Aggregate = Ghost_sql.Aggregate
module Postproc = Ghost_sql.Postproc
module Spy = Ghost_public.Spy
module Ghost_db = Ghostdb.Ghost_db
module Catalog = Ghostdb.Catalog
module Reorganize = Ghostdb.Reorganize
module Exec = Ghostdb.Exec
module Planner = Ghostdb.Planner
module Cost = Ghostdb.Cost
module Privacy = Ghostdb.Privacy

type partitioning = Hash | Range

type topology = {
  shards : int;
  replicas : int;
  partitioning : partitioning;
}

let default_topology = { shards = 1; replicas = 1; partitioning = Range }

type robustness = {
  suspect_after : int;
  dead_after : int;
  hedge_factor : float;
}

let default_robustness = { suspect_after = 1; dead_after = 3; hedge_factor = 4.0 }

type health = Healthy | Suspect | Dead

let health_name = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Dead -> "dead"

type replica = {
  mutable rep_db : Ghost_db.t;  (* swapped wholesale by a repair *)
  rep_shard : int;
  rep_index : int;
  mutable state : health;
  mutable consecutive_failures : int;
  mutable forced_down : bool;
  mutable errors : int;
  mutable timeouts : int;
  mutable integrity_failures : int;
  mutable probes : int;
  mutable probe_failures : int;
}

type shard = {
  sh_index : int;
  sh_globals : int array;  (* ascending; local l <-> sh_globals.(l-1) *)
  sh_replicas : replica array;
}

type t = {
  f_schema : Schema.t;
  f_topology : topology;
  f_robustness : robustness;
  f_shards : shard array;
  f_index_hidden_fks : bool option;  (* replayed by replica rebuilds *)
  root_name : string;
  root_key : string;
  n_root : int;
  mutable rr : int;  (* deterministic replica rotation *)
  mutable chaos_hook : (shard:int -> replica:int -> unit) option;
  single : Ghost_db.t option;  (* N = 1, R = 1 pass-through *)
}

(* ---------- partitioning ---------- *)

(* splitmix-style finalizer: deterministic, spreads consecutive ids *)
let hash_id id =
  let h = id * 0x9E3779B97F4A7 in
  let h = h lxor (h lsr 31) in
  let h = h * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let shard_of_id partitioning ~shards ~n_root id =
  match partitioning with
  | Hash -> hash_id id mod shards
  | Range -> min (shards - 1) ((id - 1) * shards / n_root)

let create ?device_config ?per_device_config ?index_hidden_fks
    ?(topology = default_topology) ?(robustness = default_robustness) schema rows =
  if topology.shards <= 0 then invalid_arg "Fleet.create: shards <= 0";
  if topology.replicas <= 0 then invalid_arg "Fleet.create: replicas <= 0";
  let root = Schema.root schema in
  let root_rows =
    match List.assoc_opt root.Schema.name rows with
    | Some r -> r
    | None -> invalid_arg "Fleet.create: no rows for the root table"
  in
  let n_root = List.length root_rows in
  if n_root < topology.shards then
    invalid_arg "Fleet.create: fewer root rows than shards";
  let config_for ~shard ~replica =
    match per_device_config with
    | Some f -> Some (f ~shard ~replica)
    | None -> device_config
  in
  let id_of tuple =
    match tuple.(0) with
    | Value.Int id -> id
    | _ -> invalid_arg "Fleet.create: root key is not an integer"
  in
  (* Per shard: assigned root rows in ascending global-id order,
     re-keyed to dense 1..k. A single shard keeps the caller's rows
     untouched, so the one-device fleet is bit-identical to the seed
     construction. *)
  let shard_slices =
    if topology.shards = 1 then
      [| (Array.of_list (List.map id_of root_rows), root_rows) |]
    else begin
      let buckets = Array.make topology.shards [] in
      List.iter
        (fun tuple ->
           let id = id_of tuple in
           let s =
             shard_of_id topology.partitioning ~shards:topology.shards ~n_root id
           in
           buckets.(s) <- (id, tuple) :: buckets.(s))
        root_rows;
      Array.map
        (fun bucket ->
           let sorted =
             List.sort (fun (a, _) (b, _) -> compare a b) (List.rev bucket)
           in
           let globals = Array.of_list (List.map fst sorted) in
           let locals =
             List.mapi
               (fun i (_, tuple) ->
                  let local = Array.copy tuple in
                  local.(0) <- Value.Int (i + 1);
                  local)
               sorted
           in
           (globals, locals))
        buckets
    end
  in
  let other_rows = List.remove_assoc root.Schema.name rows in
  let shards =
    Array.mapi
      (fun s (globals, local_rows) ->
         let shard_rows = (root.Schema.name, local_rows) :: other_rows in
         let replicas =
           Array.init topology.replicas (fun r ->
             {
               rep_db =
                 Ghost_db.of_schema
                   ?device_config:(config_for ~shard:s ~replica:r)
                   ?index_hidden_fks schema shard_rows;
               rep_shard = s;
               rep_index = r;
               state = Healthy;
               consecutive_failures = 0;
               forced_down = false;
               errors = 0;
               timeouts = 0;
               integrity_failures = 0;
               probes = 0;
               probe_failures = 0;
             })
         in
         { sh_index = s; sh_globals = globals; sh_replicas = replicas })
      shard_slices
  in
  let single =
    if topology.shards = 1 && topology.replicas = 1 then
      Some shards.(0).sh_replicas.(0).rep_db
    else None
  in
  {
    f_schema = schema;
    f_topology = topology;
    f_robustness = robustness;
    f_shards = shards;
    f_index_hidden_fks = index_hidden_fks;
    root_name = root.Schema.name;
    root_key = root.Schema.key;
    n_root;
    rr = 0;
    chaos_hook = None;
    single;
  }

let topology t = t.f_topology
let schema t = t.f_schema
let shard_count t = t.f_topology.shards
let replica_count t = t.f_topology.replicas

let replica t ~shard ~replica =
  if shard < 0 || shard >= Array.length t.f_shards then
    invalid_arg "Fleet: shard out of range";
  let s = t.f_shards.(shard) in
  if replica < 0 || replica >= Array.length s.sh_replicas then
    invalid_arg "Fleet: replica out of range";
  s.sh_replicas.(replica)

let db t ~shard ~replica:r = (replica t ~shard ~replica:r).rep_db
let globals t ~shard = Array.copy t.f_shards.(shard).sh_globals

let shard_of_global t id =
  shard_of_id t.f_topology.partitioning ~shards:t.f_topology.shards
    ~n_root:t.n_root id

let bind t sql = Bind.bind t.f_schema sql

let scatters t (q : Bind.query) = List.mem t.root_name q.Bind.tables

(* ---------- health runtime ---------- *)

let health t ~shard ~replica:r = (replica t ~shard ~replica:r).state

let kill t ~shard ~replica:r =
  let rep = replica t ~shard ~replica:r in
  rep.forced_down <- true;
  rep.state <- Dead

let revive t ~shard ~replica:r =
  let rep = replica t ~shard ~replica:r in
  rep.forced_down <- false;
  rep.state <- Suspect;
  rep.consecutive_failures <- 0

let note_failure t rep =
  rep.consecutive_failures <- rep.consecutive_failures + 1;
  if rep.consecutive_failures >= t.f_robustness.dead_after then rep.state <- Dead
  else if rep.consecutive_failures >= t.f_robustness.suspect_after then
    rep.state <- Suspect

let recover_health rep =
  rep.consecutive_failures <- 0;
  if not rep.forced_down then rep.state <- Healthy

let note_success t ~shard ~replica:r = recover_health (replica t ~shard ~replica:r)

let note_error t ~shard ~replica:r =
  let rep = replica t ~shard ~replica:r in
  rep.errors <- rep.errors + 1;
  note_failure t rep

let note_timeout t ~shard ~replica:r =
  let rep = replica t ~shard ~replica:r in
  rep.timeouts <- rep.timeouts + 1;
  note_failure t rep

let probe_replica t rep =
  rep.probes <- rep.probes + 1;
  if rep.forced_down then begin
    rep.probe_failures <- rep.probe_failures + 1;
    note_failure t rep;
    false
  end
  else
    match Device.emit_ack (Ghost_db.device rep.rep_db) with
    | () ->
      recover_health rep;
      true
    | exception Device.Usb_error _ ->
      rep.probe_failures <- rep.probe_failures + 1;
      note_failure t rep;
      false

let probe t ~shard ~replica:r = probe_replica t (replica t ~shard ~replica:r)

let pick_replica t ~shard ~exclude =
  let s = t.f_shards.(shard) in
  let n = Array.length s.sh_replicas in
  let start = t.rr mod n in
  t.rr <- t.rr + 1;
  let rotated = List.init n (fun i -> (start + i) mod n) in
  let in_state st =
    List.filter
      (fun i -> (not (List.mem i exclude)) && s.sh_replicas.(i).state = st)
      rotated
  in
  let rec first_live = function
    | [] -> None
    | i :: rest ->
      let rep = s.sh_replicas.(i) in
      if rep.state = Healthy then Some i
      else if probe_replica t rep then Some i
      else first_live rest
  in
  first_live (in_state Healthy @ in_state Suspect)

let set_chaos_hook t hook = t.chaos_hook <- hook

type replica_stats = {
  r_state : health;
  r_errors : int;
  r_timeouts : int;
  r_integrity_failures : int;
  r_probes : int;
  r_probe_failures : int;
}

let replica_stats t ~shard ~replica:r =
  let rep = replica t ~shard ~replica:r in
  {
    r_state = rep.state;
    r_errors = rep.errors;
    r_timeouts = rep.timeouts;
    r_integrity_failures = rep.integrity_failures;
    r_probes = rep.probes;
    r_probe_failures = rep.probe_failures;
  }

(* ---------- scatter-gather plumbing ---------- *)

(* number of assigned global ids <= v *)
let rank_le g v =
  let lo = ref 0 and hi = ref (Array.length g) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if g.(mid) <= v then lo := mid + 1 else hi := mid
  done;
  !lo

let local_of g v =
  let k = rank_le g v in
  if k > 0 && g.(k - 1) = v then Some k else None

(* Root-key predicates, rewritten through the order-preserving id map:
   local order equals global order, so monotone comparisons become
   local ranges via the rank of the bound among the shard's assigned
   ids. An empty local range becomes [In []] (never matches). *)
let rewrite_cmp g (cmp : Predicate.comparison) =
  let n = Array.length g in
  let never = Predicate.In [] in
  let always = Predicate.Ge (Value.Int 1) in
  match cmp with
  | Predicate.Eq (Value.Int v) -> (
    match local_of g v with
    | Some l -> Predicate.Eq (Value.Int l)
    | None -> never)
  | Predicate.Ne (Value.Int v) -> (
    match local_of g v with
    | Some l -> Predicate.Ne (Value.Int l)
    | None -> always)
  | Predicate.Lt (Value.Int v) ->
    let k = rank_le g (v - 1) in
    if k = 0 then never else Predicate.Le (Value.Int k)
  | Predicate.Le (Value.Int v) ->
    let k = rank_le g v in
    if k = 0 then never else Predicate.Le (Value.Int k)
  | Predicate.Gt (Value.Int v) ->
    let k = rank_le g v in
    if k >= n then never else Predicate.Ge (Value.Int (k + 1))
  | Predicate.Ge (Value.Int v) ->
    let k = rank_le g (v - 1) in
    if k >= n then never else Predicate.Ge (Value.Int (k + 1))
  | Predicate.Between (Value.Int a, Value.Int b) ->
    let lo = rank_le g (a - 1) + 1 in
    let hi = rank_le g b in
    if lo > hi then never else Predicate.Between (Value.Int lo, Value.Int hi)
  | Predicate.In vs ->
    Predicate.In
      (List.filter_map
         (function
           | Value.Int v -> Option.map (fun l -> Value.Int l) (local_of g v)
           | _ -> None)
         vs)
  | other -> other

let subquery t ~shard (q : Bind.query) =
  let g = t.f_shards.(shard).sh_globals in
  let selections =
    List.map
      (fun (p : Predicate.t) ->
         if p.Predicate.table = t.root_name && p.Predicate.column = t.root_key
         then { p with Predicate.cmp = rewrite_cmp g p.Predicate.cmp }
         else p)
      q.Bind.selections
  in
  { q with Bind.selections; aggregate = None; order_by = []; limit = None }

let remap t (q : Bind.query) ~shard rows =
  let g = t.f_shards.(shard).sh_globals in
  let positions =
    List.mapi (fun i p -> (i, p)) q.Bind.projections
    |> List.filter_map (fun (i, (tbl, col)) ->
         if tbl = t.root_name && col = t.root_key then Some i else None)
  in
  if positions = [] then rows
  else
    List.map
      (fun row ->
         let row = Array.copy row in
         List.iter
           (fun i ->
              match row.(i) with
              | Value.Int l when l >= 1 && l <= Array.length g ->
                row.(i) <- Value.Int g.(l - 1)
              | _ -> ())
           positions;
         row)
      rows

let merge _t (q : Bind.query) rows =
  let rows =
    match q.Bind.aggregate with
    | Some spec -> Aggregate.apply spec rows
    | None -> rows
  in
  Postproc.apply ~order_by:q.Bind.order_by ~limit:q.Bind.limit rows

(* ---------- queries ---------- *)

type shard_report = {
  sr_shard : int;
  sr_served_by : int option;
  sr_attempts : int;
  sr_hedged : bool;
  sr_failed_over : bool;
  sr_elapsed_us : float;
}

type result = {
  rows : Value.t array list;
  row_count : int;
  complete : bool;
  unreachable : int list;
  elapsed_us : float;
  shard_reports : shard_report list;
}

type attempt_failure = Straggler | Transport | Integrity

(* One execution attempt on one replica, bounded by [budget_us] of
   simulated device time (infinite when no live alternative remains:
   better a slow answer than none). *)
let attempt t rep q ?exact_post ?bloom_fpr ~budget_us () =
  (match t.chaos_hook with
   | Some f -> f ~shard:rep.rep_shard ~replica:rep.rep_index
   | None -> ());
  if rep.forced_down then Error Transport
  else begin
    let db = rep.rep_db in
    let device = Ghost_db.device db in
    let t0 = Device.elapsed_us device in
    match
      let plan, _est = Planner.best (Ghost_db.catalog db) q in
      let machine =
        Exec.start ?exact_post ?bloom_fpr ~quantum_us:budget_us
          (Ghost_db.catalog db) (Ghost_db.public db) plan
      in
      match Exec.step machine with
      | Exec.Finished r -> `Done r
      | Exec.Yielded ->
        Exec.cancel machine;
        `Straggler
    with
    | `Done r -> Ok (r, Device.elapsed_us device -. t0)
    | `Straggler -> Error Straggler
    (* A persistent Integrity_error (the executor already retried once
       past the cache): this replica's cells are damaged — distinct
       from a transport fault, because the copy stays wrong until
       repaired. *)
    | exception Flash.Integrity_error _ -> Error Integrity
    | exception _ -> Error Transport
  end

let estimate_us rep q =
  let db = rep.rep_db in
  match Planner.best (Ghost_db.catalog db) q with
  | _, est -> est.Cost.est_time_us
  | exception _ -> infinity

let exec_shard t shard_idx q ?exact_post ?bloom_fpr () =
  let tried = ref [] in
  let attempts = ref 0 in
  let hedged = ref false in
  let failed_over = ref false in
  let elapsed = ref 0. in
  let rec go () =
    match pick_replica t ~shard:shard_idx ~exclude:!tried with
    | None -> (None, [])
    | Some r ->
      tried := r :: !tried;
      let rep = t.f_shards.(shard_idx).sh_replicas.(r) in
      (* A straggler budget only makes sense when another replica
         could take over. *)
      let alternative =
        pick_replica t ~shard:shard_idx ~exclude:!tried <> None
      in
      let budget_us =
        if alternative then
          Float.max 1.0 (t.f_robustness.hedge_factor *. estimate_us rep q)
        else infinity
      in
      incr attempts;
      let device = Ghost_db.device rep.rep_db in
      let t0 = Device.elapsed_us device in
      match attempt t rep q ?exact_post ?bloom_fpr ~budget_us () with
      | Ok (r_exec, dt) ->
        recover_health rep;
        elapsed := !elapsed +. dt;
        (Some r, r_exec.Exec.rows)
      | Error Straggler ->
        rep.timeouts <- rep.timeouts + 1;
        note_failure t rep;
        hedged := true;
        elapsed := !elapsed +. (Device.elapsed_us device -. t0);
        go ()
      | Error Transport ->
        rep.errors <- rep.errors + 1;
        note_failure t rep;
        failed_over := true;
        elapsed := !elapsed +. (Device.elapsed_us device -. t0);
        go ()
      | Error Integrity ->
        (* Served-corrupt replica: fail over like a transport error and
           feed the health machine, so persistent corruption demotes it
           to suspect (and eventually dead) — probed before readmission,
           rebuilt by anti-entropy. *)
        rep.integrity_failures <- rep.integrity_failures + 1;
        note_failure t rep;
        failed_over := true;
        elapsed := !elapsed +. (Device.elapsed_us device -. t0);
        go ()
  in
  let served_by, rows = go () in
  ( {
      sr_shard = shard_idx;
      sr_served_by = served_by;
      sr_attempts = !attempts;
      sr_hedged = !hedged;
      sr_failed_over = !failed_over;
      sr_elapsed_us = !elapsed;
    },
    rows )

let query t ?exact_post ?bloom_fpr sql =
  match t.single with
  | Some db when t.chaos_hook = None
              && t.f_shards.(0).sh_replicas.(0).forced_down = false ->
    (* The seed path, bit-identical: one device, no fleet machinery. *)
    let r = Ghost_db.query db ?exact_post ?bloom_fpr sql in
    {
      rows = r.Exec.rows;
      row_count = r.Exec.row_count;
      complete = true;
      unreachable = [];
      elapsed_us = r.Exec.elapsed_us;
      shard_reports =
        [ { sr_shard = 0; sr_served_by = Some 0; sr_attempts = 1;
            sr_hedged = false; sr_failed_over = false;
            sr_elapsed_us = r.Exec.elapsed_us } ];
    }
  | _ ->
    let q = bind t sql in
    (* A query over the root's subtree scatters to every shard; one
       that touches only (fully replicated) dimension tables routes to
       a single shard, roaming to the next when no replica serves. *)
    let scatter = List.mem t.root_name q.Bind.tables in
    let reports =
      if scatter then
        Array.to_list
          (Array.mapi
             (fun s _ ->
                let sub = subquery t ~shard:s q in
                let report, rows = exec_shard t s sub ?exact_post ?bloom_fpr () in
                (report, remap t q ~shard:s rows))
             t.f_shards)
      else begin
        let n = Array.length t.f_shards in
        let start = t.rr mod n in
        t.rr <- t.rr + 1;
        let sub = subquery t ~shard:0 q in
        let rec go acc = function
          | [] -> List.rev acc
          | s :: rest ->
            let report, rows = exec_shard t s sub ?exact_post ?bloom_fpr () in
            let acc = (report, rows) :: acc in
            if report.sr_served_by = None then go acc rest else List.rev acc
        in
        go [] (List.init n (fun i -> (start + i) mod n))
      end
    in
    let merged = merge t q (List.concat_map snd reports) in
    let served = List.exists (fun (r, _) -> r.sr_served_by <> None) reports in
    let unreachable =
      if scatter then
        List.filter_map
          (fun (r, _) -> if r.sr_served_by = None then Some r.sr_shard else None)
          reports
      else if served then []
      else List.init (Array.length t.f_shards) (fun i -> i)
    in
    {
      rows = merged;
      row_count = List.length merged;
      complete = unreachable = [];
      unreachable;
      elapsed_us =
        (* scattered shards work in parallel; a roaming read hops
           devices sequentially *)
        (if scatter then
           List.fold_left
             (fun acc (r, _) -> Float.max acc r.sr_elapsed_us)
             0. reports
         else List.fold_left (fun acc (r, _) -> acc +. r.sr_elapsed_us) 0. reports);
      shard_reports = List.map fst reports;
    }

(* ---------- anti-entropy and repair ---------- *)

type repair_report = {
  rr_shard : int;
  rr_replica : int;
  rr_pages : int;
  rr_bad_pages : int;
  rr_repaired : bool;
  rr_repair_us : float;
}

(* One data-independent pass over a replica's structure pages: every
   page is read in full (charged to the replica's own device clock),
   folded into a running CRC-32 digest, and checked — against its
   trailer when the region is authenticated, against the injected-flip
   table otherwise. Returns (pages scanned, bad pages, digest). *)
let scan_replica rep =
  let db = rep.rep_db in
  let flash = Device.flash (Ghost_db.device db) in
  let pages = Catalog.structure_pages (Ghost_db.catalog db) in
  let digest = ref 0 and bad = ref 0 in
  List.iter
    (fun page ->
       let img = Flash.read_page flash page in
       digest := Codec.crc32 ~crc:!digest img ~pos:0 ~len:(Bytes.length img);
       let ok =
         if Flash.authenticated flash then
           match Flash.verify_image flash ~page img with
           | () -> true
           | exception Flash.Integrity_error _ -> false
         else Flash.page_errors flash page = 0
       in
       if not ok then incr bad)
    pages;
  (List.length pages, !bad, !digest)

(* Rebuild [victim] wholesale from [peer]'s logical snapshot, reusing
   the loader (same phased build as a reorganize). The peer must have
   no pending tombstones: a compacting snapshot would renumber root
   ids and desynchronize the shard's order-preserving global id map. *)
let rebuild_from t victim peer =
  if Ghost_db.tombstone_count peer.rep_db <> 0 then
    invalid_arg "Fleet.repair: peer has pending deletes; reorganize it first";
  let peer_device = Ghost_db.device peer.rep_db in
  let t0 = Device.elapsed_us peer_device in
  let rows =
    Reorganize.snapshot (Ghost_db.catalog peer.rep_db)
      (Ghost_db.public peer.rep_db)
  in
  let peer_us = Device.elapsed_us peer_device -. t0 in
  let fresh =
    Ghost_db.of_schema
      ~device_config:(Device.config (Ghost_db.device victim.rep_db))
      ?index_hidden_fks:t.f_index_hidden_fks t.f_schema rows
  in
  Ghost_db.set_metrics fresh (Ghost_db.metrics victim.rep_db);
  victim.rep_db <- fresh;
  victim.consecutive_failures <- 0;
  (* rebuilt but not yet trusted: a probe must pass before the picker
     treats it as healthy again *)
  victim.state <- (if victim.forced_down then Dead else Suspect);
  Device.note_repair (Ghost_db.device fresh);
  peer_us +. Device.elapsed_us (Ghost_db.device fresh)

let repair t ~shard ~replica:victim_idx ~from =
  if from = victim_idx then invalid_arg "Fleet.repair: replica = from";
  let victim = replica t ~shard ~replica:victim_idx in
  let peer = replica t ~shard ~replica:from in
  rebuild_from t victim peer

let anti_entropy t =
  let reports = ref [] in
  Array.iteri
    (fun shard s ->
       let n = Array.length s.sh_replicas in
       if n >= 2 then begin
         let scans =
           Array.map
             (fun rep ->
                if rep.forced_down then None else Some (scan_replica rep))
             s.sh_replicas
         in
         (* the repair source: first reachable replica with every
            trailer intact and no pending tombstones *)
         let healthy =
           let rec find r =
             if r >= n then None
             else
               match scans.(r) with
               | Some (_, 0, _)
                 when Ghost_db.tombstone_count s.sh_replicas.(r).rep_db = 0 ->
                 Some r
               | _ -> find (r + 1)
           in
           find 0
         in
         Array.iteri
           (fun r rep ->
              match scans.(r) with
              | None -> ()
              | Some (pages, bad, digest) ->
                let diverged =
                  match healthy with
                  | Some h when h <> r -> (
                    match scans.(h) with
                    | Some (_, _, hd) -> digest <> hd
                    | None -> false)
                  | _ -> false
                in
                if bad > 0 || diverged then begin
                  let repaired, us =
                    match healthy with
                    | Some h when h <> r ->
                      (true, rebuild_from t rep s.sh_replicas.(h))
                    | _ -> (false, 0.)
                  in
                  reports :=
                    {
                      rr_shard = shard;
                      rr_replica = r;
                      rr_pages = pages;
                      rr_bad_pages = bad;
                      rr_repaired = repaired;
                      rr_repair_us = us;
                    }
                    :: !reports
                end)
           s.sh_replicas
       end)
    t.f_shards;
  List.rev !reports

(* ---------- observability ---------- *)

let fold_devices t f =
  Array.to_list t.f_shards
  |> List.concat_map (fun s ->
       Array.to_list s.sh_replicas
       |> List.map (fun rep -> f (rep.rep_shard, rep.rep_index) rep))

let audits t = fold_devices t (fun key rep -> (key, Ghost_db.audit rep.rep_db))

let audit t =
  let per_device = audits t in
  let violations =
    List.concat_map
      (fun ((s, r), (v : Privacy.verdict)) ->
         List.map
           (fun msg -> Printf.sprintf "shard %d replica %d: %s" s r msg)
           v.Privacy.violations)
      per_device
  in
  let sum f = List.fold_left (fun acc (_, v) -> acc + f v) 0 per_device in
  {
    Privacy.ok = violations = [];
    violations;
    outbound_payload_bytes =
      sum (fun (v : Privacy.verdict) -> v.Privacy.outbound_payload_bytes);
    inbound_bytes = sum (fun (v : Privacy.verdict) -> v.Privacy.inbound_bytes);
    queries_leaked =
      List.sort_uniq compare
        (List.concat_map
           (fun (_, (v : Privacy.verdict)) -> v.Privacy.queries_leaked)
           per_device);
    data_dependent_bits =
      List.fold_left
        (fun acc (_, (v : Privacy.verdict)) ->
           acc +. v.Privacy.data_dependent_bits)
        0. per_device;
    padding_bytes = sum (fun (v : Privacy.verdict) -> v.Privacy.padding_bytes);
  }

let spy_reports t =
  fold_devices t (fun key rep -> (key, Ghost_db.spy_report rep.rep_db))

let clear_traces t =
  ignore (fold_devices t (fun _ rep -> Ghost_db.clear_trace rep.rep_db))

let set_metrics t m =
  ignore (fold_devices t (fun _ rep -> Ghost_db.set_metrics rep.rep_db m))

let flush_metrics t =
  ignore (fold_devices t (fun _ rep -> Ghost_db.flush_metrics rep.rep_db))
