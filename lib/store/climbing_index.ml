module Value = Ghost_kernel.Value
module Codec = Ghost_kernel.Codec
module Cursor = Ghost_kernel.Cursor
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram
module Predicate = Ghost_relation.Predicate

let chunk_bytes = 256
let level_slot = 16  (* count u32 | off u64 | len u32 *)

type t = {
  flash : Flash.t;
  table : string;
  column : string option;
  levels : string array;
  dense : bool;
  entry_count : int;
  entry_width : int;
  directory : Pager.segment;
  keys : Pager.segment;  (* empty for dense *)
  lists : Pager.segment;
}

(* ---- full-key records (sorted mode) ---- *)

let tag_of_value = function
  | Value.Int _ -> 1
  | Value.Date _ -> 2
  | Value.Float _ -> 3
  | Value.Str _ -> 4
  | Value.Null -> invalid_arg "Climbing_index: NULL key"

let append_full_key buf v =
  Buffer.add_char buf (Char.chr (tag_of_value v));
  match v with
  | Value.Int i | Value.Date i ->
    let b = Bytes.create 8 in
    Codec.put_u64 b 0 i;
    Buffer.add_bytes buf b
  | Value.Float f ->
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 (Int64.bits_of_float f);
    Buffer.add_bytes buf b
  | Value.Str s -> Codec.put_string16 buf s
  | Value.Null -> assert false

let read_full_key reader off =
  let head = Pager.Reader.read reader ~off ~len:(min 3 (Pager.Reader.length reader - off)) in
  match Bytes.get_uint8 head 0 with
  | 1 ->
    let b = Pager.Reader.read reader ~off:(off + 1) ~len:8 in
    Value.Int (Codec.get_u64 b 0)
  | 2 ->
    let b = Pager.Reader.read reader ~off:(off + 1) ~len:8 in
    Value.Date (Codec.get_u64 b 0)
  | 3 ->
    let b = Pager.Reader.read reader ~off:(off + 1) ~len:8 in
    Value.Float (Int64.float_of_bits (Bytes.get_int64_be b 0))
  | 4 ->
    let len = (Bytes.get_uint8 head 1 lsl 8) lor Bytes.get_uint8 head 2 in
    Value.Str (Bytes.to_string (Pager.Reader.read reader ~off:(off + 3) ~len))
  | tag -> invalid_arg (Printf.sprintf "Climbing_index: corrupt key tag %d" tag)

(* ---- building ---- *)

let check_levels levels =
  if levels = [] then invalid_arg "Climbing_index: empty levels"

let append_locator buf ~count ~off ~len =
  let b = Bytes.create level_slot in
  Codec.put_u32 b 0 count;
  Codec.put_u64 b 4 off;
  Codec.put_u32 b 12 len;
  Buffer.add_bytes buf b

let encode_lists ~lists_buf lists =
  (* Returns the locator slots (as a closure appending them). *)
  Array.map
    (fun ids ->
       let off = Buffer.length lists_buf in
       let encoded = Id_list.encode ids in
       Buffer.add_string lists_buf encoded;
       (Array.length ids, off, String.length encoded))
    lists

let build_sorted flash ~table ~column ~levels entries =
  check_levels levels;
  let n_levels = List.length levels in
  let dir_buf = Buffer.create 4096 in
  let keys_buf = Buffer.create 4096 in
  let lists_buf = Buffer.create 4096 in
  let prev = ref None in
  List.iter
    (fun (v, lists) ->
       (match !prev with
        | Some p when Value.compare p v >= 0 ->
          invalid_arg "Climbing_index.build_sorted: entries not sorted/distinct"
        | Some _ | None -> ());
       prev := Some v;
       if Array.length lists <> n_levels then
         invalid_arg "Climbing_index.build_sorted: lists misaligned with levels";
       Buffer.add_bytes dir_buf (Value.key_prefix v);
       let key_off = Buffer.length keys_buf in
       append_full_key keys_buf v;
       let b = Bytes.create 8 in
       Codec.put_u64 b 0 key_off;
       Buffer.add_bytes dir_buf b;
       let locators = encode_lists ~lists_buf lists in
       Array.iter
         (fun (count, off, len) -> append_locator dir_buf ~count ~off ~len)
         locators)
    entries;
  {
    flash;
    table;
    column = Some column;
    levels = Array.of_list levels;
    dense = false;
    entry_count = List.length entries;
    entry_width = 24 + (level_slot * n_levels);
    directory = Pager.write_segment flash (Buffer.contents dir_buf);
    keys = Pager.write_segment flash (Buffer.contents keys_buf);
    lists = Pager.write_segment flash (Buffer.contents lists_buf);
  }

let build_dense flash ~table ~count ~levels lists_of_id =
  check_levels levels;
  let n_levels = List.length levels in
  let dir_buf = Buffer.create 4096 in
  let lists_buf = Buffer.create 4096 in
  for id = 1 to count do
    let lists = lists_of_id id in
    if Array.length lists <> n_levels then
      invalid_arg "Climbing_index.build_dense: lists misaligned with levels";
    let locators = encode_lists ~lists_buf lists in
    Array.iter
      (fun (cnt, off, len) -> append_locator dir_buf ~count:cnt ~off ~len)
      locators
  done;
  {
    flash;
    table;
    column = None;
    levels = Array.of_list levels;
    dense = true;
    entry_count = count;
    entry_width = level_slot * n_levels;
    directory = Pager.write_segment flash (Buffer.contents dir_buf);
    keys = { Pager.pages = [||]; length = 0 };
    lists = Pager.write_segment flash (Buffer.contents lists_buf);
  }

(* ---- introspection ---- *)

let table t = t.table
let column t = t.column
let levels t = Array.to_list t.levels

let level_pos t name =
  let rec loop i =
    if i >= Array.length t.levels then raise Not_found
    else if t.levels.(i) = name then i
    else loop (i + 1)
  in
  loop 0

let entry_count t = t.entry_count

let size_bytes t =
  t.directory.Pager.length + t.keys.Pager.length + t.lists.Pager.length

let directory_bytes t = t.directory.Pager.length + t.keys.Pager.length

let pages t =
  Array.to_list t.directory.Pager.pages
  @ Array.to_list t.keys.Pager.pages
  @ Array.to_list t.lists.Pager.pages

(* ---- lookups ---- *)

type locator = {
  loc_count : int;
  loc_off : int;
  loc_len : int;
}

let read_locator t dir_reader ~entry ~level =
  let base =
    (entry * t.entry_width) + (if t.dense then 0 else 24) + (level * level_slot)
  in
  let b = Pager.Reader.read dir_reader ~off:base ~len:level_slot in
  { loc_count = Codec.get_u32 b 0; loc_off = Codec.get_u64 b 4; loc_len = Codec.get_u32 b 12 }

let make_source t ~ram ?cache { loc_off; loc_len; _ } : Merge_union.source =
  fun () ->
    if loc_len = 0 then (Cursor.empty (), fun () -> ())
    else begin
      let reader =
        Pager.Reader.open_ ~ram ~buffer_bytes:chunk_bytes ?cache t.flash t.lists
      in
      (Id_list.cursor reader ~off:loc_off ~len:loc_len, fun () -> Pager.Reader.close reader)
    end

(* Compare the key of directory entry [i] against probe value [v]. *)
let compare_entry t ~dir_reader ~keys_reader i v =
  let prefix = Pager.Reader.read dir_reader ~off:(i * t.entry_width) ~len:16 in
  let c = Bytes.compare prefix (Value.key_prefix v) in
  if c <> 0 then c
  else begin
    let off_b = Pager.Reader.read dir_reader ~off:((i * t.entry_width) + 16) ~len:8 in
    let key = read_full_key keys_reader (Codec.get_u64 off_b 0) in
    Value.compare key v
  end

(* First entry index whose key is >= v (strict = false) or > v
   (strict = true). *)
let bound t ~dir_reader ~keys_reader ~strict v =
  let lo = ref 0 and hi = ref t.entry_count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = compare_entry t ~dir_reader ~keys_reader mid v in
    let before = if strict then c <= 0 else c < 0 in
    if before then lo := mid + 1 else hi := mid
  done;
  !lo

let with_dir_readers ~ram ?cache t f =
  if t.dense then invalid_arg "Climbing_index: sorted lookup on a dense index";
  Pager.with_reader ~ram ~buffer_bytes:chunk_bytes ?cache t.flash t.directory (fun dir ->
    Pager.with_reader ~ram ~buffer_bytes:chunk_bytes ?cache t.flash t.keys (fun keys ->
      f ~dir ~keys))

let lookup_eq ~ram ?cache t v ~level =
  let lvl = level_pos t level in
  with_dir_readers ~ram ?cache t (fun ~dir ~keys ->
    let i = bound t ~dir_reader:dir ~keys_reader:keys ~strict:false v in
    if i < t.entry_count && compare_entry t ~dir_reader:dir ~keys_reader:keys i v = 0
    then Some (make_source t ~ram ?cache (read_locator t dir ~entry:i ~level:lvl))
    else None)

let count_eq ~ram ?cache t v ~level =
  let lvl = level_pos t level in
  with_dir_readers ~ram ?cache t (fun ~dir ~keys ->
    let i = bound t ~dir_reader:dir ~keys_reader:keys ~strict:false v in
    if i < t.entry_count && compare_entry t ~dir_reader:dir ~keys_reader:keys i v = 0
    then (read_locator t dir ~entry:i ~level:lvl).loc_count
    else 0)

let range_sources ~ram ?cache t ~level ~first ~last_exclusive
    ?(exclude = fun _ -> false) () =
  with_dir_readers ~ram ?cache t (fun ~dir ~keys ->
    ignore keys;
    let rec collect i acc =
      if i >= last_exclusive then List.rev acc
      else if exclude i then collect (i + 1) acc
      else
        collect (i + 1)
          (make_source t ~ram ?cache (read_locator t dir ~entry:i ~level) :: acc)
    in
    collect first [])

let lookup_cmp ~ram ?cache t cmp ~level =
  let lvl = level_pos t level in
  let bounds f = with_dir_readers ~ram ?cache t f in
  match cmp with
  | Predicate.Eq v ->
    (match lookup_eq ~ram ?cache t v ~level with
     | Some s -> [ s ]
     | None -> [])
  | Predicate.In vs ->
    List.concat_map
      (fun v ->
         match lookup_eq ~ram ?cache t v ~level with
         | Some s -> [ s ]
         | None -> [])
      (List.sort_uniq Value.compare vs)
  | Predicate.Ne v ->
    let eq_idx =
      bounds (fun ~dir ~keys ->
        let i = bound t ~dir_reader:dir ~keys_reader:keys ~strict:false v in
        if i < t.entry_count && compare_entry t ~dir_reader:dir ~keys_reader:keys i v = 0
        then Some i
        else None)
    in
    range_sources ~ram ?cache t ~level:lvl ~first:0 ~last_exclusive:t.entry_count
      ~exclude:(fun i -> Some i = eq_idx)
      ()
  | Predicate.Lt v ->
    let last = bounds (fun ~dir ~keys -> bound t ~dir_reader:dir ~keys_reader:keys ~strict:false v) in
    range_sources ~ram ?cache t ~level:lvl ~first:0 ~last_exclusive:last ()
  | Predicate.Le v ->
    let last = bounds (fun ~dir ~keys -> bound t ~dir_reader:dir ~keys_reader:keys ~strict:true v) in
    range_sources ~ram ?cache t ~level:lvl ~first:0 ~last_exclusive:last ()
  | Predicate.Gt v ->
    let first = bounds (fun ~dir ~keys -> bound t ~dir_reader:dir ~keys_reader:keys ~strict:true v) in
    range_sources ~ram ?cache t ~level:lvl ~first ~last_exclusive:t.entry_count ()
  | Predicate.Ge v ->
    let first = bounds (fun ~dir ~keys -> bound t ~dir_reader:dir ~keys_reader:keys ~strict:false v) in
    range_sources ~ram ?cache t ~level:lvl ~first ~last_exclusive:t.entry_count ()
  | Predicate.Between (lo, hi) ->
    let first, last =
      bounds (fun ~dir ~keys ->
        ( bound t ~dir_reader:dir ~keys_reader:keys ~strict:false lo,
          bound t ~dir_reader:dir ~keys_reader:keys ~strict:true hi ))
    in
    range_sources ~ram ?cache t ~level:lvl ~first ~last_exclusive:last ()
  | Predicate.Prefix p ->
    let lo = Value.Str p in
    let first, last =
      bounds (fun ~dir ~keys ->
        ( bound t ~dir_reader:dir ~keys_reader:keys ~strict:false lo,
          match Predicate.prefix_upper p with
          | Some u ->
            bound t ~dir_reader:dir ~keys_reader:keys ~strict:false (Value.Str u)
          | None -> t.entry_count ))
    in
    range_sources ~ram ?cache t ~level:lvl ~first ~last_exclusive:last ()

let lookup_id ~ram ?cache t id ~level : Merge_union.source =
  if not t.dense then invalid_arg "Climbing_index.lookup_id: not a dense index";
  let lvl = level_pos t level in
  if id < 1 || id > t.entry_count then fun () -> (Cursor.empty (), fun () -> ())
  else
    fun () ->
      let loc =
        Pager.with_reader ~ram ~buffer_bytes:chunk_bytes ?cache t.flash t.directory
          (fun dir -> read_locator t dir ~entry:(id - 1) ~level:lvl)
      in
      (make_source t ~ram ?cache loc) ()
