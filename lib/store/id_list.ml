module Codec = Ghost_kernel.Codec
module Cursor = Ghost_kernel.Cursor
module Sorted_ids = Ghost_kernel.Sorted_ids

let encode ids =
  let buf = Buffer.create (Array.length ids * 2) in
  (try Sorted_ids.iter_deltas (fun d -> Codec.put_varint buf d) ids
   with Invalid_argument _ ->
     invalid_arg "Id_list.encode: not strictly increasing non-negative");
  Buffer.contents buf

let encoded_size ids =
  Sorted_ids.fold_deltas (fun total d -> total + Codec.varint_size d) 0 ids

let cursor reader ~off ~len =
  let pos = ref off in
  let stop = off + len in
  let prev = ref (-1) in
  (* A valid varint never spans more than 10 bytes, and get_varint stops
     at its terminator, so one scratch buffer serves every step. *)
  let scratch = Bytes.create 10 in
  Cursor.make (fun () ->
    if !pos >= stop then None
    else begin
      let look = min 10 (stop - !pos) in
      Pager.Reader.read_into reader ~off:!pos ~len:look scratch ~pos:0;
      let delta, next = Codec.get_varint scratch 0 in
      pos := !pos + next;
      let id = !prev + 1 + delta in
      prev := id;
      Some id
    end)

let decode b =
  let acc = ref [] in
  let pos = ref 0 and prev = ref (-1) in
  while !pos < Bytes.length b do
    let delta, next = Codec.get_varint b !pos in
    pos := next;
    let id = !prev + 1 + delta in
    prev := id;
    acc := id :: !acc
  done;
  Array.of_list (List.rev !acc)
