module Value = Ghost_kernel.Value
module Cursor = Ghost_kernel.Cursor
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram
module Predicate = Ghost_relation.Predicate

(** Climbing indexes (Section 4, Figure 4 of the paper).

    A climbing index on column [T.c] maps each value to a sorted list
    of [T] identifiers {e and} to sorted lists of identifiers of every
    table on the path from [T] up to the subtree root: the joins along
    the path are precomputed inside the index, so a hidden selection
    becomes root-level identifiers in a single index traversal.

    Two directory layouts share the list storage:

    - {e sorted} — attribute indexes: fixed-width entries (16-byte
      order-preserving key prefix + full-key pointer + per-level list
      locators) sorted by value, binary-searched page by page;
      equality, ranges and IN are supported.
    - {e dense} — key indexes ("the climbing index on Vis.VisID"): one
      entry per identifier, directly addressed, used to climb identifier
      lists shipped from the visible side.

    All query-time access goes through Flash readers charged to the
    arena; lists are returned as {!Merge_union.source}s so the caller
    controls fan-in. *)

type t

(** {2 Building (load time)} *)

val build_sorted :
  Flash.t ->
  table:string ->
  column:string ->
  levels:string list ->
  (Value.t * int array array) list ->
  t
(** [levels] — table names, the indexed table first, then its climb
    path to the root. Entries must be sorted by {!Value.compare} with
    distinct values; each [int array array] holds one strictly
    increasing id list per level. Raises [Invalid_argument] on
    unsorted/misaligned input. *)

val build_dense :
  Flash.t ->
  table:string ->
  count:int ->
  levels:string list ->
  (int -> int array array) ->
  t
(** Dense key index for ids [1..count]. [levels] — the climb path
    {e above} the table (parent first); the function gives the
    per-level lists of an id. *)

(** {2 Introspection} *)

val table : t -> string
val column : t -> string option
(** [None] for a dense key index. *)

val levels : t -> string list
val level_pos : t -> string -> int
(** Raises [Not_found]. *)

val entry_count : t -> int
val size_bytes : t -> int
(** Directory + key blob + list blob. *)

val directory_bytes : t -> int
(** Directory + key blob only — the repeatedly-probed hot part, which
    is what the cost model counts toward the page-cache working set. *)

val pages : t -> int list
(** Flash pages of all three segments (directory, key blob, list
    blob), in layout order. *)

(** {2 Query-time lookups}

    All lookups accept the device's shared page [cache]; directory
    probes, key comparisons and list decoding then serve resident
    pages from RAM (see {!Pager.Reader.open_}). *)

val lookup_eq :
  ram:Ram.t -> ?cache:Pager.Cache.t -> t -> Value.t -> level:string ->
  Merge_union.source option
(** The id list of one value at one level; [None] when the value is
    absent. Binary search on the directory: O(log n) partial-page
    reads. *)

val lookup_cmp :
  ram:Ram.t -> ?cache:Pager.Cache.t -> t -> Predicate.comparison ->
  level:string -> Merge_union.source list
(** One source per matching value (range scan of the directory). *)

val lookup_id :
  ram:Ram.t -> ?cache:Pager.Cache.t -> t -> int -> level:string ->
  Merge_union.source
(** Dense directories only: the ancestor list of one identifier (a
    direct-addressed locator read). Ids out of range yield an empty
    source. *)

val count_eq :
  ram:Ram.t -> ?cache:Pager.Cache.t -> t -> Value.t -> level:string -> int
(** Cardinality of {!lookup_eq} without reading the list. *)
