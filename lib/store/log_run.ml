module Codec = Ghost_kernel.Codec
module Flash = Ghost_flash.Flash

(* Run page header:
     magic (u32) | level (u32) | ordinal (u32) | count (u32) |
     flags (u32, bit 0 = sealed final page) | min_key (u32) |
     max_key (u32) | crc32 (u32) over the first 28 bytes + payload. *)
let magic = 0x4744524E (* "GDRN" *)
let header_bytes = 32
let flag_final = 1

type page_meta = {
  pp_page : int;
  pp_count : int;
  pp_min : int;
  pp_max : int;
}

type t = {
  level : int;
  pages : page_meta array;
  count : int;
  min_key : int;
  max_key : int;
}

let page_count t = Array.length t.pages
let size_bytes t ~record_bytes = t.count * record_bytes
let key record = Codec.get_u32 (Bytes.unsafe_of_string record) 0

let records_per_page flash ~record_bytes =
  ((Flash.geometry flash).Flash.page_size - header_bytes) / record_bytes

(* ---- building ---- *)

type builder = {
  b_flash : Flash.t;
  b_record_bytes : int;
  b_per_page : int;
  b_level : int;
  mutable b_pending : string list;  (* buffered records, newest first *)
  mutable b_pages : page_meta list;  (* programmed pages, newest first *)
  mutable b_count : int;
  mutable b_last_key : int;  (* -1 before the first record *)
  mutable b_ordinal : int;
}

let start flash ~record_bytes ~level =
  let per_page = records_per_page flash ~record_bytes in
  if per_page < 1 then invalid_arg "Log_run.start: record exceeds a page";
  {
    b_flash = flash;
    b_record_bytes = record_bytes;
    b_per_page = per_page;
    b_level = level;
    b_pending = [];
    b_pages = [];
    b_count = 0;
    b_last_key = -1;
    b_ordinal = 0;
  }

let built_count b = b.b_count
let built_pages b = List.rev_map (fun m -> m.pp_page) b.b_pages
let programmed_records b = b.b_count - List.length b.b_pending

let build_page b ~final records =
  let payload = String.concat "" records in
  let page = Bytes.create (header_bytes + String.length payload) in
  Codec.put_u32 page 0 magic;
  Codec.put_u32 page 4 b.b_level;
  Codec.put_u32 page 8 b.b_ordinal;
  Codec.put_u32 page 12 (List.length records);
  Codec.put_u32 page 16 (if final then flag_final else 0);
  Codec.put_u32 page 20 (key (List.hd records));
  Codec.put_u32 page 24 (key (List.nth records (List.length records - 1)));
  Bytes.blit_string payload 0 page header_bytes (String.length payload);
  let crc =
    Codec.crc32 page ~pos:0 ~len:28
    |> fun crc ->
    Codec.crc32 ~crc page ~pos:header_bytes ~len:(String.length payload)
  in
  Codec.put_u32 page 28 crc;
  page

let flush ?on_program b ~final =
  let records = List.rev b.b_pending in
  let data = build_page b ~final records in
  let page = Flash.append b.b_flash data in
  Option.iter (fun f -> f page) on_program;
  b.b_pages <-
    {
      pp_page = page;
      pp_count = List.length records;
      pp_min = key (List.hd records);
      pp_max = b.b_last_key;
    }
    :: b.b_pages;
  b.b_pending <- [];
  b.b_ordinal <- b.b_ordinal + 1

let add ?on_program b record =
  if String.length record <> b.b_record_bytes then
    invalid_arg "Log_run.add: record width mismatch";
  let k = key record in
  if k < b.b_last_key then invalid_arg "Log_run.add: keys out of order";
  if List.length b.b_pending = b.b_per_page then flush ?on_program b ~final:false;
  b.b_pending <- record :: b.b_pending;
  b.b_count <- b.b_count + 1;
  b.b_last_key <- k

let seal ?on_program b =
  if b.b_count = 0 then invalid_arg "Log_run.seal: empty run";
  (* [add] defers flushing a filled page until the next record, so the
     buffer is never empty here: the seal flag always lands on the
     true last page. *)
  flush ?on_program b ~final:true;
  let pages = Array.of_list (List.rev b.b_pages) in
  {
    level = b.b_level;
    pages;
    count = b.b_count;
    min_key = pages.(0).pp_min;
    max_key = pages.(Array.length pages - 1).pp_max;
  }

(* ---- reading ---- *)

(* Reads one run page back and validates header + CRC. Returns the
   decoded header fields and record payloads, in key order. *)
let parse_page flash ~record_bytes page =
  match Flash.read_page flash page with
  | exception Invalid_argument _ -> None (* erased, e.g. a zero-byte tear *)
  | b ->
    if Bytes.length b < header_bytes || Codec.get_u32 b 0 <> magic then None
    else begin
      let level = Codec.get_u32 b 4 in
      let ordinal = Codec.get_u32 b 8 in
      let n = Codec.get_u32 b 12 in
      let flags = Codec.get_u32 b 16 in
      let stored_crc = Codec.get_u32 b 28 in
      let per_page = (Bytes.length b - header_bytes) / record_bytes in
      if n < 1 || n > per_page then None
      else begin
        let crc =
          Codec.crc32 b ~pos:0 ~len:28
          |> fun crc ->
          Codec.crc32 ~crc b ~pos:header_bytes ~len:(n * record_bytes)
        in
        if crc <> stored_crc then None
        else begin
          let records =
            List.init n (fun i ->
                Bytes.sub_string b (header_bytes + (i * record_bytes)) record_bytes)
          in
          Some (level, ordinal, flags, records)
        end
      end
    end

let iter flash ~record_bytes ?lo ?hi t f =
  let lo = Option.value ~default:min_int lo in
  let hi = Option.value ~default:max_int hi in
  Array.iter
    (fun m ->
       if m.pp_max >= lo && m.pp_min <= hi then begin
         let b =
           Flash.read flash ~page:m.pp_page ~off:header_bytes
             ~len:(m.pp_count * record_bytes)
         in
         for i = 0 to m.pp_count - 1 do
           f (Bytes.sub_string b (i * record_bytes) record_bytes)
         done
       end)
    t.pages

let validate flash ~record_bytes t =
  let n_pages = Array.length t.pages in
  let total = ref 0 in
  let ok = ref (n_pages > 0) in
  Array.iteri
    (fun i m ->
       if !ok then
         match parse_page flash ~record_bytes m.pp_page with
         | Some (level, ordinal, flags, records)
           when level = t.level && ordinal = i
                && List.length records = m.pp_count
                && (flags land flag_final <> 0) = (i = n_pages - 1) ->
           total := !total + m.pp_count
         | _ -> ok := false)
    t.pages;
  !ok && !total = t.count

(* ---- merging ---- *)

type front = {
  f_run : t;
  mutable f_ahead : string list;  (* decoded records of the current page *)
  mutable f_next_page : int;  (* next page ordinal to decode *)
}

type merge = { fronts : front array }

let merge_start runs =
  {
    fronts =
      Array.of_list
        (List.map (fun r -> { f_run = r; f_ahead = []; f_next_page = 0 }) runs);
  }

(* Refill a front's read-ahead from its next page; false when the run
   is exhausted. *)
let refill flash ~record_bytes fr =
  let rec loop () =
    match fr.f_ahead with
    | _ :: _ -> true
    | [] ->
      if fr.f_next_page >= Array.length fr.f_run.pages then false
      else begin
        let m = fr.f_run.pages.(fr.f_next_page) in
        fr.f_next_page <- fr.f_next_page + 1;
        let b =
          Flash.read flash ~page:m.pp_page ~off:header_bytes
            ~len:(m.pp_count * record_bytes)
        in
        fr.f_ahead <-
          List.init m.pp_count (fun i ->
              Bytes.sub_string b (i * record_bytes) record_bytes);
        loop ()
      end
  in
  loop ()

let merge_next flash ~record_bytes m =
  (* Pick the smallest head key; among equal keys the newest input
     (highest index — inputs are ordered oldest first) wins and the
     older duplicates are consumed silently. *)
  let best = ref None in
  Array.iteri
    (fun i fr ->
       if refill flash ~record_bytes fr then begin
         let k = key (List.hd fr.f_ahead) in
         match !best with
         | Some (bk, _) when bk < k -> ()
         | _ -> best := Some (k, i)
       end)
    m.fronts;
  match !best with
  | None -> None
  | Some (k, winner) ->
    let record = ref "" in
    Array.iteri
      (fun i fr ->
         match fr.f_ahead with
         | head :: rest when key head = k ->
           if i = winner then record := head;
           fr.f_ahead <- rest
         | _ -> ())
      m.fronts;
    Some !record
