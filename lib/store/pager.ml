module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram
module Cache = Ghost_device.Page_cache

type segment = {
  pages : int array;
  length : int;
}

let segment_bytes s = s.length

module Writer = struct
  type t = {
    flash : Flash.t;
    page_size : int;
    cap : int;  (* payload bytes per page (page_size minus any trailer) *)
    authed : bool;  (* seal each page with a CRC-32 trailer *)
    buf : Buffer.t;  (* current partial page *)
    mutable pages : int list;  (* reversed *)
    mutable flushed : int;  (* bytes already on flash *)
    mutable finished : bool;
  }

  let create flash =
    let page_size = (Flash.geometry flash).Flash.page_size in
    let authed = Flash.authenticated flash in
    {
      flash;
      page_size;
      cap = (if authed then page_size - Flash.auth_trailer_bytes else page_size);
      authed;
      buf = Buffer.create 2048;
      pages = [];
      flushed = 0;
      finished = false;
    }

  let flush_page t =
    let data = Buffer.to_bytes t.buf in
    let data = if t.authed then Flash.seal_page t.flash data else data in
    let page = Flash.append t.flash data in
    t.pages <- page :: t.pages;
    (* [flushed] counts logical payload bytes; the trailer is the
       page's, not the segment's. *)
    t.flushed <- t.flushed + Buffer.length t.buf;
    Buffer.clear t.buf

  let check t = if t.finished then invalid_arg "Pager.Writer: already finished"

  let append_substring t s off len =
    check t;
    let off = ref off and remaining = ref len in
    while !remaining > 0 do
      let room = t.cap - Buffer.length t.buf in
      let chunk = min room !remaining in
      Buffer.add_substring t.buf s !off chunk;
      off := !off + chunk;
      remaining := !remaining - chunk;
      if Buffer.length t.buf = t.cap then flush_page t
    done

  let append_string t s = append_substring t s 0 (String.length s)
  let append_bytes t b = append_string t (Bytes.to_string b)
  let append_buffer t b = append_string t (Buffer.contents b)
  let position t = t.flushed + Buffer.length t.buf

  let finish t =
    check t;
    if Buffer.length t.buf > 0 then flush_page t;
    t.finished <- true;
    { pages = Array.of_list (List.rev t.pages); length = t.flushed }
end

let write_segment flash s =
  let w = Writer.create flash in
  Writer.append_string w s;
  Writer.finish w

module Reader = struct
  type t = {
    flash : Flash.t;
    segment : segment;
    page_size : int;
    cap : int;  (* payload bytes per page (mirrors the writer's) *)
    verify : bool;  (* check CRC trailers on cache-miss fetches *)
    buffer_bytes : int;
    window : Bytes.t;  (* cached window *)
    mutable win_off : int;
    mutable win_len : int;
    cache : Cache.t option;
    ram : Ram.t option;
    mutable cell : Ram.cell option;
    mutable closed : bool;
  }

  let open_ ?ram ?buffer_bytes ?cache flash segment =
    let page_size = (Flash.geometry flash).Flash.page_size in
    let buffer_bytes = Option.value buffer_bytes ~default:page_size in
    if buffer_bytes <= 0 then invalid_arg "Pager.Reader.open_: buffer_bytes <= 0";
    (* The cache fronts exactly one Flash region; readers over any
       other (the scratch Flash) silently bypass it. *)
    let cache =
      match cache with
      | Some c when Cache.flash c == flash -> Some c
      | Some _ | None -> None
    in
    let cell =
      Option.map (fun r -> Ram.alloc r ~label:"pager-buffer" buffer_bytes) ram
    in
    let authed = Flash.authenticated flash in
    {
      flash;
      segment;
      page_size;
      cap = (if authed then page_size - Flash.auth_trailer_bytes else page_size);
      verify = authed;
      buffer_bytes;
      window = Bytes.make buffer_bytes '\000';
      win_off = 0;
      win_len = 0;
      cache;
      ram;
      cell;
      closed = false;
    }

  let length t = t.segment.length

  (* Copy [len] bytes at logical offset [off] into [dst] at [dst_off] —
     through the shared page cache when there is one (hits are free,
     misses fill a frame with one full-page read), else one partial
     Flash read per touched page. *)
  let fetch t ~off ~len dst dst_off =
    let remaining = ref len and src = ref off and out = ref dst_off in
    while !remaining > 0 do
      let page_idx = !src / t.cap in
      let in_page = !src mod t.cap in
      let chunk = min !remaining (t.cap - in_page) in
      (match t.cache with
       | Some cache ->
         Cache.read ~verify:t.verify cache ~page:t.segment.pages.(page_idx)
           ~off:in_page ~len:chunk dst ~pos:!out
       | None when t.verify ->
         (* End-to-end verification needs the whole page under the
            CRC: the uncached verifying read pays a full-page read
            where the seed path pays a partial one. That honest cost
            is what E21's overhead column prices. *)
         let page = t.segment.pages.(page_idx) in
         let img = Flash.read_page t.flash page in
         Flash.verify_image t.flash ~page img;
         Bytes.blit img in_page dst !out chunk
       | None ->
         let data =
           Flash.read t.flash ~page:t.segment.pages.(page_idx) ~off:in_page ~len:chunk
         in
         Bytes.blit data 0 dst !out chunk);
      src := !src + chunk;
      out := !out + chunk;
      remaining := !remaining - chunk
    done

  let read_into t ~off ~len dst ~pos =
    if t.closed then invalid_arg "Pager.Reader.read_into: closed";
    if off < 0 || len < 0 || off + len > t.segment.length then
      invalid_arg
        (Printf.sprintf "Pager.Reader.read_into: [%d, %d) out of segment of %d bytes"
           off (off + len) t.segment.length);
    if pos < 0 || pos + len > Bytes.length dst then
      invalid_arg "Pager.Reader.read_into: destination range out of bounds";
    if len = 0 then ()
    else if off >= t.win_off && off + len <= t.win_off + t.win_len then
      Bytes.blit t.window (off - t.win_off) dst pos len
    else if len >= t.buffer_bytes then
      (* Too big to cache in the window: stream straight through. *)
      fetch t ~off ~len dst pos
    else begin
      let win_len = min t.buffer_bytes (t.segment.length - off) in
      fetch t ~off ~len:win_len t.window 0;
      t.win_off <- off;
      t.win_len <- win_len;
      Bytes.blit t.window 0 dst pos len
    end

  let read t ~off ~len =
    let out = Bytes.make len '\000' in
    read_into t ~off ~len out ~pos:0;
    out

  let close t =
    if not t.closed then begin
      t.closed <- true;
      match t.ram, t.cell with
      | Some r, Some c -> Ram.free r c
      | _, _ -> ()
    end
end

let with_reader ?ram ?buffer_bytes ?cache flash segment f =
  let r = Reader.open_ ?ram ?buffer_bytes ?cache flash segment in
  match f r with
  | v ->
    Reader.close r;
    v
  | exception e ->
    Reader.close r;
    raise e
