module Value = Ghost_kernel.Value
module Cursor = Ghost_kernel.Cursor
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram
module Predicate = Ghost_relation.Predicate

type t = {
  flash : Flash.t;
  ty : Value.ty;
  width : int;
  count : int;
  segment : Pager.segment;
}

let build flash ty values =
  let w = Pager.Writer.create flash in
  Array.iter
    (fun v -> Pager.Writer.append_bytes w (Value.encode ty v))
    values;
  {
    flash;
    ty;
    width = Value.ty_width ty;
    count = Array.length values;
    segment = Pager.Writer.finish w;
  }

let ty t = t.ty
let count t = t.count
let width t = t.width
let size_bytes t = t.segment.Pager.length
let segment t = t.segment
let pages t = Array.to_list t.segment.Pager.pages

type reader = {
  store : t;
  pr : Pager.Reader.t;
  scratch : Bytes.t;  (* one encoded value, reused across point reads *)
}

let open_reader ?ram ?buffer_bytes ?cache t =
  {
    store = t;
    pr = Pager.Reader.open_ ?ram ?buffer_bytes ?cache t.flash t.segment;
    scratch = Bytes.create t.width;
  }

let close_reader r = Pager.Reader.close r.pr

let get r id =
  if id < 1 || id > r.store.count then
    invalid_arg (Printf.sprintf "Column_store.get: id %d out of 1..%d" id r.store.count);
  Pager.Reader.read_into r.pr ~off:((id - 1) * r.store.width) ~len:r.store.width
    r.scratch ~pos:0;
  Value.decode r.store.ty r.scratch 0

let scan r =
  let id = ref 0 in
  Cursor.make (fun () ->
    incr id;
    if !id > r.store.count then None else Some (!id, get r !id))

let matching_ids r cmp =
  Cursor.filter_map
    (fun (id, v) -> if Predicate.eval cmp v then Some id else None)
    (scan r)
