module Flash = Ghost_flash.Flash

(** Immutable sorted runs for the leveled delta log.

    A run is a sequence of CRC-checksummed Flash pages holding
    fixed-width records in ascending key order, where the key is the
    unsigned 32-bit integer at offset 0 of each record (the delta log
    stores the root id there). Runs are built append-only — NAND
    forbids rewrites — and are {e installed atomically}: the final
    page carries a seal flag, so a run whose last durable page is
    unsealed is an interrupted build and recovery discards it
    wholesale while the (unmodified) inputs roll the log back to its
    pre-compaction state. See DESIGN.md section 16.

    Every page header records the page's key fences, so a probe-style
    scan ({!iter} with bounds) skips pages whose [min, max] window
    cannot intersect the candidate range — the read-amplification
    lever the cost model prices per run. *)

val header_bytes : int

type page_meta = {
  pp_page : int;  (** Flash page number *)
  pp_count : int;  (** records in this page *)
  pp_min : int;  (** smallest key in the page *)
  pp_max : int;  (** largest key in the page *)
}

type t = {
  level : int;  (** 1 for an L0 spill, [k + 1] for a level-[k] merge *)
  pages : page_meta array;  (** in program (and key) order *)
  count : int;  (** records in the run; always positive *)
  min_key : int;
  max_key : int;
}

val page_count : t -> int

val size_bytes : t -> record_bytes:int -> int
(** Record payload bytes of the run (headers excluded). *)

val records_per_page : Flash.t -> record_bytes:int -> int

(** {2 Building}

    A builder accumulates records (which must arrive in ascending key
    order) and programs a page whenever one fills; {!seal} programs
    the final page with the seal flag set — the run's atomic commit.
    A power cut tearing any program leaves an unsealed page suffix
    that {!validate} rejects, so the whole partial output is
    discarded by recovery. *)

type builder

val start : Flash.t -> record_bytes:int -> level:int -> builder
(** Raises [Invalid_argument] when a record (plus header) exceeds a
    page. *)

val add : ?on_program:(int -> unit) -> builder -> string -> unit
(** Buffers one record, programming the previously filled page first
    when the buffer is full. [on_program] observes every programmed
    page number (the delta log invalidates its page-cache frame, since
    {!Flash.append} recycles erased pages). Raises [Invalid_argument]
    on a record of the wrong width or a key below the previous one. *)

val seal : ?on_program:(int -> unit) -> builder -> t
(** Programs the buffered tail as the sealed final page and returns
    the installed run. Raises [Invalid_argument] on an empty builder
    (callers install nothing when every input record was dropped). *)

val built_count : builder -> int
(** Records added so far. *)

val built_pages : builder -> int list
(** Pages programmed so far (program order) — dead bytes to account
    when an interrupted build is abandoned. *)

val programmed_records : builder -> int
(** Records already programmed to Flash (excludes the buffered tail) —
    the dead bytes an abandoned build leaves behind. *)

(** {2 Reading} *)

val iter :
  Flash.t -> record_bytes:int -> ?lo:int -> ?hi:int -> t ->
  (string -> unit) -> unit
(** Metered sequential read of the run's records in key order. With
    bounds, pages whose fences lie entirely outside [[lo, hi]] are
    skipped without a read; records of overlapping pages are all
    emitted (a superset of the matching keys — callers re-check
    membership, exactly as the executor's shipped-id filters do). *)

val validate : Flash.t -> record_bytes:int -> t -> bool
(** Metered post-crash check: every page parses (magic, CRC, level,
    ordinal), the final page — and only it — carries the seal flag,
    and the per-page record counts sum to [count]. An installed run
    always validates after a pure power cut; an interrupted build
    never does. *)

(** {2 Merging}

    A resumable k-way merge cursor over sorted runs, newest-wins: of
    several heads sharing a key, the record from the latest run (by
    position in the input list, oldest first) is emitted and the older
    duplicates are discarded. The cursor holds only decoded records of
    the current page per input — bounded RAM — and is plain data, so a
    mid-merge compaction survives {!Ghostdb.Ghost_db.save_image}. *)

type merge

val merge_start : t list -> merge
val merge_next : Flash.t -> record_bytes:int -> merge -> string option
(** [None] when every input is exhausted. Page reads are metered as
    they happen, so a time-sliced compaction charges the device clock
    only for the work of its own slice. *)

val key : string -> int
(** The sort key of a record: the u32 at offset 0. *)
