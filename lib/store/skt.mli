module Cursor = Ghost_kernel.Cursor
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram

(** Subtree Key Tables — the paper's generalized join indexes.

    [SKT_R] materializes, for every tuple of the subtree root [R], the
    identifiers of the (unique) joining tuple in each table of [R]'s
    subtree, sorted by [R]'s identifier. With dense root ids the row
    for id [k] sits at [(k-1) * row_width]: probing an SKT after
    Pre-filtering is one partial-page read per surviving id, and a
    query can associate, e.g., a prescription with its patient in a
    single step (Section 4). *)

type t

val build : Flash.t -> root:string -> levels:string list -> rows:int array array -> t
(** [levels] — table names, root first (preorder of the subtree);
    [rows.(i)] — the ids for root id [i+1], aligned with [levels]
    (so [rows.(i).(0) = i+1]). Load-time only. Raises
    [Invalid_argument] on misaligned input. *)

val root : t -> string
val levels : t -> string list
val level_index : t -> string -> int
(** Raises [Not_found]. *)

val root_count : t -> int
val row_width : t -> int
val size_bytes : t -> int

val pages : t -> int list
(** Flash pages of the row segment, in layout order (the scrubber's
    and anti-entropy's walk list). *)

type reader

val open_reader :
  ?ram:Ram.t -> ?buffer_bytes:int -> ?cache:Pager.Cache.t -> t -> reader
(** [cache] routes page fills through the device's shared page cache
    (see {!Pager.Reader.open_}). *)

val close_reader : reader -> unit

val get : reader -> int -> int array
(** Full row for a root id. *)

val get_level : reader -> int -> level:int -> int
(** One id of the row — a 4-byte partial read. *)

val scan : reader -> int array Cursor.t
(** All rows in root-id order (sequential Flash scan). *)
