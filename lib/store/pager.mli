module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram
module Cache = Ghost_device.Page_cache

(** Byte segments over Flash pages.

    A segment is an immutable byte range laid out over a list of Flash
    pages (not necessarily contiguous). All on-flash structures —
    column stores, SKT rows, climbing-index directories and blobs —
    are segments. Writers are used only at load time (the device is
    loaded in a secure setting, Section 2 of the paper); readers are
    the query-time access path and charge every access to the Flash
    cost model and, when given an arena, their buffer to device RAM.

    On an {!Flash.authenticated} region, writers transparently seal
    every page with a CRC-32 trailer (so a page carries
    [page_size - auth_trailer_bytes] payload bytes) and readers verify
    each cache-miss page fill end-to-end, raising
    {!Flash.Integrity_error} on a mismatch. Logical offsets are
    unchanged either way — segments address payload bytes, never
    trailers. *)

type segment = {
  pages : int array;  (** flash page ids, in order *)
  length : int;  (** logical byte length *)
}

val segment_bytes : segment -> int
(** = [length]. *)

(** {2 Writing (load time)} *)

module Writer : sig
  type t

  val create : Flash.t -> t
  val append_bytes : t -> bytes -> unit
  val append_string : t -> string -> unit
  val append_buffer : t -> Buffer.t -> unit
  val position : t -> int
  (** Bytes appended so far (= offset of the next byte). *)

  val finish : t -> segment
  (** Flushes the partial last page. The writer must not be used
      afterwards. *)
end

val write_segment : Flash.t -> string -> segment
(** One-shot convenience. *)

(** {2 Reading (query time)} *)

module Reader : sig
  type t

  val open_ : ?ram:Ram.t -> ?buffer_bytes:int -> ?cache:Cache.t -> Flash.t -> segment -> t
  (** [buffer_bytes] (default one page) is the read-buffer size charged
      to [ram] while the reader is open. Smaller buffers let many
      readers coexist in tiny RAM at the price of more Flash seeks.
      When [cache] fronts the same Flash region, page fills are served
      through it: a resident page costs nothing, a miss fills a frame
      with one full-page read. A cache over a different Flash region is
      ignored. *)

  val read : t -> off:int -> len:int -> bytes
  (** Random access; spans pages transparently. Consecutive reads from
      the buffered window cost no Flash access. Raises
      [Invalid_argument] out of bounds. *)

  val read_into : t -> off:int -> len:int -> bytes -> pos:int -> unit
  (** Zero-copy variant of {!read}: fills [dst.(pos .. pos+len-1)] in
      place so hot point-read paths can reuse one scratch buffer
      instead of allocating per access. Same window/caching behaviour
      and bounds checks as {!read}. *)

  val length : t -> int
  val close : t -> unit
  (** Releases the RAM buffer. Idempotent. *)
end

val with_reader :
  ?ram:Ram.t -> ?buffer_bytes:int -> ?cache:Cache.t -> Flash.t -> segment ->
  (Reader.t -> 'a) -> 'a
