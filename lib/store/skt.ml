module Codec = Ghost_kernel.Codec
module Cursor = Ghost_kernel.Cursor
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram

type t = {
  flash : Flash.t;
  root : string;
  levels : string array;
  root_count : int;
  row_width : int;
  segment : Pager.segment;
}

let build flash ~root ~levels ~rows =
  (match levels with
   | r :: _ when r = root -> ()
   | _ -> invalid_arg "Skt.build: levels must start with the root");
  let n_levels = List.length levels in
  let w = Pager.Writer.create flash in
  let cell = Bytes.create 4 in
  Array.iteri
    (fun i row ->
       if Array.length row <> n_levels then
         invalid_arg (Printf.sprintf "Skt.build: row %d has %d ids, expected %d" i
                        (Array.length row) n_levels);
       if row.(0) <> i + 1 then
         invalid_arg (Printf.sprintf "Skt.build: row %d has root id %d" i row.(0));
       Array.iter
         (fun id ->
            Codec.put_u32 cell 0 id;
            Pager.Writer.append_bytes w cell)
         row)
    rows;
  {
    flash;
    root;
    levels = Array.of_list levels;
    root_count = Array.length rows;
    row_width = 4 * n_levels;
    segment = Pager.Writer.finish w;
  }

let root t = t.root
let levels t = Array.to_list t.levels

let level_index t name =
  let rec loop i =
    if i >= Array.length t.levels then raise Not_found
    else if t.levels.(i) = name then i
    else loop (i + 1)
  in
  loop 0

let root_count t = t.root_count
let row_width t = t.row_width
let size_bytes t = t.segment.Pager.length
let pages t = Array.to_list t.segment.Pager.pages

type reader = {
  skt : t;
  pr : Pager.Reader.t;
  scratch : Bytes.t;  (* one row, reused across point reads *)
}

let open_reader ?ram ?buffer_bytes ?cache t =
  {
    skt = t;
    pr = Pager.Reader.open_ ?ram ?buffer_bytes ?cache t.flash t.segment;
    scratch = Bytes.create t.row_width;
  }

let close_reader r = Pager.Reader.close r.pr

let check_id r id =
  if id < 1 || id > r.skt.root_count then
    invalid_arg (Printf.sprintf "Skt: root id %d out of 1..%d" id r.skt.root_count)

let get r id =
  check_id r id;
  Pager.Reader.read_into r.pr ~off:((id - 1) * r.skt.row_width)
    ~len:r.skt.row_width r.scratch ~pos:0;
  Array.init (Array.length r.skt.levels) (fun i -> Codec.get_u32 r.scratch (4 * i))

let get_level r id ~level =
  check_id r id;
  if level < 0 || level >= Array.length r.skt.levels then
    invalid_arg "Skt.get_level: bad level";
  Pager.Reader.read_into r.pr ~off:(((id - 1) * r.skt.row_width) + (4 * level))
    ~len:4 r.scratch ~pos:0;
  Codec.get_u32 r.scratch 0

let scan r =
  let id = ref 0 in
  Cursor.make (fun () ->
    incr id;
    if !id > r.skt.root_count then None else Some (get r !id))
