module Value = Ghost_kernel.Value
module Cursor = Ghost_kernel.Cursor
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram
module Predicate = Ghost_relation.Predicate

(** Fixed-width column stores for the hidden part of the database.

    Identifiers are dense (1..N — the loader assigns them), so the
    value of tuple [id] lives at byte [(id-1) * width] of the segment:
    point access is a single partial-page Flash read, which is what
    makes per-candidate hidden checks (Post-filtering of hidden
    predicates) affordable. *)

type t

val build : Flash.t -> Value.ty -> Value.t array -> t
(** [build flash ty values] — [values.(i)] is the value of id [i+1].
    Load-time only (not RAM-constrained). *)

val ty : t -> Value.ty
val count : t -> int
val width : t -> int
val size_bytes : t -> int
val segment : t -> Pager.segment

val pages : t -> int list
(** Flash pages of the column segment, in layout order. *)

type reader

val open_reader :
  ?ram:Ram.t -> ?buffer_bytes:int -> ?cache:Pager.Cache.t -> t -> reader
(** [cache] routes page fills through the device's shared page cache
    (see {!Pager.Reader.open_}). *)

val close_reader : reader -> unit

val get : reader -> int -> Value.t
(** Value of the given id. Raises [Invalid_argument] out of range. *)

val scan : reader -> (int * Value.t) Cursor.t
(** All (id, value) pairs in id order — a sequential Flash scan. *)

val matching_ids : reader -> Predicate.comparison -> int Cursor.t
(** Ids whose value satisfies the comparison, in increasing order (a
    filtering scan: the fallback when a hidden column has no climbing
    index). *)
