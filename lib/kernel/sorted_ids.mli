(** Algebra of strictly-increasing identifier arrays.

    Climbing-index entries, visible selection results and SKT probe
    lists are all sorted duplicate-free ID lists; plan execution is
    largely merging such lists. All functions assume (and produce)
    strictly increasing [int array]s. *)

val is_sorted : int array -> bool
(** Strictly increasing (hence duplicate-free). *)

val of_unsorted : int list -> int array
(** Sorts and deduplicates. *)

val intersect : int array -> int array -> int array
(** Galloping (exponential-search) intersection: O(m log(n/m)) when one
    side is much smaller. *)

val intersect_many : int array list -> int array
(** Intersection of all lists, smallest first. The intersection of an
    empty list of lists is undefined: raises [Invalid_argument]. *)

val union : int array -> int array -> int array
val union_many : int array list -> int array
val difference : int array -> int array -> int array

val member : int array -> int -> bool
(** Binary search. *)

val rank : int array -> int -> int
(** Number of elements strictly below the probe. *)

val iter_deltas : (int -> unit) -> int array -> unit
(** Iterates the gap sequence of a strictly increasing non-negative
    list under the shared delta convention
    [delta_i = id_i - id_{i-1} - 1] (with [id_{-1} = -1]) — the payload
    layout of {e Id_list} climbing-index entries and of the compact
    wire protocol, so encoders never re-derive gaps ad hoc. Raises
    [Invalid_argument] on an out-of-order or negative id. *)

val fold_deltas : ('a -> int -> 'a) -> 'a -> int array -> 'a
(** [fold_deltas f init ids] folds [f] over the same gap sequence as
    {!iter_deltas}, with the same validation. *)
