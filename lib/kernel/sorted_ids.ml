let is_sorted a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then ok := false
  done;
  !ok

let of_unsorted l =
  let a = Array.of_list l in
  Array.sort Int.compare a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    let out = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!out - 1) then begin
        a.(!out) <- a.(i);
        incr out
      end
    done;
    Array.sub a 0 !out
  end

(* First index in [lo, Array.length a) whose element is >= x, found by
   exponential then binary search starting at [lo]. *)
let gallop a lo x =
  let n = Array.length a in
  if lo >= n || a.(lo) >= x then lo
  else begin
    let step = ref 1 in
    let prev = ref lo in
    let cur = ref (lo + 1) in
    while !cur < n && a.(!cur) < x do
      prev := !cur;
      step := !step * 2;
      cur := min n (!cur + !step)
    done;
    let lo = ref (!prev + 1) and hi = ref (min !cur n) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) < x then lo := mid + 1 else hi := mid
    done;
    !lo
  end

let intersect a b =
  let small, big = if Array.length a <= Array.length b then (a, b) else (b, a) in
  let j = ref 0 in
  let count = ref 0 in
  let out = Array.make (Array.length small) 0 in
  for i = 0 to Array.length small - 1 do
    let x = small.(i) in
    j := gallop big !j x;
    if !j < Array.length big && big.(!j) = x then begin
      out.(!count) <- x;
      incr count
    end
  done;
  Array.sub out 0 !count

let intersect_many = function
  | [] -> invalid_arg "Sorted_ids.intersect_many: no lists"
  | first :: rest ->
    let sorted =
      List.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) (first :: rest)
    in
    (match sorted with
     | [] -> assert false
     | smallest :: others -> List.fold_left intersect smallest others)

let union a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin out.(!k) <- x; incr i end
    else if y < x then begin out.(!k) <- y; incr j end
    else begin out.(!k) <- x; incr i; incr j end;
    incr k
  done;
  while !i < na do out.(!k) <- a.(!i); incr i; incr k done;
  while !j < nb do out.(!k) <- b.(!j); incr j; incr k done;
  Array.sub out 0 !k

let union_many = function
  | [] -> [||]
  | first :: rest -> List.fold_left union first rest

let difference a b =
  let out = Array.make (Array.length a) 0 in
  let j = ref 0 and k = ref 0 in
  for i = 0 to Array.length a - 1 do
    let x = a.(i) in
    j := gallop b !j x;
    if not (!j < Array.length b && b.(!j) = x) then begin
      out.(!k) <- x;
      incr k
    end
  done;
  Array.sub out 0 !k

let member a x =
  let i = gallop a 0 x in
  i < Array.length a && a.(i) = x

let rank a x = gallop a 0 x

(* The gap convention shared by every delta consumer (Id_list payloads,
   the wire codec): delta_i = id_i - id_{i-1} - 1 with id_{-1} = -1, so
   a dense run of ids encodes as a run of zeros. *)

let bad_delta () =
  invalid_arg "Sorted_ids: not strictly increasing non-negative"

let iter_deltas f a =
  let prev = ref (-1) in
  Array.iter
    (fun id ->
       if id <= !prev || id < 0 then bad_delta ();
       f (id - !prev - 1);
       prev := id)
    a

let fold_deltas f init a =
  let prev = ref (-1) and acc = ref init in
  Array.iter
    (fun id ->
       if id <= !prev || id < 0 then bad_delta ();
       acc := f !acc (id - !prev - 1);
       prev := id)
    a;
  !acc
