let put_u32 b off v =
  Bytes.set_int32_be b off (Int32.of_int (v land 0xFFFFFFFF))

let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF

let put_u64 b off v = Bytes.set_int64_be b off (Int64.of_int v)
let get_u64 b off = Int64.to_int (Bytes.get_int64_be b off)

let varint_size v =
  if v < 0 then invalid_arg "Codec.varint_size: negative";
  let rec loop v n = if v < 0x80 then n else loop (v lsr 7) (n + 1) in
  loop v 1

let put_varint buf v =
  if v < 0 then invalid_arg "Codec.put_varint: negative";
  let rec loop v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7F)));
      loop (v lsr 7)
    end
  in
  loop v

let get_varint b off =
  let rec loop off shift acc =
    let c = Bytes.get_uint8 b off in
    let acc = acc lor ((c land 0x7F) lsl shift) in
    if c < 0x80 then (acc, off + 1) else loop (off + 1) (shift + 7) acc
  in
  loop off 0 0

let put_varint_into b off v =
  if v < 0 then invalid_arg "Codec.put_varint_into: negative";
  let rec loop off v =
    if v < 0x80 then begin
      Bytes.unsafe_set b off (Char.unsafe_chr v);
      off + 1
    end
    else begin
      Bytes.unsafe_set b off (Char.unsafe_chr (0x80 lor (v land 0x7F)));
      loop (off + 1) (v lsr 7)
    end
  in
  loop off v

let get_varint_bounded b off ~stop =
  let stop = min stop (Bytes.length b) in
  let rec loop off shift acc =
    if off >= stop || shift > 56 then None
    else begin
      let c = Bytes.get_uint8 b off in
      let acc = acc lor ((c land 0x7F) lsl shift) in
      if c < 0x80 then Some (acc, off + 1) else loop (off + 1) (shift + 7) acc
    end
  in
  if off < 0 then None else loop off 0 0

(* Like put_varint but accepts any 63-bit pattern, treated unsigned
   (logical shifts), so zigzag covers the full int range. *)
let put_varint_bits buf v =
  let rec loop v =
    if v lsr 7 = 0 then Buffer.add_char buf (Char.chr (v land 0x7F))
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7F)));
      loop (v lsr 7)
    end
  in
  loop v

let put_zigzag buf v = put_varint_bits buf ((v lsl 1) lxor (v asr 62))

let get_zigzag b off =
  let u, off' = get_varint b off in
  ((u lsr 1) lxor (-(u land 1)), off')

let put_string16 buf s =
  let n = String.length s in
  if n > 0xFFFF then invalid_arg "Codec.put_string16: too long";
  Buffer.add_char buf (Char.chr (n lsr 8));
  Buffer.add_char buf (Char.chr (n land 0xFF));
  Buffer.add_string buf s

let get_string16 b off =
  let n = (Bytes.get_uint8 b off lsl 8) lor Bytes.get_uint8 b (off + 1) in
  (Bytes.sub_string b (off + 2) n, off + 2 + n)

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), the checksum
   of the crash-safe log page headers. Table-driven, one table shared
   process-wide. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(crc = 0) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Codec.crc32: range out of bounds";
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Bytes.get_uint8 b i) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF
