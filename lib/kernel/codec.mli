(** Low-level binary encodings shared by the on-flash structures.

    All multi-byte fixed-width integers are big-endian. Varints are
    LEB128 (7 bits per byte, high bit = continuation). *)

val put_u32 : bytes -> int -> int -> unit
(** [put_u32 b off v] writes [v land 0xFFFFFFFF]. *)

val get_u32 : bytes -> int -> int

val put_u64 : bytes -> int -> int -> unit
val get_u64 : bytes -> int -> int

val varint_size : int -> int
(** Encoded size in bytes of a non-negative varint. *)

val put_varint : Buffer.t -> int -> unit
(** Appends a non-negative varint. Raises [Invalid_argument] on
    negative input. *)

val get_varint : bytes -> int -> int * int
(** [get_varint b off] is [(value, next_off)]. *)

val put_varint_into : bytes -> int -> int -> int
(** [put_varint_into b off v] writes a non-negative varint directly at
    [off] and returns the offset past it — the zero-allocation
    counterpart of {!put_varint} for encoders that own a reusable
    buffer. The caller guarantees [varint_size v] bytes of room.
    Raises [Invalid_argument] on negative input. *)

val get_varint_bounded : bytes -> int -> stop:int -> (int * int) option
(** Bounds- and overflow-checked {!get_varint} for untrusted input:
    reads only within [off, stop), rejects encodings wider than 63
    value bits, and returns [None] instead of reading past the limit
    on a truncated or overlong varint. *)

val put_zigzag : Buffer.t -> int -> unit
(** Signed varint via zigzag mapping. *)

val get_zigzag : bytes -> int -> int * int

val put_string16 : Buffer.t -> string -> unit
(** Length-prefixed (u16) string, for full-key verification records.
    Raises [Invalid_argument] if longer than 65535 bytes. *)

val get_string16 : bytes -> int -> string * int

val crc32 : ?crc:int -> bytes -> pos:int -> len:int -> int
(** CRC-32 (IEEE) of [len] bytes starting at [pos]. Pass a previous
    result as [?crc] to checksum discontiguous ranges incrementally.
    Used by the crash-safe log pages to detect torn or corrupted
    programs. *)
