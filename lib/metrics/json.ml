type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape buf s =
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s

let max_exact_int = 9007199254740992.0 (* 2^53 *)

let number_to_string v =
  if Float.is_integer v && Float.abs v <= max_exact_int then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (number_to_string v)
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
         if i > 0 then Buffer.add_char buf ',';
         write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         Buffer.add_char buf '"';
         escape buf k;
         Buffer.add_string buf "\":";
         write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then error "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then error "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with Failure _ -> error "invalid \\u escape"
           in
           (* The exporters only escape control characters, so ASCII is
              enough; anything higher degrades to '?'. *)
           Buffer.add_char buf (if code < 128 then Char.chr code else '?')
         | _ -> error "invalid escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    if !pos = start then error "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> error "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> error "expected , or } in object"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected , or ] in array"
        in
        Arr (items [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Num v -> Some v | _ -> None
let to_str = function Str s -> Some s | _ -> None
