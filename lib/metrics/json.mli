(** A minimal JSON value, printer and parser.

    The simulator takes no external dependencies, yet the metrics layer
    must both {e emit} machine-readable artifacts ([metrics.json],
    Chrome [trace_event] files) and {e read them back} — the CI
    perf-regression gate parses a committed baseline and a fresh run
    and diffs them. This module covers exactly that round trip: the
    grammar of RFC 8259 restricted to what the exporters produce
    (finite numbers, ASCII-escaped strings). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Numbers that hold an integral value within
    [2^53] print without a decimal point, so counters survive the
    round trip textually unchanged; other floats print with enough
    digits ([%.17g]) to reparse to the same IEEE value. *)

val parse : string -> (t, string) result
(** Parses one JSON document (trailing whitespace allowed). Errors
    carry a character offset. Object member order is preserved. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on anything else. *)

val to_num : t -> float option
val to_str : t -> string option
