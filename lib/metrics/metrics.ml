(* The registry is deliberately closure-free: devices holding one are
   marshalled into card images, so every record here is plain data and
   every recording function takes its timestamps from the caller. *)

let gamma = 2.0 ** 0.25
let log_gamma = log gamma
let n_buckets = 256
(* gamma^255 ~ 1.6e19 simulated microseconds — anything the simulator
   can produce lands in a real bucket; the last one is an overflow
   catch-all so [observe] never raises on huge values. *)

type hist = {
  mutable h_count : int;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_sum : float;
  buckets : int array;
}

type span_rec = {
  s_name : string;
  s_cat : string;
  s_pid : int;
  s_tid : int;
  s_args : (string * float) list;
  s_ts : float;  (* already rebased *)
  s_dur : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
  (* per class, samples as (predicted_us, measured_us), newest first *)
  cal : (string, (float * float) list ref) Hashtbl.t;
  mutable spans_rev : span_rec list;
  mutable n_spans : int;
  max_spans : int;
  mutable origin : float;  (* added to every incoming timestamp *)
  mutable max_ts : float;  (* end of the rebased timeline so far *)
}

let create ?(max_spans = 200_000) () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 32;
    cal = Hashtbl.create 16;
    spans_rev = [];
    n_spans = 0;
    max_spans;
    origin = 0.0;
    max_ts = 0.0;
  }

(* ---- counters and gauges ---- *)

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let add_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := !r +. v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge t name =
  Option.map (fun r -> !r) (Hashtbl.find_opt t.gauges name)

(* ---- histograms ---- *)

let bucket_of v =
  if v < 1.0 then 0
  else
    let i = 1 + int_of_float (floor (log v /. log_gamma)) in
    if i >= n_buckets then n_buckets - 1 else i

(* Geometric midpoint of the bucket; exact observed extrema are kept
   separately and used to clamp, so estimates never leave [min, max]. *)
let representative i =
  if i = 0 then 0.5 else gamma ** (float_of_int i -. 0.5)

let observe t name v =
  if v < 0.0 || Float.is_nan v then
    invalid_arg "Metrics.observe: negative or NaN value";
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
      let h =
        {
          h_count = 0;
          h_min = infinity;
          h_max = neg_infinity;
          h_sum = 0.0;
          buckets = Array.make n_buckets 0;
        }
      in
      Hashtbl.replace t.histograms name h;
      h
  in
  h.h_count <- h.h_count + 1;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  h.h_sum <- h.h_sum +. v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let hist_quantile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.quantile: q outside [0, 1]";
  if h.h_count = 0 then nan
  else begin
    (* nearest-rank on the bucketed distribution *)
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let est = ref h.h_max in
    (try
       let seen = ref 0 in
       for i = 0 to n_buckets - 1 do
         seen := !seen + h.buckets.(i);
         if !seen >= rank then begin
           est := representative i;
           raise Exit
         end
       done
     with Exit -> ());
    let v = !est in
    if v < h.h_min then h.h_min else if v > h.h_max then h.h_max else v
  end

type histogram_stats = {
  count : int;
  min : float;
  max : float;
  sum : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let stats_of h =
  {
    count = h.h_count;
    min = (if h.h_count = 0 then nan else h.h_min);
    max = (if h.h_count = 0 then nan else h.h_max);
    sum = h.h_sum;
    p50 = hist_quantile h 0.50;
    p95 = hist_quantile h 0.95;
    p99 = hist_quantile h 0.99;
  }

let histogram t name =
  Option.map stats_of (Hashtbl.find_opt t.histograms name)

let quantile t name q =
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some h -> if h.h_count = 0 then None else Some (hist_quantile h q)

(* ---- spans ---- *)

let span t ~name ~cat ?(pid = 1) ?(tid = 0) ?(args = []) ~ts ~dur () =
  let ts = t.origin +. ts in
  let fin = ts +. Float.max dur 0.0 in
  if fin > t.max_ts then t.max_ts <- fin;
  if t.n_spans >= t.max_spans then incr t "metrics.spans_dropped"
  else begin
    t.spans_rev <-
      { s_name = name; s_cat = cat; s_pid = pid; s_tid = tid;
        s_args = args; s_ts = ts; s_dur = dur }
      :: t.spans_rev;
    t.n_spans <- t.n_spans + 1
  end

let span_count t = t.n_spans

let rebase t ~clock_now =
  let needed = t.max_ts -. clock_now in
  if needed > t.origin then t.origin <- needed

(* ---- calibration ---- *)

let calibrate t ~cls ~predicted_us ~measured_us =
  match Hashtbl.find_opt t.cal cls with
  | Some r -> r := (predicted_us, measured_us) :: !r
  | None -> Hashtbl.replace t.cal cls (ref [ (predicted_us, measured_us) ])

type calibration_entry = {
  cal_class : string;
  samples : int;
  predicted_us : float;
  measured_us : float;
  rel_error : float;
  flagged : bool;
}

let calibration_report ?(threshold = 1.0) t =
  Hashtbl.fold (fun cls r acc -> (cls, !r) :: acc) t.cal []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (cls, samples) ->
      (* Sort the samples so the float sums are independent of the
         order sessions happened to retire in. *)
      let samples = List.sort compare samples in
      let pred = List.fold_left (fun a (p, _) -> a +. p) 0.0 samples in
      let meas = List.fold_left (fun a (_, m) -> a +. m) 0.0 samples in
      let rel_error = Float.abs (pred -. meas) /. Float.max meas 1.0 in
      {
        cal_class = cls;
        samples = List.length samples;
        predicted_us = pred;
        measured_us = meas;
        rel_error;
        flagged = rel_error > threshold;
      })

let pp_calibration ppf entries =
  let open Format in
  fprintf ppf "%-28s %8s %14s %14s %9s %s@."
    "operator class" "samples" "predicted us" "measured us" "rel.err" "flag";
  List.iter
    (fun e ->
       fprintf ppf "%-28s %8d %14.1f %14.1f %9.3f %s@."
         e.cal_class e.samples e.predicted_us e.measured_us e.rel_error
         (if e.flagged then "FLAGGED" else "ok"))
    entries;
  let flagged = List.filter (fun e -> e.flagged) entries in
  if entries = [] then fprintf ppf "no calibration samples recorded@."
  else if flagged = [] then
    fprintf ppf "cost model calibrated: all %d classes within threshold@."
      (List.length entries)
  else
    fprintf ppf "COST MODEL DRIFT: %d of %d classes exceed the threshold@."
      (List.length flagged) (List.length entries)

(* ---- exporters ---- *)

let sorted_table fold_value tbl =
  Hashtbl.fold (fun k v acc -> (k, fold_value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json ?threshold t =
  let counters =
    sorted_table (fun r -> Json.Num (float_of_int !r)) t.counters
  in
  let gauges = sorted_table (fun r -> Json.Num !r) t.gauges in
  let histograms =
    sorted_table
      (fun h ->
         let s = stats_of h in
         Json.Obj
           [
             ("count", Json.Num (float_of_int s.count));
             ("min", Json.Num s.min);
             ("max", Json.Num s.max);
             ("sum", Json.Num s.sum);
             ("p50", Json.Num s.p50);
             ("p95", Json.Num s.p95);
             ("p99", Json.Num s.p99);
           ])
      t.histograms
  in
  let calibration =
    calibration_report ?threshold t
    |> List.map (fun e ->
        Json.Obj
          [
            ("class", Json.Str e.cal_class);
            ("samples", Json.Num (float_of_int e.samples));
            ("predicted_us", Json.Num e.predicted_us);
            ("measured_us", Json.Num e.measured_us);
            ("rel_error", Json.Num e.rel_error);
            ("flagged", Json.Bool e.flagged);
          ])
  in
  Json.to_string
    (Json.Obj
       [
         ("version", Json.Num 1.0);
         ("counters", Json.Obj counters);
         ("gauges", Json.Obj gauges);
         ("histograms", Json.Obj histograms);
         ("calibration", Json.Arr calibration);
         ("spans_recorded", Json.Num (float_of_int t.n_spans));
         ( "spans_dropped",
           Json.Num (float_of_int (counter t "metrics.spans_dropped")) );
       ])

let pid_name = function
  | 1 -> "device (global clock)"
  | 2 -> "sessions (virtual clock)"
  | n -> Printf.sprintf "pid %d" n

let to_chrome_trace t =
  let spans = List.rev t.spans_rev in
  let pids =
    List.sort_uniq compare (List.map (fun s -> s.s_pid) spans)
  in
  let metadata =
    List.map
      (fun pid ->
         Json.Obj
           [
             ("name", Json.Str "process_name");
             ("ph", Json.Str "M");
             ("pid", Json.Num (float_of_int pid));
             ("tid", Json.Num 0.0);
             ("args", Json.Obj [ ("name", Json.Str (pid_name pid)) ]);
           ])
      pids
  in
  let events =
    List.map
      (fun s ->
         Json.Obj
           [
             ("name", Json.Str s.s_name);
             ("cat", Json.Str s.s_cat);
             ("ph", Json.Str "X");
             ("pid", Json.Num (float_of_int s.s_pid));
             ("tid", Json.Num (float_of_int s.s_tid));
             ("ts", Json.Num s.s_ts);
             ("dur", Json.Num s.s_dur);
             ( "args",
               Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) s.s_args) );
           ])
      spans
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.Arr (metadata @ events));
         ("displayTimeUnit", Json.Str "ms");
       ])

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms;
  Hashtbl.reset t.cal;
  t.spans_rev <- [];
  t.n_spans <- 0;
  t.max_ts <- 0.0
