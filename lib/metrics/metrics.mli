(** Device-clock-driven observability registry.

    GhostDB's whole argument is quantitative — the planner's choices
    are justified by Flash/RAM/USB cost asymmetries — so every
    performance-critical subsystem (executor, scheduler, page cache,
    reorganization) can report into one of these registries:

    - {b counters}: monotone integers (page reads, cache hits, trace
      messages);
    - {b gauges}: floats with accumulate semantics (simulated device
      microseconds per component);
    - {b histograms}: log-scale bucket histograms of simulated device
      microseconds, answering p50/p95/p99 with a bounded relative
      error;
    - {b spans}: named intervals with per-link/per-operator arguments,
      exported as Chrome [trace_event] JSON for flamegraph-style
      inspection;
    - {b calibration samples}: predicted-vs-measured device time per
      operator class, summarized into the cost-model calibration
      report.

    A registry is {e pure data} — no closures — so a device holding one
    still marshals into an image. All timestamps are supplied by the
    caller in simulated device microseconds ({!Ghost_device.Device}
    passes its clock); the registry never reads the wall clock, which
    keeps every export deterministic and CI-comparable.

    Recording is host-side bookkeeping only: it never charges the
    device clock, so outputs with a registry attached are bit-identical
    to outputs without one. A disabled handle is simply the absence of
    a registry (one [match] per call site). *)

type t

val create : ?max_spans:int -> unit -> t
(** An empty registry. [max_spans] (default 200_000) bounds the span
    store; spans past the cap are dropped and counted in the
    [metrics.spans_dropped] counter (the drop is never silent). *)

(** {2 Counters and gauges} *)

val incr : t -> ?by:int -> string -> unit
val counter : t -> string -> int
(** Current value; 0 for a name never incremented. *)

val add_gauge : t -> string -> float -> unit
(** Accumulates [v] into the gauge (creating it at 0). *)

val gauge : t -> string -> float option

(** {2 Histograms}

    Log-scale buckets with growth factor {!gamma} per bucket: an
    estimated quantile is within a factor [sqrt gamma] of a value
    actually observed at that rank (and clamped to the exact observed
    min/max). Values below 1.0 (including 0) share the first bucket. *)

val gamma : float
(** Bucket growth factor (2{^1/4} ~ 1.19): quantile estimates carry at
    most ~9% relative error. *)

val observe : t -> string -> float -> unit
(** Records a value (simulated microseconds) into the named histogram.
    Negative values raise [Invalid_argument]. *)

type histogram_stats = {
  count : int;
  min : float;  (** exact observed minimum; [nan] when empty *)
  max : float;  (** exact observed maximum; [nan] when empty *)
  sum : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val histogram : t -> string -> histogram_stats option
val quantile : t -> string -> float -> float option
(** [quantile t name q] for [q] in [0, 1]; [None] for an unknown or
    empty histogram. Raises [Invalid_argument] outside [0, 1]. *)

(** {2 Spans (Chrome trace)} *)

val span :
  t ->
  name:string ->
  cat:string ->
  ?pid:int ->
  ?tid:int ->
  ?args:(string * float) list ->
  ts:float ->
  dur:float ->
  unit ->
  unit
(** Records a complete ("ph":"X") event. [ts] is the caller's device
    clock in microseconds (rebased by the registry's time origin, see
    {!rebase}); [pid]/[tid] group the flamegraph rows — the convention
    is pid 1 for the device's global clock (scheduler slices,
    reorganization phases) and pid 2 for per-session virtual time
    (executor operators), with [tid] the session id. *)

val span_count : t -> int
(** Spans retained (excludes dropped ones). *)

val rebase : t -> clock_now:float -> unit
(** Aligns the time origin so that events stamped from a clock
    currently at [clock_now] land after every span already recorded.
    Called when the registry is attached to a (possibly fresh) device,
    so one registry can profile a sequence of device instances without
    overlapping their timelines. *)

(** {2 Cost-model calibration} *)

val calibrate : t -> cls:string -> predicted_us:float -> measured_us:float -> unit
(** One predicted-vs-measured sample for an operator class (the
    planner's estimate against the device time actually charged). *)

type calibration_entry = {
  cal_class : string;
  samples : int;
  predicted_us : float;  (** sum over samples *)
  measured_us : float;  (** sum over samples *)
  rel_error : float;  (** |predicted - measured| / max(measured, 1) *)
  flagged : bool;  (** [rel_error > threshold] *)
}

val calibration_report : ?threshold:float -> t -> calibration_entry list
(** Per-class summary, sorted by class name. [threshold] (default 1.0,
    i.e. a 2x misprediction) sets the flag. Samples are folded in a
    sorted order, so the sums do not depend on completion order. *)

val pp_calibration : Format.formatter -> calibration_entry list -> unit
(** A plain-text table with a verdict line — the calibration report
    artifact. *)

(** {2 Exporters} *)

val to_json : ?threshold:float -> t -> string
(** The stable machine-readable [metrics.json]: [{"version", "counters",
    "gauges", "histograms", "calibration", "spans_recorded",
    "spans_dropped"}] with every map sorted by key. This is what the
    bench kit writes and the CI regression gate diffs. *)

val to_chrome_trace : t -> string
(** The span store as Chrome [trace_event] JSON (catapult / Perfetto's
    ["traceEvents"] format): load it in [chrome://tracing] or
    [ui.perfetto.dev] for flamegraph-style inspection. *)

val clear : t -> unit
(** Forgets everything (counters, histograms, spans, calibration); the
    time origin is kept. *)
