module Value = Ghost_kernel.Value

(** The USB link's wire codec.

    Two framings of the same spy-visible messages travel the
    [Pc_to_device] link:

    - [Verbose] — the seed encoding: one message per USB transfer,
      fixed-width fields (4-byte ids, [ty_width]-byte values, raw query
      text). Kept bit-identical so every seed output is reproducible.
    - [Compact] — interned single-byte opcodes, varint-delta id lists
      (the {!Ghost_kernel.Sorted_ids} gap convention), and coalesced
      frames: a burst of messages shares one frame header, one CRC-32
      trailer and one per-transfer protocol latency.

    Both encoders write into one reused, geometrically grown [Bytes]
    buffer owned by the {!encoder} — the id-list hot path allocates
    nothing per message. The codec is defined entirely over public
    (spy-visible) data: table and column {e names}, id lists and
    visible values already travel the link in [Verbose] form, so
    [Compact] reveals no new information — it is a shorter spelling of
    the same bytes the spy was always entitled to see (DESIGN.md
    section 13 gives the full argument).

    A frame is [magic, messages..., crc32]. A message is a one-byte
    opcode followed by its payload; table/column names are interned —
    the first use carries an inline definition, later uses a small
    back-reference — so steady-state traffic never repeats label
    strings. The receiver accepts a frame only after the CRC check, so
    a corrupted or truncated frame is rejected whole and retransmitted
    whole ({!Ghost_device.Device.usb_fault} operates on frames), and
    the label dictionary advances only on accepted frames, keeping
    sender and receiver dictionaries in lockstep. *)

type format = Verbose | Compact

val format_name : format -> string
(** ["verbose"] / ["compact"] — for reports and config dumps. *)

type message =
  | Query of string  (** the SQL text sent to the device *)
  | Id_list of { table : string; ids : int array }
      (** a sorted visible-selection id list (strictly increasing) *)
  | Value_stream of {
      table : string;
      column : string;
      ty : Value.ty;
      pairs : (int * Value.t) array;
          (** id-sorted [(id, value)] pairs of one visible column *)
    }

(** {2 Encoding} *)

type encoder
(** Owns the reused output buffer and the label-interning dictionary.
    One encoder per link endpoint: the dictionary persists across
    frames. *)

val encoder : unit -> encoder

val envelope_bytes : int
(** Fixed per-frame overhead of the compact framing: 1 magic byte +
    4 CRC-32 trailer bytes. *)

val begin_frame : encoder -> unit
(** Resets the buffer and opens a compact frame (writes the magic). *)

val add_message : encoder -> message -> int
(** Appends one compact message to the open frame, returning its
    encoded size in bytes (opcode + payload, excluding the frame
    envelope). Raises [Invalid_argument] if an id list or value stream
    is not strictly increasing non-negative. *)

val end_frame : encoder -> int
(** Seals the frame with its CRC-32 and returns the total frame length
    ([envelope_bytes] + sum of message sizes). *)

val frame : encoder -> bytes
(** A copy of the sealed frame (tests and the fuzzers; the simulator
    itself only meters the length). *)

val encode_verbose : encoder -> message -> int
(** Encodes one message in the seed's verbose framing into the reused
    buffer and returns its exact size: [length text] for a query,
    [4 * count] for an id list, [(4 + ty_width ty) * count] for a
    value stream — byte-for-byte the sizes the seed transport charged,
    now measured off a real encoding instead of estimated. *)

(** {2 Decoding} *)

type decoder
(** Mirrors the sender's label dictionary. The dictionary advances only
    when a frame is accepted, so a rejected (corrupt/truncated) frame
    never desynchronizes it. *)

val decoder : unit -> decoder

val decode_frame : decoder -> bytes -> pos:int -> len:int -> (message list, string) result
(** Validates and decodes one compact frame. Rejection — bad magic,
    CRC mismatch, truncation, unknown opcode, overlong varint,
    out-of-range label reference — returns [Error reason] and leaves
    the decoder state untouched; this function never raises, whatever
    the input bytes. *)

val decode_verbose_query : bytes -> pos:int -> len:int -> string
val decode_verbose_ids : bytes -> pos:int -> len:int -> (int array, string) result
val decode_verbose_values :
  ty:Value.ty -> bytes -> pos:int -> len:int -> ((int * Value.t) array, string) result
(** Readers for the verbose framing (round-trip tests: compact decode
    must equal verbose decode for every frame). *)

(** {2 Size estimation}

    The cost model's per-encoding byte predictions, kept next to the
    format definition so they cannot drift from it. [population] is
    the table cardinality the shipped subset was drawn from: the mean
    gap between consecutive selected ids is [population / count],
    which fixes the expected varint width. *)

val est_id_list_bytes : format -> population:float -> float -> float
(** [est_id_list_bytes fmt ~population count] — expected USB bytes of
    one shipped id list of [count] ids. *)

val est_value_stream_bytes :
  format -> population:float -> tys:Value.ty list -> float -> float
(** Expected bytes of streaming [count] rows of the projected visible
    columns [tys] of one table. Under [Verbose] this is the seed's
    lumped formula, [(4 + sum of widths) * count]; under [Compact]
    each column is its own stream of gap varints and compact values. *)
