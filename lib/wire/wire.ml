module Codec = Ghost_kernel.Codec
module Sorted_ids = Ghost_kernel.Sorted_ids
module Value = Ghost_kernel.Value

type format = Verbose | Compact

let format_name = function Verbose -> "verbose" | Compact -> "compact"

type message =
  | Query of string
  | Id_list of { table : string; ids : int array }
  | Value_stream of {
      table : string;
      column : string;
      ty : Value.ty;
      pairs : (int * Value.t) array;
    }

(* Frame layout: magic byte, messages, CRC-32 (big-endian u32) of
   everything before it. Message layout: opcode byte + payload. *)
let frame_magic = 0xC7
let op_query = 0x01
let op_id_list = 0x02
let op_value_stream = 0x03
let envelope_bytes = 5

(* ---- encoder ---- *)

type encoder = {
  mutable buf : Bytes.t;
  mutable len : int;
  labels : (string, int) Hashtbl.t;
  mutable n_labels : int;
}

let encoder () =
  { buf = Bytes.create 512; len = 0; labels = Hashtbl.create 16; n_labels = 0 }

let ensure e n =
  let need = e.len + n in
  if need > Bytes.length e.buf then begin
    let cap = ref (Bytes.length e.buf * 2) in
    while need > !cap do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit e.buf 0 b 0 e.len;
    e.buf <- b
  end

let put_byte e v =
  ensure e 1;
  Bytes.unsafe_set e.buf e.len (Char.unsafe_chr (v land 0xFF));
  e.len <- e.len + 1

let put_varint e v =
  ensure e (Codec.varint_size v);
  e.len <- Codec.put_varint_into e.buf e.len v

let put_string e s =
  let n = String.length s in
  ensure e n;
  Bytes.blit_string s 0 e.buf e.len n;
  e.len <- e.len + n

let put_bytes e b =
  let n = Bytes.length b in
  ensure e n;
  Bytes.blit b 0 e.buf e.len n;
  e.len <- e.len + n

(* Label interning: tag 0 introduces an inline definition (varint
   length + name bytes) bound to the next free index; tag k > 0 is a
   back-reference to index k-1. Steady-state traffic sends 1-2 bytes
   per label instead of the name. *)
let put_label e name =
  match Hashtbl.find_opt e.labels name with
  | Some idx -> put_varint e (idx + 1)
  | None ->
    Hashtbl.add e.labels name e.n_labels;
    e.n_labels <- e.n_labels + 1;
    put_varint e 0;
    put_varint e (String.length name);
    put_string e name

(* Any 63-bit pattern, treated unsigned (logical shifts), so zigzag
   covers the full int range — the direct-write analog of
   {!Codec.put_varint_bits}. *)
let put_uvarint e v =
  ensure e 10;
  let rec loop off v =
    if v lsr 7 = 0 then begin
      Bytes.unsafe_set e.buf off (Char.unsafe_chr (v land 0x7F));
      e.len <- off + 1
    end
    else begin
      Bytes.unsafe_set e.buf off (Char.unsafe_chr (0x80 lor (v land 0x7F)));
      loop (off + 1) (v lsr 7)
    end
  in
  loop e.len v

(* Compact values drop the fixed widths the Flash layout needs but the
   wire does not: ints and dates travel as zigzag varints, CHAR(n)
   strings as length-prefixed bytes with the '\000' padding trimmed
   (CHAR comparison ignores it, so the trim is lossless); floats keep
   their 8-byte order-preserving image. *)
let put_value e ty v =
  match (ty, v) with
  | Value.T_int, Value.Int i | Value.T_date, Value.Date i ->
    put_uvarint e ((i lsl 1) lxor (i asr 62))
  | Value.T_float, Value.Float _ -> put_bytes e (Value.encode ty v)
  | Value.T_char n, Value.Str s ->
    let len = min (String.length s) n in
    let len =
      let k = ref len in
      while !k > 0 && s.[!k - 1] = '\000' do
        decr k
      done;
      !k
    in
    put_varint e len;
    ensure e len;
    Bytes.blit_string s 0 e.buf e.len len;
    e.len <- e.len + len
  | _ -> invalid_arg "Wire.add_message: value does not match the column type"

let put_ty e ty =
  (match ty with
   | Value.T_int -> put_byte e 0
   | Value.T_float -> put_byte e 1
   | Value.T_date -> put_byte e 2
   | Value.T_char n ->
     put_byte e 3;
     put_varint e n)

let begin_frame e =
  e.len <- 0;
  put_byte e frame_magic

let add_message e msg =
  let start = e.len in
  (match msg with
   | Query text ->
     put_byte e op_query;
     put_varint e (String.length text);
     put_string e text
   | Id_list { table; ids } ->
     put_byte e op_id_list;
     put_label e table;
     put_varint e (Array.length ids);
     Sorted_ids.iter_deltas (fun d -> put_varint e d) ids
   | Value_stream { table; column; ty; pairs } ->
     put_byte e op_value_stream;
     put_label e table;
     put_label e column;
     put_ty e ty;
     put_varint e (Array.length pairs);
     (* Per pair: the gap varint carries a null flag in bit 0, so a
        non-null value follows as its fixed-width order-preserving
        encoding and a null costs nothing beyond the gap. *)
     let prev = ref (-1) in
     Array.iter
       (fun (id, v) ->
          if id <= !prev || id < 0 then
            invalid_arg "Wire.add_message: ids not strictly increasing";
          let delta = id - !prev - 1 in
          prev := id;
          if Value.is_null v then put_varint e ((delta lsl 1) lor 1)
          else begin
            put_varint e (delta lsl 1);
            put_value e ty v
          end)
       pairs);
  e.len - start

let end_frame e =
  let crc = Codec.crc32 e.buf ~pos:0 ~len:e.len in
  ensure e 4;
  Codec.put_u32 e.buf e.len crc;
  e.len <- e.len + 4;
  e.len

let frame e = Bytes.sub e.buf 0 e.len

(* The seed's framing, now actually encoded so the metered byte count
   is the real frame size rather than a per-constructor estimate. The
   sizes are identical to the seed's by construction. *)
let encode_verbose e msg =
  e.len <- 0;
  (match msg with
   | Query text -> put_string e text
   | Id_list { ids; _ } ->
     ensure e (4 * Array.length ids);
     Array.iter
       (fun id ->
          Codec.put_u32 e.buf e.len id;
          e.len <- e.len + 4)
       ids
   | Value_stream { ty; pairs; _ } ->
     let width = Value.ty_width ty in
     ensure e ((4 + width) * Array.length pairs);
     Array.iter
       (fun (id, v) ->
          Codec.put_u32 e.buf e.len id;
          e.len <- e.len + 4;
          if Value.is_null v then begin
            Bytes.fill e.buf e.len width '\000';
            e.len <- e.len + width
          end
          else begin
            Bytes.blit (Value.encode ty v) 0 e.buf e.len width;
            e.len <- e.len + width
          end)
       pairs);
  e.len

(* ---- decoder ---- *)

type decoder = {
  mutable names : string array;
  mutable n_names : int;
}

let decoder () = { names = Array.make 16 ""; n_names = 0 }

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let commit_name d name =
  if d.n_names = Array.length d.names then begin
    let a = Array.make (2 * d.n_names) "" in
    Array.blit d.names 0 a 0 d.n_names;
    d.names <- a
  end;
  d.names.(d.n_names) <- name;
  d.n_names <- d.n_names + 1

let decode_frame d b ~pos ~len =
  try
    if len < envelope_bytes then bad "frame shorter than envelope (%d bytes)" len;
    if pos < 0 || len < 0 || pos + len > Bytes.length b then
      bad "frame out of bounds";
    if Bytes.get_uint8 b pos <> frame_magic then bad "bad frame magic";
    let stored = Codec.get_u32 b (pos + len - 4) in
    let computed = Codec.crc32 b ~pos ~len:(len - 4) in
    if stored <> computed then bad "crc mismatch";
    let stop = pos + len - 4 in
    (* Label definitions are staged and committed only when the whole
       frame parses, so a frame rejected halfway never pollutes the
       dictionary. Stored newest-first. *)
    let staged = ref [] in
    let n_staged = ref 0 in
    let read_varint p =
      match Codec.get_varint_bounded b p ~stop with
      | Some r -> r
      | None -> bad "truncated or overlong varint"
    in
    let read_label p =
      let tag, p = read_varint p in
      if tag = 0 then begin
        let n, p = read_varint p in
        if n > stop - p then bad "truncated label definition";
        let name = Bytes.sub_string b p n in
        staged := name :: !staged;
        incr n_staged;
        (name, p + n)
      end
      else begin
        let i = tag - 1 in
        if i < d.n_names then (d.names.(i), p)
        else begin
          let j = i - d.n_names in
          if j < !n_staged then (List.nth !staged (!n_staged - 1 - j), p)
          else bad "label reference %d out of range" i
        end
      end
    in
    let read_ty p =
      if p >= stop then bad "truncated type tag";
      match Bytes.get_uint8 b p with
      | 0 -> (Value.T_int, p + 1)
      | 1 -> (Value.T_float, p + 1)
      | 2 -> (Value.T_date, p + 1)
      | 3 ->
        let n, p = read_varint (p + 1) in
        (Value.T_char n, p)
      | t -> bad "unknown type tag %d" t
    in
    let rec messages p acc =
      if p = stop then List.rev acc
      else begin
        let op = Bytes.get_uint8 b p in
        let p = p + 1 in
        if op = op_query then begin
          let n, p = read_varint p in
          if n > stop - p then bad "truncated query text";
          messages (p + n) (Query (Bytes.sub_string b p n) :: acc)
        end
        else if op = op_id_list then begin
          let table, p = read_label p in
          let count, p = read_varint p in
          (* every delta is at least one byte, so a count beyond the
             remaining frame is malformed (and bounds the alloc) *)
          if count > stop - p then bad "id count overflows frame";
          let ids = Array.make count 0 in
          let prev = ref (-1) in
          let pr = ref p in
          for i = 0 to count - 1 do
            let delta, p' = read_varint !pr in
            pr := p';
            let id = !prev + 1 + delta in
            if id < 0 then bad "id overflow";
            ids.(i) <- id;
            prev := id
          done;
          messages !pr (Id_list { table; ids } :: acc)
        end
        else if op = op_value_stream then begin
          let table, p = read_label p in
          let column, p = read_label p in
          let ty, p = read_ty p in
          let read_value p =
            match ty with
            | Value.T_int ->
              let u, p = read_varint p in
              (Value.Int ((u lsr 1) lxor (- (u land 1))), p)
            | Value.T_date ->
              let u, p = read_varint p in
              (Value.Date ((u lsr 1) lxor (- (u land 1))), p)
            | Value.T_float ->
              if 8 > stop - p then bad "truncated value";
              (Value.decode Value.T_float b p, p + 8)
            | Value.T_char n ->
              let len, p = read_varint p in
              if len > n then bad "char value longer than its type";
              if len > stop - p then bad "truncated value";
              (Value.Str (Bytes.sub_string b p len), p + len)
          in
          let count, p = read_varint p in
          if count > stop - p then bad "pair count overflows frame";
          let pairs = Array.make count (0, Value.Null) in
          let prev = ref (-1) in
          let pr = ref p in
          for i = 0 to count - 1 do
            let tagged, p' = read_varint !pr in
            pr := p';
            let id = !prev + 1 + (tagged lsr 1) in
            if id < 0 then bad "id overflow";
            prev := id;
            if tagged land 1 = 1 then pairs.(i) <- (id, Value.Null)
            else begin
              let v, p' = read_value !pr in
              pairs.(i) <- (id, v);
              pr := p'
            end
          done;
          messages !pr (Value_stream { table; column; ty; pairs } :: acc)
        end
        else bad "unknown opcode 0x%02x" op
      end
    in
    let msgs = messages (pos + 1) [] in
    List.iter (commit_name d) (List.rev !staged);
    Ok msgs
  with
  | Bad m -> Error m
  | Invalid_argument m -> Error ("malformed frame: " ^ m)

let decode_verbose_query b ~pos ~len = Bytes.sub_string b pos len

let decode_verbose_ids b ~pos ~len =
  if len mod 4 <> 0 then Error "id list length not a multiple of 4"
  else Ok (Array.init (len / 4) (fun i -> Codec.get_u32 b (pos + (4 * i))))

let decode_verbose_values ~ty b ~pos ~len =
  let width = Value.ty_width ty in
  if len mod (4 + width) <> 0 then Error "value stream length not a pair multiple"
  else
    Ok
      (Array.init
         (len / (4 + width))
         (fun i ->
            let off = pos + (i * (4 + width)) in
            (Codec.get_u32 b off, Value.decode ty b (off + 4))))

(* ---- size estimation (cost model) ---- *)

(* opcode + interned labels + count varint + the frame envelope's
   amortized share: small against any list worth predicting *)
let header_overhead = 10.

let est_id_list_bytes fmt ~population count =
  match fmt with
  | Verbose -> 4. *. count
  | Compact ->
    if count <= 0. then 0.
    else begin
      let gap = Float.max 1. (population /. count) in
      let per = Float.of_int (Codec.varint_size (int_of_float gap)) in
      (count *. per) +. header_overhead
    end

(* Expected compact bytes of one value: ints and dates are small-gap
   zigzag varints in practice, floats stay 8 bytes, CHAR(n) averages a
   half-full field plus its length byte. *)
let est_value_bytes = function
  | Value.T_int | Value.T_date -> 3.
  | Value.T_float -> 8.
  | Value.T_char n -> (Float.of_int n /. 2.) +. 1.

let est_value_stream_bytes fmt ~population ~tys count =
  match fmt with
  | Verbose ->
    (* the seed's lumped per-table formula: one 4-byte id plus the
       combined projected width per streamed row — bit-identical *)
    let width = List.fold_left (fun acc ty -> acc + Value.ty_width ty) 0 tys in
    Float.of_int (4 + width) *. count
  | Compact ->
    if count <= 0. then 0.
    else begin
      let gap = Float.max 1. (population /. count) in
      let gap_bytes = Float.of_int (Codec.varint_size (2 * int_of_float gap)) in
      (* each projected column travels as its own stream, paying its
         own gap varints and frame-amortized header *)
      List.fold_left
        (fun acc ty ->
           acc +. (count *. (gap_bytes +. est_value_bytes ty)) +. header_overhead)
        0. tys
    end
