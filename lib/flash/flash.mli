(** NAND Flash simulator.

    Models the external Flash of the smart USB device (Figure 2 of the
    paper): page-granularity programming with {e no in-place writes}
    (a page can only be programmed when in the erased state), block-
    granularity erasure, and asymmetric costs — programming a page is
    3–10× slower than reading it, and partial-page reads are cheaper
    than full-page reads.

    The simulator enforces the programming discipline (programming a
    non-erased page raises) and meters every operation through a
    configurable cost model, accumulating simulated time that the
    device clock reports. *)

type geometry = {
  page_size : int;  (** bytes per page (default 2048) *)
  pages_per_block : int;  (** pages per erase block (default 64) *)
}

val default_geometry : geometry

type cost = {
  read_seek_us : float;  (** fixed cost to open a page for reading *)
  read_byte_us : float;  (** per byte actually transferred *)
  program_seek_us : float;  (** fixed cost to program a page *)
  program_byte_us : float;  (** per byte programmed *)
  erase_us : float;  (** per block erase *)
}

val default_cost : cost
(** Calibrated so that a full-page program costs ~5× a full-page read,
    inside the 3–10× envelope the paper gives. *)

val cost_with_write_ratio : float -> cost
(** [cost_with_write_ratio r] — the default cost model rescaled so a
    full-page program costs [r] × a full-page read (used by the Flash
    asymmetry sweep, experiment E6). *)

type stats = {
  page_reads : int;
  bytes_read : int;
  page_programs : int;
  bytes_programmed : int;
  block_erases : int;
  read_time_us : float;
  write_time_us : float;
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val diff_stats : after:stats -> before:stats -> stats
val total_time_us : stats -> float

(** {2 Fault model}

    Real NAND exhibits read bit-rot, program failures that retire whole
    blocks, and torn pages when power is cut mid-program. The simulator
    reproduces all three, deterministically, from a seeded
    {!Ghost_kernel.Rng}: a [fault_config] attached at creation (or via
    {!set_fault}) drives probabilistic bit flips and program failures,
    while {!arm_power_cut} schedules an abrupt power loss at an exact
    future program. With no fault config and no armed power cut (the
    default), every code path, counter and cost is bit-identical to the
    fault-free simulator. *)

type fault_config = {
  fault_seed : int;  (** seed of the injection generator *)
  read_flip_prob : float;  (** per page-read probability of a bit flip *)
  program_fail_prob : float;  (** per program-attempt failure probability *)
  ecc : bool;  (** controller ECC corrects read flips (metered re-read) *)
  max_program_retries : int;  (** remap attempts before giving up *)
}

val no_faults : fault_config
(** All probabilities zero, ECC on — the base for [{ no_faults with ... }]
    sweeps. *)

type fault_stats = {
  bit_flips : int;  (** raw bit errors observed by reads *)
  ecc_corrected : int;  (** of which the controller ECC corrected *)
  ecc_uncorrected : int;
      (** bit errors served corrupt to the caller — ECC off, or damage
          beyond the code's correction capacity *)
  program_failures : int;  (** program attempts that failed *)
  pages_remapped : int;  (** writes transparently moved to spare pages *)
  bad_blocks_marked : int;  (** blocks retired from allocation *)
  power_cuts : int;  (** torn programs (see {!arm_power_cut}) *)
}

val zero_fault_stats : fault_stats
val add_fault_stats : fault_stats -> fault_stats -> fault_stats
val diff_fault_stats : after:fault_stats -> before:fault_stats -> fault_stats

type t

exception Program_error of string
(** Raised on an attempt to program a non-erased page, to overflow a
    page, or when a program keeps failing after exhausting the
    fault model's remap retries. *)

exception Power_cut of { page : int; programmed : int }
(** Raised by the program that an armed power cut interrupts: [page]
    was left torn with only [programmed] bytes (a strict prefix of the
    intended content) in its cells. The device is assumed to restart;
    higher layers must run their recovery protocol before appending
    again. *)

exception Integrity_error of { page : int; what : string }
(** Raised by {!verify_image} (and through it by every verifying
    reader) when a page's CRC-32 trailer does not match its content:
    corrupt bytes were about to flow into the executor. *)

val create : ?geometry:geometry -> ?cost:cost -> ?fault:fault_config -> unit -> t
val geometry : t -> geometry
val set_cost : t -> cost -> unit

val set_fault : t -> fault_config option -> unit
(** Replaces the fault model (and reseeds its generator). [None]
    restores fault-free operation. *)

val arm_power_cut : t -> after_programs:int -> unit
(** [arm_power_cut t ~after_programs:n] makes the [n]-th page program
    from now tear mid-flight and raise {!Power_cut}. One-shot. The
    countdown lives on the region's {!power_line}: regions sharing a
    line count programs jointly, whichever region issues them. *)

val disarm_power_cut : t -> unit
(** Cancels a pending armed power cut on the region's power line (the
    sweep harnesses disarm once a run survives past the armed index). *)

(** {2 Power supply}

    One physical device has one power supply, but the simulator models
    its Flash as several regions (main store, scratch, and — during an
    offline reorganization — the shadow image being built). Sharing a
    [power_line] makes an armed power cut fire at the n-th program
    {e across} the connected regions, as it would on real hardware. *)

type power_line

val power_line : t -> power_line
val share_power : t -> with_:t -> unit
(** [share_power t ~with_] puts [t] on [with_]'s power line: a cut
    armed on either region counts both regions' programs. A region
    starts on its own private line. *)

val append : t -> bytes -> int
(** Programs a fresh (erased) page with the given content — at most
    [page_size] bytes; shorter content is implicitly padded with zeros.
    Returns the page identifier. Prefers recycling erased pages before
    growing the store; pages of bad blocks are never handed out. Under
    an active fault model a failed program marks its block bad and is
    transparently remapped to a spare page (each attempt is metered);
    {!Program_error} is raised only when [max_program_retries]
    consecutive attempts fail. *)

val program : t -> page:int -> bytes -> unit
(** Programs a {e specific} already-allocated page — the raw NAND
    page-program operation. Raises {!Program_error} if the page is not
    in the erased state (no in-place writes). Subject to an armed
    power cut, but not to probabilistic program failures (there is no
    spare to remap a targeted program to). *)

val read : t -> page:int -> off:int -> len:int -> bytes
(** Partial-page read; cost = seek + [len] bytes. Raises
    [Invalid_argument] on an out-of-bounds range or a never-programmed
    page. Under an active fault model a read may suffer a bit flip:
    with ECC on it is corrected at the cost of a metered re-read; with
    ECC off the corrupted buffer is returned as-is. *)

val read_page : t -> int -> bytes
(** Full-page read. *)

(** {2 Authenticated pages}

    With authentication on, structure-page writers reserve the last
    {!auth_trailer_bytes} of every page for a CRC-32 of the rest, so
    any reader can verify a served page end-to-end — catching exactly
    the flips ECC misses. Off by default: an unauthenticated device is
    bit-identical to the seed simulator. *)

val set_authenticated : t -> bool -> unit
val authenticated : t -> bool

val auth_trailer_bytes : int
(** Bytes of each page the CRC-32 trailer occupies (4). Sealed pages
    carry [page_size - auth_trailer_bytes] bytes of payload. *)

val seal_page : t -> bytes -> bytes
(** [seal_page t payload] — a full page image: payload, zero padding,
    CRC-32 trailer. Raises {!Program_error} if the payload exceeds the
    sealed capacity. Pure; the caller programs the result. *)

val verify_image : t -> page:int -> bytes -> unit
(** Checks a full-page image against its trailer; raises
    {!Integrity_error} on mismatch. Pure and uncharged — the caller
    already paid for the read that produced the image. *)

val page_intact : t -> page:int -> bool
(** Re-reads [page] straight from the cells (metered) and reports
    whether its trailer verifies — classifies a caught
    {!Integrity_error} as transient (stale cache frame, since-repaired
    damage) or persistent (bad cells). [false] for erased pages. *)

(** {2 Latent corruption and refresh}

    {!read}'s probabilistic flips model transient read disturbs; these
    entry points model {e retention failure} — bits decaying in the
    cells, visible to every later read until the page is erased or
    refreshed. They are the corruption source for integrity tests and
    E21, and the damage the scrubber exists to catch. *)

val corrupt_stored : t -> page:int -> bit:int -> unit
(** Toggles one stored bit of a programmed page, free of simulated
    charge (cosmic rays do not bill the clock). Toggling the same bit
    twice restores it. A read window covering the bit observes it: one
    flipped bit per page is within ECC correction capacity (corrected,
    metered re-read); more than one — or ECC off — reaches the caller's
    buffer and bumps [ecc_uncorrected]. *)

val page_errors : t -> int -> int
(** Stored bits currently flipped on the page (0 for clean pages). *)

val is_programmed : t -> int -> bool
(** Whether the page is in the programmed state (in range, not erased). *)

val rewrite_page : t -> page:int -> unit
(** Scrub refresh: reads the page (ECC-corrected) and reprograms the
    content onto a spare, the logical id staying stable — the FTL's
    spare-area remap. Clears its latent flips; charged one full-page
    read plus one program. Raises [Invalid_argument] if the page is not
    programmed. *)

val erase_block : t -> int -> unit
(** Erases the given block (all its pages become programmable again;
    their previous content is lost). A retired (bad) block is left
    untouched and uncharged. *)

val erase_pages : t -> int list -> unit
(** Erases every block that intersects the given page list. Convenience
    for reclaiming scratch runs; note whole blocks are erased, as on
    real NAND. *)

val erase_live_blocks : t -> unit
(** Erases every block that currently holds programmed pages (used to
    reclaim the scratch region after a query). *)

val page_count : t -> int
(** Number of pages ever allocated (high-water mark of the store). *)

val live_bytes : t -> int
(** Bytes currently programmed (storage-footprint metric for E9). *)

val stats : t -> stats
(** Snapshot of the counters since creation (or last {!reset_stats}). *)

val reset_stats : t -> unit

val fault_stats : t -> fault_stats
(** Fault-injection counters since creation (never reset by
    {!reset_stats} — faults are lifetime events of the chip). *)

val bad_block_count : t -> int
(** Blocks currently retired from allocation. *)

val time_us : t -> float
(** [total_time_us (stats t)]. *)
