module Rng = Ghost_kernel.Rng
module Codec = Ghost_kernel.Codec

type geometry = {
  page_size : int;
  pages_per_block : int;
}

let default_geometry = { page_size = 2048; pages_per_block = 64 }

type cost = {
  read_seek_us : float;
  read_byte_us : float;
  program_seek_us : float;
  program_byte_us : float;
  erase_us : float;
}

(* Full-page read: 25 + 2048*0.025 ~ 76 us; full-page program:
   200 + 2048*0.09 ~ 384 us, i.e. ~5x a read. Erase ~1.5 ms. These are
   typical small-block NAND figures of the paper's era. *)
let default_cost = {
  read_seek_us = 25.0;
  read_byte_us = 0.025;
  program_seek_us = 200.0;
  program_byte_us = 0.09;
  erase_us = 1500.0;
}

let cost_with_write_ratio r =
  if r <= 0. then invalid_arg "Flash.cost_with_write_ratio";
  let g = default_geometry in
  let read_full =
    default_cost.read_seek_us +. (Float.of_int g.page_size *. default_cost.read_byte_us)
  in
  let target = r *. read_full in
  (* Keep the seek/byte split of the default program cost. *)
  let base =
    default_cost.program_seek_us
    +. (Float.of_int g.page_size *. default_cost.program_byte_us)
  in
  let scale = target /. base in
  { default_cost with
    program_seek_us = default_cost.program_seek_us *. scale;
    program_byte_us = default_cost.program_byte_us *. scale }

type stats = {
  page_reads : int;
  bytes_read : int;
  page_programs : int;
  bytes_programmed : int;
  block_erases : int;
  read_time_us : float;
  write_time_us : float;
}

let zero_stats = {
  page_reads = 0;
  bytes_read = 0;
  page_programs = 0;
  bytes_programmed = 0;
  block_erases = 0;
  read_time_us = 0.;
  write_time_us = 0.;
}

let add_stats a b = {
  page_reads = a.page_reads + b.page_reads;
  bytes_read = a.bytes_read + b.bytes_read;
  page_programs = a.page_programs + b.page_programs;
  bytes_programmed = a.bytes_programmed + b.bytes_programmed;
  block_erases = a.block_erases + b.block_erases;
  read_time_us = a.read_time_us +. b.read_time_us;
  write_time_us = a.write_time_us +. b.write_time_us;
}

let diff_stats ~after ~before = {
  page_reads = after.page_reads - before.page_reads;
  bytes_read = after.bytes_read - before.bytes_read;
  page_programs = after.page_programs - before.page_programs;
  bytes_programmed = after.bytes_programmed - before.bytes_programmed;
  block_erases = after.block_erases - before.block_erases;
  read_time_us = after.read_time_us -. before.read_time_us;
  write_time_us = after.write_time_us -. before.write_time_us;
}

let total_time_us s = s.read_time_us +. s.write_time_us

type fault_config = {
  fault_seed : int;
  read_flip_prob : float;
  program_fail_prob : float;
  ecc : bool;
  max_program_retries : int;
}

let no_faults = {
  fault_seed = 0;
  read_flip_prob = 0.;
  program_fail_prob = 0.;
  ecc = true;
  max_program_retries = 4;
}

type fault_stats = {
  bit_flips : int;
  ecc_corrected : int;
  ecc_uncorrected : int;
  program_failures : int;
  pages_remapped : int;
  bad_blocks_marked : int;
  power_cuts : int;
}

let zero_fault_stats = {
  bit_flips = 0;
  ecc_corrected = 0;
  ecc_uncorrected = 0;
  program_failures = 0;
  pages_remapped = 0;
  bad_blocks_marked = 0;
  power_cuts = 0;
}

let add_fault_stats a b = {
  bit_flips = a.bit_flips + b.bit_flips;
  ecc_corrected = a.ecc_corrected + b.ecc_corrected;
  ecc_uncorrected = a.ecc_uncorrected + b.ecc_uncorrected;
  program_failures = a.program_failures + b.program_failures;
  pages_remapped = a.pages_remapped + b.pages_remapped;
  bad_blocks_marked = a.bad_blocks_marked + b.bad_blocks_marked;
  power_cuts = a.power_cuts + b.power_cuts;
}

let diff_fault_stats ~after ~before = {
  bit_flips = after.bit_flips - before.bit_flips;
  ecc_corrected = after.ecc_corrected - before.ecc_corrected;
  ecc_uncorrected = after.ecc_uncorrected - before.ecc_uncorrected;
  program_failures = after.program_failures - before.program_failures;
  pages_remapped = after.pages_remapped - before.pages_remapped;
  bad_blocks_marked = after.bad_blocks_marked - before.bad_blocks_marked;
  power_cuts = after.power_cuts - before.power_cuts;
}

type page_state =
  | Erased
  | Programmed of { data : bytes; len : int }

(* The simulated power supply. Several Flash regions of one physical
   device (main store, scratch, a shadow image under construction)
   share a line: an armed power cut fires at the n-th page program
   counted across every connected region, whichever region issues it. *)
type power_line = { mutable cut_after : int option }

type t = {
  geometry : geometry;
  mutable cost : cost;
  mutable pages : page_state array;
  mutable page_high_water : int;  (* pages ever allocated *)
  mutable free : int list;  (* erased pages below the high-water mark *)
  mutable stats : stats;
  mutable fault : fault_config option;
  mutable rng : Rng.t option;
  bad_blocks : (int, unit) Hashtbl.t;
  mutable power : power_line;  (* countdown over page programs *)
  mutable fault_stats : fault_stats;
  mutable authenticated : bool;  (* pages carry a CRC-32 trailer *)
  flipped : (int, int list) Hashtbl.t;
      (* page -> stored-bit indexes currently flipped in the cells *)
}

exception Program_error of string
exception Power_cut of { page : int; programmed : int }
exception Integrity_error of { page : int; what : string }

let create ?(geometry = default_geometry) ?(cost = default_cost) ?fault () = {
  geometry;
  cost;
  pages = Array.make 1024 Erased;
  page_high_water = 0;
  free = [];
  stats = zero_stats;
  fault;
  rng = Option.map (fun f -> Rng.create f.fault_seed) fault;
  bad_blocks = Hashtbl.create 8;
  power = { cut_after = None };
  fault_stats = zero_fault_stats;
  authenticated = false;
  flipped = Hashtbl.create 8;
}

let geometry t = t.geometry
let set_cost t cost = t.cost <- cost

let set_fault t fault =
  t.fault <- fault;
  t.rng <- Option.map (fun f -> Rng.create f.fault_seed) fault

let set_authenticated t flag = t.authenticated <- flag
let authenticated t = t.authenticated

let auth_trailer_bytes = 4

(* An authenticated page: payload | zero padding | CRC-32 of everything
   before the trailer. Sealing always emits a full page so the trailer
   sits at a fixed offset readers can find without a length header. *)
let seal_page t payload =
  let cap = t.geometry.page_size - auth_trailer_bytes in
  let len = Bytes.length payload in
  if len > cap then
    raise (Program_error
             (Printf.sprintf "seal_page: %d bytes exceeds sealed capacity %d"
                len cap));
  let page = Bytes.make t.geometry.page_size '\000' in
  Bytes.blit payload 0 page 0 len;
  Codec.put_u32 page cap (Codec.crc32 page ~pos:0 ~len:cap);
  page

let verify_image t ~page img =
  let cap = t.geometry.page_size - auth_trailer_bytes in
  if Codec.get_u32 img cap <> Codec.crc32 img ~pos:0 ~len:cap then
    raise (Integrity_error { page; what = "page CRC trailer mismatch" })

let is_programmed t page =
  page >= 0 && page < t.page_high_water
  && (match t.pages.(page) with Programmed _ -> true | Erased -> false)

let ecc_enabled t =
  match t.fault with Some f -> f.ecc | None -> true

(* Latent cell corruption: toggle a stored bit in place, without
   touching the simulated clock. Used by tests, chaos harnesses and
   experiments; toggling the same bit twice restores it. The flip lives
   in the cells, so every subsequent read of the page observes it until
   the page is erased or refreshed. *)
let corrupt_stored t ~page ~bit =
  if not (is_programmed t page) then
    invalid_arg (Printf.sprintf "Flash.corrupt_stored: page %d not programmed" page);
  if bit < 0 || bit >= t.geometry.page_size * 8 then
    invalid_arg "Flash.corrupt_stored: bit out of page bounds";
  let bits = Option.value ~default:[] (Hashtbl.find_opt t.flipped page) in
  let bits =
    if List.mem bit bits then List.filter (fun b -> b <> bit) bits
    else bit :: bits
  in
  if bits = [] then Hashtbl.remove t.flipped page
  else Hashtbl.replace t.flipped page bits

let page_errors t page =
  match Hashtbl.find_opt t.flipped page with
  | Some bits -> List.length bits
  | None -> 0

let arm_power_cut t ~after_programs =
  if after_programs < 1 then invalid_arg "Flash.arm_power_cut";
  t.power.cut_after <- Some after_programs

let disarm_power_cut t = t.power.cut_after <- None

let power_line t = t.power
let share_power t ~with_ = t.power <- with_.power

let block_of t page = page / t.geometry.pages_per_block
let is_bad_block t block = Hashtbl.mem t.bad_blocks block
let bad_block_count t = Hashtbl.length t.bad_blocks

let grow t needed =
  if needed > Array.length t.pages then begin
    let pages = Array.make (max needed (2 * Array.length t.pages)) Erased in
    Array.blit t.pages 0 pages 0 t.page_high_water;
    t.pages <- pages
  end

(* Next programmable page: recycled erased pages first, then fresh
   ones past the high-water mark. Pages in bad blocks are never handed
   out again. *)
let rec alloc_page t =
  match t.free with
  | p :: rest ->
    t.free <- rest;
    if is_bad_block t (block_of t p) then alloc_page t else p
  | [] ->
    grow t (t.page_high_water + 1);
    let p = t.page_high_water in
    t.page_high_water <- p + 1;
    if is_bad_block t (block_of t p) then alloc_page t else p

let charge_program t len =
  t.stats <- {
    t.stats with
    page_programs = t.stats.page_programs + 1;
    bytes_programmed = t.stats.bytes_programmed + len;
    write_time_us =
      t.stats.write_time_us
      +. t.cost.program_seek_us
      +. (Float.of_int len *. t.cost.program_byte_us);
  }

(* A power cut mid-program leaves the page torn: a strict prefix of
   the intended content made it to the cells, the rest reads back as
   erased padding. The prefix always drops at least one meaningful
   (non-zero) byte, so a torn page can never masquerade as the
   completed program. *)
let tear t page data len =
  let last_nonzero = ref (-1) in
  for i = 0 to len - 1 do
    if Bytes.get data i <> '\000' then last_nonzero := i
  done;
  let programmed =
    if !last_nonzero < 0 then 0
    else
      match t.rng with
      | Some rng -> Rng.int rng (!last_nonzero + 1)
      | None -> (!last_nonzero + 1) / 2
  in
  t.pages.(page) <- Programmed { data = Bytes.sub data 0 programmed; len = programmed };
  charge_program t programmed;
  t.fault_stats <- { t.fault_stats with power_cuts = t.fault_stats.power_cuts + 1 };
  raise (Power_cut { page; programmed })

(* Program an erased page, honouring an armed power cut. *)
let program_cells t page data len =
  (match t.pages.(page) with
   | Erased -> ()
   | Programmed _ ->
     raise (Program_error (Printf.sprintf "page %d is not erased" page)));
  (match t.power.cut_after with
   | Some n when n <= 1 ->
     t.power.cut_after <- None;
     tear t page data len
   | Some n -> t.power.cut_after <- Some (n - 1)
   | None -> ());
  t.pages.(page) <- Programmed { data = Bytes.copy data; len };
  charge_program t len

(* Does the fault model veto this program attempt? *)
let program_fails t =
  match t.fault, t.rng with
  | Some f, Some rng when f.program_fail_prob > 0. ->
    Rng.float rng 1.0 < f.program_fail_prob
  | _ -> false

let append t data =
  let len = Bytes.length data in
  if len > t.geometry.page_size then
    raise (Program_error
             (Printf.sprintf "append: %d bytes exceeds page size %d" len
                t.geometry.page_size));
  let rec attempt tries =
    let page = alloc_page t in
    if program_fails t then begin
      (* The program operation fails (worn or marginal cells): the
         attempt still costs time, the block is marked bad so none of
         its pages are handed out again, and the write is remapped to
         a spare page in a healthy block. *)
      charge_program t len;
      let block = block_of t page in
      if not (Hashtbl.mem t.bad_blocks block) then begin
        Hashtbl.replace t.bad_blocks block ();
        t.fault_stats <-
          { t.fault_stats with
            bad_blocks_marked = t.fault_stats.bad_blocks_marked + 1 }
      end;
      t.fault_stats <-
        { t.fault_stats with
          program_failures = t.fault_stats.program_failures + 1 };
      let max_retries =
        match t.fault with Some f -> f.max_program_retries | None -> 0
      in
      if tries >= max_retries then
        raise (Program_error
                 (Printf.sprintf "page %d: program failed after %d attempts"
                    page (tries + 1)))
      else begin
        t.fault_stats <-
          { t.fault_stats with
            pages_remapped = t.fault_stats.pages_remapped + 1 };
        attempt (tries + 1)
      end
    end
    else begin
      program_cells t page data len;
      page
    end
  in
  attempt 0

let program t ~page data =
  let len = Bytes.length data in
  if len > t.geometry.page_size then
    raise (Program_error
             (Printf.sprintf "program: %d bytes exceeds page size %d" len
                t.geometry.page_size));
  if page < 0 || page >= t.page_high_water then
    invalid_arg (Printf.sprintf "Flash.program: page %d out of range" page);
  t.free <- List.filter (fun p -> p <> page) t.free;
  program_cells t page data len

let charge_read t len =
  t.stats <- {
    t.stats with
    page_reads = t.stats.page_reads + 1;
    bytes_read = t.stats.bytes_read + len;
    read_time_us =
      t.stats.read_time_us
      +. t.cost.read_seek_us
      +. (Float.of_int len *. t.cost.read_byte_us);
  }

(* Bit-rot injection on the buffer handed back to the caller. With ECC
   on (the realistic default), the controller detects the flip against
   the spare-area code and corrects it with a metered re-read; with ECC
   off, the flipped bit propagates and only an end-to-end checksum at a
   higher layer can catch it. *)
let inject_read_faults t out len =
  match t.fault, t.rng with
  | Some f, Some rng
    when f.read_flip_prob > 0. && len > 0 && Rng.float rng 1.0 < f.read_flip_prob ->
    t.fault_stats <- { t.fault_stats with bit_flips = t.fault_stats.bit_flips + 1 };
    if f.ecc then begin
      t.fault_stats <-
        { t.fault_stats with ecc_corrected = t.fault_stats.ecc_corrected + 1 };
      charge_read t len  (* the corrective re-read *)
    end
    else begin
      t.fault_stats <-
        { t.fault_stats with ecc_uncorrected = t.fault_stats.ecc_uncorrected + 1 };
      let bit = Rng.int rng (len * 8) in
      let byte = bit / 8 in
      Bytes.set out byte
        (Char.chr (Char.code (Bytes.get out byte) lxor (1 lsl (bit mod 8))))
    end
  | _ -> ()

(* Latent cell flips (see [corrupt_stored]) observed by a read of
   [off, off+len). A single flipped bit on the page is within the ECC
   code's correction capacity: the controller fixes it with a metered
   re-read and the caller sees clean data. More flips than that — or
   ECC off — and the damage reaches the returned buffer. *)
let apply_stored_flips t ~page ~off ~len out =
  match Hashtbl.find_opt t.flipped page with
  | None -> ()
  | Some bits ->
    let overlapping =
      List.filter (fun b -> b / 8 >= off && b / 8 < off + len) bits
    in
    if overlapping <> [] then begin
      t.fault_stats <-
        { t.fault_stats with
          bit_flips = t.fault_stats.bit_flips + List.length overlapping };
      if ecc_enabled t && List.length bits = 1 then begin
        t.fault_stats <-
          { t.fault_stats with ecc_corrected = t.fault_stats.ecc_corrected + 1 };
        charge_read t len  (* the corrective re-read *)
      end
      else begin
        t.fault_stats <-
          { t.fault_stats with
            ecc_uncorrected =
              t.fault_stats.ecc_uncorrected + List.length overlapping };
        List.iter
          (fun b ->
             let byte = (b / 8) - off in
             Bytes.set out byte
               (Char.chr (Char.code (Bytes.get out byte) lxor (1 lsl (b mod 8)))))
          overlapping
      end
    end

let read t ~page ~off ~len =
  if page < 0 || page >= t.page_high_water then
    invalid_arg (Printf.sprintf "Flash.read: page %d out of range" page);
  match t.pages.(page) with
  | Erased -> invalid_arg (Printf.sprintf "Flash.read: page %d is erased" page)
  | Programmed { data; len = plen } ->
    if off < 0 || len < 0 || off + len > t.geometry.page_size then
      invalid_arg "Flash.read: range out of page bounds";
    charge_read t len;
    let out = Bytes.make len '\000' in
    (* Bytes past the programmed prefix read back as zeros (padding). *)
    let avail = max 0 (min len (plen - off)) in
    if avail > 0 then Bytes.blit data off out 0 avail;
    apply_stored_flips t ~page ~off ~len out;
    inject_read_faults t out len;
    out

let read_page t page = read t ~page ~off:0 ~len:t.geometry.page_size

(* Classify a failed verify: does a fresh full-page read (straight from
   the cells, no cache in this layer) pass the trailer check? If so the
   earlier corruption was transient (injected on the wire out of the
   cells, or since repaired); if not, the damage is in the cells. *)
let page_intact t ~page =
  if not t.authenticated then
    invalid_arg "Flash.page_intact: device is not authenticated";
  if not (is_programmed t page) then false
  else
    match verify_image t ~page (read_page t page) with
    | () -> true
    | exception Integrity_error _ -> false

(* In-place refresh of a decaying page: read the (ECC-corrected)
   content and reprogram it onto a spare, keeping the logical page id
   stable — the simulated FTL's spare-area remap. Clears the latent
   flips; charged as one read plus one program. *)
let rewrite_page t ~page =
  if not (is_programmed t page) then
    invalid_arg (Printf.sprintf "Flash.rewrite_page: page %d not programmed" page);
  (match t.pages.(page) with
   | Programmed { len; _ } ->
     charge_read t t.geometry.page_size;
     charge_program t len
   | Erased -> assert false);
  Hashtbl.remove t.flipped page

let erase_block t block =
  let first = block * t.geometry.pages_per_block in
  if first < 0 then invalid_arg "Flash.erase_block";
  if is_bad_block t block then ()  (* bad blocks are retired, never erased *)
  else begin
    let last = min (t.page_high_water - 1) (first + t.geometry.pages_per_block - 1) in
    for p = first to last do
      (match t.pages.(p) with
       | Programmed _ ->
         t.pages.(p) <- Erased;
         Hashtbl.remove t.flipped p;
         t.free <- p :: t.free
       | Erased -> ())
    done;
    t.stats <- {
      t.stats with
      block_erases = t.stats.block_erases + 1;
      write_time_us = t.stats.write_time_us +. t.cost.erase_us;
    }
  end

let erase_pages t pages =
  let module Iset = Set.Make (Int) in
  let blocks =
    List.fold_left
      (fun acc p -> Iset.add (p / t.geometry.pages_per_block) acc)
      Iset.empty pages
  in
  Iset.iter (erase_block t) blocks

let erase_live_blocks t =
  let ppb = t.geometry.pages_per_block in
  let n_blocks = (t.page_high_water + ppb - 1) / ppb in
  for block = 0 to n_blocks - 1 do
    let first = block * ppb in
    let last = min (t.page_high_water - 1) (first + ppb - 1) in
    let live = ref false in
    for p = first to last do
      match t.pages.(p) with
      | Programmed _ -> live := true
      | Erased -> ()
    done;
    if !live then erase_block t block
  done

let page_count t = t.page_high_water

let live_bytes t =
  let total = ref 0 in
  for p = 0 to t.page_high_water - 1 do
    match t.pages.(p) with
    | Programmed { len; _ } -> total := !total + len
    | Erased -> ()
  done;
  !total

let stats t = t.stats
let reset_stats t = t.stats <- zero_stats
let fault_stats t = t.fault_stats
let time_us t = total_time_us t.stats
