type link =
  | Server_to_pc
  | Pc_to_server
  | Pc_to_device
  | Device_to_pc
  | Device_to_display

let link_name = function
  | Server_to_pc -> "server->pc"
  | Pc_to_server -> "pc->server"
  | Pc_to_device -> "pc->device"
  | Device_to_pc -> "device->pc"
  | Device_to_display -> "device->display"

let spy_visible = function
  | Server_to_pc | Pc_to_server | Pc_to_device | Device_to_pc -> true
  | Device_to_display -> false

type payload =
  | Query_text of string
  | Id_list of { table : string; count : int }
  | Value_stream of { table : string; column : string; count : int }
  | Result_tuples of { count : int }
  | Ack
  | Cache_stats of { hits : int; misses : int; evictions : int }
      (** buffer-manager counters shown on the secure display next to
          the results (zero bytes on the wire, never spy-visible) *)
  | Reorg_progress of { phase : int; phases : int }
      (** reorganization checkpoint notice on [Device_to_pc]: the
          device signals it is still alive mid-rebuild. Zero bytes of
          payload — a spy learns only that a reorganization is running,
          which unplugging the device reveals anyway *)

let payload_summary = function
  | Query_text q -> Printf.sprintf "query %S" q
  | Id_list { table; count } -> Printf.sprintf "id-list(%s) x%d" table count
  | Value_stream { table; column; count } ->
    Printf.sprintf "value-stream(%s.%s) x%d" table column count
  | Result_tuples { count } -> Printf.sprintf "result-tuples x%d" count
  | Ack -> "ack"
  | Cache_stats { hits; misses; evictions } ->
    Printf.sprintf "cache-stats %d hit / %d miss / %d evict" hits misses evictions
  | Reorg_progress { phase; phases } ->
    Printf.sprintf "reorg-progress %d/%d" phase phases

type obl = {
  obl_bound : int;
  obl_values : int;
  obl_pad_bytes : int;
}

type event = {
  seq : int;
  link : link;
  payload : payload;
  bytes : int;
  session : int option;
  obl : obl option;
}

type t = {
  mutable rev_events : event list;
  mutable next_seq : int;
  mutable current_session : int option;
  mutable metrics : Ghost_metrics.Metrics.t option;
}

let create () =
  { rev_events = []; next_seq = 0; current_session = None; metrics = None }

let set_session t session = t.current_session <- session
let current_session t = t.current_session
let set_metrics t m = t.metrics <- m

let record ?obl t link payload ~bytes =
  let e =
    { seq = t.next_seq; link; payload; bytes; session = t.current_session; obl }
  in
  t.next_seq <- t.next_seq + 1;
  t.rev_events <- e :: t.rev_events;
  match t.metrics with
  | None -> ()
  | Some m ->
    let l = link_name link in
    Ghost_metrics.Metrics.incr m ("trace." ^ l ^ ".messages");
    Ghost_metrics.Metrics.incr m ~by:bytes ("trace." ^ l ^ ".bytes")

let events t = List.rev t.rev_events
let spy_events t = List.filter (fun e -> spy_visible e.link) (events t)

let session_events t session =
  List.filter (fun e -> e.session = Some session) (events t)

let sessions t =
  List.filter_map (fun e -> e.session) (events t) |> List.sort_uniq compare

let clear t =
  t.rev_events <- [];
  t.next_seq <- 0

let pp_event fmt e =
  Format.fprintf fmt "#%03d %-16s %8d B  %s%s" e.seq (link_name e.link) e.bytes
    (payload_summary e.payload)
    (match e.session with
     | None -> ""
     | Some s -> Printf.sprintf "  [s%d]" s)

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) (events t)
