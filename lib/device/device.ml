module Flash = Ghost_flash.Flash
module Rng = Ghost_kernel.Rng
module Wire = Ghost_wire.Wire

type usb_fault = {
  usb_seed : int;
  corrupt_prob : float;
  max_retries : int;
  backoff_us : float;
  backoff_jitter : float;
}

let default_usb_fault = {
  usb_seed = 0;
  corrupt_prob = 0.;
  max_retries = 4;
  backoff_us = 250.0;
  backoff_jitter = 0.;
}

exception Usb_error of string

type config = {
  ram_budget : int;
  usb_mbit_per_s : float;
  usb_per_message_us : float;
  cpu_mips : float;
  flash_geometry : Flash.geometry;
  flash_cost : Flash.cost;
  flash_fault : Flash.fault_config option;
  usb_fault : usb_fault option;
  durable_logs : bool;
  page_cache_frames : int;
  wire_format : Wire.format;
  verify_pages : bool;
  log_runs : log_runs option;
}

and log_runs = {
  l0_spill_pages : int;
  run_fanout : int;
}

let default_log_runs = { l0_spill_pages = 4; run_fanout = 4 }

let default_config = {
  ram_budget = 64 * 1024;
  usb_mbit_per_s = 12.0;
  usb_per_message_us = 100.0;
  cpu_mips = 50.0;
  flash_geometry = Flash.default_geometry;
  flash_cost = Flash.default_cost;
  flash_fault = None;
  usb_fault = None;
  durable_logs = false;
  page_cache_frames = 0;
  wire_format = Wire.Verbose;
  verify_pages = false;
  log_runs = None;
}

let high_speed_usb config = { config with usb_mbit_per_s = 480.0 }

type fault_counters = {
  flash_bit_flips : int;
  flash_ecc_corrected : int;
  flash_ecc_uncorrected : int;
  flash_program_failures : int;
  flash_pages_remapped : int;
  flash_bad_blocks : int;
  flash_power_cuts : int;
  usb_corruptions : int;
  usb_retries : int;
  records_recovered : int;
  records_lost : int;
  reorg_checkpoints : int;
  reorg_rollbacks : int;
  reorg_rollforwards : int;
  integrity_errors : int;
  integrity_transients : int;
  pages_scrubbed : int;
  scrub_refreshes : int;
  repair_rebuilds : int;
  log_spills : int;
  log_compactions : int;
  compaction_pages : int;
}

type snapshot = {
  flash : Flash.stats;
  usb_bytes_in : int;
  usb_bytes_out : int;
  usb_us : float;
  cpu_ops : int;
  elapsed : float;
  faults : fault_counters;
  cache : Page_cache.stats;
}

type t = {
  config : config;
  flash : Flash.t;
  scratch : Flash.t;
  ram : Ram.t;
  page_cache : Page_cache.t option;
  trace : Trace.t;
  usb_rng : Rng.t option;
  jitter_rng : Rng.t option;
      (* separate stream (seed derived from [usb_seed]) so enabling
         backoff jitter never shifts the corruption/retry schedule *)
  mutable session_scratch : Flash.t list;
      (* per-session spill regions handed out to the query scheduler;
         their traffic counts toward the device clock like [scratch] *)
  mutable on_tick : (unit -> unit) option;
      (* scheduler hook, invoked after every clock charge on the CPU or
         USB paths; [None] (the serial default) costs one branch *)
  mutable usb_bytes_in : int;
  mutable usb_bytes_out : int;
  mutable usb_us : float;
  mutable usb_corruptions : int;
  mutable usb_retries : int;
  mutable records_recovered : int;
  mutable records_lost : int;
  mutable reorg_checkpoints : int;
  mutable reorg_rollbacks : int;
  mutable reorg_rollforwards : int;
  mutable integrity_errors : int;
  mutable integrity_transients : int;
  mutable pages_scrubbed : int;
  mutable scrub_refreshes : int;
  mutable repair_rebuilds : int;
  mutable log_spills : int;
  mutable log_compactions : int;
  mutable compaction_pages : int;
  mutable cpu_ops : int;
  mutable metrics : Ghost_metrics.Metrics.t option;
      (* observability registry; [None] (the default) costs one branch
         on the paths that would report into it *)
  mutable published : snapshot option;
      (* device-global totals already flushed into [metrics], so
         [flush_metrics] publishes windows, not lifetime sums *)
  session_spent : (int, float) Hashtbl.t;
      (* per-session virtual clock: device time charged while each
         scheduler session's bracket was open *)
  mutable vclock_session : int option;
  mutable vclock_open_at : float;  (* global clock at bracket open *)
  mutable vclock_offset : float;  (* session_us = elapsed_us + offset *)
  enc : Wire.encoder;
      (* the link's reused encode buffer + label-interning dictionary;
         both wire formats encode through it, so metered byte counts
         are real frame sizes *)
  mutable batch : (Trace.payload * int * Trace.obl option) list ref option;
      (* open coalescing bracket ([with_usb_batch], Compact only):
         messages encoded into the pending frame, newest first *)
}

let create ?(config = default_config) ~trace () =
  let flash =
    Flash.create ~geometry:config.flash_geometry ~cost:config.flash_cost
      ?fault:config.flash_fault ()
  in
  (* Only the main store carries trailers: scratch regions hold
     per-query spill runs that never outlive a session, so sealing
     them would buy nothing and complicate the spill writers. *)
  if config.verify_pages then Flash.set_authenticated flash true;
  let ram = Ram.create ~budget:config.ram_budget in
  {
  config;
  flash;
  scratch =
    Flash.create ~geometry:config.flash_geometry ~cost:config.flash_cost
      ?fault:config.flash_fault ();
  ram;
  page_cache =
    (if config.page_cache_frames > 0 then
       Some (Page_cache.create ~ram flash ~frames:config.page_cache_frames)
     else None);
  trace;
  usb_rng = Option.map (fun f -> Rng.create f.usb_seed) config.usb_fault;
  jitter_rng =
    Option.map (fun f -> Rng.create (f.usb_seed lxor 0x5DEECE66)) config.usb_fault;
  session_scratch = [];
  on_tick = None;
  usb_bytes_in = 0;
  usb_bytes_out = 0;
  usb_us = 0.;
  usb_corruptions = 0;
  usb_retries = 0;
  records_recovered = 0;
  records_lost = 0;
  reorg_checkpoints = 0;
  reorg_rollbacks = 0;
  reorg_rollforwards = 0;
  integrity_errors = 0;
  integrity_transients = 0;
  pages_scrubbed = 0;
  scrub_refreshes = 0;
  repair_rebuilds = 0;
  log_spills = 0;
  log_compactions = 0;
  compaction_pages = 0;
  cpu_ops = 0;
  metrics = None;
  published = None;
  session_spent = Hashtbl.create 16;
  vclock_session = None;
  vclock_open_at = 0.;
  vclock_offset = 0.;
  enc = Wire.encoder ();
  batch = None;
}

let metric t ?by name =
  match t.metrics with
  | None -> ()
  | Some m -> Ghost_metrics.Metrics.incr m ?by name

let config t = t.config
let flash t = t.flash
let scratch t = t.scratch
let ram t = t.ram
let page_cache t = t.page_cache
let trace t = t.trace

let new_scratch_region t =
  let region =
    Flash.create ~geometry:t.config.flash_geometry ~cost:t.config.flash_cost
      ?fault:t.config.flash_fault ()
  in
  t.session_scratch <- region :: t.session_scratch;
  region

let set_on_tick t hook = t.on_tick <- hook

let tick t =
  match t.on_tick with
  | None -> ()
  | Some f -> f ()

let cache_stats t =
  match t.page_cache with
  | Some c -> Page_cache.stats c
  | None -> Page_cache.zero_stats

let cpu t n =
  if n < 0 then invalid_arg "Device.cpu: negative";
  t.cpu_ops <- t.cpu_ops + n;
  tick t

let usb_transfer_us t bytes =
  t.config.usb_per_message_us
  +. (Float.of_int (bytes * 8) /. t.config.usb_mbit_per_s)

type direction = Inbound | Outbound

(* One logical USB frame — a list of messages sharing one transfer.
   Each attempt — the original and every retransmission — is charged
   to the clock, counted against the byte totals and recorded in the
   trace: a spy on the bus sees the retransmitted bytes exactly like
   the first copy. Corruption, retry and backoff operate on the whole
   frame (the receiver rejects a frame on its CRC, so a partial
   delivery is a full retransmission). When the retry budget is
   exhausted the transfer fails. *)
let transfer_frame t dir link msgs ~total =
  let rec attempt k =
    (match dir with
     | Inbound -> t.usb_bytes_in <- t.usb_bytes_in + total
     | Outbound -> t.usb_bytes_out <- t.usb_bytes_out + total);
    t.usb_us <- t.usb_us +. usb_transfer_us t total;
    List.iter
      (fun (payload, bytes, obl) -> Trace.record ?obl t.trace link payload ~bytes)
      msgs;
    let corrupted =
      match t.config.usb_fault, t.usb_rng with
      | Some f, Some rng when f.corrupt_prob > 0. ->
        Rng.float rng 1.0 < f.corrupt_prob
      | _ -> false
    in
    if corrupted then begin
      t.usb_corruptions <- t.usb_corruptions + 1;
      metric t "usb.corruptions";
      let f = Option.get t.config.usb_fault in
      if k >= f.max_retries then
        raise (Usb_error
                 (Printf.sprintf "transfer of %d bytes failed after %d attempts"
                    total (k + 1)))
      else begin
        t.usb_retries <- t.usb_retries + 1;
        metric t "usb.retries";
        let backoff = f.backoff_us *. Float.of_int (1 lsl k) in
        (* Seeded jitter decorrelates retry schedules across fleet
           devices. It draws from its own derived-seed stream, so the
           fault schedule (which rides [usb_rng]) is identical with
           jitter on or off, and the no-jitter default stays
           bit-identical to the seed path. *)
        let backoff =
          if f.backoff_jitter > 0. then
            let r = Rng.float (Option.get t.jitter_rng) 1.0 in
            backoff *. (1. +. (f.backoff_jitter *. (r -. 0.5)))
          else backoff
        in
        t.usb_us <- t.usb_us +. backoff;
        attempt (k + 1)
      end
    end
  in
  attempt 0;
  tick t

let transfer ?obl t dir link payload ~bytes =
  transfer_frame t dir link [ (payload, bytes, obl) ] ~total:bytes

let receive ?obl t payload ~bytes =
  transfer ?obl t Inbound Trace.Pc_to_device payload ~bytes

(* Typed inbound transfers: the message is really encoded (into the
   reused wire buffer), and the metered byte count is the encoded
   frame's exact size. Under [Verbose] the sizes are the seed's by
   construction; under [Compact] a message outside a batch travels as
   its own single-message frame, envelope included. *)
let receive_message t msg payload =
  match t.config.wire_format with
  | Wire.Verbose ->
    let bytes = Wire.encode_verbose t.enc msg in
    transfer t Inbound Trace.Pc_to_device payload ~bytes
  | Wire.Compact ->
    (match t.batch with
     | Some acc ->
       let n = Wire.add_message t.enc msg in
       acc := (payload, n, None) :: !acc
     | None ->
       Wire.begin_frame t.enc;
       ignore (Wire.add_message t.enc msg : int);
       let total = Wire.end_frame t.enc in
       transfer t Inbound Trace.Pc_to_device payload ~bytes:total)

let receive_query t text = receive_message t (Wire.Query text) (Trace.Query_text text)

let receive_id_list t ~table ids =
  receive_message t
    (Wire.Id_list { table; ids })
    (Trace.Id_list { table; count = Array.length ids })

let receive_value_stream t ~table ~column ~ty pairs =
  receive_message t
    (Wire.Value_stream { table; column; ty; pairs })
    (Trace.Value_stream { table; column; count = Array.length pairs })

(* Coalescing bracket: under [Compact] every typed receive inside [f]
   lands in one vectored frame, sent on exit — one per-transfer
   latency, one corruption draw, one retry unit for the burst. The
   frame envelope's bytes are attributed to the first message's trace
   event, so per-event byte sums stay equal to the device byte
   counters. The scheduler's preemption hook is suspended while the
   bracket is open (a vectored submission is one unit of work); the
   frame transfer itself ticks as usual. Under [Verbose], or nested
   inside another bracket, this is just [f ()]. *)
let with_usb_batch t f =
  match t.config.wire_format, t.batch with
  | Wire.Verbose, _ | _, Some _ -> f ()
  | Wire.Compact, None ->
    Wire.begin_frame t.enc;
    let acc = ref [] in
    t.batch <- Some acc;
    let hook = t.on_tick in
    t.on_tick <- None;
    let finish () =
      t.batch <- None;
      t.on_tick <- hook
    in
    (match f () with
     | r ->
       finish ();
       (match List.rev !acc with
        | [] -> ()
        | (p0, n0, o0) :: rest ->
          let total = Wire.end_frame t.enc in
          let body = List.fold_left (fun a (_, n, _) -> a + n) n0 rest in
          transfer_frame t Inbound Trace.Pc_to_device
            ((p0, n0 + (total - body), o0) :: rest)
            ~total);
       r
     | exception e ->
       finish ();
       raise e)

let emit_result ?obl t ~count ~bytes =
  transfer ?obl t Outbound Trace.Device_to_display
    (Trace.Result_tuples { count }) ~bytes

let emit_ack t = transfer t Outbound Trace.Device_to_pc Trace.Ack ~bytes:1

let note_recovery t ~recovered ~lost =
  t.records_recovered <- t.records_recovered + recovered;
  t.records_lost <- t.records_lost + lost;
  metric t ~by:recovered "recovery.records_recovered";
  metric t ~by:lost "recovery.records_lost"

let note_reorg_checkpoint t =
  t.reorg_checkpoints <- t.reorg_checkpoints + 1;
  metric t "reorg.checkpoints"

let note_reorg_outcome t ~rolled_forward =
  if rolled_forward then begin
    t.reorg_rollforwards <- t.reorg_rollforwards + 1;
    metric t "reorg.rollforwards"
  end
  else begin
    t.reorg_rollbacks <- t.reorg_rollbacks + 1;
    metric t "reorg.rollbacks"
  end

let note_integrity_error t ~transient =
  t.integrity_errors <- t.integrity_errors + 1;
  metric t "integrity.errors";
  if transient then begin
    t.integrity_transients <- t.integrity_transients + 1;
    metric t "integrity.transient_retries"
  end

let note_scrub t ~pages ~refreshes =
  t.pages_scrubbed <- t.pages_scrubbed + pages;
  t.scrub_refreshes <- t.scrub_refreshes + refreshes;
  metric t ~by:pages "scrub.pages";
  if refreshes > 0 then metric t ~by:refreshes "scrub.refreshes"

let note_repair t =
  t.repair_rebuilds <- t.repair_rebuilds + 1;
  metric t "repair.rebuilds"

let note_log_spill t ~pages ~records ~dropped =
  t.log_spills <- t.log_spills + 1;
  t.compaction_pages <- t.compaction_pages + pages;
  metric t "compaction.spills";
  metric t ~by:pages "compaction.pages_written";
  metric t ~by:records "run.records_installed";
  if dropped > 0 then metric t ~by:dropped "compaction.records_dropped"

let note_log_merge t ~pages ~records ~dropped =
  t.log_compactions <- t.log_compactions + 1;
  t.compaction_pages <- t.compaction_pages + pages;
  metric t "compaction.merges";
  metric t ~by:pages "compaction.pages_written";
  metric t ~by:records "run.records_installed";
  if dropped > 0 then metric t ~by:dropped "compaction.records_dropped"

let emit_reorg_progress t ~phase ~phases =
  transfer t Outbound Trace.Device_to_pc
    (Trace.Reorg_progress { phase; phases }) ~bytes:0

let cpu_time_us t = Float.of_int t.cpu_ops /. t.config.cpu_mips
let usb_time_us t = t.usb_us

let session_scratch_time_us t =
  List.fold_left (fun acc f -> acc +. Flash.time_us f) 0. t.session_scratch

let elapsed_us t =
  Flash.time_us t.flash +. Flash.time_us t.scratch
  +. session_scratch_time_us t +. t.usb_us +. cpu_time_us t

let spent_us t sid =
  match Hashtbl.find_opt t.session_spent sid with Some v -> v | None -> 0.

(* The per-session virtual clock. While a session's bracket is open,
   its virtual time advances with the global clock; while other
   sessions run, it stands still. Operator spans stamped with
   [session_us] therefore measure a session's own device time
   regardless of how the scheduler interleaved it — in serial execution
   (no session set) the offset is 0 and virtual time IS the global
   clock. *)
let set_session t session =
  let now = elapsed_us t in
  (match t.vclock_session with
   | Some sid ->
     Hashtbl.replace t.session_spent sid
       (spent_us t sid +. (now -. t.vclock_open_at))
   | None -> ());
  t.vclock_session <- session;
  t.vclock_open_at <- now;
  t.vclock_offset <-
    (match session with None -> 0. | Some sid -> spent_us t sid -. now);
  Trace.set_session t.trace session

let session_us t = elapsed_us t +. t.vclock_offset

let zero_faults = {
  flash_bit_flips = 0;
  flash_ecc_corrected = 0;
  flash_ecc_uncorrected = 0;
  flash_program_failures = 0;
  flash_pages_remapped = 0;
  flash_bad_blocks = 0;
  flash_power_cuts = 0;
  usb_corruptions = 0;
  usb_retries = 0;
  records_recovered = 0;
  records_lost = 0;
  reorg_checkpoints = 0;
  reorg_rollbacks = 0;
  reorg_rollforwards = 0;
  integrity_errors = 0;
  integrity_transients = 0;
  pages_scrubbed = 0;
  scrub_refreshes = 0;
  repair_rebuilds = 0;
  log_spills = 0;
  log_compactions = 0;
  compaction_pages = 0;
}

let add_faults a b = {
  flash_bit_flips = a.flash_bit_flips + b.flash_bit_flips;
  flash_ecc_corrected = a.flash_ecc_corrected + b.flash_ecc_corrected;
  flash_ecc_uncorrected = a.flash_ecc_uncorrected + b.flash_ecc_uncorrected;
  flash_program_failures = a.flash_program_failures + b.flash_program_failures;
  flash_pages_remapped = a.flash_pages_remapped + b.flash_pages_remapped;
  flash_bad_blocks = a.flash_bad_blocks + b.flash_bad_blocks;
  flash_power_cuts = a.flash_power_cuts + b.flash_power_cuts;
  usb_corruptions = a.usb_corruptions + b.usb_corruptions;
  usb_retries = a.usb_retries + b.usb_retries;
  records_recovered = a.records_recovered + b.records_recovered;
  records_lost = a.records_lost + b.records_lost;
  reorg_checkpoints = a.reorg_checkpoints + b.reorg_checkpoints;
  reorg_rollbacks = a.reorg_rollbacks + b.reorg_rollbacks;
  reorg_rollforwards = a.reorg_rollforwards + b.reorg_rollforwards;
  integrity_errors = a.integrity_errors + b.integrity_errors;
  integrity_transients = a.integrity_transients + b.integrity_transients;
  pages_scrubbed = a.pages_scrubbed + b.pages_scrubbed;
  scrub_refreshes = a.scrub_refreshes + b.scrub_refreshes;
  repair_rebuilds = a.repair_rebuilds + b.repair_rebuilds;
  log_spills = a.log_spills + b.log_spills;
  log_compactions = a.log_compactions + b.log_compactions;
  compaction_pages = a.compaction_pages + b.compaction_pages;
}

let diff_faults ~after ~before = {
  flash_bit_flips = after.flash_bit_flips - before.flash_bit_flips;
  flash_ecc_corrected = after.flash_ecc_corrected - before.flash_ecc_corrected;
  flash_ecc_uncorrected =
    after.flash_ecc_uncorrected - before.flash_ecc_uncorrected;
  flash_program_failures =
    after.flash_program_failures - before.flash_program_failures;
  flash_pages_remapped = after.flash_pages_remapped - before.flash_pages_remapped;
  flash_bad_blocks = after.flash_bad_blocks - before.flash_bad_blocks;
  flash_power_cuts = after.flash_power_cuts - before.flash_power_cuts;
  usb_corruptions = after.usb_corruptions - before.usb_corruptions;
  usb_retries = after.usb_retries - before.usb_retries;
  records_recovered = after.records_recovered - before.records_recovered;
  records_lost = after.records_lost - before.records_lost;
  reorg_checkpoints = after.reorg_checkpoints - before.reorg_checkpoints;
  reorg_rollbacks = after.reorg_rollbacks - before.reorg_rollbacks;
  reorg_rollforwards = after.reorg_rollforwards - before.reorg_rollforwards;
  integrity_errors = after.integrity_errors - before.integrity_errors;
  integrity_transients = after.integrity_transients - before.integrity_transients;
  pages_scrubbed = after.pages_scrubbed - before.pages_scrubbed;
  scrub_refreshes = after.scrub_refreshes - before.scrub_refreshes;
  repair_rebuilds = after.repair_rebuilds - before.repair_rebuilds;
  log_spills = after.log_spills - before.log_spills;
  log_compactions = after.log_compactions - before.log_compactions;
  compaction_pages = after.compaction_pages - before.compaction_pages;
}

let no_faults f = f = zero_faults

let fault_counters (t : t) =
  let fs =
    Flash.add_fault_stats (Flash.fault_stats t.flash) (Flash.fault_stats t.scratch)
  in
  let fs =
    List.fold_left
      (fun acc f -> Flash.add_fault_stats acc (Flash.fault_stats f))
      fs t.session_scratch
  in
  {
    flash_bit_flips = fs.Flash.bit_flips;
    flash_ecc_corrected = fs.Flash.ecc_corrected;
    flash_ecc_uncorrected = fs.Flash.ecc_uncorrected;
    flash_program_failures = fs.Flash.program_failures;
    flash_pages_remapped = fs.Flash.pages_remapped;
    flash_bad_blocks = fs.Flash.bad_blocks_marked;
    flash_power_cuts = fs.Flash.power_cuts;
    usb_corruptions = t.usb_corruptions;
    usb_retries = t.usb_retries;
    records_recovered = t.records_recovered;
    records_lost = t.records_lost;
    reorg_checkpoints = t.reorg_checkpoints;
    reorg_rollbacks = t.reorg_rollbacks;
    reorg_rollforwards = t.reorg_rollforwards;
    integrity_errors = t.integrity_errors;
    integrity_transients = t.integrity_transients;
    pages_scrubbed = t.pages_scrubbed;
    scrub_refreshes = t.scrub_refreshes;
    repair_rebuilds = t.repair_rebuilds;
    log_spills = t.log_spills;
    log_compactions = t.log_compactions;
    compaction_pages = t.compaction_pages;
  }

let snapshot (t : t) : snapshot = {
  flash =
    List.fold_left
      (fun acc f -> Flash.add_stats acc (Flash.stats f))
      (Flash.add_stats (Flash.stats t.flash) (Flash.stats t.scratch))
      t.session_scratch;
  usb_bytes_in = t.usb_bytes_in;
  usb_bytes_out = t.usb_bytes_out;
  usb_us = t.usb_us;
  cpu_ops = t.cpu_ops;
  elapsed = elapsed_us t;
  faults = fault_counters t;
  cache = cache_stats t;
}

type usage = {
  flash_page_reads : int;
  flash_page_programs : int;
  flash_us : float;
  used_usb_bytes_in : int;
  used_usb_us : float;
  used_cpu_ops : int;
  cpu_us : float;
  total_us : float;
  faults : fault_counters;
  cache : Page_cache.stats;
}

let usage_between t ~(before : snapshot) ~(after : snapshot) =
  let f = Flash.diff_stats ~after:after.flash ~before:before.flash in
  let cpu_ops = after.cpu_ops - before.cpu_ops in
  {
    flash_page_reads = f.Flash.page_reads;
    flash_page_programs = f.Flash.page_programs;
    flash_us = Flash.total_time_us f;
    used_usb_bytes_in = after.usb_bytes_in - before.usb_bytes_in;
    used_usb_us = after.usb_us -. before.usb_us;
    used_cpu_ops = cpu_ops;
    cpu_us = Float.of_int cpu_ops /. t.config.cpu_mips;
    total_us = after.elapsed -. before.elapsed;
    faults = diff_faults ~after:after.faults ~before:before.faults;
    cache = Page_cache.diff_stats ~after:after.cache ~before:before.cache;
  }

let set_metrics t m =
  t.metrics <- m;
  Trace.set_metrics t.trace m;
  Option.iter (fun c -> Page_cache.set_metrics c m) t.page_cache;
  (match m with
   | None -> t.published <- None
   | Some reg ->
     (* A registry can outlive a device (reorganization builds a fresh
        card): shift its time origin so this device's spans land after
        everything already recorded. *)
     Ghost_metrics.Metrics.rebase reg ~clock_now:(elapsed_us t);
     t.published <- Some (snapshot t))

let metrics t = t.metrics

(* Device-global totals are published as window diffs against the last
   flush: Flash reads/programs, USB traffic and CPU ops land as
   counters, component times as gauges. Diffing [snapshot]s keeps the
   totals exact however the scheduler interleaved the work. *)
let flush_metrics t =
  match t.metrics, t.published with
  | Some m, Some before ->
    let after = snapshot t in
    let u = usage_between t ~before ~after in
    let module M = Ghost_metrics.Metrics in
    M.incr m ~by:u.flash_page_reads "device.flash.page_reads";
    M.incr m ~by:u.flash_page_programs "device.flash.page_programs";
    M.add_gauge m "device.flash.us" u.flash_us;
    M.incr m ~by:u.used_usb_bytes_in "device.usb.bytes_in";
    M.incr m ~by:(after.usb_bytes_out - before.usb_bytes_out)
      "device.usb.bytes_out";
    M.add_gauge m "device.usb.us" u.used_usb_us;
    M.incr m ~by:u.used_cpu_ops "device.cpu.ops";
    M.add_gauge m "device.cpu.us" u.cpu_us;
    M.add_gauge m "device.elapsed_us" u.total_us;
    t.published <- Some after
  | _ -> ()

let zero_usage = {
  flash_page_reads = 0;
  flash_page_programs = 0;
  flash_us = 0.;
  used_usb_bytes_in = 0;
  used_usb_us = 0.;
  used_cpu_ops = 0;
  cpu_us = 0.;
  total_us = 0.;
  faults = zero_faults;
  cache = Page_cache.zero_stats;
}

let add_usage a b = {
  flash_page_reads = a.flash_page_reads + b.flash_page_reads;
  flash_page_programs = a.flash_page_programs + b.flash_page_programs;
  flash_us = a.flash_us +. b.flash_us;
  used_usb_bytes_in = a.used_usb_bytes_in + b.used_usb_bytes_in;
  used_usb_us = a.used_usb_us +. b.used_usb_us;
  used_cpu_ops = a.used_cpu_ops + b.used_cpu_ops;
  cpu_us = a.cpu_us +. b.cpu_us;
  total_us = a.total_us +. b.total_us;
  faults = add_faults a.faults b.faults;
  cache = Page_cache.add_stats a.cache b.cache;
}

let pp_usage fmt u =
  Format.fprintf fmt
    "%.0f us (flash %.0f us / %d rd %d wr; usb %.0f us / %d B in; cpu %.0f us / %d ops)"
    u.total_us u.flash_us u.flash_page_reads u.flash_page_programs u.used_usb_us
    u.used_usb_bytes_in u.cpu_us u.used_cpu_ops;
  if not (no_faults u.faults) then
    Format.fprintf fmt
      " [faults: %d flips (%d ecc-fixed, %d uncorrected), %d prog-fail, %d remapped, %d bad blk, %d power cuts, %d usb retries]"
      u.faults.flash_bit_flips u.faults.flash_ecc_corrected
      u.faults.flash_ecc_uncorrected
      u.faults.flash_program_failures u.faults.flash_pages_remapped
      u.faults.flash_bad_blocks u.faults.flash_power_cuts u.faults.usb_retries;
  if u.faults.integrity_errors > 0 || u.faults.pages_scrubbed > 0
     || u.faults.repair_rebuilds > 0 then
    Format.fprintf fmt
      " [integrity: %d errors (%d transient), %d scrubbed, %d refreshed, %d rebuilt]"
      u.faults.integrity_errors u.faults.integrity_transients
      u.faults.pages_scrubbed u.faults.scrub_refreshes
      u.faults.repair_rebuilds;
  if not (Page_cache.no_activity u.cache) then
    Format.fprintf fmt " [cache: %d hit %d miss %d evict %d inval]"
      u.cache.Page_cache.hits u.cache.Page_cache.misses
      u.cache.Page_cache.evictions u.cache.Page_cache.invalidations;
  if u.faults.reorg_checkpoints > 0 || u.faults.reorg_rollbacks > 0
     || u.faults.reorg_rollforwards > 0 then
    Format.fprintf fmt " [reorg: %d ckpt %d roll-fwd %d roll-back]"
      u.faults.reorg_checkpoints u.faults.reorg_rollforwards
      u.faults.reorg_rollbacks
