module Flash = Ghost_flash.Flash

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
}

let zero_stats = { hits = 0; misses = 0; evictions = 0; invalidations = 0 }

let add_stats a b = {
  hits = a.hits + b.hits;
  misses = a.misses + b.misses;
  evictions = a.evictions + b.evictions;
  invalidations = a.invalidations + b.invalidations;
}

let diff_stats ~after ~before = {
  hits = after.hits - before.hits;
  misses = after.misses - before.misses;
  evictions = after.evictions - before.evictions;
  invalidations = after.invalidations - before.invalidations;
}

let no_activity s = s = zero_stats

type t = {
  flash : Flash.t;
  page_size : int;
  n_frames : int;
  data : Bytes.t array;  (* frame -> page image *)
  page_of : int array;  (* frame -> resident flash page, -1 when empty *)
  referenced : bool array;  (* clock / second-chance bits *)
  frame_of : (int, int) Hashtbl.t;  (* flash page -> frame *)
  mutable hand : int;
  ram : Ram.t;
  mutable cell : Ram.cell option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable metrics : Ghost_metrics.Metrics.t option;
}

let create ~ram flash ~frames =
  if frames <= 0 then invalid_arg "Page_cache.create: frames <= 0";
  let page_size = (Flash.geometry flash).Flash.page_size in
  let cell = Ram.alloc ram ~label:"page-cache" (frames * page_size) in
  {
    flash;
    page_size;
    n_frames = frames;
    data = Array.init frames (fun _ -> Bytes.make page_size '\000');
    page_of = Array.make frames (-1);
    referenced = Array.make frames false;
    frame_of = Hashtbl.create (2 * frames);
    hand = 0;
    ram;
    cell = Some cell;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    metrics = None;
  }

let set_metrics t m = t.metrics <- m

let metric t ?by name =
  match t.metrics with
  | None -> ()
  | Some m -> Ghost_metrics.Metrics.incr m ?by name

let flash t = t.flash
let frames t = t.n_frames
let frame_bytes t = t.n_frames * t.page_size
let resident t = Hashtbl.length t.frame_of

let stats t = {
  hits = t.hits;
  misses = t.misses;
  evictions = t.evictions;
  invalidations = t.invalidations;
}

let check t = if t.cell = None then invalid_arg "Page_cache: closed"

(* Second chance: sweep the clock hand, clearing reference bits, until
   a frame without one comes up. An empty frame is claimed outright. *)
let victim t =
  let rec sweep () =
    let f = t.hand in
    t.hand <- (t.hand + 1) mod t.n_frames;
    if t.page_of.(f) < 0 then f
    else if t.referenced.(f) then begin
      t.referenced.(f) <- false;
      sweep ()
    end
    else f
  in
  sweep ()

(* The frame holding [page], filling (and possibly evicting) on a miss.
   The fill is a full-page Flash read: that is the metered cost of a
   cache miss; hits cost no Flash time at all. *)
let frame_for t ~verify page =
  match Hashtbl.find_opt t.frame_of page with
  | Some f ->
    t.hits <- t.hits + 1;
    metric t "cache.hits";
    t.referenced.(f) <- true;
    f
  | None ->
    t.misses <- t.misses + 1;
    metric t "cache.misses";
    let image = Flash.read_page t.flash page in
    (* Verify before victim selection: a corrupt image must never be
       installed in a frame, where later hits would serve it silently. *)
    if verify then Flash.verify_image t.flash ~page image;
    let f = victim t in
    if t.page_of.(f) >= 0 then begin
      t.evictions <- t.evictions + 1;
      metric t "cache.evictions";
      Hashtbl.remove t.frame_of t.page_of.(f)
    end;
    Bytes.blit image 0 t.data.(f) 0 t.page_size;
    t.page_of.(f) <- page;
    t.referenced.(f) <- true;
    Hashtbl.replace t.frame_of page f;
    f

let read ?(verify = false) t ~page ~off ~len dst ~pos =
  check t;
  if off < 0 || len < 0 || off + len > t.page_size then
    invalid_arg "Page_cache.read: range out of page bounds";
  let f = frame_for t ~verify page in
  Bytes.blit t.data.(f) off dst pos len

let invalidate t ~page =
  match Hashtbl.find_opt t.frame_of page with
  | None -> ()
  | Some f ->
    Hashtbl.remove t.frame_of page;
    t.page_of.(f) <- -1;
    t.referenced.(f) <- false;
    t.invalidations <- t.invalidations + 1;
    metric t "cache.invalidations"

let clear t =
  t.invalidations <- t.invalidations + Hashtbl.length t.frame_of;
  metric t ~by:(Hashtbl.length t.frame_of) "cache.invalidations";
  Hashtbl.reset t.frame_of;
  Array.fill t.page_of 0 t.n_frames (-1);
  Array.fill t.referenced 0 t.n_frames false;
  t.hand <- 0

let close t =
  match t.cell with
  | None -> ()
  | Some c ->
    Hashtbl.reset t.frame_of;
    Array.fill t.page_of 0 t.n_frames (-1);
    t.cell <- None;
    Ram.free t.ram c
