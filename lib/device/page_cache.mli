module Flash = Ghost_flash.Flash

(** A device-wide buffer manager over Flash pages.

    GhostDB's hot structures — climbing-index directories binary-
    searched on every lookup, SKT root rows, the column-store pages
    behind per-candidate hidden checks — are re-touched constantly
    within and across queries, yet each {!Pager.Reader} only has a
    private one-page window. The page cache pools a small set of
    full-page frames, charged to the secure chip's {!Ram} arena like
    any other consumer, and serves repeated page touches from RAM:

    - {e hit}: a pure RAM blit, zero Flash cost;
    - {e miss}: one metered full-page Flash read fills a frame,
      evicting the clock/second-chance victim when the pool is full.

    The cache is read-only (the query path never writes the main Flash
    region) and coherence with the append-only logs is by explicit
    {!invalidate}: [Flash.append] may recycle an erased page whose
    stale image could still be resident. No closures are stored, so a
    device holding a cache still marshals into an image. *)

type stats = {
  hits : int;  (** page touches served from a frame (no Flash read) *)
  misses : int;  (** fills — each paid one full-page Flash read *)
  evictions : int;  (** frames reclaimed by the clock hand *)
  invalidations : int;  (** frames dropped by coherence hooks *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val diff_stats : after:stats -> before:stats -> stats
val no_activity : stats -> bool
(** True when every counter is zero (the cache was never touched). *)

type t

val create : ram:Ram.t -> Flash.t -> frames:int -> t
(** [create ~ram flash ~frames] allocates [frames] page-sized frames,
    charging [frames * page_size] bytes to [ram] for the cache's
    lifetime. Raises [Invalid_argument] when [frames <= 0] and
    {!Ram.Ram_exceeded} when the pool does not fit the budget. *)

val flash : t -> Flash.t
(** The Flash region the cache fronts. Readers over a different region
    (e.g. the scratch Flash) must bypass the cache. *)

val frames : t -> int
val frame_bytes : t -> int
(** RAM charged for the frame pool. *)

val resident : t -> int
(** Frames currently holding a page. *)

val read :
  ?verify:bool -> t -> page:int -> off:int -> len:int -> bytes -> pos:int -> unit
(** [read t ~page ~off ~len dst ~pos] copies [len] bytes at [off] of
    [page] into [dst] at [pos], filling the page's frame first on a
    miss. Raises [Invalid_argument] on a range outside the page, or on
    a never-programmed page (propagated from the fill read).

    With [~verify:true] (authenticated devices) the miss-path fill is
    checked against the page's CRC-32 trailer before it is installed:
    a mismatch raises {!Flash.Integrity_error} and leaves the frame
    pool untouched, so a corrupt image can never be served from a hit.
    Hits are not re-verified — a frame was checked when filled. *)

val invalidate : t -> page:int -> unit
(** Drops [page]'s frame if resident. Called by the log layers after a
    program lands on a (possibly recycled) page. *)

val clear : t -> unit
(** Drops every frame (counted as invalidations) — the reorganization
    hook. The frame pool stays allocated. *)

val stats : t -> stats

val set_metrics : t -> Ghost_metrics.Metrics.t option -> unit
(** Attaches (or detaches) an observability registry: hits, misses,
    evictions and invalidations are additionally counted there as
    [cache.*] counters. [None] (the default) keeps the hot path at one
    branch per event. *)

val close : t -> unit
(** Releases the frame pool's RAM. Idempotent; reads after close raise. *)
