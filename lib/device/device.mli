module Flash = Ghost_flash.Flash
module Wire = Ghost_wire.Wire

(** The smart USB device (Figure 2 of the paper): a secure chip
    (32-bit RISC CPU + tens-of-KB RAM) driving a large external NAND
    Flash, connected to the terminal over USB 2.0 full speed.

    The model combines the {!Flash} simulator, the {!Ram} arena, a
    metered USB port and a CPU-operation counter into one simulated
    clock. All device-side query processing charges its work here, so
    plan execution times are deterministic and reproducible.

    For robustness experiments the device can be configured with a
    Flash fault model ({!Flash.fault_config}) and a lossy USB link
    ({!usb_fault}); both are off by default and add zero overhead when
    disabled. *)

type usb_fault = {
  usb_seed : int;  (** seed of the corruption generator *)
  corrupt_prob : float;  (** per-attempt probability a transfer is corrupted *)
  max_retries : int;  (** retransmissions before the transfer fails *)
  backoff_us : float;  (** base backoff; attempt [k] waits [2^k] times this *)
  backoff_jitter : float;
      (** fraction of the backoff randomized around its nominal value,
          so retry schedules across a device fleet decorrelate instead
          of stampeding in lockstep. [0.] (the default) draws nothing
          and keeps every clock bit-identical to the seed path;
          [j > 0.] scales each wait by a deterministic factor in
          [1 - j/2, 1 + j/2), drawn from a separate stream seeded off
          [usb_seed] so the corruption/retry schedule itself never
          shifts. The jittered wait is metered on the device clock
          and, like the base retry, every retransmitted attempt stays
          spy-visible. *)
}

val default_usb_fault : usb_fault
(** Zero corruption probability, 4 retries, 250 us base backoff, no
    jitter — the base for [{ default_usb_fault with ... }] sweeps. *)

exception Usb_error of string
(** A transfer kept getting corrupted until the retry budget ran out. *)

type config = {
  ram_budget : int;  (** bytes of secure-chip RAM (default 64 KiB) *)
  usb_mbit_per_s : float;  (** link throughput (default 12, USB full speed) *)
  usb_per_message_us : float;  (** per-transfer protocol latency *)
  cpu_mips : float;  (** simulated RISC core speed (default 50 MIPS) *)
  flash_geometry : Flash.geometry;
  flash_cost : Flash.cost;
  flash_fault : Flash.fault_config option;  (** NAND fault injection (default off) *)
  usb_fault : usb_fault option;  (** USB corruption injection (default off) *)
  durable_logs : bool;
      (** create the delta / tombstone logs [Checksummed] so they
          survive power cuts (default false: seed format, zero
          overhead) *)
  page_cache_frames : int;
      (** frames of the shared {!Page_cache} over the main Flash
          region, each one page and charged to the RAM budget for the
          device's lifetime (default 0: no cache, every code path and
          cost bit-identical to the cache-free simulator) *)
  wire_format : Wire.format;
      (** framing of the [Pc_to_device] data messages (default
          {!Wire.Verbose}: the seed's fixed-width per-message framing,
          bit-identical byte counts and clock). {!Wire.Compact} opts
          into interned opcodes, varint-delta id lists and coalesced
          CRC-framed transfers — same spy-visible information, fewer
          bytes on the bottleneck link (DESIGN.md section 13). *)
  verify_pages : bool;
      (** authenticate the main Flash region: structure-page writers
          seal every page with a CRC-32 trailer and every cache-miss
          read verifies it, raising {!Flash.Integrity_error} instead
          of letting corrupt bytes reach the executor (DESIGN.md
          section 14). Default false: unauthenticated pages, every
          output bit-identical to the seed. *)
  log_runs : log_runs option;
      (** restructure the delta log into leveled sorted runs: the flat
          append-only pages become an L0 memtable that background
          compaction spills into CRC-checksummed sorted runs and
          merges level by level, bounding merge-on-read depth under
          sustained writes (DESIGN.md section 16). [None] (the
          default) keeps the single flat log, every output
          bit-identical to the seed. *)
}

and log_runs = {
  l0_spill_pages : int;
      (** full L0 pages that make the log spill-eligible: compaction
          folds the whole L0 prefix into one sorted level-1 run *)
  run_fanout : int;
      (** runs at a level that trigger merging them into one run at
          the next level — the leveling fanout *)
}

val default_log_runs : log_runs
(** 4 L0 pages per spill, fanout 4 — the base for
    [{ default_log_runs with ... }] sweeps. *)

val default_config : config
(** The paper's demo device: 64 KiB RAM, 12 Mbit/s USB, 50 MIPS,
    default NAND geometry and costs, no fault injection. *)

val high_speed_usb : config -> config
(** Same device with a 480 Mbit/s link (the "future platforms" variant
    of Section 3). *)

type t

val create : ?config:config -> trace:Trace.t -> unit -> t
val config : t -> config
val flash : t -> Flash.t
(** The persistent Flash region holding the database and its indexes. *)

val scratch : t -> Flash.t
(** A Flash region reserved for query-time spills (external sort runs,
    intermediate merges). Managed separately so its blocks can be
    erased wholesale after a query without touching live data — the
    role of an FTL partition on a real device. Same cost model as
    {!flash}; its traffic counts toward the device clock. *)

val new_scratch_region : t -> Flash.t
(** A fresh spill region for one scheduler session, with the same
    geometry, cost and fault model as {!scratch}. Partitioning spills
    per session lets a session's scratch be erased wholesale on
    completion or cancellation without tearing another session's
    in-flight sort runs. The region stays registered with the device
    for its lifetime: its traffic counts toward {!elapsed_us},
    {!snapshot} and {!fault_counters} exactly like {!scratch}'s, so a
    single session on a private region is clock-identical to one on
    the shared region. The scheduler pools and reuses regions. *)

val set_on_tick : t -> (unit -> unit) option -> unit
(** Installs (or removes) the scheduler's preemption hook, invoked
    after every CPU or USB clock charge. The executor's inner loops
    charge the CPU per tuple, so the hook observes the device clock at
    tuple granularity; it is where a time-sliced execution performs
    its yield. [None] (the default) reduces to a single branch — the
    serial path is unaffected. *)

val set_session : t -> int option -> unit
(** Brackets trace attribution: forwards to {!Trace.set_session} on
    the device's trace, so every message recorded while a scheduler
    slice runs carries its session id — and advances the per-session
    virtual clock behind {!session_us}. *)

val session_us : t -> float
(** The current session's {e virtual} clock, in simulated microseconds:
    it advances with {!elapsed_us} while that session's bracket is open
    and stands still while other sessions run. Outside any bracket
    (serial execution) it equals {!elapsed_us}. Operator profile spans
    are stamped with this, so a session's measured operator times are
    independent of how the scheduler interleaved it. *)

val ram : t -> Ram.t

val page_cache : t -> Page_cache.t option
(** The shared buffer manager over {!flash}, present when
    [page_cache_frames > 0]. Query-time readers route page fills
    through it; the scratch region is never cached. *)

val cache_stats : t -> Page_cache.stats
(** {!Page_cache.stats} of the cache, or all zeros without one. *)

val trace : t -> Trace.t

val cpu : t -> int -> unit
(** [cpu t n] charges [n] simulated CPU operations. *)

val receive : ?obl:Trace.obl -> t -> Trace.payload -> bytes:int -> unit
(** Meters an inbound USB transfer (visible data entering the device)
    with a caller-supplied byte count and records it on the
    [Pc_to_device] link. Under an active {!usb_fault} model a
    corrupted transfer is retransmitted with exponential backoff —
    every attempt is charged to the clock, counted in the byte totals
    and recorded in the trace (a spy sees retransmitted bytes like any
    others) — until it succeeds or {!Usb_error} is raised.

    This is the raw, format-oblivious entry point (tests, ad-hoc
    traffic). Data-bearing executor traffic goes through the typed
    receives below, which derive the byte count from the actual
    encoded frame under the configured {!Wire.format}. *)

(** {2 Typed inbound transfers}

    Each call really encodes its message through the device's reused
    wire buffer and meters the encoded size: under [Verbose] exactly
    the seed's fixed-width sizes; under [Compact] the interned
    varint-delta framing, envelope included. Same retry discipline as
    {!receive}, operating on whole frames. *)

val receive_query : t -> string -> unit
(** The SQL text entering the device. *)

val receive_id_list : t -> table:string -> int array -> unit
(** A shipped visible-selection id list (strictly increasing;
    [Invalid_argument] otherwise). *)

val receive_value_stream :
  t -> table:string -> column:string -> ty:Ghost_kernel.Value.ty ->
  (int * Ghost_kernel.Value.t) array -> unit
(** An id-sorted stream of one visible column's [(id, value)] pairs. *)

val with_usb_batch : t -> (unit -> 'a) -> 'a
(** [with_usb_batch t f] coalesces every typed receive inside [f] into
    one vectored USB frame, sent when [f] returns: the burst pays one
    [usb_per_message_us], draws one corruption lottery and retries as
    a unit, and the frame envelope's bytes are attributed to the first
    message's trace event (so per-event byte sums still equal the
    device byte counters). The preemption hook is suspended for the
    bracket — a vectored submission is one unit of work; the transfer
    itself ticks normally. Under [Verbose] (and when nested) this is
    exactly [f ()]: no framing, no behavior change. An empty bracket
    sends nothing. *)

val emit_result : ?obl:Trace.obl -> t -> count:int -> bytes:int -> unit
(** Sends result tuples to the secure display ([Device_to_display]
    link — not spy visible). Same retry discipline as {!receive}.
    [obl] annotates the event with its leakage bound (see
    {!Trace.obl}): the oblivious executor pads [count] and [bytes] to
    a public bound and marks the dummy share; the baseline executor
    marks the {e unpadded} count's value range so the auditor can
    measure the residual leak. *)

val emit_ack : t -> unit
(** A content-free protocol acknowledgement on [Device_to_pc]. *)

val note_recovery : t -> recovered:int -> lost:int -> unit
(** Accounts a log-recovery outcome (see {!Delta_log.recover}) so the
    device's robustness counters report it. *)

val note_reorg_checkpoint : t -> unit
(** Accounts one durable reorganization checkpoint record (see
    {!Reorg} in the core library). *)

val note_reorg_outcome : t -> rolled_forward:bool -> unit
(** Accounts the recovery outcome of an interrupted reorganization:
    roll-forward (resumed from the last durable checkpoint) or
    roll-back (pre-reorg image kept). *)

val note_integrity_error : t -> transient:bool -> unit
(** Accounts one caught {!Flash.Integrity_error}; [transient] marks
    failures a cache-bypass re-read survived (stale frame) as opposed
    to persistent cell damage. Also counts [integrity.*] metrics. *)

val note_scrub : t -> pages:int -> refreshes:int -> unit
(** Accounts one scrubber batch: [pages] verified, of which
    [refreshes] were rewritten in place ([scrub.*] metrics). *)

val note_repair : t -> unit
(** Accounts one fleet repair that rebuilt this device's replica from
    a healthy peer ([repair.rebuilds] metric — recorded on the rebuilt
    device). *)

val note_log_spill : t -> pages:int -> records:int -> dropped:int -> unit
(** Accounts one installed L0 spill: [pages] run pages programmed,
    [records] records installed, [dropped] tombstoned records folded
    away ([compaction.*] / [run.*] metrics). *)

val note_log_merge : t -> pages:int -> records:int -> dropped:int -> unit
(** Accounts one installed level merge, same fields as
    {!note_log_spill} under [compaction.merges]. *)

val emit_reorg_progress : t -> phase:int -> phases:int -> unit
(** A zero-byte reorganization checkpoint notice on [Device_to_pc]
    (spy-visible, auditor-allowed): the device signals it is alive
    mid-rebuild without revealing anything about the data. Same retry
    discipline as {!receive}. *)

(** {2 Observability}

    The metrics registry ({!Ghost_metrics.Metrics}) is detached by
    default: every reporting site is a single [None] branch, recording
    never charges the simulated clock, and all outputs stay
    bit-identical to a device without one. *)

val set_metrics : t -> Ghost_metrics.Metrics.t option -> unit
(** Attaches (or detaches) an observability registry, propagating it to
    the device's {!Trace} and {!Page_cache}. Attaching rebases the
    registry's time origin past everything it already holds (see
    {!Ghost_metrics.Metrics.rebase}), so one registry can profile a
    succession of devices — e.g. across a reorganization — on one
    timeline, and arms {!flush_metrics} with a baseline snapshot. *)

val metrics : t -> Ghost_metrics.Metrics.t option

val flush_metrics : t -> unit
(** Publishes the device-global totals accumulated since the last flush
    (or since {!set_metrics}) into the registry: [device.flash.*],
    [device.usb.*], [device.cpu.*] counters and [device.*.us] time
    gauges. No-op without a registry. *)

(** {2 Accounting} *)

val cpu_time_us : t -> float
val usb_time_us : t -> float
val elapsed_us : t -> float
(** Flash time + USB time + CPU time, in simulated microseconds. *)

type fault_counters = {
  flash_bit_flips : int;
  flash_ecc_corrected : int;
  flash_ecc_uncorrected : int;
      (** bit errors served corrupt (ECC off or beyond correction) *)
  flash_program_failures : int;
  flash_pages_remapped : int;
  flash_bad_blocks : int;
  flash_power_cuts : int;
  usb_corruptions : int;
  usb_retries : int;
  records_recovered : int;
  records_lost : int;
  reorg_checkpoints : int;  (** durable reorg checkpoint records written *)
  reorg_rollbacks : int;  (** interrupted reorgs rolled back to the old image *)
  reorg_rollforwards : int;  (** interrupted reorgs resumed from a checkpoint *)
  integrity_errors : int;  (** CRC trailer mismatches caught by readers *)
  integrity_transients : int;  (** of which a cache-bypass re-read survived *)
  pages_scrubbed : int;  (** pages the background scrubber verified *)
  scrub_refreshes : int;  (** decaying pages the scrubber rewrote in place *)
  repair_rebuilds : int;  (** replica rebuilds from a healthy fleet peer *)
  log_spills : int;  (** L0 prefixes folded into sorted level-1 runs *)
  log_compactions : int;  (** level merges folding runs one level down *)
  compaction_pages : int;  (** run pages programmed by spills + merges *)
}
(** Robustness counters: faults injected and survived. All zero unless
    fault injection is configured (or a recovery was noted). *)

val zero_faults : fault_counters
val add_faults : fault_counters -> fault_counters -> fault_counters
val diff_faults : after:fault_counters -> before:fault_counters -> fault_counters
val no_faults : fault_counters -> bool
val fault_counters : t -> fault_counters
(** Both Flash regions' fault stats + USB retry counters + recovery
    totals. *)

type snapshot = {
  flash : Flash.stats;  (** main + scratch + per-session regions combined *)
  usb_bytes_in : int;
  usb_bytes_out : int;
  usb_us : float;
  cpu_ops : int;
  elapsed : float;
  faults : fault_counters;
  cache : Page_cache.stats;
}

val snapshot : t -> snapshot

type usage = {
  flash_page_reads : int;
  flash_page_programs : int;
  flash_us : float;
  used_usb_bytes_in : int;
  used_usb_us : float;
  used_cpu_ops : int;
  cpu_us : float;
  total_us : float;
  faults : fault_counters;  (** faults injected within the window *)
  cache : Page_cache.stats;  (** page-cache activity within the window *)
}

val usage_between : t -> before:snapshot -> after:snapshot -> usage
val zero_usage : usage
val add_usage : usage -> usage -> usage

val pp_usage : Format.formatter -> usage -> unit
(** Unchanged rendering when the window saw no faults and no cache
    activity; otherwise bracketed summaries are appended. *)
