(** Boundary trace: every message crossing a link of the GhostDB
    platform (Figure 1 of the paper).

    This is what demo phase 1 ("checking security") visualizes: the
    trace records, per link, what a Trojan horse on the untrusted
    terminal would observe. The privacy auditor consumes it to verify
    that no hidden-derived payload ever travels on a spy-visible
    link. *)

type link =
  | Server_to_pc  (** public server answers the client *)
  | Pc_to_server  (** client sub-queries on visible data *)
  | Pc_to_device  (** visible data entering the secure device *)
  | Device_to_pc  (** should carry nothing but protocol acks *)
  | Device_to_display  (** secure rendering channel; invisible to a spy *)

val link_name : link -> string

val spy_visible : link -> bool
(** True for every link except the secure display channel. *)

type payload =
  | Query_text of string
  | Id_list of { table : string; count : int }
  | Value_stream of { table : string; column : string; count : int }
  | Result_tuples of { count : int }
  | Ack
  | Cache_stats of { hits : int; misses : int; evictions : int }
      (** buffer-manager counters, rendered on the secure display next
          to the results (zero bytes, [Device_to_display] only) *)
  | Reorg_progress of { phase : int; phases : int }
      (** reorganization checkpoint notice ([Device_to_pc], zero bytes):
          spy-visible but content-free — the auditor allows it, since a
          spy learns only that the device is mid-rebuild *)

val payload_summary : payload -> string

type obl = {
  obl_bound : int;
      (** the public bound the observable was padded toward (table
          cardinality, live root count, ...) *)
  obl_values : int;
      (** how many distinct values the observable can take as the
          hidden data varies under fixed public bounds: 1 for a fully
          padded (single-valued) observable, [bound + 1] for an
          unpadded count in [0..bound] *)
  obl_pad_bytes : int;
      (** dummy-padding bytes inside [bytes] — shipped beyond the real
          payload, stripped by the trusted side; 0 in baseline mode *)
}
(** Leakage annotation an executor attaches to events whose payload
    size or count depends on hidden data (see [Ghost_oblivious]): the
    privacy auditor sums [log2 obl_values] into its data-dependent-bits
    verdict, and the spy report accounts [obl_pad_bytes] separately
    from real payload bytes. Pure bookkeeping — never charged to the
    simulated clock. *)

type event = {
  seq : int;
  link : link;
  payload : payload;
  bytes : int;
  session : int option;
      (** the scheduler session the message belongs to, when one was
          active; [None] for serial (unscheduled) execution *)
  obl : obl option;
      (** leakage annotation, when an oblivious-aware executor recorded
          the event; [None] everywhere else *)
}

type t

val create : unit -> t
val record : ?obl:obl -> t -> link -> payload -> bytes:int -> unit
(** Stamps the event with the {!current_session}. *)

val set_session : t -> int option -> unit
(** Sets the session id stamped on subsequently recorded events. The
    query scheduler brackets every execution slice with this, so
    arbitrary interleavings remain attributable per session; serial
    execution never sets it and events stay unstamped. *)

val current_session : t -> int option

val set_metrics : t -> Ghost_metrics.Metrics.t option -> unit
(** Attaches (or detaches) an observability registry: every recorded
    event additionally bumps the per-link [trace.<link>.messages] /
    [trace.<link>.bytes] counters there. [None] (the default) keeps
    {!record} at one extra branch. *)

val events : t -> event list
(** In emission order. *)

val spy_events : t -> event list
(** Only the events a spy can observe. *)

val session_events : t -> int -> event list
(** Events stamped with that session id, in emission order. *)

val sessions : t -> int list
(** Distinct session ids appearing in the trace, ascending. *)

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
