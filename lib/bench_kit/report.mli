(** Plain-text experiment tables. *)

type t = {
  id : string;  (** experiment id, e.g. "E1" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string -> title:string -> header:string list -> ?notes:string list ->
  string list list -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_json : t -> string
(** The same table as one JSON object
    [{"id", "title", "header", "rows", "notes"}] (all cells as
    strings), for machine consumption of benchmark runs — e.g. the CI
    artifact. No external JSON dependency. *)

val us : float -> string
(** Microseconds rendered with unit scaling ("1.23 s", "45 ms"). *)

val bytes : int -> string
(** Byte counts rendered with unit scaling ("12.3 KB"). *)

val factor : float -> string
(** "x12.3" *)
