(** Plain-text experiment tables. *)

type t = {
  id : string;  (** experiment id, e.g. "E1" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string -> title:string -> header:string list -> ?notes:string list ->
  string list list -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_json : t -> string
(** The same table as one JSON object
    [{"id", "title", "header", "rows", "notes"}] (all cells as
    strings), for machine consumption of benchmark runs — e.g. the CI
    artifact. No external JSON dependency. *)

exception Would_overwrite of string
(** Raised (with the offending path) by the writers below when the
    target file already exists and [force] was not passed: benchmark
    outputs are results, and clobbering a previous run silently is how
    baselines get corrupted. *)

val write_string : path:string -> ?force:bool -> string -> unit
(** Writes [contents] to [path] (ensuring a trailing newline).
    Refuses to replace an existing file — raises {!Would_overwrite} —
    unless [force] is set. *)

val write_file : dir:string -> ?force:bool -> t -> string
(** Writes the report as [dir/BENCH_<id>.json] (creating [dir] if
    missing) and returns the path. Same overwrite policy as
    {!write_string}. *)

val us : float -> string
(** Microseconds rendered with unit scaling ("1.23 s", "45 ms"). *)

val bytes : int -> string
(** Byte counts rendered with unit scaling ("12.3 KB"). *)

val factor : float -> string
(** "x12.3" *)
