module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device
module Trace = Ghost_device.Trace
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Ghost_db = Ghostdb.Ghost_db
module Catalog = Ghostdb.Catalog
module Plan = Ghostdb.Plan
module Planner = Ghostdb.Planner
module Cost = Ghostdb.Cost
module Exec = Ghostdb.Exec
module Privacy = Ghostdb.Privacy
module Spy = Ghost_public.Spy
module Baseline = Ghost_baseline.Baseline

let default_scale = Medical.small

let make_db ?device_config scale =
  Ghost_db.of_schema ?device_config (Medical.schema ()) (Medical.generate scale)

let run_named db sql plan =
  ignore sql;
  Ghost_db.run_plan db plan

(* ---- E1 / Figure 6 ---- *)

let fig6_plans ?(scale = default_scale) () =
  let db = make_db scale in
  let cat = Ghost_db.catalog db in
  let q = Ghost_db.bind db Queries.demo in
  let plans =
    [
      ("P1 all-Pre", Planner.all_pre cat q);
      ("P2 all-Post", Planner.all_post cat q);
      ("P3 Cross", Planner.cross cat q);
      ("P4 optimizer", fst (Planner.best cat q));
    ]
  in
  let rows =
    List.map
      (fun (name, plan) ->
         let est = Cost.estimate cat plan in
         let r = run_named db Queries.demo plan in
         [
           name;
           Report.us r.Exec.elapsed_us;
           Report.us est.Cost.est_time_us;
           Report.bytes r.Exec.ram_peak;
           string_of_int r.Exec.row_count;
           plan.Plan.label;
         ])
      plans
  in
  Report.make ~id:"E1" ~title:"Figure 6 - ad-hoc plan comparison (demo query)"
    ~header:[ "plan"; "exec time"; "est time"; "RAM peak"; "rows"; "strategy" ]
    ~notes:
      [
        Printf.sprintf "demo query: %s" (String.concat " " (String.split_on_char '\n' Queries.demo));
        Printf.sprintf "scale: %d prescriptions" scale.Medical.prescriptions;
      ]
    rows

(* ---- E2 crossover ---- *)

let crossover_selectivities =
  [ 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.35; 0.5 ]

let pre_post_crossover ?(scale = default_scale) () =
  let db = make_db scale in
  let cat = Ghost_db.catalog db in
  let strategies =
    [ Plan.V_pre; Plan.V_post; Plan.V_cross_pre; Plan.V_cross_post ]
  in
  let rows =
    List.map
      (fun sel ->
         let sql =
           Printf.sprintf
             "SELECT Pre.PreID FROM Prescription Pre, Visit Vis WHERE Vis.Date > '%s' \
              AND Vis.Purpose = 'Checkup' AND Vis.VisID = Pre.VisID"
             (Ghost_kernel.Date.to_string (Medical.date_cutoff_for_selectivity sel))
         in
         let q = Ghost_db.bind db sql in
         let times =
           List.map
             (fun s ->
                let plan = Planner.uniform cat q s in
                (Ghost_db.run_plan db plan).Exec.elapsed_us)
             strategies
         in
         let best_label = (fst (Planner.best cat q)).Plan.label in
         (* report the strategy the optimizer picked for the Date
            predicate: the token after "Visit{Date}:" *)
         let chosen =
           let marker = "Visit{Date}:" in
           let ml = String.length marker in
           let rec find i =
             if i + ml > String.length best_label then "?"
             else if String.sub best_label i ml = marker then begin
               let rest = String.sub best_label (i + ml) (String.length best_label - i - ml) in
               match String.index_opt rest ' ' with
               | Some j -> String.sub rest 0 j
               | None -> rest
             end
             else find (i + 1)
           in
           find 0
         in
         Printf.sprintf "%.3f" sel
         :: List.map Report.us times
         @ [ chosen ])
      crossover_selectivities
  in
  Report.make ~id:"E2"
    ~title:"Pre vs Post vs Cross filtering as visible selectivity grows"
    ~header:[ "Date sel."; "Pre"; "Post"; "Cross-Pre"; "Cross-Post"; "optimizer" ]
    ~notes:
      [
        "query: Vis.Date > cutoff (visible) AND Vis.Purpose = 'Checkup' (hidden)";
        "expected shape: Pre wins at high selectivity (few ids to climb), Post wins as \
         the visible predicate grows unselective";
      ]
    rows

(* ---- E3 operator stats ---- *)

let operator_stats ?(scale = default_scale) () =
  let db = make_db scale in
  let r = Ghost_db.query db Queries.demo in
  let rows =
    List.map
      (fun (o : Exec.op_stats) ->
         [
           o.Exec.op_label;
           string_of_int o.Exec.tuples_in;
           string_of_int o.Exec.tuples_out;
           Report.bytes o.Exec.ram_peak;
           Report.us o.Exec.usage.Device.total_us;
         ])
      r.Exec.ops
  in
  Report.make ~id:"E3" ~title:"Per-operator statistics (demo query, optimizer plan)"
    ~header:[ "operator"; "tuples in"; "tuples out"; "local RAM"; "time" ]
    ~notes:
      [
        Printf.sprintf "total: %s, %d result rows, RAM peak %s"
          (Report.us r.Exec.elapsed_us) r.Exec.row_count (Report.bytes r.Exec.ram_peak);
      ]
    rows

(* ---- E4 privacy trace ---- *)

let privacy_trace ?(scale = default_scale) () =
  let db = make_db scale in
  Ghost_db.clear_trace db;
  ignore (Ghost_db.query db Queries.demo);
  let report = Ghost_db.spy_report db in
  let verdict = Ghost_db.audit db in
  let link_rows =
    List.map
      (fun (s : Spy.link_summary) ->
         [
           Trace.link_name s.Spy.link;
           string_of_int s.Spy.messages;
           Report.bytes s.Spy.bytes;
         ])
      report.Spy.per_link
  in
  Report.make ~id:"E4" ~title:"What the spy sees (demo query)"
    ~header:[ "link"; "messages"; "bytes" ]
    ~notes:
      ([
         Printf.sprintf "queries observed: %d" (List.length report.Spy.queries_observed);
         Printf.sprintf "device outbound payload: %d B%s"
           report.Spy.device_outbound_payload_bytes
           (if report.Spy.device_outbound_payload_bytes = 0 then
              " - nothing hidden leaks" else " - LEAK");
         Printf.sprintf "auditor: %s"
           (if verdict.Privacy.ok then "OK" else String.concat "; " verdict.Privacy.violations);
       ]
       @ List.map
           (fun (t, c, n) -> Printf.sprintf "value stream observed: %s.%s x%d" t c n)
           report.Spy.value_streams_observed)
    link_rows

(* ---- E5 baselines ---- *)

let baseline_compare ?(scale = default_scale) () =
  let db = make_db scale in
  let cat = Ghost_db.catalog db in
  let public = Ghost_db.public db in
  let q = Ghost_db.bind db Queries.demo in
  let ghost = Ghost_db.query db Queries.demo in
  let base = ghost.Exec.elapsed_us in
  let rows =
    [
      "GhostDB (SKT + climbing)";
      Report.us ghost.Exec.elapsed_us;
      Report.factor 1.0;
      string_of_int ghost.Exec.row_count;
    ]
    :: List.map
         (fun algo ->
            let r = Baseline.run algo cat public q in
            [
              Baseline.algorithm_name algo;
              Report.us r.Baseline.elapsed_us;
              Report.factor (r.Baseline.elapsed_us /. base);
              string_of_int r.Baseline.row_count;
            ])
         [ Baseline.Grace_hash; Baseline.Sort_merge ]
  in
  Report.make ~id:"E5" ~title:"GhostDB vs last-resort join algorithms (demo query)"
    ~header:[ "engine"; "exec time"; "slowdown"; "rows" ]
    ~notes:
      [
        "the paper (Section 4): computing SPJ queries with hash joins or classical \
         join indices under the device constraints is 'unacceptable'";
      ]
    rows

(* ---- E6 flash asymmetry ---- *)

let flash_asymmetry ?(scale = default_scale) () =
  let ratios = [ 1.; 3.; 5.; 10. ] in
  let rows =
    List.map
      (fun ratio ->
         (* 16 KiB of RAM so both baselines actually spill to Flash *)
         let config =
           { Device.default_config with
             Device.ram_budget = 16 * 1024;
             Device.flash_cost = Flash.cost_with_write_ratio ratio }
         in
         let db = make_db ~device_config:config scale in
         let cat = Ghost_db.catalog db in
         let public = Ghost_db.public db in
         let q = Ghost_db.bind db Queries.demo in
         let ghost = Ghost_db.query db Queries.demo in
         let hash = Baseline.run Baseline.Grace_hash cat public q in
         let merge = Baseline.run Baseline.Sort_merge cat public q in
         [
           Printf.sprintf "%.0fx" ratio;
           Report.us ghost.Exec.elapsed_us;
           Report.us hash.Baseline.elapsed_us;
           Report.us merge.Baseline.elapsed_us;
         ])
      ratios
  in
  Report.make ~id:"E6" ~title:"Sensitivity to Flash program/read cost ratio"
    ~header:[ "write/read"; "GhostDB"; "grace hash"; "sort merge" ]
    ~notes:
      [
        "GhostDB's read-only query path is insensitive; spill-heavy baselines degrade \
         with the write cost (Section 3: writes are 3-10x slower than reads)";
      ]
    rows

(* ---- E7 RAM sweep ---- *)

let ram_sweep ?(scale = Medical.scale_with_prescriptions 40_000) () =
  (* 8 KiB is the floor: a page-sized program buffer must fit the
     arena next to the working set. *)
  let budgets = [ 8 * 1024; 16 * 1024; 32 * 1024; 64 * 1024; 128 * 1024; 512 * 1024 ] in
  let sql = Queries.demo_with ~date_selectivity:0.6 () in
  let rows =
    List.map
      (fun budget ->
         let config = { Device.default_config with Device.ram_budget = budget } in
         let db = make_db ~device_config:config scale in
         let cat = Ghost_db.catalog db in
         let q = Ghost_db.bind db sql in
         let post = Ghost_db.run_plan db (Planner.all_post cat q) in
         let best = Ghost_db.query db sql in
         [
           Report.bytes budget;
           Report.us post.Exec.elapsed_us;
           string_of_int post.Exec.bloom_fp_candidates;
           Report.us best.Exec.elapsed_us;
           Report.bytes best.Exec.ram_peak;
         ])
      budgets
  in
  Report.make ~id:"E7" ~title:"Sensitivity to the secure chip's RAM budget"
    ~header:
      [ "RAM"; "all-Post time"; "bloom FPs absorbed"; "optimizer time"; "RAM peak" ]
    ~notes:
      [
        "smaller RAM -> smaller Bloom filters -> more false positives absorbed by the \
         exact verification join (never wrong results), and tighter merge fan-in";
      ]
    rows

(* ---- E8 USB sweep ---- *)

let usb_sweep ?(scale = default_scale) () =
  let speeds = [ 12.; 100.; 480. ] in
  let sql = Queries.demo_with ~date_selectivity:0.3 () in
  let rows =
    List.map
      (fun mbps ->
         let config = { Device.default_config with Device.usb_mbit_per_s = mbps } in
         let db = make_db ~device_config:config scale in
         let cat = Ghost_db.catalog db in
         let q = Ghost_db.bind db sql in
         let pre = Ghost_db.run_plan db (Planner.all_pre cat q) in
         let post = Ghost_db.run_plan db (Planner.all_post cat q) in
         [
           Printf.sprintf "%.0f Mbit/s" mbps;
           Report.us pre.Exec.elapsed_us;
           Report.us post.Exec.elapsed_us;
         ])
      speeds
  in
  Report.make ~id:"E8" ~title:"USB full speed vs high speed (Section 3)"
    ~header:[ "link"; "all-Pre time"; "all-Post time" ]
    ~notes:
      [ "shipping id lists and projection streams dominates at 12 Mbit/s; 480 Mbit/s \
         is the paper's 'future platforms' variant" ]
    rows

(* ---- E9 storage overhead ---- *)

let storage_overhead ?(scales = [ Medical.tiny; Medical.small ]) () =
  let rows =
    List.map
      (fun scale ->
         let db = make_db scale in
         let s = Ghost_db.storage db in
         let total =
           s.Catalog.base_bytes + s.Catalog.skt_bytes + s.Catalog.attr_index_bytes
           + s.Catalog.key_index_bytes
         in
         [
           string_of_int scale.Medical.prescriptions;
           Report.bytes s.Catalog.base_bytes;
           Report.bytes s.Catalog.skt_bytes;
           Report.bytes s.Catalog.attr_index_bytes;
           Report.bytes s.Catalog.key_index_bytes;
           Report.factor (Float.of_int total /. Float.of_int (max 1 s.Catalog.base_bytes));
         ])
      scales
  in
  Report.make ~id:"E9" ~title:"Flash storage: hidden base data vs index structures"
    ~header:
      [ "prescriptions"; "base data"; "SKTs"; "climbing idx"; "key idx"; "total/base" ]
    ~notes:
      [ "Section 4: the SKT + climbing-index benefit 'comes at an extra cost in terms \
         of Flash storage'" ]
    rows

(* ---- E10 scale sweep ---- *)

let scale_sweep ?(cardinalities = [ 1_000; 10_000; 50_000; 100_000 ]) () =
  let rows =
    List.map
      (fun n ->
         let scale = Medical.scale_with_prescriptions n in
         let db = make_db scale in
         let cat = Ghost_db.catalog db in
         let q = Ghost_db.bind db Queries.demo in
         let pre = Ghost_db.run_plan db (Planner.all_pre cat q) in
         let post = Ghost_db.run_plan db (Planner.all_post cat q) in
         let best = Ghost_db.query db Queries.demo in
         [
           string_of_int n;
           Report.us pre.Exec.elapsed_us;
           Report.us post.Exec.elapsed_us;
           Report.us best.Exec.elapsed_us;
           string_of_int best.Exec.row_count;
         ])
      cardinalities
  in
  Report.make ~id:"E10" ~title:"Execution time vs root-table cardinality (demo query)"
    ~header:[ "prescriptions"; "all-Pre"; "all-Post"; "optimizer"; "rows" ]
    ~notes:
      [ "the demo dataset has one million prescriptions; run with --full to include it" ]
    rows

(* ---- E11 inserts ---- *)

let insert_sweep ?(scale = default_scale) () =
  let module Value = Ghost_kernel.Value in
  let module Rng = Ghost_kernel.Rng in
  let rows_for db rng n =
    let next =
      Catalog.total_count (Ghost_db.catalog db) "Prescription" + 1
    in
    List.init n (fun i ->
      [|
        Value.Int (next + i);
        Value.Int (Rng.int_in rng 1 10);
        Value.Int (Rng.int_in rng 1 4);
        Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
        Value.Int (1 + Rng.int rng scale.Medical.medicines);
        Value.Int (1 + Rng.int rng scale.Medical.visits);
      |])
  in
  let db = make_db scale in
  let rng = Rng.create 77 in
  let device = Ghost_db.device db in
  let query_time () = (Ghost_db.query db Queries.demo).Exec.elapsed_us in
  let base_query = query_time () in
  let rows =
    List.map
      (fun batch ->
         let t0 = Device.elapsed_us device in
         Ghost_db.insert db (rows_for db rng batch);
         let insert_us = Device.elapsed_us device -. t0 in
         let q = query_time () in
         let log = Catalog.delta (Ghost_db.catalog db) "Prescription" in
         let live, dead =
           match log with
           | Some l -> (Ghostdb.Delta_log.size_bytes l, Ghostdb.Delta_log.dead_bytes l)
           | None -> (0, 0)
         in
         [
           string_of_int batch;
           Report.us insert_us;
           Report.us (insert_us /. Float.of_int batch);
           string_of_int (Ghost_db.delta_count db);
           Report.us q;
           Report.factor (q /. base_query);
           Report.bytes live;
           Report.bytes dead;
         ])
      [ 10; 90; 400; 1500 ]
  in
  Report.make ~id:"E11" ~title:"Inserts: delta-log cost and query overhead"
    ~header:
      [ "batch"; "insert time"; "per row"; "delta rows"; "demo query"; "vs fresh";
        "log live"; "log dead" ]
    ~notes:
      [
        "new facts append to a Flash delta log (no in-place writes); queries scan it          next to the indexed structures until offline reorganization";
        "'log dead' is the write amplification of re-programming partial tail pages";
      ]
    rows

(* ---- E15 robustness: fault injection overhead ---- *)

let robustness ?(scale = default_scale) () =
  let module Value = Ghost_kernel.Value in
  let module Rng = Ghost_kernel.Rng in
  let insert_rows db rng n =
    let next = Catalog.total_count (Ghost_db.catalog db) "Prescription" + 1 in
    List.init n (fun i ->
      [|
        Value.Int (next + i);
        Value.Int (Rng.int_in rng 1 10);
        Value.Int (Rng.int_in rng 1 4);
        Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
        Value.Int (1 + Rng.int rng scale.Medical.medicines);
        Value.Int (1 + Rng.int rng scale.Medical.visits);
      |])
  in
  let flash_faults ~flip ~fail =
    Some { Flash.no_faults with
           Flash.fault_seed = 4242;
           read_flip_prob = flip;
           program_fail_prob = fail }
  in
  let usb_faults prob =
    Some { Device.default_usb_fault with Device.usb_seed = 777; corrupt_prob = prob }
  in
  let profiles =
    [
      ("plain (seed)", Device.default_config);
      ("durable logs", { Device.default_config with Device.durable_logs = true });
      ( "bit-rot + ECC",
        { Device.default_config with
          Device.durable_logs = true;
          flash_fault = flash_faults ~flip:0.02 ~fail:0. } );
      ( "worn blocks",
        { Device.default_config with
          Device.durable_logs = true;
          flash_fault = flash_faults ~flip:0. ~fail:0.02 } );
      ( "lossy USB",
        { Device.default_config with
          Device.durable_logs = true;
          usb_fault = usb_faults 0.25 } );
      ( "all faults",
        { Device.default_config with
          Device.durable_logs = true;
          flash_fault = flash_faults ~flip:0.02 ~fail:0.02;
          usb_fault = usb_faults 0.25 } );
    ]
  in
  let baseline = ref None in
  let rows =
    List.map
      (fun (name, config) ->
         let db = make_db ~device_config:config scale in
         let rng = Rng.create 31 in
         let device = Ghost_db.device db in
         let before = Device.snapshot device in
         let t0 = Device.elapsed_us device in
         Ghost_db.insert db (insert_rows db rng 300);
         let insert_us = Device.elapsed_us device -. t0 in
         let q = (Ghost_db.query db Queries.demo).Exec.elapsed_us in
         let total = insert_us +. q in
         (match !baseline with None -> baseline := Some total | Some _ -> ());
         let f =
           Device.diff_faults ~after:(Device.snapshot device).Device.faults
             ~before:before.Device.faults
         in
         [
           name;
           Report.us insert_us;
           Report.us q;
           Printf.sprintf "x%.2f" (total /. Option.get !baseline);
           string_of_int f.Device.flash_ecc_corrected;
           string_of_int f.Device.flash_ecc_uncorrected;
           string_of_int f.Device.flash_pages_remapped;
           string_of_int f.Device.flash_bad_blocks;
           string_of_int f.Device.usb_retries;
         ])
      profiles
  in
  Report.make ~id:"E15" ~title:"Robustness: fault injection and recovery overhead"
    ~header:
      [ "profile"; "insert 300"; "demo query"; "vs plain"; "ecc fixed";
        "ecc uncorr"; "remapped"; "bad blk"; "usb retries" ]
    ~notes:
      [
        "fault injection is deterministic (seeded); the 'plain (seed)' row is \
         bit-identical to the fault-free simulator";
        "'durable logs' pays the 20-byte checksummed page header that makes \
         power-cut recovery possible";
        "ECC corrections, page remaps and USB retransmissions are all metered \
         on the simulated clock, so the overhead factors are end-to-end";
      ]
    rows

(* ---- E16 shared page cache: frame-count sweep ---- *)

let page_cache_sweep ?metrics ?(scale = default_scale) () =
  let module Page_cache = Ghost_device.Page_cache in
  let attach db =
    Option.iter (fun m -> Ghost_db.set_metrics db (Some m)) metrics
  in
  let page = Device.default_config.Device.flash_geometry.Flash.page_size in
  (* Hidden-predicate COUNT queries: nearly all their time is
     device-side Flash traffic — climbing-index directory probes,
     id-list decoding, SKT row probes, hidden-column checks — while USB
     carries only the query text and a one-row result. That isolates
     what the buffer manager can save. *)
  let queries =
    [
      "SELECT COUNT(*) FROM Prescription Pre WHERE Pre.Quantity BETWEEN 8 AND 10";
      "SELECT COUNT(*) FROM Prescription Pre, Visit Vis WHERE Vis.Purpose = \
       'Sclerosis' AND Vis.VisID = Pre.VisID";
      "SELECT COUNT(*) FROM Prescription Pre, Visit Vis, Patient Pat WHERE \
       Pat.BodyMassIndex >= 35.0 AND Vis.PatID = Pat.PatID AND Pre.VisID = \
       Vis.VisID";
    ]
  in
  let baseline = ref None in
  let rows =
    List.map
      (fun frames ->
         (* The frame pool is charged to device RAM for the device's
            lifetime, so the budget grows by exactly the pool: every
            row runs its queries with the same free RAM. *)
         let config =
           { Device.default_config with
             Device.page_cache_frames = frames;
             Device.ram_budget =
               Device.default_config.Device.ram_budget + (frames * page) }
         in
         let db = make_db ~device_config:config scale in
         attach db;
         let device = Ghost_db.device db in
         let run_round () =
           List.iter (fun sql -> ignore (Ghost_db.query db sql)) queries
         in
         (* Warm-up round: populates the cache (discarded), so the
            table reports steady-state behaviour. *)
         run_round ();
         let before = Device.snapshot device in
         run_round ();
         run_round ();
         let u =
           Device.usage_between device ~before ~after:(Device.snapshot device)
         in
         Ghost_db.flush_metrics db;
         let c = u.Device.cache in
         (match !baseline with
          | None -> baseline := Some u.Device.total_us
          | Some _ -> ());
         let accesses = c.Page_cache.hits + c.Page_cache.misses in
         let hit_pct =
           if accesses = 0 then "-"
           else
             Printf.sprintf "%.0f%%"
               (100. *. Float.of_int c.Page_cache.hits /. Float.of_int accesses)
         in
         [
           (if frames = 0 then "off" else string_of_int frames);
           Report.bytes (frames * page);
           Report.us u.Device.total_us;
           Report.us u.Device.flash_us;
           string_of_int u.Device.flash_page_reads;
           string_of_int c.Page_cache.hits;
           string_of_int c.Page_cache.misses;
           string_of_int c.Page_cache.evictions;
           hit_pct;
           Printf.sprintf "x%.1f" (Option.get !baseline /. u.Device.total_us);
         ])
      [ 0; 4; 16; 64 ]
  in
  Report.make ~id:"E16"
    ~title:"Shared page cache: device time vs frame-pool size"
    ~header:
      [ "frames"; "pool"; "device time"; "flash time"; "page reads"; "hit";
        "miss"; "evict"; "hit%"; "vs off" ]
    ~notes:
      [
        "two measured rounds of three hidden-predicate COUNT queries after one \
         warm-up round; clock/second-chance eviction over full-page frames";
        "frames=0 disables the cache entirely: that row is bit-identical to the \
         cache-free simulator";
        "each row's RAM budget grows by exactly its frame pool, so all rows run \
         with the same free RAM";
        "a hit is a RAM blit (zero Flash time); a miss reads one whole page \
         into the victim frame, so a tiny pool can lose on streaming patterns \
         before the pool covers the hot set";
      ]
    rows

(* ---- E17 journaled reorganization: rebuild cost + recovery time ---- *)

let reorg_cost ?metrics ?(scale = default_scale) () =
  let module Value = Ghost_kernel.Value in
  let module Rng = Ghost_kernel.Rng in
  let durable = { Device.default_config with Device.durable_logs = true } in
  let attach db =
    Option.iter (fun m -> Ghost_db.set_metrics db (Some m)) metrics
  in
  (* A database carrying [pending] inserted rows plus pending/10
     deletes, deterministic per log size. *)
  let build pending =
    let db = make_db ~device_config:durable scale in
    let rng = Rng.create 51 in
    let next = Catalog.total_count (Ghost_db.catalog db) "Prescription" + 1 in
    Ghost_db.insert db
      (List.init pending (fun i ->
         [|
           Value.Int (next + i);
           Value.Int (Rng.int_in rng 1 10);
           Value.Int (Rng.int_in rng 1 4);
           Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
           Value.Int (1 + Rng.int rng scale.Medical.medicines);
           Value.Int (1 + Rng.int rng scale.Medical.visits);
         |]));
    let doomed =
      List.init (max 1 (pending / 10)) (fun i ->
        1 + ((i * 37) mod scale.Medical.prescriptions))
      |> List.sort_uniq compare
    in
    Ghost_db.delete db doomed;
    (db, List.length doomed)
  in
  let rows =
    List.map
      (fun pending ->
         (* 1. uninterrupted journaled rebuild; cost lands on the old
            device's clock (snapshot reads + journal appends) *)
         let db, tombs = build pending in
         attach db;
         let device = Ghost_db.device db in
         let t0 = Device.elapsed_us device in
         let rebuilt = Ghost_db.reorganize db in
         let reorg_us = Device.elapsed_us device -. t0 in
         Ghost_db.flush_metrics db;
         Ghost_db.flush_metrics rebuilt;
         let ckpts = (Device.fault_counters device).Device.reorg_checkpoints in
         (* 2. a cut tearing the Begin record: recovery rolls back *)
         let db, _ = build pending in
         attach db;
         let device = Ghost_db.device db in
         Flash.arm_power_cut (Device.flash device) ~after_programs:1;
         (try ignore (Ghost_db.reorganize db) with Flash.Power_cut _ -> ());
         let t0 = Device.elapsed_us device in
         ignore (Ghost_db.recover db);
         let rollback_us = Device.elapsed_us device -. t0 in
         Ghost_db.flush_metrics db;
         (* 3. a cut after the snapshot checkpoint: recovery rolls
            forward, reusing the journaled snapshot phase *)
         let db, _ = build pending in
         attach db;
         let device = Ghost_db.device db in
         Flash.arm_power_cut (Device.flash device) ~after_programs:3;
         (try ignore (Ghost_db.reorganize db) with Flash.Power_cut _ -> ());
         let t0 = Device.elapsed_us device in
         let r = Ghost_db.recover db in
         let rollfwd_us = Device.elapsed_us device -. t0 in
         Ghost_db.flush_metrics db;
         let reused, redone =
           match r.Ghost_db.reorg with
           | Some
               (Ghost_db.Reorg_completed { db = db'; phases_reused; phases_redone })
             ->
             Ghost_db.flush_metrics db';
             (phases_reused, phases_redone)
           | _ -> (0, 0)
         in
         [
           string_of_int pending;
           string_of_int tombs;
           string_of_int (ckpts + 2);
           Report.us reorg_us;
           Report.us rollback_us;
           Report.us rollfwd_us;
           Printf.sprintf "%d/%d" reused redone;
         ])
      [ 50; 150; 300 ]
  in
  Report.make ~id:"E17"
    ~title:"Reorganization: journaled rebuild cost and recovery time vs log size"
    ~header:
      [ "delta rows"; "tombstones"; "journal pages"; "rebuild"; "roll-back";
        "roll-forward"; "reused/redone" ]
    ~notes:
      [
        "the rebuild runs as a checkpointed shadow build: Begin + one \
         checkpoint per phase + Commit, each one CRC-stamped page on the old \
         device's Flash ('journal pages' counts them)";
        "'roll-back' recovers from a cut that tore the Begin record (nothing \
         durable yet: the pre-reorg image stays live); 'roll-forward' from a \
         cut right after the snapshot checkpoint (completed phases are reused, \
         the rest re-run)";
        "all times are the old device's simulated clock: snapshot reads, \
         journal appends and the recovery scan; the shadow build's programs \
         land on the new device";
      ]
    rows

(* ---- E12 lifecycle: deletes + reorganization ---- *)

let lifecycle ?(scale = default_scale) () =
  let module Value = Ghost_kernel.Value in
  let module Rng = Ghost_kernel.Rng in
  let rng = Rng.create 99 in
  let db = ref (make_db scale) in
  let demo_time () = (Ghost_db.query !db Queries.demo).Exec.elapsed_us in
  let fresh = demo_time () in
  let insert n =
    let next = Catalog.total_count (Ghost_db.catalog !db) "Prescription" + 1 in
    Ghost_db.insert !db
      (List.init n (fun i ->
         [|
           Value.Int (next + i);
           Value.Int (Rng.int_in rng 1 10);
           Value.Int (Rng.int_in rng 1 4);
           Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
           Value.Int (1 + Rng.int rng scale.Medical.medicines);
           Value.Int (1 + Rng.int rng scale.Medical.visits);
         |]))
  in
  let delete n =
    (* delete random live loaded rows *)
    let cat = Ghost_db.catalog !db in
    let victims = ref [] in
    while List.length !victims < n do
      let id = 1 + Rng.int rng (Catalog.table_count cat "Prescription") in
      let dead =
        match Catalog.tombstone cat "Prescription" with
        | Some log -> Ghostdb.Tombstone_log.mem log id
        | None -> false
      in
      if (not dead) && not (List.mem id !victims) then victims := id :: !victims
    done;
    Ghost_db.delete !db !victims
  in
  let device () = Ghost_db.device !db in
  let step label f =
    let t0 = Device.elapsed_us (device ()) in
    f ();
    let op_us = Device.elapsed_us (device ()) -. t0 in
    let q = demo_time () in
    [
      label;
      Report.us op_us;
      string_of_int (Ghost_db.delta_count !db);
      string_of_int (Ghost_db.tombstone_count !db);
      Report.us q;
      Report.factor (q /. fresh);
    ]
  in
  (* build sequentially: each step mutates the instance *)
  let r0 = step "load (fresh)" (fun () -> ()) in
  let r1 = step "insert 500" (fun () -> insert 500) in
  let r2 = step "delete 300" (fun () -> delete 300) in
  let r3 = step "insert 500" (fun () -> insert 500) in
  let r4 =
    (* the snapshot cost lands on the OLD device's clock *)
    let old_device = device () in
    let t0 = Device.elapsed_us old_device in
    db := Ghost_db.reorganize !db;
    let op_us = Device.elapsed_us old_device -. t0 in
    let q = demo_time () in
    [
      "reorganize";
      Report.us op_us;
      string_of_int (Ghost_db.delta_count !db);
      string_of_int (Ghost_db.tombstone_count !db);
      Report.us q;
      Report.factor (q /. fresh);
    ]
  in
  let rows = [ r0; r1; r2; r3; r4 ] in
  Report.make ~id:"E12" ~title:"Lifecycle: inserts, deletes, reorganization"
    ~header:[ "step"; "op time"; "delta"; "tombstones"; "demo query"; "vs fresh" ]
    ~notes:
      [
        "the delta/tombstone tax accumulates until the offline reorganization \
         (secure-setting reload) folds the logs back into the indexed structures";
        "'op time' for reorganize is the device-side read cost of snapshotting the \
         logical state (rebuild happens offline)";
      ]
    rows

(* ---- E13 optimizer calibration ---- *)

(* Spearman rank correlation between two float series. *)
let spearman xs ys =
  let rank arr =
    let idx = Array.mapi (fun i v -> (v, i)) arr in
    Array.sort compare idx;
    let r = Array.make (Array.length arr) 0. in
    Array.iteri (fun pos (_, i) -> r.(i) <- Float.of_int pos) idx;
    r
  in
  let rx = rank xs and ry = rank ys in
  let n = Float.of_int (Array.length xs) in
  if n < 2. then 1.
  else begin
    let d2 =
      Array.fold_left ( +. ) 0.
        (Array.mapi (fun i x -> (x -. ry.(i)) ** 2.) rx)
    in
    1. -. (6. *. d2 /. (n *. ((n *. n) -. 1.)))
  end

let optimizer_calibration ?(scale = default_scale) () =
  let db = make_db scale in
  let cat = Ghost_db.catalog db in
  let rows =
    List.filter_map
      (fun (name, sql) ->
         let panel = Planner.with_estimates cat (Ghost_db.bind db sql) in
         if List.length panel < 2 then None
         else begin
           let est = Array.of_list (List.map (fun (_, e) -> e.Cost.est_time_us) panel) in
           let meas =
             Array.of_list
               (List.map (fun (p, _) -> (Ghost_db.run_plan db p).Exec.elapsed_us) panel)
           in
           let rho = spearman est meas in
           let log_ratio =
             Array.fold_left ( +. ) 0.
               (Array.mapi (fun i e -> Float.abs (log (e /. meas.(i)))) est)
             /. Float.of_int (Array.length est)
           in
           let picked = meas.(0) in
           let best = Array.fold_left Float.min infinity meas in
           Some
             [
               name;
               string_of_int (Array.length est);
               Printf.sprintf "%.2f" rho;
               Printf.sprintf "%.2fx" (exp log_ratio);
               Printf.sprintf "%.2fx" (picked /. best);
             ]
         end)
      Queries.all
  in
  Report.make ~id:"E13" ~title:"Optimizer calibration: estimates vs simulated times"
    ~header:
      [ "query"; "plans"; "rank corr"; "mean |est/meas|"; "pick vs best" ]
    ~notes:
      [
        "rank correlation ~1.0 means the cost model orders the panel like the \
         simulator does; 'pick vs best' is the regret of trusting the estimate";
      ]
    rows

(* ---- E14 second workload (corporate/retail) ---- *)

let retail_workload () =
  let module Retail = Ghost_workload.Retail in
  let db = Ghost_db.of_schema (Retail.schema ()) (Retail.generate Retail.small) in
  let cat = Ghost_db.catalog db in
  Ghost_db.clear_trace db;
  let rows =
    List.map
      (fun (name, sql) ->
         let q = Ghost_db.bind db sql in
         let pre = Ghost_db.run_plan db (Planner.all_pre cat q) in
         let post = Ghost_db.run_plan db (Planner.all_post cat q) in
         let best_plan, _ = Planner.best cat q in
         let best = Ghost_db.run_plan db best_plan in
         [
           name;
           Report.us pre.Exec.elapsed_us;
           Report.us post.Exec.elapsed_us;
           Report.us best.Exec.elapsed_us;
           string_of_int best.Exec.row_count;
         ])
      Retail.queries
  in
  let verdict = Ghostdb.Privacy.audit (Ghost_db.trace db) in
  Report.make ~id:"E14"
    ~title:"Second workload: corporate catalog with hidden margins (retail tree)"
    ~header:[ "query"; "all-Pre"; "all-Post"; "optimizer"; "rows" ]
    ~notes:
      [
        "a different tree shape (LineItem -> Purchase -> Customer chain + flat \
         Product) with inverted cardinality ratios; nothing is tuned to Figure 3";
        Printf.sprintf "privacy auditor across the whole workload: %s"
          (if verdict.Ghostdb.Privacy.ok then "OK" else "VIOLATION");
      ]
    rows

(* ---- E18 multi-session scheduler: throughput + tail latency ---- *)

let sched_throughput ?metrics ?(scale = default_scale) () =
  let module Scheduler = Ghost_sched.Scheduler in
  let module Driver = Ghost_sched.Workload_driver in
  (* An interactive-plus-analyst mix: three sub-10ms point/join queries
     and the suite's two full-scan analytical queries (~25x and ~165x
     the lightest). The full suite's mid-weight joins (~30ms) are left
     out on purpose: they are frequent enough under any Zipf skew to
     land inside the p95 window, where a preemptive policy charges them
     N times their service time and drowns the convoy signal. With a
     clean light/heavy gap, theta 2.5 gives the heavy tail ~4% of the
     mass, so p95 measures what FIFO does to the many light queries
     queued behind a rare analytical scan, not the scans themselves. *)
  let mix =
    List.filter
      (fun (name, _) ->
         List.mem name
           [ "single_table_visible"; "demo"; "doctor_patient";
             "range_hidden"; "visible_only" ])
      Ghost_workload.Queries.all
  in
  let spec clients =
    { Driver.default_spec with
      Driver.clients; queries_per_client = 12; theta = 2.5; mix }
  in
  (* FIFO with an infinite quantum is the serial baseline (a finite
     quantum would change nothing: FIFO never switches). The preemptive
     policies slice at 500 simulated microseconds — small against even
     the lightest query, so light queries overtake heavy ones. *)
  let run_cell clients policy =
    let db = make_db scale in
    Option.iter (fun m -> Ghost_db.set_metrics db (Some m)) metrics;
    let quantum_us =
      match policy with Scheduler.Fifo -> infinity | _ -> 500.
    in
    let s = Driver.run ~policy ~quantum_us db (spec clients) in
    Ghost_db.flush_metrics db;
    s
  in
  let rows =
    List.concat_map
      (fun clients ->
         let cells =
           List.map
             (fun p -> run_cell clients p)
             [ Scheduler.Fifo; Scheduler.Round_robin; Scheduler.Cost_based ]
         in
         let fifo_p95 =
           (List.hd cells).Driver.latency_p95_us
         in
         List.map
           (fun (s : Driver.summary) ->
              [
                string_of_int clients;
                Scheduler.policy_name s.Driver.policy;
                string_of_int s.Driver.completed;
                Report.us s.Driver.makespan_us;
                Printf.sprintf "%.1f" s.Driver.throughput_qps;
                Report.us s.Driver.latency_p50_us;
                Report.us s.Driver.latency_p95_us;
                Report.us s.Driver.latency_max_us;
                Report.factor (fifo_p95 /. s.Driver.latency_p95_us);
              ])
           cells)
      [ 1; 2; 4; 8 ]
  in
  Report.make ~id:"E18"
    ~title:"Multi-session scheduler: throughput and tail latency vs policy"
    ~header:
      [ "clients"; "policy"; "done"; "makespan"; "q/s"; "p50"; "p95"; "max";
        "p95 vs fifo" ]
    ~notes:
      [
        "closed loop: each client keeps one query in flight (no think time); \
         mix = three interactive queries plus the two analytical scans, \
         ranked cheapest-first, Zipf theta 2.5, so a scan is a rare (~4%) \
         event; every session reserves a fair share of the RAM arena";
        "fifo runs each session to completion (serial baseline); round-robin \
         and cost-based (shortest remaining estimate first) preempt every \
         500 us of simulated device time";
        "latency = completion - submission on the device clock; under fifo a \
         rare heavy query convoys every light query behind it, which is what \
         the p95 column pays for";
        "admission control reserves each session's working RAM before \
         dispatch, so concurrency never over-commits the 64 KiB arena";
      ]
    rows

(* ---- E19 fault-tolerant device fleet: scaling + availability ---- *)

let fleet_scaling ?metrics ?(scale = default_scale)
    ?(shard_counts = [ 1; 2; 4; 8 ]) () =
  let module Metrics = Ghost_metrics.Metrics in
  let module Fleet = Ghost_fleet.Fleet in
  let module Driver = Ghost_fleet.Fleet_driver in
  (* The E18 interactive-plus-analyst mix, so the single-shard row is
     directly comparable to the single-device scheduler numbers. Two
     of the five queries touch dimension tables only and route to one
     shard; the rest scatter to every shard and merge. *)
  let mix =
    List.filter
      (fun (name, _) ->
         List.mem name
           [ "single_table_visible"; "demo"; "doctor_patient";
             "range_hidden"; "visible_only" ])
      Ghost_workload.Queries.all
  in
  let schema = Medical.schema () in
  let data = Medical.generate scale in
  let spec clients =
    { Driver.default_spec with Driver.clients; queries_per_client = 3;
      theta = 1.1; mix }
  in
  (* Unplug shard 0's first replica early in the run, while every
     client still has queries in flight. *)
  let kill_spec =
    { Driver.kill_at_us = 2_000.; kill_shard = 0; kill_replica = 0 }
  in
  let fault_shards =
    List.nth shard_counts (min 2 (List.length shard_counts - 1))
  in
  let cells =
    List.map (fun n -> (n, 1, false)) shard_counts
    @ [ (fault_shards, 2, false); (fault_shards, 2, true);
        (fault_shards, 1, true) ]
  in
  let run_cell (n, r, kill) =
    let fleet =
      Fleet.create
        ~topology:
          { Fleet.shards = n; replicas = r; partitioning = Fleet.Range }
        schema data
    in
    Option.iter (fun m -> Fleet.set_metrics fleet (Some m)) metrics;
    let kills = if kill then [ kill_spec ] else [] in
    let clients = 8 * n in
    let s = Driver.run ~kills fleet (spec clients) in
    Fleet.flush_metrics fleet;
    let verdict = Fleet.audit fleet in
    Option.iter
      (fun m ->
         let tag =
           Printf.sprintf "fleet.s%d.r%d%s" n r (if kill then ".kill" else "")
         in
         Metrics.incr m (tag ^ ".completed") ~by:s.Driver.completed;
         Metrics.incr m (tag ^ ".partial") ~by:s.Driver.partial;
         Metrics.incr m (tag ^ ".failovers") ~by:s.Driver.failovers;
         Metrics.incr m (tag ^ ".hedges") ~by:s.Driver.hedges;
         Metrics.add_gauge m (tag ^ ".makespan_us") s.Driver.makespan_us;
         Metrics.add_gauge m (tag ^ ".latency_p95_us") s.Driver.latency_p95_us)
      metrics;
    [
      string_of_int n;
      string_of_int r;
      string_of_int clients;
      (if kill then
         Printf.sprintf "kill (%d,%d)" kill_spec.Driver.kill_shard
           kill_spec.Driver.kill_replica
       else "none");
      string_of_int s.Driver.completed;
      string_of_int s.Driver.partial;
      string_of_int s.Driver.failovers;
      string_of_int s.Driver.hedges;
      Report.us s.Driver.makespan_us;
      Printf.sprintf "%.1f" s.Driver.throughput_qps;
      Report.us s.Driver.latency_p95_us;
      Printf.sprintf "%.3f" s.Driver.availability;
      (if verdict.Privacy.ok then "ok" else "VIOLATION");
    ]
  in
  let rows = List.map run_cell cells in
  Report.make ~id:"E19"
    ~title:"Fault-tolerant device fleet: scaling and availability under failure"
    ~header:
      [ "shards"; "R"; "clients"; "fault"; "done"; "partial"; "failover";
        "hedge"; "makespan"; "q/s"; "p95"; "avail"; "audit" ]
    ~notes:
      [
        "closed loop at 8 clients per shard: the root (Prescription) table is \
         range-partitioned across the shards, dimension tables replicated \
         everywhere; scatter sub-queries run through one scheduler per \
         device and the untrusted terminal merges the sorted outputs";
        "the scaling rows (fault = none, R = 1) chart throughput as devices \
         are added; the makespan column is the global simulated clock, so \
         near-flat makespan under 8x the offered load is the win";
        "kill rows unplug a device mid-run: with R = 2 every affected \
         sub-query fails over to the surviving replica and zero queries are \
         lost; with R = 1 the affected queries degrade to partials tagged \
         with the dead shard (the partial and avail columns)";
        "hedges count sub-queries cancelled past their deadline-derived \
         straggler budget and re-issued on a replica";
        "audit runs the single-device privacy auditor over every device's \
         boundary trace; the merge layer only handles data the spy model \
         already concedes (visible columns and root-id lists)";
      ]
    rows

(* ---- Ablations ---- *)

let ablation_exact_post ?(scale = default_scale) () =
  let db = make_db scale in
  let cat = Ghost_db.catalog db in
  let sql = Queries.demo_with ~date_selectivity:0.4 () in
  let q = Ghost_db.bind db sql in
  let plan = Planner.all_post cat q in
  let rows =
    List.map
      (fun (label, exact, fpr) ->
         let r = Ghost_db.run_plan db ~exact_post:exact ~bloom_fpr:fpr plan in
         [
           label;
           Report.us r.Exec.elapsed_us;
           string_of_int r.Exec.row_count;
           string_of_int r.Exec.bloom_fp_candidates;
         ])
      [
        ("exact, fpr 1%", true, 0.01);
        ("exact, fpr 30%", true, 0.3);
        ("approximate, fpr 1%", false, 0.01);
        ("approximate, fpr 30%", false, 0.3);
      ]
  in
  Report.make ~id:"A1" ~title:"Ablation: exact verification of Bloom post-filters"
    ~header:[ "mode"; "time"; "rows"; "FPs absorbed" ]
    ~notes:
      [
        "approximate mode skips the verification join: faster, but Bloom false          positives can reach the result (row counts may exceed the exact answer)";
      ]
    rows

let ablation_bloom_fpr ?(scale = default_scale) () =
  let db = make_db scale in
  let cat = Ghost_db.catalog db in
  let sql = Queries.demo_with ~date_selectivity:0.5 () in
  let q = Ghost_db.bind db sql in
  let plan = Planner.all_post cat q in
  let rows =
    List.map
      (fun fpr ->
         let r = Ghost_db.run_plan db ~bloom_fpr:fpr plan in
         [
           Printf.sprintf "%.3f" fpr;
           Report.us r.Exec.elapsed_us;
           Report.bytes r.Exec.ram_peak;
           string_of_int r.Exec.bloom_fp_candidates;
         ])
      [ 0.001; 0.01; 0.1; 0.3 ]
  in
  Report.make ~id:"A2" ~title:"Ablation: Bloom filter target false-positive rate"
    ~header:[ "target fpr"; "time"; "RAM peak"; "FPs absorbed" ]
    ~notes:
      [ "looser filters need less RAM but admit candidates the verification join must          reject" ]
    rows

let ablation_hidden_fk_indexes ?(scale = default_scale) () =
  let sql =
    "SELECT Pre.PreID FROM Prescription Pre, Visit Vis WHERE Vis.DocID = 3 AND      Pre.VisID = Vis.VisID"
  in
  let rows =
    List.map
      (fun indexed ->
         let db =
           Ghost_db.of_schema ~index_hidden_fks:indexed (Medical.schema ())
             (Medical.generate scale)
         in
         let r = Ghost_db.query db sql in
         let s = Ghost_db.storage db in
         [
           (if indexed then "indexed" else "column check");
           Report.us r.Exec.elapsed_us;
           Report.bytes s.Catalog.attr_index_bytes;
           string_of_int r.Exec.row_count;
         ])
      [ false; true ]
  in
  Report.make ~id:"A3"
    ~title:"Ablation: climbing indexes on hidden foreign-key columns"
    ~header:[ "hidden FKs"; "query time"; "climbing idx bytes"; "rows" ]
    ~notes:
      [ "a selection on a hidden FK (Vis.DocID = 3) either traverses a dedicated          climbing index or falls back to per-candidate column checks" ]
    rows

let ablation_deep_cross ?(scale = default_scale) () =
  let db = make_db scale in
  let cat = Ghost_db.catalog db in
  let sql =
    "SELECT Pre.PreID, Pat.Age FROM Prescription Pre, Visit Vis, Patient Pat WHERE \
     Vis.Date > '2005-01-01' AND Pat.BodyMassIndex >= 35.0 AND Pre.VisID = \
     Vis.VisID AND Vis.PatID = Pat.PatID"
  in
  let q = Ghost_db.bind db sql in
  let deep =
    List.filter
      (fun (p, _) -> List.exists (fun g -> g.Plan.g_borrowed <> []) p.Plan.groups)
      (Planner.with_estimates cat q)
  in
  let named =
    [ ("plain Pre", Planner.all_pre cat q); ("plain Post", Planner.all_post cat q) ]
    @ (match deep with
       | (p, _) :: _ -> [ ("deep Cross (borrowed)", p) ]
       | [] -> [])
  in
  let rows =
    List.map
      (fun (name, plan) ->
         let r = Ghost_db.run_plan db plan in
         [
           name;
           Report.us r.Exec.elapsed_us;
           string_of_int r.Exec.row_count;
           plan.Plan.label;
         ])
      named
  in
  Report.make ~id:"A5"
    ~title:"Ablation: deep Cross-filtering (borrowed descendant index lists)"
    ~header:[ "plan"; "time"; "rows"; "strategy" ]
    ~notes:
      [
        "visible predicate on the intermediate Visit table + hidden predicate on its \
         descendant Patient: borrowing Patient's Visit-level list shrinks the climb \
         (Section 4's cross-level selectivity combination)";
      ]
    rows

let ablation_skew ?(scale = default_scale) () =
  let rows =
    List.map
      (fun theta ->
         let db =
           Ghost_db.of_schema (Medical.schema ())
             (Medical.generate { scale with Medical.theta })
         in
         let r = Ghost_db.query db Queries.demo in
         let best_label =
           (fst (Planner.best (Ghost_db.catalog db) (Ghost_db.bind db Queries.demo)))
             .Plan.label
         in
         [
           Printf.sprintf "%.1f" theta;
           Report.us r.Exec.elapsed_us;
           string_of_int r.Exec.row_count;
           best_label;
         ])
      [ 0.0; 0.8; 1.2 ]
  in
  Report.make ~id:"A4" ~title:"Ablation: value-frequency skew (Zipf theta)"
    ~header:[ "theta"; "optimizer time"; "rows"; "chosen plan" ]
    ~notes:
      [ "skew moves predicate selectivities, which moves the Pre/Post choice" ]
    rows

(* ---- E20 wire formats: verbose vs compact framing ---- *)

let wire_formats ?metrics ?(scale = default_scale) () =
  let module Wire = Device.Wire in
  let attach db =
    Option.iter (fun m -> Ghost_db.set_metrics db (Some m)) metrics
  in
  let sql = Queries.demo_with ~date_selectivity:0.3 () in
  (* verbose totals per (speed, plan), filled by the Verbose pass and
     read back by the Compact pass for the ratio columns *)
  let baselines : (string, int * float) Hashtbl.t = Hashtbl.create 8 in
  let rows =
    List.concat_map
      (fun fmt ->
         List.concat_map
           (fun mbps ->
              let config =
                { Device.default_config with
                  Device.wire_format = fmt;
                  usb_mbit_per_s = mbps }
              in
              let db = make_db ~device_config:config scale in
              attach db;
              let cat = Ghost_db.catalog db in
              let q = Ghost_db.bind db sql in
              let device = Ghost_db.device db in
              let plans =
                [
                  ("Pre", Planner.all_pre cat q);
                  ("Post", Planner.all_post cat q);
                  ("Cross", Planner.cross cat q);
                ]
              in
              let rows =
                List.map
                  (fun (label, plan) ->
                     let before = Device.snapshot device in
                     let r = Ghost_db.run_plan db plan in
                     let after = Device.snapshot device in
                     let bytes =
                       after.Device.usb_bytes_in - before.Device.usb_bytes_in
                       + after.Device.usb_bytes_out - before.Device.usb_bytes_out
                     in
                     let est = (Cost.estimate cat plan).Cost.est_usb_bytes in
                     let key = Printf.sprintf "%.0f/%s" mbps label in
                     let vs_verbose =
                       match fmt with
                       | Wire.Verbose ->
                         Hashtbl.replace baselines key (bytes, r.Exec.elapsed_us);
                         ("x1.0", "x1.0")
                       | Wire.Compact ->
                         (match Hashtbl.find_opt baselines key with
                          | Some (vb, vus) ->
                            ( Printf.sprintf "x%.1f" (Float.of_int vb /. Float.of_int bytes),
                              Printf.sprintf "x%.2f" (vus /. r.Exec.elapsed_us) )
                          | None -> ("-", "-"))
                     in
                     [
                       Wire.format_name fmt;
                       Printf.sprintf "%.0f Mbit/s" mbps;
                       label;
                       Report.bytes bytes;
                       Report.bytes est;
                       Report.us r.Exec.elapsed_us;
                       fst vs_verbose;
                       snd vs_verbose;
                     ])
                  plans
              in
              Ghost_db.flush_metrics db;
              rows)
           [ 12.; 480. ])
      [ Wire.Verbose; Wire.Compact ]
  in
  Report.make ~id:"E20" ~title:"Wire formats: verbose vs compact USB framing"
    ~header:
      [ "format"; "link"; "plan"; "USB bytes"; "est bytes"; "device time";
        "bytes cut"; "speedup" ]
    ~notes:
      [
        "compact = interned opcodes + varint-delta id lists + zigzag-varint \
         values + coalesced CRC-framed transfers; verbose = the seed's \
         fixed-width per-message framing (bit-identical byte counts)";
        "the byte cut is sharpest where data messages dominate the query \
         text; the latency win tracks the byte cut at 12 Mbit/s and fades at \
         480 Mbit/s where the per-transfer latency floor takes over";
        "'est bytes' is the cost model's per-encoding prediction \
         (Wire.est_id_list_bytes / est_value_stream_bytes) for the same plan";
      ]
    rows

(* ---- E21 end-to-end integrity: detection, scrubbing, fleet repair ---- *)

let integrity_sweep ?metrics ?(scale = default_scale) () =
  let module Metrics = Ghost_metrics.Metrics in
  let module Fleet = Ghost_fleet.Fleet in
  let module Scrub = Ghost_scrub.Scrub in
  let module Rng = Ghost_kernel.Rng in
  let queries =
    [
      "SELECT COUNT(*) FROM Prescription Pre WHERE Pre.Quantity BETWEEN 8 AND 10";
      "SELECT COUNT(*) FROM Prescription Pre, Visit Vis WHERE Vis.Purpose = \
       'Sclerosis' AND Vis.VisID = Pre.VisID";
    ]
  in
  let page = Device.default_config.Device.flash_geometry.Flash.page_size in
  (* CRC verification overhead, priced on the E16 hot-cache workload:
     same queries, warm cache, verify_pages off vs on. The frames = 0
     variant prices the worst case — every structure read misses, so
     every one pays the full-page verified read. *)
  let hot_cache_us ~frames verify =
    let config =
      { Device.default_config with
        Device.verify_pages = verify;
        page_cache_frames = frames;
        ram_budget = Device.default_config.Device.ram_budget + (frames * page) }
    in
    let db = make_db ~device_config:config scale in
    Option.iter (fun m -> Ghost_db.set_metrics db (Some m)) metrics;
    let device = Ghost_db.device db in
    let round () = List.iter (fun sql -> ignore (Ghost_db.query db sql)) queries in
    round ();
    let t0 = Device.elapsed_us device in
    round ();
    round ();
    Ghost_db.flush_metrics db;
    Device.elapsed_us device -. t0
  in
  let plain_us = hot_cache_us ~frames:16 false in
  let verified_us = hot_cache_us ~frames:16 true in
  let plain_cold_us = hot_cache_us ~frames:0 false in
  let verified_cold_us = hot_cache_us ~frames:0 true in
  let reference =
    let db = make_db scale in
    List.map (fun sql -> (Ghost_db.query db sql).Exec.rows) queries
  in
  let schema = Medical.schema () in
  let data = Medical.generate scale in
  let shards = 2 in
  let config = { Device.default_config with Device.verify_pages = true } in
  let run_cell (rate, scrub, replicas) =
    let fleet =
      Fleet.create ~device_config:config
        ~topology:{ Fleet.shards; replicas; partitioning = Fleet.Range }
        schema data
    in
    Option.iter (fun m -> Fleet.set_metrics fleet (Some m)) metrics;
    (* Latent corruption on shard 0's first replica: a seeded sample of
       its structure pages, alternating one-bit decays (ECC-correctable
       — the scrubber's refresh target) and two-bit corruptions (past
       single-bit ECC: only the CRC trailer catches them). *)
    let victim = Fleet.db fleet ~shard:0 ~replica:0 in
    let flash = Device.flash (Ghost_db.device victim) in
    let s_pages =
      Array.of_list (Catalog.structure_pages (Ghost_db.catalog victim))
    in
    let n = Array.length s_pages in
    let hit = min n (max 1 (int_of_float (Float.round (rate *. float_of_int n)))) in
    let rng = Rng.create 97 in
    let sampled = Hashtbl.create hit in
    while Hashtbl.length sampled < hit do
      Hashtbl.replace sampled s_pages.(Rng.int rng n) ()
    done;
    let chosen =
      List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) sampled [])
    in
    let bits = page * 8 in
    let decayed = ref 0 and corrupted = ref 0 in
    List.iteri
      (fun i p ->
         let b = Rng.int rng bits in
         Flash.corrupt_stored flash ~page:p ~bit:b;
         if i mod 2 = 0 then incr decayed
         else begin
           Flash.corrupt_stored flash ~page:p ~bit:((b + 7) mod bits);
           incr corrupted
         end)
      chosen;
    let refreshed = ref 0 and scrub_corrupt = ref 0 in
    if scrub then
      for s = 0 to shards - 1 do
        for r = 0 to replicas - 1 do
          let db = Fleet.db fleet ~shard:s ~replica:r in
          let sc =
            Scrub.create (Ghost_db.device db)
              ~pages:(Catalog.structure_pages (Ghost_db.catalog db))
          in
          Scrub.run_pending sc;
          let p = Scrub.progress sc in
          refreshed := !refreshed + p.Scrub.refreshed;
          scrub_corrupt := !scrub_corrupt + List.length p.Scrub.corrupt
        done
      done;
    let run_queries () =
      List.map2
        (fun sql expected ->
           let r = Fleet.query fleet sql in
           if not r.Fleet.complete then `Failed
           else if r.Fleet.rows <> expected then `Wrong
           else `Ok)
        queries reference
    in
    let count tag l = List.length (List.filter (fun x -> x = tag) l) in
    let first = run_queries () in
    let detected =
      let total = ref !scrub_corrupt in
      for s = 0 to shards - 1 do
        for r = 0 to replicas - 1 do
          let d = Ghost_db.device (Fleet.db fleet ~shard:s ~replica:r) in
          total := !total + (Device.fault_counters d).Device.integrity_errors
        done
      done;
      !total
    in
    let repairs = Fleet.anti_entropy fleet in
    let repaired =
      List.length (List.filter (fun r -> r.Fleet.rr_repaired) repairs)
    in
    let repair_us =
      List.fold_left (fun a r -> a +. r.Fleet.rr_repair_us) 0. repairs
    in
    let after = run_queries () in
    Fleet.flush_metrics fleet;
    Option.iter
      (fun m ->
         let tag =
           Printf.sprintf "e21.r%d.hit%d%s" replicas hit
             (if scrub then ".scrub" else "")
         in
         Metrics.incr m (tag ^ ".wrong") ~by:(count `Wrong first);
         Metrics.incr m (tag ^ ".failed") ~by:(count `Failed first);
         Metrics.incr m (tag ^ ".detected") ~by:detected;
         Metrics.incr m (tag ^ ".repaired") ~by:repaired;
         Metrics.incr m (tag ^ ".bad_after")
           ~by:(count `Failed after + count `Wrong after))
      metrics;
    [
      Printf.sprintf "%.0f%%" (100. *. rate);
      string_of_int replicas;
      (if scrub then "on" else "off");
      Printf.sprintf "%d+%d" !decayed !corrupted;
      string_of_int (count `Wrong first);
      string_of_int (count `Failed first);
      string_of_int detected;
      string_of_int !refreshed;
      string_of_int repaired;
      (if repaired = 0 then "-" else Report.us repair_us);
      string_of_int (count `Failed after + count `Wrong after);
    ]
  in
  let cells =
    List.concat_map
      (fun rate ->
         List.concat_map
           (fun replicas ->
              List.map (fun scrub -> (rate, scrub, replicas)) [ false; true ])
           [ 1; 2 ])
      [ 0.05; 0.2 ]
  in
  let rows = List.map run_cell cells in
  Report.make ~id:"E21"
    ~title:"End-to-end integrity: detection, scrubbing, fleet repair"
    ~header:
      [ "flip rate"; "R"; "scrub"; "pages hit"; "wrong rows"; "failed q";
        "detected"; "refreshed"; "repaired"; "repair time"; "bad after" ]
    ~notes:
      [
        Printf.sprintf
          "CRC trailer verification adds %.1f%% device time to the E16 \
           hot-cache workload (%s off, %s on): cache hits are never \
           re-verified, so a warm pool pays nothing"
          (100. *. (verified_us -. plain_us) /. plain_us)
          (Report.us plain_us) (Report.us verified_us);
        Printf.sprintf
          "with the cache off every structure read pays the verified \
           full-page read: %.1f%% over the seed's partial reads (%s off, \
           %s on)"
          (100. *. (verified_cold_us -. plain_cold_us) /. plain_cold_us)
          (Report.us plain_cold_us) (Report.us verified_cold_us);
        "pages hit = one-bit decays + two-bit corruptions injected into \
         shard 0 replica 0's structure pages (seeded sample, alternating); \
         single flips are ECC-corrected on read, double flips are served \
         only through the CRC trailer check";
        "'wrong rows' counts queries whose answer was silently wrong: the \
         authenticated pages keep it at zero — damage is detected and \
         failed over, never served";
        "with R=2 anti-entropy rebuilds the corrupt replica from its \
         healthy peer through the phased loader ('bad after' = 0); with \
         R=1 the damaged shard degrades to partial results tagged with the \
         shard id";
        "the scrubber refreshes ECC-correctable decays in place during \
         idle slices, before a second flip pushes them past correction";
      ]
    rows

(* ---- E22 oblivious execution: the privacy/performance frontier ---- *)

let oblivious_frontier ?metrics ?(scale = default_scale) () =
  let module Metrics = Ghost_metrics.Metrics in
  let module Oblivious = Ghost_oblivious.Oblivious in
  (* The E18 interactive-plus-analyst mix prices the overhead; the
     leakage is measured on a probe family of eight queries that are
     byte-for-byte identical except for a hidden range bound, so any
     fingerprint difference between them is access pattern, not the
     declared query-text leak. *)
  let mix =
    List.filter
      (fun (name, _) ->
         List.mem name
           [ "single_table_visible"; "demo"; "doctor_patient";
             "range_hidden"; "visible_only" ])
      Ghost_workload.Queries.all
  in
  let probe_family =
    List.init 8 (fun i ->
      Printf.sprintf
        "SELECT Med.Name, Pre.Quantity FROM Medicine Med, Prescription Pre \
         WHERE Med.Type = 'Antibiotic' AND Pre.Quantity BETWEEN %d AND 9 AND \
         Med.MedID = Pre.MedID"
        (i + 1))
  in
  let run_mode mode =
    let db = make_db scale in
    Option.iter (fun m -> Ghost_db.set_metrics db (Some m)) metrics;
    let run_on db sql =
      match mode with
      | Oblivious.Off -> Ghost_db.query db sql
      | Oblivious.Full -> Ghost_db.query db ~oblivious:true sql
      | Oblivious.Pad ->
        let plan, _ =
          Planner.best (Ghost_db.catalog db) (Ghost_db.bind db sql)
        in
        Ghost_db.run_plan db (Plan.with_mode plan Oblivious.Pad)
    in
    Ghost_db.clear_trace db;
    let results = List.map (fun (_, sql) -> run_on db sql) mix in
    let time_us =
      List.fold_left (fun a r -> a +. r.Exec.elapsed_us) 0. results
    in
    let usb_bytes =
      List.fold_left
        (fun a r -> a + r.Exec.total.Device.used_usb_bytes_in)
        0 results
    in
    let pad_bytes =
      List.fold_left (fun a r -> a + r.Exec.padding_bytes) 0 results
    in
    let verdict =
      Ghost_db.audit
        ~access:
          (Ghost_db.access_profile db ~fixed_shape:(mode = Oblivious.Full))
        db
    in
    (* Empirical residual leakage: Shannon entropy over what a spy can
       observe of the probe family — the trace fingerprint plus the
       device clock (a spy timestamps the link traffic, so execution
       time is observable even when every byte count is fixed). A
       fresh instance per probe keeps page-cache warmth from
       contaminating the clock. *)
    let fps =
      List.map
        (fun sql ->
           let db = make_db scale in
           Ghost_db.clear_trace db;
           let r = run_on db sql in
           Oblivious.fingerprint (Ghost_db.trace db)
           ^ Printf.sprintf "clock %.1fus\n" r.Exec.elapsed_us)
        probe_family
    in
    let empirical_bits = Oblivious.Entropy.of_observations fps in
    let distinct = List.length (List.sort_uniq compare fps) in
    Ghost_db.flush_metrics db;
    Option.iter
      (fun m ->
         let name = Oblivious.mode_name mode in
         Metrics.incr m (Printf.sprintf "oblivious_pad_bytes.%s" name)
           ~by:pad_bytes;
         Metrics.incr m (Printf.sprintf "oblivious_usb_bytes.%s" name)
           ~by:usb_bytes;
         Metrics.incr m (Printf.sprintf "oblivious_modeled_millibits.%s" name)
           ~by:
             (int_of_float
                ((verdict.Privacy.data_dependent_bits *. 1000.) +. 0.5));
         Metrics.incr m (Printf.sprintf "oblivious_fingerprints.%s" name)
           ~by:distinct;
         Metrics.add_gauge m (Printf.sprintf "oblivious.%s.device_us" name)
           time_us)
      metrics;
    (mode, time_us, usb_bytes, pad_bytes, verdict, empirical_bits, distinct)
  in
  let cells =
    List.map run_mode [ Oblivious.Off; Oblivious.Pad; Oblivious.Full ]
  in
  let base_time =
    match cells with (_, t, _, _, _, _, _) :: _ -> t | [] -> 1.
  in
  let rows =
    List.map
      (fun (mode, time_us, usb_bytes, pad_bytes, verdict, empirical, distinct) ->
         [
           Oblivious.mode_name mode;
           Report.us time_us;
           Report.factor (time_us /. base_time);
           Report.bytes usb_bytes;
           Report.bytes pad_bytes;
           Printf.sprintf "%.2f" verdict.Privacy.data_dependent_bits;
           Printf.sprintf "%.2f" empirical;
           Printf.sprintf "%d/8" distinct;
         ])
      cells
  in
  Report.make ~id:"E22"
    ~title:"Oblivious execution: the privacy/performance frontier"
    ~header:
      [ "mode"; "device time"; "vs baseline"; "usb bytes"; "pad bytes";
        "modeled bits"; "empirical bits"; "fingerprints" ]
    ~notes:
      [
        "device time and USB bytes over the E18 interactive-plus-analyst \
         mix; 'modeled bits' is the auditor's upper bound on what the trace \
         shape can encode about hidden data (the baseline row also charges \
         the data-dependent climbing-index page walks)";
        "'empirical bits' / 'fingerprints' come from eight probe queries \
         identical up to a hidden range bound: entropy and distinct count \
         of their spy observations (trace fingerprint + device clock, \
         since a spy timestamps the link traffic) — 0 bits and 1/8 means \
         the eight hidden constants are indistinguishable on the wire; \
         padding alone fixes the byte counts but not the clock";
        "pad-only keeps the baseline plan and pads id shipments, value \
         streams and the result cardinality to power-of-two buckets; \
         oblivious adds the fixed-shape executor (bound-depth scans, \
         uniform per-candidate work), making the trace and the device \
         clock a function of schema and public bounds alone";
        "dummy tuples and ids never leave the trusted side: every row \
         returned is real, and 'pad bytes' is the price of hiding the \
         cardinalities";
      ]
    rows

(* ---- E23 write-heavy: leveled log runs vs the flat delta log ---- *)

let write_heavy ?metrics ?(scale = default_scale) () =
  let module Value = Ghost_kernel.Value in
  let module Rng = Ghost_kernel.Rng in
  let module Metrics = Ghost_metrics.Metrics in
  let module Delta_log = Ghostdb.Delta_log in
  let module Compaction = Ghostdb.Compaction in
  let rounds = 8 and batch = 150 and deletes_per_round = 10 and probes = 12 in
  let rows_for db rng n =
    let next =
      Catalog.total_count (Ghost_db.catalog db) "Prescription" + 1
    in
    List.init n (fun i ->
      [|
        Value.Int (next + i);
        Value.Int (Rng.int_in rng 1 10);
        Value.Int (Rng.int_in rng 1 4);
        Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
        Value.Int (1 + Rng.int rng scale.Medical.medicines);
        Value.Int (1 + Rng.int rng scale.Medical.visits);
      |])
  in
  (* Probe windows over the base key range: a visible root-key fence
     plus a hidden predicate, so every probe pays a DeltaScan — fenced
     on the leveled log, full on the flat one. *)
  let span = max 1 (scale.Medical.prescriptions - 40) in
  let probe_sqls =
    List.init probes (fun j ->
      let lo = 1 + (j * 1543 mod span) in
      Printf.sprintf
        "SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre WHERE \
         Pre.PreID BETWEEN %d AND %d AND Pre.Quantity >= 1"
        lo (lo + 30))
  in
  let p95 xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(95 * (Array.length a - 1) / 100)
  in
  let mean xs =
    List.fold_left ( +. ) 0. xs /. Float.of_int (List.length xs)
  in
  let run_mode leveled =
    let name = if leveled then "leveled" else "flat" in
    let device_config =
      if leveled then
        { Device.default_config with
          Device.log_runs = Some Device.default_log_runs }
      else Device.default_config
    in
    let db = make_db ~device_config scale in
    Option.iter (fun m -> Ghost_db.set_metrics db (Some m)) metrics;
    let cat = Ghost_db.catalog db in
    let compactor = if leveled then Some (Compaction.create cat) else None in
    let rng = Rng.create 123 in
    let probe_once sql =
      let plan = Planner.all_pre cat (Ghost_db.bind db sql) in
      (Ghost_db.run_plan db plan).Exec.elapsed_us
    in
    let depth () =
      match Catalog.delta cat "Prescription" with
      | None -> (0, 0, 0, 0, 0)
      | Some log ->
        ( Delta_log.physical_records log,
          Delta_log.l0_pages log,
          Delta_log.run_count log,
          Delta_log.run_pages log,
          Delta_log.count log )
    in
    let report_rows = ref [] in
    for round = 1 to rounds do
      Ghost_db.insert db (rows_for db rng batch);
      (* retire some of the previous round's inserts, so compaction has
         tombstoned records to fold away *)
      if round > 1 then begin
        let top = Catalog.total_count cat "Prescription" in
        Ghost_db.delete db
          (List.init deletes_per_round (fun i -> top - batch - (i * 7)))
      end;
      (* idle time between bursts: the compactor drains its backlog *)
      Option.iter Compaction.run_pending compactor;
      let lat = List.map probe_once probe_sqls in
      let physical, l0, runs, run_pages, total = depth () in
      report_rows :=
        [
          name;
          string_of_int round;
          string_of_int total;
          string_of_int physical;
          string_of_int l0;
          string_of_int runs;
          string_of_int run_pages;
          Report.us (mean lat);
          Report.us (p95 lat);
        ]
        :: !report_rows
    done;
    let final_lat = List.map probe_once probe_sqls in
    Ghost_db.flush_metrics db;
    Option.iter
      (fun m ->
         let physical, l0, runs, run_pages, total = depth () in
         Metrics.incr m (Printf.sprintf "write_heavy_records.%s" name) ~by:total;
         Metrics.incr m (Printf.sprintf "write_heavy_physical.%s" name)
           ~by:physical;
         Metrics.incr m (Printf.sprintf "write_heavy_l0_pages.%s" name) ~by:l0;
         Metrics.incr m (Printf.sprintf "write_heavy_runs.%s" name) ~by:runs;
         Metrics.incr m (Printf.sprintf "write_heavy_run_pages.%s" name)
           ~by:run_pages;
         Metrics.add_gauge m (Printf.sprintf "write_heavy.%s.p95_us" name)
           (p95 final_lat))
      metrics;
    (List.rev !report_rows, p95 final_lat)
  in
  let flat_rows, flat_p95 = run_mode false in
  let leveled_rows, leveled_p95 = run_mode true in
  Report.make ~id:"E23"
    ~title:"Write-heavy: probe p95 vs delta-log depth, compaction off/on"
    ~header:
      [ "mode"; "round"; "delta recs"; "physical"; "L0 pages"; "runs";
        "run pages"; "probe mean"; "probe p95" ]
    ~notes:
      [
        Printf.sprintf
          "each round inserts %d prescriptions, deletes %d older ones, lets \
           the compactor drain, then runs %d fenced window probes (visible \
           PreID range + hidden Quantity predicate, forced Pre strategy)"
          batch deletes_per_round probes;
        "flat: the append-only log grows unbounded and every probe scans all \
         of it; leveled: L0 spills into sorted runs whose [min,max] key \
         fences let the probe skip non-overlapping pages, and folding \
         drops tombstoned records";
        Printf.sprintf
          "final probe p95: flat %s vs leveled %s (%s)"
          (Report.us flat_p95) (Report.us leveled_p95)
          (Report.factor (flat_p95 /. Float.max leveled_p95 1e-9));
      ]
    (flat_rows @ leveled_rows)

let all ?(scale = default_scale) ?(full = false)
    ?(metrics = fun (_ : string) -> None) () =
  let cardinalities =
    if full then [ 1_000; 10_000; 100_000; 1_000_000 ]
    else [ 1_000; 10_000; 50_000; 100_000 ]
  in
  let scales =
    if full then [ Medical.tiny; Medical.small; Medical.medium ]
    else [ Medical.tiny; Medical.small ]
  in
  [
    ("E1", "Figure 6: ad-hoc plan comparison on the demo query",
     fun () -> fig6_plans ~scale ());
    ("E2", "Pre vs Post vs Cross as the visible predicate's selectivity sweeps",
     fun () -> pre_post_crossover ~scale ());
    ("E3", "per-operator stats (tuples, RAM, time) for the demo query",
     fun () -> operator_stats ~scale ());
    ("E4", "spy-visible message trace + privacy auditor verdict",
     fun () -> privacy_trace ~scale ());
    ("E5", "GhostDB vs last-resort baselines (grace hash, sort-merge)",
     fun () -> baseline_compare ~scale ());
    ("E6", "sensitivity to the Flash program/read cost ratio",
     fun () -> flash_asymmetry ~scale ());
    ("E7", "sensitivity to the RAM budget (8 KiB - 512 KiB)",
     fun () -> ram_sweep ());
    ("E8", "USB full speed vs high speed",
     fun () -> usb_sweep ~scale ());
    ("E9", "Flash storage overhead: base data vs SKTs vs climbing indexes",
     fun () -> storage_overhead ~scales ());
    ("E10", "execution time vs root-table cardinality",
     fun () -> scale_sweep ~cardinalities ());
    ("E11", "delta-log insert cost and query overhead vs pending delta",
     fun () -> insert_sweep ~scale ());
    ("E12", "inserts, deletes and the offline reorganization lifecycle",
     fun () -> lifecycle ~scale ());
    ("E13", "cost-model ranking quality and optimizer regret",
     fun () -> optimizer_calibration ~scale ());
    ("E14", "second workload: retail tree with hidden margins",
     fun () -> retail_workload ());
    ("E15", "robustness machinery overhead under fault injection",
     fun () -> robustness ~scale ());
    ("E16", "shared page cache: device time vs frame-pool size",
     fun () -> page_cache_sweep ?metrics:(metrics "E16") ~scale ());
    ("E17", "journaled reorganization cost and recovery time vs log size",
     fun () -> reorg_cost ?metrics:(metrics "E17") ~scale ());
    ("E18", "multi-session scheduler: throughput and tail latency vs policy",
     fun () -> sched_throughput ?metrics:(metrics "E18") ~scale ());
    ("E19", "fault-tolerant device fleet: scaling and availability under failure",
     fun () ->
       let shard_counts = if full then [ 4; 8; 16; 32 ] else [ 1; 2; 4; 8 ] in
       fleet_scaling ?metrics:(metrics "E19") ~scale ~shard_counts ());
    ("E20", "wire formats: verbose vs compact USB framing",
     fun () -> wire_formats ?metrics:(metrics "E20") ~scale ());
    ("E21", "end-to-end integrity: authenticated pages, scrubbing, fleet repair",
     fun () -> integrity_sweep ?metrics:(metrics "E21") ~scale ());
    ("E22", "oblivious execution: latency and USB bytes vs leakage bits",
     fun () -> oblivious_frontier ?metrics:(metrics "E22") ~scale ());
    ("E23", "write-heavy: probe p95 vs delta-log depth, compaction off/on",
     fun () -> write_heavy ?metrics:(metrics "E23") ~scale ());
    ("A1", "ablation: exact verification joins vs pure Bloom post-filtering",
     fun () -> ablation_exact_post ~scale ());
    ("A2", "ablation: Bloom target false-positive rate vs RAM",
     fun () -> ablation_bloom_fpr ~scale ());
    ("A3", "ablation: climbing indexes on hidden foreign keys",
     fun () -> ablation_hidden_fk_indexes ~scale ());
    ("A4", "ablation: value-frequency skew vs strategy choice",
     fun () -> ablation_skew ~scale ());
    ("A5", "ablation: deep Cross-filtering at intermediate levels",
     fun () -> ablation_deep_cross ~scale ());
  ]
