type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~header ?(notes = []) rows = { id; title; header; rows; notes }

let widths t =
  let all = t.header :: t.rows in
  let cols = List.length t.header in
  List.init cols (fun c ->
    List.fold_left
      (fun acc row ->
         match List.nth_opt row c with
         | Some cell -> max acc (String.length cell)
         | None -> acc)
      0 all)

let pp fmt t =
  Format.fprintf fmt "== %s: %s ==@." t.id t.title;
  let ws = widths t in
  let pp_row row =
    let cells =
      List.mapi
        (fun c cell ->
           let w = List.nth ws c in
           if c = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell)
        row
    in
    Format.fprintf fmt "  %s@." (String.concat "  " cells)
  in
  pp_row t.header;
  pp_row (List.map (fun w -> String.make w '-') ws);
  List.iter pp_row t.rows;
  List.iter (fun n -> Format.fprintf fmt "  note: %s@." n) t.notes;
  Format.fprintf fmt "@."

let to_string t = Format.asprintf "%a" pp t

let us v =
  if v >= 1_000_000. then Printf.sprintf "%.2f s" (v /. 1_000_000.)
  else if v >= 1_000. then Printf.sprintf "%.1f ms" (v /. 1_000.)
  else Printf.sprintf "%.0f us" v

let bytes n =
  if n >= 1_048_576 then Printf.sprintf "%.1f MB" (Float.of_int n /. 1_048_576.)
  else if n >= 1024 then Printf.sprintf "%.1f KB" (Float.of_int n /. 1024.)
  else Printf.sprintf "%d B" n

let factor f = Printf.sprintf "x%.1f" f

(* Hand-rolled JSON (no external deps in the simulator). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

exception Would_overwrite of string

let write_string ~path ?(force = false) contents =
  if (not force) && Sys.file_exists path then raise (Would_overwrite path);
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc contents;
  if contents = "" || contents.[String.length contents - 1] <> '\n' then
    output_char oc '\n'

let to_json t =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let arr l = "[" ^ String.concat "," l ^ "]" in
  Printf.sprintf "{\"id\":%s,\"title\":%s,\"header\":%s,\"rows\":%s,\"notes\":%s}"
    (str t.id) (str t.title)
    (arr (List.map str t.header))
    (arr (List.map (fun row -> arr (List.map str row)) t.rows))
    (arr (List.map str t.notes))

let write_file ~dir ?force t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" t.id) in
  write_string ~path ?force (to_json t);
  path
