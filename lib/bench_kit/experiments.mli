module Medical = Ghost_workload.Medical

(** The experiment suite (see DESIGN.md, Section 5).

    Each function regenerates one table or figure of the paper's
    demonstration (or a sensitivity claim of Sections 3–4) as a
    {!Report.t}: E1 is Figure 6 (ad-hoc plan comparison), E2–E3 the
    phase-2 GUI content, E4 the phase-1 security trace, E5 the "last
    resort algorithms are unacceptable" claim, and E6–E10 the hardware
    sensitivities (Flash asymmetry, RAM, USB, storage overhead,
    scale).

    All numbers are {e simulated device time} — deterministic, so the
    output is reproducible bit-for-bit for a fixed scale and seed. *)

val fig6_plans : ?scale:Medical.scale -> unit -> Report.t
(** E1 / Figure 6: execution time of the user-buildable plans P1
    (all-Pre), P2 (all-Post), P3 (Cross) and P4 (optimizer pick) for
    the Section 4 demo query. *)

val pre_post_crossover : ?scale:Medical.scale -> unit -> Report.t
(** E2: Pre vs Post vs Cross as the visible Date predicate's
    selectivity sweeps; shows the crossover the paper motivates. *)

val operator_stats : ?scale:Medical.scale -> unit -> Report.t
(** E3: the per-operator popup (tuples, RAM, time) for the demo query. *)

val privacy_trace : ?scale:Medical.scale -> unit -> Report.t
(** E4: the spy-visible message trace for the demo query + auditor
    verdict. *)

val baseline_compare : ?scale:Medical.scale -> unit -> Report.t
(** E5: GhostDB vs grace hash join vs sort-merge/join-index. *)

val flash_asymmetry : ?scale:Medical.scale -> unit -> Report.t
(** E6: sensitivity to the Flash program/read cost ratio (1–10x). *)

val ram_sweep : ?scale:Medical.scale -> unit -> Report.t
(** E7: sensitivity to the RAM budget (8 KiB – 512 KiB); also reports
    Bloom false positives absorbed by verification. Default scale is
    40 k prescriptions so the Bloom filters are actually under
    pressure. *)

val usb_sweep : ?scale:Medical.scale -> unit -> Report.t
(** E8: USB full speed (12 Mbit/s) vs high speed (480 Mbit/s). *)

val storage_overhead : ?scales:Medical.scale list -> unit -> Report.t
(** E9: Flash bytes of hidden base data vs SKTs vs climbing indexes. *)

val scale_sweep : ?cardinalities:int list -> unit -> Report.t
(** E10: execution time vs root-table cardinality. *)

val insert_sweep : ?scale:Medical.scale -> unit -> Report.t
(** E11 (extension): delta-log insert cost, query overhead vs pending
    delta size, and the log's write amplification. *)

val lifecycle : ?scale:Medical.scale -> unit -> Report.t
(** E12 (extension): inserts, deletes and the offline reorganization
    that folds the logs back in. *)

val optimizer_calibration : ?scale:Medical.scale -> unit -> Report.t
(** E13 (extension): how well the cost model ranks each query's plan
    panel against simulated execution, and the regret of trusting the
    optimizer's pick. *)

val retail_workload : unit -> Report.t
(** E14 (extension): the corporate/retail workload — a different tree
    shape end to end, with the privacy audit. *)

val robustness : ?scale:Medical.scale -> unit -> Report.t
(** E15 (extension): overhead of the robustness machinery — durable
    (checksummed) logs, NAND bit-rot corrected by ECC, program failures
    remapped around bad blocks, and a lossy USB link with
    retry-with-backoff — on an insert + query workload, per fault
    profile. Deterministic (seeded fault injection). *)

val page_cache_sweep :
  ?metrics:Ghost_metrics.Metrics.t -> ?scale:Medical.scale -> unit -> Report.t
(** E16 (extension): device time of a hidden-predicate COUNT workload
    as the shared page cache's frame pool sweeps 0 (off), 4, 16 and
    64 frames, with hit/miss/eviction counters and the hit ratio per
    row. The frames=0 row is bit-identical to the cache-free
    simulator.

    [metrics] (here and on E17/E18/E19 below) attaches an observability
    registry to every instance the experiment builds and flushes the
    device totals into it before each measurement ends, so the caller
    can export [metrics.json], a Chrome trace and the cost-model
    calibration report alongside the table. The numbers in the table
    are unchanged by it. *)

val reorg_cost :
  ?metrics:Ghost_metrics.Metrics.t -> ?scale:Medical.scale -> unit -> Report.t
(** E17 (extension): cost of the journaled (crash-safe) reorganization
    and of recovering from a power cut, as the pending delta/tombstone
    logs grow. Per log size: journal pages written, the uninterrupted
    rebuild's device time, and the recovery time after a cut that
    forces a roll-back (Begin torn) vs one that allows a roll-forward
    (snapshot checkpoint durable, completed phases reused). *)

val sched_throughput :
  ?metrics:Ghost_metrics.Metrics.t -> ?scale:Medical.scale -> unit -> Report.t
(** E18 (extension): the multi-session scheduler under a closed-loop
    Zipf-skewed query mix — throughput and p50/p95/max latency as the
    concurrency level (1–8 clients) and the policy (FIFO baseline,
    round-robin, shortest-remaining-cost-first) vary. The headline is
    the p95 column: FIFO convoys light queries behind rare heavy ones;
    both preemptive policies dissolve the convoy. *)

val fleet_scaling :
  ?metrics:Ghost_metrics.Metrics.t ->
  ?scale:Medical.scale ->
  ?shard_counts:int list ->
  unit ->
  Report.t
(** E19 (extension): the fault-tolerant device fleet under the
    closed-loop driver — 8 clients per shard over the E18 query mix as
    the shard count sweeps [shard_counts] (default 1–8; [all ~full]
    raises it to 4–32, i.e. up to 256 clients), plus fault rows that
    unplug a device mid-run: at R = 2 every affected sub-query fails
    over and zero queries are lost; at R = 1 affected queries degrade
    to partials tagged with the dead shard. Every cell runs the fleet
    privacy audit. Deterministic (seeded faults, one global simulated
    clock across devices). *)

val wire_formats :
  ?metrics:Ghost_metrics.Metrics.t -> ?scale:Medical.scale -> unit -> Report.t
(** E20 (extension): the compact wire protocol against the seed's
    verbose framing — USB bytes moved, the cost model's per-encoding
    byte prediction and device latency for the demo workload's Pre,
    Post and Cross plans at 12 and 480 Mbit/s. The compact rows carry
    byte-cut and speedup ratios against the verbose baseline measured
    in the same run. *)

val integrity_sweep :
  ?metrics:Ghost_metrics.Metrics.t -> ?scale:Medical.scale -> unit -> Report.t
(** E21 (extension): end-to-end integrity. Prices CRC trailer
    verification on the E16 hot-cache workload (verify off vs on),
    then injects seeded latent corruption — alternating ECC-correctable
    one-bit decays and uncorrectable two-bit flips — into one replica's
    structure pages of a two-shard fleet and sweeps flip rate ×
    scrubbing × R ∈ {{1, 2}}: silently-wrong answers (zero, by
    construction), detections, scrubber refreshes, anti-entropy repairs
    and repair time, and remaining failures after repair. *)

val oblivious_frontier :
  ?metrics:Ghost_metrics.Metrics.t -> ?scale:Medical.scale -> unit -> Report.t
(** E22 (extension): the privacy/performance frontier of oblivious
    execution. Runs the E18 query mix under baseline, pad-only and
    fully-oblivious modes and reports device time, USB bytes and
    padding overhead against two leakage measures: the auditor's
    modeled data-dependent bits, and the empirical Shannon entropy of
    spy-trace fingerprints over eight probe queries that differ only
    in a hidden range bound (0 bits under the fully-oblivious path:
    the hidden constants are indistinguishable on the wire). *)

val write_heavy :
  ?metrics:Ghost_metrics.Metrics.t -> ?scale:Medical.scale -> unit -> Report.t
(** E23 (extension): a sustained write-heavy mix against the flat
    delta log and against leveled log runs with background
    compaction. Each round inserts a prescription batch, retires some
    older inserts, lets the compactor drain, and measures fenced
    window probes (visible root-key range + hidden predicate). The
    flat log's probe p95 grows with every round — the DeltaScan reads
    the whole log — while the leveled log's stays bounded: sorted-run
    key fences let the probe skip non-overlapping pages and compaction
    folds tombstoned records away. Rows track log depth (L0 pages,
    run count and pages, physical records) per round. *)

(** {2 Ablations of design choices} *)

val ablation_exact_post : ?scale:Medical.scale -> unit -> Report.t
(** A1: exact verification joins vs pure-probabilistic Bloom
    post-filtering. *)

val ablation_bloom_fpr : ?scale:Medical.scale -> unit -> Report.t
(** A2: Bloom target false-positive rate vs RAM and absorbed FPs. *)

val ablation_hidden_fk_indexes : ?scale:Medical.scale -> unit -> Report.t
(** A3: climbing indexes on hidden foreign keys vs per-candidate
    checks. *)

val ablation_skew : ?scale:Medical.scale -> unit -> Report.t
(** A4: value-frequency skew vs the optimizer's strategy choice. *)

val ablation_deep_cross : ?scale:Medical.scale -> unit -> Report.t
(** A5: deep Cross-filtering — borrowing a descendant's index list at
    an intermediate level before the climb. *)

val all :
  ?scale:Medical.scale ->
  ?full:bool ->
  ?metrics:(string -> Ghost_metrics.Metrics.t option) ->
  unit ->
  (string * string * (unit -> Report.t)) list
(** The whole suite as (id, one-line description, thunk) triples —
    experiments run only when forced, so id filters (and [--list])
    don't pay for the rest. E1–E23, A1–A5; [full] raises E10 to the
    paper's one million prescriptions and E19 to 32 devices.

    [metrics] supplies, per experiment id, an optional registry for
    the instrumented experiments (E16–E23) to record into; defaults to
    none for all. *)
