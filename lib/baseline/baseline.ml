module Value = Ghost_kernel.Value
module Codec = Ghost_kernel.Codec
module Cursor = Ghost_kernel.Cursor
module Sorted_ids = Ghost_kernel.Sorted_ids
module Resources = Ghost_kernel.Resources
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Predicate = Ghost_relation.Predicate
module Bind = Ghost_sql.Bind
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram
module Trace = Ghost_device.Trace
module Device = Ghost_device.Device
module Pager = Ghost_store.Pager
module Column_store = Ghost_store.Column_store
module Ext_sort = Ghost_store.Ext_sort
module Public_store = Ghost_public.Public_store
module Catalog = Ghostdb.Catalog

type algorithm =
  | Grace_hash
  | Sort_merge

let algorithm_name = function
  | Grace_hash -> "grace-hash-join"
  | Sort_merge -> "sort-merge (join index)"

type result = {
  rows : Value.t array list;
  row_count : int;
  elapsed_us : float;
  usage : Device.usage;
  ram_peak : int;
}

exception Baseline_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Baseline_error s)) fmt

type ctx = {
  algo : algorithm;
  cat : Catalog.t;
  public : Public_store.t;
  device : Device.t;
  ram : Ram.t;
  resources : Resources.t;
  q : Bind.query;
}

let cpu ctx n = Device.cpu ctx.device n

let hidden_column ctx ~table ~column =
  match Catalog.column_store ctx.cat ~table ~column with
  | Some cs -> cs
  | None -> fail "baseline: no column store for hidden %s.%s" table column

let is_hidden_col ctx ~table ~column =
  let tbl = Schema.find_table ctx.cat.Catalog.schema table in
  Column.is_hidden (Schema.find_column tbl column)

(* Sorted id list satisfying all predicates on [table]: hidden ones by
   full column scans (no indexes for the baselines), visible ones
   shipped from the public store. Returns None when no predicates. *)
let filter_ids ctx table =
  let preds =
    List.filter (fun (p : Predicate.t) -> p.Predicate.table = table) ctx.q.Bind.selections
  in
  if preds = [] then None
  else begin
    let lists =
      List.map
        (fun (p : Predicate.t) ->
           if is_hidden_col ctx ~table ~column:p.Predicate.column then begin
             let cs = hidden_column ctx ~table ~column:p.Predicate.column in
             let reader = Column_store.open_reader ~ram:ctx.ram ~buffer_bytes:2048 cs in
             let ids = Cursor.to_array (Column_store.matching_ids reader p.Predicate.cmp) in
             Column_store.close_reader reader;
             cpu ctx (Column_store.count cs);
             ids
           end
           else begin
             let ids = Public_store.select_ids ctx.public ~trace:(Device.trace ctx.device) p in
             Device.receive_id_list ctx.device ~table ids;
             ids
           end)
        preds
    in
    Some (Sorted_ids.intersect_many lists)
  end

(* ---- record handling ---- *)

(* A record is one id per bound table (slot). *)
type records = {
  slots : string list;
  data : int array list;
}

let slot_index records table =
  let rec loop i = function
    | [] -> fail "baseline: table %s not bound" table
    | t :: rest -> if t = table then i else loop (i + 1) rest
  in
  loop 0 records.slots

let record_bytes records = 4 * List.length records.slots

let encode_record width row =
  let b = Bytes.create width in
  Array.iteri (fun i id -> Codec.put_u32 b (4 * i) id) row;
  b

let decode_record slots b =
  Array.init slots (fun i -> Codec.get_u32 b (4 * i))

(* External sort of the records on one slot. *)
let sort_records ctx records ~slot =
  let width = record_bytes records in
  let n_slots = List.length records.slots in
  let input =
    Cursor.map (encode_record width) (Cursor.of_list records.data)
  in
  let sorted =
    Ext_sort.sort ~ram:ctx.ram ~scratch:(Device.scratch ctx.device)
      ~resources:ctx.resources ~cpu:(cpu ctx) ~record_bytes:width
      ~compare:(fun a b -> Int.compare (Codec.get_u32 a (4 * slot)) (Codec.get_u32 b (4 * slot)))
      input
  in
  { records with data = List.map (decode_record n_slots) (Cursor.to_list sorted) }

(* ---- grace-hash machinery ---- *)

(* Partition pairs of (key, payload-bytes) into [k] scratch partitions;
   returns per-partition segments. *)
let partition_to_scratch ctx ~k ~part ~payload_bytes pairs =
  let scratch = Device.scratch ctx.device in
  let page = (Flash.geometry scratch).Flash.page_size in
  Ram.with_alloc ctx.ram ~label:"grace-partition-buffers" (k * page) (fun _ ->
    let writers = Array.init k (fun _ -> Pager.Writer.create scratch) in
    let cell = Bytes.create (4 + payload_bytes) in
    List.iter
      (fun (key, payload) ->
         let p = part key in
         Codec.put_u32 cell 0 key;
         Bytes.blit payload 0 cell 4 payload_bytes;
         Pager.Writer.append_bytes writers.(p) cell;
         cpu ctx 2)
      pairs;
    Array.map Pager.Writer.finish writers)

let read_partition ctx ~payload_bytes segment =
  let scratch = Device.scratch ctx.device in
  Pager.with_reader ~ram:ctx.ram scratch segment (fun r ->
    let entry = 4 + payload_bytes in
    let n = Pager.segment_bytes segment / entry in
    List.init n (fun i ->
      let b = Pager.Reader.read r ~off:(i * entry) ~len:entry in
      (Codec.get_u32 b 0, Bytes.sub b 4 payload_bytes)))

(* Keep only records whose id at [slot] is in [filter] (sorted).
   RAM hash when the filter fits, grace partitioning otherwise. *)
(* Radix partitioning: level [depth] splits on bits [3*depth ..
   3*depth+2], so recursion always makes progress. *)
let rec grace_semijoin ctx ?(depth = 0) records ~slot filter =
  let free = Ram.budget ctx.ram - Ram.in_use ctx.ram in
  let hash_bytes = 8 * Array.length filter in
  if hash_bytes <= free / 2 then
    Ram.with_alloc ctx.ram ~label:"grace-filter-hash" (max 16 hash_bytes) (fun _ ->
      let member = Hashtbl.create (max 16 (Array.length filter)) in
      Array.iter (fun id -> Hashtbl.replace member id ()) filter;
      cpu ctx (Array.length filter + List.length records.data);
      { records with
        data = List.filter (fun row -> Hashtbl.mem member row.(slot)) records.data })
  else begin
    let k = 8 in
    let part id = (id lsr (3 * depth)) land (k - 1) in
    let width = record_bytes records in
    let rec_parts =
      partition_to_scratch ctx ~k ~part ~payload_bytes:width
        (List.map (fun row -> (row.(slot), encode_record width row)) records.data)
    in
    let out = ref [] in
    Array.iteri
      (fun p seg ->
         let part_filter =
           Array.of_list (List.filter (fun id -> part id = p) (Array.to_list filter))
         in
         let part_rows = read_partition ctx ~payload_bytes:width seg in
         let sub =
           grace_semijoin ctx ~depth:(depth + 1)
             { records with
               data =
                 List.map
                   (fun (_, b) -> decode_record (List.length records.slots) b)
                   part_rows }
             ~slot part_filter
         in
         out := sub.data @ !out)
      rec_parts;
    (* scratch partitions are reclaimed wholesale at end of query *)
    { records with data = !out }
  end

(* ---- attach one edge (P, C): extend records with the C id ---- *)

let attach_edge ctx records ~parent ~child =
  let fk_col =
    match List.assoc_opt child (Schema.children ctx.cat.Catalog.schema parent) with
    | Some fk -> fk
    | None -> fail "baseline: %s -> %s is not a schema edge" parent child
  in
  let p_slot = slot_index records parent in
  let extended_slots = records.slots @ [ child ] in
  let extend row c_id = Array.append row [| c_id |] in
  let hidden = is_hidden_col ctx ~table:parent ~column:fk_col in
  let data =
    if hidden then begin
      let cs = hidden_column ctx ~table:parent ~column:fk_col in
      match ctx.algo with
      | Grace_hash ->
        (* one point read per record *)
        let reader = Column_store.open_reader ~ram:ctx.ram ~buffer_bytes:64 cs in
        let out =
          List.map
            (fun row ->
               match Column_store.get reader row.(p_slot) with
               | Value.Int c_id -> extend row c_id
               | Value.Null | Value.Float _ | Value.Date _ | Value.Str _ ->
                 fail "baseline: non-integer fk")
            records.data
        in
        Column_store.close_reader reader;
        cpu ctx (2 * List.length records.data);
        out
      | Sort_merge ->
        (* sort records on P, merge with the sequential fk scan *)
        let sorted = sort_records ctx records ~slot:p_slot in
        let reader = Column_store.open_reader ~ram:ctx.ram ~buffer_bytes:2048 cs in
        let scan = Column_store.scan reader in
        let joined =
          Cursor.merge_join
            ~left_key:(fun row -> row.(p_slot))
            ~right_key:fst
            (Cursor.of_list sorted.data) scan
          |> Cursor.to_list
        in
        Column_store.close_reader reader;
        cpu ctx (Column_store.count cs);
        List.map
          (fun (row, (_, v)) ->
             match v with
             | Value.Int c_id -> extend row c_id
             | Value.Null | Value.Float _ | Value.Date _ | Value.Str _ ->
               fail "baseline: non-integer fk")
          joined
    end
    else begin
      (* Visible fk: the whole column is shipped in (sorted by id) and
         merge-joined after sorting the records. *)
      let stream =
        Public_store.stream_column ctx.public ~trace:(Device.trace ctx.device)
          ~table:parent ~column:fk_col ~preds:[]
      in
      (* Legacy ad-hoc sizing (4-byte id + 4-byte fk per pair) kept for
         seed bit-identity: the typed value-stream framing would charge
         the full 8-byte integer width. *)
      Device.receive ctx.device
        (Trace.Value_stream { table = parent; column = fk_col; count = Array.length stream })
        ~bytes:(8 * Array.length stream);
      let sorted =
        match ctx.algo with
        | Sort_merge -> sort_records ctx records ~slot:p_slot
        | Grace_hash -> sort_records ctx records ~slot:p_slot
      in
      Cursor.merge_join
        ~left_key:(fun row -> row.(p_slot))
        ~right_key:fst
        (Cursor.of_list sorted.data) (Cursor.of_array stream)
      |> Cursor.to_list
      |> List.map (fun (row, (_, v)) ->
        match v with
        | Value.Int c_id -> extend row c_id
        | Value.Null | Value.Float _ | Value.Date _ | Value.Str _ ->
          fail "baseline: non-integer fk")
    end
  in
  { slots = extended_slots; data }

let apply_filter ctx records ~table filter =
  let slot = slot_index records table in
  match ctx.algo with
  | Grace_hash -> grace_semijoin ctx records ~slot filter
  | Sort_merge ->
    let sorted = sort_records ctx records ~slot in
    let kept =
      Cursor.merge_join
        ~left_key:(fun row -> row.(slot))
        ~right_key:Fun.id
        (Cursor.of_list sorted.data) (Cursor.of_array filter)
      |> Cursor.to_list
      |> List.map fst
    in
    cpu ctx (List.length sorted.data);
    { records with data = kept }

(* ---- projection ---- *)

let project ctx records =
  let schema = ctx.cat.Catalog.schema in
  (* per projected column, an (id -> value) accessor *)
  let accessors =
    List.map
      (fun (table, column) ->
         let tbl = Schema.find_table schema table in
         let slot = slot_index records table in
         if column = tbl.Schema.key then (slot, fun id -> Value.Int id)
         else if is_hidden_col ctx ~table ~column then begin
           let cs = hidden_column ctx ~table ~column in
           let reader = Column_store.open_reader ~ram:ctx.ram ~buffer_bytes:64 cs in
           Resources.defer ctx.resources (fun () -> Column_store.close_reader reader);
           (slot, fun id -> Column_store.get reader id)
         end
         else begin
           (* visible: the filtered stream is shipped once; only the ids
              the surviving records actually need are retained, so the
              RAM charge is proportional to the (post-filter) record
              count, not the stream. *)
           let preds =
             List.filter
               (fun (p : Predicate.t) ->
                  p.Predicate.table = table
                  && not (is_hidden_col ctx ~table ~column:p.Predicate.column))
               ctx.q.Bind.selections
           in
           let stream =
             Public_store.stream_column ctx.public ~trace:(Device.trace ctx.device)
               ~table ~column ~preds
           in
           let ty = (Schema.find_column tbl column).Column.ty in
           let width = Value.ty_width ty in
           Device.receive_value_stream ctx.device ~table ~column ~ty stream;
           let needed = Hashtbl.create (max 16 (List.length records.data)) in
           List.iter (fun row -> Hashtbl.replace needed row.(slot) ()) records.data;
           let cell =
             Ram.alloc ctx.ram ~label:"baseline-proj-hash"
               (max 16 (Hashtbl.length needed * (16 + width)))
           in
           Resources.defer ctx.resources (fun () -> Ram.free ctx.ram cell);
           let h = Hashtbl.create (max 16 (Hashtbl.length needed)) in
           Array.iter
             (fun (id, v) ->
                cpu ctx 1;
                if Hashtbl.mem needed id then Hashtbl.replace h id v)
             stream;
           ( slot,
             fun id ->
               match Hashtbl.find_opt h id with
               | Some v -> v
               | None -> fail "baseline: projection stream missing id %d" id )
         end)
      ctx.q.Bind.projections
  in
  List.map
    (fun row ->
       cpu ctx (2 * List.length accessors);
       Array.of_list (List.map (fun (slot, get) -> get row.(slot)) accessors))
    records.data

(* ---- driver ---- *)

let order_edges root edges =
  let rec loop bound remaining =
    match remaining with
    | [] -> []
    | _ ->
      let ready, later = List.partition (fun (p, _) -> List.mem p bound) remaining in
      if ready = [] then fail "baseline: disconnected join edges";
      ready @ loop (bound @ List.map snd ready) later
  in
  loop [ root ] edges

let run algo cat public (q : Bind.query) =
  let device = cat.Catalog.device in
  let ram = Device.ram device in
  Resources.with_resources (fun resources ->
    let ctx = { algo; cat; public; device; ram; resources; q } in
    let scope = Ram.open_scope ram in
    let before = Device.snapshot device in
    Device.receive_query device q.Bind.text;
    let root = Schema.subtree_root cat.Catalog.schema q.Bind.tables in
    if Catalog.delta_count cat root > 0 || Catalog.tombstone_count cat root > 0 then
      fail
        "baseline: %s has pending inserts or deletes; baselines run only on \
         reorganized data"
        root;
    let n_root = Catalog.table_count cat root in
    let root_records =
      match filter_ids ctx root with
      | Some ids -> { slots = [ root ]; data = List.map (fun id -> [| id |]) (Array.to_list ids) }
      | None -> { slots = [ root ]; data = List.init n_root (fun i -> [| i + 1 |]) }
    in
    let records =
      List.fold_left
        (fun records (parent, child) ->
           let records = attach_edge ctx records ~parent ~child in
           match filter_ids ctx child with
           | Some filter -> apply_filter ctx records ~table:child filter
           | None -> records)
        root_records
        (order_edges root q.Bind.join_edges)
    in
    let rows = project ctx records in
    let rows =
      match q.Bind.aggregate with
      | None -> rows
      | Some spec ->
        cpu ctx (5 * List.length rows);
        Ghost_sql.Aggregate.apply spec rows
    in
    let rows =
      Ghost_sql.Postproc.apply ~order_by:q.Bind.order_by ~limit:q.Bind.limit rows
    in
    Device.emit_result device ~count:(List.length rows)
      ~bytes:(16 * List.length rows);
    Flash.erase_live_blocks (Device.scratch device);
    Resources.release resources;
    let usage = Device.usage_between device ~before ~after:(Device.snapshot device) in
    {
      rows;
      row_count = List.length rows;
      elapsed_us = usage.Device.total_us;
      usage;
      ram_peak = Ram.close_scope ram scope;
    })
