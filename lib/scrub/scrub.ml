module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device

type progress = {
  cursor : int;
  total : int;
  passes : int;
  pages_verified : int;
  refreshed : int;
  corrupt : int list;
}

type t = {
  device : Device.t;
  pages : int array;  (* fixed walk list, sorted ascending *)
  batch_pages : int;
  mutable cursor : int;  (* next walk-list index to verify *)
  mutable pending : int;  (* full passes requested but not yet completed *)
  mutable passes : int;  (* full passes completed *)
  mutable pages_verified : int;
  mutable refreshed : int;
  mutable corrupt : int list;  (* trailer failures found, newest first *)
}

let default_batch_pages = 8

let create ?(batch_pages = default_batch_pages) device ~pages =
  if batch_pages <= 0 then invalid_arg "Scrub.create: batch_pages <= 0";
  {
    device;
    pages = Array.of_list (List.sort_uniq compare pages);
    batch_pages;
    cursor = 0;
    pending = 1;
    passes = 0;
    pages_verified = 0;
    refreshed = 0;
    corrupt = [];
  }

let page_count t = Array.length t.pages
let idle t = t.pending = 0 || Array.length t.pages = 0
let request_pass t = t.pending <- t.pending + 1

let progress t = {
  cursor = t.cursor;
  total = Array.length t.pages;
  passes = t.passes;
  pages_verified = t.pages_verified;
  refreshed = t.refreshed;
  corrupt = List.sort_uniq compare t.corrupt;
}

let corrupt_pages t = List.sort_uniq compare t.corrupt

(* One scrub slice: verify the next [batch_pages] pages of the walk
   list. The walk order and batch shape depend only on the page-id
   list — never on page content — so a spy timing idle slices learns
   the store's size and nothing else. Each page costs exactly one
   metered full-page read; a decaying-but-correctable page costs one
   refresh (read + reprogram) on top. Returns whether work was done;
   [false] means no pass is pending. *)
let step t =
  if idle t then false
  else begin
    let n = Array.length t.pages in
    let flash = Device.flash t.device in
    let batch = min t.batch_pages (n - t.cursor) in
    let refreshes = ref 0 in
    for i = t.cursor to t.cursor + batch - 1 do
      let page = t.pages.(i) in
      if Flash.is_programmed flash page then begin
        let img = Flash.read_page flash page in
        let ok =
          if Flash.authenticated flash then
            match Flash.verify_image flash ~page img with
            | () -> true
            | exception Flash.Integrity_error _ -> false
          else
            (* Unauthenticated region: no trailer to check, but latent
               flips the controller can still correct are worth
               refreshing all the same. *)
            Flash.page_errors flash page = 0
        in
        if not ok then begin
          (* Beyond local recovery: leave the page for the fleet's
             anti-entropy repair, recorded once per page. *)
          if not (List.mem page t.corrupt) then t.corrupt <- page :: t.corrupt
        end
        else if Flash.page_errors flash page > 0 then begin
          (* The served image verified, so the damage is within ECC
             correction capacity: rewrite before a second flip lands. *)
          Flash.rewrite_page flash ~page;
          incr refreshes
        end
      end;
      t.pages_verified <- t.pages_verified + 1
    done;
    t.refreshed <- t.refreshed + !refreshes;
    Device.note_scrub t.device ~pages:batch ~refreshes:!refreshes;
    t.cursor <- t.cursor + batch;
    if t.cursor >= n then begin
      t.cursor <- 0;
      t.passes <- t.passes + 1;
      t.pending <- t.pending - 1
    end;
    true
  end

let run_pending t = while step t do () done
