module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device

(** Background Flash scrubber.

    Latent NAND retention failures sit in the cells until a query
    happens to read them — possibly long after a second flip has
    pushed the damage past ECC's correction capacity. The scrubber
    walks a fixed list of structure pages (see
    [Catalog.structure_pages]) in small batches during scheduler idle
    slices, verifying each page and refreshing the
    ECC-correctable ones in place (read–reprogram via the FTL's spare
    remap, {!Flash.rewrite_page}) before they decay further. Pages
    whose CRC-32 trailer no longer verifies are beyond local recovery;
    they are recorded for the fleet's anti-entropy repair.

    {b Privacy.} Scrub traffic is data-independent by construction:
    the walk order is the sorted page-id list, the batch size is
    fixed, and every batch costs the same metered reads regardless of
    page content (a refresh depends on injected damage, not on data).
    A spy timing the device's idle activity learns the store's page
    count — already public from load time — and nothing else.

    {b Resumability.} The cursor advances batch by batch and survives
    between {!step} calls (and across sessions via a marshalled
    image): scrubbing resumes exactly where it stopped, in the PR-4
    step-machine style. One full pass is pending at creation;
    {!request_pass} queues more. *)

type t

type progress = {
  cursor : int;  (** next walk-list index to verify *)
  total : int;  (** pages on the walk list *)
  passes : int;  (** full passes completed *)
  pages_verified : int;  (** page verifications performed (all passes) *)
  refreshed : int;  (** decaying pages rewritten in place *)
  corrupt : int list;  (** pages found beyond local recovery, sorted *)
}

val create : ?batch_pages:int -> Device.t -> pages:int list -> t
(** [create device ~pages] — a scrubber over the given walk list
    (deduplicated and sorted), verifying [batch_pages] (default 8)
    pages per idle slice on [device]'s main Flash region. One full
    pass is pending initially. Raises [Invalid_argument] when
    [batch_pages <= 0]. *)

val default_batch_pages : int

val step : t -> bool
(** Runs one batch: [true] if pages were verified, [false] when no
    pass is pending (or the walk list is empty). Each verified page
    charges one full-page read to the device clock; each refresh adds
    one {!Flash.rewrite_page}. Corrupt pages are recorded, never
    raised — the scrubber is a maintenance path, not a query. *)

val run_pending : t -> unit
(** Steps until no pass is pending — the eager (non-idle-sliced)
    entry point for tests and experiments. *)

val idle : t -> bool
(** No pass pending: {!step} would do nothing. *)

val request_pass : t -> unit
(** Queues one more full pass over the walk list. *)

val page_count : t -> int
val progress : t -> progress
val corrupt_pages : t -> int list
(** Pages whose verification failed beyond local recovery, sorted. *)
