module Device = Ghost_device.Device
module Ram = Ghost_device.Ram
module Flash = Ghost_flash.Flash
module Bind = Ghost_sql.Bind
module Exec = Ghostdb.Exec
module Cost = Ghostdb.Cost
module Plan = Ghostdb.Plan
module Catalog = Ghostdb.Catalog
module Compaction = Ghostdb.Compaction
module Public_store = Ghost_public.Public_store
module Metrics = Ghost_metrics.Metrics

type policy = Fifo | Round_robin | Cost_based

let policy_name = function
  | Fifo -> "fifo"
  | Round_robin -> "round-robin"
  | Cost_based -> "cost-based"

let policy_of_string = function
  | "fifo" -> Some Fifo
  | "round-robin" | "rr" -> Some Round_robin
  | "cost-based" | "srcf" -> Some Cost_based
  | _ -> None

type outcome =
  | Completed of Exec.result
  | Cancelled of string
  | Failed of exn

type session_state = Queued | Runnable | Done of outcome

type session = {
  id : int;
  label : string;
  plan : Plan.t;
  est : Cost.estimate;
  mutable working_ram : int;
      (* shrunk only by a forced admission (see [admit]) *)
  deadline_us : float option;  (* relative to [submitted_us] *)
  submitted_us : float;
  mutable admitted_us : float;
  mutable machine : Exec.step_machine option;
  mutable reservation : Ram.cell option;
  mutable live_ram : int;
      (* bytes the session's execution currently holds in the arena,
         tracked as the in_use delta across its own slices (no other
         session allocates while a slice runs) *)
  mutable scratch : Flash.t option;
  mutable usage : Device.usage;
  mutable slices : int;
  mutable state : session_state;
  mutable finished_us : float;
}

type finished = {
  f_id : int;
  f_label : string;
  f_outcome : outcome;
  f_submitted_us : float;
  f_admitted_us : float;
  f_finished_us : float;
  f_slices : int;
  f_usage : Device.usage;
}

type stats = {
  submitted : int;
  queued : int;
  runnable : int;
  finished : int;
  admission_blocked : int;
}

type t = {
  catalog : Catalog.t;
  public : Public_store.t;
  device : Device.t;
  ram : Ram.t;
  policy : policy;
  quantum_us : float;
  exact_post : bool;
  bloom_fpr : float;
  mutable next_id : int;
  mutable queue : session list;  (* submission order, head first *)
  mutable ready : session list;  (* admission order, head first *)
  mutable finished_rev : session list;
  mutable sessions : (int * session) list;
  mutable scratch_pool : Flash.t list;
  mutable scrubber : Ghost_scrub.Scrub.t option;
  mutable compactor : Compaction.t option;
  mutable maintenance_flip : bool;
      (* which maintenance task the next idle slice offers first, so
         the scrubber and the compactor share idle time fairly *)
  mutable n_submitted : int;
  mutable n_finished : int;
  mutable n_blocked : int;
}

let create ?(policy = Fifo) ?(quantum_us = infinity) ?(exact_post = true)
    ?(bloom_fpr = 0.01) catalog public =
  if not (quantum_us > 0.) then
    invalid_arg "Scheduler.create: quantum_us must be positive";
  if not (bloom_fpr > 0. && bloom_fpr < 1.) then
    invalid_arg "Scheduler.create: bloom_fpr must be in (0, 1)";
  let device = catalog.Catalog.device in
  {
    catalog;
    public;
    device;
    ram = Device.ram device;
    policy;
    quantum_us;
    exact_post;
    bloom_fpr;
    next_id = 0;
    queue = [];
    ready = [];
    finished_rev = [];
    sessions = [];
    scratch_pool = [];
    scrubber = None;
    compactor = None;
    maintenance_flip = false;
    n_submitted = 0;
    n_finished = 0;
    n_blocked = 0;
  }

let policy t = t.policy
let quantum_us t = t.quantum_us

let submit t ?label ?working_ram ?deadline_us plan =
  (match deadline_us with
   | Some d when not (d > 0.) ->
     invalid_arg "Scheduler.submit: deadline_us must be positive"
   | _ -> ());
  let est = Cost.estimate t.catalog plan in
  let budget = Ram.budget t.ram in
  let working_ram =
    match working_ram with
    | Some w ->
      if w < 0 then invalid_arg "Scheduler.submit: working_ram must be >= 0";
      min w budget
    | None -> max 4096 (min est.Cost.est_ram_bytes (budget / 4))
  in
  let label =
    match label with
    | Some l -> l
    | None ->
      let text = plan.Plan.query.Bind.text in
      if String.length text <= 32 then text else String.sub text 0 32
  in
  let id = t.next_id in
  t.next_id <- id + 1;
  let s =
    {
      id;
      label;
      plan;
      est;
      working_ram;
      deadline_us;
      submitted_us = Device.elapsed_us t.device;
      admitted_us = nan;
      machine = None;
      reservation = None;
      live_ram = 0;
      scratch = None;
      usage = Device.zero_usage;
      slices = 0;
      state = Queued;
      finished_us = nan;
    }
  in
  t.queue <- t.queue @ [ s ];
  t.sessions <- (id, s) :: t.sessions;
  t.n_submitted <- t.n_submitted + 1;
  id

let take_scratch t =
  match t.scratch_pool with
  | region :: rest ->
    t.scratch_pool <- rest;
    region
  | [] -> Device.new_scratch_region t.device

(* Admission is strict FIFO — no bypass, so a large request cannot be
   starved by a stream of small ones. When the head's reservation does
   not fit but nothing is runnable, the head is force-admitted with
   whatever the arena can still give (its working_ram shrinks to the
   actual reservation, keeping the between-slice resize invariant),
   guaranteeing progress even against RAM held outside the scheduler. *)
let admit t =
  let rec go () =
    match t.queue with
    | [] -> ()
    | s :: rest ->
      let fits = Ram.would_fit t.ram s.working_ram in
      if fits || t.ready = [] then begin
        let reserve =
          if fits then s.working_ram
          else max 0 (min s.working_ram (Ram.budget t.ram - Ram.in_use t.ram))
        in
        s.working_ram <- reserve;
        s.reservation <-
          Some
            (Ram.alloc t.ram
               ~label:(Printf.sprintf "sched:s%d reservation" s.id)
               reserve);
        s.scratch <- Some (take_scratch t);
        s.machine <-
          Some
            (Exec.start ~exact_post:t.exact_post ~bloom_fpr:t.bloom_fpr
               ~quantum_us:t.quantum_us
               ?scratch:s.scratch t.catalog t.public s.plan);
        s.admitted_us <- Device.elapsed_us t.device;
        s.state <- Runnable;
        t.queue <- rest;
        t.ready <- t.ready @ [ s ];
        go ()
      end
  in
  go ()

let release_ram t s =
  (match s.reservation with
   | Some cell ->
     Ram.free t.ram cell;
     s.reservation <- None
   | None -> ());
  s.live_ram <- 0

let release_scratch t s =
  match s.scratch with
  | Some region ->
    (* A completed execution already reclaimed its spills; this pays
       only for runs a cancellation or failure left behind. *)
    Flash.erase_live_blocks region;
    t.scratch_pool <- region :: t.scratch_pool;
    s.scratch <- None
  | None -> ()

let retire t s outcome =
  s.state <- Done outcome;
  s.finished_us <- Device.elapsed_us t.device;
  release_ram t s;
  release_scratch t s;
  t.ready <- List.filter (fun r -> r.id <> s.id) t.ready;
  t.queue <- List.filter (fun r -> r.id <> s.id) t.queue;
  t.finished_rev <- s :: t.finished_rev;
  t.n_finished <- t.n_finished + 1

let cancel_session t s reason =
  match s.state with
  | Done _ -> ()
  | Queued | Runnable ->
    let before = Device.snapshot t.device in
    Device.set_session t.device (Some s.id);
    (match s.machine with Some m -> Exec.cancel m | None -> ());
    retire t s (Cancelled reason);
    Device.set_session t.device None;
    let after = Device.snapshot t.device in
    s.usage <- Device.add_usage s.usage (Device.usage_between t.device ~before ~after);
    match Device.metrics t.device with
    | None -> ()
    | Some reg -> Metrics.incr reg "sched.cancelled"

let cancel t ?(reason = "cancelled") id =
  match List.assoc_opt id t.sessions with
  | None -> ()
  | Some s -> cancel_session t s reason

let deadline_expired t s =
  match s.deadline_us with
  | None -> false
  | Some d -> Device.elapsed_us t.device > s.submitted_us +. d

let expire_deadlines t =
  let expired = List.filter (deadline_expired t) (t.queue @ t.ready) in
  List.iter (fun s -> cancel_session t s "deadline") expired

(* One quantum of the session, bracketed for per-session attribution.
   The reservation protocol keeps the arena invariant
   [reservation = max 0 (working_ram - live_ram)] between slices:
   resized to zero while the session runs (the executor draws real
   allocations from the headroom admission promised), re-reserving the
   unused remainder afterwards. The resize-back never overflows: only
   this session touched the arena during its slice, and the target is
   bounded by what the slice start freed plus what the slice itself
   released. *)
let run_slice t s =
  let m = match s.machine with Some m -> m | None -> assert false in
  (match s.reservation with
   | Some cell -> Ram.resize t.ram cell 0
   | None -> ());
  let ram_before = Ram.in_use t.ram in
  let before = Device.snapshot t.device in
  Device.set_session t.device (Some s.id);
  let step_result = try Ok (Exec.step m) with e -> Error e in
  s.live_ram <- s.live_ram + (Ram.in_use t.ram - ram_before);
  (* Retire inside the attribution bracket so a failed session's
     leftover spill erases are charged to it. *)
  (match step_result with
   | Ok (Exec.Finished r) -> retire t s (Completed r)
   | Error e -> retire t s (Failed e)
   | Ok Exec.Yielded ->
     (match s.reservation with
      | Some cell -> Ram.resize t.ram cell (max 0 (s.working_ram - s.live_ram))
      | None -> ()));
  Device.set_session t.device None;
  let after = Device.snapshot t.device in
  s.usage <- Device.add_usage s.usage (Device.usage_between t.device ~before ~after);
  s.slices <- s.slices + 1;
  match Device.metrics t.device with
  | None -> ()
  | Some reg ->
    let slice_us = after.Device.elapsed -. before.Device.elapsed in
    Metrics.incr reg "sched.slices";
    Metrics.observe reg "sched.slice.us" slice_us;
    Metrics.span reg
      ~name:(Printf.sprintf "s%d %s" s.id s.label)
      ~cat:"sched.slice" ~pid:1 ~tid:s.id
      ~args:[ ("slice", Float.of_int s.slices) ]
      ~ts:before.Device.elapsed ~dur:slice_us ();
    (* A completed session is the cost model's ground truth: the
       planner's whole-plan estimate against the device time actually
       attributed to the session across all its slices. *)
    (match step_result with
     | Ok (Exec.Finished _) ->
       Metrics.incr reg "sched.completed";
       Metrics.observe reg "sched.session.us" s.usage.Device.total_us;
       Metrics.observe reg "sched.latency.us" (s.finished_us -. s.submitted_us);
       Metrics.calibrate reg ~cls:s.plan.Plan.label
         ~predicted_us:s.est.Cost.est_time_us
         ~measured_us:s.usage.Device.total_us
     | Error _ -> Metrics.incr reg "sched.failed"
     | Ok Exec.Yielded -> ())

let pick t =
  match t.ready with
  | [] -> None
  | first :: rest -> (
    match t.policy with
    | Fifo | Round_robin -> Some first
    | Cost_based ->
      let remaining s = Cost.remaining_us s.est ~spent_us:s.usage.Device.total_us in
      Some
        (List.fold_left
           (fun best s -> if remaining s < remaining best then s else best)
           first rest))

let is_runnable s = match s.state with Runnable -> true | Queued | Done _ -> false

let set_scrubber t s = t.scrubber <- s
let scrubber t = t.scrubber
let set_compactor t c = t.compactor <- c
let compactor t = t.compactor

let step t =
  if t.queue = [] && t.ready = [] then
    (* Idle slice: no session wants the device, so give the slice to
       background maintenance — one fixed-size batch per step keeps
       idle work preemptible at the same granularity as queries. The
       scrubber and the compactor alternate who gets first claim on
       each idle slice, so a long compaction backlog cannot starve
       scrubbing (or vice versa); an idle task passes its slice to the
       other. With neither attached (the default) the idle path is the
       seed's [false], bit for bit. *)
    (match (t.scrubber, t.compactor) with
     | None, None -> false
     | sc, co ->
       let scrub () =
         match sc with Some s -> Ghost_scrub.Scrub.step s | None -> false
       in
       let compact () =
         match co with Some c -> Compaction.step c | None -> false
       in
       let first, second =
         if t.maintenance_flip then (compact, scrub) else (scrub, compact)
       in
       t.maintenance_flip <- not t.maintenance_flip;
       first () || second ())
  else begin
    expire_deadlines t;
    admit t;
    if t.queue <> [] then t.n_blocked <- t.n_blocked + 1;
    (match pick t with
     | None -> ()
     | Some s ->
       run_slice t s;
       if is_runnable s && t.policy = Round_robin then
         t.ready <- List.filter (fun r -> r.id <> s.id) t.ready @ [ s ]);
    true
  end

let run t =
  while step t do
    ()
  done

let poll_finished t =
  let finished = List.rev t.finished_rev in
  t.finished_rev <- [];
  List.map
    (fun s ->
       {
         f_id = s.id;
         f_label = s.label;
         f_outcome = (match s.state with Done o -> o | Queued | Runnable -> assert false);
         f_submitted_us = s.submitted_us;
         f_admitted_us = s.admitted_us;
         f_finished_us = s.finished_us;
         f_slices = s.slices;
         f_usage = s.usage;
       })
    finished

let outcome t id =
  match List.assoc_opt id t.sessions with
  | Some { state = Done o; _ } -> Some o
  | Some _ | None -> None

let usage t id =
  match List.assoc_opt id t.sessions with
  | Some s -> s.usage
  | None -> Device.zero_usage

let stats t =
  {
    submitted = t.n_submitted;
    queued = List.length t.queue;
    runnable = List.length t.ready;
    finished = t.n_finished;
    admission_blocked = t.n_blocked;
  }
