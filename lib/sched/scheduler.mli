module Device = Ghost_device.Device
module Ram = Ghost_device.Ram
module Exec = Ghostdb.Exec
module Cost = Ghostdb.Cost
module Plan = Ghostdb.Plan
module Catalog = Ghostdb.Catalog
module Public_store = Ghost_public.Public_store

(** Multi-session query scheduler for the shared device.

    The paper's device serves one user, but nothing in the architecture
    forbids several principals sharing one smart USB stick — a family
    dongle, a ward terminal. This module multiplexes the single
    simulated device between concurrent query {e sessions}:

    - {b Admission control}: a session declares its working RAM; the
      scheduler reserves that many bytes from the shared {!Ram} arena
      before dispatching it, and queues it (strict FIFO, no bypass)
      while the reservation does not fit. While a session runs its own
      slice, its reservation is released to it (resized to zero) so the
      executor draws real allocations from the headroom the admission
      promised; between slices the unused remainder is re-reserved so a
      later admission cannot eat it.
    - {b Time-sliced execution}: each dispatch runs the session's
      {!Exec.step_machine} for one quantum of simulated device
      microseconds (Flash + CPU + USB on the device clock), then
      re-enters the policy. Execution is cooperative and serialized —
      the device has one CPU — so slices never overlap.
    - {b Accounting}: every slice is bracketed with
      {!Device.set_session}, so trace events, spy reports
      ({!Ghost_public.Spy.analyze} [?session]) and privacy audits
      ({!Ghostdb.Privacy.audit} [?session]) attribute per session; the
      device-clock delta of each slice is accumulated into the
      session's {!Device.usage}.
    - {b Isolation of spills}: each admitted session gets a private
      scratch Flash region ({!Device.new_scratch_region}, pooled and
      reused), so cancelling one session and erasing its spill runs
      wholesale cannot tear another session's external sort.

    A single session dispatched with [quantum_us = infinity] (the
    default) reproduces {!Exec.run} exactly: same rows, same operator
    stats, same device clock, same trace (modulo the session stamp). *)

type policy =
  | Fifo  (** run the earliest-admitted session to completion *)
  | Round_robin  (** rotate on every quantum expiry *)
  | Cost_based
      (** shortest remaining cost first: on every dispatch pick the
          runnable session minimizing {!Cost.remaining_us} of its
          planner estimate against the device time already charged to
          it *)

val policy_name : policy -> string
val policy_of_string : string -> policy option

type outcome =
  | Completed of Exec.result
  | Cancelled of string  (** the reason: explicit cancel or "deadline" *)
  | Failed of exn  (** the plan raised (e.g. {!Ram.Ram_exceeded}) *)

type finished = {
  f_id : int;
  f_label : string;
  f_outcome : outcome;
  f_submitted_us : float;  (** device clock at {!submit} *)
  f_admitted_us : float;
      (** device clock when the reservation fit; NaN for a session
          cancelled while still queued *)
  f_finished_us : float;  (** device clock at completion/cancel/failure *)
  f_slices : int;  (** dispatches the session received *)
  f_usage : Device.usage;  (** device work charged to the session *)
}

type stats = {
  submitted : int;
  queued : int;  (** awaiting admission now *)
  runnable : int;  (** admitted, not finished *)
  finished : int;  (** total completed + cancelled + failed *)
  admission_blocked : int;
      (** dispatch rounds that left at least one session queued because
          its RAM reservation did not fit *)
}

type t

val create :
  ?policy:policy ->
  ?quantum_us:float ->
  ?exact_post:bool ->
  ?bloom_fpr:float ->
  Catalog.t ->
  Public_store.t ->
  t
(** A scheduler over the catalog's device. [policy] defaults to
    {!Fifo}; [quantum_us] (default [infinity]) is the slice length in
    simulated microseconds; [exact_post] and [bloom_fpr] are passed to
    every execution ({!Exec.run} semantics). Raises [Invalid_argument]
    on a non-positive quantum or a [bloom_fpr] outside (0, 1). *)

val policy : t -> policy
val quantum_us : t -> float

val submit :
  t ->
  ?label:string ->
  ?working_ram:int ->
  ?deadline_us:float ->
  Plan.t ->
  int
(** Registers a session for the plan and returns its id. [working_ram]
    (default: the planner's [est_ram_bytes] estimate, floored at 4 KiB
    and capped at a quarter of the RAM budget) is the admission
    reservation; it is clamped to the arena budget. [deadline_us] is
    relative to submission on the device clock: a session still
    unfinished when the clock passes [submitted + deadline_us] is
    cancelled with reason ["deadline"], whether queued or running.
    [label] defaults to a prefix of the plan's query text. Nothing
    executes until {!step}. *)

val cancel : t -> ?reason:string -> int -> unit
(** Cancels a queued or runnable session: its execution is aborted
    through {!Exec.cancel} (deferred releases run, so its RAM cells
    come back), its reservation is freed and its scratch region is
    erased and returned to the pool. A no-op on a finished or unknown
    session id. *)

val step : t -> bool
(** One dispatch round: admit what fits, cancel expired deadlines,
    pick a session per the policy, run it for one quantum. Returns
    [false] when no session is queued or runnable (nothing happened).
    An exception raised by a plan is captured as its session's
    {!Failed} outcome, never thrown to the caller.

    When no session wants the device, the idle slice goes to
    background maintenance instead: the attached scrubber and
    compactor alternate first claim on successive idle slices (an idle
    task passes its slice to the other), and the step returns [true]
    while either has work pending — maintenance consumes exactly the
    slices queries leave free. *)

val run : t -> unit
(** Steps until every submitted session has finished — and, with a
    scrubber or compactor attached, until no scrub pass or compaction
    unit is pending. *)

val set_scrubber : t -> Ghost_scrub.Scrub.t option -> unit
(** Attaches (or detaches) a background scrubber (see
    {!Ghost_scrub.Scrub}) fed by idle dispatch slices. [None] (the
    default) keeps the idle path bit-identical to the seed. *)

val scrubber : t -> Ghost_scrub.Scrub.t option

val set_compactor : t -> Ghostdb.Compaction.t option -> unit
(** Attaches (or detaches) a background delta-log compactor (see
    {!Ghostdb.Compaction}) fed by idle dispatch slices, interleaved
    fairly with the scrubber. [None] (the default) keeps the idle path
    bit-identical to the seed. *)

val compactor : t -> Ghostdb.Compaction.t option

val poll_finished : t -> finished list
(** Sessions that finished since the last poll, in completion order. *)

val outcome : t -> int -> outcome option
(** [None] while the session is still queued or runnable. *)

val usage : t -> int -> Device.usage
(** Device work charged to the session so far ({!Device.zero_usage}
    for an unknown id). *)

val stats : t -> stats
