module Rng = Ghost_kernel.Rng
module Zipf = Ghost_kernel.Zipf
module Device = Ghost_device.Device
module Queries = Ghost_workload.Queries
module Cost = Ghostdb.Cost
module Ghost_db = Ghostdb.Ghost_db

type spec = {
  clients : int;
  queries_per_client : int;
  theta : float;
  seed : int;
  mix : (string * string) list;
}

let default_spec =
  { clients = 4; queries_per_client = 8; theta = 1.1; seed = 42; mix = Queries.all }

type summary = {
  policy : Scheduler.policy;
  quantum_us : float;
  clients : int;
  completed : int;
  cancelled : int;
  failed : int;
  makespan_us : float;
  throughput_qps : float;
  latency_p50_us : float;
  latency_p95_us : float;
  latency_mean_us : float;
  latency_max_us : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

(* The mix ranked cheapest-first by the optimizer's best estimate on
   this database, so Zipf rank 1 is the lightest query. *)
let cost_ranked_mix db mix =
  mix
  |> List.map (fun (name, sql) ->
       match Ghost_db.plans db sql with
       | (plan, est) :: _ -> (name, plan, est.Cost.est_time_us)
       | [] -> failwith ("Workload_driver: no plan for query " ^ name))
  |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b)
  |> List.map (fun (name, plan, _) -> (name, plan))
  |> Array.of_list

let run ?(policy = Scheduler.Fifo) ?(quantum_us = infinity) db (spec : spec) =
  if spec.clients <= 0 then invalid_arg "Workload_driver.run: clients <= 0";
  if spec.queries_per_client <= 0 then
    invalid_arg "Workload_driver.run: queries_per_client <= 0";
  let device = Ghost_db.device db in
  let sched =
    Scheduler.create ~policy ~quantum_us (Ghost_db.catalog db) (Ghost_db.public db)
  in
  if spec.mix = [] then invalid_arg "Workload_driver.run: empty mix";
  let mix = cost_ranked_mix db spec.mix in
  let zipf = Zipf.create ~n:(Array.length mix) ~theta:spec.theta in
  let rng = Rng.create spec.seed in
  let remaining = Array.make spec.clients (spec.queries_per_client - 1) in
  let owner = Hashtbl.create 64 in
  (* Fair-share memory reservation: give every session budget/clients
     of working RAM so all clients admit concurrently. Left to the
     scheduler's estimate-driven default, a heavy query reserves up to
     a quarter of the arena and admission control (strictly FIFO) would
     queue the sessions behind it — a convoy no dispatch policy can
     break, which would contaminate the policy comparison this driver
     exists to measure. *)
  let working_ram =
    let budget = Ghost_device.Ram.budget (Device.ram device) in
    max 4096 (budget / spec.clients)
  in
  let submit_next client =
    let rank = Zipf.sample zipf rng in
    let name, plan = mix.(rank - 1) in
    let id = Scheduler.submit sched ~label:name ~working_ram plan in
    Hashtbl.replace owner id client
  in
  let start_us = Device.elapsed_us device in
  let completed = ref 0 in
  let cancelled = ref 0 in
  let failed = ref 0 in
  let latencies = ref [] in
  for client = 0 to spec.clients - 1 do
    submit_next client
  done;
  let drain () =
    List.iter
      (fun (f : Scheduler.finished) ->
         (match f.Scheduler.f_outcome with
          | Scheduler.Completed _ ->
            incr completed;
            latencies := (f.Scheduler.f_finished_us -. f.Scheduler.f_submitted_us) :: !latencies
          | Scheduler.Cancelled _ -> incr cancelled
          | Scheduler.Failed _ -> incr failed);
         let client = Hashtbl.find owner f.Scheduler.f_id in
         if remaining.(client) > 0 then begin
           remaining.(client) <- remaining.(client) - 1;
           submit_next client
         end)
      (Scheduler.poll_finished sched)
  in
  while Scheduler.step sched do
    drain ()
  done;
  drain ();
  let lat = Array.of_list !latencies in
  Array.sort Float.compare lat;
  let makespan_us = Device.elapsed_us device -. start_us in
  let n = Array.length lat in
  {
    policy;
    quantum_us;
    clients = spec.clients;
    completed = !completed;
    cancelled = !cancelled;
    failed = !failed;
    makespan_us;
    throughput_qps =
      (if makespan_us > 0. then float_of_int !completed /. makespan_us *. 1e6
       else 0.);
    latency_p50_us = percentile lat 0.50;
    latency_p95_us = percentile lat 0.95;
    latency_mean_us =
      (if n = 0 then nan else Array.fold_left ( +. ) 0. lat /. float_of_int n);
    latency_max_us = (if n = 0 then nan else lat.(n - 1));
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "%s q=%s clients=%d: %d ok %d cancelled %d failed, makespan %.0f us, %.1f \
     q/s, latency p50 %.0f us p95 %.0f us mean %.0f us max %.0f us"
    (Scheduler.policy_name s.policy)
    (if s.quantum_us = infinity then "inf" else Printf.sprintf "%.0fus" s.quantum_us)
    s.clients s.completed s.cancelled s.failed s.makespan_us s.throughput_qps
    s.latency_p50_us s.latency_p95_us s.latency_mean_us s.latency_max_us
