module Ghost_db = Ghostdb.Ghost_db

(** Closed-loop multi-session workload driver.

    Models [clients] concurrent principals sharing one device: each
    client keeps exactly one query in flight — it submits, waits for
    completion, then immediately submits its next — so the concurrency
    level stays constant at [clients] until the tail drains. There is
    no think time: the simulated clock only advances when the device
    works, so throughput and latency are properties of the scheduler,
    not of an arrival process.

    The query mix (default: the whole demonstration suite,
    {!Ghost_workload.Queries.all}) is ordered cheapest-first by the
    planner's estimate on the target database and sampled through a
    Zipfian distribution over ranks — cheap interactive queries
    dominate, expensive analytical ones are rare. That skew is what
    separates the policies: under FIFO a rare heavy query convoys
    every light query queued behind it (p95 explodes); round-robin and
    shortest-remaining-cost-first let light queries overtake. *)

type spec = {
  clients : int;  (** concurrent sessions (closed-loop multiprogramming) *)
  queries_per_client : int;
  theta : float;  (** Zipf exponent over the cost-ranked mix; 0 = uniform *)
  seed : int;
  mix : (string * string) list;
      (** (name, sql) candidates; rank order is decided by the planner
          estimate on the target database, not by list position *)
}

val default_spec : spec
(** 4 clients, 8 queries each, theta 1.1, seed 42, the full suite. *)

type summary = {
  policy : Scheduler.policy;
  quantum_us : float;
  clients : int;
  completed : int;
  cancelled : int;
  failed : int;
  makespan_us : float;  (** device time from first submit to last finish *)
  throughput_qps : float;  (** completed queries per simulated second *)
  latency_p50_us : float;
  latency_p95_us : float;
  latency_mean_us : float;
  latency_max_us : float;
      (** latency = completion minus submission on the device clock,
          over completed sessions only *)
}

val run :
  ?policy:Scheduler.policy ->
  ?quantum_us:float ->
  Ghost_db.t ->
  spec ->
  summary
(** Drives the workload to completion on [db]'s device and scheduler
    policy. Each query uses the optimizer's best plan (planned once per
    distinct query, outside the measured device time). Deterministic
    for a given (db, spec, policy, quantum). *)

val pp_summary : Format.formatter -> summary -> unit
