module Value = Ghost_kernel.Value
module Sorted_ids = Ghost_kernel.Sorted_ids
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device
module Trace = Ghost_device.Trace
module Skt = Ghost_store.Skt
module Column_store = Ghost_store.Column_store
module Climbing_index = Ghost_store.Climbing_index
module Public_store = Ghost_public.Public_store

exception Load_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Load_error s)) fmt

module Vmap = Map.Make (struct
    type t = Value.t

    let compare = Value.compare
  end)

(* Column values of one table, dense id-indexed. *)
type table_data = {
  tbl : Schema.table;
  n : int;
  columns : (string * Value.t array) list;  (* declared columns, key excluded *)
}

let column_values data name =
  try List.assoc name data.columns
  with Not_found -> fail "no column %s in table %s" name data.tbl.Schema.name

let prepare_table (tbl : Schema.table) rows =
  let n = List.length rows in
  let arity = Schema.arity tbl in
  let cols =
    List.map (fun (c : Column.t) -> (c.Column.name, Array.make n Value.Null)) tbl.Schema.columns
  in
  let seen = Array.make n false in
  List.iter
    (fun row ->
       if Array.length row <> arity then
         fail "table %s: row arity %d, expected %d" tbl.Schema.name (Array.length row)
           arity;
       match row.(0) with
       | Value.Int id when id >= 1 && id <= n ->
         if seen.(id - 1) then fail "table %s: duplicate key %d" tbl.Schema.name id;
         seen.(id - 1) <- true;
         List.iteri (fun i (_, arr) -> arr.(id - 1) <- row.(i + 1)) cols
       | Value.Int id -> fail "table %s: key %d not dense in 1..%d" tbl.Schema.name id n
       | Value.Null | Value.Float _ | Value.Date _ | Value.Str _ ->
         fail "table %s: non-integer key" tbl.Schema.name)
    rows;
  { tbl; n; columns = cols }

(* comp.(a-1) = the D-id reached from A-id a along the FK path. *)
let composition schema data_of ~ancestor ~descendant =
  let rec build name =
    if name = descendant then None  (* identity *)
    else begin
      let data = data_of name in
      let child_on_path =
        List.find_opt
          (fun (child, _) -> Schema.is_ancestor schema ~ancestor:child descendant)
          (Schema.children schema name)
      in
      match child_on_path with
      | None -> fail "no FK path from %s to %s" name descendant
      | Some (child, fk_col) ->
        let fk = column_values data fk_col in
        let step =
          Array.map
            (fun v ->
               match v with
               | Value.Int id -> id
               | Value.Null | Value.Float _ | Value.Date _ | Value.Str _ ->
                 fail "table %s: non-integer foreign key in %s" name fk_col)
            fk
        in
        (match build child with
         | None -> Some step
         | Some deeper ->
           Some
             (Array.map
                (fun cid ->
                   if cid < 1 || cid > Array.length deeper then
                     fail "dangling foreign key %d via %s.%s" cid name fk_col
                   else deeper.(cid - 1))
                step))
    end
  in
  match build ancestor with
  | Some arr -> arr
  | None -> Array.init (data_of descendant).n (fun i -> i + 1)

let bucket_by_value values ids_of =
  (* values: per-entity value array (index = id-1); ids_of lets the
     caller remap (identity for level 0). Returns value -> sorted ids. *)
  let m = ref Vmap.empty in
  Array.iteri
    (fun i v ->
       let id = ids_of i in
       m := Vmap.update v (fun l -> Some (id :: Option.value l ~default:[])) !m)
    values;
  Vmap.map (fun l -> Sorted_ids.of_unsorted l) !m

(* A prepared load: host-side arrays validated and a device created,
   but nothing programmed to Flash yet. {!Reorg} drives the phases
   below one at a time (checkpointing between them); [load] runs them
   back to back. The split is observation-free: running the phases in
   order issues exactly the same Flash programs as the former
   monolithic loader. *)
type prepared = {
  device : Device.t;
  schema : Schema.t;
  datas : (string * table_data) list;  (* Schema.tables order *)
  rows : (string * Relation.tuple list) list;
  index_hidden_fks : bool;
}

let device p = p.device
let table_names p = List.map fst p.datas

let prepare ?device_config ?(index_hidden_fks = false) ~trace schema tables_with_rows
  =
  let device =
    match device_config with
    | Some config -> Device.create ~config ~trace ()
    | None -> Device.create ~trace ()
  in
  let datas =
    List.map
      (fun (tbl : Schema.table) ->
         match List.assoc_opt tbl.Schema.name tables_with_rows with
         | Some rows -> (tbl.Schema.name, prepare_table tbl rows)
         | None -> fail "no rows provided for table %s" tbl.Schema.name)
      (Schema.tables schema)
  in
  let data_of name = List.assoc name datas in
  (* Validate FK ranges eagerly. *)
  List.iter
    (fun (name, data) ->
       List.iter
         (fun (c : Column.t) ->
            match c.Column.refs with
            | None -> ()
            | Some target ->
              let target_n = (data_of target).n in
              Array.iter
                (fun v ->
                   match v with
                   | Value.Int id when id >= 1 && id <= target_n -> ()
                   | _ ->
                     fail "table %s: foreign key %s out of range of %s" name
                       c.Column.name target)
                (column_values data c.Column.name))
         data.tbl.Schema.columns)
    datas;
  { device; schema; datas; rows = tables_with_rows; index_hidden_fks }

let comp_of p =
  let data_of name = List.assoc name p.datas in
  fun ~ancestor ~descendant -> composition p.schema data_of ~ancestor ~descendant

let build_skts p =
  let flash = Device.flash p.device in
  let comp = comp_of p in
  (* SKTs for tables with children. *)
  List.filter_map
    (fun (name, data) ->
       if Schema.children p.schema name = [] then None
       else begin
         let levels = Schema.subtree p.schema name in
         let comps =
           List.map
             (fun d -> if d = name then None else Some (comp ~ancestor:name ~descendant:d))
             levels
         in
         let rows =
           Array.init data.n (fun i ->
             Array.of_list
               (List.map
                  (function
                    | None -> i + 1
                    | Some arr -> arr.(i))
                  comps))
         in
         Some (name, Skt.build flash ~root:name ~levels ~rows)
       end)
    p.datas

let build_entry p name =
  let flash = Device.flash p.device in
  let schema = p.schema in
  let index_hidden_fks = p.index_hidden_fks in
  let comp = comp_of p in
  let data = List.assoc name p.datas in
  let tbl = data.tbl in
  let hidden_cols =
    List.filter (fun (c : Column.t) -> Column.is_hidden c) tbl.Schema.columns
  in
  let hidden_columns =
    List.map
      (fun (c : Column.t) ->
         ( c.Column.name,
           Column_store.build flash c.Column.ty (column_values data c.Column.name) ))
      hidden_cols
  in
  let climb = Schema.climb_path schema name in
  let attr_indexes =
    List.filter_map
      (fun (c : Column.t) ->
         if not (Column.is_hidden c) then None
         else if Column.is_foreign_key c && not index_hidden_fks then None
         else begin
           let values = column_values data c.Column.name in
           (* Per level: value -> sorted id list. *)
           let per_level =
             List.map
               (fun level ->
                  if level = name then bucket_by_value values (fun i -> i + 1)
                  else begin
                    let comp_arr = comp ~ancestor:level ~descendant:name in
                    let level_values =
                      Array.map (fun tid -> values.(tid - 1)) comp_arr
                    in
                    bucket_by_value level_values (fun i -> i + 1)
                  end)
               climb
           in
           let keys =
             match per_level with
             | own :: _ -> List.map fst (Vmap.bindings own)
             | [] -> assert false
           in
           let entries =
             List.map
               (fun v ->
                  ( v,
                    Array.of_list
                      (List.map
                         (fun m -> Option.value (Vmap.find_opt v m) ~default:[||])
                         per_level) ))
               keys
           in
           Some
             ( c.Column.name,
               Climbing_index.build_sorted flash ~table:name
                 ~column:c.Column.name ~levels:climb entries )
         end)
      tbl.Schema.columns
  in
  let key_index =
    match climb with
    | [] -> assert false  (* climb_path always contains the table *)
    | [ _ ] -> None  (* schema root: nothing to climb to *)
    | _ :: ancestors ->
      let per_level =
        List.map
          (fun level ->
             let comp_arr = comp ~ancestor:level ~descendant:name in
             let buckets = Array.make data.n [] in
             Array.iteri
               (fun i tid -> buckets.(tid - 1) <- (i + 1) :: buckets.(tid - 1))
               comp_arr;
             Array.map Sorted_ids.of_unsorted buckets)
          ancestors
      in
      Some
        (Climbing_index.build_dense flash ~table:name ~count:data.n
           ~levels:ancestors (fun id ->
             Array.of_list (List.map (fun lists -> lists.(id - 1)) per_level)))
  in
  let stats =
    (tbl.Schema.key, Col_stats.of_values (Array.init data.n (fun i -> Value.Int (i + 1))))
    :: List.map
         (fun (cname, values) -> (cname, Col_stats.of_values values))
         data.columns
  in
  ( name,
    {
      Catalog.table = tbl;
      count = data.n;
      hidden_columns;
      key_index;
      attr_indexes;
      stats;
    } )

let assemble p ~skts ~entries =
  let public = Public_store.create p.schema p.rows in
  (* Loading happened in the secure setting: query-time accounting
     starts from a clean clock. *)
  Flash.reset_stats (Device.flash p.device);
  Flash.reset_stats (Device.scratch p.device);
  ( Catalog.
      {
        schema = p.schema;
        device = p.device;
        entries;
        skts;
        deltas = Hashtbl.create 4;
        tombstones = Hashtbl.create 4;
      },
    public )

let load ?device_config ?index_hidden_fks ~trace schema tables_with_rows =
  let p = prepare ?device_config ?index_hidden_fks ~trace schema tables_with_rows in
  let skts = build_skts p in
  let entries = List.map (build_entry p) (table_names p) in
  assemble p ~skts ~entries
