module Codec = Ghost_kernel.Codec
module Sorted_ids = Ghost_kernel.Sorted_ids
module Flash = Ghost_flash.Flash
module Page_cache = Ghost_device.Page_cache

type durability =
  | Plain
  | Checksummed

(* Same page header as Delta_log, under a tombstone-specific magic:
   magic (u32) | first_seq (u64) | count (u32) | crc32 (u32). *)
let magic = 0x47544D42  (* "GTMB" *)
let header_bytes = 20

type t = {
  flash : Flash.t;
  table : string;
  ids_per_page : int;
  durability : durability;
  cache : Page_cache.t option;
      (* invalidated when an append programs a recycled Flash page *)
  mutable full_pages : int list;  (* reversed *)
  mutable tail : int list;  (* reversed *)
  mutable tail_page : int option;
  mutable stale_tails : int list;  (* superseded tail programs, newest first *)
  mutable count : int;
  mutable dead_bytes : int;
  mutable needs_recovery : bool;
  mutable torn_page : int option;
  members : (int, unit) Hashtbl.t;
}

let create ?(durability = Plain) ?cache flash ~table =
  let page = (Flash.geometry flash).Flash.page_size in
  let usable =
    match durability with
    | Plain -> page
    | Checksummed -> page - header_bytes
  in
  if usable < 4 then invalid_arg "Tombstone_log.create: page too small";
  {
    flash;
    table;
    ids_per_page = usable / 4;
    durability;
    cache;
    full_pages = [];
    tail = [];
    tail_page = None;
    stale_tails = [];
    count = 0;
    dead_bytes = 0;
    needs_recovery = false;
    torn_page = None;
    members = Hashtbl.create 64;
  }

let table t = t.table
let count t = t.count
let size_bytes t = 4 * t.count
let dead_bytes t = t.dead_bytes
let durability t = t.durability
let needs_recovery t = t.needs_recovery
let mem t id = Hashtbl.mem t.members id

let payload_off t =
  match t.durability with Plain -> 0 | Checksummed -> header_bytes

(* Page image holding the ids of [tail] (stored oldest first). *)
let build_page t ~first_seq n =
  let off = payload_off t in
  let b = Bytes.create (off + (4 * n)) in
  List.iteri (fun i id -> Codec.put_u32 b (off + (4 * (n - 1 - i))) id) t.tail;
  (match t.durability with
   | Plain -> ()
   | Checksummed ->
     Codec.put_u32 b 0 magic;
     Codec.put_u64 b 4 first_seq;
     Codec.put_u32 b 12 n;
     let crc =
       Codec.crc32 b ~pos:0 ~len:16
       |> fun crc -> Codec.crc32 ~crc b ~pos:header_bytes ~len:(4 * n)
     in
     Codec.put_u32 b 16 crc);
  b

(* Checksummed read-back: validates magic, count and CRC; returns the
   first sequence number and the ids, oldest first. *)
let parse_page t page =
  match Flash.read_page t.flash page with
  | exception Invalid_argument _ -> None
  | b ->
    if Codec.get_u32 b 0 <> magic then None
    else begin
      let first_seq = Codec.get_u64 b 4 in
      let n = Codec.get_u32 b 12 in
      let stored_crc = Codec.get_u32 b 16 in
      if n < 1 || n > t.ids_per_page then None
      else begin
        let crc =
          Codec.crc32 b ~pos:0 ~len:16
          |> fun crc -> Codec.crc32 ~crc b ~pos:header_bytes ~len:(4 * n)
        in
        if crc <> stored_crc then None
        else
          Some
            (first_seq, List.init n (fun i -> Codec.get_u32 b (header_bytes + (4 * i))))
      end
    end

let program_tail t =
  let n = List.length t.tail in
  let first_seq = t.ids_per_page * List.length t.full_pages in
  let b = build_page t ~first_seq n in
  (match t.tail_page with
   | Some _ -> t.dead_bytes <- t.dead_bytes + (4 * (n - 1))
   | None -> ());
  match Flash.append t.flash b with
  | page ->
    (* The append may have recycled an erased page still resident in
       the shared cache. *)
    Option.iter (fun c -> Page_cache.invalidate c ~page) t.cache;
    (match t.tail_page with
     | Some old -> t.stale_tails <- old :: t.stale_tails
     | None -> ());
    if n = t.ids_per_page then begin
      t.full_pages <- page :: t.full_pages;
      t.tail <- [];
      t.tail_page <- None
    end
    else t.tail_page <- Some page
  | exception (Flash.Power_cut { page; _ } as e) ->
    t.needs_recovery <- true;
    t.torn_page <- Some page;
    raise e

let append t ids =
  if t.needs_recovery then
    invalid_arg "Tombstone_log.append: log needs recovery after a power cut";
  List.iter
    (fun id ->
       t.tail <- id :: t.tail;
       t.count <- t.count + 1;
       Hashtbl.replace t.members id ();
       program_tail t)
    ids

type recovery = {
  recovered : int;
  lost : int;
  torn_pages : int;
}

(* Same protocol as {!Delta_log.recover}: keep the longest
   checksum-valid, sequence-continuous prefix; rebuild the volatile
   membership table from it. *)
let recover t =
  (match t.durability with
   | Checksummed -> ()
   | Plain ->
     invalid_arg
       "Tombstone_log.recover: log is not checksummed (create ~durability:Checksummed)");
  let torn = ref (match t.torn_page with Some _ -> 1 | None -> 0) in
  let old_count = t.count in
  let durable_ids = ref [] in
  let rec verify_full acc n = function
    | [] -> (acc, n, true)
    | p :: rest ->
      (match parse_page t p with
       | Some (first_seq, ids)
         when first_seq = n * t.ids_per_page && List.length ids = t.ids_per_page ->
         durable_ids := List.rev_append ids !durable_ids;
         verify_full (p :: acc) (n + 1) rest
       | _ ->
         incr torn;
         (acc, n, false))
  in
  let full_rev, n_full, full_intact = verify_full [] 0 (List.rev t.full_pages) in
  let expected_seq = n_full * t.ids_per_page in
  let candidates =
    if not full_intact then []
    else (match t.tail_page with Some p -> [ p ] | None -> []) @ t.stale_tails
  in
  let rec pick = function
    | [] -> (None, [])
    | p :: rest ->
      (match parse_page t p with
       | Some (first_seq, ids) when first_seq = expected_seq -> (Some (p, ids), rest)
       | _ ->
         incr torn;
         pick rest)
  in
  let tail_winner, older = pick candidates in
  (match tail_winner with
   | Some (page, ids) ->
     t.tail <- List.rev ids;
     t.tail_page <- Some page;
     t.stale_tails <- older;
     t.count <- expected_seq + List.length ids;
     durable_ids := List.rev_append ids !durable_ids
   | None ->
     t.tail <- [];
     t.tail_page <- None;
     t.stale_tails <- [];
     t.count <- expected_seq);
  t.full_pages <- full_rev;
  Hashtbl.reset t.members;
  List.iter (fun id -> Hashtbl.replace t.members id ()) !durable_ids;
  t.needs_recovery <- false;
  t.torn_page <- None;
  { recovered = t.count; lost = old_count - t.count; torn_pages = !torn }

let load_sorted t =
  let acc = ref [] in
  let off = payload_off t in
  let read_page page n =
    let b = Flash.read t.flash ~page ~off ~len:(4 * n) in
    for i = 0 to n - 1 do
      acc := Codec.get_u32 b (4 * i) :: !acc
    done
  in
  List.iter (fun p -> read_page p t.ids_per_page) (List.rev t.full_pages);
  (match t.tail_page with
   | Some p -> read_page p (List.length t.tail)
   | None -> ());
  Sorted_ids.of_unsorted !acc
