module Schema = Ghost_relation.Schema
module Device = Ghost_device.Device
module Skt = Ghost_store.Skt
module Column_store = Ghost_store.Column_store
module Climbing_index = Ghost_store.Climbing_index

type table_entry = {
  table : Schema.table;
  count : int;
  hidden_columns : (string * Column_store.t) list;
  key_index : Climbing_index.t option;
  attr_indexes : (string * Climbing_index.t) list;
  stats : (string * Col_stats.t) list;
}

type t = {
  schema : Schema.t;
  device : Device.t;
  entries : (string * table_entry) list;
  skts : (string * Skt.t) list;
  deltas : (string, Delta_log.t) Hashtbl.t;
  tombstones : (string, Tombstone_log.t) Hashtbl.t;
}

let entry t name = List.assoc name t.entries
let table_count t name = (entry t name).count
let skt t name = List.assoc_opt name t.skts

let attr_index t ~table ~column =
  List.assoc_opt column (entry t table).attr_indexes

let key_index t name = (entry t name).key_index

let column_store t ~table ~column =
  List.assoc_opt column (entry t table).hidden_columns

let column_stats t ~table ~column = List.assoc column (entry t table).stats

let delta t name = Hashtbl.find_opt t.deltas name

let delta_count t name =
  match delta t name with
  | Some log -> Delta_log.count log
  | None -> 0

let total_count t name = table_count t name + delta_count t name

let tombstone t name = Hashtbl.find_opt t.tombstones name

let tombstone_count t name =
  match tombstone t name with
  | Some log -> Tombstone_log.count log
  | None -> 0

let live_count t name = total_count t name - tombstone_count t name

type storage_report = {
  base_bytes : int;
  skt_bytes : int;
  attr_index_bytes : int;
  key_index_bytes : int;
}

let storage t =
  let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l in
  {
    base_bytes =
      sum
        (fun (_, e) -> sum (fun (_, cs) -> Column_store.size_bytes cs) e.hidden_columns)
        t.entries;
    skt_bytes = sum (fun (_, s) -> Skt.size_bytes s) t.skts;
    attr_index_bytes =
      sum
        (fun (_, e) -> sum (fun (_, i) -> Climbing_index.size_bytes i) e.attr_indexes)
        t.entries;
    key_index_bytes =
      sum
        (fun (_, e) ->
           match e.key_index with
           | Some i -> Climbing_index.size_bytes i
           | None -> 0)
        t.entries;
  }

(* Every Flash page holding a query-time structure: SKT rows, hidden
   column stores, and climbing indexes (key + attribute). The delta /
   tombstone logs are excluded — they carry their own record CRCs in
   the durable format and are rewritten, not scrubbed, on
   reorganization. Sorted and deduplicated: the scrubber's and
   anti-entropy's canonical walk order. *)
let structure_pages t =
  let acc = List.concat_map (fun (_, s) -> Skt.pages s) t.skts in
  let acc =
    List.fold_left
      (fun acc (_, e) ->
         let acc =
           List.fold_left (fun acc (_, cs) -> Column_store.pages cs @ acc)
             acc e.hidden_columns
         in
         let acc =
           match e.key_index with
           | Some i -> Climbing_index.pages i @ acc
           | None -> acc
         in
         List.fold_left (fun acc (_, i) -> Climbing_index.pages i @ acc)
           acc e.attr_indexes)
      acc t.entries
  in
  List.sort_uniq compare acc

let pp_storage fmt r =
  Format.fprintf fmt
    "hidden base data %d B; SKTs %d B; climbing indexes %d B; key indexes %d B (total %d B)"
    r.base_bytes r.skt_bytes r.attr_index_bytes r.key_index_bytes
    (r.base_bytes + r.skt_bytes + r.attr_index_bytes + r.key_index_bytes)
