module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Device = Ghost_device.Device
module Trace = Ghost_device.Trace
module Public_store = Ghost_public.Public_store

(** Initial loading.

    The paper assumes the USB device is loaded in a secure setting
    (Section 2), so loading is host-side OCaml: it splits each table
    into its visible part (shipped to the {!Public_store}) and its
    hidden part (column stores written to the device Flash), replicates
    the dense primary keys, and precomputes every index structure —
    SKTs for all non-leaf tables, sorted climbing indexes on hidden
    attribute columns, dense key climbing indexes for all non-root
    tables — plus the statistics metadata.

    Flash statistics are reset after loading so that query-time
    accounting starts from zero; storage sizes remain available through
    {!Catalog.storage}. *)

exception Load_error of string

val load :
  ?device_config:Device.config ->
  ?index_hidden_fks:bool ->
  trace:Trace.t ->
  Schema.t ->
  (string * Relation.tuple list) list ->
  Catalog.t * Public_store.t
(** [index_hidden_fks] (default false) also builds sorted climbing
    indexes on hidden foreign-key columns. Raises {!Load_error} when a
    table is missing, keys are not dense 1..N, or a foreign key
    dangles. *)

(** {2 Phased loading}

    [load] decomposed into its build phases so that {!Reorg} can
    checkpoint between them while rebuilding the device image. Running
    [prepare], [build_skts], [build_entry] per table (in [table_names]
    order) and [assemble] issues exactly the same Flash programs, in
    the same order, as [load]. *)

type prepared
(** Host-side arrays validated and a device created; nothing
    programmed to Flash yet. *)

val prepare :
  ?device_config:Device.config ->
  ?index_hidden_fks:bool ->
  trace:Trace.t ->
  Schema.t ->
  (string * Relation.tuple list) list ->
  prepared
(** Same validation (and {!Load_error} conditions) as [load]. Performs
    no Flash programs, so the caller may still rewire the device — e.g.
    {!Ghost_flash.Flash.share_power} — before building. *)

val device : prepared -> Device.t
val table_names : prepared -> string list
(** Tables in build order ({!Schema.tables} order). *)

val build_skts : prepared -> (string * Ghost_store.Skt.t) list
(** Builds the SKTs of every non-leaf table onto the device Flash. *)

val build_entry : prepared -> string -> string * Catalog.table_entry
(** Builds one table's device structures (hidden column stores,
    climbing indexes, key index, statistics) onto the device Flash. *)

val assemble :
  prepared ->
  skts:(string * Ghost_store.Skt.t) list ->
  entries:(string * Catalog.table_entry) list ->
  Catalog.t * Public_store.t
(** Creates the public store, resets the Flash clocks (loading happens
    in the secure setting) and closes the catalog. *)
