module Relation = Ghost_relation.Relation
module Public_store = Ghost_public.Public_store

(** Offline reorganization (the secure-setting reload).

    This module deliberately remains alongside {!Reorg}: it is the
    shared *snapshot* primitive, not a competing implementation.
    {!Reorg} owns the journaled, crash-safe rebuild protocol
    (checkpoints, shadow device, roll-back/roll-forward) and calls
    {!snapshot} for its read pass; {!Ghost_db.reorganize} with durable
    logs off uses {!snapshot} directly for the legacy one-shot rebuild,
    which keeps that path bit-identical to the pre-journal seed and
    free of journal Flash traffic. Collapsing the two would force the
    non-durable path through journal machinery it must not touch.

    Reconstructs the database's current logical content — loaded rows,
    plus the insert delta, minus the tombstoned rows — by reading the
    hidden columns off the device (metered on the old device's clock)
    and the visible columns from the public store. Root ids are
    compacted to stay dense (tombstoned gaps close), so root keys
    change across a reorganization; dimension ids are stable. The
    caller reloads the snapshot through {!Loader.load} to obtain fresh
    SKTs, climbing indexes and empty logs. *)

val snapshot : Catalog.t -> Public_store.t -> (string * Relation.tuple list) list
(** Full rows per table, loader-ready (dense keys). Refuses to run
    (raises [Failure]) while a delta or tombstone log needs recovery
    after a power cut — run {!Ghost_db.recover} first, so the rebuilt
    database reflects exactly the acknowledged operations. *)
