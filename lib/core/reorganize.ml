module Value = Ghost_kernel.Value
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Column_store = Ghost_store.Column_store
module Public_store = Ghost_public.Public_store

let fail fmt = Printf.ksprintf failwith fmt

(* The full tuple of [id] in [table], combining device-resident hidden
   columns with the public store's visible columns. [delta_hidden]
   supplies the hidden values of delta rows (beyond the column
   stores). *)
let rebuild_rows cat public ~table ~ids ~new_key ~delta_hidden =
  let schema = cat.Catalog.schema in
  let tbl = Schema.find_table schema table in
  let entry = Catalog.entry cat table in
  let readers =
    List.map
      (fun (name, cs) -> (name, Column_store.open_reader cs))
      entry.Catalog.hidden_columns
  in
  let rows =
    List.map
      (fun id ->
         let values =
           List.map
             (fun (c : Column.t) ->
                if Column.is_hidden c then begin
                  if id <= entry.Catalog.count then
                    Column_store.get (List.assoc c.Column.name readers) id
                  else
                    match delta_hidden id c.Column.name with
                    | Some v -> v
                    | None -> fail "reorganize: no delta value for %s.%s" table c.Column.name
                end
                else begin
                  (* visible columns live in the public store *)
                  match
                    Public_store.lookup public ~table ~column:c.Column.name id
                  with
                  | Some v -> v
                  | None -> fail "reorganize: public store has no %s row %d" table id
                end)
             tbl.Schema.columns
         in
         Array.of_list (Value.Int (new_key id) :: values))
      ids
  in
  List.iter (fun (_, r) -> Column_store.close_reader r) readers;
  rows

let snapshot cat public =
  let schema = cat.Catalog.schema in
  let root = (Schema.root schema).Schema.name in
  (* Reorganizing from a log whose tail may be torn would bake phantom
     or missing records into the rebuilt database: recovery must run
     first. *)
  (match Catalog.delta cat root with
   | Some log when Delta_log.needs_recovery log ->
     fail "reorganize: delta log of %s needs recovery after a power cut" root
   | _ -> ());
  (match Catalog.tombstone cat root with
   | Some log when Tombstone_log.needs_recovery log ->
     fail "reorganize: tombstone log of %s needs recovery after a power cut" root
   | _ -> ());
  (* Hidden values of delta rows, by (id, column). *)
  let delta_values = Hashtbl.create 64 in
  (match Catalog.delta cat root with
   | None -> ()
   | Some log ->
     (* keyed by the record's own root id: under leveled runs
        compaction may have folded tombstoned records away, so scan
        position no longer equals id (on a flat log they coincide) *)
     Delta_log.scan log (fun r ->
       let id = r.Delta_log.ids.(0) in
       List.iter
         (fun (col, v) -> Hashtbl.replace delta_values (id, col) v)
         (Delta_log.hidden_assoc log r)));
  let delta_hidden id col = Hashtbl.find_opt delta_values (id, col) in
  List.map
    (fun (tbl : Schema.table) ->
       let table = tbl.Schema.name in
       if table = root then begin
         let total = Catalog.total_count cat root in
         let dead =
           match Catalog.tombstone cat root with
           | Some log -> fun id -> Tombstone_log.mem log id
           | None -> fun _ -> false
         in
         let live = List.filter (fun id -> not (dead id)) (List.init total (fun i -> i + 1)) in
         (* compact: live ids -> 1..n in order *)
         let mapping = Hashtbl.create (List.length live) in
         List.iteri (fun i id -> Hashtbl.replace mapping id (i + 1)) live;
         let new_key id = Hashtbl.find mapping id in
         (table, rebuild_rows cat public ~table ~ids:live ~new_key ~delta_hidden)
       end
       else begin
         let n = Catalog.table_count cat table in
         ( table,
           rebuild_rows cat public ~table
             ~ids:(List.init n (fun i -> i + 1))
             ~new_key:Fun.id ~delta_hidden )
       end)
    (Schema.tables schema)
