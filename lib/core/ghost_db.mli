module Value = Ghost_kernel.Value
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Device = Ghost_device.Device
module Trace = Ghost_device.Trace
module Bind = Ghost_sql.Bind
module Public_store = Ghost_public.Public_store
module Spy = Ghost_public.Spy

(** GhostDB: the public API.

    {[
      let db =
        Ghost_db.create ~ddl:"CREATE TABLE Visit (VisID INTEGER PRIMARY KEY, \
                              Date DATE, Purpose CHAR(20) HIDDEN, ...)" rows
      in
      let result = Ghost_db.query db "SELECT ... FROM ... WHERE ..." in
      List.iter print_row result.Exec.rows
    ]}

    Columns marked [HIDDEN] in the DDL live only on the (simulated)
    smart USB device; queries need no changes. [query] optimizes and
    executes; [plans] exposes the strategy panel for exploration, and
    [run_plan] executes a hand-built plan — the demo's phases 2
    and 3. *)

type t

val create :
  ?device_config:Device.config ->
  ?index_hidden_fks:bool ->
  ddl:string ->
  (string * Relation.tuple list) list ->
  t
(** Parses the DDL (with [HIDDEN] markers), splits the data between the
    public store and the device, and builds all on-device structures. *)

val of_schema :
  ?device_config:Device.config ->
  ?index_hidden_fks:bool ->
  Schema.t ->
  (string * Relation.tuple list) list ->
  t

val schema : t -> Schema.t
val catalog : t -> Catalog.t
val public : t -> Public_store.t
val device : t -> Device.t
val trace : t -> Trace.t

val set_metrics : t -> Ghost_metrics.Metrics.t option -> unit
(** Attaches (or detaches) an observability registry on the instance's
    device (see {!Device.set_metrics}): operator spans, scheduler
    slices, cache and trace counters, and cost-model calibration
    samples are recorded into it. Detached by default — recording never
    charges the simulated clock, and all outputs stay bit-identical to
    an instance without one. A rebuilt instance returned by
    {!reorganize} / {!recover} adopts the registry automatically. *)

val metrics : t -> Ghost_metrics.Metrics.t option

val flush_metrics : t -> unit
(** Publishes the device-global totals accumulated since the last flush
    into the registry ({!Device.flush_metrics}); call before exporting
    [metrics.json]. No-op without a registry. *)

val bind : t -> string -> Bind.query
(** Parse + resolve a SELECT against the schema. *)

val insert : t -> Relation.tuple list -> unit
(** Insert full tuples into the schema root (the fact table): visible
    columns go to the public store, hidden columns to the device's
    append-only delta log; queries see the new rows immediately. Keys
    must densely continue the existing ids and foreign keys must
    reference loaded dimension rows — see {!Insert}. *)

val delta_count : t -> int
(** Rows inserted since the load (pending offline reorganization). *)

val delete : t -> int list -> unit
(** Tombstone root tuples by id: queries stop seeing them immediately;
    Flash space is reclaimed by {!reorganize}. *)

val tombstone_count : t -> int

val compact : t -> unit
(** Eagerly drain pending delta-log compaction (see {!Compaction}): L0
    spills and run merges run to quiescence on the device clock. A
    no-op unless the device config enables [log_runs]. In production
    shape compaction runs incrementally in scheduler idle slices
    ({!Ghost_sched.Scheduler.set_compactor}); this is the synchronous
    entry point for tests and single-session callers. Raises [Failure]
    while a log {!needs_recovery} or during an interrupted
    reorganization. *)

val compaction_pending : t -> bool
(** Work left for {!compact}: the root delta log has an in-flight
    compaction unit, a full L0, or an over-fanout level. *)

val reorganize : t -> t
(** Offline reorganization (the secure-setting reload): reads the
    current logical state off the device and the public store, compacts
    root ids (tombstoned gaps close, so root keys change), rebuilds
    every index structure, and returns a fresh instance. The read cost
    is charged to the old device's clock. Refuses to run (raises
    [Failure]) while a log {!needs_recovery}.

    With [durable_logs] set the rebuild runs as a {e journaled shadow
    build} ({!Reorg}): each phase writes a checksummed checkpoint
    record to a reorg journal on the old device's Flash and a single
    commit record flips the live image. A power cut mid-rebuild raises
    {!Ghost_flash.Flash.Power_cut} and leaves the instance
    {!needs_recovery}: {!recover} then either rolls the rebuild
    forward from the last durable checkpoint or rolls back to the
    intact pre-reorg image. Without [durable_logs] the rebuild is the
    seed's one-shot path, bit-identical, journal-free. *)

(** {2 Crash recovery}

    With [durable_logs] set in the device config, the delta and
    tombstone logs use checksummed pages and survive a simulated power
    cut ([Flash.Power_cut] escaping from {!insert} or {!delete}): the
    interrupted operation is not acknowledged, and [recover] truncates
    the logs to exactly the acknowledged prefix. *)

type reorg_outcome =
  | Reorg_completed of {
      db : t;  (** the rebuilt instance — the reorganization's result *)
      phases_reused : int;
          (** phases skipped on resume, their checkpoints durable *)
      phases_redone : int;
          (** phases re-executed, their checkpoint (or build) torn *)
    }  (** rolled forward: resumed from the last durable checkpoint *)
  | Reorg_rolled_back of {
      journal_records : int;  (** journal records that had survived *)
    }
      (** rolled back: no durable (digest-valid) snapshot checkpoint,
          so the intact pre-reorg image stays live *)

type recovery_report = {
  delta_recovered : int;  (** delta records durable after recovery *)
  delta_lost : int;  (** volatile delta records dropped *)
  tombstones_recovered : int;
  tombstones_lost : int;
  delta_torn_pages : int;
      (** delta-log pages found torn or checksum-invalid *)
  tombstone_torn_pages : int;
      (** tombstone-log pages found torn or checksum-invalid *)
  reorg : reorg_outcome option;
      (** outcome of an interrupted reorganization, if one was pending *)
}

val needs_recovery : t -> bool
(** True after a power cut tore a log program or interrupted a
    journaled reorganization. The volatile state may still include
    unacknowledged work, so query results are untrusted — and
    {!insert}, {!delete}, {!reorganize} and {!save_image} refuse —
    until {!recover} is called. *)

val recover : t -> recovery_report
(** Runs the post-crash recovery protocol on every log that needs it
    (metered on the device clock), resolves an interrupted
    reorganization (roll forward or roll back — see {!reorg_outcome})
    and accounts the outcomes in the device's robustness counters
    ({!Device.fault_counters}). A power cut during a roll-forward
    resume raises {!Ghost_flash.Flash.Power_cut} again; the
    reorganization stays pending and the next [recover] picks it up
    from the checkpoints that survived. *)

val query :
  t -> ?exact_post:bool -> ?bloom_fpr:float -> ?oblivious:bool -> string ->
  Exec.result
(** Optimize and execute. [bloom_fpr] is the target false-positive
    rate for Post-filter Bloom filters; it must lie strictly between 0
    and 1 or the call raises [Invalid_argument] before touching the
    device.

    [oblivious] (default false) runs the query through the fixed-shape
    path ({!Planner.oblivious} + the [Full] executor): the spy-visible
    trace becomes a function of the schema and public bounds alone —
    two queries with the same visible part and the same public bounds
    produce byte-identical traces whatever their hidden constants.
    Rows returned are the real answer (dummy padding never leaves the
    trusted side); the overhead is reported in
    {!Exec.result.padding_bytes}. *)

val plans : t -> string -> (Plan.t * Cost.estimate) list
(** The candidate-plan panel, best first. *)

val run_plan :
  t -> ?exact_post:bool -> ?bloom_fpr:float -> ?oblivious:bool -> Plan.t ->
  Exec.result
(** Execute a specific plan (ad-hoc plans of the demo's game phase).
    Validates [bloom_fpr] exactly as {!query} does:
    [Invalid_argument] unless it lies strictly between 0 and 1.
    [oblivious] forces the plan to {!Plan.with_mode} [Full]; a plan
    already carrying a mode (e.g. [Pad]) runs under it unchanged. *)

val spy_report : t -> Spy.report
(** What a spy has observed since the last {!clear_trace}. *)

val access_profile : t -> fixed_shape:bool -> Privacy.access
(** The access-pattern side-channel profile to hand {!audit}:
    [page_bound] is the catalog's structure page count (the most pages
    a query-time walk can touch); [fixed_shape] asserts the executions
    being audited used the oblivious path. *)

val audit : ?access:Privacy.access -> t -> Privacy.verdict
val clear_trace : t -> unit

val storage : t -> Catalog.storage_report
(** Flash footprint of the hidden data and its indexes (E9). *)

(** {2 Device images}

    A GhostDB instance — simulated Flash content, catalog metadata,
    public store and trace — can be saved to disk and reopened later,
    standing for unplugging and re-plugging the USB device. *)

exception Image_error of string

val save_image : t -> string -> unit
(** Writes the instance to a file, atomically: the image (with a
    length header and a CRC-32 trailer over the marshalled payload) is
    written to [<path>.tmp] and renamed into place, so a failed save
    leaves the previous image — or no file — never a partial one.
    Raises [Failure] while a reorganization awaits {!recover}. *)

val load_image : string -> t
(** Reopens a saved instance. Raises {!Image_error} on a file that is
    not a GhostDB image or was written by an incompatible version,
    with distinct messages for a {e truncated} image (bytes missing)
    and a {e corrupted} one (checksum mismatch). The image format
    trusts its producer (it is a marshalled heap): only load images
    you saved. *)

val row_to_string : Value.t array -> string
