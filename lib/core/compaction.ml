module Device = Ghost_device.Device

type t = {
  cat : Catalog.t;
  max_pages : int;
  mutable spills : int;
  mutable merges : int;
  mutable pages_written : int;
  mutable records_dropped : int;
}

type progress = {
  spills : int;
  merges : int;
  pages_written : int;
  records_dropped : int;
}

let default_max_pages = 2

let create ?(max_pages = default_max_pages) cat =
  if max_pages <= 0 then invalid_arg "Compaction.create: max_pages <= 0";
  { cat; max_pages; spills = 0; merges = 0; pages_written = 0; records_dropped = 0 }

(* Tables with pending compaction, by name: deterministic slice order
   (only the schema root carries a delta log today, but the walk is
   general). *)
let pending_tables t =
  Hashtbl.fold
    (fun table log acc ->
       if Delta_log.compaction_pending log then (table, log) :: acc else acc)
    t.cat.Catalog.deltas []
  |> List.sort compare

let idle t = pending_tables t = []

let step t =
  match pending_tables t with
  | [] -> false
  | (table, log) :: _ ->
    let drop =
      match Catalog.tombstone t.cat table with
      | Some ts -> fun id -> Tombstone_log.mem ts id
      | None -> fun _ -> false
    in
    (match Delta_log.compact_step ~drop log ~max_pages:t.max_pages with
     | Delta_log.Idle -> false
     | Delta_log.Worked -> true
     | Delta_log.Installed i ->
       t.pages_written <- t.pages_written + i.Delta_log.inst_pages;
       t.records_dropped <- t.records_dropped + i.Delta_log.inst_dropped;
       let device = t.cat.Catalog.device in
       if i.Delta_log.inst_spill then begin
         t.spills <- t.spills + 1;
         Device.note_log_spill device ~pages:i.Delta_log.inst_pages
           ~records:i.Delta_log.inst_records ~dropped:i.Delta_log.inst_dropped
       end
       else begin
         t.merges <- t.merges + 1;
         Device.note_log_merge device ~pages:i.Delta_log.inst_pages
           ~records:i.Delta_log.inst_records ~dropped:i.Delta_log.inst_dropped
       end;
       true)

let run_pending t =
  while step t do
    ()
  done

let progress (t : t) =
  {
    spills = t.spills;
    merges = t.merges;
    pages_written = t.pages_written;
    records_dropped = t.records_dropped;
  }
