module Codec = Ghost_kernel.Codec
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device
module Trace = Ghost_device.Trace
module Public_store = Ghost_public.Public_store
module Metrics = Ghost_metrics.Metrics

(* Journal record, one Flash page each:

     magic   u32   "GRJN"
     seq     u32   0, 1, 2, ... within one reorganization
     kind    u8    0 = begin, 1 = checkpoint, 2 = commit, 3 = abort
     phase   u32   begin: phase count; checkpoint: phase index;
                   commit / abort: phases completed
     digest  u32   checkpoint 0: CRC-32 of the marshalled snapshot
                   (validates reusing the in-memory rows on resume)
     name    string16
     crc     u32   CRC-32 of everything above

   The records live on the old device's main Flash among the live
   data; like the crash-safe log pages, a torn or corrupted record is
   detected by its checksum and truncates the journal there. *)

let magic = 0x47524A4E (* "GRJN" *)

type kind = Begin | Checkpoint | Commit | Abort

let kind_code = function Begin -> 0 | Checkpoint -> 1 | Commit -> 2 | Abort -> 3

let kind_of_code = function
  | 0 -> Some Begin
  | 1 -> Some Checkpoint
  | 2 -> Some Commit
  | 3 -> Some Abort
  | _ -> None

type record = {
  seq : int;
  kind : kind;
  phase : int;
  digest : int;
  name : string;
}

let encode_record r =
  let b = Buffer.create 64 in
  let hdr = Bytes.create 17 in
  Codec.put_u32 hdr 0 magic;
  Codec.put_u32 hdr 4 r.seq;
  Bytes.set hdr 8 (Char.chr (kind_code r.kind));
  Codec.put_u32 hdr 9 r.phase;
  Codec.put_u32 hdr 13 r.digest;
  Buffer.add_bytes b hdr;
  Codec.put_string16 b r.name;
  let body = Buffer.to_bytes b in
  let len = Bytes.length body in
  let out = Bytes.create (len + 4) in
  Bytes.blit body 0 out 0 len;
  Codec.put_u32 out len (Codec.crc32 body ~pos:0 ~len);
  out

let decode_record page_bytes =
  try
    if Codec.get_u32 page_bytes 0 <> magic then None
    else begin
      let seq = Codec.get_u32 page_bytes 4 in
      match kind_of_code (Char.code (Bytes.get page_bytes 8)) with
      | None -> None
      | Some kind ->
        let phase = Codec.get_u32 page_bytes 9 in
        let digest = Codec.get_u32 page_bytes 13 in
        let name, off = Codec.get_string16 page_bytes 17 in
        if off + 4 > Bytes.length page_bytes then None
        else if
          Codec.get_u32 page_bytes off <> Codec.crc32 page_bytes ~pos:0 ~len:off
        then None
        else Some { seq; kind; phase; digest; name }
    end
  with Invalid_argument _ -> None

(* Phases, in execution order. Table phases follow {!Loader.table_names}
   order (= {!Schema.tables} order), so a resumed build issues the same
   programs the uninterrupted build would. *)
type phase = Snapshot | Skts | Table of string

let phase_name = function
  | Snapshot -> "snapshot"
  | Skts -> "skts"
  | Table t -> "table:" ^ t

type progress = {
  old_catalog : Catalog.t;
  old_public : Public_store.t;
  phases : phase array;
  (* Journal state (validated against Flash by {!revalidate}). *)
  mutable seq : int;  (* next record sequence number *)
  mutable pages : int list;  (* journal pages, append order *)
  mutable done_ : int;  (* phases 0 .. done_-1 durably checkpointed *)
  mutable committed : bool;
  mutable aborted : bool;
  (* Phase outputs — volatile hints, truncated by {!revalidate}. *)
  mutable snapshot_rows : (string * Relation.tuple list) list option;
  mutable prep : Loader.prepared option;
  mutable new_trace : Trace.t option;
  mutable skts : (string * Ghost_store.Skt.t) list;
  mutable entries : (string * Catalog.table_entry) list;  (* phase order *)
  (* Resume accounting. *)
  mutable started : int;  (* highest phase index ever entered + 1 *)
  mutable prev_started : int;  (* [started] as of the last crash *)
  mutable reused : int;
  mutable redone : int;
  mutable crashed : bool;
}

let old_device p = p.old_catalog.Catalog.device
let old_flash p = Device.flash (old_device p)

let create catalog public =
  let tables =
    List.map
      (fun (tbl : Schema.table) -> Table tbl.Schema.name)
      (Schema.tables catalog.Catalog.schema)
  in
  {
    old_catalog = catalog;
    old_public = public;
    phases = Array.of_list (Snapshot :: Skts :: tables);
    seq = 0;
    pages = [];
    done_ = 0;
    committed = false;
    aborted = false;
    snapshot_rows = None;
    prep = None;
    new_trace = None;
    skts = [];
    entries = [];
    started = 0;
    prev_started = 0;
    reused = 0;
    redone = 0;
    crashed = false;
  }

let phase_count p = Array.length p.phases
let phases_reused p = p.reused
let phases_redone p = p.redone
let journal_pages p = List.length p.pages

let append_record p ~kind ~phase ~digest ~name =
  let bytes = encode_record { seq = p.seq; kind; phase; digest; name } in
  (* A power cut here tears the record: it is never added to the page
     hints, and its checksum would fail revalidation anyway. *)
  let page = Flash.append (old_flash p) bytes in
  p.seq <- p.seq + 1;
  p.pages <- p.pages @ [ page ]

let digest_rows rows =
  let s =
    Marshal.to_string (rows : (string * Relation.tuple list) list)
      [ Marshal.No_sharing ]
  in
  Codec.crc32 (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let checkpoint p i ~digest =
  append_record p ~kind:Checkpoint ~phase:i ~digest
    ~name:(phase_name p.phases.(i));
  p.done_ <- i + 1;
  Device.note_reorg_checkpoint (old_device p);
  Device.emit_reorg_progress (old_device p) ~phase:(i + 1)
    ~phases:(phase_count p)

let ensure_prep p =
  match p.prep with
  | Some prep -> prep
  | None ->
    let rows =
      match p.snapshot_rows with
      | Some rows -> rows
      | None -> invalid_arg "Reorg: prepare before snapshot"
    in
    let trace = Trace.create () in
    let prep =
      Loader.prepare
        ~device_config:(Device.config (old_device p))
        ~trace p.old_catalog.Catalog.schema rows
    in
    (* One physical power supply: a cut armed on the old device counts
       the shadow build's programs too. Must happen before the first
       build program — [Loader.prepare] issues none. *)
    Flash.share_power (Device.flash (Loader.device prep)) ~with_:(old_flash p);
    Flash.share_power (Device.scratch (Loader.device prep)) ~with_:(old_flash p);
    p.prep <- Some prep;
    p.new_trace <- Some trace;
    prep

let run_phase p i =
  if i < p.prev_started then p.redone <- p.redone + 1;
  p.started <- max p.started (i + 1);
  let m = Device.metrics (old_device p) in
  let ts =
    match m with None -> 0. | Some _ -> Device.elapsed_us (old_device p)
  in
  (match p.phases.(i) with
   | Snapshot ->
     (* Redoing the snapshot invalidates everything derived from an
        older one. *)
     p.prep <- None;
     p.new_trace <- None;
     p.skts <- [];
     p.entries <- [];
     let rows = Reorganize.snapshot p.old_catalog p.old_public in
     p.snapshot_rows <- Some rows;
     checkpoint p i ~digest:(digest_rows rows)
   | Skts ->
     p.skts <- Loader.build_skts (ensure_prep p);
     checkpoint p i ~digest:0
   | Table name ->
     let entry = Loader.build_entry (ensure_prep p) name in
     (* Replace a stale copy left by a torn checkpoint of this very
        phase, keeping phase order. *)
     p.entries <- List.filter (fun (n, _) -> n <> name) p.entries @ [ entry ];
     checkpoint p i ~digest:0);
  match m with
  | None -> ()
  | Some reg ->
    (* Phase spans run on the old card's global clock: the shadow
       build's programs share its power line and its timeline. *)
    let dur = Device.elapsed_us (old_device p) -. ts in
    Metrics.incr reg "reorg.phases";
    Metrics.observe reg "reorg.phase.us" dur;
    Metrics.span reg
      ~name:("reorg:" ^ phase_name p.phases.(i))
      ~cat:"reorg" ~pid:1 ~tid:0 ~ts ~dur ()

let advance p =
  if p.aborted then invalid_arg "Reorg.advance: aborted reorganization";
  if p.seq = 0 then
    append_record p ~kind:Begin ~phase:(phase_count p) ~digest:0 ~name:"begin";
  for i = p.done_ to phase_count p - 1 do
    run_phase p i
  done;
  if not p.committed then begin
    append_record p ~kind:Commit ~phase:p.done_ ~digest:0 ~name:"commit";
    p.committed <- true
  end;
  (* Everything past the commit record is deterministic host-side
     assembly: no further programs, so a power cut cannot land here. *)
  let prep = ensure_prep p in
  let catalog, public = Loader.assemble prep ~skts:p.skts ~entries:p.entries in
  (* The old device (and its Flash content) is being abandoned: drop
     every resident frame so nothing stale can be served if the caller
     keeps using the old handle. The new device builds its own cache. *)
  Option.iter Ghost_device.Page_cache.clear (Device.page_cache (old_device p));
  (catalog, public, Option.get p.new_trace)

let note_crash p = p.crashed <- true

let phase_index p name =
  let rec find i =
    if i >= phase_count p then max_int
    else if phase_name p.phases.(i) = name then i
    else find (i + 1)
  in
  find 0

let revalidate p =
  let flash = old_flash p in
  (* Longest checksum-valid, sequence-continuous record prefix — the
     page hints are volatile; only what reads back intact counts. *)
  let rec scan pages seq acc =
    match pages with
    | [] -> List.rev acc
    | pg :: rest ->
      (match decode_record (Flash.read_page flash pg) with
       | Some r when r.seq = seq && (seq > 0 || r.kind = Begin) ->
         scan rest (seq + 1) ((pg, r) :: acc)
       | Some _ | None -> List.rev acc)
  in
  let valid = scan p.pages 0 [] in
  p.pages <- List.map fst valid;
  p.seq <- List.length valid;
  let records = List.map snd valid in
  p.committed <- List.exists (fun r -> r.kind = Commit) records;
  p.aborted <- List.exists (fun r -> r.kind = Abort) records;
  let checkpoint_of i =
    List.find_opt (fun r -> r.kind = Checkpoint && r.phase = i) records
  in
  let rec durable i = if checkpoint_of i = None then i else durable (i + 1) in
  let done_ = durable 0 in
  (* Rolling forward reuses the in-memory snapshot; it is only a hint,
     so it must match the digest its checkpoint record committed to. *)
  let done_ =
    if done_ = 0 then 0
    else
      match p.snapshot_rows, checkpoint_of 0 with
      | Some rows, Some r when digest_rows rows = r.digest -> done_
      | _ -> 0
  in
  if done_ = 0 then begin
    p.snapshot_rows <- None;
    p.prep <- None;
    p.new_trace <- None
  end;
  if done_ < phase_index p "skts" + 1 then p.skts <- [];
  p.entries <-
    List.filter (fun (n, _) -> phase_index p ("table:" ^ n) < done_) p.entries;
  p.done_ <- done_;
  p.reused <- done_;
  p.redone <- 0;
  p.prev_started <- p.started;
  p.crashed <- false

let can_roll_forward p =
  (not p.aborted) && p.done_ >= 1 && p.snapshot_rows <> None

let abort p =
  append_record p ~kind:Abort ~phase:p.done_ ~digest:0 ~name:"abort";
  p.aborted <- true
