module Value = Ghost_kernel.Value
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Predicate = Ghost_relation.Predicate
module Bind = Ghost_sql.Bind
module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device
module Wire = Ghost_device.Device.Wire
module Bloom = Ghost_bloom.Bloom
module Oblivious = Ghost_oblivious.Oblivious

type estimate = {
  est_time_us : float;
  est_candidates : int;
  est_results : int;
  est_ram_bytes : int;
  est_usb_bytes : int;
  breakdown : (string * float) list;
}

let chunk = 256.
let avg_varint_bytes = 1.5
let locator_bytes = 16.

type env = {
  cat : Catalog.t;
  cfg : Device.config;
  fc : Flash.cost;
  plan : Plan.t;
  cache_hit : float;
      (* estimated page-cache hit ratio on the main Flash region; 0.
         without a cache *)
  mutable parts : (string * float) list;
  mutable usb_bytes : int;
  mutable ram_bytes : int;
}

let add env label us = env.parts <- (label, us) :: env.parts

(* Time to stream [bytes] through [chunk]-byte reads off the scratch
   region, which the page cache never fronts. *)
let scratch_read_us env bytes =
  if bytes <= 0. then 0.
  else
    let chunks = Float.max 1. (Float.round (bytes /. chunk)) in
    (chunks *. env.fc.Flash.read_seek_us) +. (bytes *. env.fc.Flash.read_byte_us)

(* Time to stream [bytes] off the main Flash region: cache hits are
   free, so the expected cost is the miss fraction of the uncached
   stream. *)
let read_stream_us env bytes = (1. -. env.cache_hit) *. scratch_read_us env bytes

(* One small random read (locator, directory entry, SKT row...) off the
   main region. With a cache a hit is free and a miss fills a whole
   frame — the expected cost can exceed the uncached partial read when
   the hit ratio is poor, which is exactly the regime where a tiny
   cache loses. *)
let point_read_us env bytes =
  if env.cache_hit > 0. then
    let page = Float.of_int env.cfg.Device.flash_geometry.Flash.page_size in
    (1. -. env.cache_hit)
    *. (env.fc.Flash.read_seek_us +. (page *. env.fc.Flash.read_byte_us))
  else env.fc.Flash.read_seek_us +. (bytes *. env.fc.Flash.read_byte_us)

let write_stream_us env bytes =
  if bytes <= 0. then 0.
  else
    let page = Float.of_int env.cfg.Device.flash_geometry.Flash.page_size in
    let pages = Float.max 1. (ceil (bytes /. page)) in
    (pages *. env.fc.Flash.program_seek_us) +. (bytes *. env.fc.Flash.program_byte_us)

let usb_us env bytes =
  env.usb_bytes <- env.usb_bytes + int_of_float bytes;
  env.cfg.Device.usb_per_message_us
  +. (bytes *. 8. /. env.cfg.Device.usb_mbit_per_s)

let cpu_us env ops = ops /. env.cfg.Device.cpu_mips

(* Per-encoding USB byte predictions: the formulas live next to the
   wire-format definition, the [population] (table cardinality the
   shipped subset was drawn from) fixes the expected varint-delta
   width. Under the default [Verbose] these are exactly the seed's
   fixed-width sizes. Padded modes bypass the wire encoder with
   fixed-width frames rounded up to their public bound, and the model
   follows suit. *)
let ship_bytes env ~n_t m =
  match env.plan.Plan.oblivious with
  | Oblivious.Off ->
    Wire.est_id_list_bytes env.cfg.Device.wire_format
      ~population:(Float.of_int n_t) m
  | Oblivious.Pad ->
    let n = min n_t (int_of_float (ceil m)) in
    4. *. Float.of_int (Oblivious.pad_count ~bound:n_t (max 0 n))
  | Oblivious.Full -> 4. *. Float.of_int n_t

let stream_bytes env ~n_t ~tys n =
  match env.plan.Plan.oblivious with
  | Oblivious.Off ->
    Wire.est_value_stream_bytes env.cfg.Device.wire_format
      ~population:(Float.of_int n_t) ~tys n
  | (Oblivious.Pad | Oblivious.Full) as m ->
    let width =
      List.fold_left
        (fun acc ty -> acc +. Float.of_int (4 + Value.ty_width ty))
        0. tys
    in
    let count =
      match m with
      | Oblivious.Pad ->
        Oblivious.pad_count ~bound:n_t (max 0 (min n_t (int_of_float (ceil n))))
      | Oblivious.Off | Oblivious.Full -> n_t
    in
    width *. Float.of_int count

let sel env (p : Predicate.t) =
  Col_stats.selectivity
    (Catalog.column_stats env.cat ~table:p.Predicate.table ~column:p.Predicate.column)
    p.Predicate.cmp

(* live rows: loaded + inserted - tombstoned, so estimates track the
   logical state between reorganizations *)
let count env table = max 1 (Catalog.live_count env.cat table)

(* Hierarchical-merge overhead: the extra scratch passes unioning [k]
   lists totaling [bytes] needs beyond the final streaming pass. *)
let merge_passes_us env ~k ~bytes =
  let fan = Float.max 2. (Float.of_int env.cfg.Device.ram_budget /. 2. /. chunk) in
  if Float.of_int k <= fan then cpu_us env (Float.of_int k *. 10.)
  else begin
    let passes = ceil (log (Float.of_int k) /. log fan) -. 1. in
    (passes *. (scratch_read_us env bytes +. write_stream_us env bytes))
    +. cpu_us env (bytes /. avg_varint_bytes *. 5.)
  end

(* Traversing one hidden predicate's climbing index at [level]:
   directory binary search + list bytes. *)
let hidden_index_us env ~table (p : Predicate.t) ~level_count =
  let stats = Catalog.column_stats env.cat ~table ~column:p.Predicate.column in
  let distinct = Float.of_int (max 1 (Col_stats.distinct stats)) in
  let s = sel env p in
  let dir_probes = Float.max 1. (log distinct /. log 2.) in
  let list_bytes = s *. Float.of_int level_count *. avg_varint_bytes in
  let matched_values = Float.max 1. (s *. distinct) in
  point_read_us env 40. *. dir_probes
  +. read_stream_us env list_bytes
  +. merge_passes_us env ~k:(int_of_float matched_values) ~bytes:list_bytes

(* Climbing [m] T-ids to the root: per-id locator chunk read + per-id
   list chunk read(s) + hierarchical merge passes. The executor reads
   through [chunk]-byte buffers, so each id costs at least two chunk
   reads even when its list is tiny. *)
let climb_us env ~table m =
  ignore locator_bytes;
  if table = env.plan.Plan.root || m <= 0. then 0.
  else begin
    let fanout =
      Float.of_int (count env env.plan.Plan.root) /. Float.of_int (count env table)
    in
    let list_bytes = m *. fanout *. avg_varint_bytes in
    let chunk_read = point_read_us env chunk in
    (m *. chunk_read)
    +. Float.max (m *. chunk_read) (read_stream_us env list_bytes)
    +. merge_passes_us env ~k:(int_of_float m) ~bytes:list_bytes
  end

(* SKT probing: candidates share the reader's window when they are
   dense, so the number of Flash reads is the number of windows
   touched, not the number of candidates. *)
let skt_access_us env ~n_root ~candidates ~row_bytes =
  if candidates <= 0. || row_bytes <= 0. then 0.
  else begin
    let window = 64. in
    let rows_per_window = Float.max 1. (window /. row_bytes) in
    let n_windows = Float.of_int n_root /. rows_per_window in
    let density = Float.min 1. (candidates /. Float.of_int n_root) in
    let touched =
      Float.min candidates
        (n_windows *. (1. -. Float.pow (1. -. density) rows_per_window))
    in
    touched *. point_read_us env window
  end

let visible_sel env preds = List.fold_left (fun acc p -> acc *. sel env p) 1. preds

(* Public bound of the result cardinality: the live root count, capped
   by the query's LIMIT (which rides in the spy-visible query text). *)
let emit_bound env =
  let live = count env env.plan.Plan.root in
  match env.plan.Plan.query.Bind.limit with
  | Some l -> max 0 (min l live)
  | None -> live

(* Merge-on-read charge for the delta log under leveled runs: the read
   amplification is the run pages surviving fence skipping plus the
   (bounded) L0 pages, at scratch speed — run pages are recycled
   constantly, so the cache never fronts them — plus the executor's 5
   CPU ops per record scanned. [fraction] is the expected share of run
   pages a fenced scan touches (1 for an unfenced or oblivious scan).
   Zero — no term, no label — on a flat log, so the seed's estimates
   stay bit-identical. *)
let delta_scan_us env ~fraction =
  match Catalog.delta env.cat env.plan.Plan.root with
  | None -> 0.
  | Some log when not (Delta_log.runs_enabled log) -> 0.
  | Some log ->
    let page = Float.of_int env.cfg.Device.flash_geometry.Flash.page_size in
    let run_pages = Float.of_int (Delta_log.run_pages log) in
    let l0_pages = Float.of_int (Delta_log.l0_pages log) in
    let touched = (fraction *. run_pages) +. l0_pages in
    let total = run_pages +. l0_pages in
    let share = if total <= 0. then 0. else touched /. total in
    scratch_read_us env (touched *. page)
    +. cpu_us env (5. *. share *. Float.of_int (Delta_log.physical_records log))

(* Bytes the query-time point-read paths keep going back to: index
   directories (binary searches revisit the top levels constantly),
   SKT rows and hidden column stores. The list blobs are streamed once
   and excluded. *)
let cache_working_set cat =
  let dir i = Ghost_store.Climbing_index.directory_bytes i in
  List.fold_left
    (fun acc (_, (e : Catalog.table_entry)) ->
       acc
       + (match e.Catalog.key_index with Some i -> dir i | None -> 0)
       + List.fold_left (fun a (_, i) -> a + dir i) 0 e.Catalog.attr_indexes
       + List.fold_left
           (fun a (_, cs) -> a + Ghost_store.Column_store.size_bytes cs)
           0 e.Catalog.hidden_columns)
    0 cat.Catalog.entries
  + List.fold_left (fun a (_, s) -> a + Ghost_store.Skt.size_bytes s) 0 cat.Catalog.skts

(* Expected hit ratio of a [frames]-frame cache over that working set —
   the fraction of hot bytes resident at steady state, capped below 1
   because cold misses and log-append invalidations never vanish. *)
let hit_ratio cat (cfg : Device.config) =
  if cfg.Device.page_cache_frames <= 0 then 0.
  else begin
    let page = cfg.Device.flash_geometry.Flash.page_size in
    let ws = max page (cache_working_set cat) in
    Float.min 0.95
      (Float.of_int (cfg.Device.page_cache_frames * page) /. Float.of_int ws)
  end

(* Fixed-shape estimate ([Plan.oblivious = Full]): mirrors the
   oblivious executor stage by stage instead of scaling by
   selectivities — by construction its cost is a function of the
   schema and public bounds alone, so nothing here consults a
   predicate's selectivity except to predict [est_results]. *)
let estimate_full env =
  let plan = env.plan in
  let cat = env.cat in
  let root = plan.Plan.root in
  let n_root = count env root in
  let schema = cat.Catalog.schema in
  let time = ref 0. in
  let spend label us =
    add env label us;
    time := !time +. us
  in
  (* one full-cardinality frame per visible predicate *)
  List.iter
    (fun (g : Plan.group) ->
       let t = g.Plan.g_table in
       let n_t = count env t in
       List.iter
         (fun (_ : Predicate.t) ->
            spend
              (Printf.sprintf "ship-pad(%s)" t)
              (usb_us env (4. *. Float.of_int n_t)
               +. cpu_us env (Float.of_int n_t)))
         g.Plan.g_visible)
    plan.Plan.groups;
  (* bound-depth SKT scan: every loaded root row, sequentially *)
  let skt_row_bytes =
    match Catalog.skt cat root with
    | Some skt -> Float.of_int (Ghost_store.Skt.row_width skt)
    | None -> 0.
  in
  spend "bound-scan"
    (read_stream_us env (Float.of_int n_root *. skt_row_bytes)
     +. cpu_us env (Float.of_int n_root *. 3.));
  (* the delta log is scanned whole — runs and L0, never fenced — on
     the oblivious path *)
  let ds = delta_scan_us env ~fraction:1. in
  if ds > 0. then spend "delta-scan" ds;
  (* every hidden predicate checked on every candidate *)
  List.iter
    (fun (g : Plan.group) ->
       List.iter
         (fun (h : Plan.hidden_pred) ->
            let tbl = Schema.find_table schema g.Plan.g_table in
            let col = Schema.find_column tbl h.Plan.h_pred.Predicate.column in
            spend
              (Printf.sprintf "check-all(%s.%s)" g.Plan.g_table
                 h.Plan.h_pred.Predicate.column)
              (Float.of_int n_root
               *. point_read_us env (Float.of_int (Value.ty_width col.Column.ty))))
         g.Plan.g_hidden)
    plan.Plan.groups;
  (* full-column projection streams, joined against all rows *)
  let projected_visible =
    List.filter_map
      (fun (table, column) ->
         let tbl = Schema.find_table schema table in
         if column = tbl.Schema.key then None
         else begin
           let col = Schema.find_column tbl column in
           if Column.is_hidden col then None
           else Some (table, column, col.Column.ty)
         end)
      plan.Plan.query.Bind.projections
    |> List.sort_uniq compare
  in
  let tables =
    List.sort_uniq String.compare (List.map (fun (t, _, _) -> t) projected_visible)
  in
  List.iter
    (fun table ->
       let n_t = count env table in
       let cols = List.filter (fun (t, _, _) -> t = table) projected_visible in
       let tys = List.map (fun (_, _, ty) -> ty) cols in
       spend
         (Printf.sprintf "stream-full(%s)" table)
         (usb_us env (stream_bytes env ~n_t ~tys (Float.of_int n_t)));
       spend
         (Printf.sprintf "join-hash(%s)" table)
         (cpu_us env ((Float.of_int n_t +. Float.of_int n_root) *. 4.)))
    tables;
  (* hidden projections read for every row, live or dead *)
  List.iter
    (fun (table, column) ->
       let tbl = Schema.find_table schema table in
       if column <> tbl.Schema.key then begin
         let col = Schema.find_column tbl column in
         if Column.is_hidden col then
           spend
             (Printf.sprintf "fetch-all(%s.%s)" table column)
             (Float.of_int n_root
              *. point_read_us env (Float.of_int (Value.ty_width col.Column.ty)))
       end)
    plan.Plan.query.Bind.projections;
  (* emission padded to the public bound *)
  let bound = emit_bound env in
  spend "emit-pad" (usb_us env (Float.of_int bound *. 16.));
  let all_sel =
    List.fold_left
      (fun acc (g : Plan.group) ->
         acc
         *. List.fold_left
              (fun a (h : Plan.hidden_pred) -> a *. sel env h.Plan.h_pred)
              1. g.Plan.g_hidden
         *. visible_sel env g.Plan.g_visible)
      1. plan.Plan.groups
  in
  {
    est_time_us = !time;
    est_candidates = n_root;
    est_results = int_of_float (Float.round (Float.of_int n_root *. all_sel));
    est_ram_bytes = env.ram_bytes;
    est_usb_bytes = env.usb_bytes;
    breakdown = List.rev env.parts;
  }

let estimate cat (plan : Plan.t) =
  let cfg = Device.config cat.Catalog.device in
  let env =
    {
      cat;
      cfg;
      fc = cfg.Device.flash_cost;
      plan;
      cache_hit = hit_ratio cat cfg;
      parts = [];
      usb_bytes = 0;
      ram_bytes = 0;
    }
  in
  if plan.Plan.oblivious = Oblivious.Full then estimate_full env
  else begin
  let root = plan.Plan.root in
  let n_root = count env root in
  let schema = cat.Catalog.schema in
  let time = ref 0. in
  let spend label us =
    add env label us;
    time := !time +. us
  in
  (* selectivity applied before SKT access (pre-filters) *)
  let pre_sel = ref 1. in
  (* selectivity of post filters (applied after SKT access) *)
  let post_sel = ref 1. in
  List.iter
    (fun (g : Plan.group) ->
       let t = g.Plan.g_table in
       let n_t = count env t in
       let vis_sel = visible_sel env g.Plan.g_visible in
       let indexed, checked =
         List.partition
           (fun (h : Plan.hidden_pred) -> h.Plan.h_strategy = Plan.H_index)
           g.Plan.g_hidden
       in
       let hidden_index_sel =
         List.fold_left (fun acc h -> acc *. sel env h.Plan.h_pred) 1. indexed
       in
       let hidden_check_sel =
         List.fold_left (fun acc h -> acc *. sel env h.Plan.h_pred) 1. checked
       in
       post_sel := !post_sel *. hidden_check_sel;
       (* hidden checks: per surviving candidate, later *)
       let strategy = g.Plan.g_visible_strategy in
       let cross_pre =
         strategy = Plan.V_cross_pre
         && g.Plan.g_visible <> []
         && (indexed <> [] || g.Plan.g_borrowed <> [])
       in
       (* deep cross: borrowed descendant lists read at this table's
          level, shrinking the climbed set *)
       let borrowed_sel =
         List.fold_left (fun acc (_, p) -> acc *. sel env p) 1. g.Plan.g_borrowed
       in
       if cross_pre then
         List.iter
           (fun (d, p) ->
              spend
                (Printf.sprintf "borrow(%s.%s@%s)" d p.Predicate.column t)
                (hidden_index_us env ~table:d p ~level_count:n_t))
           g.Plan.g_borrowed;
       (* hidden index traversals *)
       List.iter
         (fun (h : Plan.hidden_pred) ->
            let level_count = if cross_pre then n_t else n_root in
            spend
              (Printf.sprintf "index(%s.%s)" t h.Plan.h_pred.Predicate.column)
              (hidden_index_us env ~table:t h.Plan.h_pred ~level_count))
         indexed;
       (match g.Plan.g_visible, strategy with
        | [], _ ->
          if indexed <> [] then pre_sel := !pre_sel *. hidden_index_sel
        | preds, (Plan.V_pre | Plan.V_cross_pre) ->
          let m_vis = vis_sel *. Float.of_int n_t in
          spend (Printf.sprintf "ship(%s)" t) (usb_us env (ship_bytes env ~n_t m_vis));
          let m_climbed =
            if cross_pre then m_vis *. hidden_index_sel *. borrowed_sel else m_vis
          in
          spend (Printf.sprintf "climb(%s)" t) (climb_us env ~table:t m_climbed);
          ignore preds;
          pre_sel := !pre_sel *. vis_sel *. hidden_index_sel
        | _, (Plan.V_post | Plan.V_cross_post) ->
          let m_vis = vis_sel *. Float.of_int n_t in
          spend (Printf.sprintf "ship(%s)" t) (usb_us env (ship_bytes env ~n_t m_vis));
          let m_bloom =
            if strategy = Plan.V_cross_post && indexed <> [] then begin
              (* reading the hidden T-level lists for the cross *)
              List.iter
                (fun (h : Plan.hidden_pred) ->
                   spend
                     (Printf.sprintf "cross-index(%s.%s)" t h.Plan.h_pred.Predicate.column)
                     (hidden_index_us env ~table:t h.Plan.h_pred ~level_count:n_t))
                indexed;
              m_vis *. hidden_index_sel
            end
            else m_vis
          in
          let ideal_bytes =
            Float.of_int (Bloom.bits_for_fpr ~n:(max 1 (int_of_float m_bloom)) ~fpr:0.01)
            /. 8.
          in
          let bloom_bytes = Float.min ideal_bytes (Float.of_int cfg.Device.ram_budget /. 4.) in
          env.ram_bytes <- env.ram_bytes + int_of_float bloom_bytes;
          spend (Printf.sprintf "bloom-build(%s)" t) (cpu_us env (m_bloom *. 8.));
          pre_sel := !pre_sel *. hidden_index_sel;
          post_sel := !post_sel *. vis_sel))
    plan.Plan.groups;
  let candidates = Float.of_int n_root *. !pre_sel in
  (* SKT access for every candidate *)
  let skt_row_bytes =
    match Catalog.skt cat root with
    | Some skt -> Float.of_int (Ghost_store.Skt.row_width skt)
    | None -> 0.
  in
  if skt_row_bytes > 0. then
    spend "access-skt" (skt_access_us env ~n_root ~candidates ~row_bytes:skt_row_bytes);
  (* bloom probes + hidden checks per candidate *)
  spend "probes" (cpu_us env (candidates *. 8.));
  (* delta-log merge-on-read: a Pre-filtered root selection fences the
     run scan to its shipped id range. The touched share is modeled by
     the selection's selectivity — exact for contiguous (range)
     selections of the dense root key, optimistic for scattered
     ones. *)
  let delta_fraction =
    match
      List.find_opt (fun (g : Plan.group) -> g.Plan.g_table = root) plan.Plan.groups
    with
    | Some g
      when g.Plan.g_visible <> []
           && (g.Plan.g_visible_strategy = Plan.V_pre
               || g.Plan.g_visible_strategy = Plan.V_cross_pre) ->
      visible_sel env g.Plan.g_visible
    | _ -> 1.
  in
  let ds = delta_scan_us env ~fraction:delta_fraction in
  if ds > 0. then spend "delta-scan" ds;
  List.iter
    (fun (g : Plan.group) ->
       List.iter
         (fun (h : Plan.hidden_pred) ->
            if h.Plan.h_strategy = Plan.H_check then begin
              let tbl = Schema.find_table schema g.Plan.g_table in
              let col = Schema.find_column tbl h.Plan.h_pred.Predicate.column in
              spend
                (Printf.sprintf "check(%s.%s)" g.Plan.g_table h.Plan.h_pred.Predicate.column)
                (candidates *. point_read_us env (Float.of_int (Value.ty_width col.Column.ty)))
            end)
         g.Plan.g_hidden)
    plan.Plan.groups;
  let survivors = candidates *. !post_sel in
  (* projection joins *)
  let projected_visible =
    List.filter_map
      (fun (table, column) ->
         let tbl = Schema.find_table schema table in
         if column = tbl.Schema.key then None
         else begin
           let col = Schema.find_column tbl column in
           if Column.is_hidden col then None
           else Some (table, column, col.Column.ty)
         end)
      plan.Plan.query.Bind.projections
    |> List.sort_uniq compare
  in
  let post_tables =
    List.filter_map
      (fun (g : Plan.group) ->
         if
           g.Plan.g_visible <> []
           && (g.Plan.g_visible_strategy = Plan.V_post
               || g.Plan.g_visible_strategy = Plan.V_cross_post)
         then Some g.Plan.g_table
         else None)
      plan.Plan.groups
  in
  let join_tables =
    List.sort_uniq String.compare
      (List.map (fun (t, _, _) -> t) projected_visible @ post_tables)
  in
  List.iter
    (fun table ->
       let preds =
         List.filter
           (fun (p : Predicate.t) ->
              p.Predicate.table = table
              &&
              let tbl = Schema.find_table schema table in
              not (Column.is_hidden (Schema.find_column tbl p.Predicate.column)))
           plan.Plan.query.Bind.selections
       in
       let cols = List.filter (fun (t, _, _) -> t = table) projected_visible in
       let tys = List.map (fun (_, _, ty) -> ty) cols in
       let width = List.fold_left (fun acc ty -> acc + Value.ty_width ty) 0 tys in
       let n_stream = visible_sel env preds *. Float.of_int (count env table) in
       spend
         (Printf.sprintf "stream(%s)" table)
         (usb_us env (stream_bytes env ~n_t:(count env table) ~tys n_stream));
       let hash_bytes = n_stream *. Float.of_int (8 + width) in
       if hash_bytes <= Float.of_int cfg.Device.ram_budget /. 2. then
         spend (Printf.sprintf "join-hash(%s)" table) (cpu_us env ((n_stream +. survivors) *. 4.))
       else begin
         let row_bytes = survivors *. 24. in
         spend
           (Printf.sprintf "join-sort(%s)" table)
           (write_stream_us env row_bytes +. scratch_read_us env row_bytes
            +. cpu_us env (survivors *. 20.))
       end)
    join_tables;
  (* final projection: hidden column point reads + result emission *)
  let hidden_proj =
    List.filter
      (fun (table, column) ->
         let tbl = Schema.find_table schema table in
         column <> tbl.Schema.key
         && Column.is_hidden (Schema.find_column tbl column))
      plan.Plan.query.Bind.projections
  in
  List.iter
    (fun (table, column) ->
       let tbl = Schema.find_table schema table in
       let col = Schema.find_column tbl column in
       spend
         (Printf.sprintf "fetch(%s.%s)" table column)
         (survivors *. point_read_us env (Float.of_int (Value.ty_width col.Column.ty))))
    hidden_proj;
  let emit_n =
    match plan.Plan.oblivious with
    | Oblivious.Pad ->
      let bound = emit_bound env in
      Float.of_int
        (Oblivious.pad_count ~bound
           (max 0 (min bound (int_of_float (ceil survivors)))))
    | Oblivious.Off | Oblivious.Full -> survivors
  in
  spend "emit" (usb_us env (emit_n *. 16.));
  {
    est_time_us = !time;
    est_candidates = int_of_float (Float.round candidates);
    est_results = int_of_float (Float.round survivors);
    est_ram_bytes = env.ram_bytes;
    est_usb_bytes = env.usb_bytes;
    breakdown = List.rev env.parts;
  }
  end

(* The scheduler's shortest-remaining-cost-first policy reorders
   runnable sessions by this on every dispatch: the estimate minus the
   device time the session has already been charged, floored at zero
   (a plan may overrun its estimate without going negative, which
   would out-rank every fresh session forever). *)
let remaining_us e ~spent_us = Float.max 0. (e.est_time_us -. spent_us)

let pp fmt e =
  Format.fprintf fmt "est %.0f us, %d candidates, %d results, %d B ram, %d B usb"
    e.est_time_us e.est_candidates e.est_results e.est_ram_bytes e.est_usb_bytes
