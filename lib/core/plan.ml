module Predicate = Ghost_relation.Predicate
module Bind = Ghost_sql.Bind
module Oblivious = Ghost_oblivious.Oblivious

type hidden_strategy =
  | H_index
  | H_check

type visible_strategy =
  | V_pre
  | V_post
  | V_cross_pre
  | V_cross_post

let hidden_strategy_name = function
  | H_index -> "index"
  | H_check -> "check"

let visible_strategy_name = function
  | V_pre -> "pre"
  | V_post -> "post"
  | V_cross_pre -> "cross-pre"
  | V_cross_post -> "cross-post"

type hidden_pred = {
  h_pred : Predicate.t;
  h_strategy : hidden_strategy;
}

type group = {
  g_table : string;
  g_hidden : hidden_pred list;
  g_visible : Predicate.t list;
  g_visible_strategy : visible_strategy;
  g_borrowed : (string * Predicate.t) list;
}

type t = {
  query : Bind.query;
  root : string;
  groups : group list;
  label : string;
  oblivious : Oblivious.mode;
}

let group_label g =
  let hidden =
    List.map
      (fun h ->
         Printf.sprintf "%s.%s:%s" g.g_table h.h_pred.Predicate.column
           (hidden_strategy_name h.h_strategy))
      g.g_hidden
  in
  let visible =
    match g.g_visible with
    | [] -> []
    | ps ->
      [
        Printf.sprintf "%s{%s}:%s%s" g.g_table
          (String.concat "," (List.map (fun p -> p.Predicate.column) ps))
          (visible_strategy_name g.g_visible_strategy)
          (match g.g_borrowed with
           | [] -> ""
           | bs ->
             "+"
             ^ String.concat "+"
                 (List.map (fun (t, p) -> t ^ "." ^ p.Predicate.column) bs));
      ]
  in
  String.concat " " (hidden @ visible)

let mode_suffix = function
  | Oblivious.Off -> ""
  | Oblivious.Pad -> " [padded]"
  | Oblivious.Full -> " [oblivious]"

let make ?(oblivious = Oblivious.Off) ~query ~root groups =
  let label =
    (match groups with
     | [] -> "scan"
     | _ -> String.concat " | " (List.map group_label groups))
    ^ mode_suffix oblivious
  in
  { query; root; groups; label; oblivious }

let with_mode t mode =
  if t.oblivious = mode then t
  else make ~oblivious:mode ~query:t.query ~root:t.root t.groups

let group_produces_pre_source g =
  List.exists (fun h -> h.h_strategy = H_index) g.g_hidden
  || (g.g_visible <> []
      && (match g.g_visible_strategy with
          | V_pre | V_cross_pre -> true
          | V_post | V_cross_post -> false))

let describe t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "plan [%s] rooted at %s\n" t.label t.root;
  (match t.oblivious with
   | Oblivious.Off -> ()
   | Oblivious.Pad ->
     Printf.bprintf buf
       "  pad-only: shipments, streams and the result cardinality padded to \
        power-of-two buckets\n"
   | Oblivious.Full ->
     Printf.bprintf buf
       "  oblivious: full-cardinality padding + bound-depth scans; the \
        spy-visible trace depends only on schema and public bounds\n");
  List.iter
    (fun g ->
       Printf.bprintf buf "  group %s:\n" g.g_table;
       List.iter
         (fun h ->
            Printf.bprintf buf "    hidden %s via %s\n"
              (Predicate.to_string h.h_pred)
              (match h.h_strategy with
               | H_index -> "climbing index (pre-filter)"
               | H_check -> "per-candidate column check (post-filter)"))
         g.g_hidden;
       (match g.g_visible with
        | [] -> ()
        | ps ->
          Printf.bprintf buf "    visible {%s} via %s\n"
            (String.concat "; " (List.map Predicate.to_string ps))
            (match g.g_visible_strategy with
             | V_pre -> "shipped id list climbed to the root (pre-filter)"
             | V_post -> "Bloom filter probe after hidden joins (post-filter)"
             | V_cross_pre ->
               "id list intersected with hidden index lists, then climbed (cross-pre)"
             | V_cross_post ->
               "Bloom filter over ids intersected with hidden index lists (cross-post)"));
       List.iter
         (fun (t, p) ->
            Printf.bprintf buf "    borrowed from descendant %s: %s (intersected at %s \
                                level before the climb)\n"
              t (Predicate.to_string p) g.g_table)
         g.g_borrowed)
    t.groups;
  if not (List.exists group_produces_pre_source t.groups) then
    Printf.bprintf buf "  (no pre-filter source: sequential scan of root ids)\n";
  Buffer.contents buf

let validate t =
  List.iter
    (fun g ->
       let has_indexed_hidden =
         List.exists (fun h -> h.h_strategy = H_index) g.g_hidden
       in
       (match g.g_visible_strategy with
        | (V_cross_pre | V_cross_post) when g.g_visible <> [] ->
          if not (has_indexed_hidden || g.g_borrowed <> []) then
            invalid_arg
              (Printf.sprintf
                 "Plan.validate: cross strategy on %s without an indexed hidden \
                  predicate (own or borrowed)"
                 g.g_table)
        | V_pre | V_post | V_cross_pre | V_cross_post -> ());
       if g.g_borrowed <> [] && g.g_visible_strategy <> V_cross_pre then
         invalid_arg
           (Printf.sprintf "Plan.validate: borrowed lists on %s require cross-pre"
              g.g_table);
       if g.g_hidden = [] && g.g_visible = [] then
         invalid_arg "Plan.validate: empty group")
    t.groups
