module Flash = Ghost_flash.Flash

(** Append-only deletion log.

    Deletes face the same NAND constraint as inserts: the SKT rows and
    climbing-index lists of a deleted tuple cannot be rewritten in
    place. Instead the deleted root id is appended here; at query time
    the executor loads the (small) log into a sorted RAM array and
    filters candidates against it. Offline reorganization compacts the
    database and empties the log.

    Like inserts, deletes apply to the schema root only. *)

type durability =
  | Plain  (** raw ids, no torn-write detection (the seed format) *)
  | Checksummed
      (** pages carry the same header as {!Delta_log.Checksummed}
          (magic, first sequence number, count, CRC-32), enabling
          post-crash recovery *)

type t

val create :
  ?durability:durability ->
  ?cache:Ghost_device.Page_cache.t ->
  Flash.t ->
  table:string ->
  t
(** [durability] defaults to [Plain] (bit-identical to the original
    format). [cache] — the device's shared page cache; each append
    invalidates the page it programs there (see {!Delta_log.create}). *)

val table : t -> string
val count : t -> int
val size_bytes : t -> int
val dead_bytes : t -> int
val durability : t -> durability

val append : t -> int list -> unit
(** Records deletions (same tail-page re-programming discipline as
    {!Delta_log}). Duplicates are the caller's responsibility. Each id
    programs its own tail page, so a power cut mid-batch leaves a
    durable prefix of the batch; on [Flash.Power_cut] the log refuses
    further appends until {!recover} runs. *)

val needs_recovery : t -> bool

type recovery = {
  recovered : int;  (** ids in the log after recovery *)
  lost : int;  (** volatile ids dropped (never acknowledged) *)
  torn_pages : int;  (** pages found torn or checksum-invalid *)
}

val recover : t -> recovery
(** Post-crash scan (metered); see {!Delta_log.recover}. Rebuilds the
    host-side membership table from the durable pages. Raises
    [Invalid_argument] on a [Plain] log. *)

val mem : t -> int -> bool
(** Host-side membership (validation); not Flash-metered. *)

val load_sorted : t -> int array
(** Query-time load: reads the whole log off Flash (metered) and
    returns the ids sorted. *)
