module Bind = Ghost_sql.Bind

(** Plan enumeration and cost-based choice.

    Section 4: "Depending on the selectivities, a Pre-filtering or
    Post-filtering strategy can be selected per predicate", plus the
    Cross variants — "this leads to a large panel of candidate plans".
    [enumerate] produces that panel (bounded); [best] picks by the cost
    model. The named constructors build the canonical plans the demo
    compares (Figure 6's P1, P2, ...). *)

exception Planning_error of string

val root_of : Catalog.t -> Bind.query -> string
(** The subtree root the query executes under. *)

val enumerate : Catalog.t -> Bind.query -> Plan.t list
(** All valid strategy combinations, capped at 512 plans. Hidden
    predicates without a climbing index are forced to [H_check]. *)

val best : Catalog.t -> Bind.query -> Plan.t * Cost.estimate
(** Cost-optimal plan. Raises {!Planning_error} on an empty panel
    (cannot happen for a bound query). *)

val with_estimates : Catalog.t -> Bind.query -> (Plan.t * Cost.estimate) list
(** The panel sorted by estimated time (the demo's plan-game view). *)

(** {2 Canonical plans} *)

val all_pre : Catalog.t -> Bind.query -> Plan.t
(** Every predicate Pre-filtered (the "most intuitive QEP" of
    Section 4). *)

val all_post : Catalog.t -> Bind.query -> Plan.t
(** Hidden predicates through their indexes, every visible predicate
    Post-filtered (the Figure 5 plan). *)

val cross : Catalog.t -> Bind.query -> Plan.t
(** Cross-filtering wherever a table carries both hidden and visible
    predicates; Pre elsewhere. *)

val oblivious : Catalog.t -> Bind.query -> Plan.t
(** The single fixed-shape plan ([Plan.oblivious = Full]): hidden
    predicates as per-candidate checks over a bound-depth scan,
    visible predicates as shipped-list membership — no data-dependent
    index walks, so the executor can make the spy-visible trace a
    function of schema and public bounds alone. *)

val uniform : Catalog.t -> Bind.query -> Plan.visible_strategy -> Plan.t
(** Applies one visible strategy to every group (hidden predicates use
    their indexes). Cross variants fall back to the corresponding
    non-cross strategy on tables without an indexed hidden
    predicate. *)
