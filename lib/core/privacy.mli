module Trace = Ghost_device.Trace

(** Privacy auditor: machine-checks the paper's guarantee — "the only
    information revealed to a potential spy is which queries you pose
    and the public data you access".

    The audit walks the boundary trace and flags any event that would
    contradict the guarantee: payloads other than protocol acks leaving
    the device on a spy-visible link, or result tuples travelling
    anywhere but the secure display channel. The property-based test
    suite runs this over randomized queries and plans. *)

type access = {
  fixed_shape : bool;
      (** the executor ran a fixed-shape plan: page-touch counts are a
          function of schema and public bounds *)
  page_bound : int;
      (** public upper bound on the pages a query may touch (e.g. the
          catalog's structure page count) *)
}
(** Access-pattern side channel profile, supplied by the caller (the
    trace records link events, not Flash geometry). *)

type verdict = {
  ok : bool;
  violations : string list;
  outbound_payload_bytes : int;  (** non-ack device bytes a spy saw *)
  inbound_bytes : int;  (** visible data that entered the device *)
  queries_leaked : string list;  (** the (expected) query-text leak *)
  data_dependent_bits : float;
      (** upper bound on the bits of hidden data the trace shape (and
          the access profile, when given) can encode: the sum of
          log2(values) over annotated events — 0 under a fully
          oblivious execution, > 0 wherever a count or length still
          varies with hidden data *)
  padding_bytes : int;
      (** dummy-padding bytes across all annotated events (every link,
          the display channel included); 0 in baseline mode *)
}

val audit : ?session:int -> ?access:access -> Trace.t -> verdict
(** With [session], only the events stamped with that scheduler
    session id are audited: under a multi-session interleaving this
    verifies that {e each} session in isolation reveals nothing beyond
    its query text and its visible-data accesses — the same guarantee
    the whole-trace audit gives for serial execution. (The whole-trace
    audit over an interleaved trace remains the stronger global check;
    the per-session view pins a violation to the query that caused
    it.) *)

val pp : Format.formatter -> verdict -> unit
