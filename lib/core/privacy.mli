module Trace = Ghost_device.Trace

(** Privacy auditor: machine-checks the paper's guarantee — "the only
    information revealed to a potential spy is which queries you pose
    and the public data you access".

    The audit walks the boundary trace and flags any event that would
    contradict the guarantee: payloads other than protocol acks leaving
    the device on a spy-visible link, or result tuples travelling
    anywhere but the secure display channel. The property-based test
    suite runs this over randomized queries and plans. *)

type verdict = {
  ok : bool;
  violations : string list;
  outbound_payload_bytes : int;  (** non-ack device bytes a spy saw *)
  inbound_bytes : int;  (** visible data that entered the device *)
  queries_leaked : string list;  (** the (expected) query-text leak *)
}

val audit : ?session:int -> Trace.t -> verdict
(** With [session], only the events stamped with that scheduler
    session id are audited: under a multi-session interleaving this
    verifies that {e each} session in isolation reveals nothing beyond
    its query text and its visible-data accesses — the same guarantee
    the whole-trace audit gives for serial execution. (The whole-trace
    audit over an interleaved trace remains the stronger global check;
    the per-session view pins a violation to the query that caused
    it.) *)

val pp : Format.formatter -> verdict -> unit
