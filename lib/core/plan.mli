module Predicate = Ghost_relation.Predicate
module Bind = Ghost_sql.Bind
module Oblivious = Ghost_oblivious.Oblivious

(** Physical plans: the Pre- / Post- / Cross-filtering strategy space
    of Section 4.

    A plan fixes, for every table carrying predicates, how its
    selections reach the subtree root [R]:

    - hidden predicates either traverse their climbing index
      ({!H_index}) or are checked per candidate against the on-device
      column store ({!H_check});
    - visible predicates are either {e Pre-filtered} — the matching id
      list is shipped into the device and climbed to [R] through the
      key climbing index — or {e Post-filtered} — streamed into a
      Bloom filter probed after the hidden joins; the {e Cross}
      variants intersect the visible ids with the hidden predicates'
      own-level index lists first (before climbing, resp. before
      filling the Bloom filter). *)

type hidden_strategy =
  | H_index  (** climbing-index traversal (Pre-filtering) *)
  | H_check  (** per-candidate read of the hidden column (Post) *)

type visible_strategy =
  | V_pre
  | V_post
  | V_cross_pre
  | V_cross_post

val hidden_strategy_name : hidden_strategy -> string
val visible_strategy_name : visible_strategy -> string

type hidden_pred = {
  h_pred : Predicate.t;
  h_strategy : hidden_strategy;
}

type group = {
  g_table : string;
  g_hidden : hidden_pred list;
  g_visible : Predicate.t list;  (** all visible atoms on this table *)
  g_visible_strategy : visible_strategy;  (** meaningful when [g_visible <> []] *)
  g_borrowed : (string * Predicate.t) list;
      (** deep Cross-filtering (Section 4: selectivities of selections
          on intermediate tables combine with hidden selections on
          {e descendant} tables): indexed hidden predicates of
          descendant tables whose list {e at this table's level} is
          intersected with the shipped visible ids before the climb.
          Only meaningful with [V_cross_pre]. *)
}

type t = {
  query : Bind.query;
  root : string;  (** the subtree root R whose SKT drives execution *)
  groups : group list;
  label : string;  (** short human-readable strategy summary *)
  oblivious : Oblivious.mode;
      (** how much of the access pattern the executor hides: [Off]
          (the seed path, bit-identical), [Pad] (power-of-two padding
          at the metering sites, baseline access pattern) or [Full]
          (data-independent trace — see {!Exec}). Travels on the plan
          so the scheduler's step machines respect it without any
          scheduler change. *)
}

val make : ?oblivious:Oblivious.mode -> query:Bind.query -> root:string -> group list -> t
(** Computes the label ([oblivious] defaults to [Off] and suffixes the
    label when set). *)

val with_mode : t -> Oblivious.mode -> t
(** The same plan under another oblivious mode (label recomputed). *)

val describe : t -> string
(** Multi-line description (for the demo's plan-building phase). *)

val group_produces_pre_source : group -> bool
(** True when the group contributes a sorted R-id stream (some
    Pre-filtered predicate). *)

val validate : t -> unit
(** Structural sanity: cross strategies require an [H_index] hidden
    predicate on the same table; raises [Invalid_argument]. *)
