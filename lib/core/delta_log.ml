module Value = Ghost_kernel.Value
module Codec = Ghost_kernel.Codec
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram
module Page_cache = Ghost_device.Page_cache

type durability =
  | Plain
  | Checksummed

(* Checksummed page header: magic (u32) | first_seq (u64) | count (u32)
   | crc32 (u32) over the rest of the header and the payload. *)
let magic = 0x47444C54  (* "GDLT" *)
let header_bytes = 20

type t = {
  flash : Flash.t;
  table : string;
  levels : string array;
  hidden_cols : (string * Value.ty) array;
  record_bytes : int;
  records_per_page : int;
  durability : durability;
  cache : Page_cache.t option;
      (* the device's page cache, invalidated when an append programs a
         recycled Flash page the cache may still hold *)
  mutable full_pages : int list;  (* reversed *)
  mutable tail : string list;  (* encoded records of the tail page, reversed *)
  mutable tail_page : int option;  (* current (latest) program of the tail *)
  mutable stale_tails : int list;  (* superseded tail programs, newest first *)
  mutable count : int;
  mutable dead_bytes : int;  (* superseded tail programs *)
  mutable needs_recovery : bool;  (* a program was torn by a power cut *)
  mutable torn_page : int option;  (* the page that tore, if known *)
}

let create ?(durability = Plain) ?cache flash ~table ~levels ~hidden_cols =
  let record_bytes =
    (4 * List.length levels)
    + List.fold_left (fun acc (_, ty) -> acc + Value.ty_width ty) 0 hidden_cols
  in
  let page = (Flash.geometry flash).Flash.page_size in
  let usable =
    match durability with
    | Plain -> page
    | Checksummed -> page - header_bytes
  in
  if record_bytes > usable then invalid_arg "Delta_log.create: record exceeds a page";
  {
    flash;
    table;
    levels = Array.of_list levels;
    hidden_cols = Array.of_list hidden_cols;
    record_bytes;
    records_per_page = usable / record_bytes;
    durability;
    cache;
    full_pages = [];
    tail = [];
    tail_page = None;
    stale_tails = [];
    count = 0;
    dead_bytes = 0;
    needs_recovery = false;
    torn_page = None;
  }

let table t = t.table
let count t = t.count
let record_bytes t = t.record_bytes
let durability t = t.durability
let needs_recovery t = t.needs_recovery

let dead_bytes t = t.dead_bytes

let size_bytes t =
  (List.length t.full_pages * t.records_per_page * t.record_bytes)
  + (List.length t.tail * t.record_bytes)

let payload_off t =
  match t.durability with Plain -> 0 | Checksummed -> header_bytes

let encode t ~ids ~hidden =
  if Array.length ids <> Array.length t.levels then
    invalid_arg "Delta_log.append: id vector misaligned with levels";
  if Array.length hidden <> Array.length t.hidden_cols then
    invalid_arg "Delta_log.append: hidden values misaligned";
  let buf = Buffer.create t.record_bytes in
  Array.iter
    (fun id ->
       let b = Bytes.create 4 in
       Codec.put_u32 b 0 id;
       Buffer.add_bytes buf b)
    ids;
  Array.iteri
    (fun i v ->
       let _, ty = t.hidden_cols.(i) in
       Buffer.add_bytes buf (Value.encode ty v))
    hidden;
  Buffer.contents buf

(* The bytes of one page image holding [records] (oldest first), whose
   first record carries sequence number [first_seq]. *)
let build_page t ~first_seq records =
  let payload = String.concat "" records in
  match t.durability with
  | Plain -> Bytes.of_string payload
  | Checksummed ->
    let b = Bytes.create (header_bytes + String.length payload) in
    Codec.put_u32 b 0 magic;
    Codec.put_u64 b 4 first_seq;
    Codec.put_u32 b 12 (List.length records);
    Bytes.blit_string payload 0 b header_bytes (String.length payload);
    let crc =
      Codec.crc32 b ~pos:0 ~len:16
      |> fun crc ->
      Codec.crc32 ~crc b ~pos:header_bytes ~len:(String.length payload)
    in
    Codec.put_u32 b 16 crc;
    b

(* Reads a checksummed page back and validates it: magic, plausible
   record count, checksum over header + payload. Returns the first
   sequence number and the decoded record payloads, oldest first. *)
let parse_page t page =
  match Flash.read_page t.flash page with
  | exception Invalid_argument _ -> None  (* erased (e.g. a zero-byte tear) *)
  | b ->
    if Codec.get_u32 b 0 <> magic then None
    else begin
      let first_seq = Codec.get_u64 b 4 in
      let n = Codec.get_u32 b 12 in
      let stored_crc = Codec.get_u32 b 16 in
      if n < 1 || n > t.records_per_page then None
      else begin
        let crc =
          Codec.crc32 b ~pos:0 ~len:16
          |> fun crc -> Codec.crc32 ~crc b ~pos:header_bytes ~len:(n * t.record_bytes)
        in
        if crc <> stored_crc then None
        else begin
          let records =
            List.init n (fun i ->
                Bytes.sub_string b (header_bytes + (i * t.record_bytes)) t.record_bytes)
          in
          Some (first_seq, records)
        end
      end
    end

let append t ~ids ~hidden =
  if t.needs_recovery then
    invalid_arg "Delta_log.append: log needs recovery after a power cut";
  let record = encode t ~ids ~hidden in
  t.tail <- record :: t.tail;
  t.count <- t.count + 1;
  (* Program the tail as a fresh page (no in-place writes); the
     previous tail program becomes dead space until reorganization. *)
  (match t.tail_page with
   | Some _ -> t.dead_bytes <- t.dead_bytes + ((List.length t.tail - 1) * t.record_bytes)
   | None -> ());
  let first_seq = t.records_per_page * List.length t.full_pages in
  let data = build_page t ~first_seq (List.rev t.tail) in
  match Flash.append t.flash data with
  | page ->
    (* The append may have recycled an erased page whose old content is
       still resident in the shared cache. *)
    Option.iter (fun c -> Page_cache.invalidate c ~page) t.cache;
    (match t.tail_page with
     | Some old -> t.stale_tails <- old :: t.stale_tails
     | None -> ());
    if List.length t.tail = t.records_per_page then begin
      t.full_pages <- page :: t.full_pages;
      t.tail <- [];
      t.tail_page <- None
    end
    else t.tail_page <- Some page
  | exception (Flash.Power_cut { page; _ } as e) ->
    t.needs_recovery <- true;
    t.torn_page <- Some page;
    raise e

type recovery = {
  recovered : int;
  lost : int;
  torn_pages : int;
}

(* After a power cut the volatile log state is untrusted: re-scan the
   on-flash pages, keep the longest checksum-valid, sequence-continuous
   prefix, and truncate the in-memory state to it. The record torn
   mid-program (never acknowledged to the caller) is dropped; its
   superseded predecessor page, still programmed, carries the durable
   tail. *)
let recover t =
  (match t.durability with
   | Checksummed -> ()
   | Plain ->
     invalid_arg
       "Delta_log.recover: log is not checksummed (create ~durability:Checksummed)");
  let torn = ref (match t.torn_page with Some _ -> 1 | None -> 0) in
  let old_count = t.count in
  (* Longest valid prefix of the full pages. *)
  let rec verify_full acc n = function
    | [] -> (acc, n, true)
    | p :: rest ->
      (match parse_page t p with
       | Some (first_seq, records)
         when first_seq = n * t.records_per_page
              && List.length records = t.records_per_page ->
         verify_full (p :: acc) (n + 1) rest
       | _ ->
         incr torn;
         (acc, n, false))
  in
  let full_rev, n_full, full_intact = verify_full [] 0 (List.rev t.full_pages) in
  let expected_seq = n_full * t.records_per_page in
  (* Newest tail program whose sequence continues the full prefix. A
     corrupted full page invalidates everything after it, tail
     included. *)
  let candidates =
    if not full_intact then []
    else (match t.tail_page with Some p -> [ p ] | None -> []) @ t.stale_tails
  in
  let rec pick = function
    | [] -> (None, [])
    | p :: rest ->
      (match parse_page t p with
       | Some (first_seq, records) when first_seq = expected_seq ->
         (Some (p, records), rest)
       | _ ->
         incr torn;
         pick rest)
  in
  let tail_winner, older = pick candidates in
  (match tail_winner with
   | Some (page, records) ->
     t.tail <- List.rev records;
     t.tail_page <- Some page;
     t.stale_tails <- older;
     t.count <- expected_seq + List.length records
   | None ->
     t.tail <- [];
     t.tail_page <- None;
     t.stale_tails <- [];
     t.count <- expected_seq);
  t.full_pages <- full_rev;
  t.needs_recovery <- false;
  t.torn_page <- None;
  { recovered = t.count; lost = old_count - t.count; torn_pages = !torn }

type row = {
  ids : int array;
  hidden : Value.t array;
}

let decode t b off =
  let n_levels = Array.length t.levels in
  let ids = Array.init n_levels (fun i -> Codec.get_u32 b (off + (4 * i))) in
  let pos = ref (off + (4 * n_levels)) in
  let hidden =
    Array.map
      (fun (_, ty) ->
         let v = Value.decode ty b !pos in
         pos := !pos + Value.ty_width ty;
         v)
      t.hidden_cols
  in
  { ids; hidden }

let scan ?ram t f =
  ignore ram;
  let off = payload_off t in
  let read_page page n_records =
    let b = Flash.read t.flash ~page ~off ~len:(n_records * t.record_bytes) in
    for i = 0 to n_records - 1 do
      f (decode t b (i * t.record_bytes))
    done
  in
  List.iter
    (fun page -> read_page page t.records_per_page)
    (List.rev t.full_pages);
  match t.tail_page with
  | Some page -> read_page page (List.length t.tail)
  | None -> ()

let hidden_assoc t row =
  Array.to_list (Array.mapi (fun i (name, _) -> (name, row.hidden.(i))) t.hidden_cols)

let hidden_value t row col =
  let rec loop i =
    if i >= Array.length t.hidden_cols then raise Not_found
    else if fst t.hidden_cols.(i) = col then row.hidden.(i)
    else loop (i + 1)
  in
  loop 0
