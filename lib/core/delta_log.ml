module Value = Ghost_kernel.Value
module Codec = Ghost_kernel.Codec
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram
module Page_cache = Ghost_device.Page_cache
module Log_run = Ghost_store.Log_run

type durability =
  | Plain
  | Checksummed

(* Checksummed page header: magic (u32) | first_seq (u64) | count (u32)
   | crc32 (u32) over the rest of the header and the payload. *)
let magic = 0x47444C54  (* "GDLT" *)
let header_bytes = 20

type runs_policy = {
  l0_spill_pages : int;
  run_fanout : int;
}

(* A resumable compaction unit: one output run being built from either
   the current L0 prefix (a spill) or every run of one level (a
   merge). All fields are plain data — no closures — so an in-flight
   compaction survives a marshalled device image. *)
type source =
  | S_records of string list  (* spill: decoded L0 records, key order *)
  | S_merge of Log_run.merge

type compaction = {
  c_level : int;  (* output run level *)
  c_builder : Log_run.builder;
  mutable c_source : source;
  c_input_runs : Log_run.t list;  (* runs consumed on install (merge) *)
  c_input_pages : int list;  (* L0 pages consumed on install (spill) *)
  c_logical : int;  (* logical records the inputs carry (spill) *)
  mutable c_dropped : int;  (* tombstoned records folded away so far *)
}

type t = {
  flash : Flash.t;
  table : string;
  levels : string array;
  hidden_cols : (string * Value.ty) array;
  record_bytes : int;
  records_per_page : int;
  durability : durability;
  cache : Page_cache.t option;
      (* the device's page cache, invalidated when an append programs a
         recycled Flash page the cache may still hold *)
  runs_policy : runs_policy option;
  mutable runs : Log_run.t list;  (* ascending min_key = chronological *)
  mutable spilled_seq : int;  (* logical records folded out of L0 *)
  mutable dropped : int;  (* tombstoned records compaction dropped *)
  mutable compaction : compaction option;  (* in-flight output run *)
  mutable full_pages : int list;  (* reversed *)
  mutable tail : string list;  (* encoded records of the tail page, reversed *)
  mutable tail_page : int option;  (* current (latest) program of the tail *)
  mutable stale_tails : int list;  (* superseded tail programs, newest first *)
  mutable count : int;
  mutable dead_bytes : int;  (* superseded tail programs *)
  mutable needs_recovery : bool;  (* a program was torn by a power cut *)
  mutable torn_page : int option;  (* the page that tore, if known *)
}

let create ?(durability = Plain) ?cache ?runs flash ~table ~levels ~hidden_cols =
  let record_bytes =
    (4 * List.length levels)
    + List.fold_left (fun acc (_, ty) -> acc + Value.ty_width ty) 0 hidden_cols
  in
  let page = (Flash.geometry flash).Flash.page_size in
  let usable =
    match durability with
    | Plain -> page
    | Checksummed -> page - header_bytes
  in
  if record_bytes > usable then invalid_arg "Delta_log.create: record exceeds a page";
  (match runs with
   | Some p ->
     if p.l0_spill_pages < 1 || p.run_fanout < 2 then
       invalid_arg "Delta_log.create: spill threshold < 1 or fanout < 2";
     if Log_run.records_per_page flash ~record_bytes < 1 then
       invalid_arg "Delta_log.create: record exceeds a run page"
   | None -> ());
  {
    flash;
    table;
    levels = Array.of_list levels;
    hidden_cols = Array.of_list hidden_cols;
    record_bytes;
    records_per_page = usable / record_bytes;
    durability;
    cache;
    runs_policy = runs;
    runs = [];
    spilled_seq = 0;
    dropped = 0;
    compaction = None;
    full_pages = [];
    tail = [];
    tail_page = None;
    stale_tails = [];
    count = 0;
    dead_bytes = 0;
    needs_recovery = false;
    torn_page = None;
  }

let table t = t.table
let count t = t.count
let record_bytes t = t.record_bytes
let durability t = t.durability
let needs_recovery t = t.needs_recovery

let dead_bytes t = t.dead_bytes

let runs_enabled t = t.runs_policy <> None
let has_runs t = t.runs <> []
let run_count t = List.length t.runs
let run_pages t = List.fold_left (fun a r -> a + Log_run.page_count r) 0 t.runs

let l0_pages t =
  List.length t.full_pages + (match t.tail_page with Some _ -> 1 | None -> 0)

(* Records a sequential scan touches: the logical count minus what
   compaction folded away. Equal to [count] on a flat log. *)
let physical_records t = t.count - t.dropped
let dropped_records t = t.dropped

let size_bytes t =
  (List.length t.full_pages * t.records_per_page * t.record_bytes)
  + (List.length t.tail * t.record_bytes)
  + List.fold_left
      (fun a r -> a + Log_run.size_bytes r ~record_bytes:t.record_bytes)
      0 t.runs

let payload_off t =
  match t.durability with Plain -> 0 | Checksummed -> header_bytes

let encode t ~ids ~hidden =
  if Array.length ids <> Array.length t.levels then
    invalid_arg "Delta_log.append: id vector misaligned with levels";
  if Array.length hidden <> Array.length t.hidden_cols then
    invalid_arg "Delta_log.append: hidden values misaligned";
  let buf = Buffer.create t.record_bytes in
  Array.iter
    (fun id ->
       let b = Bytes.create 4 in
       Codec.put_u32 b 0 id;
       Buffer.add_bytes buf b)
    ids;
  Array.iteri
    (fun i v ->
       let _, ty = t.hidden_cols.(i) in
       Buffer.add_bytes buf (Value.encode ty v))
    hidden;
  Buffer.contents buf

(* The bytes of one page image holding [records] (oldest first), whose
   first record carries sequence number [first_seq]. *)
let build_page t ~first_seq records =
  let payload = String.concat "" records in
  match t.durability with
  | Plain -> Bytes.of_string payload
  | Checksummed ->
    let b = Bytes.create (header_bytes + String.length payload) in
    Codec.put_u32 b 0 magic;
    Codec.put_u64 b 4 first_seq;
    Codec.put_u32 b 12 (List.length records);
    Bytes.blit_string payload 0 b header_bytes (String.length payload);
    let crc =
      Codec.crc32 b ~pos:0 ~len:16
      |> fun crc ->
      Codec.crc32 ~crc b ~pos:header_bytes ~len:(String.length payload)
    in
    Codec.put_u32 b 16 crc;
    b

(* Reads a checksummed page back and validates it: magic, plausible
   record count, checksum over header + payload. Returns the first
   sequence number and the decoded record payloads, oldest first. *)
let parse_page t page =
  match Flash.read_page t.flash page with
  | exception Invalid_argument _ -> None  (* erased (e.g. a zero-byte tear) *)
  | b ->
    if Codec.get_u32 b 0 <> magic then None
    else begin
      let first_seq = Codec.get_u64 b 4 in
      let n = Codec.get_u32 b 12 in
      let stored_crc = Codec.get_u32 b 16 in
      if n < 1 || n > t.records_per_page then None
      else begin
        let crc =
          Codec.crc32 b ~pos:0 ~len:16
          |> fun crc -> Codec.crc32 ~crc b ~pos:header_bytes ~len:(n * t.record_bytes)
        in
        if crc <> stored_crc then None
        else begin
          let records =
            List.init n (fun i ->
                Bytes.sub_string b (header_bytes + (i * t.record_bytes)) t.record_bytes)
          in
          Some (first_seq, records)
        end
      end
    end

let append t ~ids ~hidden =
  if t.needs_recovery then
    invalid_arg "Delta_log.append: log needs recovery after a power cut";
  let record = encode t ~ids ~hidden in
  t.tail <- record :: t.tail;
  t.count <- t.count + 1;
  (* Program the tail as a fresh page (no in-place writes); the
     previous tail program becomes dead space until reorganization. *)
  (match t.tail_page with
   | Some _ -> t.dead_bytes <- t.dead_bytes + ((List.length t.tail - 1) * t.record_bytes)
   | None -> ());
  let first_seq =
    t.spilled_seq + (t.records_per_page * List.length t.full_pages)
  in
  let data = build_page t ~first_seq (List.rev t.tail) in
  match Flash.append t.flash data with
  | page ->
    (* The append may have recycled an erased page whose old content is
       still resident in the shared cache. *)
    Option.iter (fun c -> Page_cache.invalidate c ~page) t.cache;
    (match t.tail_page with
     | Some old -> t.stale_tails <- old :: t.stale_tails
     | None -> ());
    if List.length t.tail = t.records_per_page then begin
      t.full_pages <- page :: t.full_pages;
      t.tail <- [];
      t.tail_page <- None
    end
    else t.tail_page <- Some page
  | exception (Flash.Power_cut { page; _ } as e) ->
    t.needs_recovery <- true;
    t.torn_page <- Some page;
    raise e

(* ---- leveled compaction (runs mode) ---- *)

(* Decode the raw records of one L0 page, oldest (= smallest key)
   first. Metered like {!scan}. *)
let l0_page_records t page =
  let b =
    Flash.read t.flash ~page ~off:(payload_off t)
      ~len:(t.records_per_page * t.record_bytes)
  in
  List.init t.records_per_page (fun i ->
      Bytes.sub_string b (i * t.record_bytes) t.record_bytes)

(* Runs at [level], oldest first (the runs list is chronological). *)
let runs_at t level = List.filter (fun r -> r.Log_run.level = level) t.runs

let spill_ready t =
  match t.runs_policy with
  | None -> false
  | Some p -> List.length t.full_pages >= p.l0_spill_pages

let merge_level t =
  match t.runs_policy with
  | None -> None
  | Some p ->
    let rec probe level =
      match runs_at t level with
      | [] -> None
      | rs when List.length rs >= p.run_fanout -> Some level
      | _ -> probe (level + 1)
    in
    probe 1

let compaction_pending t =
  (not t.needs_recovery)
  && (t.compaction <> None || spill_ready t || merge_level t <> None)

type step =
  | Idle
  | Worked
  | Installed of installed

and installed = {
  inst_spill : bool;
  inst_level : int;  (* level of the installed run *)
  inst_pages : int;  (* run pages it programmed *)
  inst_records : int;
  inst_dropped : int;  (* tombstoned records folded away *)
}

(* Starts the next compaction unit. The spill decodes its whole input
   up front — L0 is bounded by the spill threshold, the memtable role
   — while a merge reads its input runs one page at a time through the
   cursor, so RAM stays bounded however deep the tree grows. *)
let start_compaction t =
  match t.runs_policy with
  | None -> None
  | Some _ when t.compaction <> None -> t.compaction
  | Some _ ->
    if spill_ready t then begin
      let pages = List.rev t.full_pages in
      let records = List.concat_map (l0_page_records t) pages in
      let c =
        {
          c_level = 1;
          c_builder = Log_run.start t.flash ~record_bytes:t.record_bytes ~level:1;
          c_source = S_records records;
          c_input_runs = [];
          c_input_pages = pages;
          c_logical = List.length records;
          c_dropped = 0;
        }
      in
      t.compaction <- Some c;
      Some c
    end
    else
      match merge_level t with
      | None -> None
      | Some level ->
        let inputs = runs_at t level in
        let c =
          {
            c_level = level + 1;
            c_builder =
              Log_run.start t.flash ~record_bytes:t.record_bytes ~level:(level + 1);
            c_source = S_merge (Log_run.merge_start inputs);
            c_input_runs = inputs;
            c_input_pages = [];
            c_logical = 0;
            c_dropped = 0;
          }
        in
        t.compaction <- Some c;
        Some c

let pull t c =
  match c.c_source with
  | S_records [] -> None
  | S_records (r :: rest) ->
    c.c_source <- S_records rest;
    Some r
  | S_merge m -> Log_run.merge_next t.flash ~record_bytes:t.record_bytes m

(* The installed run replaces its inputs atomically in the volatile
   state: the seal program is the run's commit point, and nothing here
   touches Flash, so there is no crash point between the two. *)
let install t c run_opt =
  let input_records =
    match c.c_input_runs with
    | [] ->
      (* spill: every input L0 page is a full page *)
      List.length c.c_input_pages * t.records_per_page
    | runs -> List.fold_left (fun a r -> a + r.Log_run.count) 0 runs
  in
  (* the superseded inputs stay programmed until reorganization *)
  t.dead_bytes <- t.dead_bytes + (input_records * t.record_bytes);
  if c.c_input_pages <> [] then begin
    t.full_pages <-
      List.filter (fun p -> not (List.mem p c.c_input_pages)) t.full_pages;
    t.spilled_seq <- t.spilled_seq + c.c_logical
  end;
  if c.c_input_runs <> [] then
    t.runs <- List.filter (fun r -> not (List.memq r c.c_input_runs)) t.runs;
  (match run_opt with
   | Some run ->
     t.runs <-
       List.sort
         (fun a b -> compare a.Log_run.min_key b.Log_run.min_key)
         (run :: t.runs)
   | None -> ());
  t.dropped <- t.dropped + c.c_dropped;
  t.compaction <- None;
  {
    inst_spill = c.c_input_pages <> [];
    inst_level = c.c_level;
    inst_pages =
      (match run_opt with Some r -> Log_run.page_count r | None -> 0);
    inst_records = (match run_opt with Some r -> r.Log_run.count | None -> 0);
    inst_dropped = c.c_dropped;
  }

let compact_step ?(drop = fun _ -> false) t ~max_pages =
  if t.needs_recovery then
    invalid_arg "Delta_log.compact_step: log needs recovery after a power cut";
  if max_pages < 1 then invalid_arg "Delta_log.compact_step: max_pages < 1";
  match start_compaction t with
  | None -> Idle
  | Some c ->
    let on_program page =
      Option.iter (fun cache -> Page_cache.invalidate cache ~page) t.cache
    in
    let programmed () = List.length (Log_run.built_pages c.c_builder) in
    let budget = programmed () + max_pages in
    let exhausted = ref false in
    (try
       while (not !exhausted) && programmed () < budget do
         match pull t c with
         | None -> exhausted := true
         | Some record ->
           if drop (Log_run.key record) then c.c_dropped <- c.c_dropped + 1
           else Log_run.add ~on_program c.c_builder record
       done;
       if !exhausted then begin
         let run =
           if Log_run.built_count c.c_builder = 0 then None
           else Some (Log_run.seal ~on_program c.c_builder)
         in
         Installed (install t c run)
       end
       else Worked
     with Flash.Power_cut { page; _ } as e ->
       t.needs_recovery <- true;
       t.torn_page <- Some page;
       raise e)

type recovery = {
  recovered : int;
  lost : int;
  torn_pages : int;
}

(* After a power cut the volatile log state is untrusted: re-scan the
   on-flash pages, keep the longest checksum-valid, sequence-continuous
   prefix, and truncate the in-memory state to it. The record torn
   mid-program (never acknowledged to the caller) is dropped; its
   superseded predecessor page, still programmed, carries the durable
   tail.

   With leveled runs the protocol gains two phases in front: installed
   runs re-validate (their seal program was their commit, so a pure
   power cut always rolls them forward), and an in-flight compaction
   build — unsealed by construction when the cut hit it — is discarded
   wholesale, rolling the log back to its intact inputs. *)
let recover t =
  (match t.durability with
   | Checksummed -> ()
   | Plain ->
     invalid_arg
       "Delta_log.recover: log is not checksummed (create ~durability:Checksummed)");
  let torn = ref (match t.torn_page with Some _ -> 1 | None -> 0) in
  let old_count = t.count in
  let run_lost = ref 0 in
  (* Roll an interrupted compaction back: its output was never sealed,
     its inputs were never touched. The partial output pages are dead
     bytes until reorganization. *)
  (match t.compaction with
   | Some c ->
     t.dead_bytes <-
       t.dead_bytes
       + (Log_run.programmed_records c.c_builder * t.record_bytes);
     t.compaction <- None
   | None -> ());
  (* Roll installed runs forward. An installed run only fails to
     validate under cell damage beyond the log's local recovery; its
     records are then lost (the fleet's anti-entropy repair is the
     recourse, as for structure pages). *)
  t.runs <-
    List.filter
      (fun r ->
         if Log_run.validate t.flash ~record_bytes:t.record_bytes r then true
         else begin
           incr torn;
           run_lost := !run_lost + r.Log_run.count;
           false
         end)
      t.runs;
  (* Longest valid prefix of the full pages, continuing the spilled
     sequence. *)
  let rec verify_full acc n = function
    | [] -> (acc, n, true)
    | p :: rest ->
      (match parse_page t p with
       | Some (first_seq, records)
         when first_seq = t.spilled_seq + (n * t.records_per_page)
              && List.length records = t.records_per_page ->
         verify_full (p :: acc) (n + 1) rest
       | _ ->
         incr torn;
         (acc, n, false))
  in
  let full_rev, n_full, full_intact = verify_full [] 0 (List.rev t.full_pages) in
  let expected_seq = t.spilled_seq + (n_full * t.records_per_page) in
  (* Newest tail program whose sequence continues the full prefix. A
     corrupted full page invalidates everything after it, tail
     included. *)
  let candidates =
    if not full_intact then []
    else (match t.tail_page with Some p -> [ p ] | None -> []) @ t.stale_tails
  in
  let rec pick = function
    | [] -> (None, [])
    | p :: rest ->
      (match parse_page t p with
       | Some (first_seq, records) when first_seq = expected_seq ->
         (Some (p, records), rest)
       | _ ->
         incr torn;
         pick rest)
  in
  let tail_winner, older = pick candidates in
  (match tail_winner with
   | Some (page, records) ->
     t.tail <- List.rev records;
     t.tail_page <- Some page;
     t.stale_tails <- older;
     t.count <- expected_seq + List.length records
   | None ->
     t.tail <- [];
     t.tail_page <- None;
     t.stale_tails <- [];
     t.count <- expected_seq);
  t.full_pages <- full_rev;
  t.needs_recovery <- false;
  t.torn_page <- None;
  {
    recovered = t.count - t.dropped - !run_lost;
    lost = (old_count - t.count) + !run_lost;
    torn_pages = !torn;
  }

type row = {
  ids : int array;
  hidden : Value.t array;
}

let decode t b off =
  let n_levels = Array.length t.levels in
  let ids = Array.init n_levels (fun i -> Codec.get_u32 b (off + (4 * i))) in
  let pos = ref (off + (4 * n_levels)) in
  let hidden =
    Array.map
      (fun (_, ty) ->
         let v = Value.decode ty b !pos in
         pos := !pos + Value.ty_width ty;
         v)
      t.hidden_cols
  in
  { ids; hidden }

let scan_range ?ram ?lo ?hi t f =
  ignore ram;
  (* Runs first (they hold the oldest records), then L0: rows stream in
     ascending root-id order just like the flat log's append order. The
     bounds skip run pages via their key fences; the L0 prefix is
     bounded by the spill threshold and is always read in full, as is
     the whole log when runs are off (the seed path, bit-identical). *)
  List.iter
    (fun run ->
       Log_run.iter t.flash ~record_bytes:t.record_bytes ?lo ?hi run
         (fun record -> f (decode t (Bytes.unsafe_of_string record) 0)))
    t.runs;
  let off = payload_off t in
  let read_page page n_records =
    let b = Flash.read t.flash ~page ~off ~len:(n_records * t.record_bytes) in
    for i = 0 to n_records - 1 do
      f (decode t b (i * t.record_bytes))
    done
  in
  List.iter
    (fun page -> read_page page t.records_per_page)
    (List.rev t.full_pages);
  match t.tail_page with
  | Some page -> read_page page (List.length t.tail)
  | None -> ()

let scan ?ram t f = scan_range ?ram t f

let hidden_assoc t row =
  Array.to_list (Array.mapi (fun i (name, _) -> (name, row.hidden.(i))) t.hidden_cols)

let hidden_value t row col =
  let rec loop i =
    if i >= Array.length t.hidden_cols then raise Not_found
    else if fst t.hidden_cols.(i) = col then row.hidden.(i)
    else loop (i + 1)
  in
  loop 0
