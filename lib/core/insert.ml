module Value = Ghost_kernel.Value
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Device = Ghost_device.Device
module Flash = Ghost_flash.Flash
module Skt = Ghost_store.Skt
module Column_store = Ghost_store.Column_store
module Public_store = Ghost_public.Public_store

exception Insert_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Insert_error s)) fmt

(* Logs are created on first use; the device config decides whether
   they use the crash-safe checksummed page format. *)
let log_durability cat =
  if (Device.config cat.Catalog.device).Device.durable_logs then
    Delta_log.Checksummed
  else Delta_log.Plain

let log_runs cat =
  match (Device.config cat.Catalog.device).Device.log_runs with
  | None -> None
  | Some p ->
    Some
      {
        Delta_log.l0_spill_pages = p.Device.l0_spill_pages;
        run_fanout = p.Device.run_fanout;
      }

let tombstone_durability cat =
  if (Device.config cat.Catalog.device).Device.durable_logs then
    Tombstone_log.Checksummed
  else Tombstone_log.Plain

let delta_log_for cat root =
  match Catalog.delta cat root with
  | Some log -> log
  | None ->
    let entry = Catalog.entry cat root in
    let hidden_cols =
      List.map (fun (name, cs) -> (name, Column_store.ty cs)) entry.Catalog.hidden_columns
    in
    let levels = Schema.subtree cat.Catalog.schema root in
    let log =
      Delta_log.create ~durability:(log_durability cat)
        ?cache:(Device.page_cache cat.Catalog.device)
        ?runs:(log_runs cat)
        (Device.flash cat.Catalog.device)
        ~table:root ~levels ~hidden_cols
    in
    Hashtbl.replace cat.Catalog.deltas root log;
    log

(* The SKT-style id vector of a new root tuple: its own id followed by,
   per child subtree, the ids read from the child's SKT (or the child id
   itself for leaves). *)
let id_vector cat root ~new_id row =
  let schema = cat.Catalog.schema in
  let tbl = Schema.find_table schema root in
  let child_ids =
    List.concat_map
      (fun (child, fk_col) ->
         let fk_idx = Schema.column_index tbl fk_col in
         let c_id =
           match row.(fk_idx) with
           | Value.Int id -> id
           | Value.Null | Value.Float _ | Value.Date _ | Value.Str _ ->
             fail "insert into %s: foreign key %s is not an integer" root fk_col
         in
         let n_child = Catalog.table_count cat child in
         if c_id < 1 || c_id > n_child then
           fail "insert into %s: %s = %d does not reference a loaded %s row" root
             fk_col c_id child;
         match Catalog.skt cat child with
         | None -> [ c_id ]
         | Some skt ->
           let reader = Skt.open_reader skt in
           let ids = Skt.get reader c_id in
           Skt.close_reader reader;
           Array.to_list ids)
      (Schema.children schema root)
  in
  Array.of_list (new_id :: child_ids)

let delete_root cat public ids =
  let schema = cat.Catalog.schema in
  let root = (Schema.root schema).Schema.name in
  let total = Catalog.total_count cat root in
  let log =
    match Catalog.tombstone cat root with
    | Some log -> log
    | None ->
      let log =
        Tombstone_log.create ~durability:(tombstone_durability cat)
          ?cache:(Device.page_cache cat.Catalog.device)
          (Device.flash cat.Catalog.device) ~table:root
      in
      Hashtbl.replace cat.Catalog.tombstones root log;
      log
  in
  let seen = Hashtbl.create (List.length ids) in
  List.iter
    (fun id ->
       if id < 1 || id > total then fail "delete from %s: no row %d" root id;
       if Tombstone_log.mem log id then fail "delete from %s: row %d already deleted" root id;
       if Hashtbl.mem seen id then fail "delete from %s: duplicate id %d in batch" root id;
       Hashtbl.add seen id ())
    ids;
  (* A power cut can tear the batch: ids already durable on the device
     must also leave the public store, or the two sides disagree after
     recovery. The torn id itself is dropped by {!Tombstone_log.recover}. *)
  let applied = ref 0 in
  (try List.iter (fun id -> Tombstone_log.append log [ id ]; incr applied) ids
   with Flash.Power_cut _ as e ->
     Public_store.delete_rows public root (List.filteri (fun i _ -> i < !applied) ids);
     raise e);
  Public_store.delete_rows public root ids

let insert_root cat public rows =
  let schema = cat.Catalog.schema in
  let root = (Schema.root schema).Schema.name in
  let tbl = Schema.find_table schema root in
  let arity = Schema.arity tbl in
  let cols = Schema.all_columns tbl in
  let entry = Catalog.entry cat root in
  (* Validate the whole batch before touching any state. *)
  let next = ref (Catalog.total_count cat root + 1) in
  let prepared =
    List.map
      (fun row ->
         if Array.length row <> arity then
           fail "insert into %s: arity %d, expected %d" root (Array.length row) arity;
         List.iteri
           (fun i (c : Column.t) ->
              if not (Value.has_ty c.Column.ty row.(i)) then
                fail "insert into %s: column %s type mismatch" root c.Column.name;
              if Value.is_null row.(i) then
                fail "insert into %s: NULL in column %s" root c.Column.name)
           cols;
         let new_id =
           match row.(0) with
           | Value.Int id -> id
           | Value.Null | Value.Float _ | Value.Date _ | Value.Str _ ->
             fail "insert into %s: non-integer key" root
         in
         if new_id <> !next then
           fail "insert into %s: key %d must densely continue (expected %d)" root
             new_id !next;
         incr next;
         let ids = id_vector cat root ~new_id row in
         let hidden =
           Array.of_list
             (List.map
                (fun (name, _) -> row.(Schema.column_index tbl name))
                entry.Catalog.hidden_columns)
         in
         (row, ids, hidden))
      rows
  in
  let log = delta_log_for cat root in
  (* Each append that returns is acknowledged and durable (the torn
     record of a power cut is not: recovery drops it). If the batch is
     interrupted, mirror the acknowledged prefix on the public side so
     both stores agree after {!Delta_log.recover}. *)
  let applied = ref 0 in
  (try
     List.iter
       (fun (_, ids, hidden) -> Delta_log.append log ~ids ~hidden; incr applied)
       prepared
   with Flash.Power_cut _ as e ->
     Public_store.append_rows public root
       (List.filteri (fun i _ -> i < !applied) prepared
        |> List.map (fun (r, _, _) -> r));
     raise e);
  (try Public_store.append_rows public root (List.map (fun (r, _, _) -> r) prepared)
   with Invalid_argument msg -> fail "insert into %s: %s" root msg)
