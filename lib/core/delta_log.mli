module Value = Ghost_kernel.Value
module Flash = Ghost_flash.Flash

(** Append-only delta log: inserts after the initial load.

    NAND Flash forbids in-place writes, so freshly inserted root-table
    tuples cannot be folded into the SKT / climbing-index structures
    (those are rebuilt offline, in the secure setting, like the initial
    load). Instead each insert appends one fixed-width record — the
    tuple's full SKT-style id vector plus its own hidden column values
    — to a log on the device Flash. Query execution scans the (small)
    log next to the indexed main structures; see {!Exec}.

    Only the schema root accepts inserts in this reproduction: new
    facts referencing existing dimension rows, the natural OLTP case.
    Dimension inserts and deletes are future work (documented in
    DESIGN.md).

    {2 Leveled runs}

    A flat log makes every query pay a full scan that grows without
    bound between reorganizations. When a {!runs_policy} is supplied,
    the log becomes a miniature LSM tree: the unsorted recent pages
    (L0, the memtable role) spill into immutable sorted
    {!Ghost_store.Log_run} runs, runs of a level merge into the next,
    and reads stream runs + L0 with page-range skipping. Because the
    schema root assigns {e dense increasing} ids and each root id
    appears in at most one delta record, L0 is already key-sorted and
    the newest-wins merge is trivially correct. Compaction never runs
    inline in {!append} (a power cut mid-spill must not disturb the
    acknowledged-prefix protocol {!Insert} relies on); it runs in
    background slices via {!compact_step}, typically driven by
    {!Compaction} under the scheduler. Without a policy nothing
    changes: the flat format and all observable behavior stay
    bit-identical to the seed. See DESIGN.md section 16. *)

type durability =
  | Plain  (** raw records, no torn-write detection (the seed format) *)
  | Checksummed
      (** every page carries a header — magic, the sequence number of
          its first record, a record count and a CRC-32 over header and
          payload (see {!Ghost_kernel.Codec.crc32}) — so a page torn by
          a power cut or corrupted by uncorrected bit-rot is
          detectable, at the price of [20] bytes per page *)

type runs_policy = {
  l0_spill_pages : int;
      (** spill the L0 full pages into a level-1 run once this many
          have accumulated; [>= 1] *)
  run_fanout : int;
      (** merge all runs of a level into one run of the next once the
          level holds this many; [>= 2] *)
}

type t

val create :
  ?durability:durability ->
  ?cache:Ghost_device.Page_cache.t ->
  ?runs:runs_policy ->
  Flash.t ->
  table:string ->
  levels:string list ->
  hidden_cols:(string * Value.ty) list ->
  t
(** [levels] — the subtree preorder (the SKT level layout of the
    table); [hidden_cols] — the table's own hidden columns, in
    declaration order. [durability] defaults to [Plain] (bit-identical
    to the original format). [cache] — the device's shared page cache;
    each append invalidates the page it programs there, since
    {!Flash.append} recycles erased pages the cache may still hold.
    [runs] — omit for the seed's flat log; supply a policy to enable
    leveled compaction. *)

val durability : t -> durability

val table : t -> string
val count : t -> int
(** Logical records ever appended (and recovered). Monotonic even
    across compaction — {!Catalog} derives the next dense root id from
    it — and unchanged by tombstone folding. *)

val record_bytes : t -> int
val size_bytes : t -> int
(** Live bytes of the log (runs + full pages + current tail). *)

val dead_bytes : t -> int
(** Bytes of superseded programs — stale tails, compacted-away inputs
    and abandoned partial builds — the write amplification of the
    no-rewrite discipline, reclaimed only by offline reorganization. *)

val append : t -> ids:int array -> hidden:Value.t array -> unit
(** Appends one record; programs a Flash page per page-full of records
    (partially filled tail pages are reprogrammed into fresh pages, as
    the no-rewrite discipline demands — the write amplification is
    metered). Raises [Invalid_argument] on misaligned input, or when
    the log {!needs_recovery}. An append is {e acknowledged} only when
    this call returns: if the page program is torn by a simulated power
    cut, [Flash.Power_cut] propagates, the record is not durable, and
    the log refuses further appends until {!recover} runs. *)

(** {2 Leveled compaction} *)

val runs_enabled : t -> bool
(** A {!runs_policy} was supplied at creation. *)

val has_runs : t -> bool
(** At least one sorted run is installed. *)

val run_count : t -> int
val run_pages : t -> int
(** Installed runs / total Flash pages they occupy. *)

val l0_pages : t -> int
(** Unspilled L0 pages (full pages + live tail program). *)

val physical_records : t -> int
(** Records a sequential scan touches: {!count} minus the tombstoned
    records compaction folded away. Equal to {!count} on a flat log. *)

val dropped_records : t -> int
(** Tombstoned records folded away by compaction so far. *)

val compaction_pending : t -> bool
(** A compaction unit is in flight, the L0 spill threshold is reached,
    or some level holds [run_fanout] runs. Always false without a
    policy or while the log {!needs_recovery}. *)

type step =
  | Idle  (** nothing pending *)
  | Worked  (** programmed up to [max_pages]; call again *)
  | Installed of installed
      (** the in-flight unit's output run was sealed and installed (or
          its inputs were dropped whole, when every record was
          tombstoned) *)

and installed = {
  inst_spill : bool;  (** an L0 spill, as opposed to a run merge *)
  inst_level : int;  (** level of the installed run *)
  inst_pages : int;  (** run pages programmed for it *)
  inst_records : int;  (** records it holds *)
  inst_dropped : int;  (** tombstoned records folded away *)
}

val compact_step : ?drop:(int -> bool) -> t -> max_pages:int -> step
(** Runs one bounded slice of background compaction: starts (or
    resumes) the pending unit and feeds its builder until [max_pages]
    run pages have been programmed this slice or the input is
    exhausted, whichever first. [drop] is consulted once per record
    with its root id; dropped records (tombstoned ones, in practice)
    are folded away and the run keeps the log's scan cost from
    re-paying them forever. The unit's state is plain data on [t], so
    it survives image save/load and arbitrary interleaving with
    appends and queries — installed runs are immutable and L0 only
    grows between slices. Raises [Invalid_argument] while the log
    {!needs_recovery} or when [max_pages < 1]; propagates
    [Flash.Power_cut] (the crash is recovered like any other, see
    below). *)

(** {2 Crash safety}

    A power cut can tear the in-flight tail program. Because every
    append programs a {e fresh} page and the superseded tail programs
    stay on flash until reorganization, the previous tail page still
    holds every acknowledged record — recovery only has to find it.

    Compaction adds two cases, both resolved by the run seal flag
    (DESIGN.md section 16): an {e installed} run was committed by its
    sealed final-page program and rolls {e forward} (it re-validates);
    an {e interrupted build} is unsealed by construction, never
    observable by readers, and rolls {e back} — the partial output is
    abandoned as dead bytes and the untouched inputs remain live. *)

val needs_recovery : t -> bool
(** True after a power cut tore a program of this log and until
    {!recover} completes. *)

type recovery = {
  recovered : int;  (** records in the log after recovery *)
  lost : int;  (** in-memory records dropped (never acknowledged) *)
  torn_pages : int;  (** pages found torn or checksum-invalid *)
}

val recover : t -> recovery
(** Post-crash scan (metered): re-validates installed runs, abandons
    any interrupted compaction build, then re-reads the L0 pages and
    keeps the longest checksum-valid prefix continuing the spilled
    sequence — exactly the acknowledged appends, no phantom records.
    Only a [Checksummed] log can recover; raises [Invalid_argument] on
    a [Plain] one. Idempotent; clears {!needs_recovery}. *)

type row = {
  ids : int array;  (** aligned with [levels] *)
  hidden : Value.t array;  (** aligned with [hidden_cols] *)
}

val scan :
  ?ram:Ghost_device.Ram.t -> t -> (row -> unit) -> unit
(** Sequential metered read of the whole log: installed runs oldest
    first, then the L0 pages — ascending root-id order throughout,
    matching the flat log's append order. *)

val scan_range :
  ?ram:Ghost_device.Ram.t -> ?lo:int -> ?hi:int -> t -> (row -> unit) -> unit
(** {!scan} that skips run pages whose key fences fall outside
    [[lo, hi]] — the merge-on-read fast path. Emits a {e superset} of
    the rows in range (page granularity; L0 is always read whole), so
    callers re-check membership exactly as {!Exec}'s shipped-id
    filters do. On a flat log the bounds are ignored and the scan is
    bit-identical to {!scan}. *)

val hidden_value : t -> row -> string -> Value.t
(** [hidden_value t row col] — the record's value of one of the
    table's own hidden columns. Raises [Not_found]. *)

val hidden_assoc : t -> row -> (string * Value.t) list
(** All of the record's own hidden column values, by name. *)
