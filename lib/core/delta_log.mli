module Value = Ghost_kernel.Value
module Flash = Ghost_flash.Flash

(** Append-only delta log: inserts after the initial load.

    NAND Flash forbids in-place writes, so freshly inserted root-table
    tuples cannot be folded into the SKT / climbing-index structures
    (those are rebuilt offline, in the secure setting, like the initial
    load). Instead each insert appends one fixed-width record — the
    tuple's full SKT-style id vector plus its own hidden column values
    — to a log on the device Flash. Query execution scans the (small)
    log next to the indexed main structures; see {!Exec}.

    Only the schema root accepts inserts in this reproduction: new
    facts referencing existing dimension rows, the natural OLTP case.
    Dimension inserts and deletes are future work (documented in
    DESIGN.md). *)

type durability =
  | Plain  (** raw records, no torn-write detection (the seed format) *)
  | Checksummed
      (** every page carries a header — magic, the sequence number of
          its first record, a record count and a CRC-32 over header and
          payload (see {!Ghost_kernel.Codec.crc32}) — so a page torn by
          a power cut or corrupted by uncorrected bit-rot is
          detectable, at the price of [20] bytes per page *)

type t

val create :
  ?durability:durability ->
  ?cache:Ghost_device.Page_cache.t ->
  Flash.t ->
  table:string ->
  levels:string list ->
  hidden_cols:(string * Value.ty) list ->
  t
(** [levels] — the subtree preorder (the SKT level layout of the
    table); [hidden_cols] — the table's own hidden columns, in
    declaration order. [durability] defaults to [Plain] (bit-identical
    to the original format). [cache] — the device's shared page cache;
    each append invalidates the page it programs there, since
    {!Flash.append} recycles erased pages the cache may still hold. *)

val durability : t -> durability

val table : t -> string
val count : t -> int
val record_bytes : t -> int
val size_bytes : t -> int
(** Live bytes of the log (full pages + current tail). *)

val dead_bytes : t -> int
(** Bytes of superseded tail programs — the write amplification of the
    no-rewrite discipline, reclaimed only by offline reorganization. *)

val append : t -> ids:int array -> hidden:Value.t array -> unit
(** Appends one record; programs a Flash page per page-full of records
    (partially filled tail pages are reprogrammed into fresh pages, as
    the no-rewrite discipline demands — the write amplification is
    metered). Raises [Invalid_argument] on misaligned input, or when
    the log {!needs_recovery}. An append is {e acknowledged} only when
    this call returns: if the page program is torn by a simulated power
    cut, [Flash.Power_cut] propagates, the record is not durable, and
    the log refuses further appends until {!recover} runs. *)

(** {2 Crash safety}

    A power cut can tear the in-flight tail program. Because every
    append programs a {e fresh} page and the superseded tail programs
    stay on flash until reorganization, the previous tail page still
    holds every acknowledged record — recovery only has to find it. *)

val needs_recovery : t -> bool
(** True after a power cut tore a program of this log and until
    {!recover} completes. *)

type recovery = {
  recovered : int;  (** records in the log after recovery *)
  lost : int;  (** in-memory records dropped (never acknowledged) *)
  torn_pages : int;  (** pages found torn or checksum-invalid *)
}

val recover : t -> recovery
(** Post-crash scan (metered): re-reads the log's pages, keeps the
    longest checksum-valid, sequence-continuous prefix and truncates
    the volatile state to it — exactly the acknowledged appends, no
    phantom records. Only a [Checksummed] log can recover; raises
    [Invalid_argument] on a [Plain] one. Idempotent; clears
    {!needs_recovery}. *)

type row = {
  ids : int array;  (** aligned with [levels] *)
  hidden : Value.t array;  (** aligned with [hidden_cols] *)
}

val scan :
  ?ram:Ghost_device.Ram.t -> t -> (row -> unit) -> unit
(** Sequential metered read of the whole log. *)

val hidden_value : t -> row -> string -> Value.t
(** [hidden_value t row col] — the record's value of one of the
    table's own hidden columns. Raises [Not_found]. *)

val hidden_assoc : t -> row -> (string * Value.t) list
(** All of the record's own hidden column values, by name. *)
