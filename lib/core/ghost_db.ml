module Value = Ghost_kernel.Value
module Codec = Ghost_kernel.Codec
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Flash = Ghost_flash.Flash
module Device = Ghost_device.Device
module Trace = Ghost_device.Trace
module Parser = Ghost_sql.Parser
module Bind = Ghost_sql.Bind
module Public_store = Ghost_public.Public_store
module Spy = Ghost_public.Spy

type t = {
  catalog : Catalog.t;
  public : Public_store.t;
  trace : Trace.t;
  mutable reorg : Reorg.progress option;
      (* an interrupted journaled reorganization awaiting recovery *)
}

let of_schema ?device_config ?index_hidden_fks schema rows =
  let trace = Trace.create () in
  let catalog, public =
    Loader.load ?device_config ?index_hidden_fks ~trace schema rows
  in
  { catalog; public; trace; reorg = None }

let create ?device_config ?index_hidden_fks ~ddl rows =
  let schema = Bind.ddl_to_schema (Parser.parse_ddl ddl) in
  of_schema ?device_config ?index_hidden_fks schema rows

let schema t = t.catalog.Catalog.schema
let catalog t = t.catalog
let public t = t.public
let device t = t.catalog.Catalog.device
let trace t = t.trace

let set_metrics t m = Device.set_metrics (device t) m
let metrics t = Device.metrics (device t)
let flush_metrics t = Device.flush_metrics (device t)

(* A rebuilt instance keeps reporting into the same registry: attaching
   rebases the registry past the old card's timeline, so profiles from
   before and after a reorganization stack on one trace. *)
let adopt_metrics ~from db =
  (match Device.metrics (device from) with
   | Some m -> Device.set_metrics (device db) (Some m)
   | None -> ());
  db

let bind t sql = Bind.bind (schema t) sql

let check_no_reorg t op =
  if t.reorg <> None then
    failwith
      (Printf.sprintf
         "Ghost_db.%s: a reorganization was interrupted by a power cut; run \
          recover first"
         op)

let insert t rows =
  check_no_reorg t "insert";
  Insert.insert_root t.catalog t.public rows

let delete t ids =
  check_no_reorg t "delete";
  Insert.delete_root t.catalog t.public ids

let root_name t =
  (Ghost_relation.Schema.root t.catalog.Catalog.schema).Ghost_relation.Schema.name

let delta_count t = Catalog.delta_count t.catalog (root_name t)
let tombstone_count t = Catalog.tombstone_count t.catalog (root_name t)

type reorg_outcome =
  | Reorg_completed of { db : t; phases_reused : int; phases_redone : int }
  | Reorg_rolled_back of { journal_records : int }

type recovery_report = {
  delta_recovered : int;
  delta_lost : int;
  tombstones_recovered : int;
  tombstones_lost : int;
  delta_torn_pages : int;
  tombstone_torn_pages : int;
  reorg : reorg_outcome option;
}

let needs_recovery (t : t) =
  t.reorg <> None
  || (match Catalog.delta t.catalog (root_name t) with
      | Some log -> Delta_log.needs_recovery log
      | None -> false)
  || (match Catalog.tombstone t.catalog (root_name t) with
      | Some log -> Tombstone_log.needs_recovery log
      | None -> false)

let reorganize t =
  check_no_reorg t "reorganize";
  if (Device.config t.catalog.Catalog.device).Device.durable_logs then begin
    (* Journaled shadow build: crash-safe, resumable (see {!Reorg}).
       Refuse before the journal's first record if a log still needs
       recovery — same policy as {!Reorganize.snapshot}, checked here
       so no Begin record is wasted on a doomed build. *)
    if needs_recovery t then
      failwith
        "Ghost_db.reorganize: logs need recovery after a power cut; run \
         recover first";
    let p = Reorg.create t.catalog t.public in
    t.reorg <- Some p;
    match Reorg.advance p with
    | catalog, public, trace ->
      t.reorg <- None;
      adopt_metrics ~from:t { catalog; public; trace; reorg = None }
    | exception (Flash.Power_cut _ as e) ->
      Reorg.note_crash p;
      raise e
  end
  else begin
    let rows = Reorganize.snapshot t.catalog t.public in
    (* The old device (and its Flash content) is being abandoned: drop
       every resident frame so nothing stale can be served if the caller
       keeps using the old handle. The new device builds its own cache. *)
    Option.iter Ghost_device.Page_cache.clear
      (Device.page_cache t.catalog.Catalog.device);
    adopt_metrics ~from:t
      (of_schema
         ~device_config:(Device.config t.catalog.Catalog.device)
         t.catalog.Catalog.schema rows)
  end

let recover_reorg (t : t) =
  match t.reorg with
  | None -> None
  | Some p ->
    let device = t.catalog.Catalog.device in
    Reorg.revalidate p;
    if Reorg.can_roll_forward p then begin
      match Reorg.advance p with
      | catalog, public, trace ->
        t.reorg <- None;
        Device.note_reorg_outcome device ~rolled_forward:true;
        Some
          (Reorg_completed
             {
               db = adopt_metrics ~from:t { catalog; public; trace; reorg = None };
               phases_reused = Reorg.phases_reused p;
               phases_redone = Reorg.phases_redone p;
             })
      | exception (Flash.Power_cut _ as e) ->
        (* Crashed again mid-resume: the progress stays pending; the
           next recover revalidates and picks up from here. *)
        Reorg.note_crash p;
        raise e
    end
    else begin
      match Reorg.abort p with
      | () ->
        t.reorg <- None;
        Device.note_reorg_outcome device ~rolled_forward:false;
        Some (Reorg_rolled_back { journal_records = Reorg.journal_pages p })
      | exception (Flash.Power_cut _ as e) ->
        Reorg.note_crash p;
        raise e
    end

let recover t =
  let root = root_name t in
  let device = t.catalog.Catalog.device in
  let dr, dl, dt =
    match Catalog.delta t.catalog root with
    | Some log when Delta_log.needs_recovery log ->
      let r = Delta_log.recover log in
      (r.Delta_log.recovered, r.Delta_log.lost, r.Delta_log.torn_pages)
    | _ -> (0, 0, 0)
  in
  let tr, tl, tt =
    match Catalog.tombstone t.catalog root with
    | Some log when Tombstone_log.needs_recovery log ->
      let r = Tombstone_log.recover log in
      (r.Tombstone_log.recovered, r.Tombstone_log.lost, r.Tombstone_log.torn_pages)
    | _ -> (0, 0, 0)
  in
  Device.note_recovery device ~recovered:(dr + tr) ~lost:(dl + tl);
  let reorg = recover_reorg t in
  {
    delta_recovered = dr;
    delta_lost = dl;
    tombstones_recovered = tr;
    tombstones_lost = tl;
    delta_torn_pages = dt;
    tombstone_torn_pages = tt;
    reorg;
  }

let compact t =
  check_no_reorg t "compact";
  if needs_recovery t then
    failwith
      "Ghost_db.compact: logs need recovery after a power cut; run recover first";
  Compaction.run_pending (Compaction.create t.catalog)

let compaction_pending t =
  match Catalog.delta t.catalog (root_name t) with
  | Some log -> Delta_log.compaction_pending log
  | None -> false

let plans t sql = Planner.with_estimates t.catalog (bind t sql)

let query t ?exact_post ?bloom_fpr ?(oblivious = false) sql =
  let q = bind t sql in
  let plan, est =
    if oblivious then begin
      (* One fixed-shape plan per query: strategy choice is itself a
         function of the hidden data's statistics, so the oblivious
         path never consults the cost-based panel. *)
      let p = Planner.oblivious t.catalog q in
      (p, Cost.estimate t.catalog p)
    end
    else Planner.best t.catalog q
  in
  let r = Exec.run ?exact_post ?bloom_fpr t.catalog t.public plan in
  (* Serial queries are calibration ground truth too: the planner's
     estimate for the chosen plan against the measured device time. *)
  (match Device.metrics (device t) with
   | None -> ()
   | Some reg ->
     Ghost_metrics.Metrics.calibrate reg ~cls:plan.Plan.label
       ~predicted_us:est.Cost.est_time_us ~measured_us:r.Exec.elapsed_us);
  r

let run_plan t ?exact_post ?bloom_fpr ?(oblivious = false) plan =
  let plan =
    if oblivious then Plan.with_mode plan Ghost_oblivious.Oblivious.Full
    else plan
  in
  Exec.run ?exact_post ?bloom_fpr t.catalog t.public plan

let spy_report t = Spy.analyze t.trace

let access_profile t ~fixed_shape =
  {
    Privacy.fixed_shape;
    page_bound = List.length (Catalog.structure_pages t.catalog);
  }

let audit ?access t = Privacy.audit ?access t.trace
let clear_trace t = Trace.clear t.trace
let storage t = Catalog.storage t.catalog

exception Image_error of string

(* Bumped to 4 when the image gained its length header and CRC-32
   trailer (and the instance its reorg field); to 5 when the device
   config gained its wire-format field and the device its wire
   encoder; to 6 when the config gained verify_pages and the Flash
   regions their authentication flag and latent-corruption table; to 7
   when trace events gained their oblivious leakage annotation:
   older marshalled images are incompatible. *)
let image_magic = "GHOSTDB-IMAGE-8\n"

(* Image layout: magic | u64 payload length | payload (marshalled
   instance) | u32 CRC-32 of the payload. Written to [<path>.tmp] and
   renamed into place, so a crash mid-save leaves the previous image
   (or no file) — never a partial one. *)

let save_image t path =
  check_no_reorg t "save_image";
  let payload = Marshal.to_string (t : t) [] in
  let len = String.length payload in
  let crc = Codec.crc32 (Bytes.unsafe_of_string payload) ~pos:0 ~len in
  let tmp = path ^ ".tmp" in
  let oc =
    try open_out_bin tmp with Sys_error msg -> raise (Image_error msg)
  in
  (try
     output_string oc image_magic;
     let hdr = Bytes.create 8 in
     Codec.put_u64 hdr 0 len;
     output_bytes oc hdr;
     output_string oc payload;
     let tail = Bytes.create 4 in
     Codec.put_u32 tail 0 crc;
     output_bytes oc tail;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with Sys_error msg ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise (Image_error msg)

let load_image path =
  let ic =
    try open_in_bin path with Sys_error msg -> raise (Image_error msg)
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let magic =
    try really_input_string ic (String.length image_magic)
    with End_of_file ->
      raise (Image_error (path ^ " is truncated: shorter than the magic"))
  in
  if magic <> image_magic then
    raise
      (Image_error (path ^ " is not a GhostDB image (or an incompatible version)"));
  let hdr = Bytes.create 8 in
  (try really_input ic hdr 0 8
   with End_of_file ->
     raise (Image_error (path ^ " is truncated: payload length missing")));
  let len = Codec.get_u64 hdr 0 in
  let remaining = in_channel_length ic - pos_in ic in
  if len < 0 || len + 4 > remaining then
    raise
      (Image_error
         (Printf.sprintf "%s is truncated: %d payload bytes promised, %d present"
            path len (max 0 (remaining - 4))));
  let payload = Bytes.create len in
  really_input ic payload 0 len;
  let tail = Bytes.create 4 in
  really_input ic tail 0 4;
  if Codec.get_u32 tail 0 <> Codec.crc32 payload ~pos:0 ~len then
    raise (Image_error (path ^ " is corrupted: payload checksum mismatch"));
  try (Marshal.from_bytes payload 0 : t)
  with Failure _ ->
    raise (Image_error (path ^ " is corrupted: unmarshalling failed"))

let row_to_string row =
  String.concat " | " (Array.to_list (Array.map Value.to_string row))
