module Value = Ghost_kernel.Value
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Device = Ghost_device.Device
module Trace = Ghost_device.Trace
module Parser = Ghost_sql.Parser
module Bind = Ghost_sql.Bind
module Public_store = Ghost_public.Public_store
module Spy = Ghost_public.Spy

type t = {
  catalog : Catalog.t;
  public : Public_store.t;
  trace : Trace.t;
}

let of_schema ?device_config ?index_hidden_fks schema rows =
  let trace = Trace.create () in
  let catalog, public =
    Loader.load ?device_config ?index_hidden_fks ~trace schema rows
  in
  { catalog; public; trace }

let create ?device_config ?index_hidden_fks ~ddl rows =
  let schema = Bind.ddl_to_schema (Parser.parse_ddl ddl) in
  of_schema ?device_config ?index_hidden_fks schema rows

let schema t = t.catalog.Catalog.schema
let catalog t = t.catalog
let public t = t.public
let device t = t.catalog.Catalog.device
let trace t = t.trace

let bind t sql = Bind.bind (schema t) sql

let insert t rows = Insert.insert_root t.catalog t.public rows
let delete t ids = Insert.delete_root t.catalog t.public ids

let root_name t =
  (Ghost_relation.Schema.root t.catalog.Catalog.schema).Ghost_relation.Schema.name

let delta_count t = Catalog.delta_count t.catalog (root_name t)
let tombstone_count t = Catalog.tombstone_count t.catalog (root_name t)

let reorganize t =
  let rows = Reorganize.snapshot t.catalog t.public in
  (* The old device (and its Flash content) is being abandoned: drop
     every resident frame so nothing stale can be served if the caller
     keeps using the old handle. The new device builds its own cache. *)
  Option.iter Ghost_device.Page_cache.clear
    (Device.page_cache t.catalog.Catalog.device);
  of_schema ~device_config:(Device.config (t.catalog.Catalog.device)) t.catalog.Catalog.schema rows

type recovery_report = {
  delta_recovered : int;
  delta_lost : int;
  tombstones_recovered : int;
  tombstones_lost : int;
  torn_pages : int;
}

let needs_recovery t =
  let root = root_name t in
  (match Catalog.delta t.catalog root with
   | Some log -> Delta_log.needs_recovery log
   | None -> false)
  || (match Catalog.tombstone t.catalog root with
      | Some log -> Tombstone_log.needs_recovery log
      | None -> false)

let recover t =
  let root = root_name t in
  let device = t.catalog.Catalog.device in
  let dr, dl, dt =
    match Catalog.delta t.catalog root with
    | Some log when Delta_log.needs_recovery log ->
      let r = Delta_log.recover log in
      (r.Delta_log.recovered, r.Delta_log.lost, r.Delta_log.torn_pages)
    | _ -> (0, 0, 0)
  in
  let tr, tl, tt =
    match Catalog.tombstone t.catalog root with
    | Some log when Tombstone_log.needs_recovery log ->
      let r = Tombstone_log.recover log in
      (r.Tombstone_log.recovered, r.Tombstone_log.lost, r.Tombstone_log.torn_pages)
    | _ -> (0, 0, 0)
  in
  Device.note_recovery device ~recovered:(dr + tr) ~lost:(dl + tl);
  {
    delta_recovered = dr;
    delta_lost = dl;
    tombstones_recovered = tr;
    tombstones_lost = tl;
    torn_pages = dt + tt;
  }

let plans t sql = Planner.with_estimates t.catalog (bind t sql)

let query t ?exact_post ?bloom_fpr sql =
  let q = bind t sql in
  let plan, _ = Planner.best t.catalog q in
  Exec.run ?exact_post ?bloom_fpr t.catalog t.public plan

let run_plan t ?exact_post ?bloom_fpr plan =
  Exec.run ?exact_post ?bloom_fpr t.catalog t.public plan

let spy_report t = Spy.analyze t.trace
let audit t = Privacy.audit t.trace
let clear_trace t = Trace.clear t.trace
let storage t = Catalog.storage t.catalog

exception Image_error of string

(* Bumped to 3 when the device gained the shared page cache (and the
   logs a reference to it): older marshalled images are incompatible. *)
let image_magic = "GHOSTDB-IMAGE-3\n"

let save_image t path =
  let oc = open_out_bin path in
  (try
     output_string oc image_magic;
     Marshal.to_channel oc (t : t) []
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let load_image path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> raise (Image_error msg)
  in
  let finish v =
    close_in_noerr ic;
    v
  in
  try
    let magic = really_input_string ic (String.length image_magic) in
    if magic <> image_magic then
      raise (Image_error (path ^ " is not a GhostDB image"));
    finish (Marshal.from_channel ic : t)
  with
  | Image_error _ as e ->
    close_in_noerr ic;
    raise e
  | End_of_file | Failure _ ->
    close_in_noerr ic;
    raise (Image_error (path ^ " is truncated or incompatible"))

let row_to_string row =
  String.concat " | " (Array.to_list (Array.map Value.to_string row))
