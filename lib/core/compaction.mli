module Device = Ghost_device.Device

(** Background delta-log compactor.

    Drives {!Delta_log.compact_step} across every delta log of a
    catalog in small, bounded slices — the write-path counterpart of
    the Flash scrubber, designed for the same scheduler idle slices
    (see {!Ghost_sched.Scheduler.set_compactor}). Each slice programs
    at most [max_pages] run pages, so a slice's device-clock charge is
    bounded no matter how deep the leveled tree has grown, and the
    resumable unit state lives on the log itself (plain data), so a
    marshalled image resumes compaction exactly where it stopped.

    Tombstoned records are folded away during compaction ([drop] is
    the root tombstone membership test); the tombstone log itself is
    untouched — it still filters base-structure rows, which only
    offline reorganization can remove.

    {b Privacy.} Compaction traffic depends only on append and delete
    {e volume} — how many records accumulated and which public root
    ids were deleted — never on hidden column values. A spy timing
    idle activity learns the insert/delete rate it already observed on
    the bus.

    Installed outputs are reported to the device counters
    ({!Device.note_log_spill} / {!Device.note_log_merge}), feeding the
    [compaction.*] and [run.*] metrics the CI regression gate
    exact-matches. *)

type t

type progress = {
  spills : int;  (** L0 spills installed *)
  merges : int;  (** run merges installed *)
  pages_written : int;  (** run pages of installed outputs *)
  records_dropped : int;  (** tombstoned records folded away *)
}

val create : ?max_pages:int -> Catalog.t -> t
(** A compactor over every delta log of the catalog (present and
    future — logs are created lazily on first insert). [max_pages]
    (default {!default_max_pages}) bounds the run pages programmed per
    {!step}. Raises [Invalid_argument] when [max_pages <= 0]. *)

val default_max_pages : int

val step : t -> bool
(** Runs one slice on the first log (by table name) with pending
    compaction: [true] if it worked, [false] when every log is idle.
    Never raises on a quiescent catalog; a log awaiting post-crash
    recovery is skipped until {!Delta_log.recover} runs. Propagates
    [Flash.Power_cut] from a torn run-page program. *)

val run_pending : t -> unit
(** Steps until no log has pending compaction — the eager entry point
    for tests, experiments and {!Ghost_db.compact}. *)

val idle : t -> bool
(** No log has pending compaction: {!step} would do nothing. *)

val progress : t -> progress
