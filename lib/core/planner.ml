module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Predicate = Ghost_relation.Predicate
module Bind = Ghost_sql.Bind

exception Planning_error of string

let root_of cat (q : Bind.query) =
  Schema.subtree_root cat.Catalog.schema q.Bind.tables

(* Predicates grouped by table, split hidden/visible. *)
let table_groups cat (q : Bind.query) =
  let schema = cat.Catalog.schema in
  let tables = List.sort_uniq String.compare (List.map (fun p -> p.Predicate.table) q.Bind.selections) in
  List.map
    (fun table ->
       let preds = List.filter (fun p -> p.Predicate.table = table) q.Bind.selections in
       let tbl = Schema.find_table schema table in
       let hidden, visible =
         List.partition
           (fun (p : Predicate.t) ->
              Column.is_hidden (Schema.find_column tbl p.Predicate.column))
           preds
       in
       (table, hidden, visible))
    tables

let indexed cat ~table (p : Predicate.t) =
  Catalog.attr_index cat ~table ~column:p.Predicate.column <> None

(* Deep cross-filtering (Section 4): indexed hidden predicates on
   strict descendants of [table] whose climbing index carries a list at
   [table]'s level. *)
let borrowable cat (q : Bind.query) ~table =
  let schema = cat.Catalog.schema in
  List.filter_map
    (fun (p : Predicate.t) ->
       let d = p.Predicate.table in
       if d = table then None
       else if not (Schema.is_ancestor schema ~ancestor:table d) then None
       else begin
         let tbl = Schema.find_table schema d in
         let hidden =
           Ghost_relation.Column.is_hidden (Schema.find_column tbl p.Predicate.column)
         in
         if hidden && indexed cat ~table:d p then Some (d, p) else None
       end)
    q.Bind.selections

let hidden_plans cat ~table hidden ~strategy =
  List.map
    (fun (p : Predicate.t) ->
       let s =
         match strategy with
         | Plan.H_index when indexed cat ~table p -> Plan.H_index
         | Plan.H_index | Plan.H_check -> Plan.H_check
       in
       { Plan.h_pred = p; h_strategy = s })
    hidden

(* The strategy options of one table group:
   (hidden_strategy, visible_strategy, borrowed) combinations. *)
let group_options cat q (table, hidden, visible) =
  let any_indexed = List.exists (indexed cat ~table) hidden in
  let borrowed = borrowable cat q ~table in
  let hidden_opts =
    if hidden = [] then [ Plan.H_index ]  (* irrelevant *)
    else if any_indexed then [ Plan.H_index; Plan.H_check ]
    else [ Plan.H_check ]
  in
  let visible_opts h =
    if visible = [] then [ (Plan.V_pre, []) ]  (* irrelevant *)
    else begin
      let base = [ (Plan.V_pre, []); (Plan.V_post, []) ] in
      let cross =
        if h = Plan.H_index && any_indexed then
          [ (Plan.V_cross_pre, []); (Plan.V_cross_post, []) ]
        else []
      in
      let deep =
        if borrowed <> [] then [ (Plan.V_cross_pre, borrowed) ] else []
      in
      base @ cross @ deep
    end
  in
  List.concat_map
    (fun h ->
       List.map
         (fun (v, b) ->
            {
              Plan.g_table = table;
              g_hidden = hidden_plans cat ~table hidden ~strategy:h;
              g_visible = visible;
              g_visible_strategy = v;
              g_borrowed = b;
            })
         (visible_opts h))
    hidden_opts

let max_plans = 512

let enumerate cat (q : Bind.query) =
  let root = root_of cat q in
  let groups = table_groups cat q in
  let options = List.map (group_options cat q) groups in
  let combos =
    List.fold_left
      (fun acc opts ->
         if List.length acc * List.length opts > max_plans then
           (* keep the panel bounded: extend with the first option only *)
           match opts with
           | first :: _ -> List.map (fun partial -> first :: partial) acc
           | [] -> acc
         else
           List.concat_map (fun o -> List.map (fun partial -> o :: partial) acc) opts)
      [ [] ] options
  in
  List.map (fun groups -> Plan.make ~query:q ~root (List.rev groups)) combos

let with_estimates cat q =
  let plans = enumerate cat q in
  let scored = List.map (fun p -> (p, Cost.estimate cat p)) plans in
  List.sort
    (fun (_, a) (_, b) -> Float.compare a.Cost.est_time_us b.Cost.est_time_us)
    scored

let best cat q =
  match with_estimates cat q with
  | [] -> raise (Planning_error "empty plan panel")
  | p :: _ -> p

(* Canonical plans. *)
let with_uniform_strategy cat (q : Bind.query) ~visible_strategy ~use_cross =
  let root = root_of cat q in
  let groups =
    List.map
      (fun (table, hidden, visible) ->
         let any_indexed = List.exists (indexed cat ~table) hidden in
         let v =
           if use_cross && any_indexed && visible <> [] then
             match visible_strategy with
             | Plan.V_pre -> Plan.V_cross_pre
             | Plan.V_post -> Plan.V_cross_post
             | s -> s
           else visible_strategy
         in
         let borrowed =
           if use_cross && visible <> [] && visible_strategy = Plan.V_pre then
             borrowable cat q ~table
           else []
         in
         let v = if borrowed <> [] then Plan.V_cross_pre else v in
         {
           Plan.g_table = table;
           g_hidden = hidden_plans cat ~table hidden ~strategy:Plan.H_index;
           g_visible = visible;
           g_visible_strategy = v;
           g_borrowed = borrowed;
         })
      (table_groups cat q)
  in
  Plan.make ~query:q ~root groups

let all_pre cat q = with_uniform_strategy cat q ~visible_strategy:Plan.V_pre ~use_cross:false
let all_post cat q = with_uniform_strategy cat q ~visible_strategy:Plan.V_post ~use_cross:false
let cross cat q = with_uniform_strategy cat q ~visible_strategy:Plan.V_pre ~use_cross:true

(* The fixed-shape plan oblivious execution always runs: every hidden
   predicate is a per-candidate check over a bound-depth sequential
   scan (never a data-dependent climbing-index walk), every visible
   predicate a shipped-list membership check. Strategy choice is what
   the access pattern would otherwise leak, so there is exactly one
   oblivious plan per query. *)
let oblivious cat (q : Bind.query) =
  let root = root_of cat q in
  let groups =
    List.map
      (fun (table, hidden, visible) ->
         {
           Plan.g_table = table;
           g_hidden =
             List.map
               (fun p -> { Plan.h_pred = p; h_strategy = Plan.H_check })
               hidden;
           g_visible = visible;
           g_visible_strategy = Plan.V_pre;
           g_borrowed = [];
         })
      (table_groups cat q)
  in
  Plan.make ~oblivious:Ghost_oblivious.Oblivious.Full ~query:q ~root groups

let uniform cat q strategy =
  match strategy with
  | Plan.V_pre -> all_pre cat q
  | Plan.V_post -> all_post cat q
  | Plan.V_cross_pre -> cross cat q
  | Plan.V_cross_post ->
    with_uniform_strategy cat q ~visible_strategy:Plan.V_post ~use_cross:true
