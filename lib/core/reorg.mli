module Relation = Ghost_relation.Relation
module Trace = Ghost_device.Trace
module Public_store = Ghost_public.Public_store

(** Crash-safe offline reorganization: a checkpointed shadow build
    with an atomic commit record.

    {!Reorganize.snapshot} + {!Loader.load} rebuild the device image
    in one shot; a power cut in the middle would leave neither the old
    nor the new image trustworthy. This module executes the same
    rebuild as journaled phases — snapshot (root compaction with
    tombstone filtering), SKT construction, one phase per table for
    the column stores and climbing indexes — on a {e shadow} device
    whose Flash shares the old device's power line, so an armed
    {!Ghost_flash.Flash.arm_power_cut} fires at the n-th program
    across journal and build alike.

    After each phase a CRC-32-stamped checkpoint record is appended to
    a reorg journal on the {e old} device's Flash; a single commit
    record flips the live image. The old image is never modified (the
    journal only appends fresh pages), so recovery can always fall
    back to it: {!Ghost_db.recover} revalidates the journal against
    Flash content and either {e rolls forward} from the last durable
    checkpoint — reusing completed phases, validated by the journal's
    digests — or {e rolls back} to the intact pre-reorg image.

    As with the crash-safe logs, recovery trusts only what it can read
    back and checksum off the Flash; everything held in RAM is a hint
    to be validated. *)

type progress
(** A reorganization in flight (or interrupted). *)

val create : Catalog.t -> Public_store.t -> progress
(** Plans the rebuild of the given database. Writes nothing: the
    journal's [Begin] record is the first program of {!advance}. *)

val advance : progress -> Catalog.t * Public_store.t * Trace.t
(** Runs every phase still pending, checkpointing each, then appends
    the commit record and assembles the new image. On a fresh
    [progress] this is the whole rebuild; after a crash and
    {!revalidate} it resumes, skipping the phases whose checkpoints
    are durable. Raises {!Ghost_flash.Flash.Power_cut} if an armed
    power cut fires mid-build — the [progress] then holds the
    interrupted state for recovery. *)

val note_crash : progress -> unit
(** Marks the in-flight phase as interrupted (called by
    {!Ghost_db.reorganize} when a power cut escapes {!advance}). *)

val revalidate : progress -> unit
(** The post-crash protocol: re-reads the journal pages off the old
    device's Flash, keeps the longest CRC-valid sequence-continuous
    record prefix, and truncates the in-memory phase outputs to the
    checkpoints that survived — including dropping a snapshot whose
    digest no longer matches its checkpoint record. *)

val can_roll_forward : progress -> bool
(** After {!revalidate}: true when at least the snapshot checkpoint is
    durable (digest-valid), so {!advance} can resume; false when the
    only sound outcome is rolling back to the old image. *)

val abort : progress -> unit
(** Rolls back: appends an [Abort] record superseding the journal. The
    old image was never modified, so nothing else needs undoing; the
    journal pages become garbage reclaimed with the rest of the old
    Flash at the next successful reorganization. *)

val phase_count : progress -> int
val phases_reused : progress -> int
(** Phases whose checkpoints let a resumed {!advance} skip them. *)

val phases_redone : progress -> int
(** Phases re-executed on resume because their checkpoint (or their
    own build) was torn. *)

val journal_pages : progress -> int
(** Journal records durably on Flash (after {!revalidate}: the
    validated prefix). *)
