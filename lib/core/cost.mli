module Bind = Ghost_sql.Bind

(** Analytic cost model.

    Estimates a plan's simulated execution time from the catalog
    statistics and the device configuration, mirroring the executor's
    cost structure: climbing-index traversals (directory probes + list
    bytes), climbs of shipped id lists (per-id locator reads, list
    bytes, hierarchical merge passes), USB transfers, Bloom
    build/probe CPU, SKT accesses for surviving candidates, hidden
    column checks, and projection joins (RAM hash vs external sort).
    When the device is configured with a shared page cache
    ([page_cache_frames > 0]) the Flash components of the estimate are
    discounted by an expected hit ratio, derived from the frame-pool
    size against the hot working set (index directories + SKT rows +
    hidden column stores); the scratch region is never discounted.
    The absolute numbers are approximations; what the optimizer needs
    is the {e ranking}, dominated by the Pre-filter climb volume vs the
    Post-filter candidate volume. *)

type estimate = {
  est_time_us : float;
  est_candidates : int;  (** expected candidates after Pre-filtering *)
  est_results : int;  (** expected result cardinality *)
  est_ram_bytes : int;  (** main resident structures (Bloom filters) *)
  est_usb_bytes : int;
  breakdown : (string * float) list;  (** per-component microseconds *)
}

val estimate : Catalog.t -> Plan.t -> estimate

val remaining_us : estimate -> spent_us:float -> float
(** [remaining_us e ~spent_us] is the estimated device time the plan
    still needs after [spent_us] microseconds have already been charged
    to it, floored at zero. The scheduler's
    shortest-remaining-cost-first policy ranks runnable sessions by
    this value on every dispatch. *)

val pp : Format.formatter -> estimate -> unit
