module Value = Ghost_kernel.Value
module Device = Ghost_device.Device
module Flash = Ghost_flash.Flash
module Public_store = Ghost_public.Public_store
module Oblivious = Ghost_oblivious.Oblivious

(** The device-side query executor.

    Runs a {!Plan.t} over the catalog: Pre-filter sources are merged
    and intersected into candidate root ids ("Merge+Index" in the
    demo's Figure 6), the SKT is probed for surviving candidates, Bloom
    filters and hidden-column checks post-filter them, visible
    projection streams are joined (in RAM when they fit, by external
    sort on the scratch Flash otherwise), and result tuples leave only
    through the secure display channel.

    Every stage charges the device clock and the RAM arena, and
    reports the per-operator statistics the demo GUI shows (tuples
    processed, local RAM consumption, processing time).

    When the plan carries {!Plan.t.oblivious} = [Pad], the same
    pipeline runs but the three length-bearing USB sites (id
    shipments, projection streams, result emission) are padded up to
    power-of-two buckets under their public bounds. Under [Full] a
    separate fixed-shape path runs instead: bound-depth SKT scan,
    uniform predicate evaluation, full-column streams and
    bound-padded emission, making the spy-visible trace (and the
    device clock) a function of schema and public bounds alone. *)

type op_stats = {
  op_label : string;
  tuples_in : int;
  tuples_out : int;
  ram_peak : int;  (** bytes, high-water inside the operator *)
  usage : Device.usage;
}

type result = {
  rows : Value.t array list;  (** projected tuples, order unspecified *)
  row_count : int;
  ops : op_stats list;  (** in execution order *)
  total : Device.usage;
  elapsed_us : float;  (** simulated device time for the whole plan *)
  ram_peak : int;
  bloom_fp_candidates : int;
      (** candidates admitted by a Bloom filter and later rejected by
          the exact verification join (0 unless Post-filtering ran) *)
  oblivious : Oblivious.mode;  (** the plan's mode, echoed back *)
  padding_bytes : int;
      (** dummy bytes added by oblivious padding across id shipments,
          projection streams and result emission; always 0 under
          {!Oblivious.Off}. The trusted side strips the dummies:
          [rows] only ever holds real tuples. *)
}

exception Exec_error of string

val run :
  ?exact_post:bool ->
  ?bloom_fpr:float ->
  Catalog.t ->
  Public_store.t ->
  Plan.t ->
  result
(** [exact_post] (default true) joins a verification stream for every
    Post-filtered table so Bloom false positives never reach the
    result; switching it off gives the pure-probabilistic variant.
    [bloom_fpr] (default 0.01) is the target false-positive rate used
    to size Bloom filters (subject to the RAM budget); values outside
    the open interval (0, 1) raise [Invalid_argument]. *)

(** {2 Resumable execution}

    The multi-session scheduler runs a plan as a {e step machine}:
    {!start} prepares the execution, {!step} runs it for one quantum
    of simulated device microseconds (Flash + CPU + USB on the device
    clock) and returns {!Yielded} with the continuation captured, or
    {!Finished} with the result. A single machine stepped with an
    infinite quantum is bit-identical to {!run} — same rows, same
    trace, same device clock. Only one machine may be mid-step at a
    time (execution is cooperative, not parallel); the scheduler
    serializes slices on the shared device. *)

type step_machine

type step_outcome =
  | Yielded  (** quantum exhausted; call {!step} again to continue *)
  | Finished of result

exception Cancelled
(** Raised {e inside} the plan when {!cancel} interrupts a suspended
    execution, so deferred releases run; never escapes to callers. *)

val start :
  ?exact_post:bool ->
  ?bloom_fpr:float ->
  ?quantum_us:float ->
  ?scratch:Flash.t ->
  Catalog.t ->
  Public_store.t ->
  Plan.t ->
  step_machine
(** Prepares a resumable execution. [quantum_us] (default [infinity])
    is the slice length in simulated device microseconds — execution
    yields at the first clock charge past it, at tuple granularity.
    [scratch] overrides the spill region (the scheduler passes a
    per-session region from {!Device.new_scratch_region} so one
    session's reclaim cannot tear another's sort runs); default is the
    device's shared scratch. Nothing executes until the first
    {!step}. Raises [Invalid_argument] on a [bloom_fpr] outside (0, 1)
    or a non-positive quantum. *)

val step : step_machine -> step_outcome
(** Runs one slice. An exception from the plan (e.g.
    {!Ghost_device.Ram.Ram_exceeded}) propagates after the machine is
    marked failed; stepping a failed or cancelled machine raises
    [Invalid_argument], stepping a finished one returns its result. *)

val cancel : step_machine -> unit
(** Aborts a pending or suspended execution, running its deferred
    releases (RAM cells, readers, scopes) so the arena comes back
    clean. Idempotent; a no-op on a finished machine. *)

val finished : step_machine -> result option

val pp_ops : Format.formatter -> op_stats list -> unit
