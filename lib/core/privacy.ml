module Trace = Ghost_device.Trace
module Oblivious = Ghost_oblivious.Oblivious

type access = {
  fixed_shape : bool;
  page_bound : int;
}

type verdict = {
  ok : bool;
  violations : string list;
  outbound_payload_bytes : int;
  inbound_bytes : int;
  queries_leaked : string list;
  data_dependent_bits : float;
  padding_bytes : int;
}

let audit ?session ?access trace =
  let violations = ref [] in
  let outbound = ref 0 in
  let inbound = ref 0 in
  let queries = ref [] in
  let audited =
    match session with
    | None -> Trace.events trace
    | Some s -> Trace.session_events trace s
  in
  List.iter
    (fun (e : Trace.event) ->
       (match e.Trace.link, e.Trace.payload with
        | Trace.Device_to_pc, Trace.Ack -> ()
        | Trace.Device_to_pc, Trace.Reorg_progress _ when e.Trace.bytes = 0 ->
          ()  (* content-free liveness notice during reorganization *)
        | Trace.Device_to_pc, p ->
          outbound := !outbound + e.Trace.bytes;
          violations :=
            Printf.sprintf "event #%d: device sent %s to the untrusted PC" e.Trace.seq
              (Trace.payload_summary p)
            :: !violations
        | Trace.Device_to_display, Trace.Result_tuples _ -> ()
        | Trace.Device_to_display, Trace.Cache_stats _ ->
          ()  (* buffer-manager counters rendered beside the results *)
        | Trace.Device_to_display, p ->
          violations :=
            Printf.sprintf "event #%d: unexpected payload %s on the display channel"
              e.Trace.seq (Trace.payload_summary p)
            :: !violations
        | (Trace.Server_to_pc | Trace.Pc_to_server | Trace.Pc_to_device), Trace.Result_tuples _ ->
          violations :=
            Printf.sprintf "event #%d: result tuples on spy-visible link %s" e.Trace.seq
              (Trace.link_name e.Trace.link)
            :: !violations
        | (Trace.Server_to_pc | Trace.Pc_to_server | Trace.Pc_to_device), _ -> ());
       (match e.Trace.link, e.Trace.payload with
        | Trace.Pc_to_device, _ -> inbound := !inbound + e.Trace.bytes
        | _, _ -> ());
       match e.Trace.payload with
       | Trace.Query_text q when Trace.spy_visible e.Trace.link ->
         queries := q :: !queries
       | Trace.Query_text _ | Trace.Id_list _ | Trace.Value_stream _
       | Trace.Result_tuples _ | Trace.Ack | Trace.Cache_stats _
       | Trace.Reorg_progress _ ->
         ())
    audited;
  (* Leakage in bits: every annotated event contributes
     log2(obl_values) — the number of distinct values its observable
     (count, length) can take as the hidden data varies under fixed
     public bounds. The optional access profile adds the page-touch
     side channel the trace itself cannot see: a data-dependent access
     pattern over [page_bound] pages is worth up to
     log2(page_bound + 1) bits; a fixed-shape execution contributes
     zero. *)
  let data_dependent_bits =
    Oblivious.trace_bits ?session trace
    +. (match access with
        | None -> 0.
        | Some a ->
          if a.fixed_shape then 0.
          else Oblivious.bits_of_values (max 1 a.page_bound + 1))
  in
  let padding_bytes =
    List.fold_left
      (fun acc (e : Trace.event) ->
         match e.Trace.obl with
         | Some o -> acc + o.Trace.obl_pad_bytes
         | None -> acc)
      0 audited
  in
  {
    ok = !violations = [];
    violations = List.rev !violations;
    outbound_payload_bytes = !outbound;
    inbound_bytes = !inbound;
    queries_leaked = List.rev !queries;
    data_dependent_bits;
    padding_bytes;
  }

let pp fmt v =
  if v.ok then
    Format.fprintf fmt
      "audit OK: nothing left the device (spy saw %d queries, %d B of visible data \
       entering it)"
      (List.length v.queries_leaked) v.inbound_bytes
  else begin
    Format.fprintf fmt "audit FAILED:@.";
    List.iter (fun s -> Format.fprintf fmt "  %s@." s) v.violations
  end
