module Value = Ghost_kernel.Value
module Codec = Ghost_kernel.Codec
module Cursor = Ghost_kernel.Cursor
module Sorted_ids = Ghost_kernel.Sorted_ids
module Resources = Ghost_kernel.Resources
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Predicate = Ghost_relation.Predicate
module Bind = Ghost_sql.Bind
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram
module Trace = Ghost_device.Trace
module Device = Ghost_device.Device
module Page_cache = Ghost_device.Page_cache
module Bloom = Ghost_bloom.Bloom
module Skt = Ghost_store.Skt
module Column_store = Ghost_store.Column_store
module Climbing_index = Ghost_store.Climbing_index
module Merge_union = Ghost_store.Merge_union
module Ext_sort = Ghost_store.Ext_sort
module Public_store = Ghost_public.Public_store
module Metrics = Ghost_metrics.Metrics
module Oblivious = Ghost_oblivious.Oblivious

type op_stats = {
  op_label : string;
  tuples_in : int;
  tuples_out : int;
  ram_peak : int;
  usage : Device.usage;
}

type result = {
  rows : Value.t array list;
  row_count : int;
  ops : op_stats list;
  total : Device.usage;
  elapsed_us : float;
  ram_peak : int;
  bloom_fp_candidates : int;
  oblivious : Oblivious.mode;
  padding_bytes : int;
}

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

(* A candidate row mid-flight: the SKT id vector plus visible values
   attached by the projection joins so far (reverse order). Rows coming
   from the insert delta log carry their own hidden values (they are
   not in the column stores). *)
type row = {
  ids : int array;
  mutable attached : Value.t list;
  delta_hidden : (string * Value.t) list option;
}

type context = {
  catalog : Catalog.t;
  public : Public_store.t;
  plan : Plan.t;
  device : Device.t;
  ram : Ram.t;
  scratch : Flash.t;  (* spill region: shared (serial) or per-session *)
  cache : Page_cache.t option;  (* shared buffer manager, when configured *)
  resources : Resources.t;
  mutable ops_rev : op_stats list;
  exact_post : bool;
  bloom_fpr : float;
  mutable bloom_fps : int;
  mutable shipped : (string * int array) list;
      (* visible Pre-filter id lists, kept for the delta scan *)
  mutable pad_bytes : int;
      (* dummy-padding bytes shipped or emitted so far (Pad / Full) *)
}

(* Operator class: the label prefix before the table/column argument —
   "Project+Join(T.c)" profiles as "Project+Join". *)
let op_class label =
  match String.index_opt label '(' with
  | Some i -> String.sub label 0 i
  | None -> label

let measure ctx label ~tuples_in f =
  let scope = Ram.open_scope ctx.ram in
  let before = Device.snapshot ctx.device in
  let m = Device.metrics ctx.device in
  (* Operator profiles are stamped on the session's virtual clock, so a
     preempted operator is not charged for the slices other sessions
     ran in the middle of it. *)
  let vstart =
    match m with None -> 0. | Some _ -> Device.session_us ctx.device
  in
  let value, tuples_out = f () in
  let usage =
    Device.usage_between ctx.device ~before ~after:(Device.snapshot ctx.device)
  in
  let ram_peak = Ram.close_scope ctx.ram scope in
  ctx.ops_rev <- { op_label = label; tuples_in; tuples_out; ram_peak; usage } :: ctx.ops_rev;
  (match m with
   | None -> ()
   | Some reg ->
     let dur = Device.session_us ctx.device -. vstart in
     let cls = op_class label in
     Metrics.incr reg ("exec.op." ^ cls ^ ".count");
     Metrics.observe reg ("exec.op." ^ cls ^ ".us") dur;
     let tid =
       match Trace.current_session (Device.trace ctx.device) with
       | Some s -> s
       | None -> 0
     in
     Metrics.span reg ~name:label ~cat:"exec" ~pid:2 ~tid
       ~args:
         [
           ("tuples_in", Float.of_int tuples_in);
           ("tuples_out", Float.of_int tuples_out);
           ("ram_peak", Float.of_int ram_peak);
           ("flash_reads", Float.of_int usage.Device.flash_page_reads);
           ("flash_programs", Float.of_int usage.Device.flash_page_programs);
           ("usb_bytes_in", Float.of_int usage.Device.used_usb_bytes_in);
           ("cache_hits", Float.of_int usage.Device.cache.Page_cache.hits);
           ("cache_misses", Float.of_int usage.Device.cache.Page_cache.misses);
         ]
       ~ts:vstart ~dur ());
  value

let cpu ctx n = Device.cpu ctx.device n

(* ---- helpers over the catalog ---- *)

let attr_index_exn ctx ~table ~column =
  match Catalog.attr_index ctx.catalog ~table ~column with
  | Some idx -> idx
  | None -> fail "no climbing index on %s.%s (H_index strategy invalid)" table column

let key_index_exn ctx table =
  match Catalog.key_index ctx.catalog table with
  | Some idx -> idx
  | None -> fail "no key climbing index for %s" table

let column_store_exn ctx ~table ~column =
  match Catalog.column_store ctx.catalog ~table ~column with
  | Some cs -> cs
  | None -> fail "no device column store for %s.%s" table column

(* ---- oblivious metering ----

   The three USB sites whose lengths could betray hidden data: id-list
   shipments, projection value streams, result emission. Under [Off]
   they go through the typed wire path untouched (bit-identical to the
   seed); under [Pad] / [Full] they bypass the varint encoder — whose
   frame sizes are value-dependent — and ship fixed-width frames padded
   up to a public bound, annotated with {!Trace.obl} so the leakage
   quantifier can price each event. *)

let receive_ids ctx ~table ids =
  match ctx.plan.Plan.oblivious with
  | Oblivious.Off -> Device.receive_id_list ctx.device ~table ids
  | (Oblivious.Pad | Oblivious.Full) as m ->
    let bound = Public_store.cardinality ctx.public table in
    let n = Array.length ids in
    let count =
      match m with
      | Oblivious.Pad -> Oblivious.pad_count ~bound n
      | Oblivious.Off | Oblivious.Full -> bound
    in
    let pad = 4 * (count - n) in
    ctx.pad_bytes <- ctx.pad_bytes + pad;
    Device.receive ctx.device
      ~obl:{ Trace.obl_bound = bound; obl_values = 1; obl_pad_bytes = pad }
      (Trace.Id_list { table; count })
      ~bytes:(4 * count)

let receive_stream ctx ~table ~column ~ty stream =
  match ctx.plan.Plan.oblivious with
  | Oblivious.Off ->
    Device.receive_value_stream ctx.device ~table ~column ~ty stream
  | (Oblivious.Pad | Oblivious.Full) as m ->
    let bound = Public_store.cardinality ctx.public table in
    let n = Array.length stream in
    let count =
      match m with
      | Oblivious.Pad -> Oblivious.pad_count ~bound n
      | Oblivious.Off | Oblivious.Full -> bound
    in
    let width = 4 + Value.ty_width ty in
    let pad = width * (count - n) in
    ctx.pad_bytes <- ctx.pad_bytes + pad;
    Device.receive ctx.device
      ~obl:{ Trace.obl_bound = bound; obl_values = 1; obl_pad_bytes = pad }
      (Trace.Value_stream { table; column; count })
      ~bytes:(width * count)

(* Bytes one emitted row occupies on the display link. Derived from the
   schema and the projection list alone — it sizes padded emission, so
   it must not depend on the data. Mirrors the baseline accounting:
   4 bytes of framing per projected column, plus the column width for
   non-key columns; aggregates emit 8 bytes per output column. *)
let emit_row_width ctx =
  let plan = ctx.plan in
  let schema = ctx.catalog.Catalog.schema in
  match plan.Plan.query.Bind.aggregate with
  | Some spec -> 8 * max 1 (List.length spec.Ghost_sql.Aggregate.output)
  | None ->
    List.fold_left
      (fun acc (table, column) ->
         let tbl = Schema.find_table schema table in
         if column = tbl.Schema.key then acc
         else acc + Value.ty_width (Schema.find_column tbl column).Column.ty)
      (4 * List.length plan.Plan.query.Bind.projections)
      plan.Plan.query.Bind.projections

(* Result emission. The cardinality is the one display-side count that
   depends on hidden data, so this is where the baseline's residual
   leakage concentrates: [Off] emits the real count annotated as
   ranging over [bound + 1] values; [Pad] rounds the count up to a
   power-of-two bucket; [Full] pads to the bound itself. The bound is
   the live root cardinality capped by the query's LIMIT — both public
   (the spy watched every load, insert and delete, and the LIMIT rides
   in the query text). *)
let emit_rows ctx ~count ~bytes =
  let device = ctx.device in
  let live = Catalog.live_count ctx.catalog ctx.plan.Plan.root in
  let bound =
    let b =
      match ctx.plan.Plan.query.Bind.limit with
      | Some l -> min l live
      | None -> live
    in
    (* a global aggregate over an empty table emits one row: never let
       the real count overrun the padding target *)
    max b count
  in
  match ctx.plan.Plan.oblivious with
  | Oblivious.Off ->
    Device.emit_result device
      ~obl:{ Trace.obl_bound = bound; obl_values = bound + 1; obl_pad_bytes = 0 }
      ~count ~bytes
  | (Oblivious.Pad | Oblivious.Full) as m ->
    let width = emit_row_width ctx in
    let padded, values =
      match m with
      | Oblivious.Pad ->
        (Oblivious.pad_count ~bound count, Oblivious.bucket_values ~bound)
      | Oblivious.Off | Oblivious.Full -> (bound, 1)
    in
    let padded_bytes = max bytes (padded * width) in
    let pad = padded_bytes - bytes in
    ctx.pad_bytes <- ctx.pad_bytes + pad;
    Device.emit_result device
      ~obl:{ Trace.obl_bound = bound; obl_values = values; obl_pad_bytes = pad }
      ~count:padded ~bytes:padded_bytes

(* ---- pre-filter sources ---- *)

let union ctx sources =
  Merge_union.union ~ram:ctx.ram ~scratch:ctx.scratch
    ~resources:ctx.resources ~cpu:(cpu ctx) sources

(* The sorted id list a set of visible predicates selects, shipped into
   the device. *)
let ship_visible_ids ctx ~table preds =
  measure ctx (Printf.sprintf "ShipIds(%s)" table) ~tuples_in:0 (fun () ->
    (* The per-predicate lists ship as one coalesced frame under the
       compact wire format (a no-op batch under the verbose default). *)
    let lists =
      Device.with_usb_batch ctx.device (fun () ->
        List.map
          (fun p ->
             let ids = Public_store.select_ids ctx.public ~trace:(Device.trace ctx.device) p in
             receive_ids ctx ~table ids;
             cpu ctx (Array.length ids);
             ids)
          preds)
    in
    let ids =
      match lists with
      | [] -> [||]
      | ls -> Sorted_ids.intersect_many ls
    in
    ctx.shipped <- (table, ids) :: ctx.shipped;
    (ids, Array.length ids))

(* Union of the per-value lists of one hidden predicate at [level]. *)
let hidden_pred_cursor ctx ~table ~(pred : Predicate.t) ~level =
  let idx = attr_index_exn ctx ~table ~column:pred.Predicate.column in
  let sources =
    Climbing_index.lookup_cmp ~ram:ctx.ram ?cache:ctx.cache idx pred.Predicate.cmp
      ~level
  in
  union ctx sources

(* Defer cursor construction to the first pull, so the opening reads
   are charged to the operator that drains the stream. *)
let lazy_cursor make =
  let inner = ref None in
  Cursor.make (fun () ->
    let c =
      match !inner with
      | Some c -> c
      | None ->
        let c = make () in
        inner := Some c;
        c
    in
    Cursor.next c)

(* Climb a T-id list to the plan root through the dense key index. *)
let climb ctx ~table ids =
  if table = ctx.plan.Plan.root then Cursor.of_array ids
  else
    lazy_cursor (fun () ->
      let key_idx = key_index_exn ctx table in
      let sources =
        Array.to_list
          (Array.map
             (fun id ->
                Climbing_index.lookup_id ~ram:ctx.ram ?cache:ctx.cache key_idx id
                  ~level:ctx.plan.Plan.root)
             ids)
      in
      union ctx sources)

let intersect_cursors cursors =
  match cursors with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (Cursor.intersect_sorted ~cmp:Int.compare) first rest)

(* The sorted R-id stream contributed by one plan group, if any. *)
let group_pre_cursor ctx (g : Plan.group) =
  let root = ctx.plan.Plan.root in
  let indexed =
    List.filter (fun (h : Plan.hidden_pred) -> h.Plan.h_strategy = Plan.H_index) g.Plan.g_hidden
  in
  let visible_pre =
    g.Plan.g_visible <> []
    &&
    match g.Plan.g_visible_strategy with
    | Plan.V_pre | Plan.V_cross_pre -> true
    | Plan.V_post | Plan.V_cross_post -> false
  in
  let cross =
    visible_pre
    && g.Plan.g_visible_strategy = Plan.V_cross_pre
    && (indexed <> [] || g.Plan.g_borrowed <> [])
  in
  if indexed = [] && not visible_pre then None
  else if cross then begin
    (* Intersect everything at T level, then climb once. *)
    let t_ids = ship_visible_ids ctx ~table:g.Plan.g_table g.Plan.g_visible in
    let filtered =
      measure ctx
        (Printf.sprintf "CrossFilter(%s)" g.Plan.g_table)
        ~tuples_in:(Array.length t_ids)
        (fun () ->
           let hidden_t =
             List.map
               (fun (h : Plan.hidden_pred) ->
                  hidden_pred_cursor ctx ~table:g.Plan.g_table ~pred:h.Plan.h_pred
                    ~level:g.Plan.g_table)
               indexed
             (* deep cross: descendant predicates' lists at this level *)
             @ List.map
                 (fun (d, pred) ->
                    hidden_pred_cursor ctx ~table:d ~pred ~level:g.Plan.g_table)
                 g.Plan.g_borrowed
           in
           let t_stream =
             intersect_cursors (Cursor.of_array t_ids :: hidden_t) |> Option.get
           in
           let filtered = Cursor.to_array t_stream in
           cpu ctx (Array.length filtered);
           (filtered, Array.length filtered))
    in
    Some (climb ctx ~table:g.Plan.g_table filtered)
  end
  else begin
    let hidden_r =
      if indexed = [] then []
      else
        measure ctx
          (Printf.sprintf "IndexLookup(%s)" g.Plan.g_table)
          ~tuples_in:(List.length indexed)
          (fun () ->
             let cursors =
               List.map
                 (fun (h : Plan.hidden_pred) ->
                    hidden_pred_cursor ctx ~table:g.Plan.g_table ~pred:h.Plan.h_pred
                      ~level:root)
                 indexed
             in
             (cursors, List.length cursors))
    in
    let visible_r =
      if not visible_pre then []
      else begin
        let t_ids = ship_visible_ids ctx ~table:g.Plan.g_table g.Plan.g_visible in
        [ climb ctx ~table:g.Plan.g_table t_ids ]
      end
    in
    intersect_cursors (hidden_r @ visible_r)
  end

(* ---- post filters ---- *)

type bloom_filter = {
  bf_table : string;
  bf_level : int;  (* level index in the SKT row *)
  bf : Bloom.t;
  bf_cell : Ram.cell;
}

type hidden_check = {
  hc_pred : Predicate.t;
  hc_level : int;
  hc_reader : Column_store.reader;
}

let build_bloom ctx ~level_of (g : Plan.group) =
  let table = g.Plan.g_table in
  measure ctx (Printf.sprintf "BloomBuild(%s)" table) ~tuples_in:0 (fun () ->
    let lists =
      Device.with_usb_batch ctx.device (fun () ->
        List.map
          (fun p ->
             let ids = Public_store.select_ids ctx.public ~trace:(Device.trace ctx.device) p in
             receive_ids ctx ~table ids;
             ids)
          g.Plan.g_visible)
    in
    let t_ids = Sorted_ids.intersect_many lists in
    (* Cross-post: shrink the insertion set with the hidden predicates'
       own-level index lists before filling the filter. *)
    let t_ids =
      if g.Plan.g_visible_strategy = Plan.V_cross_post then begin
        let indexed =
          List.filter (fun (h : Plan.hidden_pred) -> h.Plan.h_strategy = Plan.H_index)
            g.Plan.g_hidden
        in
        match
          intersect_cursors
            (Cursor.of_array t_ids
             :: List.map
                  (fun (h : Plan.hidden_pred) ->
                     hidden_pred_cursor ctx ~table ~pred:h.Plan.h_pred ~level:table)
                  indexed)
        with
        | Some c -> Cursor.to_array c
        | None -> t_ids
      end
      else t_ids
    in
    let n = max 1 (Array.length t_ids) in
    let ideal_bytes = (Bloom.bits_for_fpr ~n ~fpr:ctx.bloom_fpr + 7) / 8 in
    let free = Ram.budget ctx.ram - Ram.in_use ctx.ram in
    let budget = max 64 (min ideal_bytes (free / 4)) in
    let cell = Ram.alloc ctx.ram ~label:(Printf.sprintf "bloom(%s)" table) budget in
    let bf = Bloom.sized_for ~budget_bytes:budget ~n in
    Array.iter
      (fun id ->
         Bloom.add bf id;
         cpu ctx (Bloom.k bf))
      t_ids;
    ( { bf_table = table; bf_level = level_of table; bf; bf_cell = cell },
      Array.length t_ids ))

(* ---- projection phase ---- *)

(* Join one sorted (id, value) stream against the rows on the ids at
   [level]. In-RAM hash join when the stream fits, external sort-merge
   otherwise. [verify] drops rows without a match (Bloom false
   positives); attach_value keeps the joined value on the row. *)
let join_stream ctx ~label ~level ~verify ~attach_value ~value_width ~rows fetch_stream =
  measure ctx label ~tuples_in:(List.length rows) (fun () ->
    let stream : (int * Value.t) array = fetch_stream () in
    let n = Array.length stream in
    let hash_bytes = n * (8 + value_width) in
    let free = Ram.budget ctx.ram - Ram.in_use ctx.ram in
    let joined =
      if hash_bytes <= free / 2 then begin
        (* RAM-resident hash join. *)
        Ram.with_alloc ctx.ram ~label:(label ^ "-hash") hash_bytes (fun _ ->
          let table = Hashtbl.create (max 16 n) in
          Array.iter (fun (id, v) -> Hashtbl.replace table id v) stream;
          cpu ctx (2 * n);
          List.filter_map
            (fun row ->
               cpu ctx 3;
               match Hashtbl.find_opt table row.ids.(level) with
               | Some v ->
                 if attach_value then row.attached <- v :: row.attached;
                 Some row
               | None ->
                 if verify then begin
                   ctx.bloom_fps <- ctx.bloom_fps + 1;
                   None
                 end
                 else begin
                   (* approximate mode: a Bloom false positive survives
                      with an unknown (NULL) projected value *)
                   if attach_value then row.attached <- Value.Null :: row.attached;
                   Some row
                 end)
            rows)
      end
      else begin
        (* Spill: sort the rows by the join id on scratch, merge with
           the sorted stream. Records carry the row ordinal; their
           simulated width includes the attached values so Flash
           traffic is honest. *)
        let rows_arr = Array.of_list rows in
        let attached_bytes =
          match rows with
          | [] -> 0
          | r :: _ -> 8 * List.length r.attached
        in
        let record_bytes = (4 * Array.length (if rows = [] then [||] else rows_arr.(0).ids)) + 4 + attached_bytes in
        let encode i =
          let b = Bytes.make record_bytes '\000' in
          Codec.put_u32 b 0 rows_arr.(i).ids.(level);
          Codec.put_u32 b 4 i;
          b
        in
        let input = Cursor.map encode (Cursor.of_array (Array.init (Array.length rows_arr) Fun.id)) in
        let sorted =
          Ext_sort.sort ~ram:ctx.ram ~scratch:ctx.scratch
            ~resources:ctx.resources ~cpu:(cpu ctx) ~record_bytes
            ~compare:(fun a b -> Int.compare (Codec.get_u32 a 0) (Codec.get_u32 b 0))
            input
        in
        let out =
          Cursor.merge_join
            ~left_key:(fun b -> Codec.get_u32 b 0)
            ~right_key:fst sorted (Cursor.of_array stream)
          |> Cursor.to_list
        in
        cpu ctx (2 * List.length out);
        let matched = Hashtbl.create 64 in
        List.iter
          (fun (record, (_, v)) ->
             let ordinal = Codec.get_u32 record 4 in
             Hashtbl.replace matched ordinal v)
          out;
        (List.concat_map
             (fun i ->
                let row = rows_arr.(i) in
                match Hashtbl.find_opt matched i with
                | Some v ->
                  if attach_value then row.attached <- v :: row.attached;
                  [ row ]
                | None ->
                  if verify then begin
                    ctx.bloom_fps <- ctx.bloom_fps + 1;
                    []
                  end
                  else begin
                    if attach_value then row.attached <- Value.Null :: row.attached;
                    [ row ]
                  end)
           (List.init (Array.length rows_arr) Fun.id))
      end
    in
    (joined, List.length joined))

let check_bloom_fpr fpr =
  (* [not (fpr > 0. && fpr < 1.)] also rejects NaN *)
  if not (fpr > 0. && fpr < 1.) then
    invalid_arg
      (Printf.sprintf
         "Exec: bloom_fpr must lie strictly between 0 and 1, got %g" fpr)

let execute_baseline ~exact_post ~bloom_fpr ~scratch catalog public plan =
  Plan.validate plan;
  check_bloom_fpr bloom_fpr;
  let device = catalog.Catalog.device in
  Resources.with_resources (fun resources ->
    let ctx =
      {
        catalog;
        public;
        plan;
        device;
        ram = Device.ram device;
        scratch;
        cache = Device.page_cache device;
        resources;
        ops_rev = [];
        exact_post;
        bloom_fpr;
        bloom_fps = 0;
        shipped = [];
        pad_bytes = 0;
      }
    in
    let schema = catalog.Catalog.schema in
    let root = plan.Plan.root in
    let trace = Device.trace device in
    let global_scope = Ram.open_scope ctx.ram in
    (* If execution dies mid-plan (cancellation, RAM exhaustion), the
       scope must still be closed so the arena stops tracking it; a
       second close on the normal path below is a no-op. *)
    Resources.defer resources (fun () ->
      ignore (Ram.close_scope ctx.ram global_scope));
    let run_start = Device.snapshot device in
    (* The query text itself travels to the device (spy-visible). *)
    ignore
      (measure ctx "ReceiveQuery" ~tuples_in:0 (fun () ->
         Device.receive_query device plan.Plan.query.Bind.text;
         ((), 0)));
    (* SKT layout for the plan root. *)
    let skt_opt = Catalog.skt catalog root in
    let levels =
      match skt_opt with
      | Some skt -> Skt.levels skt
      | None -> [ root ]
    in
    let level_of table =
      let rec loop i = function
        | [] -> fail "table %s is not in the subtree of %s" table root
        | t :: rest -> if t = table then i else loop (i + 1) rest
      in
      loop 0 levels
    in
    (* Deleted root rows: load the tombstone log into RAM once and
       filter every candidate (main and delta) against it. *)
    let tombstones =
      match Catalog.tombstone catalog root with
      | None -> [||]
      | Some log ->
        measure ctx "TombstoneLoad" ~tuples_in:0 (fun () ->
          let ids = Tombstone_log.load_sorted log in
          let cell =
            Ram.alloc ctx.ram ~label:"tombstones" (max 4 (4 * Array.length ids))
          in
          Resources.defer resources (fun () -> Ram.free ctx.ram cell);
          cpu ctx (Array.length ids);
          (ids, Array.length ids))
    in
    (* 1. Pre-filter: candidate R ids ("Merge+Index"). *)
    let pre_cursors = List.filter_map (group_pre_cursor ctx) plan.Plan.groups in
    let n_root = Catalog.table_count catalog root in
    let candidates =
      measure ctx "Merge+Index" ~tuples_in:0 (fun () ->
        let c =
          match intersect_cursors pre_cursors with
          | Some c -> c
          | None ->
            (* No pre source: enumerate all root ids (dense). *)
            let i = ref 0 in
            Cursor.make (fun () ->
              incr i;
              if !i > n_root then None else Some !i)
        in
        let arr = Cursor.to_array c in
        cpu ctx (Array.length arr);
        let arr =
          (* A visible pre-filter on the root ships public-store ids,
             which include rows inserted after the load. The SKT and
             the column stores do not cover those: drop them here (the
             delta scan below finds them through the same id lists). *)
          let n = Array.length arr in
          if n = 0 || arr.(n - 1) <= n_root then arr
          else begin
            let k = ref 0 in
            while !k < n && arr.(!k) <= n_root do incr k done;
            Array.sub arr 0 !k
          end
        in
        let arr =
          if Array.length tombstones = 0 then arr
          else Sorted_ids.difference arr tombstones
        in
        (arr, Array.length arr))
    in
    (* 2. Post-filter structures. *)
    let post_groups =
      List.filter
        (fun (g : Plan.group) ->
           g.Plan.g_visible <> []
           &&
           match g.Plan.g_visible_strategy with
           | Plan.V_post | Plan.V_cross_post -> true
           | Plan.V_pre | Plan.V_cross_pre -> false)
        plan.Plan.groups
    in
    let blooms = List.map (fun g -> build_bloom ctx ~level_of g) post_groups in
    List.iter (fun b -> Resources.defer resources (fun () -> Ram.free ctx.ram b.bf_cell)) blooms;
    let checks =
      List.concat_map
        (fun (g : Plan.group) ->
           List.filter_map
             (fun (h : Plan.hidden_pred) ->
                if h.Plan.h_strategy <> Plan.H_check then None
                else begin
                  let cs =
                    column_store_exn ctx ~table:g.Plan.g_table
                      ~column:h.Plan.h_pred.Predicate.column
                  in
                  let reader =
                    Column_store.open_reader ~ram:ctx.ram ~buffer_bytes:256
                      ?cache:ctx.cache cs
                  in
                  Resources.defer resources (fun () -> Column_store.close_reader reader);
                  Some
                    {
                      hc_pred = h.Plan.h_pred;
                      hc_level = level_of g.Plan.g_table;
                      hc_reader = reader;
                    }
                end)
             g.Plan.g_hidden)
        plan.Plan.groups
    in
    (* 3. SKT access + probes. *)
    let surviving =
      measure ctx "AccessSKT" ~tuples_in:(Array.length candidates) (fun () ->
        (* Point probes: a small window keeps the charged read close to
           the row size while still batching adjacent candidates. *)
        let reader =
          Option.map
            (fun skt -> Skt.open_reader ~ram:ctx.ram ~buffer_bytes:64 ?cache:ctx.cache skt)
            skt_opt
        in
        Option.iter
          (fun r -> Resources.defer resources (fun () -> Skt.close_reader r))
          reader;
        let rows =
          Array.to_list candidates
          |> List.filter_map (fun id ->
            let ids =
              match reader with
              | Some r -> Skt.get r id
              | None -> [| id |]
            in
            let pass_blooms =
              List.for_all
                (fun b ->
                   cpu ctx (Bloom.k b.bf);
                   Bloom.mem b.bf ids.(b.bf_level))
                blooms
            in
            let pass_checks =
              pass_blooms
              && List.for_all
                   (fun hc ->
                      cpu ctx 2;
                      Predicate.holds hc.hc_pred
                        (Column_store.get hc.hc_reader ids.(hc.hc_level)))
                   checks
            in
            if pass_checks then Some { ids; attached = []; delta_hidden = None }
            else None)
        in
        (rows, List.length rows))
    in
    (* Rows inserted after the load live in the delta log: scan it,
       applying every predicate directly (indexes do not cover them).
       Visible Pre-filter predicates use the shipped id lists; Post
       predicates use the Bloom filters (plus the exact verification
       joins below, like main rows). *)
    let delta_rows =
      match Catalog.delta catalog root with
      | None -> []
      | Some log ->
        measure ctx "DeltaScan" ~tuples_in:(Delta_log.count log) (fun () ->
          let hidden_evals =
            List.concat_map
              (fun (g : Plan.group) ->
                 List.map
                   (fun (h : Plan.hidden_pred) ->
                      let table = g.Plan.g_table in
                      let pred = h.Plan.h_pred in
                      if table = root then
                        fun (r : Delta_log.row) ->
                          Predicate.holds pred
                            (Delta_log.hidden_value log r pred.Predicate.column)
                      else begin
                        let cs =
                          column_store_exn ctx ~table ~column:pred.Predicate.column
                        in
                        let reader =
                          Column_store.open_reader ~ram:ctx.ram ~buffer_bytes:256
                            ?cache:ctx.cache cs
                        in
                        Resources.defer resources (fun () ->
                          Column_store.close_reader reader);
                        let lvl = level_of table in
                        fun (r : Delta_log.row) ->
                          Predicate.holds pred
                            (Column_store.get reader r.Delta_log.ids.(lvl))
                      end)
                   g.Plan.g_hidden)
              plan.Plan.groups
          in
          let visible_pre_checks =
            List.filter_map
              (fun (g : Plan.group) ->
                 if g.Plan.g_visible = [] then None
                 else
                   match g.Plan.g_visible_strategy with
                   | Plan.V_pre | Plan.V_cross_pre ->
                     let lvl = level_of g.Plan.g_table in
                     (match List.assoc_opt g.Plan.g_table ctx.shipped with
                      | Some ids ->
                        Some
                          (fun (r : Delta_log.row) ->
                             Sorted_ids.member ids r.Delta_log.ids.(lvl))
                      | None ->
                        fail "delta scan: no shipped id list for %s" g.Plan.g_table)
                   | Plan.V_post | Plan.V_cross_post -> None)
              plan.Plan.groups
          in
          (* Merge-on-read bounds: with leveled runs, a Pre-filtered
             root selection fences the scan — run pages outside the
             shipped id range are skipped (superset emission; the
             membership check below still decides). The flat log has
             no runs, so the bounds change nothing there. *)
          let lo, hi =
            if not (Delta_log.runs_enabled log) then (None, None)
            else begin
              let root_pre =
                List.exists
                  (fun (g : Plan.group) ->
                     g.Plan.g_table = root
                     && g.Plan.g_visible <> []
                     &&
                     match g.Plan.g_visible_strategy with
                     | Plan.V_pre | Plan.V_cross_pre -> true
                     | Plan.V_post | Plan.V_cross_post -> false)
                  plan.Plan.groups
              in
              if not root_pre then (None, None)
              else
                match List.assoc_opt root ctx.shipped with
                | Some ids when Array.length ids > 0 ->
                  (Some ids.(0), Some ids.(Array.length ids - 1))
                | Some _ -> (Some 0, Some (-1))  (* empty selection *)
                | None -> (None, None)
            end
          in
          let out = ref [] in
          Delta_log.scan_range ?lo ?hi log (fun r ->
            cpu ctx 5;
            let ok =
              not (Sorted_ids.member tombstones r.Delta_log.ids.(0))
              && List.for_all (fun f -> f r) hidden_evals
              && List.for_all (fun f -> f r) visible_pre_checks
              && List.for_all
                   (fun b ->
                      cpu ctx (Bloom.k b.bf);
                      Bloom.mem b.bf r.Delta_log.ids.(b.bf_level))
                   blooms
            in
            if ok then
              out :=
                {
                  ids = r.Delta_log.ids;
                  attached = [];
                  delta_hidden = Some (Delta_log.hidden_assoc log r);
                }
                :: !out);
          (List.rev !out, List.length !out))
    in
    let surviving = surviving @ delta_rows in
    (* 4. Projection joins: visible projected columns + verification of
       Post-filtered tables. *)
    let projected_visible =
      List.filter_map
        (fun (table, column) ->
           let tbl = Schema.find_table schema table in
           if column = tbl.Schema.key then None
           else begin
             let col = Schema.find_column tbl column in
             if Column.is_hidden col then None
             else Some (table, column, col.Column.ty)
           end)
        plan.Plan.query.Bind.projections
      |> List.sort_uniq compare
    in
    let post_tables = List.map (fun b -> b.bf_table) blooms in
    let verify_only_tables =
      if not exact_post then []
      else
        List.filter
          (fun t -> not (List.exists (fun (t', _, _) -> t' = t) projected_visible))
          post_tables
    in
    let visible_preds_on table =
      List.filter
        (fun (p : Predicate.t) ->
           p.Predicate.table = table
           &&
           let tbl = Schema.find_table schema table in
           not (Column.is_hidden (Schema.find_column tbl p.Predicate.column)))
        plan.Plan.query.Bind.selections
    in
    let rows = ref surviving in
    List.iter
      (fun (table, column, ty) ->
         let width = Value.ty_width ty in
         let fetch () =
           let stream =
             Public_store.stream_column ctx.public ~trace ~table ~column
               ~preds:(visible_preds_on table)
           in
           receive_stream ctx ~table ~column ~ty stream;
           stream
         in
         let verify = exact_post && List.mem table post_tables in
         rows :=
           join_stream ctx
             ~label:(Printf.sprintf "Project+Join(%s.%s)" table column)
             ~level:(level_of table) ~verify ~attach_value:true ~value_width:width
             ~rows:!rows fetch)
      projected_visible;
    List.iter
      (fun table ->
         let preds = visible_preds_on table in
         rows :=
           join_stream ctx
             ~label:(Printf.sprintf "Verify(%s)" table)
             ~level:(level_of table) ~verify:true ~attach_value:false ~value_width:0
             ~rows:!rows
             (fun () ->
                let ids = ship_visible_ids ctx ~table preds in
                Array.map (fun id -> (id, Value.Null)) ids))
      verify_only_tables;
    (* 5. Final projection + emission to the secure display. *)
    let attach_order = List.map (fun (t, c, _) -> (t, c)) projected_visible in
    let result_rows =
      measure ctx "Project" ~tuples_in:(List.length !rows) (fun () ->
        (* Readers for projected hidden columns. *)
        let hidden_readers = Hashtbl.create 8 in
        let reader_for table column =
          match Hashtbl.find_opt hidden_readers (table, column) with
          | Some r -> r
          | None ->
            let cs = column_store_exn ctx ~table ~column in
            let r =
              Column_store.open_reader ~ram:ctx.ram ~buffer_bytes:256
                ?cache:ctx.cache cs
            in
            Resources.defer resources (fun () -> Column_store.close_reader r);
            Hashtbl.replace hidden_readers (table, column) r;
            r
        in
        let emit_bytes = ref 0 in
        let out =
          List.map
            (fun row ->
               let attached = Array.of_list (List.rev row.attached) in
               let tuple =
                 Array.of_list
                   (List.map
                      (fun (table, column) ->
                         cpu ctx 2;
                         let tbl = Schema.find_table schema table in
                         if column = tbl.Schema.key then
                           Value.Int row.ids.(level_of table)
                         else begin
                           let col = Schema.find_column tbl column in
                           emit_bytes := !emit_bytes + Value.ty_width col.Column.ty;
                           if Column.is_hidden col then begin
                             match row.delta_hidden with
                             | Some assoc when table = root ->
                               List.assoc column assoc
                             | Some _ | None ->
                               Column_store.get (reader_for table column)
                                 row.ids.(level_of table)
                           end
                           else begin
                             let rec pos i = function
                               | [] -> fail "projection %s.%s not attached" table column
                               | (t, c) :: rest ->
                                 if t = table && c = column then i else pos (i + 1) rest
                             in
                             attached.(pos 0 attach_order)
                           end
                         end)
                      plan.Plan.query.Bind.projections)
               in
               emit_bytes := !emit_bytes + (4 * List.length plan.Plan.query.Bind.projections);
               tuple)
            !rows
        in
        (* Aggregate queries fold the base rows on the device; the group
           table is RAM-resident. *)
        let out =
          match plan.Plan.query.Bind.aggregate with
          | None -> out
          | Some spec ->
            cpu ctx (5 * List.length out);
            let grouped = Ghost_sql.Aggregate.apply spec out in
            let group_bytes =
              max 16
                (List.length grouped
                 * 8
                 * max 1 (List.length spec.Ghost_sql.Aggregate.output))
            in
            Ram.with_alloc ctx.ram ~label:"aggregate-groups" group_bytes (fun _ -> ());
            emit_bytes :=
              List.length grouped * 8 * max 1 (List.length spec.Ghost_sql.Aggregate.output);
            grouped
        in
        (* ORDER BY / LIMIT: the output rows are sorted in device RAM
           just before emission. *)
        let out =
          match plan.Plan.query.Bind.order_by, plan.Plan.query.Bind.limit with
          | [], None -> out
          | order_by, limit ->
            let n = List.length out in
            cpu ctx (n * Ext_sort.log2_ceil n);
            Ram.with_alloc ctx.ram ~label:"order-by"
              (max 16 (n * 8))
              (fun _ -> Ghost_sql.Postproc.apply ~order_by ~limit out)
        in
        emit_rows ctx ~count:(List.length out) ~bytes:!emit_bytes;
        (out, List.length out))
    in
    (* 6. Reclaim the scratch region (block erases count). Live bytes,
       not cumulative programs: a pooled per-session region carries the
       program counters of earlier sessions, but only pages spilled by
       THIS plan are live here (the region is handed over erased). *)
    let scratch = ctx.scratch in
    if Flash.live_bytes scratch > 0 then
      ignore
        (measure ctx "ScratchReclaim" ~tuples_in:0 (fun () ->
           Flash.erase_live_blocks scratch;
           ((), 0)));
    Resources.release resources;
    (* Buffer-manager counters travel with the results on the secure
       display channel (zero bytes — they are rendered, not shipped). *)
    (match ctx.cache with
     | Some c ->
       let s = Page_cache.stats c in
       Trace.record trace Trace.Device_to_display
         (Trace.Cache_stats
            {
              hits = s.Page_cache.hits;
              misses = s.Page_cache.misses;
              evictions = s.Page_cache.evictions;
            })
         ~bytes:0
     | None -> ());
    let total =
      Device.usage_between device ~before:run_start ~after:(Device.snapshot device)
    in
    let ram_peak = Ram.close_scope ctx.ram global_scope in
    {
      rows = result_rows;
      row_count = List.length result_rows;
      ops = List.rev ctx.ops_rev;
      total;
      elapsed_us = total.Device.total_us;
      ram_peak;
      bloom_fp_candidates = ctx.bloom_fps;
      oblivious = plan.Plan.oblivious;
      padding_bytes = ctx.pad_bytes;
    })

(* The fixed-shape path ([Plan.oblivious = Full]). Everything the spy
   observes — frame count, frame lengths, page-touch counts, the
   simulated clock — is a function of the schema and of public bounds
   (table cardinalities, live root count, delta / tombstone log
   lengths), never of hidden data:

   - visible id lists ship padded to the table cardinality, one fixed
     frame per predicate (the predicate count rides in the query
     text); the real intersection stays host-side for membership;
   - the SKT is scanned bound-depth: every loaded root id is visited
     and EVERY hidden predicate evaluated on every candidate — no
     short-circuiting, a skipped check would show on the clock;
   - projection streams fetch the full column ([preds:[]]), so the
     stream length is the table cardinality;
   - the result is emitted padded to the live root count (capped by
     the public LIMIT); dummies are stripped before rows return.

   Filtering rides on live/dead flags carried beside each row, so the
   answer is still exact. RAM occupancy inside the tamper-resistant
   device may vary with the data; it is not on any spy-visible link. *)
let execute_oblivious ~scratch catalog public plan =
  Plan.validate plan;
  let device = catalog.Catalog.device in
  Resources.with_resources (fun resources ->
    let ctx =
      {
        catalog;
        public;
        plan;
        device;
        ram = Device.ram device;
        scratch;
        cache = Device.page_cache device;
        resources;
        ops_rev = [];
        exact_post = true;
        bloom_fpr = 0.01;
        bloom_fps = 0;
        shipped = [];
        pad_bytes = 0;
      }
    in
    let schema = catalog.Catalog.schema in
    let root = plan.Plan.root in
    let trace = Device.trace device in
    let global_scope = Ram.open_scope ctx.ram in
    Resources.defer resources (fun () ->
      ignore (Ram.close_scope ctx.ram global_scope));
    let run_start = Device.snapshot device in
    ignore
      (measure ctx "ReceiveQuery" ~tuples_in:0 (fun () ->
         Device.receive_query device plan.Plan.query.Bind.text;
         ((), 0)));
    let skt_opt = Catalog.skt catalog root in
    let levels =
      match skt_opt with
      | Some skt -> Skt.levels skt
      | None -> [ root ]
    in
    let level_of table =
      let rec loop i = function
        | [] -> fail "table %s is not in the subtree of %s" table root
        | t :: rest -> if t = table then i else loop (i + 1) rest
      in
      loop 0 levels
    in
    let tombstones =
      match Catalog.tombstone catalog root with
      | None -> [||]
      | Some log ->
        measure ctx "TombstoneLoad" ~tuples_in:0 (fun () ->
          let ids = Tombstone_log.load_sorted log in
          let cell =
            Ram.alloc ctx.ram ~label:"tombstones" (max 4 (4 * Array.length ids))
          in
          Resources.defer resources (fun () -> Ram.free ctx.ram cell);
          cpu ctx (Array.length ids);
          (ids, Array.length ids))
    in
    (* Padded visible shipments, CPU charged at the bound. *)
    List.iter
      (fun (g : Plan.group) ->
         if g.Plan.g_visible <> [] then begin
           let table = g.Plan.g_table in
           ignore
             (measure ctx (Printf.sprintf "ShipPadded(%s)" table) ~tuples_in:0
                (fun () ->
                   let lists =
                     List.map
                       (fun p ->
                          let ids =
                            Public_store.select_ids ctx.public ~trace p
                          in
                          receive_ids ctx ~table ids;
                          cpu ctx (Public_store.cardinality ctx.public table);
                          ids)
                       g.Plan.g_visible
                   in
                   let ids = Sorted_ids.intersect_many lists in
                   ctx.shipped <- (table, ids) :: ctx.shipped;
                   ((), Array.length ids)))
         end)
      plan.Plan.groups;
    (* Every hidden predicate becomes a per-candidate check. *)
    let checks =
      List.concat_map
        (fun (g : Plan.group) ->
           List.map
             (fun (h : Plan.hidden_pred) ->
                let cs =
                  column_store_exn ctx ~table:g.Plan.g_table
                    ~column:h.Plan.h_pred.Predicate.column
                in
                let reader =
                  Column_store.open_reader ~ram:ctx.ram ~buffer_bytes:256
                    ?cache:ctx.cache cs
                in
                Resources.defer resources (fun () ->
                  Column_store.close_reader reader);
                {
                  hc_pred = h.Plan.h_pred;
                  hc_level = level_of g.Plan.g_table;
                  hc_reader = reader;
                })
             g.Plan.g_hidden)
        plan.Plan.groups
    in
    (* Bound-depth scan: all the predicate work, on all the rows. The
       folds below keep evaluating after a miss on purpose. *)
    let n_root = Catalog.table_count catalog root in
    let scanned =
      measure ctx "BoundScan" ~tuples_in:n_root (fun () ->
        let reader =
          Option.map
            (fun skt ->
               Skt.open_reader ~ram:ctx.ram ~buffer_bytes:64 ?cache:ctx.cache skt)
            skt_opt
        in
        Option.iter
          (fun r -> Resources.defer resources (fun () -> Skt.close_reader r))
          reader;
        let out = ref [] in
        let live_out = ref 0 in
        for id = 1 to n_root do
          let ids =
            match reader with
            | Some r -> Skt.get r id
            | None -> [| id |]
          in
          cpu ctx 1;
          let dead = Sorted_ids.member tombstones id in
          let hidden_ok =
            List.fold_left
              (fun acc hc ->
                 cpu ctx 2;
                 let v = Column_store.get hc.hc_reader ids.(hc.hc_level) in
                 let ok = Predicate.holds hc.hc_pred v in
                 acc && ok)
              true checks
          in
          let visible_ok =
            List.fold_left
              (fun acc (table, shipped) ->
                 cpu ctx 2;
                 let m = Sorted_ids.member shipped ids.(level_of table) in
                 acc && m)
              true ctx.shipped
          in
          let live = (not dead) && hidden_ok && visible_ok in
          if live then incr live_out;
          out := ({ ids; attached = []; delta_hidden = None }, live) :: !out
        done;
        (List.rev !out, !live_out))
    in
    (* The delta log is scanned end to end (its length is public: the
       spy watched every insert, and compaction folding depends only on
       the public insert/delete volume), same uniform evaluation. No
       run-fence skipping here — the oblivious path never lets the
       touched page set depend on the selection. *)
    let delta_rows =
      match Catalog.delta catalog root with
      | None -> []
      | Some log ->
        measure ctx "DeltaScan" ~tuples_in:(Delta_log.physical_records log)
          (fun () ->
          let out = ref [] in
          let live_out = ref 0 in
          Delta_log.scan log (fun r ->
            cpu ctx 5;
            let dead = Sorted_ids.member tombstones r.Delta_log.ids.(0) in
            let hidden_ok =
              List.fold_left
                (fun acc hc ->
                   cpu ctx 2;
                   let v =
                     if hc.hc_level = 0 then
                       Delta_log.hidden_value log r hc.hc_pred.Predicate.column
                     else
                       Column_store.get hc.hc_reader
                         r.Delta_log.ids.(hc.hc_level)
                   in
                   let ok = Predicate.holds hc.hc_pred v in
                   acc && ok)
                true checks
            in
            let visible_ok =
              List.fold_left
                (fun acc (table, shipped) ->
                   cpu ctx 2;
                   let m =
                     Sorted_ids.member shipped r.Delta_log.ids.(level_of table)
                   in
                   acc && m)
                true ctx.shipped
            in
            let live = (not dead) && hidden_ok && visible_ok in
            if live then incr live_out;
            out :=
              ( {
                  ids = r.Delta_log.ids;
                  attached = [];
                  delta_hidden = Some (Delta_log.hidden_assoc log r);
                },
                live )
              :: !out);
          (List.rev !out, !live_out))
    in
    let all_pairs = scanned @ delta_rows in
    let all_rows = List.map fst all_pairs in
    (* Projection joins over ALL rows (live and dead) against the full
       column stream: [verify:false] keeps every row, attaching values
       in place. *)
    let projected_visible =
      List.filter_map
        (fun (table, column) ->
           let tbl = Schema.find_table schema table in
           if column = tbl.Schema.key then None
           else begin
             let col = Schema.find_column tbl column in
             if Column.is_hidden col then None
             else Some (table, column, col.Column.ty)
           end)
        plan.Plan.query.Bind.projections
      |> List.sort_uniq compare
    in
    List.iter
      (fun (table, column, ty) ->
         let width = Value.ty_width ty in
         let fetch () =
           let stream =
             Public_store.stream_column ctx.public ~trace ~table ~column
               ~preds:[]
           in
           receive_stream ctx ~table ~column ~ty stream;
           stream
         in
         ignore
           (join_stream ctx
              ~label:(Printf.sprintf "Project+Join(%s.%s)" table column)
              ~level:(level_of table) ~verify:false ~attach_value:true
              ~value_width:width ~rows:all_rows fetch))
      projected_visible;
    (* Projection + padded emission: tuples are materialised for dead
       rows too (identical hidden-column page touches), then dropped. *)
    let attach_order = List.map (fun (t, c, _) -> (t, c)) projected_visible in
    let result_rows =
      measure ctx "Project" ~tuples_in:(List.length all_pairs) (fun () ->
        let hidden_readers = Hashtbl.create 8 in
        let reader_for table column =
          match Hashtbl.find_opt hidden_readers (table, column) with
          | Some r -> r
          | None ->
            let cs = column_store_exn ctx ~table ~column in
            let r =
              Column_store.open_reader ~ram:ctx.ram ~buffer_bytes:256
                ?cache:ctx.cache cs
            in
            Resources.defer resources (fun () -> Column_store.close_reader r);
            Hashtbl.replace hidden_readers (table, column) r;
            r
        in
        let out =
          List.filter_map
            (fun (row, live) ->
               let attached = Array.of_list (List.rev row.attached) in
               let tuple =
                 Array.of_list
                   (List.map
                      (fun (table, column) ->
                         cpu ctx 2;
                         let tbl = Schema.find_table schema table in
                         if column = tbl.Schema.key then
                           Value.Int row.ids.(level_of table)
                         else begin
                           let col = Schema.find_column tbl column in
                           if Column.is_hidden col then begin
                             match row.delta_hidden with
                             | Some assoc when table = root ->
                               List.assoc column assoc
                             | Some _ | None ->
                               Column_store.get (reader_for table column)
                                 row.ids.(level_of table)
                           end
                           else begin
                             let rec pos i = function
                               | [] ->
                                 fail "projection %s.%s not attached" table
                                   column
                               | (t, c) :: rest ->
                                 if t = table && c = column then i
                                 else pos (i + 1) rest
                             in
                             attached.(pos 0 attach_order)
                           end
                         end)
                      plan.Plan.query.Bind.projections)
               in
               if live then Some tuple else None)
            all_pairs
        in
        let padded_in = List.length all_pairs in
        let out =
          match plan.Plan.query.Bind.aggregate with
          | None -> out
          | Some spec ->
            cpu ctx (5 * padded_in);
            let grouped = Ghost_sql.Aggregate.apply spec out in
            let group_bytes =
              max 16
                (List.length grouped
                 * 8
                 * max 1 (List.length spec.Ghost_sql.Aggregate.output))
            in
            Ram.with_alloc ctx.ram ~label:"aggregate-groups" group_bytes
              (fun _ -> ());
            grouped
        in
        let out =
          match plan.Plan.query.Bind.order_by, plan.Plan.query.Bind.limit with
          | [], None -> out
          | order_by, limit ->
            cpu ctx (padded_in * Ext_sort.log2_ceil (max 1 padded_in));
            Ram.with_alloc ctx.ram ~label:"order-by"
              (max 16 (padded_in * 8))
              (fun _ -> Ghost_sql.Postproc.apply ~order_by ~limit out)
        in
        emit_rows ctx ~count:(List.length out)
          ~bytes:(List.length out * emit_row_width ctx);
        (out, List.length out))
    in
    let scratch = ctx.scratch in
    if Flash.live_bytes scratch > 0 then
      ignore
        (measure ctx "ScratchReclaim" ~tuples_in:0 (fun () ->
           Flash.erase_live_blocks scratch;
           ((), 0)));
    Resources.release resources;
    (match ctx.cache with
     | Some c ->
       let s = Page_cache.stats c in
       Trace.record trace Trace.Device_to_display
         (Trace.Cache_stats
            {
              hits = s.Page_cache.hits;
              misses = s.Page_cache.misses;
              evictions = s.Page_cache.evictions;
            })
         ~bytes:0
     | None -> ());
    let total =
      Device.usage_between device ~before:run_start ~after:(Device.snapshot device)
    in
    let ram_peak = Ram.close_scope ctx.ram global_scope in
    {
      rows = result_rows;
      row_count = List.length result_rows;
      ops = List.rev ctx.ops_rev;
      total;
      elapsed_us = total.Device.total_us;
      ram_peak;
      bloom_fp_candidates = 0;
      oblivious = Oblivious.Full;
      padding_bytes = ctx.pad_bytes;
    })

let execute_once ~exact_post ~bloom_fpr ~scratch catalog public plan =
  match plan.Plan.oblivious with
  | Oblivious.Full -> execute_oblivious ~scratch catalog public plan
  | Oblivious.Off | Oblivious.Pad ->
    execute_baseline ~exact_post ~bloom_fpr ~scratch catalog public plan

(* Graceful degradation under a detected integrity failure. A caught
   {!Flash.Integrity_error} aborts the attempt cleanly (the deferred
   RAM-scope close runs, the scratch region is reclaimable), the
   poisoned frame is dropped from the page cache, and a cache-bypass
   re-read of the accused page classifies the failure: if the cells
   still verify, the corruption was transient (a stale frame) and the
   plan is retried once from the top; if not, the damage is
   persistent and the session fails with the original error — never
   with silently wrong rows. *)
let execute ~exact_post ~bloom_fpr ~scratch catalog public plan =
  try execute_once ~exact_post ~bloom_fpr ~scratch catalog public plan with
  | Flash.Integrity_error { page; _ } as e ->
    let device = catalog.Catalog.device in
    (match Device.page_cache device with
     | Some c -> Page_cache.invalidate c ~page
     | None -> ());
    let transient = Flash.page_intact (Device.flash device) ~page in
    Device.note_integrity_error device ~transient;
    if transient then
      execute_once ~exact_post ~bloom_fpr ~scratch catalog public plan
    else raise e

let run ?(exact_post = true) ?(bloom_fpr = 0.01) catalog public plan =
  execute ~exact_post ~bloom_fpr
    ~scratch:(Device.scratch catalog.Catalog.device) catalog public plan

(* ---- resumable execution (the scheduler's step machine) ----

   The plan body above is written as one straight-line computation; to
   time-slice it without threading explicit state through every
   operator, it runs under an effect handler. The device's tick hook
   (invoked after every CPU / USB charge, i.e. at tuple granularity)
   performs [Yield] once the slice has consumed its quantum of
   simulated microseconds; the handler captures the one-shot
   continuation and hands control back to the scheduler. With an
   infinite quantum no hook is installed and the computation is the
   plain [run] — bit-identical results, trace and clock. *)

type _ Effect.t += Yield : unit Effect.t

exception Cancelled

type step_outcome = Yielded | Finished of result

type sm_state =
  | Sm_pending of (unit -> step_outcome)
  | Sm_suspended of (unit, step_outcome) Effect.Deep.continuation
  | Sm_finished of result
  | Sm_failed
  | Sm_cancelled

type step_machine = {
  sm_device : Device.t;
  sm_quantum : float;
  mutable sm_state : sm_state;
}

let start ?(exact_post = true) ?(bloom_fpr = 0.01) ?(quantum_us = infinity)
    ?scratch catalog public plan =
  check_bloom_fpr bloom_fpr;
  if not (quantum_us > 0.) then
    invalid_arg "Exec.start: quantum_us must be positive";
  let device = catalog.Catalog.device in
  let scratch =
    match scratch with Some s -> s | None -> Device.scratch device
  in
  {
    sm_device = device;
    sm_quantum = quantum_us;
    sm_state =
      Sm_pending
        (fun () ->
           Finished (execute ~exact_post ~bloom_fpr ~scratch catalog public plan));
  }

let finished m =
  match m.sm_state with Sm_finished r -> Some r | _ -> None

let step m =
  match m.sm_state with
  | Sm_finished r -> Finished r
  | Sm_failed -> invalid_arg "Exec.step: the execution previously failed"
  | Sm_cancelled -> invalid_arg "Exec.step: the execution was cancelled"
  | (Sm_pending _ | Sm_suspended _) as state ->
    let slice_start = Device.elapsed_us m.sm_device in
    if m.sm_quantum < infinity then
      Device.set_on_tick m.sm_device
        (Some
           (fun () ->
              if Device.elapsed_us m.sm_device -. slice_start >= m.sm_quantum
              then Effect.perform Yield));
    Fun.protect ~finally:(fun () -> Device.set_on_tick m.sm_device None)
    @@ fun () ->
    let outcome =
      match state with
      | Sm_pending thunk ->
        Effect.Deep.match_with thunk ()
          {
            Effect.Deep.retc = Fun.id;
            exnc =
              (fun e ->
                 m.sm_state <- Sm_failed;
                 raise e);
            effc =
              (fun (type a) (eff : a Effect.t) ->
                 match eff with
                 | Yield ->
                   Some
                     (fun (k : (a, step_outcome) Effect.Deep.continuation) ->
                        m.sm_state <- Sm_suspended k;
                        Yielded)
                 | _ -> None);
          }
      | Sm_suspended k ->
        (* One-shot: consumed now; the handler installed by the first
           slice's [match_with] re-captures on the next yield. *)
        Effect.Deep.continue k ()
      | Sm_finished _ | Sm_failed | Sm_cancelled -> assert false
    in
    (match outcome with
     | Finished r -> m.sm_state <- Sm_finished r
     | Yielded -> ());
    outcome

let cancel m =
  match m.sm_state with
  | Sm_pending _ -> m.sm_state <- Sm_cancelled
  | Sm_suspended k ->
    (* Raise [Cancelled] at the suspension point: the unwinding runs
       the plan's deferred releases (RAM cells, readers, the global
       scope), so the arena and the scratch lease come back clean. Any
       exception out of the unwinding — normally [Cancelled] itself,
       re-raised by the deep handler — ends the session either way. *)
    (try ignore (Effect.Deep.discontinue k Cancelled : step_outcome)
     with _ -> ());
    m.sm_state <- Sm_cancelled
  | Sm_finished _ | Sm_failed | Sm_cancelled -> ()

let pp_ops fmt ops =
  Format.fprintf fmt "%-28s %10s %10s %10s %12s@." "operator" "in" "out" "ram(B)"
    "time(us)";
  List.iter
    (fun o ->
       Format.fprintf fmt "%-28s %10d %10d %10d %12.0f@." o.op_label o.tuples_in
         o.tuples_out o.ram_peak o.usage.Device.total_us)
    ops
