module Schema = Ghost_relation.Schema
module Device = Ghost_device.Device
module Skt = Ghost_store.Skt
module Column_store = Ghost_store.Column_store
module Climbing_index = Ghost_store.Climbing_index

(** The hidden database as it lives on the device: column stores for
    hidden columns, SKTs for every non-leaf table, climbing indexes on
    hidden attributes, dense key (climbing) indexes for every non-root
    table, and the statistics metadata the optimizer uses. *)

type table_entry = {
  table : Schema.table;
  count : int;
  hidden_columns : (string * Column_store.t) list;
      (** hidden attribute and hidden foreign-key columns *)
  key_index : Climbing_index.t option;
      (** dense index climbing this table's ids to every ancestor;
          [None] for the schema root *)
  attr_indexes : (string * Climbing_index.t) list;
      (** sorted climbing indexes on hidden non-FK columns *)
  stats : (string * Col_stats.t) list;  (** every column, key included *)
}

type t = {
  schema : Schema.t;
  device : Device.t;
  entries : (string * table_entry) list;
  skts : (string * Skt.t) list;  (** per table with children *)
  deltas : (string, Delta_log.t) Hashtbl.t;
      (** append-only insert logs (root table only), created lazily *)
  tombstones : (string, Tombstone_log.t) Hashtbl.t;
      (** append-only deletion logs (root table only), created lazily *)
}

val entry : t -> string -> table_entry
(** Raises [Not_found]. *)

val table_count : t -> string -> int
val skt : t -> string -> Skt.t option
val attr_index : t -> table:string -> column:string -> Climbing_index.t option
val key_index : t -> string -> Climbing_index.t option
val column_store : t -> table:string -> column:string -> Column_store.t option
val column_stats : t -> table:string -> column:string -> Col_stats.t
(** Raises [Not_found]. *)

val delta : t -> string -> Delta_log.t option
(** The insert log of a table, if any inserts happened. *)

val delta_count : t -> string -> int
val total_count : t -> string -> int
(** Loaded rows + inserted rows (deleted rows are still counted: ids
    are never reused before reorganization). *)

val tombstone : t -> string -> Tombstone_log.t option
val tombstone_count : t -> string -> int
val live_count : t -> string -> int
(** [total_count - tombstone_count]. *)

(** {2 Storage accounting (experiment E9)} *)

type storage_report = {
  base_bytes : int;  (** hidden column stores *)
  skt_bytes : int;
  attr_index_bytes : int;
  key_index_bytes : int;
}

val storage : t -> storage_report
val pp_storage : Format.formatter -> storage_report -> unit

val structure_pages : t -> int list
(** Every Flash page holding a query-time structure (SKT rows, hidden
    column stores, climbing indexes), sorted and deduplicated — the
    canonical walk list for the background scrubber and the fleet's
    anti-entropy digests. The delta / tombstone logs are excluded:
    their durable format carries its own record CRCs. *)
