module Trace = Ghost_device.Trace

type link_summary = {
  link : Trace.link;
  messages : int;
  bytes : int;
}

type report = {
  per_link : link_summary list;
  queries_observed : string list;
  id_lists_observed : (string * int) list;
  value_streams_observed : (string * string * int) list;
  device_outbound_payload_bytes : int;
  padding_bytes : int;
}

let analyze ?session trace =
  let events = Trace.spy_events trace in
  let events =
    match session with
    | None -> events
    | Some s -> List.filter (fun e -> e.Trace.session = Some s) events
  in
  let links =
    [ Trace.Server_to_pc; Trace.Pc_to_server; Trace.Pc_to_device; Trace.Device_to_pc ]
  in
  let per_link =
    List.map
      (fun link ->
         let on_link = List.filter (fun e -> e.Trace.link = link) events in
         {
           link;
           messages = List.length on_link;
           bytes = List.fold_left (fun acc e -> acc + e.Trace.bytes) 0 on_link;
         })
      links
  in
  let queries_observed =
    List.filter_map
      (fun e ->
         match e.Trace.payload with
         | Trace.Query_text q -> Some q
         | Trace.Id_list _ | Trace.Value_stream _ | Trace.Result_tuples _ | Trace.Ack
         | Trace.Cache_stats _ | Trace.Reorg_progress _ ->
           None)
      events
  in
  let id_lists_observed =
    List.filter_map
      (fun e ->
         match e.Trace.payload with
         (* report the device-entering copy only (the same list is also
            visible on the server->pc link) *)
         | Trace.Id_list { table; count } when e.Trace.link = Trace.Pc_to_device ->
           Some (table, count)
         | Trace.Id_list _ | Trace.Query_text _ | Trace.Value_stream _
         | Trace.Result_tuples _ | Trace.Ack | Trace.Cache_stats _
         | Trace.Reorg_progress _ ->
           None)
      events
  in
  let value_streams_observed =
    List.filter_map
      (fun e ->
         match e.Trace.payload with
         | Trace.Value_stream { table; column; count }
           when e.Trace.link = Trace.Pc_to_device ->
           Some (table, column, count)
         | Trace.Value_stream _ | Trace.Query_text _ | Trace.Id_list _
         | Trace.Result_tuples _ | Trace.Ack | Trace.Cache_stats _
         | Trace.Reorg_progress _ ->
           None)
      events
  in
  let device_outbound_payload_bytes =
    List.fold_left
      (fun acc e ->
         match e.Trace.link, e.Trace.payload with
         | Trace.Device_to_pc, Trace.Ack -> acc
         | Trace.Device_to_pc, _ -> acc + e.Trace.bytes
         | (Trace.Server_to_pc | Trace.Pc_to_server | Trace.Pc_to_device
           | Trace.Device_to_display), _ ->
           acc)
      0 events
  in
  (* Dummy-padding share of what the spy saw. The spy cannot tell the
     dummies apart (that is the point); the trusted side knows, and
     reports the overhead here for the frontier experiments. *)
  let padding_bytes =
    List.fold_left
      (fun acc e ->
         match e.Trace.obl with
         | Some o -> acc + o.Trace.obl_pad_bytes
         | None -> acc)
      0 events
  in
  {
    per_link;
    queries_observed;
    id_lists_observed;
    value_streams_observed;
    device_outbound_payload_bytes;
    padding_bytes;
  }

let pp fmt r =
  Format.fprintf fmt "@[<v>spy view (all spy-visible links):@,";
  List.iter
    (fun s ->
       Format.fprintf fmt "  %-14s %4d msg %10d B@," (Trace.link_name s.link)
         s.messages s.bytes)
    r.per_link;
  Format.fprintf fmt "  queries observed: %d@," (List.length r.queries_observed);
  List.iter (fun q -> Format.fprintf fmt "    %s@," q) r.queries_observed;
  List.iter
    (fun (t, n) -> Format.fprintf fmt "  id list: %s x%d@," t n)
    r.id_lists_observed;
  List.iter
    (fun (t, c, n) -> Format.fprintf fmt "  value stream: %s.%s x%d@," t c n)
    r.value_streams_observed;
  Format.fprintf fmt "  device outbound payload: %d B%s@]"
    r.device_outbound_payload_bytes
    (if r.device_outbound_payload_bytes = 0 then "  (nothing leaks)" else "  (LEAK!)")

let to_string r = Format.asprintf "%a" pp r
