module Trace = Ghost_device.Trace

(** What a pirate sees (demo phase 1, "checking security").

    A Trojan horse on the user's terminal observes every message on the
    public links. This module aggregates the trace into the view the
    demo GUI shows: per-link message counts and byte volumes, the
    queries posed, and — crucially — the absence of anything else. *)

type link_summary = {
  link : Trace.link;
  messages : int;
  bytes : int;
}

type report = {
  per_link : link_summary list;  (** spy-visible links only *)
  queries_observed : string list;
  id_lists_observed : (string * int) list;
      (** (table, count) — id lists entering the device *)
  value_streams_observed : (string * string * int) list;
      (** (table, column, count) — value streams entering the device *)
  device_outbound_payload_bytes : int;
      (** bytes the device sent on spy-visible links, protocol acks
          excluded — the number the paper promises is 0 *)
  padding_bytes : int;
      (** dummy bytes hidden inside the spy-visible frames by the
          oblivious padding layer (indistinguishable to the spy,
          accounted by the trusted side); 0 in baseline mode *)
}

val analyze : ?session:int -> Trace.t -> report
(** With [session], only the events stamped with that scheduler
    session id are summarized: the spy's view of one query among an
    arbitrary interleaving. Because each session's messages appear on
    the links in its own program order regardless of how slices
    interleave, a session's report equals the report of the same query
    run serially — interleaving adds nothing to what the spy learns
    about any one session. *)

val pp : Format.formatter -> report -> unit
val to_string : report -> string
