module Trace = Ghost_device.Trace

(** Oblivious execution support: padding bounds, leakage accounting and
    trace fingerprints.

    The paper's guarantee stops at "the spy sees the query text and the
    visible data" — but the {e access pattern} on the spy-visible links
    still leaks: how many visible ids ship, how many result tuples come
    back, how deep the climbing-index walks go. This module holds the
    pure machinery the oblivious planner path is built from:

    - {b padding bounds}: round observed counts up to public bounds
      (power-of-two buckets, or the table cardinality itself), so the
      padded count ranges over few — or one — distinguishable values;
    - {b leakage model}: each trace event annotated with a
      {!Trace.obl} contributes [log2 obl_values] bits — the entropy of
      a uniform prior over the values the observable can take as the
      hidden data varies under fixed public bounds;
    - {b entropy estimation}: empirical Shannon entropy over observed
      trace fingerprints, for measuring residual leakage of the
      baseline executor experimentally (E22);
    - {b fingerprints}: a canonical rendering of the spy-visible trace
      whose byte-equality is the oblivious-mode guarantee: two queries
      sharing public bounds must produce equal fingerprints.

    Everything here is pure bookkeeping: nothing charges the simulated
    clock, so annotating baseline traces keeps them bit-identical. *)

type mode =
  | Off  (** the seed executor, bit-identical *)
  | Pad
      (** baseline plan and access pattern, but visible-id shipments,
          value streams and the result cardinality are padded to
          power-of-two buckets (fixed-width framing) *)
  | Full
      (** data-independent trace: full-cardinality padding, bound-depth
          sequential scans instead of climbing-index walks, uniform
          per-candidate work — the page-touch sequence and every
          spy-visible count depend only on schema and public bounds *)

val mode_name : mode -> string

(** {2 Padding bounds} *)

val next_pow2 : int -> int
(** Smallest power of two >= [max 1 n]. *)

val pad_count : bound:int -> int -> int
(** [pad_count ~bound n] — the power-of-two bucket of [n], capped at
    the public [bound] (a count can never exceed the table
    cardinality, so the cap leaks nothing). [0 <= n <= bound]
    required; an empty selection pads to 1, hiding emptiness. *)

val bucket_values : bound:int -> int
(** How many distinct values {!pad_count} takes over [0..bound] — the
    number of observable outcomes a power-of-two-padded count leaks
    between. [1] when [bound <= 1]. *)

val bits_of_values : int -> float
(** [log2 (max 1 values)] — the leakage of one observable under a
    uniform prior over its possible values. 0 for a single-valued
    (fully padded) observable. *)

val event_bits : Trace.event -> float
(** {!bits_of_values} of the event's {!Trace.obl} annotation; [0.] for
    unannotated events (their value is a function of public data
    only). *)

val trace_bits : ?session:int -> Trace.t -> float
(** Total modeled data-dependent bits over the (optionally
    per-session) trace: the sum of {!event_bits}. *)

val padding_bytes : ?session:int -> Trace.t -> int
(** Total dummy-padding bytes over the {e spy-visible} events of the
    trace — the overhead a padded execution shipped beyond the real
    payload. 0 for a baseline trace. *)

(** {2 Empirical entropy} *)

module Entropy : sig
  val of_weights : float list -> float
  (** Shannon entropy (bits) of the distribution proportional to the
      non-negative weights. [0.] on an empty or single-outcome
      distribution. *)

  val of_observations : string list -> float
  (** Empirical entropy of the multiset: outcomes weighted by their
      observed frequency. Equal observations -> 0 bits. *)
end

(** {2 Trace fingerprints} *)

val fingerprint : ?session:int -> ?query_text:bool -> Trace.t -> string
(** Canonical rendering of the spy-visible trace: one line per event —
    link, payload shape (constructor, table, column, count) and byte
    size. [Query_text] payloads render as their byte length only
    (default [query_text:false]): the query text is the paper's
    declared leak, and eliding it makes fingerprint equality exactly
    the {e access-pattern} guarantee of oblivious mode. Sequence
    numbers are renumbered from 0 so traces taken at different offsets
    compare equal. *)
