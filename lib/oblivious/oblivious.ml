module Trace = Ghost_device.Trace

type mode =
  | Off
  | Pad
  | Full

let mode_name = function
  | Off -> "baseline"
  | Pad -> "pad-only"
  | Full -> "oblivious"

(* ---- padding bounds ---- *)

let next_pow2 n =
  let n = max 1 n in
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let pad_count ~bound n =
  if n < 0 then invalid_arg "Oblivious.pad_count: negative count";
  if n > bound then
    invalid_arg
      (Printf.sprintf "Oblivious.pad_count: count %d exceeds public bound %d" n
         bound);
  if bound <= 0 then 0 else min (next_pow2 n) bound

let bucket_values ~bound =
  if bound <= 1 then 1
  else begin
    (* the powers of two <= bound, plus the cap itself when it is not
       a power of two: pad_count over 0..bound hits exactly these *)
    let rec powers p acc = if p > bound then acc else powers (p * 2) (acc + 1) in
    let pow2s = powers 1 0 in
    if next_pow2 bound = bound then pow2s else pow2s + 1
  end

let bits_of_values values =
  if values <= 1 then 0. else log (Float.of_int values) /. log 2.

let event_bits (e : Trace.event) =
  match e.Trace.obl with
  | None -> 0.
  | Some o -> bits_of_values o.Trace.obl_values

let select ?session trace =
  match session with
  | None -> Trace.events trace
  | Some s -> Trace.session_events trace s

let trace_bits ?session trace =
  List.fold_left (fun acc e -> acc +. event_bits e) 0. (select ?session trace)

let padding_bytes ?session trace =
  List.fold_left
    (fun acc (e : Trace.event) ->
       if not (Trace.spy_visible e.Trace.link) then acc
       else
         match e.Trace.obl with
         | None -> acc
         | Some o -> acc + o.Trace.obl_pad_bytes)
    0 (select ?session trace)

(* ---- empirical entropy ---- *)

module Entropy = struct
  let of_weights weights =
    let ws = List.filter (fun w -> w > 0.) weights in
    let total = List.fold_left ( +. ) 0. ws in
    if total <= 0. then 0.
    else
      List.fold_left
        (fun acc w ->
           let p = w /. total in
           acc -. (p *. (log p /. log 2.)))
        0. ws

  let of_observations obs =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun o ->
         Hashtbl.replace tbl o
           (1 + Option.value ~default:0 (Hashtbl.find_opt tbl o)))
      obs;
    of_weights (Hashtbl.fold (fun _ n acc -> Float.of_int n :: acc) tbl [])
end

(* ---- trace fingerprints ---- *)

let payload_shape ~query_text = function
  | Trace.Query_text q ->
    if query_text then Printf.sprintf "query=%S" q
    else Printf.sprintf "query[%dB]" (String.length q)
  | Trace.Id_list { table; count } -> Printf.sprintf "ids(%s)x%d" table count
  | Trace.Value_stream { table; column; count } ->
    Printf.sprintf "stream(%s.%s)x%d" table column count
  | Trace.Result_tuples { count } -> Printf.sprintf "result x%d" count
  | Trace.Ack -> "ack"
  | Trace.Cache_stats _ -> "cache-stats"
  | Trace.Reorg_progress { phase; phases } ->
    Printf.sprintf "reorg %d/%d" phase phases

let fingerprint ?session ?(query_text = false) trace =
  let events =
    List.filter
      (fun (e : Trace.event) -> Trace.spy_visible e.Trace.link)
      (select ?session trace)
  in
  let buf = Buffer.create 256 in
  List.iteri
    (fun i (e : Trace.event) ->
       Buffer.add_string buf
         (Printf.sprintf "#%d %s %s %dB\n" i
            (Trace.link_name e.Trace.link)
            (payload_shape ~query_text e.Trace.payload)
            e.Trace.bytes))
    events;
  Buffer.contents buf
