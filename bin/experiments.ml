(* Regenerate every experiment table (E1-E10, see DESIGN.md Section 5
   and EXPERIMENTS.md). All numbers are deterministic simulated device
   time. *)

module Experiments = Ghost_bench.Experiments
module Report = Ghost_bench.Report
module Medical = Ghost_workload.Medical
module Metrics = Ghost_metrics.Metrics
open Cmdliner

let scale_conv =
  let parse = function
    | "tiny" -> Ok Medical.tiny
    | "small" -> Ok Medical.small
    | "medium" -> Ok Medical.medium
    | "paper" -> Ok Medical.paper
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S (tiny|small|medium|paper)" s))
  in
  let print fmt (s : Medical.scale) =
    Format.fprintf fmt "%d-prescriptions" s.Medical.prescriptions
  in
  Arg.conv (parse, print)

let scale_arg =
  Arg.(value & opt scale_conv Medical.small
       & info [ "scale" ] ~docv:"SCALE"
           ~doc:"Dataset scale: tiny, small (default), medium or paper (1M).")

let full_arg =
  Arg.(value & flag
       & info [ "full" ] ~doc:"Include the paper's 1M-prescription point in E10.")

let only_arg =
  Arg.(value & opt (some (list string)) None
       & info [ "only" ] ~docv:"IDS" ~doc:"Run only the given experiment ids (E1..E10).")

let list_arg =
  Arg.(value & flag
       & info [ "list" ]
           ~doc:"Print the experiment ids with one-line descriptions and exit.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"DIR"
           ~doc:"For the instrumented experiments (E16-E23), also write \
                 METRICS_<id>.json, TRACE_<id>.json (Chrome about:tracing \
                 format) and CALIBRATION_<id>.txt into $(docv).")

let force_arg =
  Arg.(value & flag
       & info [ "force" ]
           ~doc:"Overwrite existing metrics output files instead of refusing.")

let write_metrics ~force dir id m =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name contents =
    let path = Filename.concat dir name in
    try Report.write_string ~path ~force contents
    with Report.Would_overwrite p ->
      Printf.eprintf "experiments: refusing to overwrite %s (pass --force)\n" p;
      exit 3
  in
  write (Printf.sprintf "METRICS_%s.json" id) (Metrics.to_json m);
  write (Printf.sprintf "TRACE_%s.json" id) (Metrics.to_chrome_trace m);
  write
    (Printf.sprintf "CALIBRATION_%s.txt" id)
    (Format.asprintf "%a" Metrics.pp_calibration (Metrics.calibration_report m))

let run scale full only list metrics_dir force =
  let registries : (string, Metrics.t) Hashtbl.t = Hashtbl.create 4 in
  let metrics id =
    match metrics_dir with
    | None -> None
    | Some _ ->
      (match Hashtbl.find_opt registries id with
       | Some m -> Some m
       | None ->
         let m = Metrics.create () in
         Hashtbl.add registries id m;
         Some m)
  in
  let reports = Experiments.all ~scale ~full ~metrics () in
  if list then
    List.iter
      (fun (id, description, _) -> Printf.printf "%-4s %s\n" id description)
      reports
  else begin
    let selected =
      match only with
      | None -> reports
      | Some ids -> List.filter (fun (id, _, _) -> List.mem id ids) reports
    in
    List.iter
      (fun (id, _, thunk) ->
         print_string (Report.to_string (thunk ()));
         Option.iter
           (fun dir ->
              Option.iter
                (fun m -> write_metrics ~force dir id m)
                (Hashtbl.find_opt registries id))
           metrics_dir)
      selected
  end

let cmd =
  let doc = "regenerate the GhostDB reproduction's experiment tables" in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(const run $ scale_arg $ full_arg $ only_arg $ list_arg $ metrics_arg
          $ force_arg)

let () = exit (Cmd.eval cmd)
