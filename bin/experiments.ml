(* Regenerate every experiment table (E1-E10, see DESIGN.md Section 5
   and EXPERIMENTS.md). All numbers are deterministic simulated device
   time. *)

module Experiments = Ghost_bench.Experiments
module Report = Ghost_bench.Report
module Medical = Ghost_workload.Medical
open Cmdliner

let scale_conv =
  let parse = function
    | "tiny" -> Ok Medical.tiny
    | "small" -> Ok Medical.small
    | "medium" -> Ok Medical.medium
    | "paper" -> Ok Medical.paper
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S (tiny|small|medium|paper)" s))
  in
  let print fmt (s : Medical.scale) =
    Format.fprintf fmt "%d-prescriptions" s.Medical.prescriptions
  in
  Arg.conv (parse, print)

let scale_arg =
  Arg.(value & opt scale_conv Medical.small
       & info [ "scale" ] ~docv:"SCALE"
           ~doc:"Dataset scale: tiny, small (default), medium or paper (1M).")

let full_arg =
  Arg.(value & flag
       & info [ "full" ] ~doc:"Include the paper's 1M-prescription point in E10.")

let only_arg =
  Arg.(value & opt (some (list string)) None
       & info [ "only" ] ~docv:"IDS" ~doc:"Run only the given experiment ids (E1..E10).")

let list_arg =
  Arg.(value & flag
       & info [ "list" ]
           ~doc:"Print the experiment ids with one-line descriptions and exit.")

let run scale full only list =
  let reports = Experiments.all ~scale ~full () in
  if list then
    List.iter
      (fun (id, description, _) -> Printf.printf "%-4s %s\n" id description)
      reports
  else begin
    let selected =
      match only with
      | None -> reports
      | Some ids -> List.filter (fun (id, _, _) -> List.mem id ids) reports
    in
    List.iter
      (fun (_, _, thunk) -> print_string (Report.to_string (thunk ())))
      selected
  end

let cmd =
  let doc = "regenerate the GhostDB reproduction's experiment tables" in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(const run $ scale_arg $ full_arg $ only_arg $ list_arg)

let () = exit (Cmd.eval cmd)
