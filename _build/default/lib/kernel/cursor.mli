(** Pull-based streams.

    The device-side executor is streaming by necessity — tens of KB of
    RAM cannot hold intermediate results — so operators exchange
    cursors rather than materialized arrays. A cursor is a mutable
    producer: each [next] yields the following element or [None] once
    exhausted. *)

type 'a t

val next : 'a t -> 'a option

val make : (unit -> 'a option) -> 'a t
val empty : unit -> 'a t
val of_array : 'a array -> 'a t
val of_list : 'a list -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val filter_map : ('a -> 'b option) -> 'a t -> 'b t
val append : 'a t -> 'a t -> 'a t

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val count : 'a t -> int
(** Drains the cursor. *)

val intersect_sorted : cmp:('a -> 'a -> int) -> 'a t -> 'a t -> 'a t
(** Streaming intersection of two strictly-increasing cursors. *)

val union_sorted : cmp:('a -> 'a -> int) -> 'a t -> 'a t -> 'a t
(** Streaming duplicate-free union of two strictly-increasing
    cursors. *)

val merge_join :
  left_key:('a -> int) ->
  right_key:('b -> int) ->
  'a t ->
  'b t ->
  ('a * 'b) t
(** Equi-join of two cursors sorted (non-strictly for the left, strictly
    for the right) on an integer key. Each left element pairs with the
    unique right element of equal key, if any — the right side is a key
    stream (e.g. a sorted (id, value) column). *)

val peekable : 'a t -> 'a t * (unit -> 'a option)
(** [peekable c] is [(c', peek)] where [peek] inspects the next element
    of [c'] without consuming it. *)
