let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year y then 29 else 28
  | _ -> invalid_arg "Date.days_in_month"

(* Howard Hinnant's civil-calendar algorithms. *)
let of_ymd y m d =
  if m < 1 || m > 12 then invalid_arg "Date.of_ymd: month";
  if d < 1 || d > days_in_month y m then invalid_arg "Date.of_ymd: day";
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let to_ymd days =
  let z = days + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let to_string days =
  let y, m, d = to_ymd days in
  Printf.sprintf "%04d-%02d-%02d" y m d

let of_string s =
  let fail () = invalid_arg (Printf.sprintf "Date.of_string: %S" s) in
  match String.split_on_char '-' s with
  | [ ys; ms; ds ] ->
    (match int_of_string_opt ys, int_of_string_opt ms, int_of_string_opt ds with
     | Some y, Some m, Some d ->
       (try of_ymd y m d with Invalid_argument _ -> fail ())
     | _ -> fail ())
  | _ -> fail ()
