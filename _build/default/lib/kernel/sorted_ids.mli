(** Algebra of strictly-increasing identifier arrays.

    Climbing-index entries, visible selection results and SKT probe
    lists are all sorted duplicate-free ID lists; plan execution is
    largely merging such lists. All functions assume (and produce)
    strictly increasing [int array]s. *)

val is_sorted : int array -> bool
(** Strictly increasing (hence duplicate-free). *)

val of_unsorted : int list -> int array
(** Sorts and deduplicates. *)

val intersect : int array -> int array -> int array
(** Galloping (exponential-search) intersection: O(m log(n/m)) when one
    side is much smaller. *)

val intersect_many : int array list -> int array
(** Intersection of all lists, smallest first. The intersection of an
    empty list of lists is undefined: raises [Invalid_argument]. *)

val union : int array -> int array -> int array
val union_many : int array list -> int array
val difference : int array -> int array -> int array

val member : int array -> int -> bool
(** Binary search. *)

val rank : int array -> int -> int
(** Number of elements strictly below the probe. *)
