type t = {
  n : int;
  cdf : float array;  (* cdf.(i) = P(rank <= i+1) *)
}

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n <= 0";
  if theta < 0. then invalid_arg "Zipf.create: theta < 0";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (Float.of_int (i + 1)) theta);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { n; cdf }

let n t = t.n

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* First index with cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let probability t rank =
  if rank < 1 || rank > t.n then invalid_arg "Zipf.probability: rank out of range";
  if rank = 1 then t.cdf.(0) else t.cdf.(rank - 1) -. t.cdf.(rank - 2)
