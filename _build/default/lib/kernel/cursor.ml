type 'a t = { mutable pull : unit -> 'a option }

let next t = t.pull ()
let make f = { pull = f }

let empty () = make (fun () -> None)

let of_array a =
  let i = ref 0 in
  make (fun () ->
    if !i >= Array.length a then None
    else begin
      let x = a.(!i) in
      incr i;
      Some x
    end)

let of_list l =
  let rest = ref l in
  make (fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
      rest := tl;
      Some x)

let map f c = make (fun () -> Option.map f (next c))

let filter p c =
  let rec pull () =
    match next c with
    | None -> None
    | Some x -> if p x then Some x else pull ()
  in
  make pull

let filter_map f c =
  let rec pull () =
    match next c with
    | None -> None
    | Some x ->
      (match f x with
       | Some _ as r -> r
       | None -> pull ())
  in
  make pull

let append a b =
  let first = ref true in
  let rec pull () =
    if !first then
      match next a with
      | Some _ as r -> r
      | None ->
        first := false;
        pull ()
    else next b
  in
  make pull

let fold f init c =
  let rec loop acc =
    match next c with
    | None -> acc
    | Some x -> loop (f acc x)
  in
  loop init

let iter f c = fold (fun () x -> f x) () c
let to_list c = List.rev (fold (fun acc x -> x :: acc) [] c)
let to_array c = Array.of_list (to_list c)
let count c = fold (fun n _ -> n + 1) 0 c

let intersect_sorted ~cmp a b =
  let pending_a = ref None and pending_b = ref None in
  let pull_a () =
    match !pending_a with
    | Some _ as r ->
      pending_a := None;
      r
    | None -> next a
  in
  let pull_b () =
    match !pending_b with
    | Some _ as r ->
      pending_b := None;
      r
    | None -> next b
  in
  let rec advance xa xb =
    match xa, xb with
    | None, _ | _, None -> None
    | Some x, Some y ->
      let c = cmp x y in
      if c = 0 then Some x
      else if c < 0 then advance (pull_a ()) (Some y)
      else advance (Some x) (pull_b ())
  in
  make (fun () -> advance (pull_a ()) (pull_b ()))

let union_sorted ~cmp a b =
  let la = ref None and lb = ref None in
  let peek_a () =
    match !la with
    | Some _ as r -> r
    | None ->
      la := next a;
      !la
  in
  let peek_b () =
    match !lb with
    | Some _ as r -> r
    | None ->
      lb := next b;
      !lb
  in
  make (fun () ->
    match peek_a (), peek_b () with
    | None, None -> None
    | Some x, None ->
      la := None;
      Some x
    | None, Some y ->
      lb := None;
      Some y
    | Some x, Some y ->
      let c = cmp x y in
      if c < 0 then begin
        la := None;
        Some x
      end
      else if c > 0 then begin
        lb := None;
        Some y
      end
      else begin
        la := None;
        lb := None;
        Some x
      end)

let merge_join ~left_key ~right_key left right =
  let cur_right = ref None in
  let right_exhausted = ref false in
  let rec advance_right k =
    match !cur_right with
    | Some r when right_key r >= k -> Some r
    | Some _ | None ->
      if !right_exhausted then None
      else
        (match next right with
         | None ->
           right_exhausted := true;
           cur_right := None;
           None
         | Some r ->
           cur_right := Some r;
           advance_right k)
  in
  let rec pull () =
    match next left with
    | None -> None
    | Some l ->
      let k = left_key l in
      (match advance_right k with
       | Some r when right_key r = k -> Some (l, r)
       | Some _ | None -> pull ())
  in
  make pull

let peekable c =
  let buffer = ref None in
  let pull () =
    match !buffer with
    | Some x ->
      buffer := None;
      Some x
    | None -> next c
  in
  let peek () =
    match !buffer with
    | Some _ as r -> r
    | None ->
      buffer := next c;
      !buffer
  in
  (make pull, peek)
