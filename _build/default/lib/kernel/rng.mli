(** Deterministic pseudo-random generator (splitmix64).

    Every synthetic dataset and every property-test corpus in the
    repository is derived from a seeded [Rng.t], so experiment output is
    reproducible bit-for-bit. *)

type t

val create : int -> t
(** [create seed]. *)

val copy : t -> t
val split : t -> t
(** An independent generator derived from the current state. *)

val next : t -> int
(** Uniform in [0, 2^62). *)

val int : t -> int -> int
(** [int t bound] — uniform in [0, bound). Raises [Invalid_argument]
    when [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] — uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
