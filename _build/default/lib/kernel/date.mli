(** Calendar dates represented as days since 1970-01-01 (may be
    negative). Conversions use the proleptic Gregorian calendar. *)

val of_ymd : int -> int -> int -> int
(** [of_ymd year month day] — days since epoch. Raises
    [Invalid_argument] on an invalid calendar date. *)

val to_ymd : int -> int * int * int

val of_string : string -> int
(** Parses ["YYYY-MM-DD"]. Raises [Invalid_argument] on malformed
    input. *)

val to_string : int -> string
(** Renders as ["YYYY-MM-DD"]. *)

val is_leap_year : int -> bool
val days_in_month : int -> int -> int
