type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable items : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; items = [||]; size = 0 }
let size t = t.size
let is_empty t = t.size = 0

let swap t i j =
  let tmp = t.items.(i) in
  t.items.(i) <- t.items.(j);
  t.items.(j) <- tmp

let push t x =
  if t.size = Array.length t.items then begin
    let items = Array.make (max 8 (2 * t.size)) x in
    Array.blit t.items 0 items 0 t.size;
    t.items <- items
  end;
  t.items.(t.size) <- x;
  t.size <- t.size + 1;
  let i = ref (t.size - 1) in
  while !i > 0 && t.cmp t.items.(!i) t.items.((!i - 1) / 2) < 0 do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.items.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.items.(0) <- t.items.(t.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && t.cmp t.items.(l) t.items.(!smallest) < 0 then smallest := l;
        if r < t.size && t.cmp t.items.(r) t.items.(!smallest) < 0 then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap t !i !smallest;
          i := !smallest
        end
      done
    end;
    Some top
  end

let peek t = if t.size = 0 then None else Some t.items.(0)
