(** Minimal binary min-heap, used for k-way merges. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
(** Smallest element, or [None] when empty. *)

val peek : 'a t -> 'a option
