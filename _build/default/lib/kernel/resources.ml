type t = { mutable cleanups : (unit -> unit) list }

let create () = { cleanups = [] }
let defer t f = t.cleanups <- f :: t.cleanups

let release t =
  let fs = t.cleanups in
  t.cleanups <- [];
  let first_error = ref None in
  List.iter
    (fun f ->
       try f ()
       with e -> if !first_error = None then first_error := Some e)
    fs;
  match !first_error with
  | Some e -> raise e
  | None -> ()

let with_resources f =
  let t = create () in
  match f t with
  | v ->
    release t;
    v
  | exception e ->
    (try release t with _ -> ());
    raise e
