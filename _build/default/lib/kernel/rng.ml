type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let split t = { state = next64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  next t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound = Float.of_int (next t) /. Float.ldexp 1.0 62 *. bound
let bool t = next t land 1 = 1

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
