(** Zipfian sampler over ranks [1..n] with exponent [theta].

    Used by the workload generator to skew attribute-value frequencies,
    which is what makes predicate selectivities uneven — the phenomenon
    GhostDB's Pre-/Post-filtering choice responds to. *)

type t

val create : n:int -> theta:float -> t
(** Precomputes the cumulative distribution; O(n) space. [theta = 0.]
    degenerates to uniform. Raises [Invalid_argument] if [n <= 0] or
    [theta < 0.]. *)

val n : t -> int

val sample : t -> Rng.t -> int
(** A rank in [1..n]; rank 1 is the most frequent. *)

val probability : t -> int -> float
(** [probability t rank] — the sampling probability of [rank]. *)
