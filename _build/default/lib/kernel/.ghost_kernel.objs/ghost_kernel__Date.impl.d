lib/kernel/date.ml: Printf String
