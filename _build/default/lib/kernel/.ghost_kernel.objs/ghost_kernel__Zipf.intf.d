lib/kernel/zipf.mli: Rng
