lib/kernel/codec.mli: Buffer
