lib/kernel/resources.ml: List
