lib/kernel/rng.mli:
