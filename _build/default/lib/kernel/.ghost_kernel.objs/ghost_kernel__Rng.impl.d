lib/kernel/rng.ml: Array Float Int64
