lib/kernel/codec.ml: Buffer Bytes Char Int32 Int64 String
