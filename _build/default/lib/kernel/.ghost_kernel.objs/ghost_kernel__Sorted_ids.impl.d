lib/kernel/sorted_ids.ml: Array Int List
