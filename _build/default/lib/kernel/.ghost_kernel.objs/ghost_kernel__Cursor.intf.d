lib/kernel/cursor.mli:
