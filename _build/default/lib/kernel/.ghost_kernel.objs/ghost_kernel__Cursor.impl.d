lib/kernel/cursor.ml: Array List Option
