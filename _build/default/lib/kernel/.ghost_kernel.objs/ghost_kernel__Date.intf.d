lib/kernel/date.mli:
