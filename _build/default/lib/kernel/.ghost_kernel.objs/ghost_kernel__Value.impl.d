lib/kernel/value.ml: Bytes Char Date Float Format Int Int64 Printf String
