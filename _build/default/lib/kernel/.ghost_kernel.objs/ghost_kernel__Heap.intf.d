lib/kernel/heap.mli:
