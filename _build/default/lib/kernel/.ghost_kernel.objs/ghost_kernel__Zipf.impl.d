lib/kernel/zipf.ml: Array Float Rng
