lib/kernel/resources.mli:
