lib/kernel/sorted_ids.mli:
