(** Typed scalar values manipulated by the engine.

    GhostDB stores fixed-width encodings on Flash, so every type carries
    a definite byte width: integers and dates are 8 bytes, floats are
    8 bytes, [Char n] strings occupy exactly [n] bytes (padded with
    ['\000'], truncated if longer, as in SQL [CHAR(n)]). *)

type ty =
  | T_int
  | T_float
  | T_date
  | T_char of int  (** fixed-width string of the given byte width *)

type t =
  | Int of int
  | Float of float
  | Date of int  (** days since 1970-01-01 *)
  | Str of string
  | Null

val ty_width : ty -> int
(** Encoded width in bytes of any value of that type. *)

val ty_name : ty -> string
val ty_equal : ty -> ty -> bool

val has_ty : ty -> t -> bool
(** [has_ty ty v] is true when [v] is [Null] or a value of type [ty]. *)

val compare : t -> t -> int
(** Total order. [Null] sorts first; values of distinct constructors are
    ordered by constructor. Strings compare after CHAR(n) padding
    normalization (trailing ['\000'] ignored). *)

val equal : t -> t -> bool
val is_null : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val encode : ty -> t -> bytes
(** Fixed-width encoding; order-preserving within a type (byte-wise
    lexicographic comparison of encodings matches {!compare}). Columns
    are loaded NOT NULL in this reproduction: raises [Invalid_argument]
    on [Null] or when the value does not match the type. *)

val decode : ty -> bytes -> int -> t
(** [decode ty b off] reads a value of type [ty] at offset [off]. *)

val key_prefix : t -> bytes
(** 16-byte order-preserving prefix used by index directories. For
    values of the same type, [Bytes.compare (key_prefix a) (key_prefix b)]
    has the same sign as [compare a b] whenever the prefixes differ;
    equal prefixes require a full-key check (strings longer than 14
    bytes may collide). *)

val hash : t -> int
(** Deterministic hash, stable across runs (used by Bloom filters and
    hash partitioning in the baselines). *)
