(** Deferred cleanup registry.

    Query execution opens many Flash readers whose buffers are charged
    to device RAM; operators register their releases here and the
    executor runs them when the plan finishes (or fails), so RAM
    accounting stays exact without every operator handling
    exceptions. *)

type t

val create : unit -> t

val defer : t -> (unit -> unit) -> unit
(** Registers a cleanup, run in reverse registration order. *)

val release : t -> unit
(** Runs all pending cleanups; idempotent. A cleanup that raises does
    not prevent the others from running (the first exception is
    re-raised at the end). *)

val with_resources : (t -> 'a) -> 'a
(** Releases on both normal and exceptional exit. *)
