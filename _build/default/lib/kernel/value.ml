type ty =
  | T_int
  | T_float
  | T_date
  | T_char of int

type t =
  | Int of int
  | Float of float
  | Date of int
  | Str of string
  | Null

let ty_width = function
  | T_int | T_float | T_date -> 8
  | T_char n -> n

let ty_name = function
  | T_int -> "INTEGER"
  | T_float -> "FLOAT"
  | T_date -> "DATE"
  | T_char n -> Printf.sprintf "CHAR(%d)" n

let ty_equal a b =
  match a, b with
  | T_int, T_int | T_float, T_float | T_date, T_date -> true
  | T_char n, T_char m -> n = m
  | (T_int | T_float | T_date | T_char _), _ -> false

let has_ty ty v =
  match ty, v with
  | _, Null -> true
  | T_int, Int _ | T_float, Float _ | T_date, Date _ -> true
  | T_char _, Str _ -> true
  | (T_int | T_float | T_date | T_char _), _ -> false

(* CHAR(n) padding normalization: trailing '\000' are not significant. *)
let strip_pad s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = '\000' do decr n done;
  if !n = String.length s then s else String.sub s 0 !n

let rank = function
  | Null -> 0
  | Int _ -> 1
  | Float _ -> 2
  | Date _ -> 3
  | Str _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Date x, Date y -> Int.compare x y
  | Str x, Str y -> String.compare (strip_pad x) (strip_pad y)
  | (Null | Int _ | Float _ | Date _ | Str _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0
let is_null v = v = Null

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Date d -> Date.to_string d
  | Str s -> strip_pad s
  | Null -> "NULL"

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* Sign-biased big-endian int64: order-preserving byte encoding. *)
let put_biased_i64 b off i =
  let u = Int64.add (Int64.of_int i) Int64.min_int in
  Bytes.set_int64_be b off u

let get_biased_i64 b off =
  Int64.to_int (Int64.sub (Bytes.get_int64_be b off) Int64.min_int)

(* Order-preserving float encoding: flip sign bit for positives, flip
   all bits for negatives, then big-endian. *)
let float_to_ord f =
  let bits = Int64.bits_of_float f in
  if Int64.compare bits 0L >= 0 then Int64.logxor bits Int64.min_int
  else Int64.lognot bits

let ord_to_float u =
  if Int64.compare u 0L < 0 then Int64.float_of_bits (Int64.logxor u Int64.min_int)
  else Int64.float_of_bits (Int64.lognot u)

let encode ty v =
  let fail () =
    invalid_arg
      (Printf.sprintf "Value.encode: %s does not fit %s" (to_string v) (ty_name ty))
  in
  match ty, v with
  | T_int, Int i | T_date, Date i ->
    let b = Bytes.create 8 in
    put_biased_i64 b 0 i;
    b
  | T_float, Float f ->
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 (float_to_ord f);
    b
  | T_char n, Str s ->
    let b = Bytes.make n '\000' in
    let len = min n (String.length s) in
    Bytes.blit_string s 0 b 0 len;
    b
  | (T_int | T_float | T_date | T_char _), _ -> fail ()

let decode ty b off =
  match ty with
  | T_int -> Int (get_biased_i64 b off)
  | T_date -> Date (get_biased_i64 b off)
  | T_float -> Float (ord_to_float (Bytes.get_int64_be b off))
  | T_char n -> Str (strip_pad (Bytes.sub_string b off n))

let key_prefix v =
  let b = Bytes.make 16 '\000' in
  Bytes.set_uint8 b 0 (rank v);
  (match v with
   | Null -> ()
   | Int i | Date i -> put_biased_i64 b 1 i
   | Float f -> Bytes.set_int64_be b 1 (float_to_ord f)
   | Str s ->
     let s = strip_pad s in
     let len = min 15 (String.length s) in
     Bytes.blit_string s 0 b 1 len);
  b

(* FNV-1a-style multiply/xor over a canonical byte representation
   (seed truncated to fit OCaml's 63-bit int); stable across runs. *)
let hash v =
  let bytes =
    match v with
    | Null -> Bytes.make 1 '\255'
    | Int _ | Date _ | Float _ | Str _ -> key_prefix v
  in
  let h = ref 0x100000001b3 in
  Bytes.iter
    (fun c ->
       h := !h lxor Char.code c;
       h := !h * 0x100000001b3)
    bytes;
  (match v with
   | Str s ->
     String.iter
       (fun c ->
          h := !h lxor Char.code c;
          h := !h * 0x100000001b3)
       (strip_pad s)
   | Null | Int _ | Date _ | Float _ -> ());
  !h land max_int
