lib/store/climbing_index.ml: Array Buffer Bytes Char Ghost_device Ghost_flash Ghost_kernel Ghost_relation Id_list Int64 List Merge_union Pager Printf String
