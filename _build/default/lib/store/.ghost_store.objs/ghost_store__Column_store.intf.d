lib/store/column_store.mli: Ghost_device Ghost_flash Ghost_kernel Ghost_relation Pager
