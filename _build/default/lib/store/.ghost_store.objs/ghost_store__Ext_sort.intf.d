lib/store/ext_sort.mli: Ghost_device Ghost_flash Ghost_kernel
