lib/store/ext_sort.ml: Array Bytes Ghost_device Ghost_flash Ghost_kernel List Pager Printf
