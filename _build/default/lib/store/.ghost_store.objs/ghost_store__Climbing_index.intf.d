lib/store/climbing_index.mli: Ghost_device Ghost_flash Ghost_kernel Ghost_relation Merge_union
