lib/store/column_store.ml: Array Ghost_device Ghost_flash Ghost_kernel Ghost_relation Pager Printf
