lib/store/pager.mli: Buffer Ghost_device Ghost_flash
