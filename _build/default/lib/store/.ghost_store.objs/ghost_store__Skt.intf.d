lib/store/skt.mli: Ghost_device Ghost_flash Ghost_kernel
