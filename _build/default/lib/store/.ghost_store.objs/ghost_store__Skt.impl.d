lib/store/skt.ml: Array Bytes Ghost_device Ghost_flash Ghost_kernel List Pager Printf
