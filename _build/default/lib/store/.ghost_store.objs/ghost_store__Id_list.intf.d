lib/store/id_list.mli: Ghost_kernel Pager
