lib/store/merge_union.mli: Ghost_device Ghost_flash Ghost_kernel
