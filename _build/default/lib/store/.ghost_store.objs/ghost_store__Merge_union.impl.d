lib/store/merge_union.ml: Buffer Ghost_device Ghost_flash Ghost_kernel Id_list Int List Pager
