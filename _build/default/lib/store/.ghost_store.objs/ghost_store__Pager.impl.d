lib/store/pager.ml: Array Buffer Bytes Ghost_device Ghost_flash List Option Printf String
