lib/store/id_list.ml: Array Buffer Bytes Ghost_kernel List Pager
