module Cursor = Ghost_kernel.Cursor
module Resources = Ghost_kernel.Resources
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram

(** External merge sort of fixed-width records under the RAM budget.

    Used by the projection phase when the visible (id, value) stream
    joining the result does not fit the arena as a hash table: result
    rows are sorted by the join id on the scratch Flash, merge-joined
    against the incoming stream, and the Flash write cost of the runs
    is exactly the penalty the optimizer weighs. Also the workhorse of
    the grace-hash-join baseline. *)

val log2_ceil : int -> int
(** Number of comparison levels of a sort of that many items (>= 1). *)

val sort :
  ram:Ram.t ->
  scratch:Flash.t ->
  resources:Resources.t ->
  ?cpu:(int -> unit) ->
  ?chunk_bytes:int ->
  record_bytes:int ->
  compare:(bytes -> bytes -> int) ->
  bytes Cursor.t ->
  bytes Cursor.t
(** Sorts the records of the input cursor (each exactly
    [record_bytes] long). When the whole input fits in half the free
    arena it is sorted in RAM without touching Flash; otherwise sorted
    runs are spilled to [scratch] and k-way merged with the fan-in the
    arena allows. The output cursor's resources are released through
    [resources]. Raises [Invalid_argument] on a record of the wrong
    width. *)
