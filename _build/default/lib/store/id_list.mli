module Cursor = Ghost_kernel.Cursor

(** Delta-varint encoding of strictly increasing identifier lists —
    the payload format of climbing-index entries. Compact (gaps, not
    absolutes) and streamable: decoding needs only a few bytes of
    look-ahead, so many lists can be merged in tiny RAM. *)

val encode : int array -> string
(** Raises [Invalid_argument] if the array is not strictly
    increasing or contains a negative id. *)

val encoded_size : int array -> int

val cursor : Pager.Reader.t -> off:int -> len:int -> int Cursor.t
(** Streams the ids of the list stored at [off, off+len) of the
    segment. The cursor borrows the reader; do not close the reader
    while pulling. *)

val decode : bytes -> int array
(** Whole-list decode (load-time checks and tests). *)
