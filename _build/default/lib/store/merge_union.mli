module Cursor = Ghost_kernel.Cursor
module Resources = Ghost_kernel.Resources
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram

(** RAM-bounded union of many sorted identifier lists.

    Climbing a {e set} of identifiers (the Pre-filtering of a visible
    selection: each shipped id owns one precomputed ancestor list)
    means unioning as many sorted lists as there are ids. The device
    cannot hold one buffer per list in tens of KB of RAM, so when the
    fan-in exceeds what the arena allows the union runs in hierarchical
    passes, materializing intermediate results on the scratch Flash —
    this is precisely the cost that makes Pre-filtering lose to
    Post-filtering on unselective visible predicates. *)

type source = unit -> int Cursor.t * (unit -> unit)
(** Opening a source yields the cursor and its release (closing the
    underlying Flash reader / freeing its RAM). Sources are single
    use. *)

val of_array : int array -> source
(** RAM-free source over an already-materialized array (e.g. a list
    being streamed in from USB). *)

val union :
  ram:Ram.t ->
  scratch:Flash.t ->
  resources:Resources.t ->
  ?chunk_bytes:int ->
  ?cpu:(int -> unit) ->
  source list ->
  int Cursor.t
(** Duplicate-free sorted union. [chunk_bytes] (default 256) is the
    per-open-source RAM charge assumed when computing the admissible
    fan-in; [cpu] is charged O(log fan-in) per element. Resources of
    the final pass are released through [resources]. *)

val fan_in : ram:Ram.t -> chunk_bytes:int -> int
(** The fan-in the current arena state allows (at least 2) — exposed
    for the cost model. *)
