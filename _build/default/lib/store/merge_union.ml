module Cursor = Ghost_kernel.Cursor
module Heap = Ghost_kernel.Heap
module Codec = Ghost_kernel.Codec
module Resources = Ghost_kernel.Resources
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram

type source = unit -> int Cursor.t * (unit -> unit)

let of_array a = fun () -> (Cursor.of_array a, fun () -> ())

(* Half the free arena is available for merge buffers; the other half
   stays free for the operators downstream of the union. *)
let fan_in ~ram ~chunk_bytes =
  let free = Ram.budget ram - Ram.in_use ram in
  max 2 (free / 2 / chunk_bytes)

let heap_merge ~cpu cursors =
  let heap = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  List.iter
    (fun c ->
       match Cursor.next c with
       | Some id -> Heap.push heap (id, c)
       | None -> ())
    cursors;
  let k = max 1 (Heap.size heap) in
  let log_k =
    let rec bits n acc = if n <= 1 then acc else bits (n lsr 1) (acc + 1) in
    max 1 (bits k 0)
  in
  let last = ref (-1) in
  let rec pull () =
    match Heap.pop heap with
    | None -> None
    | Some (id, c) ->
      cpu log_k;
      (match Cursor.next c with
       | Some id' -> Heap.push heap (id', c)
       | None -> ());
      if id = !last then pull ()
      else begin
        last := id;
        Some id
      end
  in
  Cursor.make pull

(* Materialize a cursor to scratch as a delta-varint list; returns a
   source reading it back. *)
let spill ~ram ~scratch ~chunk_bytes cursor =
  let writer = Pager.Writer.create scratch in
  let buf = Buffer.create 256 in
  Ram.with_alloc ram ~label:"union-spill-buffer"
    (Flash.geometry scratch).Flash.page_size (fun _ ->
      let prev = ref (-1) in
      Cursor.iter
        (fun id ->
           Codec.put_varint buf (id - !prev - 1);
           prev := id;
           if Buffer.length buf >= 256 then begin
             Pager.Writer.append_buffer writer buf;
             Buffer.clear buf
           end)
        cursor;
      if Buffer.length buf > 0 then Pager.Writer.append_buffer writer buf);
  let segment = Pager.Writer.finish writer in
  fun () ->
    let reader = Pager.Reader.open_ ~ram ~buffer_bytes:chunk_bytes scratch segment in
    ( Id_list.cursor reader ~off:0 ~len:segment.Pager.length,
      fun () -> Pager.Reader.close reader )

let union ~ram ~scratch ~resources ?(chunk_bytes = 256) ?(cpu = fun _ -> ()) sources =
  match sources with
  | [] -> Cursor.empty ()
  | [ s ] ->
    let cursor, close = s () in
    Resources.defer resources close;
    cursor
  | _ ->
    let rec reduce sources =
      let k = List.length sources in
      let fan = fan_in ~ram ~chunk_bytes in
      if k <= fan then begin
        let opened = List.map (fun s -> s ()) sources in
        List.iter (fun (_, close) -> Resources.defer resources close) opened;
        heap_merge ~cpu (List.map fst opened)
      end
      else begin
        (* One hierarchical pass: group, merge each group to scratch. *)
        let rec take n acc rest =
          match n, rest with
          | 0, _ | _, [] -> (List.rev acc, rest)
          | n, x :: tl -> take (n - 1) (x :: acc) tl
        in
        let rec groups acc rest =
          match rest with
          | [] -> List.rev acc
          | _ ->
            let g, rest = take fan [] rest in
            groups (g :: acc) rest
        in
        let merged =
          List.map
            (fun group ->
               let opened = List.map (fun s -> s ()) group in
               let merged = heap_merge ~cpu (List.map fst opened) in
               let source = spill ~ram ~scratch ~chunk_bytes merged in
               List.iter (fun (_, close) -> close ()) opened;
               source)
            (groups [] sources)
        in
        reduce merged
      end
    in
    reduce sources
