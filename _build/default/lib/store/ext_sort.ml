module Cursor = Ghost_kernel.Cursor
module Heap = Ghost_kernel.Heap
module Resources = Ghost_kernel.Resources
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram

let log2_ceil k =
  let rec bits n acc = if n <= 1 then acc else bits (n lsr 1) (acc + 1) in
  max 1 (bits (max 1 k) 0)

(* A source of records, in the style of Merge_union.source. *)
type source = unit -> bytes Cursor.t * (unit -> unit)

let run_source ~ram ~scratch ~chunk ~record_bytes segment : source =
  fun () ->
    let reader = Pager.Reader.open_ ~ram ~buffer_bytes:chunk scratch segment in
    let pos = ref 0 in
    let len = segment.Pager.length in
    let cursor =
      Cursor.make (fun () ->
        if !pos >= len then None
        else begin
          let b = Pager.Reader.read reader ~off:!pos ~len:record_bytes in
          pos := !pos + record_bytes;
          Some b
        end)
    in
    (cursor, fun () -> Pager.Reader.close reader)

let write_run ~ram ~scratch records n =
  let writer = Pager.Writer.create scratch in
  Ram.with_alloc ram ~label:"sort-run-write-buffer"
    (Flash.geometry scratch).Flash.page_size (fun _ ->
      for i = 0 to n - 1 do
        Pager.Writer.append_bytes writer records.(i)
      done);
  Pager.Writer.finish writer

let heap_merge ~cpu ~compare cursors =
  let heap = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  List.iter
    (fun c ->
       match Cursor.next c with
       | Some r -> Heap.push heap (r, c)
       | None -> ())
    cursors;
  let log_k = log2_ceil (Heap.size heap) in
  Cursor.make (fun () ->
    match Heap.pop heap with
    | None -> None
    | Some (r, c) ->
      cpu log_k;
      (match Cursor.next c with
       | Some r' -> Heap.push heap (r', c)
       | None -> ());
      Some r)

let sort ~ram ~scratch ~resources ?(cpu = fun _ -> ()) ?(chunk_bytes = 512)
    ~record_bytes ~compare input =
  if record_bytes <= 0 then invalid_arg "Ext_sort.sort: record_bytes <= 0";
  (* Run-read buffers shrink when the arena is tight, so a 2-way merge
     always fits (at the price of more Flash seeks). *)
  let entry_free = Ram.budget ram - Ram.in_use ram in
  let chunk = max 16 (min chunk_bytes (entry_free / 8)) in
  let check r =
    if Bytes.length r <> record_bytes then
      invalid_arg
        (Printf.sprintf "Ext_sort.sort: record of %d bytes, expected %d"
           (Bytes.length r) record_bytes);
    r
  in
  (* Records per in-RAM run: half the free arena, at least 2 records. *)
  let free = Ram.budget ram - Ram.in_use ram in
  let run_records = max 2 (free / 2 / record_bytes) in
  let buffer = Array.make run_records Bytes.empty in
  let fill () =
    let n = ref 0 in
    let rec loop () =
      if !n >= run_records then ()
      else
        match Cursor.next input with
        | None -> ()
        | Some r ->
          buffer.(!n) <- check r;
          incr n;
          loop ()
    in
    loop ();
    !n
  in
  let sort_buffer n =
    let sub = Array.sub buffer 0 n in
    cpu (n * log2_ceil n);
    Array.sort compare sub;
    sub
  in
  let first_cell = Ram.alloc ram ~label:"sort-run" (run_records * record_bytes) in
  let n0 = fill () in
  if n0 < run_records then begin
    (* Everything fits: RAM-only sort, no Flash traffic. *)
    Ram.resize ram first_cell (n0 * record_bytes);
    let sorted = sort_buffer n0 in
    Resources.defer resources (fun () -> Ram.free ram first_cell);
    Cursor.of_array sorted
  end
  else begin
    let runs = ref [] in
    let flush n =
      let sorted = sort_buffer n in
      runs := write_run ~ram ~scratch sorted n :: !runs
    in
    flush n0;
    let rec more () =
      let n = fill () in
      if n > 0 then begin
        flush n;
        if n = run_records then more ()
      end
    in
    more ();
    Ram.free ram first_cell;
    let sources =
      List.rev_map (run_source ~ram ~scratch ~chunk ~record_bytes) !runs
    in
    (* Hierarchical k-way merge under the arena's fan-in. *)
    let fan () =
      let free = Ram.budget ram - Ram.in_use ram in
      max 2 (free / 2 / chunk)
    in
    let rec reduce (sources : source list) =
      match sources with
      | [] -> Cursor.empty ()
      | [ s ] ->
        let cursor, close = s () in
        Resources.defer resources close;
        cursor
      | _ ->
        let k = List.length sources in
        let f = fan () in
        if k <= f then begin
          let opened = List.map (fun s -> s ()) sources in
          List.iter (fun (_, close) -> Resources.defer resources close) opened;
          heap_merge ~cpu ~compare (List.map fst opened)
        end
        else begin
          let rec take n acc rest =
            match n, rest with
            | 0, _ | _, [] -> (List.rev acc, rest)
            | n, x :: tl -> take (n - 1) (x :: acc) tl
          in
          let rec groups acc rest =
            match rest with
            | [] -> List.rev acc
            | _ ->
              let g, rest = take f [] rest in
              groups (g :: acc) rest
          in
          let merged =
            List.map
              (fun group ->
                 let opened = List.map (fun s -> s ()) group in
                 let merged = heap_merge ~cpu ~compare (List.map fst opened) in
                 let writer = Pager.Writer.create scratch in
                 Ram.with_alloc ram ~label:"sort-merge-write-buffer"
                   (Flash.geometry scratch).Flash.page_size (fun _ ->
                     Cursor.iter (fun r -> Pager.Writer.append_bytes writer r) merged);
                 let segment = Pager.Writer.finish writer in
                 List.iter (fun (_, close) -> close ()) opened;
                 run_source ~ram ~scratch ~chunk ~record_bytes segment)
              (groups [] sources)
          in
          reduce merged
        end
    in
    reduce sources
  end
