module Value = Ghost_kernel.Value

type comparison =
  | Eq of Value.t
  | Ne of Value.t
  | Lt of Value.t
  | Le of Value.t
  | Gt of Value.t
  | Ge of Value.t
  | Between of Value.t * Value.t
  | In of Value.t list
  | Prefix of string

type t = {
  table : string;
  column : string;
  cmp : comparison;
}

let make ~table ~column cmp = { table; column; cmp }

let prefix_upper p =
  let rec bump i =
    if i < 0 then None
    else if Char.code p.[i] < 0xFF then
      Some (String.sub p 0 i ^ String.make 1 (Char.chr (Char.code p.[i] + 1)))
    else bump (i - 1)
  in
  bump (String.length p - 1)

let eval cmp v =
  if Value.is_null v then false
  else
    match cmp with
    | Eq x -> Value.compare v x = 0
    | Ne x -> Value.compare v x <> 0
    | Lt x -> Value.compare v x < 0
    | Le x -> Value.compare v x <= 0
    | Gt x -> Value.compare v x > 0
    | Ge x -> Value.compare v x >= 0
    | Between (lo, hi) -> Value.compare v lo >= 0 && Value.compare v hi <= 0
    | In xs -> List.exists (fun x -> Value.compare v x = 0) xs
    | Prefix p ->
      (match v with
       | Value.Str s ->
         let s = Value.to_string (Value.Str s) in
         String.length s >= String.length p && String.sub s 0 (String.length p) = p
       | Value.Null | Value.Int _ | Value.Float _ | Value.Date _ -> false)

let holds p v = eval p.cmp v

let is_equality = function
  | Eq _ -> true
  | Ne _ | Lt _ | Le _ | Gt _ | Ge _ | Between _ | In _ | Prefix _ -> false

let comparison_to_string = function
  | Eq x -> Printf.sprintf "= %s" (Value.to_string x)
  | Ne x -> Printf.sprintf "<> %s" (Value.to_string x)
  | Lt x -> Printf.sprintf "< %s" (Value.to_string x)
  | Le x -> Printf.sprintf "<= %s" (Value.to_string x)
  | Gt x -> Printf.sprintf "> %s" (Value.to_string x)
  | Ge x -> Printf.sprintf ">= %s" (Value.to_string x)
  | Between (lo, hi) ->
    Printf.sprintf "BETWEEN %s AND %s" (Value.to_string lo) (Value.to_string hi)
  | In xs ->
    Printf.sprintf "IN (%s)" (String.concat ", " (List.map Value.to_string xs))
  | Prefix p -> Printf.sprintf "LIKE '%s%%'" p

let to_string p = Printf.sprintf "%s.%s %s" p.table p.column (comparison_to_string p.cmp)
let pp fmt p = Format.pp_print_string fmt (to_string p)
