module Value = Ghost_kernel.Value

(** In-memory relations.

    Used on the untrusted side (the PC and public server have no
    resource constraints) and by the reference evaluator the test suite
    compares device plans against. Device-side data never lives in this
    form — it is laid out on the Flash store. *)

type tuple = Value.t array
(** Aligned with [Schema.all_columns]: key first. *)

type t

val create : Schema.table -> tuple list -> t
(** Validates arity and column types; rows are indexed by their key
    value. Raises [Invalid_argument] on arity/type mismatch or
    duplicate keys. *)

val schema : t -> Schema.table
val cardinality : t -> int
val tuples : t -> tuple array

val key_of : t -> tuple -> int
(** The (integer) primary key of a tuple. *)

val find : t -> int -> tuple option
(** Lookup by primary key. *)

val value : t -> tuple -> string -> Value.t
(** [value t tuple column]. Raises [Not_found] on an unknown column. *)

val column_values : t -> string -> Value.t array
(** In key order. *)

val select : t -> (tuple -> bool) -> tuple list

val select_ids : t -> Predicate.comparison -> string -> int array
(** [select_ids t cmp column] — sorted keys of tuples whose [column]
    satisfies [cmp]. *)

val iter : (tuple -> unit) -> t -> unit
