module Value = Ghost_kernel.Value

type visibility =
  | Visible
  | Hidden

let visibility_name = function
  | Visible -> "visible"
  | Hidden -> "hidden"

type t = {
  name : string;
  ty : Value.ty;
  visibility : visibility;
  refs : string option;
}

let make ?(visibility = Visible) ?refs name ty =
  (match refs, ty with
   | Some _, Value.T_int | None, _ -> ()
   | Some _, (Value.T_float | Value.T_date | Value.T_char _) ->
     invalid_arg "Column.make: a foreign key must be an INTEGER column");
  { name; ty; visibility; refs }

let is_hidden c = c.visibility = Hidden
let is_foreign_key c = c.refs <> None

let pp fmt c =
  Format.fprintf fmt "%s %s%s%s" c.name (Value.ty_name c.ty)
    (match c.refs with
     | Some t -> Printf.sprintf " REFERENCES %s" t
     | None -> "")
    (if c.visibility = Hidden then " HIDDEN" else "")
