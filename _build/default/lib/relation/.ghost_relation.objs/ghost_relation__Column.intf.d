lib/relation/column.mli: Format Ghost_kernel
