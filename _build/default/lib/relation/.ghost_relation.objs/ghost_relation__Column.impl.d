lib/relation/column.ml: Format Ghost_kernel Printf
