lib/relation/predicate.ml: Char Format Ghost_kernel List Printf String
