lib/relation/predicate.mli: Format Ghost_kernel
