lib/relation/relation.ml: Array Column Ghost_kernel Hashtbl Int List Predicate Printf Schema
