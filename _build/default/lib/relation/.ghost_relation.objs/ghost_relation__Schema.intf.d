lib/relation/schema.mli: Column Format Ghost_kernel
