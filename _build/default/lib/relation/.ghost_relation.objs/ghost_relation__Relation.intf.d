lib/relation/relation.mli: Ghost_kernel Predicate Schema
