lib/relation/schema.ml: Column Format Ghost_kernel Hashtbl List Option Printf String
