module Value = Ghost_kernel.Value

(** Database schemas and tree-schema analysis.

    GhostDB's indexing model (SKTs, climbing indexes) is defined over
    {e tree schemas}: there is one root table (the "fact" table —
    Prescription in Figure 3) and every other table is referenced by
    exactly one table through a foreign key. The functions here compute
    the tree structure — parents, subtrees, climb paths, lowest common
    subtree root — that the planner relies on. *)

type table = {
  name : string;
  key : string;  (** primary-key column name; dense 1..N integers *)
  columns : Column.t list;  (** attribute + foreign-key columns, key excluded *)
}

val table : name:string -> key:string -> Column.t list -> table

val find_column : table -> string -> Column.t
(** Raises [Not_found]. The key column is returned as a synthetic
    visible INTEGER column. *)

val column_index : table -> string -> int
(** Position of a column in the full tuple layout (key first, then
    declared columns, in order). Raises [Not_found]. *)

val all_columns : table -> Column.t list
(** Key first, then declared columns. *)

val arity : table -> int

type t
(** A validated tree-schema database. *)

exception Not_a_tree of string

val create : table list -> t
(** Validates: unique table names, foreign keys reference existing
    tables, exactly one root, every non-root table referenced by
    exactly one foreign key, no cycles. Raises {!Not_a_tree}. *)

val tables : t -> table list
val find_table : t -> string -> table
(** Raises [Not_found]. *)

val mem_table : t -> string -> bool

val root : t -> table
(** The table no foreign key references. *)

val parent : t -> string -> (string * string) option
(** [parent t name] is [Some (parent_table, fk_column)] — the unique
    table holding a foreign key to [name] and that column's name; [None]
    for the root. *)

val children : t -> string -> (string * string) list
(** [(child_table, fk_column_in_this_table)] — tables this table
    references, i.e. one step away from the root. *)

val climb_path : t -> string -> string list
(** [climb_path t name] — [name] first, then its parent, up to the
    root (inclusive). This is the list of ID levels a climbing index on
    a column of [name] precomputes. *)

val subtree : t -> string -> string list
(** Preorder walk of the subtree rooted at the given table: the tables
    an SKT rooted there spans. *)

val depth : t -> string -> int
(** Root has depth 0. *)

val is_ancestor : t -> ancestor:string -> string -> bool
(** Reflexive: a table is its own ancestor. *)

val subtree_root : t -> string list -> string
(** The deepest table whose subtree contains all the given tables (the
    lowest common ancestor in the schema tree) — the root of the SKT a
    query over those tables uses. Raises [Invalid_argument] on an empty
    list. *)

val fk_path : t -> from_root:string -> string -> string list
(** [fk_path t ~from_root:r d] — the chain of foreign-key column names
    leading from table [r] down to descendant [d]; [[]] when [r = d].
    Raises [Invalid_argument] if [d] is not in [r]'s subtree. *)

val pp : Format.formatter -> t -> unit
