module Value = Ghost_kernel.Value

(** Column definitions.

    GhostDB's security administrator tags each column [HIDDEN] or
    leaves it visible ([CREATE TABLE] with the extra keyword — Section
    2 of the paper). Foreign keys are ordinary integer columns carrying
    a [refs] target; the demo scenario hides them because they link
    sensitive records. *)

type visibility =
  | Visible  (** may live on the PC / public server *)
  | Hidden  (** lives only on the secure USB device *)

val visibility_name : visibility -> string

type t = {
  name : string;
  ty : Value.ty;
  visibility : visibility;
  refs : string option;  (** [Some table] for a foreign-key column *)
}

val make : ?visibility:visibility -> ?refs:string -> string -> Value.ty -> t
(** Defaults to [Visible]. A [refs] column must be [T_int]; raises
    [Invalid_argument] otherwise. *)

val is_hidden : t -> bool
val is_foreign_key : t -> bool
val pp : Format.formatter -> t -> unit
