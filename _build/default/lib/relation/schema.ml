module Value = Ghost_kernel.Value

type table = {
  name : string;
  key : string;
  columns : Column.t list;
}

let table ~name ~key columns =
  if List.exists (fun (c : Column.t) -> c.Column.name = key) columns then
    invalid_arg "Schema.table: key listed among columns";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (c : Column.t) ->
       if Hashtbl.mem seen c.Column.name then
         invalid_arg (Printf.sprintf "Schema.table: duplicate column %s" c.Column.name);
       Hashtbl.add seen c.Column.name ())
    columns;
  { name; key; columns }

let key_column t = Column.make t.key Value.T_int

let all_columns t = key_column t :: t.columns

let find_column t name =
  if name = t.key then key_column t
  else List.find (fun (c : Column.t) -> c.Column.name = name) t.columns

let column_index t name =
  let rec loop i = function
    | [] -> raise Not_found
    | (c : Column.t) :: rest -> if c.Column.name = name then i else loop (i + 1) rest
  in
  loop 0 (all_columns t)

let arity t = 1 + List.length t.columns

exception Not_a_tree of string

type t = {
  tables : table list;
  by_name : (string, table) Hashtbl.t;
  parents : (string, string * string) Hashtbl.t;
      (* child table -> (parent table, fk column in parent) *)
  root : table;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Not_a_tree s)) fmt

let create tables =
  if tables = [] then fail "empty schema";
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun t ->
       if Hashtbl.mem by_name t.name then fail "duplicate table %s" t.name;
       Hashtbl.add by_name t.name t)
    tables;
  let parents = Hashtbl.create 16 in
  List.iter
    (fun t ->
       List.iter
         (fun (c : Column.t) ->
            match c.Column.refs with
            | None -> ()
            | Some target ->
              if not (Hashtbl.mem by_name target) then
                fail "%s.%s references unknown table %s" t.name c.Column.name target;
              if target = t.name then
                fail "%s.%s is a self reference" t.name c.Column.name;
              if Hashtbl.mem parents target then
                fail "table %s is referenced by more than one foreign key" target;
              Hashtbl.add parents target (t.name, c.Column.name))
         t.columns)
    tables;
  let roots = List.filter (fun t -> not (Hashtbl.mem parents t.name)) tables in
  let root =
    match roots with
    | [ r ] -> r
    | [] -> fail "no root table (cycle)"
    | rs ->
      fail "schema is a forest, not a tree: roots %s"
        (String.concat ", " (List.map (fun t -> t.name) rs))
  in
  (* Reachability from the root also rules out cycles among non-roots. *)
  let visited = Hashtbl.create 16 in
  let rec visit name =
    if Hashtbl.mem visited name then fail "cycle through table %s" name;
    Hashtbl.add visited name ();
    List.iter
      (fun (c : Column.t) ->
         match c.Column.refs with
         | Some target -> visit target
         | None -> ())
      (Hashtbl.find by_name name).columns
  in
  visit root.name;
  if Hashtbl.length visited <> List.length tables then
    fail "tables unreachable from root %s" root.name;
  { tables; by_name; parents; root }

let tables t = t.tables
let find_table t name = Hashtbl.find t.by_name name
let mem_table t name = Hashtbl.mem t.by_name name
let root t = t.root
let parent t name = Hashtbl.find_opt t.parents name

let children t name =
  let tbl = find_table t name in
  List.filter_map
    (fun (c : Column.t) ->
       Option.map (fun target -> (target, c.Column.name)) c.Column.refs)
    tbl.columns

let rec climb_path t name =
  match parent t name with
  | None -> [ name ]
  | Some (p, _) -> name :: climb_path t p

let rec subtree t name =
  name :: List.concat_map (fun (child, _) -> subtree t child) (children t name)

let depth t name = List.length (climb_path t name) - 1

let is_ancestor t ~ancestor name = List.mem ancestor (climb_path t name)

let subtree_root t names =
  match names with
  | [] -> invalid_arg "Schema.subtree_root: empty list"
  | first :: rest ->
    (* Intersect climb paths; the first common element scanning from the
       deepest end of [first]'s path is the LCA. *)
    let common =
      List.fold_left
        (fun acc name ->
           let path = climb_path t name in
           List.filter (fun x -> List.mem x path) acc)
        (climb_path t first) rest
    in
    (match common with
     | deepest :: _ -> deepest
     | [] -> assert false (* the root is on every climb path *))

let fk_path t ~from_root name =
  if not (is_ancestor t ~ancestor:from_root name) then
    invalid_arg
      (Printf.sprintf "Schema.fk_path: %s is not in the subtree of %s" name from_root);
  (* climb_path name = [name; ...; from_root; ...]; collect fk columns
     from from_root down to name. *)
  let rec collect name acc =
    if name = from_root then acc
    else
      match parent t name with
      | None -> assert false
      | Some (p, fk) -> collect p (fk :: acc)
  in
  collect name []

let pp fmt t =
  List.iter
    (fun tbl ->
       Format.fprintf fmt "@[<v 2>TABLE %s (key %s)@,%a@]@,"
         tbl.name tbl.key
         (Format.pp_print_list Column.pp)
         tbl.columns)
    t.tables
