module Value = Ghost_kernel.Value

(** Selection predicates on a single column — the atoms of an SPJ
    [WHERE] clause after join conditions are separated out. *)

type comparison =
  | Eq of Value.t
  | Ne of Value.t
  | Lt of Value.t
  | Le of Value.t
  | Gt of Value.t
  | Ge of Value.t
  | Between of Value.t * Value.t  (** inclusive on both ends *)
  | In of Value.t list
  | Prefix of string
      (** SQL [LIKE 'abc%'] — string columns only; matches values whose
          CHAR(n)-normalized form starts with the prefix *)

type t = {
  table : string;
  column : string;
  cmp : comparison;
}

val make : table:string -> column:string -> comparison -> t

val prefix_upper : string -> string option
(** The least string greater than every string with the given prefix
    ([None] when the prefix is all 0xFF bytes — the range is then
    unbounded above). *)

val eval : comparison -> Value.t -> bool
(** Three-valued logic collapsed: comparisons with [Null] are false. *)

val holds : t -> Value.t -> bool
(** [eval p.cmp]. *)

val is_equality : comparison -> bool
val comparison_to_string : comparison -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
