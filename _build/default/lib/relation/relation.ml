module Value = Ghost_kernel.Value
module Sorted_ids = Ghost_kernel.Sorted_ids

type tuple = Value.t array

type t = {
  schema : Schema.table;
  tuples : tuple array;
  by_key : (int, tuple) Hashtbl.t;
}

let create schema rows =
  let arity = Schema.arity schema in
  let cols = Schema.all_columns schema in
  let by_key = Hashtbl.create (List.length rows) in
  List.iteri
    (fun i row ->
       if Array.length row <> arity then
         invalid_arg
           (Printf.sprintf "Relation.create(%s): row %d has arity %d, expected %d"
              schema.Schema.name i (Array.length row) arity);
       List.iteri
         (fun j (c : Column.t) ->
            if not (Value.has_ty c.Column.ty row.(j)) then
              invalid_arg
                (Printf.sprintf "Relation.create(%s): row %d column %s type mismatch"
                   schema.Schema.name i c.Column.name))
         cols;
       match row.(0) with
       | Value.Int k ->
         if Hashtbl.mem by_key k then
           invalid_arg
             (Printf.sprintf "Relation.create(%s): duplicate key %d" schema.Schema.name k);
         Hashtbl.add by_key k row
       | Value.Null | Value.Float _ | Value.Date _ | Value.Str _ ->
         invalid_arg
           (Printf.sprintf "Relation.create(%s): row %d key is not an integer"
              schema.Schema.name i))
    rows;
  { schema; tuples = Array.of_list rows; by_key }

let schema t = t.schema
let cardinality t = Array.length t.tuples
let tuples t = t.tuples

let key_of _t tuple =
  match tuple.(0) with
  | Value.Int k -> k
  | Value.Null | Value.Float _ | Value.Date _ | Value.Str _ -> assert false

let find t k = Hashtbl.find_opt t.by_key k

let value t tuple column = tuple.(Schema.column_index t.schema column)

let column_values t column =
  let idx = Schema.column_index t.schema column in
  let pairs = Array.map (fun row -> (key_of t row, row.(idx))) t.tuples in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) pairs;
  Array.map snd pairs

let select t p = List.filter p (Array.to_list t.tuples)

let select_ids t cmp column =
  let idx = Schema.column_index t.schema column in
  let ids =
    Array.to_list t.tuples
    |> List.filter_map (fun row ->
      if Predicate.eval cmp row.(idx) then Some (key_of t row) else None)
  in
  Sorted_ids.of_unsorted ids

let iter f t = Array.iter f t.tuples
