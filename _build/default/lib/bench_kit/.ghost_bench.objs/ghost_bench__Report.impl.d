lib/bench_kit/report.ml: Float Format List Printf String
