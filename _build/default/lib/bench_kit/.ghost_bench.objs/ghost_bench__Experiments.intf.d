lib/bench_kit/experiments.mli: Ghost_workload Report
