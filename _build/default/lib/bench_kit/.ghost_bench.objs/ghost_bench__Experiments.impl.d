lib/bench_kit/experiments.ml: Array Float Ghost_baseline Ghost_device Ghost_flash Ghost_kernel Ghost_public Ghost_workload Ghostdb List Printf Report String
