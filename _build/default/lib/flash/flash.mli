(** NAND Flash simulator.

    Models the external Flash of the smart USB device (Figure 2 of the
    paper): page-granularity programming with {e no in-place writes}
    (a page can only be programmed when in the erased state), block-
    granularity erasure, and asymmetric costs — programming a page is
    3–10× slower than reading it, and partial-page reads are cheaper
    than full-page reads.

    The simulator enforces the programming discipline (programming a
    non-erased page raises) and meters every operation through a
    configurable cost model, accumulating simulated time that the
    device clock reports. *)

type geometry = {
  page_size : int;  (** bytes per page (default 2048) *)
  pages_per_block : int;  (** pages per erase block (default 64) *)
}

val default_geometry : geometry

type cost = {
  read_seek_us : float;  (** fixed cost to open a page for reading *)
  read_byte_us : float;  (** per byte actually transferred *)
  program_seek_us : float;  (** fixed cost to program a page *)
  program_byte_us : float;  (** per byte programmed *)
  erase_us : float;  (** per block erase *)
}

val default_cost : cost
(** Calibrated so that a full-page program costs ~5× a full-page read,
    inside the 3–10× envelope the paper gives. *)

val cost_with_write_ratio : float -> cost
(** [cost_with_write_ratio r] — the default cost model rescaled so a
    full-page program costs [r] × a full-page read (used by the Flash
    asymmetry sweep, experiment E6). *)

type stats = {
  page_reads : int;
  bytes_read : int;
  page_programs : int;
  bytes_programmed : int;
  block_erases : int;
  read_time_us : float;
  write_time_us : float;
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val diff_stats : after:stats -> before:stats -> stats
val total_time_us : stats -> float

type t

exception Program_error of string
(** Raised on an attempt to program a non-erased page or to overflow a
    page. *)

val create : ?geometry:geometry -> ?cost:cost -> unit -> t
val geometry : t -> geometry
val set_cost : t -> cost -> unit

val append : t -> bytes -> int
(** Programs a fresh (erased) page with the given content — at most
    [page_size] bytes; shorter content is implicitly padded with zeros.
    Returns the page identifier. Prefers recycling erased pages before
    growing the store. *)

val read : t -> page:int -> off:int -> len:int -> bytes
(** Partial-page read; cost = seek + [len] bytes. Raises
    [Invalid_argument] on an out-of-bounds range or a never-programmed
    page. *)

val read_page : t -> int -> bytes
(** Full-page read. *)

val erase_block : t -> int -> unit
(** Erases the given block (all its pages become programmable again;
    their previous content is lost). *)

val erase_pages : t -> int list -> unit
(** Erases every block that intersects the given page list. Convenience
    for reclaiming scratch runs; note whole blocks are erased, as on
    real NAND. *)

val erase_live_blocks : t -> unit
(** Erases every block that currently holds programmed pages (used to
    reclaim the scratch region after a query). *)

val page_count : t -> int
(** Number of pages ever allocated (high-water mark of the store). *)

val live_bytes : t -> int
(** Bytes currently programmed (storage-footprint metric for E9). *)

val stats : t -> stats
(** Snapshot of the counters since creation (or last {!reset_stats}). *)

val reset_stats : t -> unit
val time_us : t -> float
(** [total_time_us (stats t)]. *)
