lib/flash/flash.mli:
