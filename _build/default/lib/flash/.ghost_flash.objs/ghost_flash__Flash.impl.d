lib/flash/flash.ml: Array Bytes Float Int List Printf Set
