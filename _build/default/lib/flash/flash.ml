type geometry = {
  page_size : int;
  pages_per_block : int;
}

let default_geometry = { page_size = 2048; pages_per_block = 64 }

type cost = {
  read_seek_us : float;
  read_byte_us : float;
  program_seek_us : float;
  program_byte_us : float;
  erase_us : float;
}

(* Full-page read: 25 + 2048*0.025 ~ 76 us; full-page program:
   200 + 2048*0.09 ~ 384 us, i.e. ~5x a read. Erase ~1.5 ms. These are
   typical small-block NAND figures of the paper's era. *)
let default_cost = {
  read_seek_us = 25.0;
  read_byte_us = 0.025;
  program_seek_us = 200.0;
  program_byte_us = 0.09;
  erase_us = 1500.0;
}

let cost_with_write_ratio r =
  if r <= 0. then invalid_arg "Flash.cost_with_write_ratio";
  let g = default_geometry in
  let read_full =
    default_cost.read_seek_us +. (Float.of_int g.page_size *. default_cost.read_byte_us)
  in
  let target = r *. read_full in
  (* Keep the seek/byte split of the default program cost. *)
  let base =
    default_cost.program_seek_us
    +. (Float.of_int g.page_size *. default_cost.program_byte_us)
  in
  let scale = target /. base in
  { default_cost with
    program_seek_us = default_cost.program_seek_us *. scale;
    program_byte_us = default_cost.program_byte_us *. scale }

type stats = {
  page_reads : int;
  bytes_read : int;
  page_programs : int;
  bytes_programmed : int;
  block_erases : int;
  read_time_us : float;
  write_time_us : float;
}

let zero_stats = {
  page_reads = 0;
  bytes_read = 0;
  page_programs = 0;
  bytes_programmed = 0;
  block_erases = 0;
  read_time_us = 0.;
  write_time_us = 0.;
}

let add_stats a b = {
  page_reads = a.page_reads + b.page_reads;
  bytes_read = a.bytes_read + b.bytes_read;
  page_programs = a.page_programs + b.page_programs;
  bytes_programmed = a.bytes_programmed + b.bytes_programmed;
  block_erases = a.block_erases + b.block_erases;
  read_time_us = a.read_time_us +. b.read_time_us;
  write_time_us = a.write_time_us +. b.write_time_us;
}

let diff_stats ~after ~before = {
  page_reads = after.page_reads - before.page_reads;
  bytes_read = after.bytes_read - before.bytes_read;
  page_programs = after.page_programs - before.page_programs;
  bytes_programmed = after.bytes_programmed - before.bytes_programmed;
  block_erases = after.block_erases - before.block_erases;
  read_time_us = after.read_time_us -. before.read_time_us;
  write_time_us = after.write_time_us -. before.write_time_us;
}

let total_time_us s = s.read_time_us +. s.write_time_us

type page_state =
  | Erased
  | Programmed of { data : bytes; len : int }

type t = {
  geometry : geometry;
  mutable cost : cost;
  mutable pages : page_state array;
  mutable page_high_water : int;  (* pages ever allocated *)
  mutable free : int list;  (* erased pages below the high-water mark *)
  mutable stats : stats;
}

exception Program_error of string

let create ?(geometry = default_geometry) ?(cost = default_cost) () = {
  geometry;
  cost;
  pages = Array.make 1024 Erased;
  page_high_water = 0;
  free = [];
  stats = zero_stats;
}

let geometry t = t.geometry
let set_cost t cost = t.cost <- cost

let grow t needed =
  if needed > Array.length t.pages then begin
    let pages = Array.make (max needed (2 * Array.length t.pages)) Erased in
    Array.blit t.pages 0 pages 0 t.page_high_water;
    t.pages <- pages
  end

let charge_program t len =
  t.stats <- {
    t.stats with
    page_programs = t.stats.page_programs + 1;
    bytes_programmed = t.stats.bytes_programmed + len;
    write_time_us =
      t.stats.write_time_us
      +. t.cost.program_seek_us
      +. (Float.of_int len *. t.cost.program_byte_us);
  }

let append t data =
  let len = Bytes.length data in
  if len > t.geometry.page_size then
    raise (Program_error
             (Printf.sprintf "append: %d bytes exceeds page size %d" len
                t.geometry.page_size));
  let page =
    match t.free with
    | p :: rest ->
      t.free <- rest;
      p
    | [] ->
      grow t (t.page_high_water + 1);
      let p = t.page_high_water in
      t.page_high_water <- p + 1;
      p
  in
  (match t.pages.(page) with
   | Erased -> ()
   | Programmed _ ->
     raise (Program_error (Printf.sprintf "page %d is not erased" page)));
  t.pages.(page) <- Programmed { data = Bytes.copy data; len };
  charge_program t len;
  page

let charge_read t len =
  t.stats <- {
    t.stats with
    page_reads = t.stats.page_reads + 1;
    bytes_read = t.stats.bytes_read + len;
    read_time_us =
      t.stats.read_time_us
      +. t.cost.read_seek_us
      +. (Float.of_int len *. t.cost.read_byte_us);
  }

let read t ~page ~off ~len =
  if page < 0 || page >= t.page_high_water then
    invalid_arg (Printf.sprintf "Flash.read: page %d out of range" page);
  match t.pages.(page) with
  | Erased -> invalid_arg (Printf.sprintf "Flash.read: page %d is erased" page)
  | Programmed { data; len = plen } ->
    if off < 0 || len < 0 || off + len > t.geometry.page_size then
      invalid_arg "Flash.read: range out of page bounds";
    charge_read t len;
    let out = Bytes.make len '\000' in
    (* Bytes past the programmed prefix read back as zeros (padding). *)
    let avail = max 0 (min len (plen - off)) in
    if avail > 0 then Bytes.blit data off out 0 avail;
    out

let read_page t page = read t ~page ~off:0 ~len:t.geometry.page_size

let erase_block t block =
  let first = block * t.geometry.pages_per_block in
  if first < 0 then invalid_arg "Flash.erase_block";
  let last = min (t.page_high_water - 1) (first + t.geometry.pages_per_block - 1) in
  for p = first to last do
    (match t.pages.(p) with
     | Programmed _ ->
       t.pages.(p) <- Erased;
       t.free <- p :: t.free
     | Erased -> ())
  done;
  t.stats <- {
    t.stats with
    block_erases = t.stats.block_erases + 1;
    write_time_us = t.stats.write_time_us +. t.cost.erase_us;
  }

let erase_pages t pages =
  let module Iset = Set.Make (Int) in
  let blocks =
    List.fold_left
      (fun acc p -> Iset.add (p / t.geometry.pages_per_block) acc)
      Iset.empty pages
  in
  Iset.iter (erase_block t) blocks

let erase_live_blocks t =
  let ppb = t.geometry.pages_per_block in
  let n_blocks = (t.page_high_water + ppb - 1) / ppb in
  for block = 0 to n_blocks - 1 do
    let first = block * ppb in
    let last = min (t.page_high_water - 1) (first + ppb - 1) in
    let live = ref false in
    for p = first to last do
      match t.pages.(p) with
      | Programmed _ -> live := true
      | Erased -> ()
    done;
    if !live then erase_block t block
  done

let page_count t = t.page_high_water

let live_bytes t =
  let total = ref 0 in
  for p = 0 to t.page_high_water - 1 do
    match t.pages.(p) with
    | Programmed { len; _ } -> total := !total + len
    | Erased -> ()
  done;
  !total

let stats t = t.stats
let reset_stats t = t.stats <- zero_stats
let time_us t = total_time_us t.stats
