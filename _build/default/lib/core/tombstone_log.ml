module Codec = Ghost_kernel.Codec
module Sorted_ids = Ghost_kernel.Sorted_ids
module Flash = Ghost_flash.Flash

type t = {
  flash : Flash.t;
  table : string;
  ids_per_page : int;
  mutable full_pages : int list;  (* reversed *)
  mutable tail : int list;  (* reversed *)
  mutable tail_page : int option;
  mutable count : int;
  mutable dead_bytes : int;
  members : (int, unit) Hashtbl.t;
}

let create flash ~table = {
  flash;
  table;
  ids_per_page = (Flash.geometry flash).Flash.page_size / 4;
  full_pages = [];
  tail = [];
  tail_page = None;
  count = 0;
  dead_bytes = 0;
  members = Hashtbl.create 64;
}

let table t = t.table
let count t = t.count
let size_bytes t = 4 * t.count
let dead_bytes t = t.dead_bytes
let mem t id = Hashtbl.mem t.members id

let program_tail t =
  let n = List.length t.tail in
  let b = Bytes.create (4 * n) in
  List.iteri (fun i id -> Codec.put_u32 b (4 * (n - 1 - i)) id) t.tail;
  (match t.tail_page with
   | Some _ -> t.dead_bytes <- t.dead_bytes + (4 * (n - 1))
   | None -> ());
  let page = Flash.append t.flash b in
  if n = t.ids_per_page then begin
    t.full_pages <- page :: t.full_pages;
    t.tail <- [];
    t.tail_page <- None
  end
  else t.tail_page <- Some page

let append t ids =
  List.iter
    (fun id ->
       t.tail <- id :: t.tail;
       t.count <- t.count + 1;
       Hashtbl.replace t.members id ();
       program_tail t)
    ids

let load_sorted t =
  let acc = ref [] in
  let read_page page n =
    let b = Flash.read t.flash ~page ~off:0 ~len:(4 * n) in
    for i = 0 to n - 1 do
      acc := Codec.get_u32 b (4 * i) :: !acc
    done
  in
  List.iter (fun p -> read_page p t.ids_per_page) (List.rev t.full_pages);
  (match t.tail_page with
   | Some p -> read_page p (List.length t.tail)
   | None -> ());
  Sorted_ids.of_unsorted !acc
