module Value = Ghost_kernel.Value
module Predicate = Ghost_relation.Predicate

module Vmap = Map.Make (struct
    type t = Value.t

    let compare = Value.compare
  end)

let exact_threshold = 512
let histogram_buckets = 64

type t = {
  count : int;
  distinct : int;
  freqs : int Vmap.t option;  (* exact, when distinct <= exact_threshold *)
  (* Equi-depth histogram: sorted sample of bucket upper bounds; bucket
     i covers values <= bounds.(i) (and > bounds.(i-1)). Each bucket
     holds ~count/buckets values. *)
  bounds : Value.t array;
}

let of_values values =
  let count = Array.length values in
  let sorted = Array.copy values in
  Array.sort Value.compare sorted;
  let freq_map =
    Array.fold_left
      (fun m v -> Vmap.update v (fun c -> Some (1 + Option.value c ~default:0)) m)
      Vmap.empty sorted
  in
  let distinct = Vmap.cardinal freq_map in
  let freqs = if distinct <= exact_threshold then Some freq_map else None in
  let bounds =
    if count = 0 then [||]
    else
      Array.init histogram_buckets (fun i ->
        let pos = min (count - 1) (((i + 1) * count / histogram_buckets) - 1) in
        sorted.(max 0 pos))
  in
  { count; distinct; freqs; bounds }

let count t = t.count
let distinct t = t.distinct

(* Fraction of values <= v, from the histogram. *)
let cdf t v =
  let n = Array.length t.bounds in
  if n = 0 then 0.
  else begin
    (* first bucket whose bound is >= v *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Value.compare t.bounds.(mid) v < 0 then lo := mid + 1 else hi := mid
    done;
    Float.of_int (min n (!lo + 1)) /. Float.of_int n
  end

let clamp f = Float.max 0. (Float.min 1. f)

let sel_le t v =
  match t.freqs with
  | Some m ->
    let below =
      Vmap.fold
        (fun key c acc -> if Value.compare key v <= 0 then acc + c else acc)
        m 0
    in
    if t.count = 0 then 0. else Float.of_int below /. Float.of_int t.count
  | None -> cdf t v

let sel_eq t v =
  match t.freqs with
  | Some m ->
    if t.count = 0 then 0.
    else Float.of_int (Option.value (Vmap.find_opt v m) ~default:0) /. Float.of_int t.count
  | None -> if t.distinct = 0 then 0. else 1. /. Float.of_int t.distinct

let selectivity t cmp =
  if t.count = 0 then 0.
  else
    clamp
      (match cmp with
       | Predicate.Eq v -> sel_eq t v
       | Predicate.Ne v -> 1. -. sel_eq t v
       | Predicate.Le v -> sel_le t v
       | Predicate.Lt v -> sel_le t v -. sel_eq t v
       | Predicate.Gt v -> 1. -. sel_le t v
       | Predicate.Ge v -> 1. -. sel_le t v +. sel_eq t v
       | Predicate.Between (lo, hi) -> sel_le t hi -. sel_le t lo +. sel_eq t lo
       | Predicate.In vs ->
         List.fold_left
           (fun acc v -> acc +. sel_eq t v)
           0.
           (List.sort_uniq Value.compare vs)
       | Predicate.Prefix p ->
         (match t.freqs with
          | Some m ->
            let matching =
              Vmap.fold
                (fun key c acc ->
                   if Predicate.eval (Predicate.Prefix p) key then acc + c else acc)
                m 0
            in
            Float.of_int matching /. Float.of_int t.count
          | None ->
            let lo = sel_le t (Value.Str p) -. sel_eq t (Value.Str p) in
            let hi =
              match Predicate.prefix_upper p with
              | Some u -> sel_le t (Value.Str u) -. sel_eq t (Value.Str u)
              | None -> 1.
            in
            Float.max 0. (hi -. lo)))

let estimate_rows t cmp =
  int_of_float (Float.round (selectivity t cmp *. Float.of_int t.count))
